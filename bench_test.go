// Package spatialjoin_test benchmarks every experiment of the paper's
// evaluation (one benchmark per table and figure, named after DESIGN.md's
// per-experiment index) plus micro-benchmarks of the individual substrates
// and ablation benchmarks for the design choices the paper calls out.
//
// Run everything:
//
//	go test -bench=. -benchmem
//
// The first benchmark that touches the experiment environment pays the
// one-time preprocessing of the four test series.
package spatialjoin_test

import (
	"context"
	"fmt"
	"runtime"
	"sync"
	"testing"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/data"
	"spatialjoin/internal/decomp"
	"spatialjoin/internal/exact"
	"spatialjoin/internal/experiments"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/ops"
	"spatialjoin/internal/rstar"
	"spatialjoin/internal/shard"
	"spatialjoin/internal/trstar"
)

var (
	envOnce  sync.Once
	benchEnv *experiments.Env
)

func env() *experiments.Env {
	envOnce.Do(func() { benchEnv = experiments.NewEnv() })
	return benchEnv
}

// benchBig returns big-relation parameters sized for benchmarking.
func benchBig() experiments.BigParams {
	p := experiments.DefaultBigParams()
	p.N = 6000
	p.Points = 200
	p.Windows = 60
	return p
}

// ---------------------------------------------------------------------
// One benchmark per table and figure (DESIGN.md per-experiment index).
// ---------------------------------------------------------------------

func BenchmarkFigure2_RelationStats(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		_ = experiments.Figure2(e)
	}
}

func BenchmarkTable1_MBRFalseArea(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		_ = experiments.Table1(e)
	}
}

func BenchmarkTable2_TestSeries(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		_ = experiments.Table2(e)
	}
}

func BenchmarkTable3_ConservativeFilter(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		_ = experiments.Table3(e)
	}
}

func BenchmarkTable4_FalseAreaTest(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		_ = experiments.Table4(e)
	}
}

func BenchmarkTable5_ProgressiveFilter(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		_ = experiments.Table5(e)
	}
}

func BenchmarkTable6_OperationWeights(b *testing.B) {
	for i := 0; i < b.N; i++ {
		_ = experiments.MeasureWeights()
	}
}

func BenchmarkTable7_ExactAlgorithms(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		_, _ = experiments.Table7(e)
	}
}

func BenchmarkFigure4_ApproximationQuality(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		_ = experiments.Figure4(e)
	}
}

func BenchmarkFigure5_FalseAreaVsFalseHits(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		_ = experiments.Figure5(e)
	}
}

func BenchmarkFigure8_ProgressiveQuality(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		_ = experiments.Figure8(e)
	}
}

func BenchmarkFigure10_KeyVsAdditional(b *testing.B) {
	p := benchBig()
	for i := 0; i < b.N; i++ {
		_ = experiments.Figure10(p)
	}
}

func BenchmarkFigure11_FilterPayoff(b *testing.B) {
	p := benchBig()
	for i := 0; i < b.N; i++ {
		_, _ = experiments.Figure11(p)
	}
}

func BenchmarkFigure12_CandidateDivision(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		_ = experiments.Figure12(e)
	}
}

func BenchmarkFigure16_CostVsEdges(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		_, _ = experiments.Figure16(e)
	}
}

func BenchmarkFigure17_NodeCapacity(b *testing.B) {
	e := env()
	for i := 0; i < b.N; i++ {
		_, _ = experiments.Figure17(e)
	}
}

func BenchmarkFigure18_TotalPerformance(b *testing.B) {
	p := benchBig()
	for i := 0; i < b.N; i++ {
		_, _ = experiments.Figure18(p)
	}
}

// ---------------------------------------------------------------------
// Micro-benchmarks of the substrates.
// ---------------------------------------------------------------------

// benchPolys returns a deterministic workload of medium-complexity
// polygons plus a shifted partner relation.
func benchPolys(n, verts int) ([]*geom.Polygon, []*geom.Polygon) {
	r := data.GenerateMap(data.MapConfig{Cells: n, TargetVerts: verts, Seed: 4242})
	return r, data.StrategyA(r, 0.45)
}

func BenchmarkRStarInsert(b *testing.B) {
	r, _ := benchPolys(2000, 16)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t := rstar.New(rstar.DefaultConfig())
		for id, p := range r {
			t.Insert(rstar.Item{Rect: p.Bounds(), ID: int32(id)})
		}
	}
}

func BenchmarkRStarWindowQuery(b *testing.B) {
	r, _ := benchPolys(5000, 16)
	t := rstar.New(rstar.DefaultConfig())
	for id, p := range r {
		t.Insert(rstar.Item{Rect: p.Bounds(), ID: int32(id)})
	}
	w := geom.Rect{MinX: 0.4, MinY: 0.4, MaxX: 0.45, MaxY: 0.45}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		t.WindowQuery(w, func(rstar.Item) {})
	}
}

func BenchmarkMBRJoin(b *testing.B) {
	r, s := benchPolys(3000, 16)
	t1 := rstar.New(rstar.DefaultConfig())
	t2 := rstar.New(rstar.DefaultConfig())
	for id, p := range r {
		t1.Insert(rstar.Item{Rect: p.Bounds(), ID: int32(id)})
	}
	for id, p := range s {
		t2.Insert(rstar.Item{Rect: p.Bounds(), ID: int32(id)})
	}
	b.ResetTimer()
	var pairs int64
	for i := 0; i < b.N; i++ {
		pairs = 0
		rstar.Join(t1, t2, func(a, bb rstar.Item) { pairs++ })
	}
	b.ReportMetric(float64(pairs), "pairs")
}

func BenchmarkApproxCompute5CMER(b *testing.B) {
	r, _ := benchPolys(64, 84)
	opt := approx.Options{Conservative: []approx.Kind{approx.C5}, Progressive: []approx.Kind{approx.MER}}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = approx.Compute(r[i%len(r)], opt)
	}
}

func BenchmarkTrapezoidize(b *testing.B) {
	r, _ := benchPolys(64, 256)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = decomp.Trapezoidize(r[i%len(r)])
	}
}

func BenchmarkTRStarBuild(b *testing.B) {
	r, _ := benchPolys(64, 256)
	traps := make([][]decomp.Trapezoid, len(r))
	for i, p := range r {
		traps[i] = decomp.Trapezoidize(p)
	}
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		_ = trstar.New(traps[i%len(traps)], 3)
	}
}

func BenchmarkExactPair(b *testing.B) {
	r, s := benchPolys(64, 256)
	var c ops.Counters
	prepR := make([]*exact.PreparedPolygon, len(r))
	prepS := make([]*exact.PreparedPolygon, len(s))
	treeR := make([]*trstar.Tree, len(r))
	treeS := make([]*trstar.Tree, len(s))
	for i := range r {
		prepR[i] = exact.Prepare(r[i])
		prepS[i] = exact.Prepare(s[i])
		treeR[i] = trstar.NewFromPolygon(r[i], 3)
		treeS[i] = trstar.NewFromPolygon(s[i], 3)
	}
	b.Run("quadratic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := i % len(r)
			exact.QuadraticIntersects(prepR[k], prepS[k], &c)
		}
	})
	b.Run("planesweep", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := i % len(r)
			exact.PlaneSweepIntersects(prepR[k], prepS[k], true, &c)
		}
	})
	b.Run("trstar", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			k := i % len(r)
			trstar.Intersects(treeR[k], treeS[k], &c)
		}
	})
}

func BenchmarkMultiStepJoin(b *testing.B) {
	r, s := benchPolys(600, 48)
	cfg := multistep.DefaultConfig()
	rr := multistep.NewRelation("R", r, cfg)
	ss := multistep.NewRelation("S", s, cfg)
	b.ResetTimer()
	for i := 0; i < b.N; i++ {
		benchJoin(b, rr, ss, cfg, 1)
	}
}

// ---------------------------------------------------------------------
// Ablation benchmarks (DESIGN.md section 8).
// ---------------------------------------------------------------------

// BenchmarkAblationDecomposition compares the three decomposition
// techniques of Figure 14 as the basis of the TR*-tree exact test.
func BenchmarkAblationDecomposition(b *testing.B) {
	r, _ := benchPolys(64, 256)
	b.Run("trapezoids", func(b *testing.B) {
		var comps int
		for i := 0; i < b.N; i++ {
			comps = decomp.TrapezoidStats(r[i%len(r)]).Components
		}
		b.ReportMetric(float64(comps), "components")
	})
	b.Run("triangles", func(b *testing.B) {
		var comps int
		for i := 0; i < b.N; i++ {
			comps = decomp.TriangleStats(r[i%len(r)]).Components
		}
		b.ReportMetric(float64(comps), "components")
	})
	b.Run("convexparts", func(b *testing.B) {
		var comps int
		for i := 0; i < b.N; i++ {
			comps = decomp.ConvexPartStats(r[i%len(r)]).Components
		}
		b.ReportMetric(float64(comps), "components")
	})
}

// BenchmarkAblationTRCapacity sweeps the TR*-tree node capacity beyond the
// paper's Figure 17 range.
func BenchmarkAblationTRCapacity(b *testing.B) {
	r, s := benchPolys(64, 256)
	for _, m := range []int{3, 4, 5, 8, 16} {
		treesR := make([]*trstar.Tree, len(r))
		treesS := make([]*trstar.Tree, len(s))
		for i := range r {
			treesR[i] = trstar.NewFromPolygon(r[i], m)
			treesS[i] = trstar.NewFromPolygon(s[i], m)
		}
		b.Run(map[int]string{3: "M3", 4: "M4", 5: "M5", 8: "M8", 16: "M16"}[m], func(b *testing.B) {
			var c ops.Counters
			for i := 0; i < b.N; i++ {
				k := i % len(r)
				trstar.Intersects(treesR[k], treesS[k], &c)
			}
			b.ReportMetric(c.Cost(ops.PaperWeights())/float64(b.N)*1e6, "µs-weighted/op")
		})
	}
}

// BenchmarkAblationSweepRestriction quantifies section 4.1's search-space
// restriction (the paper reports ≈40 % savings on false hits).
func BenchmarkAblationSweepRestriction(b *testing.B) {
	r, s := benchPolys(64, 256)
	prepR := make([]*exact.PreparedPolygon, len(r))
	prepS := make([]*exact.PreparedPolygon, len(s))
	for i := range r {
		prepR[i] = exact.Prepare(r[i])
		prepS[i] = exact.Prepare(s[i])
	}
	for _, restrict := range []bool{false, true} {
		name := "unrestricted"
		if restrict {
			name = "restricted"
		}
		b.Run(name, func(b *testing.B) {
			var c ops.Counters
			for i := 0; i < b.N; i++ {
				k := i % len(r)
				exact.PlaneSweepIntersects(prepR[k], prepS[k], restrict, &c)
			}
			b.ReportMetric(c.Cost(ops.PaperWeights())/float64(b.N)*1e6, "µs-weighted/op")
		})
	}
}

// BenchmarkAblationStep1 compares the candidate generators of step 1: the
// R*-tree join [BKS 93a], the Z-order sort-merge [Ore 86] and nested
// loops (section 2.3).
func BenchmarkAblationStep1(b *testing.B) {
	r, s := benchPolys(1500, 24)
	for _, step1 := range []multistep.Step1{multistep.Step1RStar, multistep.Step1ZOrder, multistep.Step1NestedLoops} {
		cfg := multistep.DefaultConfig()
		cfg.Step1 = step1
		rr := multistep.NewRelation("R", r, cfg)
		ss := multistep.NewRelation("S", s, cfg)
		name := map[multistep.Step1]string{
			multistep.Step1RStar: "rstar", multistep.Step1ZOrder: "zorder", multistep.Step1NestedLoops: "nested",
		}[step1]
		b.Run(name, func(b *testing.B) {
			var cands int64
			for i := 0; i < b.N; i++ {
				cands = benchJoin(b, rr, ss, cfg, 1).CandidatePairs
			}
			b.ReportMetric(float64(cands), "candidates")
		})
	}
}

// BenchmarkAblationBuildStrategy compares dynamic R*-tree insertion with
// STR bulk loading.
func BenchmarkAblationBuildStrategy(b *testing.B) {
	r, _ := benchPolys(8000, 12)
	items := make([]rstar.Item, len(r))
	for i, p := range r {
		items[i] = rstar.Item{Rect: p.Bounds(), ID: int32(i)}
	}
	b.Run("dynamic", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			t := rstar.New(rstar.DefaultConfig())
			for _, it := range items {
				t.Insert(it)
			}
		}
	})
	b.Run("bulkload", func(b *testing.B) {
		for i := 0; i < b.N; i++ {
			_ = rstar.BulkLoad(items, rstar.DefaultConfig())
		}
	})
}

// BenchmarkAblationSplitAlgorithm compares the R*-tree topological split
// with Guttman's quadratic split on query page touches.
func BenchmarkAblationSplitAlgorithm(b *testing.B) {
	r, _ := benchPolys(6000, 12)
	for _, split := range []rstar.SplitAlgorithm{rstar.SplitRStar, rstar.SplitQuadraticGuttman} {
		cfg := rstar.DefaultConfig()
		cfg.Split = split
		tree := rstar.New(cfg)
		for i, p := range r {
			tree.Insert(rstar.Item{Rect: p.Bounds(), ID: int32(i)})
		}
		name := "rstar"
		if split == rstar.SplitQuadraticGuttman {
			name = "guttman"
		}
		w := geom.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.38, MaxY: 0.38}
		b.Run(name, func(b *testing.B) {
			tree.Buffer().Clear()
			for i := 0; i < b.N; i++ {
				tree.WindowQuery(w, func(rstar.Item) {})
			}
			b.ReportMetric(float64(tree.Buffer().Accesses())/float64(b.N), "page-touches/op")
		})
	}
}

// BenchmarkParallelJoin measures the section 6 future-work CPU parallelism.
func BenchmarkParallelJoin(b *testing.B) {
	r, s := benchPolys(1200, 48)
	cfg := multistep.DefaultConfig()
	rr := multistep.NewRelation("R", r, cfg)
	ss := multistep.NewRelation("S", s, cfg)
	for _, workers := range []int{1, 4} {
		name := map[int]string{1: "w1", 4: "w4"}[workers]
		b.Run(name, func(b *testing.B) {
			for i := 0; i < b.N; i++ {
				benchJoin(b, rr, ss, cfg, workers)
			}
		})
	}
}

// BenchmarkJoinThroughput compares the three join drivers on the
// paper-style generated workload and reports end-to-end throughput in
// response pairs per second: the sequential Join, the collect-and-sort
// JoinParallel, and the streaming pipeline JoinStream, each at 1, 2, 4
// and GOMAXPROCS workers. Each driver is measured at its own contract:
// Join and JoinParallel deliver the sorted, materialized response set;
// JoinStream delivers unsorted pairs to a consumer callback (collected
// here so every driver pays for handling each response pair).
func BenchmarkJoinThroughput(b *testing.B) {
	r, s := benchPolys(1200, 48)
	cfg := multistep.DefaultConfig()
	rr := multistep.NewRelation("R", r, cfg)
	ss := multistep.NewRelation("S", s, cfg)

	workerCounts := []int{1, 2, 4, runtime.GOMAXPROCS(0)}
	reportPairs := func(b *testing.B, pairs int64) {
		b.ReportMetric(float64(pairs)*float64(b.N)/b.Elapsed().Seconds(), "pairs/sec")
	}

	b.Run("join/seq", func(b *testing.B) {
		var pairs int64
		for i := 0; i < b.N; i++ {
			pairs = benchJoin(b, rr, ss, cfg, 1).ResultPairs
		}
		reportPairs(b, pairs)
	})
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("collect/w%d", w), func(b *testing.B) {
			var pairs int64
			for i := 0; i < b.N; i++ {
				pairs = benchJoin(b, rr, ss, cfg, w).ResultPairs
			}
			reportPairs(b, pairs)
		})
	}
	for _, w := range workerCounts {
		b.Run(fmt.Sprintf("stream/w%d", w), func(b *testing.B) {
			var pairs int64
			var out []multistep.Pair
			for i := 0; i < b.N; i++ {
				out = out[:0]
				_, st, err := multistep.Join(context.Background(), rr, ss,
					multistep.WithConfig(cfg), multistep.WithWorkers(w),
					multistep.WithStream(func(p multistep.Pair) { out = append(out, p) }))
				if err != nil {
					b.Fatal(err)
				}
				pairs = st.ResultPairs
			}
			reportPairs(b, pairs)
		})
	}

	// Allocation sub-benchmarks (run with -benchmem): steady-state
	// allocations per join op and per response pair for the sequential,
	// parallel and streaming modes. The allocation-regression guards pin
	// the hot kernels at zero; these benchmarks track the whole-pipeline
	// residue (channels, batches at their high-water mark, goroutines).
	allocModes := []struct {
		name    string
		workers int
		stream  bool
	}{
		{"alloc/seq", 1, false},
		{"alloc/parallel", runtime.GOMAXPROCS(0), false},
		{"alloc/stream", runtime.GOMAXPROCS(0), true},
	}
	for _, m := range allocModes {
		b.Run(m.name, func(b *testing.B) {
			opts := []multistep.Option{multistep.WithConfig(cfg), multistep.WithWorkers(m.workers)}
			var sink []multistep.Pair
			if m.stream {
				opts = append(opts, multistep.WithStream(func(p multistep.Pair) { sink = append(sink, p) }))
			}
			run := func() int64 {
				sink = sink[:0]
				_, st, err := multistep.Join(context.Background(), rr, ss, opts...)
				if err != nil {
					b.Fatal(err)
				}
				return st.ResultPairs
			}
			pairs := run() // warm pools, lazy representations, sink capacity
			b.ReportAllocs()
			b.ResetTimer()
			var ms0, ms1 runtime.MemStats
			runtime.ReadMemStats(&ms0)
			for i := 0; i < b.N; i++ {
				pairs = run()
			}
			runtime.ReadMemStats(&ms1)
			if pairs > 0 {
				perOp := float64(ms1.Mallocs-ms0.Mallocs) / float64(b.N)
				b.ReportMetric(perOp/float64(pairs), "allocs/pair")
			}
		})
	}

	// Tile-sharded scatter-gather join (internal/shard) at 1, 2 and 4
	// tiles per side, same workload and contract as collect (globally
	// sorted response set). t1 prices the pure coordinator overhead over
	// the monolithic join; t2/t4 add the tile-pair fan-out.
	for _, tiles := range []int{1, 2, 4} {
		b.Run(fmt.Sprintf("sharded/t%d", tiles), func(b *testing.B) {
			shR := shard.Build("R", r, tiles, cfg)
			shS := shard.Build("S", s, tiles, cfg)
			b.ResetTimer()
			var pairs int64
			for i := 0; i < b.N; i++ {
				_, st, err := shard.Join(context.Background(), shR, shS, multistep.WithConfig(cfg))
				if err != nil {
					b.Fatal(err)
				}
				pairs = st.ResultPairs
			}
			reportPairs(b, pairs)
		})
	}

	// The within-distance (ε-)join enters the performance trajectory
	// alongside the intersection join: same pipeline, ε-expanded step 1,
	// distance-based filter and exact kernels.
	for _, eps := range []float64{0.005, 0.02} {
		b.Run(fmt.Sprintf("within/eps%g", eps), func(b *testing.B) {
			var pairs int64
			for i := 0; i < b.N; i++ {
				_, st, err := multistep.Join(context.Background(), rr, ss,
					multistep.WithConfig(cfg),
					multistep.WithPredicate(multistep.WithinDistance(eps)),
					multistep.WithBufferless())
				if err != nil {
					b.Fatal(err)
				}
				pairs = st.ResultPairs
			}
			reportPairs(b, pairs)
		})
	}
}

// BenchmarkAblationFilterChain compares filter configurations end to end.
func BenchmarkAblationFilterChain(b *testing.B) {
	r, s := benchPolys(600, 48)
	configs := []struct {
		name string
		mod  func(*multistep.Config)
	}{
		{"nofilter", func(c *multistep.Config) { c.UseFilter = false }},
		{"5C_only", func(c *multistep.Config) { c.Filter.NoProgressive = true }},
		{"MER_only", func(c *multistep.Config) { c.Filter.NoConservative = true }},
		{"5C_MER", func(c *multistep.Config) {}},
		{"5C_MER_falsearea", func(c *multistep.Config) { c.Filter.UseFalseArea = true }},
	}
	for _, cc := range configs {
		cfg := multistep.DefaultConfig()
		cc.mod(&cfg)
		rr := multistep.NewRelation("R", r, cfg)
		ss := multistep.NewRelation("S", s, cfg)
		b.Run(cc.name, func(b *testing.B) {
			var exactTested int64
			for i := 0; i < b.N; i++ {
				exactTested = benchJoin(b, rr, ss, cfg, 1).ExactTested
			}
			b.ReportMetric(float64(exactTested), "exact-pairs")
		})
	}
}

// benchJoin runs the unified join with the given worker count, failing
// the benchmark on error.
func benchJoin(b *testing.B, r, s *multistep.Relation, cfg multistep.Config, workers int) multistep.Stats {
	b.Helper()
	_, st, err := multistep.Join(context.Background(), r, s,
		multistep.WithConfig(cfg), multistep.WithWorkers(workers))
	if err != nil {
		b.Fatal(err)
	}
	return st
}
