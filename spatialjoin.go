// Package spatialjoin is a from-scratch Go implementation of the
// multi-step spatial join processor of Brinkhoff, Kriegel, Schneider and
// Seeger (Multi-Step Processing of Spatial Joins, SIGMOD 1994), together
// with every substrate the paper depends on.
//
// This package is the public facade: it re-exports the geometry types,
// the join processor and the data generator so that a downstream user
// needs a single import. The implementation lives in the internal
// packages (see README.md for the map); the facade adds nothing beyond
// names, so the documentation of the aliased symbols applies unchanged.
//
// Minimal usage — one context-aware entry point per query shape, with
// the predicate and every execution concern as options:
//
//	cfg := spatialjoin.DefaultConfig()
//	r := spatialjoin.NewRelation("cities", cityPolygons, cfg)
//	s := spatialjoin.NewRelation("forests", forestPolygons, cfg)
//	pairs, stats, err := spatialjoin.Join(ctx, r, s)
//
//	// ε-distance join, streamed, cancellable:
//	_, stats, err = spatialjoin.Join(ctx, r, s,
//		spatialjoin.WithPredicate(spatialjoin.WithinDistance(0.05)),
//		spatialjoin.WithStream(func(p spatialjoin.Pair) { ... }))
//
//	// window / point / nearest queries:
//	res, err := spatialjoin.Query(ctx, r, spatialjoin.ForWindow(w))
//
// The processor executes the paper's three steps: an R*-tree MBR-join, a
// geometric filter on conservative and progressive approximations
// (5-corner and maximum enclosed rectangle by default) and an exact
// geometry step on TR*-trees over trapezoid decompositions. Each
// predicate — Intersects, Contains, WithinDistance(ε) — specializes all
// three steps; see the Predicate documentation.
//
// The pre-redesign entry points (JoinParallel, JoinStream, JoinContains,
// WindowQuery, PointQuery, NearestObjects and their *Access twins)
// remain as deprecated wrappers with identical outputs; see the
// migration table in README.md.
package spatialjoin

import (
	"context"
	"io"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/data"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/shard"
	"spatialjoin/internal/storage"
)

// Geometry types.
type (
	// Point is a location in the two-dimensional data space.
	Point = geom.Point
	// Rect is an axis-parallel rectangle (an MBR).
	Rect = geom.Rect
	// Polygon is a polygonal region with optional holes.
	Polygon = geom.Polygon
	// Ring is a simple closed polygonal chain.
	Ring = geom.Ring
)

// Join processor types.
type (
	// Config selects the approximations, exact engine and storage
	// parameters of the processor.
	Config = multistep.Config
	// Relation is a preprocessed input of the join.
	Relation = multistep.Relation
	// Pair is one element of a join response set.
	Pair = multistep.Pair
	// Stats reports per-step measurements of one join.
	Stats = multistep.Stats
	// WindowStats reports per-step measurements of one window, point,
	// ε-range or nearest query.
	WindowStats = multistep.WindowStats
	// Engine selects the exact geometry algorithm.
	Engine = multistep.Engine
	// Predicate is the spatial relationship a Join or Query evaluates —
	// Intersects, Contains or WithinDistance(ε). Each predicate
	// specializes all three steps of the multi-step processor.
	Predicate = multistep.Predicate
	// Option configures one Join or Query call (predicate, workers,
	// streaming, sessions, limits, targets).
	Option = multistep.Option
	// QueryResult is the answer of the unified Query entry point.
	QueryResult = multistep.QueryResult
	// StreamOptions tunes the streaming pipeline of JoinStream.
	//
	// Deprecated: use the WithWorkers/WithBatch/WithQueue/WithSessions
	// options of Join.
	StreamOptions = multistep.StreamOptions
	// ApproximationKind identifies a conservative or progressive
	// approximation of section 3 of the paper.
	ApproximationKind = approx.Kind
	// MapConfig parameterizes the synthetic cartographic data generator.
	MapConfig = data.MapConfig
	// BufferPolicy selects the page replacement policy of the R*-tree
	// buffers (Config.BufferPolicy).
	BufferPolicy = storage.Policy
	// Accessor is the page-access context of one query. A Relation's
	// shared buffer is the sequential single-query context; Session is
	// the per-query context that makes concurrent queries safe.
	Accessor = storage.Accessor
	// Session is a per-query page-access context: a private replacement
	// simulation with isolated hit/miss counters, created from a
	// relation with Relation.NewSession. Sessions make one opened
	// Relation safe for any number of concurrent queries (pass them via
	// the WithSessions/WithSession options).
	Session = storage.Session
)

// Buffer replacement policies.
const (
	PolicyLRU   = storage.LRU
	PolicyFIFO  = storage.FIFO
	PolicyClock = storage.Clock
)

// Exact engines.
const (
	EngineQuadratic  = multistep.EngineQuadratic
	EnginePlaneSweep = multistep.EnginePlaneSweep
	EngineTRStar     = multistep.EngineTRStar
)

// Approximation kinds.
const (
	MBR  = approx.MBR
	RMBR = approx.RMBR
	CH   = approx.CH
	C4   = approx.C4
	C5   = approx.C5
	MBC  = approx.MBC
	MBE  = approx.MBE
	MEC  = approx.MEC
	MER  = approx.MER
)

// NewPolygon builds a polygon from an outer boundary and optional holes.
func NewPolygon(outer []Point, holes ...[]Point) *Polygon {
	return geom.NewPolygon(outer, holes...)
}

// DefaultConfig returns the paper's recommended configuration (5-corner +
// MER filter, TR*-tree exact engine with node capacity 3, 4 KB pages).
func DefaultConfig() Config { return multistep.DefaultConfig() }

// NewRelation preprocesses a relation for joining under cfg: it computes
// the configured approximations of every polygon and builds the R*-tree.
func NewRelation(name string, polys []*Polygon, cfg Config) *Relation {
	return multistep.NewRelation(name, polys, cfg)
}

// Predicates of the unified query API.

// Intersects is the paper's primary predicate: the regions share at
// least one point. It is the default of Join and Query.
func Intersects() Predicate { return multistep.Intersects() }

// Contains is the inclusion predicate: the R-side region contains the
// S-side region.
func Contains() Predicate { return multistep.Contains() }

// WithinDistance is the ε-join predicate: the regions lie within
// Euclidean distance eps of each other. WithinDistance(0) is equivalent
// to Intersects.
func WithinDistance(eps float64) Predicate { return multistep.WithinDistance(eps) }

// ParsePredicate parses "intersects", "contains" or "within" (with the
// distance bound supplied separately).
func ParsePredicate(name string, eps float64) (Predicate, error) {
	return multistep.ParsePredicate(name, eps)
}

// Options of the unified query API.

// WithPredicate selects the spatial predicate (default Intersects).
func WithPredicate(p Predicate) Option { return multistep.WithPredicate(p) }

// WithConfig overrides the processor configuration (default: the
// relations' build configuration).
func WithConfig(cfg Config) Option { return multistep.WithConfig(cfg) }

// WithWorkers sets the join pipeline's worker count (≤ 0: GOMAXPROCS).
func WithWorkers(n int) Option { return multistep.WithWorkers(n) }

// WithBatch sets the candidate batch size of the join pipeline.
func WithBatch(n int) Option { return multistep.WithBatch(n) }

// WithQueue sets the bounded queue depth of the join pipeline.
func WithQueue(n int) Option { return multistep.WithQueue(n) }

// WithStream streams response pairs to emit as they are decided instead
// of collecting them; memory stays bounded by the pipeline depth.
func WithStream(emit func(Pair)) Option { return multistep.WithStream(emit) }

// WithBufferless discards the response set and returns statistics only.
func WithBufferless() Option { return multistep.WithBufferless() }

// WithSessions routes each side's page visits through explicit
// per-query access contexts (Relation.NewSession), making the call safe
// to run concurrently with other queries on the same relations.
func WithSessions(axR, axS Accessor) Option { return multistep.WithSessions(axR, axS) }

// WithSession is WithSessions for the single-relation Query entry point.
func WithSession(ax Accessor) Option { return multistep.WithSession(ax) }

// WithLimit caps the number of response pairs Join returns (the sorted
// (A, B)-prefix; statistics always reflect the complete join).
func WithLimit(n int) Option { return multistep.WithLimit(n) }

// ForWindow targets Query at a window.
func ForWindow(w Rect) Option { return multistep.ForWindow(w) }

// ForPoint targets Query at a point.
func ForPoint(p Point) Option { return multistep.ForPoint(p) }

// ForNearest targets Query at the k objects closest to p by exact
// region distance.
func ForNearest(p Point, k int) Option { return multistep.ForNearest(p, k) }

// Adaptive planning (internal/plan). Planning is opt-in: a bare Join
// runs the relations' build configuration verbatim, WithPlan lets the
// cost-based planner resolve the options the caller left unset.
type (
	// Plan describes the execution configuration one call ran (or would
	// run) under, with the planner's predictions when planned.
	Plan = multistep.Plan
	// Explain is the EXPLAIN record of one join: the plan and, after
	// execution, the measured counts and prediction errors.
	Explain = multistep.Explain
)

// WithPlan resolves the options the caller left unset — exact engine,
// filter setting, worker count — through the cost-based planner.
// Explicit options always win: WithConfig pins the engine and filter,
// WithWorkers pins the workers, and a fully pinned planned join
// executes bit-identically to the unplanned call.
func WithPlan() Option { return multistep.WithPlan() }

// WithExplain records the resolved plan and, after execution, the
// predicted-vs-actual error into *ex.
func WithExplain(ex *Explain) Option { return multistep.WithExplain(ex) }

// ExplainJoin resolves and plans a join exactly as Join with the same
// options would, without executing it — the EXPLAIN verb.
func ExplainJoin(r, s *Relation, opts ...Option) (Explain, error) {
	return multistep.ExplainJoin(r, s, opts...)
}

// Join runs the multi-step spatial join of r and s under the configured
// predicate (default Intersects) and returns the response set sorted by
// (A, B) with per-step statistics. Cancelling ctx stops the pipeline —
// traversal workers, filter/exact pool and collector — and surfaces
// ctx.Err(). Without WithSessions the page accounting runs on the shared
// tree buffers (the paper's sequential mode, one query at a time); with
// per-query sessions on both sides any number of joins and queries run
// concurrently on the same relations.
func Join(ctx context.Context, r, s *Relation, opts ...Option) ([]Pair, Stats, error) {
	return multistep.Join(ctx, r, s, opts...)
}

// Query runs a multi-step query on one relation: a window query
// (ForWindow), a point query (ForPoint), an ε-range query (either target
// with WithinDistance), or a k-nearest-objects query (ForNearest).
// Accounting and cancellation follow Join.
func Query(ctx context.Context, r *Relation, opts ...Option) (QueryResult, error) {
	return multistep.Query(ctx, r, opts...)
}

// Neighbor is one nearest-neighbour result: object ID and exact region
// distance.
type Neighbor = multistep.Neighbor

// Deprecated pre-redesign entry points. Each is a thin wrapper over the
// unified Join/Query surface with byte-identical outputs (response sets,
// statistics, buffer accounting), kept for downstream users; the
// repository itself no longer calls them outside their equivalence
// tests.

// JoinParallel is Join spread over a worker pool (workers ≤ 0 selects
// GOMAXPROCS). The response set and statistics are identical to Join's.
//
// Deprecated: use Join(ctx, r, s, WithConfig(cfg), WithWorkers(workers)).
func JoinParallel(r, s *Relation, cfg Config, workers int) ([]Pair, Stats) {
	cfg.Step1 = multistep.Step1RStar
	pairs, st, _ := multistep.Join(context.Background(), r, s,
		multistep.WithConfig(cfg), multistep.WithWorkers(workers))
	return pairs, st
}

// JoinStream runs the join as a streaming, fully parallel pipeline and
// calls emit for every response pair (in no particular order); a nil
// emit discards the pairs and returns only statistics.
//
// Deprecated: use Join(ctx, r, s, WithConfig(cfg), WithStream(emit),
// WithWorkers/WithBatch/WithQueue/WithSessions as needed); pass
// WithBufferless() for a nil emit.
func JoinStream(r, s *Relation, cfg Config, opts StreamOptions, emit func(Pair)) Stats {
	o := []Option{
		multistep.WithConfig(cfg),
		multistep.WithWorkers(opts.Workers),
		multistep.WithBatch(opts.Batch),
		multistep.WithQueue(opts.Queue),
		multistep.WithSessions(opts.AccessR, opts.AccessS),
	}
	if emit != nil {
		o = append(o, multistep.WithStream(emit))
	} else {
		o = append(o, multistep.WithBufferless())
	}
	_, st, _ := multistep.Join(context.Background(), r, s, o...)
	return st
}

// DefaultStreamOptions returns the resolved default pipeline shape of
// JoinStream (GOMAXPROCS workers, 256-pair batches, 4×Workers queue).
//
// Deprecated: the unified Join applies the same defaults.
func DefaultStreamOptions() StreamOptions { return multistep.DefaultStreamOptions() }

// JoinContains computes the inclusion join: all pairs (a, b) with the
// region of a containing the region of b.
//
// Deprecated: use Join(ctx, r, s, WithConfig(cfg),
// WithPredicate(Contains())).
func JoinContains(r, s *Relation, cfg Config) ([]Pair, Stats) {
	cfg.Step1 = multistep.Step1RStar
	pairs, st, _ := multistep.Join(context.Background(), r, s,
		multistep.WithConfig(cfg), multistep.WithPredicate(multistep.Contains()))
	return pairs, st
}

// JoinContainsAccess is JoinContains with each side's page visits routed
// through an explicit per-query access context (Relation.NewSession).
//
// Deprecated: use Join(ctx, r, s, WithConfig(cfg),
// WithPredicate(Contains()), WithSessions(axR, axS)).
func JoinContainsAccess(r, s *Relation, axR, axS Accessor, cfg Config) ([]Pair, Stats) {
	cfg.Step1 = multistep.Step1RStar
	pairs, st, _ := multistep.Join(context.Background(), r, s,
		multistep.WithConfig(cfg), multistep.WithPredicate(multistep.Contains()),
		multistep.WithSessions(axR, axS))
	return pairs, st
}

// WindowQuery returns the IDs of the objects of r intersecting the
// window (shared-buffer accounting, one query at a time).
//
// Deprecated: use Query(ctx, r, ForWindow(w), WithConfig(cfg)).
func WindowQuery(r *Relation, w Rect, cfg Config) ([]int32, WindowStats) {
	res, _ := multistep.Query(context.Background(), r,
		multistep.ForWindow(w), multistep.WithConfig(cfg))
	return res.IDs, res.Stats
}

// WindowQueryAccess is WindowQuery with an explicit per-query access
// context (Relation.NewSession).
//
// Deprecated: use Query(ctx, r, ForWindow(w), WithConfig(cfg),
// WithSession(ax)).
func WindowQueryAccess(r *Relation, ax Accessor, w Rect, cfg Config) ([]int32, WindowStats) {
	res, _ := multistep.Query(context.Background(), r,
		multistep.ForWindow(w), multistep.WithConfig(cfg), multistep.WithSession(ax))
	return res.IDs, res.Stats
}

// PointQuery returns the IDs of the objects of r containing the point
// (shared-buffer accounting; see WindowQuery).
//
// Deprecated: use Query(ctx, r, ForPoint(p), WithConfig(cfg)).
func PointQuery(r *Relation, p Point, cfg Config) ([]int32, WindowStats) {
	res, _ := multistep.Query(context.Background(), r,
		multistep.ForPoint(p), multistep.WithConfig(cfg))
	return res.IDs, res.Stats
}

// PointQueryAccess is PointQuery with an explicit per-query access
// context.
//
// Deprecated: use Query(ctx, r, ForPoint(p), WithConfig(cfg),
// WithSession(ax)).
func PointQueryAccess(r *Relation, ax Accessor, p Point, cfg Config) ([]int32, WindowStats) {
	res, _ := multistep.Query(context.Background(), r,
		multistep.ForPoint(p), multistep.WithConfig(cfg), multistep.WithSession(ax))
	return res.IDs, res.Stats
}

// NearestObjects returns the k objects of r closest to p by exact region
// distance, refined over R*-tree MBR-distance candidates.
//
// Deprecated: use Query(ctx, r, ForNearest(p, k)).
func NearestObjects(r *Relation, p Point, k int) []Neighbor {
	return NearestObjectsAccess(r, r.Tree.Buffer(), p, k)
}

// NearestObjectsAccess is NearestObjects with an explicit per-query
// access context.
//
// Deprecated: use Query(ctx, r, ForNearest(p, k), WithSession(ax)).
func NearestObjectsAccess(r *Relation, ax Accessor, p Point, k int) []Neighbor {
	res, _ := multistep.Query(context.Background(), r,
		multistep.ForNearest(p, k), multistep.WithSession(ax))
	return res.Neighbors
}

// GenerateMap produces a deterministic synthetic cartographic relation: a
// tiling of county-like polygons with fractal boundaries (see
// internal/data for the knobs).
func GenerateMap(cfg MapConfig) []*Polygon { return data.GenerateMap(cfg) }

// ShiftedCopy returns the paper's strategy A counterpart of a relation: a
// copy shifted diagonally by the given fraction of the average object
// extent.
func ShiftedCopy(rel []*Polygon, fraction float64) []*Polygon {
	return data.StrategyA(rel, fraction)
}

// RandomizedCopy returns the paper's strategy B counterpart: objects
// randomly shifted and rotated, rescaled so their areas sum to the
// data-space area.
func RandomizedCopy(rel []*Polygon, seed int64) []*Polygon {
	return data.StrategyB(rel, seed)
}

// Relation store errors.
var (
	// ErrBadRelationStore reports a corrupt relation store.
	ErrBadRelationStore = multistep.ErrBadRelationStore
	// ErrConfigMismatch reports a relation store built under a different
	// configuration than it is being opened with.
	ErrConfigMismatch = multistep.ErrConfigMismatch
)

// SaveRelation persists a fully preprocessed relation — polygons,
// approximations, the R*-tree in page-granular layout and (under the
// TR*-tree engine) every object's TR*-tree — so it can be reopened
// instantly with OpenRelation instead of re-running NewRelation. The
// relation must have been built with cfg; the store records a config
// fingerprint and refuses to open under a different configuration.
func SaveRelation(w io.Writer, rel *Relation, cfg Config) error {
	return multistep.SaveRelation(w, rel, cfg)
}

// OpenRelation restores a relation saved by SaveRelation under the same
// cfg. Joins on the restored relation produce the identical response set
// and identical statistics (including buffer hit/miss counts) as on the
// originally built relation.
func OpenRelation(r io.Reader, cfg Config) (*Relation, error) {
	return multistep.OpenRelation(r, cfg)
}

// SaveRelationFile is SaveRelation onto a paged store file
// (storage.FileStore layout) at path.
func SaveRelationFile(path string, rel *Relation, cfg Config) error {
	return multistep.SaveRelationFile(path, rel, cfg)
}

// OpenRelationFile opens a relation store written by SaveRelationFile,
// reading it page by page through a buffered disk-backed store.
func OpenRelationFile(path string, cfg Config) (*Relation, error) {
	return multistep.OpenRelationFile(path, cfg)
}

// Sharded relations: one logical relation partitioned into N Z-order
// tiles behind a scatter-gather layer (internal/shard). The sharded
// entry points preserve the single-relation contracts — globally
// (A, B)-sorted join responses, limit as the global sorted prefix,
// cancellation fanned out to every tile, and candidate/filter/exact
// statistics summing exactly to the unsharded run. See DESIGN.md §10.
type (
	// Sharded is a relation partitioned into Z-order tiles behind one
	// facade; build with BuildSharded or wrap an existing relation with
	// ShardedFromRelation.
	Sharded = shard.Sharded
	// Tile is one shard of a partitioned relation: a complete Relation
	// over the tile's objects plus the mapping back to global IDs.
	Tile = shard.Tile
	// ShardedJoinStats aggregates a scatter-gather join: summed Stats
	// plus the per-tile-pair breakdown.
	ShardedJoinStats = shard.JoinStats
	// SubJoinStats is the accounting of one tile-pair sub-join.
	SubJoinStats = shard.SubJoinStats
	// ShardedQueryStats aggregates a scatter-gather query: summed
	// WindowStats plus the per-tile breakdown.
	ShardedQueryStats = shard.QueryStats
	// TileQueryStats is the accounting of one tile's sub-query.
	TileQueryStats = shard.TileQueryStats
	// ShardedQueryResult is the merged answer of QuerySharded; IDs are
	// global object IDs in ascending order.
	ShardedQueryResult = shard.QueryResult
)

// ErrBadShardManifest reports a corrupt sharded-store manifest.
var ErrBadShardManifest = shard.ErrBadManifest

// BuildSharded partitions polys into at most shards Z-order tiles and
// preprocesses each tile as its own relation under cfg (the shard count
// clamps to [1, len(polys)]).
func BuildSharded(name string, polys []*Polygon, shards int, cfg Config) *Sharded {
	return shard.Build(name, polys, shards, cfg)
}

// ShardedFromRelation wraps an existing relation as a one-tile Sharded,
// so monolithic and partitioned relations share one query path.
func ShardedFromRelation(rel *Relation) *Sharded { return shard.FromRelation(rel) }

// JoinSharded runs the multi-step join of two sharded relations as
// tile-pair sub-joins and merges the results; response set, ordering,
// limit semantics and per-step statistics match Join on the unsharded
// relations.
func JoinSharded(ctx context.Context, r, s *Sharded, opts ...Option) ([]Pair, ShardedJoinStats, error) {
	return shard.Join(ctx, r, s, opts...)
}

// QuerySharded runs a window, point, ε-range or nearest query against a
// sharded relation, routing to the tiles that can contribute and merging
// their answers.
func QuerySharded(ctx context.Context, r *Sharded, opts ...Option) (ShardedQueryResult, error) {
	return shard.Query(ctx, r, opts...)
}

// Batched joins: several join requests over the same relation pair run
// ONE synchronized R*-tree traversal, with every request's predicate
// evaluated per candidate pair and the results demultiplexed. Each
// request's response set, ordering, limit semantics and candidate-level
// statistics match its solo run exactly. See DESIGN.md §12.
type (
	// BatchResult is one request's outcome from JoinBatch: its pairs and
	// its per-step statistics, as if it had run alone.
	BatchResult = multistep.BatchResult
	// ShardedBatchOutcome is one request's outcome from
	// JoinShardedBatch: globally merged pairs plus aggregated stats.
	ShardedBatchOutcome = shard.BatchOutcome
)

// MaxBatchItems is the cap on requests per batched traversal; JoinBatch
// rejects larger batches with ErrBatchMismatch's sibling
// ErrBatchTooLarge, while JoinShardedBatch chunks transparently.
const MaxBatchItems = multistep.MaxBatchItems

// Batch errors.
var (
	// ErrBatchMismatch reports batched requests that cannot share one
	// traversal (different step-1 ε).
	ErrBatchMismatch = multistep.ErrBatchMismatch
	// ErrBatchTooLarge reports a JoinBatch of more than MaxBatchItems.
	ErrBatchTooLarge = multistep.ErrBatchTooLarge
)

// JoinBatch runs up to MaxBatchItems join requests over one relation
// pair as a single synchronized traversal. items[i] holds the i-th
// request's options (predicate, workers, limit, explain...); the i-th
// result corresponds to it.
func JoinBatch(ctx context.Context, r, s *Relation, items [][]Option) ([]BatchResult, error) {
	return multistep.JoinBatch(ctx, r, s, nil, nil, items)
}

// JoinShardedBatch is JoinBatch over sharded relations: each tile pair
// is traversed once for all requests, and every request's pairs are
// merged and sorted globally as in JoinSharded. Batches larger than
// MaxBatchItems are chunked transparently.
func JoinShardedBatch(ctx context.Context, r, s *Sharded, items [][]Option) ([]ShardedBatchOutcome, error) {
	return shard.JoinBatch(ctx, r, s, nil, items)
}

// Sharded EXPLAIN types.
type (
	// ShardedExplain is the EXPLAIN record of a scatter-gather join:
	// the aggregate plus the per-tile-pair plans.
	ShardedExplain = shard.ExplainResult
	// TileExplain is the plan record of one tile-pair sub-join.
	TileExplain = shard.TileExplain
)

// ExplainSharded plans (and with run, executes) a scatter-gather join
// and returns the aggregate plus per-tile-pair plan records. Each tile
// pair is planned independently from its own tiles' statistics, so
// skewed tiles legitimately show different engines or worker counts.
func ExplainSharded(ctx context.Context, r, s *Sharded, run bool, opts ...Option) (ShardedExplain, error) {
	return shard.Explain(ctx, r, s, run, opts...)
}

// SaveShardedStore persists a sharded relation as a store directory:
// one relation store file per tile plus a manifest with the tile MBRs,
// object counts, global ID mapping and the config fingerprint.
func SaveShardedStore(dir string, sh *Sharded) error { return shard.Save(dir, sh) }

// OpenShardedStore reopens a store directory written by
// SaveShardedStore under the same cfg; the manifest and every tile's
// own fingerprint must match or opening fails with ErrConfigMismatch.
func OpenShardedStore(dir string, cfg Config) (*Sharded, error) { return shard.Open(dir, cfg) }

// IsShardedStore reports whether path is a sharded store directory (a
// directory containing a manifest), as opposed to a single relation
// store file.
func IsShardedStore(path string) bool { return shard.IsStoreDir(path) }

// WritePolygons persists a relation in the compact binary format of
// cmd/datagen.
func WritePolygons(w io.Writer, rel []*Polygon) error {
	return data.WriteRelation(w, rel)
}

// ReadPolygons loads a relation written by WritePolygons.
func ReadPolygons(r io.Reader) ([]*Polygon, error) {
	return data.ReadRelation(r)
}
