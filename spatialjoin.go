// Package spatialjoin is a from-scratch Go implementation of the
// multi-step spatial join processor of Brinkhoff, Kriegel, Schneider and
// Seeger (Multi-Step Processing of Spatial Joins, SIGMOD 1994), together
// with every substrate the paper depends on.
//
// This package is the public facade: it re-exports the geometry types,
// the join processor and the data generator so that a downstream user
// needs a single import. The implementation lives in the internal
// packages (see README.md for the map); the facade adds nothing beyond
// names, so the documentation of the aliased symbols applies unchanged.
//
// Minimal usage:
//
//	cfg := spatialjoin.DefaultConfig()
//	r := spatialjoin.NewRelation("cities", cityPolygons, cfg)
//	s := spatialjoin.NewRelation("forests", forestPolygons, cfg)
//	pairs, stats := spatialjoin.Join(r, s, cfg)
//
// The processor executes the paper's three steps: an R*-tree MBR-join, a
// geometric filter on conservative and progressive approximations
// (5-corner and maximum enclosed rectangle by default) and an exact
// geometry step on TR*-trees over trapezoid decompositions.
package spatialjoin

import (
	"io"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/data"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/storage"
)

// Geometry types.
type (
	// Point is a location in the two-dimensional data space.
	Point = geom.Point
	// Rect is an axis-parallel rectangle (an MBR).
	Rect = geom.Rect
	// Polygon is a polygonal region with optional holes.
	Polygon = geom.Polygon
	// Ring is a simple closed polygonal chain.
	Ring = geom.Ring
)

// Join processor types.
type (
	// Config selects the approximations, exact engine and storage
	// parameters of the processor.
	Config = multistep.Config
	// Relation is a preprocessed input of the join.
	Relation = multistep.Relation
	// Pair is one element of a join response set.
	Pair = multistep.Pair
	// Stats reports per-step measurements of one join.
	Stats = multistep.Stats
	// WindowStats reports per-step measurements of one window query.
	WindowStats = multistep.WindowStats
	// Engine selects the exact geometry algorithm.
	Engine = multistep.Engine
	// StreamOptions tunes the streaming pipeline of JoinStream (worker
	// count, batch size, bounded queue depth).
	StreamOptions = multistep.StreamOptions
	// ApproximationKind identifies a conservative or progressive
	// approximation of section 3 of the paper.
	ApproximationKind = approx.Kind
	// MapConfig parameterizes the synthetic cartographic data generator.
	MapConfig = data.MapConfig
	// BufferPolicy selects the page replacement policy of the R*-tree
	// buffers (Config.BufferPolicy).
	BufferPolicy = storage.Policy
	// Accessor is the page-access context of one query. A Relation's
	// shared buffer is the sequential single-query context; Session is
	// the per-query context that makes concurrent queries safe.
	Accessor = storage.Accessor
	// Session is a per-query page-access context: a private replacement
	// simulation with isolated hit/miss counters, created from a
	// relation with Relation.NewSession. Sessions make one opened
	// Relation safe for any number of concurrent queries (pass them to
	// the *Access query variants or to StreamOptions.AccessR/AccessS).
	Session = storage.Session
)

// Buffer replacement policies.
const (
	PolicyLRU   = storage.LRU
	PolicyFIFO  = storage.FIFO
	PolicyClock = storage.Clock
)

// Exact engines.
const (
	EngineQuadratic  = multistep.EngineQuadratic
	EnginePlaneSweep = multistep.EnginePlaneSweep
	EngineTRStar     = multistep.EngineTRStar
)

// Approximation kinds.
const (
	MBR  = approx.MBR
	RMBR = approx.RMBR
	CH   = approx.CH
	C4   = approx.C4
	C5   = approx.C5
	MBC  = approx.MBC
	MBE  = approx.MBE
	MEC  = approx.MEC
	MER  = approx.MER
)

// NewPolygon builds a polygon from an outer boundary and optional holes.
func NewPolygon(outer []Point, holes ...[]Point) *Polygon {
	return geom.NewPolygon(outer, holes...)
}

// DefaultConfig returns the paper's recommended configuration (5-corner +
// MER filter, TR*-tree exact engine with node capacity 3, 4 KB pages).
func DefaultConfig() Config { return multistep.DefaultConfig() }

// NewRelation preprocesses a relation for joining under cfg: it computes
// the configured approximations of every polygon and builds the R*-tree.
func NewRelation(name string, polys []*Polygon, cfg Config) *Relation {
	return multistep.NewRelation(name, polys, cfg)
}

// Join computes the intersection join of two relations: all pairs whose
// polygonal regions share at least one point.
func Join(r, s *Relation, cfg Config) ([]Pair, Stats) {
	return multistep.Join(r, s, cfg)
}

// JoinParallel is Join spread over a worker pool (workers ≤ 0 selects
// GOMAXPROCS). The response set and statistics are identical to Join's.
func JoinParallel(r, s *Relation, cfg Config, workers int) ([]Pair, Stats) {
	return multistep.JoinParallel(r, s, cfg, workers)
}

// JoinStream runs the join as a streaming, fully parallel pipeline: the
// step 1 traversal is partitioned over workers, candidate pairs flow
// through bounded channels into a filter/exact worker pool, and emit
// receives every response pair from a single collector goroutine. Memory
// stays bounded by the pipeline depth instead of the candidate count; the
// emitted pair set and the statistics equal Join's exactly. A nil emit
// discards the pairs and returns only statistics. With per-query sessions
// in StreamOptions.AccessR/AccessS the join runs concurrently-safe
// against any other queries on the same relations.
func JoinStream(r, s *Relation, cfg Config, opts StreamOptions, emit func(Pair)) Stats {
	return multistep.JoinStream(r, s, cfg, opts, emit)
}

// DefaultStreamOptions returns the resolved default pipeline shape of
// JoinStream (GOMAXPROCS workers, 256-pair batches, 4×Workers queue).
func DefaultStreamOptions() StreamOptions { return multistep.DefaultStreamOptions() }

// JoinContains computes the inclusion join: all pairs (a, b) with the
// region of a containing the region of b.
func JoinContains(r, s *Relation, cfg Config) ([]Pair, Stats) {
	return multistep.JoinContains(r, s, cfg)
}

// JoinContainsAccess is JoinContains with each side's page visits routed
// through an explicit per-query access context (Relation.NewSession),
// making it safe to run concurrently with other queries on the same
// relations.
func JoinContainsAccess(r, s *Relation, axR, axS Accessor, cfg Config) ([]Pair, Stats) {
	return multistep.JoinContainsAccess(r, s, axR, axS, cfg)
}

// WindowQuery returns the IDs of the objects of r intersecting the
// window, processed with the same multi-step architecture as the join.
// It accounts on the relation's shared buffer — one query at a time; use
// WindowQueryAccess with a per-query Session for concurrent queries.
func WindowQuery(r *Relation, w Rect, cfg Config) ([]int32, WindowStats) {
	return multistep.WindowQuery(r, w, cfg)
}

// WindowQueryAccess is WindowQuery with page visits routed through an
// explicit per-query access context (Relation.NewSession). Any number of
// *Access queries may run concurrently on the same relation, each with
// isolated statistics.
func WindowQueryAccess(r *Relation, ax Accessor, w Rect, cfg Config) ([]int32, WindowStats) {
	return multistep.WindowQueryAccess(r, ax, w, cfg)
}

// PointQuery returns the IDs of the objects of r containing the point
// (shared-buffer accounting; see WindowQuery).
func PointQuery(r *Relation, p Point, cfg Config) ([]int32, WindowStats) {
	return multistep.PointQuery(r, p, cfg)
}

// PointQueryAccess is PointQuery with an explicit per-query access
// context (see WindowQueryAccess).
func PointQueryAccess(r *Relation, ax Accessor, p Point, cfg Config) ([]int32, WindowStats) {
	return multistep.PointQueryAccess(r, ax, p, cfg)
}

// Neighbor is one nearest-neighbour result: object ID and exact region
// distance.
type Neighbor = multistep.Neighbor

// NearestObjects returns the k objects of r closest to p by exact region
// distance, refined over R*-tree MBR-distance candidates (shared-buffer
// accounting; see WindowQuery).
func NearestObjects(r *Relation, p Point, k int) []Neighbor {
	return multistep.NearestObjects(r, p, k)
}

// NearestObjectsAccess is NearestObjects with an explicit per-query
// access context (see WindowQueryAccess).
func NearestObjectsAccess(r *Relation, ax Accessor, p Point, k int) []Neighbor {
	return multistep.NearestObjectsAccess(r, ax, p, k)
}

// GenerateMap produces a deterministic synthetic cartographic relation: a
// tiling of county-like polygons with fractal boundaries (see
// internal/data for the knobs).
func GenerateMap(cfg MapConfig) []*Polygon { return data.GenerateMap(cfg) }

// ShiftedCopy returns the paper's strategy A counterpart of a relation: a
// copy shifted diagonally by the given fraction of the average object
// extent.
func ShiftedCopy(rel []*Polygon, fraction float64) []*Polygon {
	return data.StrategyA(rel, fraction)
}

// RandomizedCopy returns the paper's strategy B counterpart: objects
// randomly shifted and rotated, rescaled so their areas sum to the
// data-space area.
func RandomizedCopy(rel []*Polygon, seed int64) []*Polygon {
	return data.StrategyB(rel, seed)
}

// Relation store errors.
var (
	// ErrBadRelationStore reports a corrupt relation store.
	ErrBadRelationStore = multistep.ErrBadRelationStore
	// ErrConfigMismatch reports a relation store built under a different
	// configuration than it is being opened with.
	ErrConfigMismatch = multistep.ErrConfigMismatch
)

// SaveRelation persists a fully preprocessed relation — polygons,
// approximations, the R*-tree in page-granular layout and (under the
// TR*-tree engine) every object's TR*-tree — so it can be reopened
// instantly with OpenRelation instead of re-running NewRelation. The
// relation must have been built with cfg; the store records a config
// fingerprint and refuses to open under a different configuration.
func SaveRelation(w io.Writer, rel *Relation, cfg Config) error {
	return multistep.SaveRelation(w, rel, cfg)
}

// OpenRelation restores a relation saved by SaveRelation under the same
// cfg. Joins on the restored relation produce the identical response set
// and identical statistics (including buffer hit/miss counts) as on the
// originally built relation.
func OpenRelation(r io.Reader, cfg Config) (*Relation, error) {
	return multistep.OpenRelation(r, cfg)
}

// SaveRelationFile is SaveRelation onto a paged store file
// (storage.FileStore layout) at path.
func SaveRelationFile(path string, rel *Relation, cfg Config) error {
	return multistep.SaveRelationFile(path, rel, cfg)
}

// OpenRelationFile opens a relation store written by SaveRelationFile,
// reading it page by page through a buffered disk-backed store.
func OpenRelationFile(path string, cfg Config) (*Relation, error) {
	return multistep.OpenRelationFile(path, cfg)
}

// WritePolygons persists a relation in the compact binary format of
// cmd/datagen.
func WritePolygons(w io.Writer, rel []*Polygon) error {
	return data.WriteRelation(w, rel)
}

// ReadPolygons loads a relation written by WritePolygons.
func ReadPolygons(r io.Reader) ([]*Polygon, error) {
	return data.ReadRelation(r)
}
