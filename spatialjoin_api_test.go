package spatialjoin_test

import (
	"bytes"
	"errors"
	"path/filepath"
	"testing"

	"spatialjoin"
)

// TestPublicAPI exercises the facade end to end: generation, intersection
// join, parallel join, inclusion join, window and point queries.
func TestPublicAPI(t *testing.T) {
	base := spatialjoin.GenerateMap(spatialjoin.MapConfig{Cells: 60, TargetVerts: 40, Seed: 99})
	shifted := spatialjoin.ShiftedCopy(base, 0.45)
	cfg := spatialjoin.DefaultConfig()

	r := spatialjoin.NewRelation("R", base, cfg)
	s := spatialjoin.NewRelation("S", shifted, cfg)

	pairs, st := spatialjoin.Join(r, s, cfg)
	if len(pairs) == 0 || st.CandidatePairs == 0 {
		t.Fatal("join produced nothing")
	}
	par, _ := spatialjoin.JoinParallel(r, s, cfg, 4)
	if len(par) != len(pairs) {
		t.Fatalf("parallel join %d pairs, sequential %d", len(par), len(pairs))
	}

	cont, _ := spatialjoin.JoinContains(r, r, cfg)
	selfCount := 0
	for _, p := range cont {
		if p.A == p.B {
			selfCount++
		}
	}
	if selfCount != len(base) {
		t.Errorf("inclusion join self pairs = %d, want %d", selfCount, len(base))
	}

	ids, wst := spatialjoin.WindowQuery(r, spatialjoin.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.6, MaxY: 0.6}, cfg)
	if len(ids) == 0 || wst.Candidates == 0 {
		t.Error("window query found nothing in the map center")
	}
	pt, _ := spatialjoin.PointQuery(r, spatialjoin.Point{X: 0.5, Y: 0.5}, cfg)
	if len(pt) > 2 {
		t.Errorf("point query in a tiling found %d covering objects", len(pt))
	}

	randomized := spatialjoin.RandomizedCopy(base, 7)
	if len(randomized) != len(base) {
		t.Error("randomized copy changed cardinality")
	}

	poly := spatialjoin.NewPolygon([]spatialjoin.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}})
	if poly.Area() <= 0 {
		t.Error("NewPolygon broken")
	}

	// Persist & reopen: the store round trip through the facade.
	var buf bytes.Buffer
	if err := spatialjoin.SaveRelation(&buf, r, cfg); err != nil {
		t.Fatalf("SaveRelation: %v", err)
	}
	reopened, err := spatialjoin.OpenRelation(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatalf("OpenRelation: %v", err)
	}
	rePairs, _ := spatialjoin.Join(reopened, s, cfg)
	if len(rePairs) != len(pairs) {
		t.Fatalf("reopened relation joined %d pairs, want %d", len(rePairs), len(pairs))
	}
	otherCfg := cfg
	otherCfg.BufferPolicy = spatialjoin.PolicyClock
	if _, err := spatialjoin.OpenRelation(bytes.NewReader(buf.Bytes()), otherCfg); !errors.Is(err, spatialjoin.ErrConfigMismatch) {
		t.Errorf("config mismatch not rejected: %v", err)
	}
	storePath := filepath.Join(t.TempDir(), "r.store")
	if err := spatialjoin.SaveRelationFile(storePath, r, cfg); err != nil {
		t.Fatalf("SaveRelationFile: %v", err)
	}
	fromFile, err := spatialjoin.OpenRelationFile(storePath, cfg)
	if err != nil {
		t.Fatalf("OpenRelationFile: %v", err)
	}
	filePairs, _ := spatialjoin.Join(fromFile, s, cfg)
	if len(filePairs) != len(pairs) {
		t.Fatalf("file-store relation joined %d pairs, want %d", len(filePairs), len(pairs))
	}

	// Engine and kind constants are wired.
	altCfg := cfg
	altCfg.Engine = spatialjoin.EnginePlaneSweep
	altCfg.Filter.Conservative = spatialjoin.RMBR
	altCfg.Filter.Progressive = spatialjoin.MEC
	altCfg.MECPrecision = 5e-3
	r2 := spatialjoin.NewRelation("R", base, altCfg)
	s2 := spatialjoin.NewRelation("S", shifted, altCfg)
	alt, _ := spatialjoin.Join(r2, s2, altCfg)
	if len(alt) != len(pairs) {
		t.Fatalf("alternative configuration changed the response set: %d vs %d", len(alt), len(pairs))
	}
}
