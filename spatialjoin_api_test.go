package spatialjoin_test

import (
	"bytes"
	"context"
	"errors"
	"path/filepath"
	"testing"

	"spatialjoin"
)

// TestPublicAPI exercises the facade end to end: generation, intersection
// join, parallel join, inclusion join, window and point queries.
func TestPublicAPI(t *testing.T) {
	base := spatialjoin.GenerateMap(spatialjoin.MapConfig{Cells: 60, TargetVerts: 40, Seed: 99})
	shifted := spatialjoin.ShiftedCopy(base, 0.45)
	cfg := spatialjoin.DefaultConfig()

	r := spatialjoin.NewRelation("R", base, cfg)
	s := spatialjoin.NewRelation("S", shifted, cfg)

	ctx := context.Background()
	pairs, st, err := spatialjoin.Join(ctx, r, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(pairs) == 0 || st.CandidatePairs == 0 {
		t.Fatal("join produced nothing")
	}
	par, _, err := spatialjoin.Join(ctx, r, s, spatialjoin.WithWorkers(4))
	if err != nil {
		t.Fatal(err)
	}
	if len(par) != len(pairs) {
		t.Fatalf("parallel join %d pairs, sequential %d", len(par), len(pairs))
	}

	cont, _, err := spatialjoin.Join(ctx, r, r, spatialjoin.WithPredicate(spatialjoin.Contains()))
	if err != nil {
		t.Fatal(err)
	}
	selfCount := 0
	for _, p := range cont {
		if p.A == p.B {
			selfCount++
		}
	}
	if selfCount != len(base) {
		t.Errorf("inclusion join self pairs = %d, want %d", selfCount, len(base))
	}

	win, err := spatialjoin.Query(ctx, r, spatialjoin.ForWindow(spatialjoin.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.6, MaxY: 0.6}))
	if err != nil {
		t.Fatal(err)
	}
	if len(win.IDs) == 0 || win.Stats.Candidates == 0 {
		t.Error("window query found nothing in the map center")
	}
	ptRes, err := spatialjoin.Query(ctx, r, spatialjoin.ForPoint(spatialjoin.Point{X: 0.5, Y: 0.5}))
	if err != nil {
		t.Fatal(err)
	}
	if len(ptRes.IDs) > 2 {
		t.Errorf("point query in a tiling found %d covering objects", len(ptRes.IDs))
	}

	// The within-distance predicate supersets the intersection join and
	// degenerates to it at ε = 0.
	atZero, _, err := spatialjoin.Join(ctx, r, s,
		spatialjoin.WithPredicate(spatialjoin.WithinDistance(0)))
	if err != nil {
		t.Fatal(err)
	}
	if len(atZero) != len(pairs) {
		t.Errorf("WithinDistance(0) returned %d pairs, Intersects %d", len(atZero), len(pairs))
	}
	near, _, err := spatialjoin.Join(ctx, r, s,
		spatialjoin.WithPredicate(spatialjoin.WithinDistance(0.02)))
	if err != nil {
		t.Fatal(err)
	}
	if len(near) < len(pairs) {
		t.Errorf("ε-join returned fewer pairs (%d) than the intersection join (%d)", len(near), len(pairs))
	}

	randomized := spatialjoin.RandomizedCopy(base, 7)
	if len(randomized) != len(base) {
		t.Error("randomized copy changed cardinality")
	}

	poly := spatialjoin.NewPolygon([]spatialjoin.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}})
	if poly.Area() <= 0 {
		t.Error("NewPolygon broken")
	}

	// Persist & reopen: the store round trip through the facade.
	var buf bytes.Buffer
	if err := spatialjoin.SaveRelation(&buf, r, cfg); err != nil {
		t.Fatalf("SaveRelation: %v", err)
	}
	reopened, err := spatialjoin.OpenRelation(bytes.NewReader(buf.Bytes()), cfg)
	if err != nil {
		t.Fatalf("OpenRelation: %v", err)
	}
	rePairs, _, err := spatialjoin.Join(ctx, reopened, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(rePairs) != len(pairs) {
		t.Fatalf("reopened relation joined %d pairs, want %d", len(rePairs), len(pairs))
	}
	otherCfg := cfg
	otherCfg.BufferPolicy = spatialjoin.PolicyClock
	if _, err := spatialjoin.OpenRelation(bytes.NewReader(buf.Bytes()), otherCfg); !errors.Is(err, spatialjoin.ErrConfigMismatch) {
		t.Errorf("config mismatch not rejected: %v", err)
	}
	storePath := filepath.Join(t.TempDir(), "r.store")
	if err := spatialjoin.SaveRelationFile(storePath, r, cfg); err != nil {
		t.Fatalf("SaveRelationFile: %v", err)
	}
	fromFile, err := spatialjoin.OpenRelationFile(storePath, cfg)
	if err != nil {
		t.Fatalf("OpenRelationFile: %v", err)
	}
	filePairs, _, err := spatialjoin.Join(ctx, fromFile, s)
	if err != nil {
		t.Fatal(err)
	}
	if len(filePairs) != len(pairs) {
		t.Fatalf("file-store relation joined %d pairs, want %d", len(filePairs), len(pairs))
	}

	// Sharded facade: build, join, query, persist, reopen — the sharded
	// response sets match the unsharded ones (the scatter-gather
	// equivalence itself is proven exhaustively in internal/shard).
	shR := spatialjoin.BuildSharded("R", base, 4, cfg)
	shS := spatialjoin.BuildSharded("S", shifted, 4, cfg)
	if shR.Shards() != 4 || shR.Objects() != len(base) {
		t.Fatalf("BuildSharded: %d shards, %d objects", shR.Shards(), shR.Objects())
	}
	shPairs, shSt, err := spatialjoin.JoinSharded(ctx, shR, shS)
	if err != nil {
		t.Fatal(err)
	}
	if len(shPairs) != len(pairs) {
		t.Fatalf("sharded join %d pairs, unsharded %d", len(shPairs), len(pairs))
	}
	if shSt.CandidatePairs != st.CandidatePairs || shSt.ExactHits != st.ExactHits {
		t.Errorf("sharded stats diverge: candidates %d vs %d, exact hits %d vs %d",
			shSt.CandidatePairs, st.CandidatePairs, shSt.ExactHits, st.ExactHits)
	}
	shWin, err := spatialjoin.QuerySharded(ctx, shR,
		spatialjoin.ForWindow(spatialjoin.Rect{MinX: 0.3, MinY: 0.3, MaxX: 0.6, MaxY: 0.6}))
	if err != nil {
		t.Fatal(err)
	}
	if len(shWin.IDs) != len(win.IDs) {
		t.Errorf("sharded window query %d objects, unsharded %d", len(shWin.IDs), len(win.IDs))
	}
	wrapped := spatialjoin.ShardedFromRelation(r)
	if wrapped.Shards() != 1 || wrapped.Objects() != len(base) {
		t.Errorf("ShardedFromRelation: %d shards, %d objects", wrapped.Shards(), wrapped.Objects())
	}
	storeDir := filepath.Join(t.TempDir(), "r.shards")
	if err := spatialjoin.SaveShardedStore(storeDir, shR); err != nil {
		t.Fatalf("SaveShardedStore: %v", err)
	}
	if !spatialjoin.IsShardedStore(storeDir) || spatialjoin.IsShardedStore(storePath) {
		t.Error("IsShardedStore misclassifies")
	}
	reShR, err := spatialjoin.OpenShardedStore(storeDir, cfg)
	if err != nil {
		t.Fatalf("OpenShardedStore: %v", err)
	}
	rePairsSh, _, err := spatialjoin.JoinSharded(ctx, reShR, shS)
	if err != nil {
		t.Fatal(err)
	}
	if len(rePairsSh) != len(pairs) {
		t.Fatalf("reopened sharded store joined %d pairs, want %d", len(rePairsSh), len(pairs))
	}
	if _, err := spatialjoin.OpenShardedStore(storeDir, otherCfg); !errors.Is(err, spatialjoin.ErrConfigMismatch) {
		t.Errorf("sharded config mismatch not rejected: %v", err)
	}

	// Engine and kind constants are wired.
	altCfg := cfg
	altCfg.Engine = spatialjoin.EnginePlaneSweep
	altCfg.Filter.Conservative = spatialjoin.RMBR
	altCfg.Filter.Progressive = spatialjoin.MEC
	altCfg.MECPrecision = 5e-3
	r2 := spatialjoin.NewRelation("R", base, altCfg)
	s2 := spatialjoin.NewRelation("S", shifted, altCfg)
	alt, _, err := spatialjoin.Join(ctx, r2, s2)
	if err != nil {
		t.Fatal(err)
	}
	if len(alt) != len(pairs) {
		t.Fatalf("alternative configuration changed the response set: %d vs %d", len(alt), len(pairs))
	}
}
