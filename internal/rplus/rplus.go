// Package rplus implements the R+-tree [SRF 87], the overlap-free
// alternative spatial access method the paper names next to the R*-tree
// (section 2.4). Directory regions partition the space instead of
// overlapping; data entries whose rectangles straddle a partition boundary
// are duplicated into every region they touch. Point queries therefore
// follow a single root-to-leaf path — the R+-tree's selling point — at the
// cost of duplicated entries and a larger tree.
//
// This implementation builds the tree statically by recursive median
// partitioning (the dynamic R+-tree insertion algorithm is notoriously
// underspecified in the original paper); queries route page touches
// through the same counting buffer as the R*-tree, so the two methods are
// directly comparable on the paper's I/O metric.
package rplus

import (
	"fmt"
	"sort"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/storage"
)

// Item is one data entry: key rectangle and object ID (same shape as
// rstar.Item).
type Item struct {
	Rect geom.Rect
	ID   int32
}

// Config sizes pages and buffer, mirroring rstar.Config.
type Config struct {
	PageSize       int
	LeafEntryBytes int
	BufferBytes    int
}

// DefaultConfig mirrors the section 5 setup.
func DefaultConfig() Config {
	return Config{PageSize: 4096, LeafEntryBytes: 48, BufferBytes: 128 << 10}
}

const (
	pageHeaderBytes    = 16
	internalEntryBytes = 20
)

// Tree is a bulk-built R+-tree.
type Tree struct {
	root     *node
	buf      storage.PageStore
	leafCap  int
	innerCap int
	height   int
	size     int // distinct items
	entries  int // stored entries including duplicates
	nextPage storage.PageID
}

type node struct {
	page   storage.PageID
	region geom.Rect // partition region: disjoint among siblings
	leaf   bool
	items  []Item
	kids   []*node
}

// Build constructs an R+-tree over the items.
func Build(items []Item, cfg Config) *Tree {
	leafCap := (cfg.PageSize - pageHeaderBytes) / cfg.LeafEntryBytes
	innerCap := (cfg.PageSize - pageHeaderBytes) / internalEntryBytes
	if leafCap < 2 || innerCap < 2 {
		panic(fmt.Sprintf("rplus: page size %d too small", cfg.PageSize))
	}
	t := &Tree{
		buf:      storage.NewBufferManager(cfg.BufferBytes, cfg.PageSize),
		leafCap:  leafCap,
		innerCap: innerCap,
		size:     len(items),
	}
	region := geom.EmptyRect()
	for _, it := range items {
		region = region.Union(it.Rect)
	}
	if region.IsEmpty() {
		region = geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}
	}
	t.root, t.height = t.build(items, region)
	return t
}

func (t *Tree) newNode(leaf bool, region geom.Rect) *node {
	n := &node{page: t.nextPage, leaf: leaf, region: region}
	t.nextPage++
	return n
}

// build recursively partitions the items over the region and returns the
// subtree with its height.
func (t *Tree) build(items []Item, region geom.Rect) (*node, int) {
	if len(items) <= t.leafCap {
		n := t.newNode(true, region)
		n.items = append(n.items, items...)
		t.entries += len(items)
		return n, 1
	}
	parts := t.partition(items, region, t.innerCap)
	if len(parts) == 1 {
		// Unsplittable (all items straddle every cut): oversized leaf.
		n := t.newNode(true, region)
		n.items = append(n.items, items...)
		t.entries += len(items)
		return n, 1
	}
	n := t.newNode(false, region)
	maxH := 0
	for _, part := range parts {
		child, h := t.build(part.items, part.region)
		n.kids = append(n.kids, child)
		if h > maxH {
			maxH = h
		}
	}
	return n, maxH + 1
}

type partition struct {
	region geom.Rect
	items  []Item
}

// partition cuts the region into up to fanout disjoint sub-regions along
// the wider axis, at item-center medians, duplicating straddling items.
func (t *Tree) partition(items []Item, region geom.Rect, fanout int) []partition {
	// Cut into two; recurse on the halves until the fanout budget or the
	// item counts stop improving.
	var rec func(items []Item, region geom.Rect, budget int) []partition
	rec = func(items []Item, region geom.Rect, budget int) []partition {
		if budget <= 1 || len(items) <= t.leafCap {
			return []partition{{region: region, items: items}}
		}
		vertical := region.Width() >= region.Height()
		centers := make([]float64, len(items))
		for i, it := range items {
			if vertical {
				centers[i] = (it.Rect.MinX + it.Rect.MaxX) / 2
			} else {
				centers[i] = (it.Rect.MinY + it.Rect.MaxY) / 2
			}
		}
		sort.Float64s(centers)
		cut := centers[len(centers)/2]
		var rLeft, rRight geom.Rect
		if vertical {
			if cut <= region.MinX || cut >= region.MaxX {
				return []partition{{region: region, items: items}}
			}
			rLeft = geom.Rect{MinX: region.MinX, MinY: region.MinY, MaxX: cut, MaxY: region.MaxY}
			rRight = geom.Rect{MinX: cut, MinY: region.MinY, MaxX: region.MaxX, MaxY: region.MaxY}
		} else {
			if cut <= region.MinY || cut >= region.MaxY {
				return []partition{{region: region, items: items}}
			}
			rLeft = geom.Rect{MinX: region.MinX, MinY: region.MinY, MaxX: region.MaxX, MaxY: cut}
			rRight = geom.Rect{MinX: region.MinX, MinY: cut, MaxX: region.MaxX, MaxY: region.MaxY}
		}
		var left, right []Item
		for _, it := range items {
			if it.Rect.Intersects(rLeft) {
				left = append(left, it)
			}
			if it.Rect.Intersects(rRight) {
				right = append(right, it)
			}
		}
		if len(left) == len(items) && len(right) == len(items) {
			// Every item straddles the cut: splitting duplicates all.
			return []partition{{region: region, items: items}}
		}
		out := rec(left, rLeft, budget/2)
		out = append(out, rec(right, rRight, budget-budget/2)...)
		return out
	}
	return rec(items, region, fanout)
}

// Buffer exposes the page store.
func (t *Tree) Buffer() storage.PageStore { return t.buf }

// Size returns the number of distinct items.
func (t *Tree) Size() int { return t.size }

// Entries returns the number of stored entries including duplicates — the
// R+-tree's storage overhead.
func (t *Tree) Entries() int { return t.entries }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// Pages returns the number of allocated pages.
func (t *Tree) Pages() int { return int(t.nextPage) }

// PointQuery calls fn for every item whose rectangle contains p. Because
// sibling regions are disjoint, the search follows a single path (plus
// boundary ties).
func (t *Tree) PointQuery(p geom.Point, fn func(Item)) {
	t.pointQuery(t.root, p, fn)
}

func (t *Tree) pointQuery(n *node, p geom.Point, fn func(Item)) {
	t.buf.Access(n.page)
	if n.leaf {
		for _, it := range n.items {
			if it.Rect.ContainsPoint(p) {
				fn(it)
			}
		}
		return
	}
	for _, k := range n.kids {
		if k.region.ContainsPoint(p) {
			t.pointQuery(k, p, fn)
			// Boundary points may lie in two adjacent regions; continue
			// only over the ties to avoid duplicate reports on interiors.
			if p.X != k.region.MinX && p.X != k.region.MaxX &&
				p.Y != k.region.MinY && p.Y != k.region.MaxY {
				return
			}
		}
	}
}

// WindowQuery calls fn once per distinct item whose rectangle intersects
// w (duplicates from partition boundaries are suppressed).
func (t *Tree) WindowQuery(w geom.Rect, fn func(Item)) {
	seen := make(map[int32]struct{})
	t.windowQuery(t.root, w, seen, fn)
}

func (t *Tree) windowQuery(n *node, w geom.Rect, seen map[int32]struct{}, fn func(Item)) {
	t.buf.Access(n.page)
	if n.leaf {
		for _, it := range n.items {
			if it.Rect.Intersects(w) {
				if _, dup := seen[it.ID]; dup {
					continue
				}
				seen[it.ID] = struct{}{}
				fn(it)
			}
		}
		return
	}
	for _, k := range n.kids {
		if k.region.Intersects(w) {
			t.windowQuery(k, w, seen, fn)
		}
	}
}

// Validate checks the R+-tree invariants: sibling regions are interior-
// disjoint, children lie inside their parent region, every leaf entry
// intersects its leaf region, and every distinct item is reachable.
func (t *Tree) Validate() error {
	ids := make(map[int32]struct{})
	if err := t.validate(t.root, ids); err != nil {
		return err
	}
	if len(ids) != t.size {
		return fmt.Errorf("rplus: %d distinct reachable items, want %d", len(ids), t.size)
	}
	return nil
}

func (t *Tree) validate(n *node, ids map[int32]struct{}) error {
	if n.leaf {
		for _, it := range n.items {
			if !it.Rect.Intersects(n.region) {
				return fmt.Errorf("rplus: leaf item %d outside its region", it.ID)
			}
			ids[it.ID] = struct{}{}
		}
		return nil
	}
	for i, a := range n.kids {
		if !n.region.Contains(a.region) {
			return fmt.Errorf("rplus: child region %v escapes parent %v", a.region, n.region)
		}
		for j := i + 1; j < len(n.kids); j++ {
			inter := a.region.Intersection(n.kids[j].region)
			if inter.Area() > 1e-12 {
				return fmt.Errorf("rplus: sibling regions overlap by %v", inter.Area())
			}
		}
		if err := t.validate(a, ids); err != nil {
			return err
		}
	}
	return nil
}
