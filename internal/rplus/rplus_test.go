package rplus

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/rstar"
)

func randItems(rng *rand.Rand, n int, space, maxExt float64) []Item {
	items := make([]Item, n)
	for i := range items {
		x := rng.Float64() * space
		y := rng.Float64() * space
		items[i] = Item{
			Rect: geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*maxExt, MaxY: y + rng.Float64()*maxExt},
			ID:   int32(i),
		}
	}
	return items
}

func TestBuildAndValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(971))
	for _, n := range []int{0, 1, 50, 2000} {
		items := randItems(rng, n, 100, 2)
		tree := Build(items, DefaultConfig())
		if err := tree.Validate(); err != nil {
			t.Fatalf("n=%d: %v", n, err)
		}
		if tree.Size() != n {
			t.Fatalf("Size = %d, want %d", tree.Size(), n)
		}
		if tree.Entries() < n {
			t.Fatalf("Entries %d below item count %d", tree.Entries(), n)
		}
	}
}

func TestPointQueryAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(977))
	items := randItems(rng, 3000, 100, 3)
	tree := Build(items, DefaultConfig())
	for trial := 0; trial < 200; trial++ {
		p := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		got := map[int32]int{}
		tree.PointQuery(p, func(it Item) { got[it.ID]++ })
		want := 0
		for _, it := range items {
			if it.Rect.ContainsPoint(p) {
				want++
				if got[it.ID] == 0 {
					t.Fatalf("trial %d: item %d missed", trial, it.ID)
				}
			}
		}
		total := 0
		for id, c := range got {
			if c > 1 {
				t.Fatalf("trial %d: item %d reported %d times", trial, id, c)
			}
			if !items[id].Rect.ContainsPoint(p) {
				t.Fatalf("trial %d: item %d wrongly reported", trial, id)
			}
			total += c
		}
		if total != want {
			t.Fatalf("trial %d: got %d, want %d", trial, total, want)
		}
	}
}

func TestWindowQueryAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(983))
	items := randItems(rng, 3000, 100, 3)
	tree := Build(items, DefaultConfig())
	for trial := 0; trial < 60; trial++ {
		x, y := rng.Float64()*90, rng.Float64()*90
		w := geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*10, MaxY: y + rng.Float64()*10}
		got := map[int32]bool{}
		tree.WindowQuery(w, func(it Item) {
			if got[it.ID] {
				t.Fatalf("trial %d: duplicate report of %d", trial, it.ID)
			}
			got[it.ID] = true
		})
		want := 0
		for _, it := range items {
			if it.Rect.Intersects(w) {
				want++
				if !got[it.ID] {
					t.Fatalf("trial %d: item %d missed", trial, it.ID)
				}
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: got %d, want %d", trial, len(got), want)
		}
	}
}

// TestPointQuerySinglePath verifies the R+-tree's key property: a point
// query away from partition boundaries touches at most one node per
// level, while an R*-tree may follow several overlapping paths.
func TestPointQuerySinglePath(t *testing.T) {
	rng := rand.New(rand.NewSource(991))
	items := randItems(rng, 4000, 100, 2.5)
	tree := Build(items, DefaultConfig())
	over := 0
	for trial := 0; trial < 300; trial++ {
		p := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		tree.Buffer().Clear()
		tree.PointQuery(p, func(Item) {})
		touched := tree.Buffer().Accesses()
		if touched > int64(tree.Height()) {
			over++ // only boundary ties may exceed one path
		}
	}
	if over > 6 {
		t.Errorf("%d of 300 point queries followed multiple paths; R+ regions must be disjoint", over)
	}
}

func TestPointQueryCheaperThanRStar(t *testing.T) {
	rng := rand.New(rand.NewSource(997))
	items := randItems(rng, 6000, 100, 2)
	plus := Build(items, DefaultConfig())
	star := rstar.New(rstar.DefaultConfig())
	for _, it := range items {
		star.Insert(rstar.Item{Rect: it.Rect, ID: it.ID})
	}
	plus.Buffer().Clear()
	star.Buffer().Clear()
	qrng := rand.New(rand.NewSource(1009))
	for q := 0; q < 500; q++ {
		p := geom.Point{X: qrng.Float64() * 100, Y: qrng.Float64() * 100}
		plus.PointQuery(p, func(Item) {})
		star.PointQuery(p, func(rstar.Item) {})
	}
	if plus.Buffer().Accesses() > star.Buffer().Accesses() {
		t.Errorf("R+ point queries touched %d pages, R* %d — the single-path property should win",
			plus.Buffer().Accesses(), star.Buffer().Accesses())
	}
	// And the price: duplicated entries.
	if plus.Entries() <= plus.Size() {
		t.Log("no duplicates arose; partition cuts avoided every rectangle (unusual but legal)")
	}
}
