// Package hist is a fixed-bucket, HDR-style latency histogram shared by
// the serving layer's per-endpoint statistics and the load harness
// (internal/loadgen). The bucket layout is log-linear: values are
// grouped into powers-of-two octaves, each octave split into a fixed
// number of linear sub-buckets, so relative quantile error is bounded
// (~1/subBuckets) across the whole dynamic range while the memory
// footprint stays constant. Recording is a single atomic increment —
// safe for any number of concurrent writers with no coordination — and
// reads (Quantile, Count, Merge) observe a consistent-enough snapshot
// for reporting purposes.
//
// Unlike a sampling reservoir, a fixed-bucket histogram never drops
// observations, so open-loop load generators can record the latency of
// every scheduled request and the tail (p99, max) is exact up to bucket
// resolution — the "no coordinated omission" discipline of HdrHistogram.
package hist

import (
	"math/bits"
	"sync/atomic"
	"time"
)

const (
	// subBits sets the linear resolution inside one octave: 2^subBits
	// sub-buckets, bounding relative error at ~1/2^subBits ≈ 1.6%.
	subBits = 6
	// octaves covers values from 1 up to 2^octaves·subBuckets; with
	// nanosecond recording that spans > 500 s of latency.
	octaves = 33
	// nBuckets is the flat bucket count.
	nBuckets = octaves << subBits
)

// Histogram counts int64 observations (by convention: nanoseconds) in
// log-linear buckets. The zero value is ready to use; all methods are
// safe for concurrent use.
type Histogram struct {
	counts [nBuckets]atomic.Int64
	count  atomic.Int64
	sum    atomic.Int64
	max    atomic.Int64
}

// bucketOf maps a value onto its flat bucket index.
func bucketOf(v int64) int {
	if v < 0 {
		v = 0
	}
	// Values below one full sub-bucket range land in octave 0's linear
	// region; above it, the top subBits bits under the leading one select
	// the sub-bucket.
	exp := bits.Len64(uint64(v)) // position of the leading one, 0 for v=0
	if exp <= subBits {
		return int(v)
	}
	oct := exp - subBits
	sub := int((v >> (oct - 1)) & ((1 << subBits) - 1))
	idx := oct<<subBits + sub
	if idx >= nBuckets {
		idx = nBuckets - 1
	}
	return idx
}

// lowerBound returns the smallest value mapping to bucket idx — the
// conservative value reported for quantiles falling in that bucket.
func lowerBound(idx int) int64 {
	oct := idx >> subBits
	sub := int64(idx & ((1 << subBits) - 1))
	if oct == 0 {
		return sub
	}
	return (1<<subBits + sub) << (oct - 1)
}

// Record adds one observation.
func (h *Histogram) Record(v int64) {
	if v < 0 {
		v = 0
	}
	h.counts[bucketOf(v)].Add(1)
	h.count.Add(1)
	h.sum.Add(v)
	for {
		old := h.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// RecordDuration adds one observation in nanoseconds.
func (h *Histogram) RecordDuration(d time.Duration) { h.Record(d.Nanoseconds()) }

// Count returns the number of observations.
func (h *Histogram) Count() int64 { return h.count.Load() }

// Sum returns the sum of all observations.
func (h *Histogram) Sum() int64 { return h.sum.Load() }

// Max returns the largest recorded observation (exact, not bucketed).
func (h *Histogram) Max() int64 { return h.max.Load() }

// Mean returns the average observation, or 0 when empty.
func (h *Histogram) Mean() float64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	return float64(h.sum.Load()) / float64(n)
}

// Quantile returns the value at quantile q ∈ [0, 1]: the lower bound of
// the bucket holding the ⌈q·n⌉-th observation (0 when empty). q=1
// returns the exact maximum.
func (h *Histogram) Quantile(q float64) int64 {
	n := h.count.Load()
	if n == 0 {
		return 0
	}
	if q >= 1 {
		return h.max.Load()
	}
	if q < 0 {
		q = 0
	}
	rank := int64(q*float64(n) + 0.5)
	if rank < 1 {
		rank = 1
	}
	var seen int64
	for i := 0; i < nBuckets; i++ {
		seen += h.counts[i].Load()
		if seen >= rank {
			return lowerBound(i)
		}
	}
	return h.max.Load()
}

// Merge adds other's observations into h. The exact max is preserved;
// bucket counts add.
func (h *Histogram) Merge(other *Histogram) {
	for i := 0; i < nBuckets; i++ {
		if c := other.counts[i].Load(); c != 0 {
			h.counts[i].Add(c)
		}
	}
	h.count.Add(other.count.Load())
	h.sum.Add(other.sum.Load())
	for {
		old, v := h.max.Load(), other.max.Load()
		if v <= old || h.max.CompareAndSwap(old, v) {
			return
		}
	}
}

// Snapshot is a fixed set of reporting quantiles in milliseconds — the
// shape both /stats and the load harness report.
type Snapshot struct {
	Count  int64   `json:"count"`
	P50Ms  float64 `json:"p50_ms"`
	P95Ms  float64 `json:"p95_ms"`
	P99Ms  float64 `json:"p99_ms"`
	MaxMs  float64 `json:"max_ms"`
	MeanMs float64 `json:"mean_ms"`
}

// Snapshot returns the standard reporting quantiles.
func (h *Histogram) Snapshot() Snapshot {
	ms := func(ns int64) float64 { return float64(ns) / 1e6 }
	return Snapshot{
		Count:  h.Count(),
		P50Ms:  ms(h.Quantile(0.50)),
		P95Ms:  ms(h.Quantile(0.95)),
		P99Ms:  ms(h.Quantile(0.99)),
		MaxMs:  ms(h.Max()),
		MeanMs: h.Mean() / 1e6,
	}
}
