package hist

import (
	"math/rand"
	"slices"
	"sync"
	"testing"
)

// TestBucketBounds pins the log-linear bucket invariants: every value
// maps into a bucket whose lower bound is ≤ the value, and the bucket's
// relative width is bounded by 1/2^subBits above the linear region.
func TestBucketBounds(t *testing.T) {
	for _, v := range []int64{0, 1, 2, 63, 64, 65, 127, 128, 1000, 4095, 4096, 1 << 20, 1<<40 + 12345, 1 << 62} {
		idx := bucketOf(v)
		lo := lowerBound(idx)
		if lo > v {
			t.Fatalf("bucketOf(%d)=%d has lower bound %d > value", v, idx, lo)
		}
		if idx+1 < nBuckets {
			hi := lowerBound(idx + 1)
			if hi <= v {
				t.Fatalf("value %d maps to bucket %d but next bucket starts at %d", v, idx, hi)
			}
			if v > 1<<subBits && float64(hi-lo)/float64(v) > 1.0/float64(1<<subBits)+1e-9 {
				t.Fatalf("bucket %d width %d too wide for value %d", idx, hi-lo, v)
			}
		}
	}
}

// TestQuantileAccuracy checks quantile estimates stay within one bucket
// width (~1.6% relative) of the exact order statistics.
func TestQuantileAccuracy(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	var h Histogram
	const n = 100000
	vals := make([]int64, n)
	for i := range vals {
		// Log-uniform over ~6 decades, the shape of a latency distribution.
		v := int64(1000 * (1 << uint(rng.Intn(20))))
		v += rng.Int63n(v)
		vals[i] = v
		h.Record(v)
	}
	if h.Count() != n {
		t.Fatalf("count %d, want %d", h.Count(), n)
	}
	// Exact quantiles via full sort.
	full := append([]int64(nil), vals...)
	slices.Sort(full)
	for _, q := range []float64{0.5, 0.9, 0.95, 0.99} {
		got := h.Quantile(q)
		exact := full[int(q*float64(n-1))]
		rel := float64(exact-got) / float64(exact)
		if rel < 0 {
			rel = -rel
		}
		if rel > 0.04 {
			t.Fatalf("q%.2f: got %d, exact %d (rel err %.3f)", q, got, exact, rel)
		}
	}
	if h.Quantile(1) != h.Max() {
		t.Fatalf("q1 %d != max %d", h.Quantile(1), h.Max())
	}
}

// TestConcurrentRecord hammers one histogram from many goroutines; run
// under -race this also proves the atomic discipline.
func TestConcurrentRecord(t *testing.T) {
	var h Histogram
	const workers, per = 8, 5000
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(seed int64) {
			defer wg.Done()
			rng := rand.New(rand.NewSource(seed))
			for i := 0; i < per; i++ {
				h.Record(rng.Int63n(1 << 30))
			}
		}(int64(w))
	}
	wg.Wait()
	if h.Count() != workers*per {
		t.Fatalf("count %d, want %d", h.Count(), workers*per)
	}
	if h.Quantile(0.5) <= 0 || h.Max() <= 0 {
		t.Fatalf("degenerate stats: p50=%d max=%d", h.Quantile(0.5), h.Max())
	}
}

// TestMerge proves merged histograms report the union.
func TestMerge(t *testing.T) {
	var a, b Histogram
	for i := int64(1); i <= 100; i++ {
		a.Record(i * 1000)
	}
	b.Record(1 << 30)
	a.Merge(&b)
	if a.Count() != 101 {
		t.Fatalf("count %d, want 101", a.Count())
	}
	if a.Max() != 1<<30 {
		t.Fatalf("max %d, want %d", a.Max(), int64(1)<<30)
	}
}
