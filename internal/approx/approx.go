// Package approx implements the object approximations of section 3 of the
// paper and the geometric-filter tests built on them.
//
// Conservative approximations enclose the object, so disjoint conservative
// approximations prove a candidate pair is a false hit: the minimum
// bounding rectangle (MBR), rotated minimum bounding rectangle (RMBR),
// convex hull (CH), minimum bounding 4- and 5-corner (4-C, 5-C), minimum
// bounding circle (MBC) and minimum bounding ellipse (MBE).
//
// Progressive approximations are enclosed by the object, so intersecting
// progressive approximations prove a hit: the maximum enclosed circle
// (MEC) and the maximum enclosed rectangle (MER). The false-area test
// (section 3.3) proves hits from conservative approximations alone when
// the intersection area of the approximations exceeds the sum of the
// objects' false areas.
package approx

import (
	"fmt"
	"math"
	"strings"

	"spatialjoin/internal/convex"
	"spatialjoin/internal/geom"
)

// Kind identifies an approximation type of section 3 (Figure 3 plus the
// two progressive approximations of section 3.3).
type Kind int

// The approximation kinds investigated in the paper. The first seven are
// conservative, the last two progressive.
const (
	MBR  Kind = iota // minimum bounding rectangle (4 parameters)
	RMBR             // rotated minimum bounding rectangle (5 parameters)
	CH               // convex hull (variable parameters)
	C4               // minimum bounding 4-corner (8 parameters)
	C5               // minimum bounding 5-corner (10 parameters)
	MBC              // minimum bounding circle (3 parameters)
	MBE              // minimum bounding ellipse (5 parameters)
	MEC              // maximum enclosed circle (3 parameters, progressive)
	MER              // maximum enclosed rectangle (4 parameters, progressive)
)

// ConservativeKinds lists the conservative kinds in the order the paper's
// tables report them.
var ConservativeKinds = []Kind{MBC, MBE, RMBR, C4, C5, CH}

// ProgressiveKinds lists the progressive kinds.
var ProgressiveKinds = []Kind{MEC, MER}

// ParseKind parses a kind abbreviation as printed by String,
// case-insensitively and ignoring dashes ("5C", "5-c", "RMBR", "MER", …).
func ParseKind(s string) (Kind, error) {
	switch strings.ToUpper(strings.ReplaceAll(s, "-", "")) {
	case "MBR":
		return MBR, nil
	case "RMBR":
		return RMBR, nil
	case "CH":
		return CH, nil
	case "4C", "C4":
		return C4, nil
	case "5C", "C5":
		return C5, nil
	case "MBC":
		return MBC, nil
	case "MBE":
		return MBE, nil
	case "MEC":
		return MEC, nil
	case "MER":
		return MER, nil
	}
	return 0, fmt.Errorf("approx: unknown approximation %q", s)
}

// String returns the paper's abbreviation for the kind.
func (k Kind) String() string {
	switch k {
	case MBR:
		return "MBR"
	case RMBR:
		return "RMBR"
	case CH:
		return "CH"
	case C4:
		return "4-C"
	case C5:
		return "5-C"
	case MBC:
		return "MBC"
	case MBE:
		return "MBE"
	case MEC:
		return "MEC"
	case MER:
		return "MER"
	default:
		return fmt.Sprintf("Kind(%d)", int(k))
	}
}

// Conservative reports whether k encloses the object (as opposed to being
// enclosed by it).
func (k Kind) Conservative() bool { return k != MEC && k != MER }

// Circle is a disk given by the paper's three parameters: center and
// radius. It serves both as the minimum bounding circle (conservative) and
// the maximum enclosed circle (progressive).
type Circle struct {
	C geom.Point
	R float64
}

// Area returns the disk area.
func (c Circle) Area() float64 { return math.Pi * c.R * c.R }

// ContainsPoint reports whether p lies in the closed disk.
func (c Circle) ContainsPoint(p geom.Point) bool {
	return c.C.Dist(p) <= c.R+1e-9
}

// Intersects reports whether two closed disks share a point.
func (c Circle) Intersects(d Circle) bool {
	return c.C.Dist(d.C) <= c.R+d.R
}

// Outline returns a regular n-gon inscribed in the circle, used only for
// area metrics (e.g. the MBR-based false area of Figure 4), never for the
// filter itself.
func (c Circle) Outline(n int) geom.Ring {
	ring := make(geom.Ring, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		ring[i] = geom.Point{X: c.C.X + c.R*math.Cos(a), Y: c.C.Y + c.R*math.Sin(a)}
	}
	return ring
}

// Ellipse is the paper's five-parameter minimum bounding ellipse, stored
// as the image of the unit disk under the linear map B around center C
// (see convex.EllipseSupport).
type Ellipse = convex.EllipseSupport

// EllipseOutline returns a polygonal outline of e with n vertices,
// used only for area metrics.
func EllipseOutline(e Ellipse, n int) geom.Ring {
	ring := make(geom.Ring, n)
	for i := 0; i < n; i++ {
		a := 2 * math.Pi * float64(i) / float64(n)
		ux, uy := math.Cos(a), math.Sin(a)
		ring[i] = geom.Point{
			X: e.C.X + e.B00*ux + e.B01*uy,
			Y: e.C.Y + e.B10*ux + e.B11*uy,
		}
	}
	if !ring.IsCCW() {
		for i, j := 0, len(ring)-1; i < j; i, j = i+1, j-1 {
			ring[i], ring[j] = ring[j], ring[i]
		}
	}
	return ring
}

// NumParams returns the storage requirement of kind k in parameters
// (coordinates/scalars), as quoted in Figure 3. For CH the requirement is
// variable: pass the hull size via chVertices (2 parameters per vertex).
func (k Kind) NumParams(chVertices int) int {
	switch k {
	case MBR:
		return 4
	case RMBR:
		return 5
	case CH:
		return 2 * chVertices
	case C4:
		return 8
	case C5:
		return 10
	case MBC:
		return 3
	case MBE:
		return 5
	case MEC:
		return 3
	case MER:
		return 4
	default:
		return 0
	}
}

// ByteSize returns the storage requirement in bytes used by the R*-tree
// entry-size model of sections 3.4 and 5 (4 bytes per parameter, as
// implied by the paper's 16-byte MBR).
func (k Kind) ByteSize(chVertices int) int { return 4 * k.NumParams(chVertices) }
