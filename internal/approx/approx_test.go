package approx

import (
	"math"
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
)

// starPoly returns a random star-shaped polygon around (cx, cy) — the test
// stand-in for the paper's cartographic objects.
func starPoly(rng *rand.Rand, cx, cy, radius float64, n int) *geom.Polygon {
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		ang := 2 * math.Pi * float64(i) / float64(n)
		r := radius * (0.35 + 0.65*rng.Float64())
		pts[i] = geom.Point{X: cx + r*math.Cos(ang), Y: cy + r*math.Sin(ang)}
	}
	return geom.NewPolygon(pts)
}

func sq(cx, cy, half float64) []geom.Point {
	return []geom.Point{
		{X: cx - half, Y: cy - half}, {X: cx + half, Y: cy - half},
		{X: cx + half, Y: cy + half}, {X: cx - half, Y: cy + half},
	}
}

func TestKindStringsAndParams(t *testing.T) {
	wantParams := map[Kind]int{MBR: 4, RMBR: 5, C4: 8, C5: 10, MBC: 3, MBE: 5, MEC: 3, MER: 4}
	for k, want := range wantParams {
		if got := k.NumParams(0); got != want {
			t.Errorf("%v params = %d, want %d", k, got, want)
		}
	}
	if got := CH.NumParams(26); got != 52 {
		t.Errorf("CH params = %d, want 52", got)
	}
	for _, k := range []Kind{MBR, RMBR, CH, C4, C5, MBC, MBE} {
		if !k.Conservative() {
			t.Errorf("%v must be conservative", k)
		}
	}
	for _, k := range []Kind{MEC, MER} {
		if k.Conservative() {
			t.Errorf("%v must be progressive", k)
		}
	}
	if MBR.String() != "MBR" || C5.String() != "5-C" || MER.String() != "MER" {
		t.Error("kind names must match the paper's abbreviations")
	}
}

func TestMinBoundingCircleBasics(t *testing.T) {
	pts := []geom.Point{{X: -1, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 0.2}}
	c := MinBoundingCircle(pts)
	if !almostEq(c.R, 1, 1e-9) || !almostEq(c.C.X, 0, 1e-9) || !almostEq(c.C.Y, 0, 1e-9) {
		t.Errorf("MBC = %+v, want center (0,0) radius 1", c)
	}
	if got := MinBoundingCircle(nil); got.R != 0 {
		t.Error("empty input must give zero circle")
	}
	one := MinBoundingCircle([]geom.Point{{X: 3, Y: 4}})
	if one.R != 0 || one.C != (geom.Point{X: 3, Y: 4}) {
		t.Errorf("single point MBC = %+v", one)
	}
}

// bruteMinCircle finds the minimum enclosing circle by trying all pairs
// and triples — O(n⁴), test-only ground truth.
func bruteMinCircle(pts []geom.Point) Circle {
	best := Circle{R: math.Inf(1)}
	contains := func(c Circle) bool {
		for _, p := range pts {
			if c.C.Dist(p) > c.R+1e-9 {
				return false
			}
		}
		return true
	}
	for i := range pts {
		for j := i + 1; j < len(pts); j++ {
			if c := circleFrom2(pts[i], pts[j]); c.R < best.R && contains(c) {
				best = c
			}
			for k := j + 1; k < len(pts); k++ {
				if c := circleFrom3(pts[i], pts[j], pts[k]); c.R < best.R && contains(c) {
					best = c
				}
			}
		}
	}
	return best
}

func TestMinBoundingCirclePropertyMinimalAndConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(17))
	for trial := 0; trial < 50; trial++ {
		n := 3 + rng.Intn(12)
		pts := make([]geom.Point, n)
		for i := range pts {
			pts[i] = geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 10}
		}
		c := MinBoundingCircle(pts)
		for _, p := range pts {
			if c.C.Dist(p) > c.R+1e-9 {
				t.Fatalf("trial %d: MBC does not contain %v", trial, p)
			}
		}
		want := bruteMinCircle(pts)
		if c.R > want.R*(1+1e-6)+1e-9 {
			t.Fatalf("trial %d: MBC radius %v not minimal (brute force %v)", trial, c.R, want.R)
		}
	}
}

func TestMinBoundingEllipseConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(19))
	for trial := 0; trial < 40; trial++ {
		poly := starPoly(rng, rng.Float64()*5, rng.Float64()*5, 1+rng.Float64(), 5+rng.Intn(40))
		var verts []geom.Point
		verts = poly.Vertices(verts)
		e := MinBoundingEllipse(verts)
		for _, p := range verts {
			if !e.ContainsPoint(p) {
				t.Fatalf("trial %d: MBE does not contain vertex %v", trial, p)
			}
		}
		// The MBE should not be worse than the bounding circle (a circle
		// is an ellipse, so the minimum ellipse area is at most πR²).
		mbc := MinBoundingCircle(verts)
		if e.Area() > mbc.Area()*1.02 {
			t.Fatalf("trial %d: MBE area %v exceeds MBC area %v", trial, e.Area(), mbc.Area())
		}
	}
}

func TestMinBoundingEllipseElongated(t *testing.T) {
	// For an elongated point cloud the MBE must be much smaller than the MBC.
	var pts []geom.Point
	rng := rand.New(rand.NewSource(23))
	for i := 0; i < 60; i++ {
		pts = append(pts, geom.Point{X: rng.Float64() * 10, Y: rng.Float64() * 0.5})
	}
	e := MinBoundingEllipse(pts)
	c := MinBoundingCircle(pts)
	if e.Area() > c.Area()/3 {
		t.Errorf("elongated cloud: MBE area %v should be well below MBC area %v", e.Area(), c.Area())
	}
}

func TestMaxEnclosedCircleSquare(t *testing.T) {
	p := geom.NewPolygon(sq(0, 0, 1))
	c := MaxEnclosedCircle(p, 1e-4)
	if !almostEq(c.C.X, 0, 0.01) || !almostEq(c.C.Y, 0, 0.01) {
		t.Errorf("MEC center = %v, want ~(0,0)", c.C)
	}
	if c.R < 0.99 || c.R > 1.0 {
		t.Errorf("MEC radius = %v, want ~1 (and ≤ 1)", c.R)
	}
}

func TestMaxEnclosedCircleWithHole(t *testing.T) {
	// Annulus: the MEC must avoid the hole.
	p := geom.NewPolygon(sq(0, 0, 2), sq(0, 0, 1))
	c := MaxEnclosedCircle(p, 1e-3)
	// The optimum sits in a corner of the square annulus: the circle
	// touching the hole corner and both outer walls has radius
	// 2 − (2+√2)/(1+√2) ≈ 0.5858, beating the 0.5 band width.
	want := 2 - (2+math.Sqrt2)/(1+math.Sqrt2)
	if c.R > want+1e-3 {
		t.Errorf("annulus MEC radius = %v, want ≤ %v", c.R, want)
	}
	if c.R < want-0.02 {
		t.Errorf("annulus MEC radius = %v, want ≈ %v", c.R, want)
	}
	// Center must be inside the annulus, not in the hole.
	if !p.ContainsPoint(c.C) {
		t.Error("MEC center must lie inside the polygon")
	}
}

func TestMaxEnclosedCirclePropertyInside(t *testing.T) {
	rng := rand.New(rand.NewSource(29))
	for trial := 0; trial < 25; trial++ {
		poly := starPoly(rng, 0, 0, 1, 6+rng.Intn(20))
		c := MaxEnclosedCircle(poly, 1e-3)
		if c.R <= 0 {
			t.Fatalf("trial %d: MEC radius %v must be positive for a star polygon", trial, c.R)
		}
		for i := 0; i < 32; i++ {
			a := 2 * math.Pi * float64(i) / 32
			pt := geom.Point{X: c.C.X + c.R*math.Cos(a), Y: c.C.Y + c.R*math.Sin(a)}
			if !poly.ContainsPoint(pt) {
				t.Fatalf("trial %d: MEC boundary point %v escapes the polygon", trial, pt)
			}
		}
	}
}

func TestMaxEnclosedRectSquare(t *testing.T) {
	p := geom.NewPolygon(sq(0, 0, 1))
	r := MaxEnclosedRect(p)
	if !almostEq(r.Area(), 4, 1e-9) {
		t.Errorf("MER of a square = %v (area %v), want the square itself", r, r.Area())
	}
}

func TestMaxEnclosedRectLShape(t *testing.T) {
	// L-shape: the best vertex-aligned rectangle has area 2 (either arm).
	p := geom.NewPolygon([]geom.Point{
		{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 2}, {X: 0, Y: 2},
	})
	r := MaxEnclosedRect(p)
	if !almostEq(r.Area(), 2, 1e-9) {
		t.Errorf("MER of L-shape area = %v, want 2 (rect %v)", r.Area(), r)
	}
}

func TestMaxEnclosedRectPropertyInside(t *testing.T) {
	rng := rand.New(rand.NewSource(31))
	for trial := 0; trial < 40; trial++ {
		poly := starPoly(rng, 0, 0, 1, 6+rng.Intn(25))
		r := MaxEnclosedRect(poly)
		if r.IsEmpty() {
			t.Fatalf("trial %d: MER must exist for a star polygon", trial)
		}
		if r.Area() <= 0 {
			t.Fatalf("trial %d: MER area must be positive", trial)
		}
		// Sample the rectangle boundary and interior.
		for i := 0; i <= 8; i++ {
			for j := 0; j <= 8; j++ {
				pt := geom.Point{
					X: r.MinX + (r.MaxX-r.MinX)*float64(i)/8,
					Y: r.MinY + (r.MaxY-r.MinY)*float64(j)/8,
				}
				if !poly.ContainsPoint(pt) {
					t.Fatalf("trial %d: MER point %v escapes the polygon (rect %v)", trial, pt, r)
				}
			}
		}
	}
}

func TestComputeSetConservativeContainsVertices(t *testing.T) {
	rng := rand.New(rand.NewSource(37))
	for trial := 0; trial < 20; trial++ {
		poly := starPoly(rng, rng.Float64()*3, rng.Float64()*3, 0.5+rng.Float64(), 8+rng.Intn(30))
		s := Compute(poly, AllOptions())
		var verts []geom.Point
		verts = poly.Vertices(verts)
		for _, v := range verts {
			if !s.MBR.ContainsPoint(v) {
				t.Fatalf("MBR misses vertex %v", v)
			}
			if !s.RMBRA.ContainsPoint(v) {
				t.Fatalf("RMBR misses vertex %v", v)
			}
			if !s.CHA.ContainsPoint(v) {
				t.Fatalf("CH misses vertex %v", v)
			}
			if !s.C4A.ContainsPoint(v) {
				t.Fatalf("4-C misses vertex %v", v)
			}
			if !s.C5A.ContainsPoint(v) {
				t.Fatalf("5-C misses vertex %v", v)
			}
			if !s.MBCA.ContainsPoint(v) {
				t.Fatalf("MBC misses vertex %v", v)
			}
			if !s.MBEA.ContainsPoint(v) {
				t.Fatalf("MBE misses vertex %v", v)
			}
		}
	}
}

func TestComputeSetAreaOrdering(t *testing.T) {
	rng := rand.New(rand.NewSource(41))
	for trial := 0; trial < 20; trial++ {
		poly := starPoly(rng, 0, 0, 1, 10+rng.Intn(40))
		s := Compute(poly, AllOptions())
		// CH is the tightest convex conservative approximation.
		if s.Area(CH) > s.Area(C5)+1e-9 || s.Area(C5) > s.Area(C4)+1e-9 {
			t.Fatalf("area ordering violated: CH %v, 5-C %v, 4-C %v",
				s.Area(CH), s.Area(C5), s.Area(C4))
		}
		if s.Area(RMBR) > s.Area(MBR)+1e-9 {
			t.Fatalf("RMBR area %v exceeds MBR area %v", s.Area(RMBR), s.Area(MBR))
		}
		if s.Area(CH)+1e-9 < s.ObjArea {
			t.Fatalf("hull area below object area")
		}
		// Progressive approximations are enclosed.
		if s.Area(MEC) > s.ObjArea+1e-9 || s.Area(MER) > s.ObjArea+1e-9 {
			t.Fatalf("progressive approximation larger than the object")
		}
		// Quality metrics are well-formed.
		if s.NormalizedFalseArea(MBR) < -1e-9 {
			t.Fatalf("negative normalized false area")
		}
		for _, k := range []Kind{MEC, MER} {
			q := s.ProgressiveQuality(k)
			if q < 0 || q > 1+1e-9 {
				t.Fatalf("%v quality %v out of [0,1]", k, q)
			}
		}
		// Figure 4 measure: tighter approximations have smaller
		// MBR-based false area than the MBR itself.
		if s.MBRBasedFalseArea(CH) > s.NormalizedFalseArea(MBR)+1e-9 {
			t.Fatalf("CH MBR-based false area exceeds the MBR false area")
		}
	}
}

func TestFilterSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(43))
	polys := make([]*geom.Polygon, 40)
	sets := make([]*Set, len(polys))
	for i := range polys {
		polys[i] = starPoly(rng, rng.Float64()*4, rng.Float64()*4, 0.3+0.7*rng.Float64(), 6+rng.Intn(20))
		sets[i] = Compute(polys[i], AllOptions())
	}
	consChecked, progChecked, faChecked := 0, 0, 0
	for i := range polys {
		for j := i + 1; j < len(polys); j++ {
			truth := polys[i].Intersects(polys[j])
			for _, k := range ConservativeKinds {
				if !ConservativeIntersects(k, sets[i], sets[j]) {
					consChecked++
					if truth {
						t.Fatalf("UNSOUND: %v says disjoint but objects %d,%d intersect", k, i, j)
					}
				}
			}
			for _, k := range ProgressiveKinds {
				if ProgressiveIntersects(k, sets[i], sets[j]) {
					progChecked++
					if !truth {
						t.Fatalf("UNSOUND: %v says hit but objects %d,%d are disjoint", k, i, j)
					}
				}
			}
			for _, k := range []Kind{MBR, RMBR, C4, C5, CH} {
				if FalseAreaHit(k, sets[i], sets[j]) {
					faChecked++
					if !truth {
						t.Fatalf("UNSOUND: false-area test with %v fired on disjoint objects %d,%d", k, i, j)
					}
				}
			}
		}
	}
	if consChecked == 0 || progChecked == 0 {
		t.Fatalf("test exercised no decisive filter outcomes (cons %d, prog %d, fa %d)",
			consChecked, progChecked, faChecked)
	}
}

func TestClassify(t *testing.T) {
	rng := rand.New(rand.NewSource(47))
	f := RecommendedFilter()
	hits, falseHits, cands := 0, 0, 0
	for trial := 0; trial < 300; trial++ {
		a := starPoly(rng, 0, 0, 1, 8+rng.Intn(10))
		b := starPoly(rng, rng.Float64()*3-1.5, rng.Float64()*3-1.5, 1, 8+rng.Intn(10))
		sa := Compute(a, f.Kinds())
		sb := Compute(b, f.Kinds())
		truth := a.Intersects(b)
		switch f.Classify(sa, sb) {
		case Hit:
			hits++
			if !truth {
				t.Fatal("Classify said Hit on disjoint objects")
			}
		case FalseHit:
			falseHits++
			if truth {
				t.Fatal("Classify said FalseHit on intersecting objects")
			}
		default:
			cands++
		}
	}
	if hits == 0 || falseHits == 0 {
		t.Errorf("filter never decided anything: hits=%d falseHits=%d cands=%d", hits, falseHits, cands)
	}
}

func TestClassString(t *testing.T) {
	if Hit.String() != "hit" || FalseHit.String() != "false hit" || Candidate.String() != "candidate" {
		t.Error("Class names wrong")
	}
}

func TestApproxByteSize(t *testing.T) {
	// Section 5: MBR 16 B + 32 B info = 48 B baseline.
	if got := ApproxByteSize(); got != 48 {
		t.Errorf("baseline entry = %d bytes, want 48", got)
	}
	// + MER 16 B + 5-C 40 B = 104 B.
	if got := ApproxByteSize(MER, C5); got != 104 {
		t.Errorf("MER+5-C entry = %d bytes, want 104", got)
	}
	if got := ApproxByteSize(RMBR); got != 68 {
		t.Errorf("RMBR entry = %d bytes, want 68", got)
	}
}

func TestCircleOutline(t *testing.T) {
	c := Circle{C: geom.Point{X: 1, Y: 2}, R: 3}
	ring := c.Outline(96)
	if !ring.IsCCW() {
		t.Error("outline must be CCW")
	}
	if !almostEq(ring.Area(), c.Area(), c.Area()*0.01) {
		t.Errorf("outline area %v vs circle area %v", ring.Area(), c.Area())
	}
}

func TestEllipseOutline(t *testing.T) {
	e := Ellipse{C: geom.Point{X: 0, Y: 0}, B00: 2, B11: 1}
	ring := EllipseOutline(e, 96)
	if !ring.IsCCW() {
		t.Error("ellipse outline must be CCW")
	}
	if !almostEq(ring.Area(), e.Area(), e.Area()*0.01) {
		t.Errorf("outline area %v vs ellipse area %v", ring.Area(), e.Area())
	}
	// Mirrored map (negative determinant) must still give a CCW ring.
	m := Ellipse{C: geom.Point{X: 0, Y: 0}, B00: -2, B11: 1}
	if !EllipseOutline(m, 64).IsCCW() {
		t.Error("mirrored ellipse outline must be normalized to CCW")
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
