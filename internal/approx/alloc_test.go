package approx

import (
	"testing"

	"spatialjoin/internal/data"
)

// TestClassifyAllocFree is the allocation-regression guard of the step 2
// geometric filter: classifying a candidate pair with the paper's
// recommended configuration (5-corner + MER), with the false-area test
// enabled, and under the within-distance variant must not allocate — the
// filter runs once per candidate pair and its kernels (SAT, rectangle
// tests, pooled convex clipping) are allocation-free by construction.
func TestClassifyAllocFree(t *testing.T) {
	polys := data.GenerateMap(data.MapConfig{Cells: 16, TargetVerts: 32, Seed: 99})
	f := RecommendedFilter()
	opt := f.Kinds()
	a := Compute(polys[0], opt)
	b := Compute(polys[1], opt)
	c := Compute(polys[2], opt)

	cases := []struct {
		name string
		run  func()
	}{
		{"classify", func() {
			f.Classify(a, b)
			f.Classify(a, c)
			f.Classify(b, c)
		}},
		{"classify-false-area", func() {
			fa := f
			fa.UseFalseArea = true
			fa.Classify(a, b)
			fa.Classify(a, c)
		}},
		{"classify-within", func() {
			f.ClassifyWithin(a, b, 0.01)
			f.ClassifyWithin(a, c, 0.01)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.run() // warm the clip pool
			if allocs := testing.AllocsPerRun(100, tc.run); allocs != 0 {
				t.Fatalf("filter classify allocates %.1f objects per run, want 0", allocs)
			}
		})
	}
}
