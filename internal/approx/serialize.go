package approx

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"spatialjoin/internal/codec"
	"spatialjoin/internal/convex"
	"spatialjoin/internal/geom"
)

// An approximation set persists as a presence bitmask followed by the
// parameters of each present kind, so a relation store carries exactly
// the approximations the configuration computed — the "build once"
// counterpart of Compute (see DESIGN.md, "On-disk formats").
//
// Layout (little endian):
//
//	flags   uint16   bit i set ⇔ Kind(i) present (MBR always)
//	objArea float64
//	mbr     4×float64
//	per present kind, in Kind order:
//	  RMBR — center, W, H, angle, 4 corners (13 float64)
//	  CH/C4/C5 — n uint16, then n points (degenerate hulls allowed)
//	  MBC/MEC — center, radius (3 float64)
//	  MBE — center, B00, B01, B10, B11 (6 float64)
//	  MER — 4 float64

// ErrCorruptSet reports malformed serialized approximation data.
var ErrCorruptSet = errors.New("approx: corrupt serialized approximation set")

// AppendBinary appends the serialized set to buf and returns the
// extended slice. It fails (leaving buf unextended) when a ring exceeds
// the format's uint16 length field — in practice only conceivable for a
// convex hull of a degenerate, extremely detailed object.
func (s *Set) AppendBinary(buf []byte) ([]byte, error) {
	for _, ring := range []geom.Ring{s.CHA, s.C4A, s.C5A} {
		if len(ring) > math.MaxUint16 {
			return buf, fmt.Errorf("approx: ring of %d points exceeds the format", len(ring))
		}
	}
	var flags uint16
	for k := MBR; k <= MER; k++ {
		if s.Has(k) {
			flags |= 1 << uint(k)
		}
	}
	buf = binary.LittleEndian.AppendUint16(buf, flags)
	buf = appendF64(buf, s.ObjArea)
	buf = appendRect(buf, s.MBR)
	if s.RMBRA != nil {
		buf = appendPoint(buf, s.RMBRA.Center)
		buf = appendF64(buf, s.RMBRA.W, s.RMBRA.H, s.RMBRA.Angle)
		for _, c := range s.RMBRA.Corners {
			buf = appendPoint(buf, c)
		}
	}
	for _, ring := range []geom.Ring{s.CHA, s.C4A, s.C5A} {
		if ring == nil {
			continue
		}
		buf = binary.LittleEndian.AppendUint16(buf, uint16(len(ring)))
		for _, p := range ring {
			buf = appendPoint(buf, p)
		}
	}
	if s.MBCA != nil {
		buf = appendPoint(buf, s.MBCA.C)
		buf = appendF64(buf, s.MBCA.R)
	}
	if s.MBEA != nil {
		buf = appendPoint(buf, s.MBEA.C)
		buf = appendF64(buf, s.MBEA.B00, s.MBEA.B01, s.MBEA.B10, s.MBEA.B11)
	}
	if s.MECA != nil {
		buf = appendPoint(buf, s.MECA.C)
		buf = appendF64(buf, s.MECA.R)
	}
	if s.MERA != nil {
		buf = appendRect(buf, *s.MERA)
	}
	return buf, nil
}

// DecodeSet decodes one set from the front of data, returning the set
// and the number of bytes consumed.
func DecodeSet(data []byte) (*Set, int, error) {
	d := codec.New(data, fmt.Errorf("%w: truncated", ErrCorruptSet))
	point := func() geom.Point { return geom.Point{X: d.F64(), Y: d.F64()} }
	rect := func() geom.Rect {
		return geom.Rect{MinX: d.F64(), MinY: d.F64(), MaxX: d.F64(), MaxY: d.F64()}
	}
	flags := d.U16()
	s := &Set{ObjArea: d.F64(), MBR: rect()}
	if flags&(1<<uint(MBR)) == 0 || flags >= 1<<uint(MER+1) {
		return nil, 0, fmt.Errorf("%w: bad kind flags %#x", ErrCorruptSet, flags)
	}
	if flags&(1<<uint(RMBR)) != 0 {
		o := convex.OrientedRect{Center: point(), W: d.F64(), H: d.F64(), Angle: d.F64()}
		for i := range o.Corners {
			o.Corners[i] = point()
		}
		s.RMBRA = &o
	}
	for _, dst := range []struct {
		k    Kind
		ring *geom.Ring
	}{{CH, &s.CHA}, {C4, &s.C4A}, {C5, &s.C5A}} {
		if flags&(1<<uint(dst.k)) == 0 {
			continue
		}
		n := int(d.U16())
		if d.Err() == nil && d.Remaining() < n*16 {
			return nil, 0, fmt.Errorf("%w: ring of %d points exceeds the remaining data", ErrCorruptSet, n)
		}
		ring := make(geom.Ring, 0, n)
		for i := 0; i < n; i++ {
			ring = append(ring, point())
		}
		*dst.ring = ring
	}
	if flags&(1<<uint(MBC)) != 0 {
		s.MBCA = &Circle{C: point(), R: d.F64()}
	}
	if flags&(1<<uint(MBE)) != 0 {
		s.MBEA = &Ellipse{C: point(), B00: d.F64(), B01: d.F64(), B10: d.F64(), B11: d.F64()}
	}
	if flags&(1<<uint(MEC)) != 0 {
		s.MECA = &Circle{C: point(), R: d.F64()}
	}
	if flags&(1<<uint(MER)) != 0 {
		r := rect()
		s.MERA = &r
	}
	if d.Err() != nil {
		return nil, 0, d.Err()
	}
	return s, d.Pos(), nil
}

func appendF64(buf []byte, vs ...float64) []byte {
	for _, v := range vs {
		buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(v))
	}
	return buf
}

func appendPoint(buf []byte, p geom.Point) []byte { return appendF64(buf, p.X, p.Y) }

func appendRect(buf []byte, r geom.Rect) []byte {
	return appendF64(buf, r.MinX, r.MinY, r.MaxX, r.MaxY)
}
