package approx

import (
	"math"
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
)

func setOf(t *testing.T, pts []geom.Point) *Set {
	t.Helper()
	return Compute(geom.NewPolygon(pts), AllOptions())
}

func TestContainsApproxRectInRing(t *testing.T) {
	big := setOf(t, sq(0, 0, 2))
	small := setOf(t, sq(0, 0, 0.5))
	// MER of the small square inside the 5-C of the big square.
	if got := ContainsApprox(C5, big, MER, small); got != Yes {
		t.Errorf("MER(small) ⊆ 5-C(big): got %v, want Yes", got)
	}
	// Reverse direction cannot hold.
	if got := ContainsApprox(C5, small, MER, big); got != No {
		t.Errorf("MER(big) ⊆ 5-C(small): got %v, want No", got)
	}
	// MBR as container.
	if got := ContainsApprox(MBR, big, MBR, small); got != Yes {
		t.Errorf("MBR ⊆ MBR: got %v, want Yes", got)
	}
}

func TestContainsApproxCircleCases(t *testing.T) {
	big := setOf(t, sq(0, 0, 2))
	small := setOf(t, sq(0, 0, 0.5))
	// MEC(small) inside MBC(big).
	if got := ContainsApprox(MBC, big, MEC, small); got != Yes {
		t.Errorf("MEC(small) ⊆ MBC(big): got %v, want Yes", got)
	}
	// Circle in circle, negative.
	far := setOf(t, sq(10, 10, 0.5))
	if got := ContainsApprox(MBC, small, MEC, far); got != No {
		t.Errorf("disjoint circle containment: got %v, want No", got)
	}
	// Circle inside convex ring.
	if got := ContainsApprox(C5, big, MEC, small); got != Yes {
		t.Errorf("MEC(small) ⊆ 5-C(big): got %v, want Yes", got)
	}
	// Circle poking out of a ring.
	offset := setOf(t, sq(1.9, 0, 0.8))
	if got := ContainsApprox(C5, small, MEC, offset); got != No {
		t.Errorf("escaping circle: got %v, want No", got)
	}
}

func TestContainsApproxEllipseCases(t *testing.T) {
	big := setOf(t, sq(0, 0, 3))
	small := setOf(t, sq(0, 0, 0.5))
	// Ellipse containee in rect container: exact via the bounding box.
	if got := ContainsApprox(MBR, big, MBE, small); got != Yes {
		t.Errorf("MBE(small) ⊆ MBR(big): got %v, want Yes", got)
	}
	if got := ContainsApprox(MBR, small, MBE, big); got != No {
		t.Errorf("MBE(big) ⊆ MBR(small): got %v, want No", got)
	}
	// Ellipse as container: only certain answers are allowed to be acted
	// on; a far-away containee must give No.
	far := setOf(t, sq(10, 10, 0.5))
	if got := ContainsApprox(MBE, small, MEC, far); got != No {
		t.Errorf("far circle vs ellipse container: got %v, want No", got)
	}
	// Circle containee concentric with the ellipse: must never claim Yes
	// wrongly; Unknown is acceptable.
	if got := ContainsApprox(MBE, small, MEC, big); got == Yes {
		t.Error("large circle cannot be inside a small ellipse")
	}
}

func TestContainsApproxSoundnessRandom(t *testing.T) {
	rng := rand.New(rand.NewSource(907))
	for trial := 0; trial < 300; trial++ {
		mk := func(cx, cy, r float64, n int) ([]geom.Point, *geom.Polygon) {
			pts := make([]geom.Point, n)
			for i := 0; i < n; i++ {
				ang := 2 * math.Pi * float64(i) / float64(n)
				rr := r * (0.5 + 0.5*rng.Float64())
				pts[i] = geom.Point{X: cx + rr*math.Cos(ang), Y: cy + rr*math.Sin(ang)}
			}
			return pts, geom.NewPolygon(pts)
		}
		_, pa := mk(0, 0, 1.2, 10)
		_, pb := mk(rng.Float64()-0.5, rng.Float64()-0.5, 0.4, 8)
		sa := Compute(pa, AllOptions())
		sb := Compute(pb, AllOptions())
		truth := pa.ContainsPolygon(pb)
		// Hit direction: cons(b) ⊆ prog(a) ⇒ a ⊇ b.
		for _, pk := range ProgressiveKinds {
			for _, ck := range []Kind{MBR, RMBR, C4, C5, CH, MBC, MBE} {
				if ContainsApprox(pk, sa, ck, sb) == Yes && !truth {
					t.Fatalf("trial %d: UNSOUND Yes for cons=%v prog=%v", trial, ck, pk)
				}
			}
		}
		// False-hit direction: prog(b) ⊄ cons(a) ⇒ ¬(a ⊇ b).
		for _, ck := range []Kind{MBR, RMBR, C4, C5, CH, MBC, MBE} {
			for _, pk := range ProgressiveKinds {
				if ContainsApprox(ck, sa, pk, sb) == No && truth {
					t.Fatalf("trial %d: UNSOUND No for cons=%v prog=%v", trial, ck, pk)
				}
			}
		}
	}
}

func TestClassifyContainsDegenerate(t *testing.T) {
	f := RecommendedFilter()
	a := setOf(t, sq(0, 0, 1))
	b := setOf(t, sq(0, 0, 0.4))
	if got := f.ClassifyContains(a, b); got != Hit {
		t.Errorf("nested squares: got %v, want hit", got)
	}
	far := setOf(t, sq(5, 5, 0.4))
	if got := f.ClassifyContains(a, far); got != FalseHit {
		t.Errorf("far squares: got %v, want false hit", got)
	}
	// With the filter disabled the classifier must defer.
	off := FilterConfig{NoConservative: true, NoProgressive: true}
	if got := off.ClassifyContains(a, b); got != Candidate {
		t.Errorf("disabled filter: got %v, want candidate", got)
	}
}

func TestIntersectsRectAllKinds(t *testing.T) {
	s := setOf(t, sq(0, 0, 1))
	inside := geom.Rect{MinX: -0.2, MinY: -0.2, MaxX: 0.2, MaxY: 0.2}
	outside := geom.Rect{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}
	for _, k := range []Kind{MBR, RMBR, CH, C4, C5, MBC, MBE, MEC, MER} {
		if !IntersectsRect(k, s, inside) {
			t.Errorf("%v must intersect a window at the object center", k)
		}
		if IntersectsRect(k, s, outside) {
			t.Errorf("%v must not reach a far window", k)
		}
	}
}

func TestClassifyWindowSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(911))
	f := RecommendedFilter()
	decided := 0
	for trial := 0; trial < 400; trial++ {
		pts := make([]geom.Point, 8)
		cx, cy := rng.Float64()*4, rng.Float64()*4
		for i := range pts {
			ang := 2 * math.Pi * float64(i) / 8
			r := 0.3 + 0.7*rng.Float64()
			pts[i] = geom.Point{X: cx + r*math.Cos(ang), Y: cy + r*math.Sin(ang)}
		}
		p := geom.NewPolygon(pts)
		s := Compute(p, AllOptions())
		wx, wy := rng.Float64()*4, rng.Float64()*4
		w := geom.Rect{MinX: wx, MinY: wy, MaxX: wx + rng.Float64(), MaxY: wy + rng.Float64()}
		c := w.Corners()
		truth := p.Intersects(geom.NewPolygon(c[:]))
		switch f.ClassifyWindow(s, w) {
		case Hit:
			decided++
			if !truth {
				t.Fatalf("trial %d: window hit on non-intersecting object", trial)
			}
		case FalseHit:
			decided++
			if truth {
				t.Fatalf("trial %d: window false hit on intersecting object", trial)
			}
		}
	}
	if decided == 0 {
		t.Fatal("window classifier never decided")
	}
}
