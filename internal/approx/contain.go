package approx

import (
	"math"

	"spatialjoin/internal/geom"
)

// Tri is a three-valued answer for approximation-level containment tests.
// Filters may only act on certain answers: Yes proves containment (hit for
// the inclusion join), No proves non-containment (false hit); Unknown
// defers to the exact geometry processor.
type Tri int

// Tri values.
const (
	Unknown Tri = iota
	Yes
	No
)

// shape is the geometric value behind one approximation kind of a set.
type shape struct {
	ring    geom.Ring // convex ring kinds (CH, 4-C, 5-C, RMBR outline)
	rect    *geom.Rect
	circle  *Circle
	ellipse *Ellipse
}

func (s *Set) shapeOf(k Kind) shape {
	switch k {
	case MBR:
		r := s.MBR
		return shape{rect: &r}
	case MER:
		return shape{rect: s.MERA}
	case MBC:
		return shape{circle: s.MBCA}
	case MEC:
		return shape{circle: s.MECA}
	case MBE:
		return shape{ellipse: s.MBEA}
	case RMBR:
		return shape{ring: s.RMBRA.Ring()}
	case CH:
		return shape{ring: s.CHA}
	case C4:
		return shape{ring: s.C4A}
	case C5:
		return shape{ring: s.C5A}
	}
	panic("approx: unknown kind " + k.String())
}

// ContainsApprox decides whether the approximation of kind ck of a
// contains the approximation of kind ek of b, at the approximation level.
// The answer is exact (Yes/No) for every combination of convex rings,
// rectangles and circles; combinations involving ellipses fall back to
// sufficient conditions and may return Unknown. Degenerate (absent)
// shapes yield Unknown.
func ContainsApprox(ck Kind, a *Set, ek Kind, b *Set) Tri {
	container := a.shapeOf(ck)
	containee := b.shapeOf(ek)
	switch {
	case containee.rect != nil:
		if containee.rect.IsEmpty() {
			return Unknown
		}
		c := containee.rect.Corners()
		return containsPoints(container, c[:])
	case containee.ring != nil:
		if len(containee.ring) < 3 {
			return Unknown
		}
		return containsPoints(container, containee.ring)
	case containee.circle != nil:
		if containee.circle.R <= 0 {
			return Unknown
		}
		return containsCircle(container, *containee.circle)
	case containee.ellipse != nil:
		return containsEllipse(container, *containee.ellipse)
	}
	return Unknown
}

// containsPoints decides containment of a finite convex-generator point
// set (ring vertices or rectangle corners): for convex containers, all
// generators inside ⇔ the hull is inside.
func containsPoints(container shape, pts []geom.Point) Tri {
	in := func(p geom.Point) Tri {
		switch {
		case container.rect != nil:
			return boolTri(container.rect.ContainsPoint(p))
		case container.ring != nil:
			if len(container.ring) < 3 {
				return Unknown
			}
			return boolTri(container.ring.ContainsPoint(p))
		case container.circle != nil:
			return boolTri(container.circle.ContainsPoint(p))
		case container.ellipse != nil:
			return boolTri(container.ellipse.ContainsPoint(p))
		}
		return Unknown
	}
	for _, p := range pts {
		switch in(p) {
		case No:
			return No
		case Unknown:
			return Unknown
		}
	}
	return Yes
}

// containsCircle decides whether the container holds a full disk.
func containsCircle(container shape, c Circle) Tri {
	switch {
	case container.rect != nil:
		r := *container.rect
		return boolTri(c.C.X-c.R >= r.MinX && c.C.X+c.R <= r.MaxX &&
			c.C.Y-c.R >= r.MinY && c.C.Y+c.R <= r.MaxY)
	case container.circle != nil:
		return boolTri(container.circle.C.Dist(c.C)+c.R <= container.circle.R+1e-12)
	case container.ring != nil:
		ring := container.ring
		if len(ring) < 3 {
			return Unknown
		}
		if !ring.ContainsPoint(c.C) {
			return No
		}
		// Convex container: the disk fits iff the center keeps distance R
		// to every edge.
		for i := range ring {
			if ring.Edge(i).DistToPoint(c.C) < c.R-1e-12 {
				return No
			}
		}
		return Yes
	case container.ellipse != nil:
		// Only the easy negative is certain: center outside ⇒ not contained.
		if !container.ellipse.ContainsPoint(c.C) {
			return No
		}
		return Unknown
	}
	return Unknown
}

// containsEllipse decides whether the container holds a full ellipse using
// the ellipse's exact bounding box (axis extents of the linear map) for
// rectangles, and a sufficient radius bound for circles.
func containsEllipse(container shape, e Ellipse) Tri {
	extX := math.Hypot(e.B00, e.B01)
	extY := math.Hypot(e.B10, e.B11)
	switch {
	case container.rect != nil:
		r := *container.rect
		return boolTri(e.C.X-extX >= r.MinX && e.C.X+extX <= r.MaxX &&
			e.C.Y-extY >= r.MinY && e.C.Y+extY <= r.MaxY)
	case container.circle != nil:
		// Sufficient: center distance plus the largest semi-axis bound.
		sigma := math.Hypot(extX, extY) // ≥ σmax(B)
		if container.circle.C.Dist(e.C)+sigma <= container.circle.R+1e-12 {
			return Yes
		}
		if !container.circle.ContainsPoint(e.C) {
			return No
		}
		return Unknown
	case container.ring != nil:
		if len(container.ring) < 3 {
			return Unknown
		}
		if !container.ring.ContainsPoint(e.C) {
			return No
		}
		// Sufficient: the ellipse's bounding box fits.
		bb := geom.Rect{MinX: e.C.X - extX, MinY: e.C.Y - extY, MaxX: e.C.X + extX, MaxY: e.C.Y + extY}
		c := bb.Corners()
		if containsPoints(container, c[:]) == Yes {
			return Yes
		}
		return Unknown
	case container.ellipse != nil:
		if !container.ellipse.ContainsPoint(e.C) {
			return No
		}
		return Unknown
	}
	return Unknown
}

func boolTri(b bool) Tri {
	if b {
		return Yes
	}
	return No
}

// ClassifyContains runs the geometric filter for the inclusion join
// "a contains b" (section 2.2). The reasoning mirrors the intersection
// filter with the set inclusions reversed:
//
//   - b ⊆ a implies prog(b) ⊆ b ⊆ a ⊆ cons(a); so if prog(b) ⊄ cons(a),
//     the pair is a false hit.
//   - cons(b) ⊆ prog(a) implies b ⊆ cons(b) ⊆ prog(a) ⊆ a; a hit.
func (f FilterConfig) ClassifyContains(a, b *Set) Class {
	if !f.NoConservative && !f.NoProgressive {
		if ContainsApprox(f.Conservative, a, f.Progressive, b) == No {
			return FalseHit
		}
		if ContainsApprox(f.Progressive, a, f.Conservative, b) == Yes {
			return Hit
		}
	}
	return Candidate
}
