package approx

import (
	"spatialjoin/internal/convex"
	"spatialjoin/internal/geom"
)

// Options selects which approximations Compute derives for an object. The
// MBR is always computed — it is the geometric key of step 1. Computing
// only what an experiment needs matters: the paper's big relations hold
// 130,000 objects.
type Options struct {
	Conservative []Kind  // subset of {RMBR, CH, C4, C5, MBC, MBE}
	Progressive  []Kind  // subset of {MEC, MER}
	MECPrecision float64 // pole-of-inaccessibility precision; 0 = default
}

// AllOptions computes every approximation the paper investigates.
func AllOptions() Options {
	return Options{
		Conservative: []Kind{RMBR, CH, C4, C5, MBC, MBE},
		Progressive:  []Kind{MEC, MER},
	}
}

// Set bundles the approximations of one spatial object, mirroring what the
// paper stores next to the MBR in the R*-tree data pages plus the derived
// quantities (object area, false areas) the filter tests need. Fields for
// kinds that were not requested are zero.
type Set struct {
	ObjArea float64   // exact area of the object
	MBR     geom.Rect // minimum bounding rectangle, always present

	RMBRA *convex.OrientedRect // rotated minimum bounding rectangle
	CHA   geom.Ring            // convex hull
	C4A   geom.Ring            // minimum bounding 4-corner
	C5A   geom.Ring            // minimum bounding 5-corner
	MBCA  *Circle              // minimum bounding circle
	MBEA  *Ellipse             // minimum bounding ellipse

	MECA *Circle    // maximum enclosed circle
	MERA *geom.Rect // maximum enclosed rectangle
}

// Compute derives the requested approximations of p. This is the paper's
// object-insertion preprocessing: it runs once per object, not per join.
func Compute(p *geom.Polygon, opt Options) *Set {
	s := &Set{
		ObjArea: p.Area(),
		MBR:     p.Bounds(),
	}
	var hull geom.Ring
	needHull := false
	for _, k := range opt.Conservative {
		if k == RMBR || k == CH || k == C4 || k == C5 || k == MBE {
			needHull = true
		}
	}
	var verts []geom.Point
	if needHull || containsKind(opt.Conservative, MBC) {
		verts = p.Vertices(verts)
	}
	if needHull {
		hull = convex.Hull(verts)
	}
	for _, k := range opt.Conservative {
		switch k {
		case RMBR:
			o := convex.MinAreaRect(hull)
			s.RMBRA = &o
		case CH:
			s.CHA = hull
		case C4:
			s.C4A = convex.MinBoundingKGon(hull, 4)
		case C5:
			s.C5A = convex.MinBoundingKGon(hull, 5)
		case MBC:
			c := MinBoundingCircle(verts)
			s.MBCA = &c
		case MBE:
			e := MinBoundingEllipse(verts)
			s.MBEA = &e
		}
	}
	for _, k := range opt.Progressive {
		switch k {
		case MEC:
			c := MaxEnclosedCircle(p, opt.MECPrecision)
			s.MECA = &c
		case MER:
			r := MaxEnclosedRect(p)
			s.MERA = &r
		}
	}
	return s
}

func containsKind(ks []Kind, k Kind) bool {
	for _, kk := range ks {
		if kk == k {
			return true
		}
	}
	return false
}

// Has reports whether the approximation of kind k was computed.
func (s *Set) Has(k Kind) bool {
	switch k {
	case MBR:
		return true
	case RMBR:
		return s.RMBRA != nil
	case CH:
		return s.CHA != nil
	case C4:
		return s.C4A != nil
	case C5:
		return s.C5A != nil
	case MBC:
		return s.MBCA != nil
	case MBE:
		return s.MBEA != nil
	case MEC:
		return s.MECA != nil
	case MER:
		return s.MERA != nil
	}
	return false
}

// Area returns the area of the approximation of kind k. It panics if the
// kind was not computed.
func (s *Set) Area(k Kind) float64 {
	switch k {
	case MBR:
		return s.MBR.Area()
	case RMBR:
		return s.RMBRA.Area()
	case CH:
		return s.CHA.Area()
	case C4:
		return s.C4A.Area()
	case C5:
		return s.C5A.Area()
	case MBC:
		return s.MBCA.Area()
	case MBE:
		return s.MBEA.Area()
	case MEC:
		return s.MECA.Area()
	case MER:
		return s.MERA.Area()
	}
	panic("approx: unknown kind")
}

// outlineSegments controls the polygonization of curved approximations in
// area metrics; 96 segments keep the area error below 0.1 %.
const outlineSegments = 96

// Outline returns a polygonal outline of the approximation of kind k:
// exact for polygonal kinds, a 96-gon for circles and ellipses. Outlines
// back the area-based quality metrics, not the filter tests.
func (s *Set) Outline(k Kind) geom.Ring {
	switch k {
	case MBR:
		c := s.MBR.Corners()
		return geom.Ring(c[:])
	case RMBR:
		return s.RMBRA.Ring()
	case CH:
		return s.CHA
	case C4:
		return s.C4A
	case C5:
		return s.C5A
	case MBC:
		return s.MBCA.Outline(outlineSegments)
	case MBE:
		return EllipseOutline(*s.MBEA, outlineSegments)
	case MEC:
		return s.MECA.Outline(outlineSegments)
	case MER:
		c := s.MERA.Corners()
		return geom.Ring(c[:])
	}
	panic("approx: unknown kind")
}

// NumParams returns the storage requirement of the computed approximation
// of kind k in parameters (Figure 3); for CH it depends on the hull size.
func (s *Set) NumParams(k Kind) int {
	ch := 0
	if k == CH && s.CHA != nil {
		ch = len(s.CHA)
	}
	return k.NumParams(ch)
}

// FalseArea returns the false area of the conservative approximation of
// kind k: area(approximation) − area(object) (section 3.3). It is the one
// extra parameter the false-area test stores per object.
func (s *Set) FalseArea(k Kind) float64 { return s.Area(k) - s.ObjArea }

// NormalizedFalseArea returns the false area normalized to the object area
// — the Table 1 measure.
func (s *Set) NormalizedFalseArea(k Kind) float64 {
	if s.ObjArea == 0 {
		return 0
	}
	return s.FalseArea(k) / s.ObjArea
}

// MBRBasedFalseArea returns the Figure 4 quality measure of a conservative
// approximation stored in addition to the MBR: the false area of the
// intersection of the approximation with the MBR, normalized to the object
// area. The MBR is tested first, so only the part of the approximation
// inside the MBR matters.
func (s *Set) MBRBasedFalseArea(k Kind) float64 {
	if s.ObjArea == 0 {
		return 0
	}
	if k == MBR {
		return s.NormalizedFalseArea(MBR)
	}
	c := s.MBR.Corners()
	inter := convex.IntersectionArea(s.Outline(k), geom.Ring(c[:]))
	return (inter - s.ObjArea) / s.ObjArea
}

// ProgressiveQuality returns the Figure 8 measure of a progressive
// approximation: its area normalized to the object area (the fraction of
// the object the approximation covers).
func (s *Set) ProgressiveQuality(k Kind) float64 {
	if s.ObjArea == 0 {
		return 0
	}
	return s.Area(k) / s.ObjArea
}

// AreaExtension returns the product of the x and y extensions of the
// approximation of kind k — the section 3.4 measure of how much a
// non-rectilinear geometric key would blow up R*-tree page regions.
func (s *Set) AreaExtension(k Kind) float64 {
	if k == MBR {
		return s.MBR.Area()
	}
	return s.Outline(k).Bounds().Area()
}

// Support adapts the approximation of kind k to the GJK support interface.
func (s *Set) Support(k Kind) convex.Support {
	switch k {
	case MBC:
		return convex.CircleSupport{C: s.MBCA.C, R: s.MBCA.R}
	case MBE:
		return *s.MBEA
	case MEC:
		return convex.CircleSupport{C: s.MECA.C, R: s.MECA.R}
	default:
		return convex.PolygonSupport(s.Outline(k))
	}
}

// ApproxByteSize returns the modelled R*-tree entry payload in bytes for
// an object whose entry stores the MBR plus the given extra approximation
// kinds, plus the paper's 32 bytes of additional information (sections 3.4
// and 5: MBR 16 B, MER 16 B, RMBR 20 B, 5-C 40 B).
func ApproxByteSize(extra ...Kind) int {
	n := 16 + 32
	for _, k := range extra {
		switch k {
		case RMBR:
			n += 20
		case C5:
			n += 40
		case C4:
			n += 32
		case MER:
			n += 16
		case MEC:
			n += 12
		case MBC:
			n += 12
		case MBE:
			n += 20
		case CH:
			n += 4 * 2 * 26 // model: the paper's average hull size for Europe
		}
	}
	return n
}
