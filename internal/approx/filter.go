package approx

import (
	"math"

	"spatialjoin/internal/convex"
	"spatialjoin/internal/geom"
)

// The geometric filter of step 2 (section 2.4, Figure 1) classifies each
// candidate pair delivered by the MBR-join into one of three classes:
//
//	Hit      — the objects provably intersect (progressive approximations
//	           intersect, or the false-area test fires),
//	FalseHit — the objects provably do not intersect (conservative
//	           approximations are disjoint),
//	Candidate — undecided; the pair goes to the exact geometry processor.
type Class int

// Filter outcomes.
const (
	Candidate Class = iota
	Hit
	FalseHit
)

// String returns a human-readable class name.
func (c Class) String() string {
	switch c {
	case Hit:
		return "hit"
	case FalseHit:
		return "false hit"
	default:
		return "candidate"
	}
}

// ConservativeIntersects reports whether the conservative approximations
// of kind k of the two objects intersect. A negative answer proves the
// pair is a false hit; a positive answer proves nothing. Polygonal kinds
// use the separating-axis test, circles the analytic test, ellipses GJK.
func ConservativeIntersects(k Kind, a, b *Set) bool {
	switch k {
	case MBR:
		return a.MBR.Intersects(b.MBR)
	case RMBR:
		return convex.SATIntersects(a.RMBRA.Ring(), b.RMBRA.Ring())
	case CH:
		return convex.SATIntersects(a.CHA, b.CHA)
	case C4:
		return satOrDegenerate(a.C4A, b.C4A)
	case C5:
		return satOrDegenerate(a.C5A, b.C5A)
	case MBC:
		return a.MBCA.Intersects(*b.MBCA)
	case MBE:
		return convex.GJKIntersects(*a.MBEA, *b.MBEA)
	}
	panic("approx: not a conservative kind: " + k.String())
}

// satOrDegenerate handles k-gon rings that may have fewer than 3 vertices
// for degenerate hulls.
func satOrDegenerate(a, b geom.Ring) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	return convex.SATIntersects(a, b)
}

// ProgressiveIntersects reports whether the progressive approximations of
// kind k of the two objects intersect. A positive answer proves the pair
// is a hit (section 3.3): the approximations are subsets of the objects.
func ProgressiveIntersects(k Kind, a, b *Set) bool {
	switch k {
	case MEC:
		return a.MECA.R > 0 && b.MECA.R > 0 && a.MECA.Intersects(*b.MECA)
	case MER:
		return !a.MERA.IsEmpty() && !b.MERA.IsEmpty() && a.MERA.Intersects(*b.MERA)
	}
	panic("approx: not a progressive kind: " + k.String())
}

// FalseAreaHit applies the false-area test of section 3.3 with the
// conservative approximation of kind k:
//
//	area(Appr(a) ∩ Appr(b)) > falseArea(a) + falseArea(b)  ⇒  a ∩ b ≠ ∅.
//
// A positive answer proves a hit; a negative answer proves nothing.
func FalseAreaHit(k Kind, a, b *Set) bool {
	var inter float64
	switch k {
	case MBR:
		inter = a.MBR.OverlapArea(b.MBR)
	case RMBR, CH, C4, C5:
		ra, rb := a.Outline(k), b.Outline(k)
		if len(ra) < 3 || len(rb) < 3 {
			return false
		}
		inter = convex.IntersectionArea(ra, rb)
	case MBC, MBE:
		// Curved shapes: clip the polygonized outlines. The outline is
		// inscribed, so the intersection area is slightly underestimated —
		// the test stays sound (it can only miss hits, never invent them).
		inter = convex.IntersectionArea(a.Outline(k), b.Outline(k))
	default:
		panic("approx: not a conservative kind: " + k.String())
	}
	return inter > a.FalseArea(k)+b.FalseArea(k)
}

// FilterConfig selects the approximations the geometric filter uses, as in
// section 3.6: a conservative kind to identify false hits, a progressive
// kind to identify hits, and optionally the false-area test.
type FilterConfig struct {
	Conservative   Kind // e.g. C5 (the paper's recommendation); MBR disables
	Progressive    Kind // e.g. MER (the paper's recommendation)
	UseFalseArea   bool // additionally apply the false-area test
	NoConservative bool // skip the conservative step entirely
	NoProgressive  bool // skip the progressive step entirely
}

// RecommendedFilter is the paper's section 3.6 recommendation: identify
// false hits with the 5-corner and hits with the maximum enclosed
// rectangle.
func RecommendedFilter() FilterConfig {
	return FilterConfig{Conservative: C5, Progressive: MER}
}

// Classify runs the geometric filter on one candidate pair. The step order
// follows the paper: conservative test first (cheapest useful outcome:
// false hit), then progressive test, then optionally the false-area test.
func (f FilterConfig) Classify(a, b *Set) Class {
	if !f.NoConservative && f.Conservative != MBR {
		if !ConservativeIntersects(f.Conservative, a, b) {
			return FalseHit
		}
	}
	if !f.NoProgressive {
		if ProgressiveIntersects(f.Progressive, a, b) {
			return Hit
		}
	}
	if f.UseFalseArea {
		if FalseAreaHit(f.Conservative, a, b) {
			return Hit
		}
	}
	return Candidate
}

// ClassifyWithin runs the geometric filter on one candidate pair of the
// within-distance (ε-)join. The step order mirrors Classify:
//
//   - conservative approximations are supersets, so their distance lower
//     bounds the object distance — a conservative distance above eps
//     proves a false hit;
//   - progressive approximations are subsets, so their distance upper
//     bounds the object distance — a progressive distance of at most eps
//     proves a hit;
//   - the false-area test proves the objects intersect, i.e. distance 0,
//     which is a hit for every eps ≥ 0.
//
// Unlike the intersection filter, the MBR is a useful conservative kind
// here: step 1 prunes with the ε-expanded (per-axis) MBR test, while the
// Euclidean MBR distance additionally rejects diagonal near-misses.
// With eps = 0 the classification is equivalent to Classify wherever the
// distance kernels and the boolean intersection tests agree (they do for
// every polygonal kind; both are exact).
func (f FilterConfig) ClassifyWithin(a, b *Set, eps float64) Class {
	if !f.NoConservative {
		if ConservativeDist(f.Conservative, a, b) > eps {
			return FalseHit
		}
	}
	if !f.NoProgressive {
		if ProgressiveDist(f.Progressive, a, b) <= eps {
			return Hit
		}
	}
	if f.UseFalseArea {
		if FalseAreaHit(f.Conservative, a, b) {
			return Hit
		}
	}
	return Candidate
}

// ConservativeDist returns a sound lower bound of the object distance
// derived from the conservative approximations of kind k: the exact
// distance of the approximations for polygonal and circular kinds, and
// the MBR distance as the fallback for kinds without a cheap exact
// distance (ellipses) or with degenerate data. Supersets are closer than
// the objects, so any of these bounds the object distance from below.
func ConservativeDist(k Kind, a, b *Set) float64 {
	switch k {
	case MBR:
		return a.MBR.Dist(b.MBR)
	case RMBR:
		if a.RMBRA == nil || b.RMBRA == nil {
			return a.MBR.Dist(b.MBR)
		}
		return convex.Distance(a.RMBRA.Ring(), b.RMBRA.Ring())
	case CH:
		return ringDistOrMBR(a.CHA, b.CHA, a, b)
	case C4:
		return ringDistOrMBR(a.C4A, b.C4A, a, b)
	case C5:
		return ringDistOrMBR(a.C5A, b.C5A, a, b)
	case MBC:
		if a.MBCA == nil || b.MBCA == nil {
			return a.MBR.Dist(b.MBR)
		}
		return circleDist(a.MBCA, b.MBCA)
	case MBE:
		// No closed-form ellipse distance; the MBR distance is the sound
		// conservative fallback (an inscribed outline would overestimate).
		return a.MBR.Dist(b.MBR)
	}
	panic("approx: not a conservative kind: " + k.String())
}

// ringDistOrMBR is the exact convex-ring distance with the MBR fallback
// for degenerate (empty) hull rings.
func ringDistOrMBR(ra, rb geom.Ring, a, b *Set) float64 {
	if len(ra) == 0 || len(rb) == 0 {
		return a.MBR.Dist(b.MBR)
	}
	return convex.Distance(ra, rb)
}

// ProgressiveDist returns a sound upper bound of the object distance
// derived from the progressive approximations of kind k: their exact
// distance when both exist, +Inf (proving nothing) when either object has
// no progressive approximation. Subsets are farther apart than the
// objects, so the approximation distance bounds the object distance from
// above.
func ProgressiveDist(k Kind, a, b *Set) float64 {
	switch k {
	case MEC:
		if a.MECA == nil || b.MECA == nil || a.MECA.R <= 0 || b.MECA.R <= 0 {
			return math.Inf(1)
		}
		return circleDist(a.MECA, b.MECA)
	case MER:
		if a.MERA == nil || b.MERA == nil || a.MERA.IsEmpty() || b.MERA.IsEmpty() {
			return math.Inf(1)
		}
		return a.MERA.Dist(*b.MERA)
	}
	panic("approx: not a progressive kind: " + k.String())
}

// circleDist is the exact distance between two closed discs.
func circleDist(a, b *Circle) float64 {
	d := a.C.Dist(b.C) - a.R - b.R
	if d < 0 {
		return 0
	}
	return d
}

// Kinds returns the approximation kinds Classify consumes, for use as
// Compute options.
func (f FilterConfig) Kinds() Options {
	var opt Options
	if !f.NoConservative && f.Conservative != MBR {
		opt.Conservative = append(opt.Conservative, f.Conservative)
	} else if f.UseFalseArea && f.Conservative != MBR {
		opt.Conservative = append(opt.Conservative, f.Conservative)
	}
	if !f.NoProgressive {
		opt.Progressive = append(opt.Progressive, f.Progressive)
	}
	return opt
}
