package approx

import (
	"math"

	"spatialjoin/internal/convex"
	"spatialjoin/internal/geom"
)

// MinBoundingEllipse returns a minimum bounding ellipse (MBE) of pts.
//
// The paper uses Welzl's randomized algorithm [Wel 91]; this implementation
// substitutes Khachiyan's minimum-volume-enclosing-ellipsoid iteration on
// the convex hull vertices, which converges to the same ellipse within
// tolerance (see DESIGN.md, substitutions). The result is inflated so that
// it provably contains every input point, keeping the approximation
// conservative under floating-point rounding.
func MinBoundingEllipse(pts []geom.Point) Ellipse {
	hull := convex.Hull(pts)
	switch len(hull) {
	case 0:
		return Ellipse{}
	case 1:
		return Ellipse{C: hull[0]}
	case 2:
		// Degenerate: a segment. Return the thinnest ellipse around it.
		c := geom.Point{X: (hull[0].X + hull[1].X) / 2, Y: (hull[0].Y + hull[1].Y) / 2}
		d := hull[1].Sub(hull[0]).Scale(0.5)
		return Ellipse{C: c, B00: d.X, B10: d.Y, B01: -d.Y * 1e-9, B11: d.X * 1e-9}
	}

	n := len(hull)
	u := make([]float64, n)
	for i := range u {
		u[i] = 1 / float64(n)
	}
	const d = 2 // dimension
	const tol = 1e-9
	for iter := 0; iter < 2000; iter++ {
		// M = Σ u_i q_i q_iᵀ with q_i = (x_i, y_i, 1); find the point with
		// maximal Mahalanobis-like weight q_iᵀ M⁻¹ q_i.
		var m [3][3]float64
		for i, p := range hull {
			q := [3]float64{p.X, p.Y, 1}
			for r := 0; r < 3; r++ {
				for c := 0; c < 3; c++ {
					m[r][c] += u[i] * q[r] * q[c]
				}
			}
		}
		inv, ok := invert3x3(m)
		if !ok {
			break
		}
		maxVal := math.Inf(-1)
		maxIdx := 0
		for i, p := range hull {
			q := [3]float64{p.X, p.Y, 1}
			var v float64
			for r := 0; r < 3; r++ {
				for c := 0; c < 3; c++ {
					v += q[r] * inv[r][c] * q[c]
				}
			}
			if v > maxVal {
				maxVal = v
				maxIdx = i
			}
		}
		if maxVal-float64(d)-1 < tol {
			break
		}
		step := (maxVal - float64(d) - 1) / (float64(d+1) * (maxVal - 1))
		for i := range u {
			u[i] *= 1 - step
		}
		u[maxIdx] += step
	}

	// Center c = Σ u_i p_i; shape A = (1/d)·(Σ u_i p_i p_iᵀ − c cᵀ)⁻¹ so the
	// ellipse is {x : (x−c)ᵀ A (x−c) ≤ 1}.
	var cx, cy float64
	for i, p := range hull {
		cx += u[i] * p.X
		cy += u[i] * p.Y
	}
	var sxx, sxy, syy float64
	for i, p := range hull {
		sxx += u[i] * p.X * p.X
		sxy += u[i] * p.X * p.Y
		syy += u[i] * p.Y * p.Y
	}
	sxx -= cx * cx
	sxy -= cx * cy
	syy -= cy * cy
	det := sxx*syy - sxy*sxy
	if det <= geom.Eps*geom.Eps {
		// Nearly degenerate: fall back to the bounding-circle ellipse.
		mbc := MinBoundingCircle(pts)
		return Ellipse{C: mbc.C, B00: mbc.R, B11: mbc.R}
	}
	// A = (1/d)·S⁻¹ where S is the covariance-like matrix above.
	a00 := syy / det / d
	a01 := -sxy / det / d
	a11 := sxx / det / d
	center := geom.Point{X: cx, Y: cy}

	// Inflate so every point satisfies (p−c)ᵀ A (p−c) ≤ 1.
	maxQ := 0.0
	for _, p := range pts {
		dx := p.X - center.X
		dy := p.Y - center.Y
		q := a00*dx*dx + 2*a01*dx*dy + a11*dy*dy
		if q > maxQ {
			maxQ = q
		}
	}
	if maxQ > 1 {
		a00 /= maxQ
		a01 /= maxQ
		a11 /= maxQ
	}

	b00, b01, b10, b11 := sqrtmInverse2x2(a00, a01, a11)
	return Ellipse{C: center, B00: b00, B01: b01, B10: b10, B11: b11}
}

// invert3x3 inverts a 3×3 matrix by cofactor expansion.
func invert3x3(m [3][3]float64) ([3][3]float64, bool) {
	det := m[0][0]*(m[1][1]*m[2][2]-m[1][2]*m[2][1]) -
		m[0][1]*(m[1][0]*m[2][2]-m[1][2]*m[2][0]) +
		m[0][2]*(m[1][0]*m[2][1]-m[1][1]*m[2][0])
	if math.Abs(det) < 1e-300 {
		return [3][3]float64{}, false
	}
	var inv [3][3]float64
	inv[0][0] = (m[1][1]*m[2][2] - m[1][2]*m[2][1]) / det
	inv[0][1] = (m[0][2]*m[2][1] - m[0][1]*m[2][2]) / det
	inv[0][2] = (m[0][1]*m[1][2] - m[0][2]*m[1][1]) / det
	inv[1][0] = (m[1][2]*m[2][0] - m[1][0]*m[2][2]) / det
	inv[1][1] = (m[0][0]*m[2][2] - m[0][2]*m[2][0]) / det
	inv[1][2] = (m[0][2]*m[1][0] - m[0][0]*m[1][2]) / det
	inv[2][0] = (m[1][0]*m[2][1] - m[1][1]*m[2][0]) / det
	inv[2][1] = (m[0][1]*m[2][0] - m[0][0]*m[2][1]) / det
	inv[2][2] = (m[0][0]*m[1][1] - m[0][1]*m[1][0]) / det
	return inv, true
}

// sqrtmInverse2x2 returns B = A^{-1/2} for the symmetric positive-definite
// matrix A = [[a00 a01],[a01 a11]], via its eigendecomposition. B maps the
// unit disk onto the ellipse {x : xᵀ A x ≤ 1}.
func sqrtmInverse2x2(a00, a01, a11 float64) (b00, b01, b10, b11 float64) {
	// Eigenvalues of the symmetric 2×2 matrix.
	tr := a00 + a11
	det := a00*a11 - a01*a01
	disc := math.Sqrt(math.Max(0, tr*tr/4-det))
	l1 := tr/2 + disc
	l2 := tr/2 - disc
	// Eigenvectors.
	var v1, v2 geom.Point
	if math.Abs(a01) > geom.Eps {
		v1 = geom.Point{X: l1 - a11, Y: a01}
		v2 = geom.Point{X: l2 - a11, Y: a01}
	} else {
		// Diagonal matrix: eigenpairs are (a00, e_x) and (a11, e_y).
		v1 = geom.Point{X: 1, Y: 0}
		v2 = geom.Point{X: 0, Y: 1}
		l1, l2 = a00, a11
	}
	n1 := v1.Norm()
	n2 := v2.Norm()
	if n1 < geom.Eps || n2 < geom.Eps {
		v1, v2 = geom.Point{X: 1}, geom.Point{Y: 1}
		n1, n2 = 1, 1
	}
	v1 = v1.Scale(1 / n1)
	v2 = v2.Scale(1 / n2)
	s1 := 1 / math.Sqrt(math.Max(l1, 1e-300))
	s2 := 1 / math.Sqrt(math.Max(l2, 1e-300))
	// B = V diag(s) Vᵀ.
	b00 = s1*v1.X*v1.X + s2*v2.X*v2.X
	b01 = s1*v1.X*v1.Y + s2*v2.X*v2.Y
	b10 = b01
	b11 = s1*v1.Y*v1.Y + s2*v2.Y*v2.Y
	return
}
