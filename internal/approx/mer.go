package approx

import (
	"math"
	"sort"

	"spatialjoin/internal/geom"
)

// MERMaxCandidates caps the number of distinct x coordinates enumerated by
// MaxEnclosedRect. The paper's definition restricts rectangle coordinates
// to vertex coordinates; with complex objects (the BW relation averages
// 527 vertices) the exact enumeration is cubic, so the implementation
// subsamples the candidate set uniformly beyond this cap. The cap keeps
// preprocessing cost bounded while changing the found rectangle only
// marginally (quality is reported by the Figure 8 experiment).
const MERMaxCandidates = 48

// MaxEnclosedRect returns the paper's maximum enclosed rectangle (MER) of
// p (section 3.3): a rectilinear rectangle contained in the closed region
// that (1) intersects the longest enclosed horizontal connection starting
// in a vertex of the polygon and (2) has x and y coordinates drawn from
// the vertex coordinates. The empty rectangle is returned for degenerate
// polygons where no such rectangle exists.
func MaxEnclosedRect(p *geom.Polygon) geom.Rect {
	var edges []geom.Segment
	edges = p.Edges(edges)
	var verts []geom.Point
	verts = p.Vertices(verts)

	chord, ok := longestHorizontalChord(p, edges, verts)
	if !ok {
		return geom.EmptyRect()
	}
	yc := chord.A.Y
	xl := math.Min(chord.A.X, chord.B.X)
	xr := math.Max(chord.A.X, chord.B.X)

	// Candidate x coordinates: vertex x's, clipped to be usable by a
	// rectangle intersecting the chord span, plus the chord endpoints.
	xsSet := map[float64]struct{}{xl: {}, xr: {}}
	for _, v := range verts {
		xsSet[v.X] = struct{}{}
	}
	xs := make([]float64, 0, len(xsSet))
	for x := range xsSet {
		xs = append(xs, x)
	}
	sort.Float64s(xs)
	xs = subsample(xs, MERMaxCandidates)

	// Candidate y coordinates, split around the chord level.
	ysBelow := []float64{yc} // y1 candidates (≤ yc)
	ysAbove := []float64{yc} // y2 candidates (≥ yc)
	for _, v := range verts {
		if v.Y <= yc {
			ysBelow = append(ysBelow, v.Y)
		}
		if v.Y >= yc {
			ysAbove = append(ysAbove, v.Y)
		}
	}
	sort.Float64s(ysBelow)
	sort.Float64s(ysAbove)

	best := geom.EmptyRect()
	bestArea := 0.0
	for i := 0; i < len(xs); i++ {
		x1 := xs[i]
		if x1 > xr {
			break // the strip can no longer intersect the chord span
		}
		for j := i + 1; j < len(xs); j++ {
			x2 := xs[j]
			if x2 < xl {
				continue // strip entirely left of the chord span
			}
			if (x2-x1)*maxPossibleHeight(p.Bounds()) <= bestArea {
				// Even the full bounding-box height cannot beat the
				// incumbent; wider strips only shrink the free height.
				continue
			}
			floor, ceil, valid := stripFreeInterval(edges, x1, x2, yc)
			if !valid || ceil-floor <= 0 {
				continue
			}
			y1, ok1 := smallestAtLeast(ysBelow, floor)
			y2, ok2 := largestAtMost(ysAbove, ceil)
			if !ok1 || !ok2 || y1 > yc || y2 < yc || y2 <= y1 {
				continue
			}
			if area := (x2 - x1) * (y2 - y1); area > bestArea {
				bestArea = area
				best = geom.Rect{MinX: x1, MinY: y1, MaxX: x2, MaxY: y2}
			}
		}
	}
	return best
}

func maxPossibleHeight(b geom.Rect) float64 { return b.Height() }

// longestHorizontalChord finds the longest horizontal segment that starts
// in a vertex of p and stays inside the closed region.
func longestHorizontalChord(p *geom.Polygon, edges []geom.Segment, verts []geom.Point) (geom.Segment, bool) {
	var best geom.Segment
	bestLen := -1.0
	for _, v := range verts {
		for _, dir := range [2]float64{1, -1} {
			end, ok := horizontalRayExit(p, edges, v, dir)
			if !ok {
				continue
			}
			if l := math.Abs(end - v.X); l > bestLen {
				// Confirm the midpoint is inside: the ray may leave the
				// region immediately at reflex vertices.
				mid := geom.Point{X: (v.X + end) / 2, Y: v.Y}
				if l > 0 && p.ContainsPoint(mid) {
					bestLen = l
					best = geom.Segment{A: v, B: geom.Point{X: end, Y: v.Y}}
				}
			}
		}
	}
	if bestLen <= 0 {
		return geom.Segment{}, false
	}
	return best, true
}

// horizontalRayExit walks from v in direction dir (±x) and returns the x
// coordinate where the ray first meets the boundary again.
func horizontalRayExit(p *geom.Polygon, edges []geom.Segment, v geom.Point, dir float64) (float64, bool) {
	bestX := math.Inf(1) * dir
	found := false
	for _, e := range edges {
		lo := math.Min(e.A.Y, e.B.Y)
		hi := math.Max(e.A.Y, e.B.Y)
		if v.Y < lo-geom.Eps || v.Y > hi+geom.Eps {
			continue
		}
		dy := e.B.Y - e.A.Y
		if math.Abs(dy) < geom.Eps {
			// Horizontal edge on the ray's line: its endpoints bound the ray.
			for _, ex := range [2]float64{e.A.X, e.B.X} {
				if (ex-v.X)*dir > geom.Eps && (!found || (ex-bestX)*dir < 0) {
					bestX = ex
					found = true
				}
			}
			continue
		}
		t := (v.Y - e.A.Y) / dy
		if t < -geom.Eps || t > 1+geom.Eps {
			continue
		}
		x := e.A.X + t*(e.B.X-e.A.X)
		if (x-v.X)*dir > geom.Eps {
			if !found || (x-bestX)*dir < 0 {
				bestX = x
				found = true
			}
		}
	}
	return bestX, found
}

// stripFreeInterval computes the free vertical interval around the chord
// level yc inside the strip (x1, x2): floor is the highest boundary point
// below yc, ceil the lowest boundary point above yc. valid is false when
// some edge crosses the chord level strictly inside the strip, which rules
// out any rectangle of this width.
func stripFreeInterval(edges []geom.Segment, x1, x2, yc float64) (floor, ceil float64, valid bool) {
	floor = math.Inf(-1)
	ceil = math.Inf(1)
	for _, e := range edges {
		exLo := math.Min(e.A.X, e.B.X)
		exHi := math.Max(e.A.X, e.B.X)
		if exHi <= x1+geom.Eps || exLo >= x2-geom.Eps {
			continue // edge outside the open strip
		}
		// Clip the edge to the strip and take its y range there.
		lo, hi := edgeYRangeInStrip(e, math.Max(exLo, x1), math.Min(exHi, x2))
		switch {
		case lo >= yc-geom.Eps && hi <= yc+geom.Eps:
			// Edge lies on the chord level: the chord itself borders such
			// edges; they constrain nothing beyond the level line.
			continue
		case lo > yc:
			if lo < ceil {
				ceil = lo
			}
		case hi < yc:
			if hi > floor {
				floor = hi
			}
		default:
			return 0, 0, false // edge crosses the chord level inside the strip
		}
	}
	return floor, ceil, true
}

// edgeYRangeInStrip returns the y range of segment e over x ∈ [a, b],
// assuming e's x range covers [a, b] at least partially (callers clip).
func edgeYRangeInStrip(e geom.Segment, a, b float64) (lo, hi float64) {
	ya := e.YAt(a)
	yb := e.YAt(b)
	if math.Abs(e.B.X-e.A.X) < geom.Eps {
		// Vertical edge: its whole y range lies in the strip.
		ya = math.Min(e.A.Y, e.B.Y)
		yb = math.Max(e.A.Y, e.B.Y)
	}
	return math.Min(ya, yb), math.Max(ya, yb)
}

// smallestAtLeast returns the smallest element of the sorted slice ys that
// is ≥ v.
func smallestAtLeast(ys []float64, v float64) (float64, bool) {
	i := sort.SearchFloat64s(ys, v)
	if i == len(ys) {
		return 0, false
	}
	return ys[i], true
}

// largestAtMost returns the largest element of the sorted slice ys that is
// ≤ v.
func largestAtMost(ys []float64, v float64) (float64, bool) {
	i := sort.SearchFloat64s(ys, v)
	if i < len(ys) && ys[i] == v {
		return v, true
	}
	if i == 0 {
		return 0, false
	}
	return ys[i-1], true
}

// subsample uniformly reduces xs to at most n entries, always keeping the
// first and last.
func subsample(xs []float64, n int) []float64 {
	if len(xs) <= n {
		return xs
	}
	out := make([]float64, 0, n)
	step := float64(len(xs)-1) / float64(n-1)
	last := -1
	for i := 0; i < n; i++ {
		idx := int(math.Round(float64(i) * step))
		if idx != last {
			out = append(out, xs[idx])
			last = idx
		}
	}
	return out
}
