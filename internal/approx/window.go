package approx

import (
	"spatialjoin/internal/convex"
	"spatialjoin/internal/geom"
)

// IntersectsRect reports whether the approximation of kind k intersects
// the rectilinear window w. It is exact for every kind, so the multi-step
// window query can use conservative kinds to prove misses and progressive
// kinds to prove hits against a window (the point-/window-query framework
// of [KBS 93, BHKS 93] that section 2.4 extends to joins).
func IntersectsRect(k Kind, s *Set, w geom.Rect) bool {
	sh := s.shapeOf(k)
	switch {
	case sh.rect != nil:
		return sh.rect.Intersects(w)
	case sh.ring != nil:
		if len(sh.ring) < 3 {
			return false
		}
		c := w.Corners()
		return convex.SATIntersects(sh.ring, geom.Ring(c[:]))
	case sh.circle != nil:
		if sh.circle.R <= 0 && k == MEC {
			return false
		}
		return circleRect(*sh.circle, w)
	case sh.ellipse != nil:
		c := w.Corners()
		return convex.GJKIntersects(*sh.ellipse, convex.PolygonSupport(geom.Ring(c[:])))
	}
	return false
}

// circleRect is the exact disk–rectangle intersection test: the distance
// from the center to the closed rectangle is at most the radius.
func circleRect(c Circle, w geom.Rect) bool {
	dx := 0.0
	switch {
	case c.C.X < w.MinX:
		dx = w.MinX - c.C.X
	case c.C.X > w.MaxX:
		dx = c.C.X - w.MaxX
	}
	dy := 0.0
	switch {
	case c.C.Y < w.MinY:
		dy = w.MinY - c.C.Y
	case c.C.Y > w.MaxY:
		dy = c.C.Y - w.MaxY
	}
	return dx*dx+dy*dy <= c.R*c.R+1e-12
}

// ClassifyWindow runs the geometric filter for a window query: the window
// is exact, so a conservative miss proves a false hit and a progressive
// hit proves a hit.
func (f FilterConfig) ClassifyWindow(s *Set, w geom.Rect) Class {
	if !f.NoConservative && f.Conservative != MBR {
		if !IntersectsRect(f.Conservative, s, w) {
			return FalseHit
		}
	}
	if !f.NoProgressive {
		if IntersectsRect(f.Progressive, s, w) {
			return Hit
		}
	}
	return Candidate
}
