package approx

import (
	"math"
	"math/rand"

	"spatialjoin/internal/geom"
)

// MinBoundingCircle returns the minimum bounding circle (MBC) of pts using
// Welzl's randomized move-to-front algorithm [Wel 91], which the paper
// also uses; expected linear time. The returned circle contains every
// input point (verified and, if necessary, inflated by a few ULPs to
// absorb floating-point rounding, keeping the approximation conservative).
func MinBoundingCircle(pts []geom.Point) Circle {
	if len(pts) == 0 {
		return Circle{}
	}
	shuffled := make([]geom.Point, len(pts))
	copy(shuffled, pts)
	// Deterministic shuffle: the algorithm's expected-linear bound needs a
	// random order, but reproducible experiments need a fixed seed.
	rng := rand.New(rand.NewSource(0x5ee9))
	rng.Shuffle(len(shuffled), func(i, j int) {
		shuffled[i], shuffled[j] = shuffled[j], shuffled[i]
	})

	c := circleFrom1(shuffled[0])
	for i := 1; i < len(shuffled); i++ {
		if c.containsLoose(shuffled[i]) {
			continue
		}
		c = circleWithOnePoint(shuffled[:i], shuffled[i])
	}
	// Guarantee conservativeness under rounding.
	for _, p := range pts {
		if d := c.C.Dist(p); d > c.R {
			c.R = d
		}
	}
	return c
}

// circleWithOnePoint returns the minimum circle over pts that has q on its
// boundary.
func circleWithOnePoint(pts []geom.Point, q geom.Point) Circle {
	c := circleFrom1(q)
	for i, p := range pts {
		if c.containsLoose(p) {
			continue
		}
		c = circleWithTwoPoints(pts[:i], q, p)
	}
	return c
}

// circleWithTwoPoints returns the minimum circle over pts that has q1 and
// q2 on its boundary.
func circleWithTwoPoints(pts []geom.Point, q1, q2 geom.Point) Circle {
	c := circleFrom2(q1, q2)
	for _, p := range pts {
		if c.containsLoose(p) {
			continue
		}
		c = circleFrom3(q1, q2, p)
	}
	return c
}

func (c Circle) containsLoose(p geom.Point) bool {
	return c.C.Dist(p) <= c.R*(1+1e-12)+1e-12
}

func circleFrom1(p geom.Point) Circle { return Circle{C: p} }

func circleFrom2(a, b geom.Point) Circle {
	c := geom.Point{X: (a.X + b.X) / 2, Y: (a.Y + b.Y) / 2}
	return Circle{C: c, R: c.Dist(a)}
}

// circleFrom3 returns the circumcircle of a, b, c, falling back to the
// best two-point circle when the points are (near-)collinear.
func circleFrom3(a, b, c geom.Point) Circle {
	ax, ay := b.X-a.X, b.Y-a.Y
	bx, by := c.X-a.X, c.Y-a.Y
	d := 2 * (ax*by - ay*bx)
	if math.Abs(d) < geom.Eps {
		// Collinear: the diameter is the farthest pair.
		best := circleFrom2(a, b)
		if alt := circleFrom2(a, c); alt.R > best.R {
			best = alt
		}
		if alt := circleFrom2(b, c); alt.R > best.R {
			best = alt
		}
		return best
	}
	ux := (by*(ax*ax+ay*ay) - ay*(bx*bx+by*by)) / d
	uy := (ax*(bx*bx+by*by) - bx*(ax*ax+ay*ay)) / d
	center := geom.Point{X: a.X + ux, Y: a.Y + uy}
	return Circle{C: center, R: center.Dist(a)}
}
