package approx

import (
	"container/heap"
	"math"

	"spatialjoin/internal/geom"
)

// MaxEnclosedCircle returns the maximum enclosed circle (MEC) of p: the
// largest circle contained in the closed polygonal region, i.e. the circle
// centered at the pole of inaccessibility with radius equal to the
// distance to the boundary.
//
// The paper computes the MEC from the Voronoi diagram of the polygon
// edges; this implementation substitutes a quadtree refinement of the
// signed boundary distance (the "polylabel" algorithm), which converges to
// the same circle: both find the interior point maximizing the distance to
// the boundary. The search stops when the optimal radius is bracketed
// within precision·diameter (precision defaults to 1e-3 when ≤ 0). The
// returned circle is shrunk by the bracketing error so it provably lies
// inside the polygon, keeping the approximation progressive.
func MaxEnclosedCircle(p *geom.Polygon, precision float64) Circle {
	if precision <= 0 {
		precision = 1e-3
	}
	b := p.Bounds()
	size := math.Max(b.Width(), b.Height())
	if size == 0 {
		return Circle{C: geom.Point{X: b.MinX, Y: b.MinY}}
	}
	eps := precision * size

	var edges []geom.Segment
	edges = p.Edges(edges)
	dist := func(pt geom.Point) float64 {
		d := math.Inf(1)
		for _, e := range edges {
			if dd := e.DistToPoint(pt); dd < d {
				d = dd
			}
		}
		if !p.ContainsPoint(pt) {
			return -d
		}
		return d
	}

	h := &cellHeap{}
	heap.Init(h)
	// Seed with a grid of cells covering the bounding box.
	cell0 := math.Min(b.Width(), b.Height())
	if cell0 == 0 {
		cell0 = size
	}
	for x := b.MinX; x < b.MaxX; x += cell0 {
		for y := b.MinY; y < b.MaxY; y += cell0 {
			heap.Push(h, newCell(geom.Point{X: x + cell0/2, Y: y + cell0/2}, cell0/2, dist))
		}
	}
	best := newCell(p.Bounds().Center(), 0, dist)
	if c := newCell(geom.Ring(p.Outer).Centroid(), 0, dist); c.d > best.d {
		best = c
	}
	for h.Len() > 0 {
		c := heap.Pop(h).(cell)
		if c.d > best.d {
			best = c
		}
		if c.max-best.d <= eps {
			continue // cannot beat the incumbent by more than eps
		}
		q := c.h / 2
		for _, off := range [4][2]float64{{-1, -1}, {1, -1}, {-1, 1}, {1, 1}} {
			heap.Push(h, newCell(geom.Point{X: c.c.X + off[0]*q, Y: c.c.Y + off[1]*q}, q, dist))
		}
	}
	r := best.d - eps // shrink by the bracketing error: provably enclosed
	if r < 0 {
		r = math.Max(0, best.d)
	}
	return Circle{C: best.c, R: r}
}

// cell is a quadtree cell of the pole-of-inaccessibility search.
type cell struct {
	c   geom.Point // center
	h   float64    // half size
	d   float64    // signed distance of the center to the boundary
	max float64    // upper bound of the distance anywhere in the cell
}

func newCell(c geom.Point, h float64, dist func(geom.Point) float64) cell {
	d := dist(c)
	return cell{c: c, h: h, d: d, max: d + h*math.Sqrt2}
}

// cellHeap is a max-heap on the cells' distance upper bound.
type cellHeap []cell

func (h cellHeap) Len() int            { return len(h) }
func (h cellHeap) Less(i, j int) bool  { return h[i].max > h[j].max }
func (h cellHeap) Swap(i, j int)       { h[i], h[j] = h[j], h[i] }
func (h *cellHeap) Push(x interface{}) { *h = append(*h, x.(cell)) }
func (h *cellHeap) Pop() interface{} {
	old := *h
	n := len(old)
	x := old[n-1]
	*h = old[:n-1]
	return x
}
