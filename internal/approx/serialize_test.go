package approx

import (
	"errors"
	"reflect"
	"testing"

	"spatialjoin/internal/data"
	"spatialjoin/internal/geom"
)

func TestSetSerializeRoundTrip(t *testing.T) {
	polys := data.GenerateMap(data.MapConfig{Cells: 12, TargetVerts: 24, HoleFraction: 0.2, Seed: 97})
	for _, opt := range []Options{
		{}, // MBR only
		{Conservative: []Kind{C5}, Progressive: []Kind{MER}}, // the paper's pick
		AllOptions(),
	} {
		for i, p := range polys {
			want := Compute(p, opt)
			blob, err := want.AppendBinary(nil)
			if err != nil {
				t.Fatalf("poly %d: %v", i, err)
			}
			got, n, err := DecodeSet(blob)
			if err != nil {
				t.Fatalf("poly %d: %v", i, err)
			}
			if n != len(blob) {
				t.Fatalf("poly %d: consumed %d of %d bytes", i, n, len(blob))
			}
			if !reflect.DeepEqual(got, want) {
				t.Fatalf("poly %d: round trip differs:\n got %+v\nwant %+v", i, got, want)
			}
		}
	}
}

func TestSetSerializeConcatenation(t *testing.T) {
	// Sets embed back to back in the relation store; DecodeSet must
	// consume exactly one set and report its length.
	p1 := geom.NewPolygon([]geom.Point{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 0, Y: 4}})
	p2 := geom.NewPolygon([]geom.Point{{X: 1, Y: 1}, {X: 9, Y: 2}, {X: 5, Y: 8}, {X: 1, Y: 6}})
	opt := Options{Conservative: []Kind{C5, MBC}, Progressive: []Kind{MER}}
	a, b := Compute(p1, opt), Compute(p2, opt)
	blob, err := a.AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	if blob, err = b.AppendBinary(blob); err != nil {
		t.Fatal(err)
	}
	gotA, n, err := DecodeSet(blob)
	if err != nil {
		t.Fatal(err)
	}
	gotB, m, err := DecodeSet(blob[n:])
	if err != nil {
		t.Fatal(err)
	}
	if n+m != len(blob) {
		t.Fatalf("consumed %d+%d of %d bytes", n, m, len(blob))
	}
	if !reflect.DeepEqual(gotA, a) || !reflect.DeepEqual(gotB, b) {
		t.Error("concatenated sets decode differently")
	}
}

func TestSetSerializeCorruptInputs(t *testing.T) {
	p := geom.NewPolygon([]geom.Point{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 0, Y: 4}})
	blob, err := Compute(p, AllOptions()).AppendBinary(nil)
	if err != nil {
		t.Fatal(err)
	}
	for n := 0; n < len(blob); n += 7 {
		if _, _, err := DecodeSet(blob[:n]); !errors.Is(err, ErrCorruptSet) {
			t.Errorf("truncation to %d: err = %v, want ErrCorruptSet", n, err)
		}
	}
	// Unknown kind bits must be rejected.
	bad := append([]byte{}, blob...)
	bad[1] |= 0x80 // bit 15: beyond MER
	if _, _, err := DecodeSet(bad); !errors.Is(err, ErrCorruptSet) {
		t.Errorf("unknown kind bit: err = %v, want ErrCorruptSet", err)
	}
	// A hull length pointing past the data must not over-allocate.
	noMBR := []byte{0x00, 0x00} // flags without the MBR bit
	if _, _, err := DecodeSet(noMBR); !errors.Is(err, ErrCorruptSet) {
		t.Errorf("missing MBR bit: err = %v, want ErrCorruptSet", err)
	}
}
