package zorder

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
)

func TestEncodeInterleaves(t *testing.T) {
	if Encode(0, 0) != 0 {
		t.Error("Encode(0,0) must be 0")
	}
	if Encode(1, 0) != 1 {
		t.Errorf("Encode(1,0) = %d, want 1", Encode(1, 0))
	}
	if Encode(0, 1) != 2 {
		t.Errorf("Encode(0,1) = %d, want 2", Encode(0, 1))
	}
	if Encode(1, 1) != 3 {
		t.Errorf("Encode(1,1) = %d, want 3", Encode(1, 1))
	}
	// Z order is monotone in quadrants: all cells of the lower-left
	// quadrant precede the upper-right quadrant.
	if Encode(2, 2) <= Encode(1, 1) {
		t.Error("quadrant ordering broken")
	}
}

func TestCoverContainsRectCells(t *testing.T) {
	rng := rand.New(rand.NewSource(457))
	cfg := DefaultCoverConfig()
	for trial := 0; trial < 300; trial++ {
		x, y := rng.Float64()*0.9, rng.Float64()*0.9
		r := geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*0.1, MaxY: y + rng.Float64()*0.1}
		regions := Cover(r, cfg)
		if len(regions) == 0 {
			t.Fatalf("trial %d: empty cover", trial)
		}
		if len(regions) > cfg.MaxRegions {
			t.Fatalf("trial %d: %d regions exceed the cap %d", trial, len(regions), cfg.MaxRegions)
		}
		// Sample points of the rectangle: their cells must be covered.
		for s := 0; s < 20; s++ {
			p := geom.Point{
				X: r.MinX + rng.Float64()*(r.MaxX-r.MinX),
				Y: r.MinY + rng.Float64()*(r.MaxY-r.MinY),
			}
			// Cover emits intervals at cfg.Level resolution.
			scale := float64(uint32(1) << cfg.Level)
			z := Encode(uint32(p.X*scale), uint32(p.Y*scale))
			covered := false
			for _, reg := range regions {
				if z >= reg.Lo && z <= reg.Hi {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("trial %d: point %v (z=%d) not covered by %v", trial, p, z, regions)
			}
		}
		// Regions are sorted and disjoint.
		for i := 1; i < len(regions); i++ {
			if regions[i].Lo <= regions[i-1].Hi {
				t.Fatalf("trial %d: regions overlap or unsorted: %v", trial, regions)
			}
		}
	}
}

// TestDecodeInvertsEncode is the round-trip property test: Decode is the
// exact inverse of Encode over the full 20-bit coordinate range, and
// Encode inverts Decode over the full 40-bit curve — the invariant the
// tile partitioner (internal/shard) leans on.
func TestDecodeInvertsEncode(t *testing.T) {
	// Exhaustive corners and boundaries of the coordinate range.
	edge := []uint32{0, 1, 2, 3, (1 << 10) - 1, 1 << 10, (1 << 20) - 2, (1 << 20) - 1}
	for _, x := range edge {
		for _, y := range edge {
			gx, gy := Decode(Encode(x, y))
			if gx != x || gy != y {
				t.Fatalf("Decode(Encode(%d, %d)) = (%d, %d)", x, y, gx, gy)
			}
		}
	}
	rng := rand.New(rand.NewSource(499))
	for trial := 0; trial < 10000; trial++ {
		x := rng.Uint32() & ((1 << 20) - 1)
		y := rng.Uint32() & ((1 << 20) - 1)
		gx, gy := Decode(Encode(x, y))
		if gx != x || gy != y {
			t.Fatalf("Decode(Encode(%d, %d)) = (%d, %d)", x, y, gx, gy)
		}
		z := rng.Uint64() & ((1 << 40) - 1)
		if got := Encode(Decode(z)); got != z {
			t.Fatalf("Encode(Decode(%d)) = %d", z, got)
		}
	}
}

// TestCoverTileBoundaries pins the quantization at block boundaries: a
// rectangle whose edges lie exactly on quadtree cell boundaries must
// still cover the cells it touches, including the boundary cells on both
// sides of the cut when the rectangle spans it.
func TestCoverTileBoundaries(t *testing.T) {
	cfg := DefaultCoverConfig()
	n := uint32(1) << uint(cfg.Level)
	covers := func(r geom.Rect, x, y uint32) bool {
		z := Encode(x, y)
		for _, reg := range Cover(r, cfg) {
			if z >= reg.Lo && z <= reg.Hi {
				return true
			}
		}
		return false
	}
	// A rectangle ending exactly at the midline: quantizing MaxX = 0.5
	// lands in cell n/2, so the cover includes the first cell right of
	// the cut (the closed-boundary convention) and everything left of it.
	onCut := geom.Rect{MinX: 0.25, MinY: 0.25, MaxX: 0.5, MaxY: 0.5}
	for _, cell := range [][2]uint32{
		{n / 4, n / 4},     // lower-left corner cell
		{n / 2, n / 2},     // the boundary cell itself
		{n/2 - 1, n/2 - 1}, // last cell strictly inside
		{n / 4, n / 2},     // boundary cell on one axis only
	} {
		if !covers(onCut, cell[0], cell[1]) {
			t.Errorf("boundary-aligned rect misses cell %v", cell)
		}
	}
	// A rectangle starting exactly on a boundary must not leak into the
	// cell below it.
	if covers(geom.Rect{MinX: 0.5, MinY: 0.5, MaxX: 0.75, MaxY: 0.75}, n/2-1, n/2-1) {
		t.Error("cover leaks below the aligned lower boundary")
	}
	// Coordinates at the far data-space edge clamp into the last cell.
	if !covers(geom.Rect{MinX: 1, MinY: 1, MaxX: 1, MaxY: 1}, n-1, n-1) {
		t.Error("far-corner point not clamped into the last cell")
	}
}

// TestCoverPointMBR: degenerate (zero-extent) rectangles — point objects
// — cover exactly one cell.
func TestCoverPointMBR(t *testing.T) {
	cfg := DefaultCoverConfig()
	rng := rand.New(rand.NewSource(503))
	for trial := 0; trial < 200; trial++ {
		x, y := rng.Float64(), rng.Float64()
		regions := Cover(geom.Rect{MinX: x, MinY: y, MaxX: x, MaxY: y}, cfg)
		if len(regions) != 1 {
			t.Fatalf("point MBR (%g, %g) covered by %d regions, want 1", x, y, len(regions))
		}
		if regions[0].Lo != regions[0].Hi {
			t.Fatalf("point MBR (%g, %g) covered by interval [%d, %d], want a single cell",
				x, y, regions[0].Lo, regions[0].Hi)
		}
	}
}

// TestCoverFullExtent: an object spanning the whole data space collapses
// to the single root region covering the entire curve, at every level.
func TestCoverFullExtent(t *testing.T) {
	for _, level := range []int{1, 5, 10, MaxLevel} {
		cfg := DefaultCoverConfig()
		cfg.Level = level
		whole := Cover(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, cfg)
		if len(whole) != 1 {
			t.Fatalf("level %d: full-extent cover = %v, want one region", level, whole)
		}
		wantHi := uint64(1)<<(2*uint(level)) - 1
		if whole[0].Lo != 0 || whole[0].Hi != wantHi {
			t.Errorf("level %d: full-extent region [%d, %d], want [0, %d]",
				level, whole[0].Lo, whole[0].Hi, wantHi)
		}
	}
}

func TestCoverDegenerate(t *testing.T) {
	cfg := DefaultCoverConfig()
	if got := Cover(geom.EmptyRect(), cfg); got != nil {
		t.Error("empty rect must give nil cover")
	}
	outside := geom.Rect{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}
	if got := Cover(outside, cfg); got != nil {
		t.Error("rect outside the data space must give nil cover")
	}
	// Whole space collapses to one region.
	whole := Cover(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, cfg)
	if len(whole) != 1 {
		t.Errorf("whole-space cover = %v, want a single region", whole)
	}
}

func randRects(rng *rand.Rand, n int, maxExt float64) []geom.Rect {
	out := make([]geom.Rect, n)
	for i := range out {
		x := rng.Float64() * (1 - maxExt)
		y := rng.Float64() * (1 - maxExt)
		out[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*maxExt, MaxY: y + rng.Float64()*maxExt}
	}
	return out
}

func TestJoinIsCandidateSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(461))
	a := randRects(rng, 300, 0.08)
	b := randRects(rng, 300, 0.08)
	got := map[[2]int]bool{}
	st := Join(a, b, DefaultCoverConfig(), func(i, j int) { got[[2]int{i, j}] = true })
	trueCount := 0
	for i, ra := range a {
		for j, rb := range b {
			if ra.Intersects(rb) {
				trueCount++
				if !got[[2]int{i, j}] {
					t.Fatalf("missing candidate pair (%d,%d): MBRs intersect", i, j)
				}
			}
		}
	}
	if trueCount == 0 {
		t.Fatal("vacuous workload")
	}
	if st.Pairs < int64(trueCount) {
		t.Fatalf("stats pairs %d below true pairs %d", st.Pairs, trueCount)
	}
	// The cover-based candidate set should not explode: the paper's point
	// is that curve-based joins are viable candidates generators.
	if st.Pairs > 25*int64(trueCount) {
		t.Errorf("candidate blowup: %d candidates for %d true pairs", st.Pairs, trueCount)
	}
	if st.IntervalsA == 0 || st.IntervalsB == 0 || st.Comparisons == 0 {
		t.Error("stats not populated")
	}
}

func TestJoinFinerLevelsFewerFalsePositives(t *testing.T) {
	rng := rand.New(rand.NewSource(467))
	a := randRects(rng, 250, 0.06)
	b := randRects(rng, 250, 0.06)
	counts := map[int]int64{}
	for _, level := range []int{4, 8, 12} {
		cfg := DefaultCoverConfig()
		cfg.Level = level
		cfg.MaxRegions = 16
		st := Join(a, b, cfg, func(i, j int) {})
		counts[level] = st.Pairs
	}
	if counts[12] > counts[4] {
		t.Errorf("finer grids must not produce more candidates: L4=%d L12=%d", counts[4], counts[12])
	}
}

func TestJoinEmpty(t *testing.T) {
	st := Join(nil, nil, DefaultCoverConfig(), func(i, j int) { t.Fatal("no pairs expected") })
	if st.Pairs != 0 {
		t.Error("empty join must emit nothing")
	}
}
