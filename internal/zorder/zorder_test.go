package zorder

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
)

func TestEncodeInterleaves(t *testing.T) {
	if Encode(0, 0) != 0 {
		t.Error("Encode(0,0) must be 0")
	}
	if Encode(1, 0) != 1 {
		t.Errorf("Encode(1,0) = %d, want 1", Encode(1, 0))
	}
	if Encode(0, 1) != 2 {
		t.Errorf("Encode(0,1) = %d, want 2", Encode(0, 1))
	}
	if Encode(1, 1) != 3 {
		t.Errorf("Encode(1,1) = %d, want 3", Encode(1, 1))
	}
	// Z order is monotone in quadrants: all cells of the lower-left
	// quadrant precede the upper-right quadrant.
	if Encode(2, 2) <= Encode(1, 1) {
		t.Error("quadrant ordering broken")
	}
}

func TestCoverContainsRectCells(t *testing.T) {
	rng := rand.New(rand.NewSource(457))
	cfg := DefaultCoverConfig()
	for trial := 0; trial < 300; trial++ {
		x, y := rng.Float64()*0.9, rng.Float64()*0.9
		r := geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*0.1, MaxY: y + rng.Float64()*0.1}
		regions := Cover(r, cfg)
		if len(regions) == 0 {
			t.Fatalf("trial %d: empty cover", trial)
		}
		if len(regions) > cfg.MaxRegions {
			t.Fatalf("trial %d: %d regions exceed the cap %d", trial, len(regions), cfg.MaxRegions)
		}
		// Sample points of the rectangle: their cells must be covered.
		for s := 0; s < 20; s++ {
			p := geom.Point{
				X: r.MinX + rng.Float64()*(r.MaxX-r.MinX),
				Y: r.MinY + rng.Float64()*(r.MaxY-r.MinY),
			}
			// Cover emits intervals at cfg.Level resolution.
			scale := float64(uint32(1) << cfg.Level)
			z := Encode(uint32(p.X*scale), uint32(p.Y*scale))
			covered := false
			for _, reg := range regions {
				if z >= reg.Lo && z <= reg.Hi {
					covered = true
					break
				}
			}
			if !covered {
				t.Fatalf("trial %d: point %v (z=%d) not covered by %v", trial, p, z, regions)
			}
		}
		// Regions are sorted and disjoint.
		for i := 1; i < len(regions); i++ {
			if regions[i].Lo <= regions[i-1].Hi {
				t.Fatalf("trial %d: regions overlap or unsorted: %v", trial, regions)
			}
		}
	}
}

func TestCoverDegenerate(t *testing.T) {
	cfg := DefaultCoverConfig()
	if got := Cover(geom.EmptyRect(), cfg); got != nil {
		t.Error("empty rect must give nil cover")
	}
	outside := geom.Rect{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6}
	if got := Cover(outside, cfg); got != nil {
		t.Error("rect outside the data space must give nil cover")
	}
	// Whole space collapses to one region.
	whole := Cover(geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, cfg)
	if len(whole) != 1 {
		t.Errorf("whole-space cover = %v, want a single region", whole)
	}
}

func randRects(rng *rand.Rand, n int, maxExt float64) []geom.Rect {
	out := make([]geom.Rect, n)
	for i := range out {
		x := rng.Float64() * (1 - maxExt)
		y := rng.Float64() * (1 - maxExt)
		out[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*maxExt, MaxY: y + rng.Float64()*maxExt}
	}
	return out
}

func TestJoinIsCandidateSuperset(t *testing.T) {
	rng := rand.New(rand.NewSource(461))
	a := randRects(rng, 300, 0.08)
	b := randRects(rng, 300, 0.08)
	got := map[[2]int]bool{}
	st := Join(a, b, DefaultCoverConfig(), func(i, j int) { got[[2]int{i, j}] = true })
	trueCount := 0
	for i, ra := range a {
		for j, rb := range b {
			if ra.Intersects(rb) {
				trueCount++
				if !got[[2]int{i, j}] {
					t.Fatalf("missing candidate pair (%d,%d): MBRs intersect", i, j)
				}
			}
		}
	}
	if trueCount == 0 {
		t.Fatal("vacuous workload")
	}
	if st.Pairs < int64(trueCount) {
		t.Fatalf("stats pairs %d below true pairs %d", st.Pairs, trueCount)
	}
	// The cover-based candidate set should not explode: the paper's point
	// is that curve-based joins are viable candidates generators.
	if st.Pairs > 25*int64(trueCount) {
		t.Errorf("candidate blowup: %d candidates for %d true pairs", st.Pairs, trueCount)
	}
	if st.IntervalsA == 0 || st.IntervalsB == 0 || st.Comparisons == 0 {
		t.Error("stats not populated")
	}
}

func TestJoinFinerLevelsFewerFalsePositives(t *testing.T) {
	rng := rand.New(rand.NewSource(467))
	a := randRects(rng, 250, 0.06)
	b := randRects(rng, 250, 0.06)
	counts := map[int]int64{}
	for _, level := range []int{4, 8, 12} {
		cfg := DefaultCoverConfig()
		cfg.Level = level
		cfg.MaxRegions = 16
		st := Join(a, b, cfg, func(i, j int) {})
		counts[level] = st.Pairs
	}
	if counts[12] > counts[4] {
		t.Errorf("finer grids must not produce more candidates: L4=%d L12=%d", counts[4], counts[12])
	}
}

func TestJoinEmpty(t *testing.T) {
	st := Join(nil, nil, DefaultCoverConfig(), func(i, j int) { t.Fatal("no pairs expected") })
	if st.Pairs != 0 {
		t.Error("empty join must emit nothing")
	}
}
