// Package zorder implements the space-filling-curve alternative for the
// MBR-join of step 1, which the paper names alongside the R*-tree
// ("approaches based on space filling curves [Fal 88, Jag 90b] might be
// considered for implementing the MBR-join", section 2.4, after
// Orenstein's sort-merge proposal [Ore 86]).
//
// An object's MBR is covered by a small set of quadtree-aligned Z-order
// regions (bit-interleaved cell codes); each region is one contiguous
// interval on the Z curve. Two objects whose MBRs intersect always own
// overlapping intervals, so a sort-merge over the interval endpoints
// produces a candidate superset of the MBR-join — with additional false
// positives from the quantized, blocky covers, which the later steps
// filter out.
package zorder

import (
	"sort"

	"spatialjoin/internal/geom"
)

// MaxLevel is the finest quadtree level supported: a 2^20 × 2^20 grid.
const MaxLevel = 20

// Region is one Z-curve interval [Lo, Hi] (inclusive), covering a
// quadtree-aligned block of cells.
type Region struct {
	Lo, Hi uint64
}

// interleave spreads the low 20 bits of v to even bit positions.
func interleave(v uint32) uint64 {
	x := uint64(v) & 0xFFFFF
	x = (x | x<<16) & 0x0000FFFF0000FFFF
	x = (x | x<<8) & 0x00FF00FF00FF00FF
	x = (x | x<<4) & 0x0F0F0F0F0F0F0F0F
	x = (x | x<<2) & 0x3333333333333333
	x = (x | x<<1) & 0x5555555555555555
	return x
}

// Encode returns the Z value of the cell (x, y) on the full-resolution
// grid.
func Encode(x, y uint32) uint64 {
	return interleave(x) | interleave(y)<<1
}

// deinterleave collects the even bit positions of z into the low 20 bits
// — the inverse of interleave.
func deinterleave(z uint64) uint32 {
	x := z & 0x5555555555555555
	x = (x | x>>1) & 0x3333333333333333
	x = (x | x>>2) & 0x0F0F0F0F0F0F0F0F
	x = (x | x>>4) & 0x00FF00FF00FF00FF
	x = (x | x>>8) & 0x0000FFFF0000FFFF
	x = (x | x>>16) & 0x00000000FFFFFFFF
	return uint32(x)
}

// Decode returns the cell (x, y) of a Z value on the full-resolution
// grid — the inverse of Encode for any z below 1<<(2·MaxLevel).
func Decode(z uint64) (x, y uint32) {
	return deinterleave(z), deinterleave(z >> 1)
}

// CoverConfig bounds the cover computation.
type CoverConfig struct {
	// Level is the quadtree depth used for quantization (1..MaxLevel).
	Level int
	// MaxRegions caps the cover size per object; coarser blocks are used
	// beyond it, keeping the cover conservative. Orenstein's trade-off:
	// finer covers give fewer candidates but longer interval lists.
	MaxRegions int
	// DataSpace maps world coordinates onto the unit grid; objects must
	// lie inside it.
	DataSpace geom.Rect
}

// DefaultCoverConfig covers the unit data space at level 10 with at most
// eight regions per object.
func DefaultCoverConfig() CoverConfig {
	return CoverConfig{Level: 10, MaxRegions: 8, DataSpace: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}}
}

// Cover returns a set of Z intervals whose union of cells contains every
// cell the rectangle r touches. It works at the finest quadtree level at
// which the rectangle spans at most MaxRegions blocks — the adaptive
// block-size rule keeps covers small for large objects and tight for small
// ones, the trade-off Orenstein's cell decomposition tunes. The intervals
// are sorted and disjoint.
func Cover(r geom.Rect, cfg CoverConfig) []Region {
	if cfg.Level < 1 {
		cfg.Level = 1
	}
	if cfg.Level > MaxLevel {
		cfg.Level = MaxLevel
	}
	if cfg.MaxRegions < 1 {
		cfg.MaxRegions = 1
	}
	ds := cfg.DataSpace
	if ds.IsEmpty() || !ds.Intersects(r) {
		return nil
	}
	clip := r.Intersection(ds)

	// Quantize to cell coordinates at the finest level.
	n := uint32(1) << uint(cfg.Level)
	quant := func(v, lo, hi float64) uint32 {
		t := (v - lo) / (hi - lo) * float64(n)
		if t < 0 {
			t = 0
		}
		if t > float64(n-1) {
			t = float64(n - 1)
		}
		return uint32(t)
	}
	x0 := quant(clip.MinX, ds.MinX, ds.MaxX)
	x1 := quant(clip.MaxX, ds.MinX, ds.MaxX)
	y0 := quant(clip.MinY, ds.MinY, ds.MaxY)
	y1 := quant(clip.MaxY, ds.MinY, ds.MaxY)

	// Coarsen until the block count fits the budget.
	shift := uint(0)
	for shift < uint(cfg.Level) {
		cells := (uint64(x1>>shift-x0>>shift) + 1) * (uint64(y1>>shift-y0>>shift) + 1)
		if cells <= uint64(cfg.MaxRegions) {
			break
		}
		shift++
	}
	cx0, cx1 := x0>>shift, x1>>shift
	cy0, cy1 := y0>>shift, y1>>shift
	out := make([]Region, 0, (cx1-cx0+1)*(cy1-cy0+1))
	for cy := cy0; cy <= cy1; cy++ {
		for cx := cx0; cx <= cx1; cx++ {
			code := Encode(cx, cy)
			out = append(out, Region{Lo: code << (2 * shift), Hi: (code+1)<<(2*shift) - 1})
		}
	}
	return mergeRegions(out)
}

// mergeRegions sorts and coalesces adjacent or overlapping intervals.
func mergeRegions(rs []Region) []Region {
	if len(rs) < 2 {
		return rs
	}
	sort.Slice(rs, func(i, j int) bool { return rs[i].Lo < rs[j].Lo })
	out := rs[:1]
	for _, r := range rs[1:] {
		last := &out[len(out)-1]
		if r.Lo <= last.Hi+1 {
			if r.Hi > last.Hi {
				last.Hi = r.Hi
			}
		} else {
			out = append(out, r)
		}
	}
	return out
}

// JoinStats reports the work of one Z-order candidate join.
type JoinStats struct {
	IntervalsA, IntervalsB int   // total intervals after covering
	Pairs                  int64 // candidate pairs emitted (deduplicated)
	Comparisons            int64 // interval comparisons during the merge
}

// interval is one cover interval tagged with its object and relation.
type interval struct {
	lo, hi uint64
	idx    int32
	side   int8
}

// Join enumerates candidate pairs (i, j) of objects whose Z covers share
// at least one cell — a superset of the pairs with intersecting MBRs —
// using a sort-merge sweep over the interval endpoints, in the spirit of
// Orenstein's spatial sort-merge join. fn receives each candidate pair
// exactly once.
func Join(a, b []geom.Rect, cfg CoverConfig, fn func(i, j int)) JoinStats {
	var ivs []interval
	var st JoinStats
	for i, r := range a {
		for _, reg := range Cover(r, cfg) {
			ivs = append(ivs, interval{lo: reg.Lo, hi: reg.Hi, idx: int32(i), side: 0})
			st.IntervalsA++
		}
	}
	for j, r := range b {
		for _, reg := range Cover(r, cfg) {
			ivs = append(ivs, interval{lo: reg.Lo, hi: reg.Hi, idx: int32(j), side: 1})
			st.IntervalsB++
		}
	}
	sort.Slice(ivs, func(x, y int) bool {
		if ivs[x].lo != ivs[y].lo {
			return ivs[x].lo < ivs[y].lo
		}
		return ivs[x].side < ivs[y].side
	})

	seen := make(map[uint64]struct{})
	emit := func(i, j int32) {
		key := uint64(i)<<32 | uint64(uint32(j))
		if _, ok := seen[key]; ok {
			return
		}
		seen[key] = struct{}{}
		st.Pairs++
		fn(int(i), int(j))
	}

	// Sweep: keep the active intervals of each side; activation order by
	// lo guarantees every overlapping pair is seen when the later interval
	// starts.
	var activeA, activeB []interval
	for _, iv := range ivs {
		// Retire expired intervals lazily.
		activeA = retire(activeA, iv.lo, &st)
		activeB = retire(activeB, iv.lo, &st)
		if iv.side == 0 {
			for _, o := range activeB {
				emit(iv.idx, o.idx)
			}
			activeA = append(activeA, iv)
		} else {
			for _, o := range activeA {
				emit(o.idx, iv.idx)
			}
			activeB = append(activeB, iv)
		}
	}
	return st
}

func retire(active []interval, lo uint64, st *JoinStats) []interval {
	out := active[:0]
	for _, o := range active {
		st.Comparisons++
		if o.hi >= lo {
			out = append(out, o)
		}
	}
	return out
}
