package shard

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"

	"spatialjoin/internal/multistep"
	"spatialjoin/internal/resilience"
	"spatialjoin/internal/resilience/fault"
)

// BatchOutcome is one request's result from JoinBatch: exactly what the
// corresponding solo Join would have returned.
type BatchOutcome struct {
	Pairs []multistep.Pair
	Stats JoinStats
}

// JoinBatch runs N join requests over the sharded relation pair (r, s)
// as shared work: the tile-pair routing happens once (all requests
// share one step-1 ε, so they route identically), and each eligible
// tile pair runs ONE batched synchronized traversal
// (multistep.JoinBatch) that serves every request, on one session pair
// per tile pair — each request still observes its solo per-tile page
// accounting because the shared traversal replays the solo trace.
// Results come back per request, merged exactly as Join merges:
// globally translated, (A, B)-sorted, compacted, limit-truncated.
//
// tc, when non-nil, caches tile-pair sub-results: requests whose
// per-tile-pair identity (predicate, config override, plan mode,
// requested workers) hits the cache skip that tile pair's share of the
// traversal entirely and contribute the original run's sub-statistics.
// Bufferless requests bypass the cache (their sub-results carry no
// pairs and must not be served to collecting requests).
//
// All requests must share the predicate's step-1 ε; WithStream is not
// supported (batched execution always collects). Groups larger than
// multistep.MaxBatchItems are chunked into successive batched
// traversals, preserving per-request order.
func JoinBatch(ctx context.Context, r, s *Sharded, tc JoinTileCache, items [][]multistep.Option) ([]BatchOutcome, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(items) == 0 {
		return nil, nil
	}
	if len(items) > multistep.MaxBatchItems {
		out := make([]BatchOutcome, 0, len(items))
		for start := 0; start < len(items); start += multistep.MaxBatchItems {
			end := min(start+multistep.MaxBatchItems, len(items))
			chunk, err := JoinBatch(ctx, r, s, tc, items[start:end])
			if err != nil {
				return nil, err
			}
			out = append(out, chunk...)
		}
		return out, nil
	}

	ress := make([]multistep.Resolved, len(items))
	for i, opts := range items {
		res := multistep.ResolveOptions(opts)
		if err := res.Pred.Validate(); err != nil {
			return nil, err
		}
		if res.Stream != nil {
			return nil, multistep.ErrBatchStream
		}
		if res.Cfg == nil && r.Fingerprint() != s.Fingerprint() {
			return nil, fmt.Errorf("shard: relations %q and %q were built under different configurations: %w",
				r.Name, s.Name, multistep.ErrConfigMismatch)
		}
		if i > 0 && res.Pred.Epsilon() != ress[0].Pred.Epsilon() {
			return nil, multistep.ErrBatchMismatch
		}
		ress[i] = res
	}

	eligible := eligiblePairs(r, s, ress[0].Pred.Epsilon())

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	outcomes := make([]BatchOutcome, len(items))
	for i := range outcomes {
		outcomes[i].Stats.SubJoins = len(eligible)
	}

	var (
		mu       sync.Mutex
		firstErr error
	)
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	var wg sync.WaitGroup
	for _, e := range eligible {
		wg.Add(1)
		go func(e tilePair) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			rt, st := r.Tiles[e.ri], s.Tiles[e.si]

			// Split the requests into tile-cache hits and the remainder
			// that shares this tile pair's batched traversal.
			tileRes := make([]JoinTileResult, len(items))
			var todo []int
			for i := range items {
				if tc != nil && !ress[i].Bufferless {
					if cr, ok := tc.GetJoinTile(joinTileKey(e.ri, e.si, ress[i])); ok {
						tileRes[i] = cr
						continue
					}
				}
				todo = append(todo, i)
			}

			if len(todo) > 0 {
				// The shared traversal is a recovery boundary: a panic in
				// this tile pair's batched sub-join becomes its error (and,
				// joins failing closed, every batched request's) instead of
				// killing the process.
				err := func() (err error) {
					defer resilience.RecoverTo(&err, "tile-join")
					if ferr := fault.Check("tile-join"); ferr != nil {
						return ferr
					}
					subItems := make([][]multistep.Option, len(todo))
					subExs := make([]*multistep.Explain, len(todo))
					for n, i := range todo {
						sub := make([]multistep.Option, 0, len(items[i])+2)
						sub = append(sub, items[i]...)
						sub = append(sub, multistep.WithLimit(-1))
						// Always capture the sub-join plan on the caching path
						// (see QueryCached); a fresh WithExplain also shields
						// the caller's capture target from concurrent writes.
						subExs[n] = new(multistep.Explain)
						sub = append(sub, multistep.WithExplain(subExs[n]))
						subItems[n] = sub
					}
					sessR, sessS := rt.Rel.NewSession(), st.Rel.NewSession()
					outs, err := multistep.JoinBatch(ctx, rt.Rel, st.Rel, sessR, sessS, subItems)
					if err != nil {
						return err
					}
					if serr := sessR.Err(); serr != nil {
						return serr
					}
					if serr := sessS.Err(); serr != nil {
						return serr
					}
					for n, i := range todo {
						tileRes[i] = JoinTileResult{Pairs: outs[n].Pairs, Stats: outs[n].Stats, Explain: subExs[n]}
						if tc != nil && !ress[i].Bufferless {
							tc.PutJoinTile(joinTileKey(e.ri, e.si, ress[i]), tileRes[i])
						}
					}
					return nil
				}()
				if err != nil {
					mu.Lock()
					defer mu.Unlock()
					if firstErr == nil {
						firstErr = err
						cancel()
					}
					return
				}
			}

			mu.Lock()
			defer mu.Unlock()
			for i := range items {
				tr := tileRes[i]
				ex := tr.Explain
				if ress[i].Explain == nil {
					ex = nil
				}
				outcomes[i].Stats.PerTile = append(outcomes[i].Stats.PerTile,
					SubJoinStats{RTile: e.ri, STile: e.si, Stats: tr.Stats, Explain: ex})
				addStats(&outcomes[i].Stats.Stats, tr.Stats)
				if !ress[i].Bufferless {
					for _, p := range tr.Pairs {
						outcomes[i].Pairs = append(outcomes[i].Pairs, multistep.Pair{A: rt.Global[p.A], B: st.Global[p.B]})
					}
				}
			}
		}(e)
	}
	wg.Wait()

	if firstErr == nil {
		firstErr = parent.Err()
	}
	if firstErr != nil {
		return nil, firstErr
	}

	for i := range outcomes {
		o := &outcomes[i]
		slices.SortFunc(o.Stats.PerTile, func(a, b SubJoinStats) int {
			switch {
			case a.RTile != b.RTile:
				return a.RTile - b.RTile
			default:
				return a.STile - b.STile
			}
		})
		if ress[i].Explain != nil {
			// aggregateExplain reads the sub-joins' Explain records; on
			// this path they were surfaced only for requests that asked.
			*ress[i].Explain = aggregateExplain(o.Stats.PerTile, false)
		}
		if !ress[i].Bufferless {
			slices.SortFunc(o.Pairs, func(p, q multistep.Pair) int {
				switch {
				case p.A != q.A:
					return int(p.A - q.A)
				default:
					return int(p.B - q.B)
				}
			})
			o.Pairs = slices.Compact(o.Pairs)
			if ress[i].Limit >= 0 && len(o.Pairs) > ress[i].Limit {
				o.Pairs = o.Pairs[:ress[i].Limit]
			}
		}
	}
	return outcomes, nil
}
