package shard

import (
	"context"
	"errors"
	"fmt"
	"runtime"
	"slices"
	"sync"
	"sync/atomic"
	"testing"
	"time"

	"spatialjoin/internal/data"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/multistep"
)

var shardCounts = []int{1, 2, 4}

// TestJoinEquivalence is the core acceptance criterion: for every
// predicate and every shard count, the scatter-gather join returns
// byte-identical pairs to the unsharded join, and the aggregated
// candidate/filter/exact counters sum to the unsharded run's.
func TestJoinEquivalence(t *testing.T) {
	rp, sp, cfg := testWorkload(t)
	// The translated overlay exercises intersects and within-ε; the
	// contains predicate needs actual containments, so its S relation
	// shrinks every R object toward its MBR center.
	shrunk := make([]*geom.Polygon, len(rp))
	for i, p := range rp {
		c := p.Bounds().Center()
		shrunk[i] = p.Transform(func(q geom.Point) geom.Point {
			return geom.Point{X: c.X + (q.X-c.X)*0.25, Y: c.Y + (q.Y-c.Y)*0.25}
		})
	}
	preds := []struct {
		pred multistep.Predicate
		sp   []*geom.Polygon
	}{
		{multistep.Intersects(), sp},
		{multistep.Contains(), shrunk},
		{multistep.WithinDistance(0.02), sp},
	}
	for _, pc := range preds {
		pred, sp := pc.pred, pc.sp
		r := multistep.NewRelation("R", rp, cfg)
		s := multistep.NewRelation("S", sp, cfg)
		want, wantSt, err := multistep.Join(context.Background(), r, s, multistep.WithPredicate(pred))
		if err != nil {
			t.Fatal(err)
		}
		if wantSt.ResultPairs == 0 {
			t.Fatalf("%v: workload joins to nothing; test is vacuous", pred)
		}
		for _, n := range shardCounts {
			shR := Build("R", rp, n, cfg)
			shS := Build("S", sp, n, cfg)
			got, gotSt, err := Join(context.Background(), shR, shS, multistep.WithPredicate(pred))
			if err != nil {
				t.Fatalf("%v n=%d: %v", pred, n, err)
			}
			if !slices.Equal(got, want) {
				t.Fatalf("%v n=%d: %d pairs, want %d; responses differ", pred, n, len(got), len(want))
			}
			type counts struct{ cand, fh, ffh, et, eh, rp int64 }
			w := counts{wantSt.CandidatePairs, wantSt.FilterHits, wantSt.FilterFalseHits, wantSt.ExactTested, wantSt.ExactHits, wantSt.ResultPairs}
			g := counts{gotSt.CandidatePairs, gotSt.FilterHits, gotSt.FilterFalseHits, gotSt.ExactTested, gotSt.ExactHits, gotSt.ResultPairs}
			if g != w {
				t.Errorf("%v n=%d: aggregated stats %+v, want %+v", pred, n, g, w)
			}
			// Per-tile accounting must itself sum to the aggregate.
			var sub counts
			for _, ps := range gotSt.PerTile {
				sub.cand += ps.Stats.CandidatePairs
				sub.fh += ps.Stats.FilterHits
				sub.ffh += ps.Stats.FilterFalseHits
				sub.et += ps.Stats.ExactTested
				sub.eh += ps.Stats.ExactHits
				sub.rp += ps.Stats.ResultPairs
			}
			if sub != g {
				t.Errorf("%v n=%d: per-tile stats %+v don't sum to aggregate %+v", pred, n, sub, g)
			}
			if len(gotSt.PerTile) != gotSt.SubJoins {
				t.Errorf("%v n=%d: %d per-tile entries for %d sub-joins", pred, n, len(gotSt.PerTile), gotSt.SubJoins)
			}
		}
	}
}

// TestJoinLimitIsGlobalSortedPrefix: a WithLimit cap on the
// scatter-gather join returns the prefix of the globally sorted
// response, not a first-arrived subset.
func TestJoinLimitIsGlobalSortedPrefix(t *testing.T) {
	rp, sp, cfg := testWorkload(t)
	r := multistep.NewRelation("R", rp, cfg)
	s := multistep.NewRelation("S", sp, cfg)
	want, _, err := multistep.Join(context.Background(), r, s)
	if err != nil {
		t.Fatal(err)
	}
	for _, limit := range []int{0, 1, 7, len(want) - 1, len(want) + 10} {
		wantCap := want
		if limit < len(want) {
			wantCap = want[:limit]
		}
		for _, n := range shardCounts {
			shR, shS := Build("R", rp, n, cfg), Build("S", sp, n, cfg)
			got, _, err := Join(context.Background(), shR, shS, multistep.WithLimit(limit))
			if err != nil {
				t.Fatal(err)
			}
			if !slices.Equal(got, wantCap) {
				t.Fatalf("n=%d limit=%d: got %d pairs, want the global sorted prefix of %d", n, limit, len(got), len(wantCap))
			}
		}
	}
}

// TestJoinStreamMatchesCollect: streaming emits exactly the collected
// response set (as a set — arrival order is unspecified), with global
// IDs, and the stats agree.
func TestJoinStreamMatchesCollect(t *testing.T) {
	rp, sp, cfg := testWorkload(t)
	shR, shS := Build("R", rp, 4, cfg), Build("S", sp, 4, cfg)
	want, wantSt, err := Join(context.Background(), shR, shS)
	if err != nil {
		t.Fatal(err)
	}
	var got []multistep.Pair
	ps, gotSt, err := Join(context.Background(), shR, shS,
		multistep.WithStream(func(p multistep.Pair) { got = append(got, p) }))
	if err != nil {
		t.Fatal(err)
	}
	if ps != nil {
		t.Error("streaming join must not also collect")
	}
	slices.SortFunc(got, func(p, q multistep.Pair) int {
		if p.A != q.A {
			return int(p.A - q.A)
		}
		return int(p.B - q.B)
	})
	if !slices.Equal(got, want) {
		t.Fatalf("streamed %d pairs differ from collected %d", len(got), len(want))
	}
	if gotSt.ResultPairs != wantSt.ResultPairs || gotSt.CandidatePairs != wantSt.CandidatePairs {
		t.Errorf("streaming stats differ: %d/%d pairs, %d/%d candidates",
			gotSt.ResultPairs, wantSt.ResultPairs, gotSt.CandidatePairs, wantSt.CandidatePairs)
	}
}

// sortedIDs is the unsharded query response brought into the sharded
// contract's order (ascending global IDs).
func sortedIDs(ids []int32) []int32 {
	out := slices.Clone(ids)
	slices.Sort(out)
	return out
}

// TestQueryEquivalence covers window, point, ε-range and nearest targets
// across shard counts, including the Stats sums.
func TestQueryEquivalence(t *testing.T) {
	rp, _, cfg := testWorkload(t)
	r := multistep.NewRelation("R", rp, cfg)
	win := geom.Rect{MinX: 0.2, MinY: 0.25, MaxX: 0.55, MaxY: 0.6}
	pt := geom.Point{X: 0.4, Y: 0.45}
	cases := []struct {
		name string
		opts []multistep.Option
	}{
		{"window", []multistep.Option{multistep.ForWindow(win)}},
		{"window-within", []multistep.Option{multistep.ForWindow(win), multistep.WithPredicate(multistep.WithinDistance(0.03))}},
		{"point", []multistep.Option{multistep.ForPoint(pt)}},
		{"nearest", []multistep.Option{multistep.ForNearest(pt, 7)}},
	}
	for _, tc := range cases {
		want, err := multistep.Query(context.Background(), r, tc.opts...)
		if err != nil {
			t.Fatal(err)
		}
		if want.Stats.ResultObjects == 0 {
			t.Fatalf("%s: empty baseline; test is vacuous", tc.name)
		}
		for _, n := range shardCounts {
			sh := Build("R", rp, n, cfg)
			got, err := Query(context.Background(), sh, tc.opts...)
			if err != nil {
				t.Fatalf("%s n=%d: %v", tc.name, n, err)
			}
			if !slices.Equal(got.IDs, sortedIDs(want.IDs)) {
				t.Fatalf("%s n=%d: IDs %v, want %v", tc.name, n, got.IDs, sortedIDs(want.IDs))
			}
			if !slices.Equal(got.Neighbors, want.Neighbors) {
				t.Fatalf("%s n=%d: neighbors %v, want %v", tc.name, n, got.Neighbors, want.Neighbors)
			}
			if got.Stats.ResultObjects != want.Stats.ResultObjects {
				t.Errorf("%s n=%d: %d results, want %d", tc.name, n, got.Stats.ResultObjects, want.Stats.ResultObjects)
			}
			if tc.name != "nearest" {
				// Disjoint tiles: per-object counters sum exactly.
				if got.Stats.Candidates != want.Stats.Candidates ||
					got.Stats.FilterHits != want.Stats.FilterHits ||
					got.Stats.FilterFalseHits != want.Stats.FilterFalseHits ||
					got.Stats.ExactTested != want.Stats.ExactTested {
					t.Errorf("%s n=%d: stats %+v, want %+v", tc.name, n, got.Stats.WindowStats, want.Stats)
				}
			}
			var pages int64
			for _, ts := range got.Stats.Tiles {
				pages += ts.Stats.PageAccesses
			}
			if pages != got.Stats.PageAccesses {
				t.Errorf("%s n=%d: per-tile pages %d don't sum to aggregate %d", tc.name, n, pages, got.Stats.PageAccesses)
			}
		}
	}
}

// TestQueryLimitIsSortedPrefix: the query limit truncates the merged
// ascending-ID response, not the per-tile delivery order.
func TestQueryLimitIsSortedPrefix(t *testing.T) {
	rp, _, cfg := testWorkload(t)
	sh := Build("R", rp, 4, cfg)
	win := geom.Rect{MinX: 0.1, MinY: 0.1, MaxX: 0.8, MaxY: 0.8}
	full, err := Query(context.Background(), sh, multistep.ForWindow(win))
	if err != nil {
		t.Fatal(err)
	}
	if len(full.IDs) < 4 {
		t.Fatal("window too small; test is vacuous")
	}
	capped, err := Query(context.Background(), sh, multistep.ForWindow(win), multistep.WithLimit(3))
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(capped.IDs, full.IDs[:3]) {
		t.Errorf("limit 3: %v, want prefix %v", capped.IDs, full.IDs[:3])
	}
}

// TestJoinConfigMismatch: sharded relations built under different
// configurations refuse to join, as the single-relation path does.
func TestJoinConfigMismatch(t *testing.T) {
	rp, sp, cfg := testWorkload(t)
	other := cfg
	other.Engine = multistep.EngineQuadratic
	shR, shS := Build("R", rp, 2, cfg), Build("S", sp, 2, other)
	if _, _, err := Join(context.Background(), shR, shS); !errors.Is(err, multistep.ErrConfigMismatch) {
		t.Errorf("mismatched configs joined: %v", err)
	}
	// An explicit WithConfig overrides the check, as in multistep.
	if _, _, err := Join(context.Background(), shR, shS, multistep.WithConfig(cfg)); err != nil {
		t.Errorf("WithConfig override failed: %v", err)
	}
}

// TestQueryTargetValidation mirrors the single-relation target errors.
func TestQueryTargetValidation(t *testing.T) {
	rp, _, cfg := testWorkload(t)
	sh := Build("R", rp, 2, cfg)
	if _, err := Query(context.Background(), sh); !errors.Is(err, multistep.ErrNoTarget) {
		t.Errorf("no target: %v, want ErrNoTarget", err)
	}
	if _, err := Query(context.Background(), sh,
		multistep.ForWindow(geom.Rect{MaxX: 1, MaxY: 1}),
		multistep.WithPredicate(multistep.Contains())); !errors.Is(err, multistep.ErrBadPredicate) {
		t.Errorf("contains window: %v, want ErrBadPredicate", err)
	}
	if _, err := Query(context.Background(), sh,
		multistep.ForNearest(geom.Point{X: 0.5, Y: 0.5}, 3),
		multistep.WithPredicate(multistep.WithinDistance(0.1))); !errors.Is(err, multistep.ErrBadPredicate) {
		t.Errorf("nearest with predicate: %v, want ErrBadPredicate", err)
	}
}

// cancelWorkload is sized so the scatter-gather join takes hundreds of
// milliseconds — the same shape as multistep's cancelSeries, split into
// tiles.
func cancelWorkload(t testing.TB) (*Sharded, *Sharded) {
	t.Helper()
	rp := data.GenerateMap(data.MapConfig{Cells: 700, TargetVerts: 56, HoleFraction: 0.1, Seed: 601})
	sp := data.StrategyA(rp, 0.45)
	cfg := multistep.DefaultConfig()
	cfg.UseFilter = false // every candidate reaches the exact step: maximal work
	cfg.Engine = multistep.EngineQuadratic
	return Build("R", rp, 3, cfg), Build("S", sp, 3, cfg)
}

// TestScatterGatherCancellationStopsEarly extends
// TestJoinCancellationStopsEarly to the tile fan-out: cancelling the
// scatter-gather join must cancel every tile sub-join, return
// context.Canceled well before the full join's wall clock, and leak no
// goroutines.
func TestScatterGatherCancellationStopsEarly(t *testing.T) {
	r, s := cancelWorkload(t)

	start := time.Now()
	_, full, err := Join(context.Background(), r, s, multistep.WithBufferless())
	if err != nil {
		t.Fatal(err)
	}
	fullWall := time.Since(start)
	if full.ResultPairs == 0 {
		t.Fatal("workload joins to nothing; test is vacuous")
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var emitted atomic.Int64
	go func() {
		for {
			if emitted.Load() > 0 {
				cancel()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	start = time.Now()
	_, _, err = Join(ctx, r, s, multistep.WithStream(func(multistep.Pair) { emitted.Add(1) }))
	cancelledWall := time.Since(start)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled scatter-gather join returned %v, want context.Canceled", err)
	}
	if fullWall > 200*time.Millisecond && cancelledWall > fullWall/2 {
		t.Errorf("cancelled join took %v of a %v full join — fan-out cancellation did not stop work early",
			cancelledWall, fullWall)
	}
	waitForGoroutines(t, before)
}

// TestScatterGatherCancelledBeforeStart: a pre-cancelled context returns
// immediately without leaking the fan-out goroutines.
func TestScatterGatherCancelledBeforeStart(t *testing.T) {
	rp, sp, cfg := testWorkload(t)
	r, s := Build("R", rp, 4, cfg), Build("S", sp, 4, cfg)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, _, err := Join(ctx, r, s); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled join returned %v", err)
	}
	if _, err := Query(ctx, r, multistep.ForNearest(geom.Point{X: 0.5, Y: 0.5}, 3)); !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled query returned %v", err)
	}
	waitForGoroutines(t, before)
}

// waitForGoroutines polls until the goroutine count returns to (at most)
// the baseline — the no-leak check, as in multistep's cancellation suite.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked: %d, baseline %d", runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}

// TestConcurrentMixedQueries is the PR 3-style fleet against one shared
// sharded pair: joins, window, point and nearest queries race on the
// same tiles and must reproduce their sequential baselines exactly
// (run under -race in CI).
func TestConcurrentMixedQueries(t *testing.T) {
	rp, sp, cfg := testWorkload(t)
	shR, shS := Build("R", rp, 4, cfg), Build("S", sp, 4, cfg)
	win := geom.Rect{MinX: 0.2, MinY: 0.25, MaxX: 0.55, MaxY: 0.6}
	pt := geom.Point{X: 0.4, Y: 0.45}

	basePairs, _, err := Join(context.Background(), shR, shS)
	if err != nil {
		t.Fatal(err)
	}
	baseWin, err := Query(context.Background(), shR, multistep.ForWindow(win))
	if err != nil {
		t.Fatal(err)
	}
	basePt, err := Query(context.Background(), shR, multistep.ForPoint(pt))
	if err != nil {
		t.Fatal(err)
	}
	baseNear, err := Query(context.Background(), shR, multistep.ForNearest(pt, 5))
	if err != nil {
		t.Fatal(err)
	}

	const workers = 8
	const rounds = 3
	var wg sync.WaitGroup
	errs := make(chan error, workers*rounds)
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			for i := 0; i < rounds; i++ {
				switch (w + i) % 4 {
				case 0:
					ps, _, err := Join(context.Background(), shR, shS)
					if err == nil && !slices.Equal(ps, basePairs) {
						err = fmt.Errorf("concurrent join diverged: %d pairs, want %d", len(ps), len(basePairs))
					}
					if err != nil {
						errs <- err
					}
				case 1:
					qr, err := Query(context.Background(), shR, multistep.ForWindow(win))
					if err == nil && !slices.Equal(qr.IDs, baseWin.IDs) {
						err = fmt.Errorf("concurrent window diverged: %v", qr.IDs)
					}
					if err != nil {
						errs <- err
					}
				case 2:
					qr, err := Query(context.Background(), shR, multistep.ForPoint(pt))
					if err == nil && !slices.Equal(qr.IDs, basePt.IDs) {
						err = fmt.Errorf("concurrent point diverged: %v", qr.IDs)
					}
					if err != nil {
						errs <- err
					}
				case 3:
					qr, err := Query(context.Background(), shR, multistep.ForNearest(pt, 5))
					if err == nil && !slices.Equal(qr.Neighbors, baseNear.Neighbors) {
						err = fmt.Errorf("concurrent nearest diverged: %v", qr.Neighbors)
					}
					if err != nil {
						errs <- err
					}
				}
			}
		}(w)
	}
	wg.Wait()
	close(errs)
	for err := range errs {
		t.Error(err)
	}
}

// TestEmptyRelationJoins: an empty sharded relation joins and queries
// without error.
func TestEmptyRelationJoins(t *testing.T) {
	rp, _, cfg := testWorkload(t)
	empty := Build("E", nil, 4, cfg)
	full := Build("R", rp, 2, cfg)
	ps, st, err := Join(context.Background(), empty, full)
	if err != nil || len(ps) != 0 || st.ResultPairs != 0 {
		t.Errorf("empty join: %d pairs, stats %+v, err %v", len(ps), st.Stats, err)
	}
	qr, err := Query(context.Background(), empty, multistep.ForWindow(geom.Rect{MaxX: 1, MaxY: 1}))
	if err != nil || len(qr.IDs) != 0 {
		t.Errorf("empty window query: %v, err %v", qr.IDs, err)
	}
}
