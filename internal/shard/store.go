package shard

import (
	"errors"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"spatialjoin/internal/codec"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/plan"
)

// A sharded store is a directory: one SJRL relation store per tile
// (tile-0000.sjrl, tile-0001.sjrl, …) plus a manifest binding them back
// into one facade. The manifest carries the config fingerprint, the tile
// MBRs (the routing keys), per-tile object counts and the local→global
// ID mapping; Open cross-checks all of it against the reopened tiles,
// and each tile file additionally carries its own fingerprint that
// multistep.OpenRelationFile verifies — a tile swapped in from a store
// built under a different configuration is rejected at open.
//
// Manifest layout (little endian):
//
//	magic       uint32  'SJSM'
//	version     uint16  1
//	fingerprint uint64  multistep.ConfigFingerprint of the build config
//	name        uint16 length + bytes
//	objects     uint32  total object count
//	tiles       uint16  tile count
//	tiles ×tiles:
//	  mbr       4 × float64 bits (MinX, MinY, MaxX, MaxY)
//	  count     uint32
//	  global    count × uint32 global object IDs (local order)
//	  stats     uint32 length + plan.AppendStats layout (version ≥ 2)
//
// Version 2 added the per-tile planner-statistics blob, so a
// coordinator can plan tile-pair sub-joins from the manifest alone.
// Version 1 manifests (no blobs) still open; the statistics then come
// from the reopened tiles (recomputed there for version 1 tile files).
const (
	manifestMagic   = 0x534A534D // "SJSM"
	manifestVersion = 2

	// ManifestName is the manifest's file name inside a store directory.
	ManifestName = "manifest.sjsm"
)

// ErrBadManifest reports a malformed sharded-store manifest, or a
// manifest inconsistent with the tile files beside it.
var ErrBadManifest = errors.New("shard: corrupt sharded store manifest")

// tilePath names tile t's relation store inside dir.
func tilePath(dir string, t int) string {
	return filepath.Join(dir, fmt.Sprintf("tile-%04d.sjrl", t))
}

// IsStoreDir reports whether path is a sharded store directory — a
// directory holding a manifest file.
func IsStoreDir(path string) bool {
	fi, err := os.Stat(path)
	if err != nil || !fi.IsDir() {
		return false
	}
	_, err = os.Stat(filepath.Join(path, ManifestName))
	return err == nil
}

// Save writes sh as a sharded store directory, creating dir if needed.
// It is a loop over StoreWriter; incremental builders that never hold
// the whole relation drive the writer directly.
func Save(dir string, sh *Sharded) error {
	w, err := NewStoreWriter(dir, sh.Name, sh.Cfg)
	if err != nil {
		return err
	}
	for _, t := range sh.Tiles {
		if err := w.writeRel(t.Rel, t.Global, t.MBR); err != nil {
			return err
		}
	}
	return w.Finish()
}

// Open reopens a sharded store directory under cfg. The manifest's
// fingerprint must match cfg (multistep.ErrConfigMismatch otherwise),
// every tile file must itself open under cfg — a tile built under a
// different configuration fails its own fingerprint check — and the
// manifest's counts, MBRs and ID mapping must agree with the tiles: the
// global IDs must be a bijection onto 0..objects-1 and each tile MBR
// must equal the union of the reopened tile's object MBRs bit for bit.
func Open(dir string, cfg multistep.Config) (*Sharded, error) {
	blob, err := os.ReadFile(filepath.Join(dir, ManifestName))
	if err != nil {
		return nil, err
	}
	trunc := fmt.Errorf("%w: truncated manifest", ErrBadManifest)
	d := codec.New(blob, trunc)
	if magic := d.U32(); d.Err() == nil && magic != manifestMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBadManifest, magic)
	}
	version := d.U16()
	if d.Err() == nil && (version < 1 || version > manifestVersion) {
		return nil, fmt.Errorf("%w: version %d, this build reads ≤ %d", ErrBadManifest, version, manifestVersion)
	}
	fp := d.U64()
	if d.Err() == nil && fp != multistep.ConfigFingerprint(cfg) {
		return nil, fmt.Errorf("shard: store %q: %w", dir, multistep.ErrConfigMismatch)
	}
	name := string(d.Bytes(int(d.U16())))
	objects := int(d.U32())
	tiles := int(d.U16())
	if err := d.Err(); err != nil {
		return nil, err
	}
	if tiles < 1 {
		return nil, fmt.Errorf("%w: %d tiles", ErrBadManifest, tiles)
	}

	sh := &Sharded{Name: name, Cfg: cfg, objects: objects, mbr: geom.EmptyRect()}
	seen := make([]bool, objects)
	for t := 0; t < tiles; t++ {
		mbr := geom.Rect{
			MinX: math.Float64frombits(d.U64()),
			MinY: math.Float64frombits(d.U64()),
			MaxX: math.Float64frombits(d.U64()),
			MaxY: math.Float64frombits(d.U64()),
		}
		count := int(d.U32())
		if d.Err() != nil {
			return nil, d.Err()
		}
		global := make([]int32, count)
		for i := range global {
			g := d.U32()
			if d.Err() != nil {
				return nil, d.Err()
			}
			if int(g) >= objects || seen[g] {
				return nil, fmt.Errorf("%w: global ID %d out of range or repeated", ErrBadManifest, g)
			}
			seen[g] = true
			global[i] = int32(g)
		}
		var manifestStats *plan.Stats
		if version >= 2 {
			statsLen := int(d.U32())
			if d.Err() == nil && d.Remaining() < statsLen {
				return nil, fmt.Errorf("%w: tile %d stats of %d bytes exceed the remaining data", ErrBadManifest, t, statsLen)
			}
			statsBytes := d.Bytes(statsLen)
			if d.Err() != nil {
				return nil, d.Err()
			}
			st, err := plan.DecodeStats(statsBytes)
			if err != nil {
				return nil, fmt.Errorf("%w: tile %d: %v", ErrBadManifest, t, err)
			}
			if st.Objects != int64(count) {
				return nil, fmt.Errorf("%w: tile %d stats describe %d objects, manifest says %d",
					ErrBadManifest, t, st.Objects, count)
			}
			manifestStats = st
		}
		rel, err := multistep.OpenRelationFile(tilePath(dir, t), cfg)
		if err != nil {
			return nil, fmt.Errorf("shard: tile %d of %q: %w", t, dir, err)
		}
		if manifestStats != nil {
			// The manifest copy is authoritative for the routing layer; it
			// was snapshotted from the same statistics the tile file holds,
			// and keeping one instance means coordinator-level planning and
			// sub-join feedback share the same EWMAs.
			rel.Stats = manifestStats
		}
		if len(rel.Objects) != count {
			return nil, fmt.Errorf("%w: tile %d holds %d objects, manifest says %d",
				ErrBadManifest, t, len(rel.Objects), count)
		}
		got := geom.EmptyRect()
		for _, o := range rel.Objects {
			got = got.Union(o.Poly.Bounds())
		}
		if got != mbr {
			return nil, fmt.Errorf("%w: tile %d MBR %v disagrees with manifest %v", ErrBadManifest, t, got, mbr)
		}
		sh.Tiles = append(sh.Tiles, &Tile{Index: t, Rel: rel, Global: global, MBR: mbr})
		sh.mbr = sh.mbr.Union(mbr)
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadManifest, d.Remaining())
	}
	for g, ok := range seen {
		if !ok {
			return nil, fmt.Errorf("%w: global ID %d unassigned", ErrBadManifest, g)
		}
	}
	return sh, nil
}
