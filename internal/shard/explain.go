package shard

import (
	"context"
	"fmt"

	"spatialjoin/internal/multistep"
)

// tilePair identifies one eligible tile-pair sub-join.
type tilePair struct{ ri, si int }

// eligiblePairs applies the routing test of the scatter-gather join:
// sub-join (i, j) runs iff r.Tiles[i].MBR expanded by the predicate's ε
// intersects s.Tiles[j].MBR.
func eligiblePairs(r, s *Sharded, eps float64) []tilePair {
	var eligible []tilePair
	for _, rt := range r.Tiles {
		grown := rt.MBR.Expand(eps)
		for _, st := range s.Tiles {
			if grown.Intersects(st.MBR) {
				eligible = append(eligible, tilePair{rt.Index, st.Index})
			}
		}
	}
	return eligible
}

// TileExplain is the plan record of one tile-pair sub-join.
type TileExplain struct {
	RTile   int               `json:"rTile"`
	STile   int               `json:"sTile"`
	Explain multistep.Explain `json:"explain"`
}

// ExplainResult is the EXPLAIN record of a scatter-gather join: the
// aggregate over all sub-joins plus the per-tile-pair breakdown (each
// tile pair is planned independently from its own tiles' statistics, so
// skewed tiles legitimately show different engines or worker counts).
type ExplainResult struct {
	// Explain aggregates the sub-joins: predicted and actual counters
	// are sums; the summed cost/wall figures are serial-equivalent work
	// (sub-joins overlap in wall time under the coordinator's
	// GOMAXPROCS cap).
	Explain multistep.Explain `json:"explain"`
	// SubJoins is the shard fan-out: the number of tile pairs that
	// passed routing.
	SubJoins int `json:"subJoins"`
	// PerTile lists each sub-join's plan, sorted by (RTile, STile).
	PerTile []TileExplain `json:"perTile"`
}

// aggregateExplain folds the per-sub-join explains of a completed join
// into one record: sums for the counters and cost figures, the plan
// knobs merged ("mixed" when sub-joins chose different engines).
func aggregateExplain(perTile []SubJoinStats, stream bool) multistep.Explain {
	var agg multistep.Explain
	agg.Executed = true
	agg.Plan.Stream = stream
	first := true
	for _, sj := range perTile {
		if sj.Explain == nil {
			continue
		}
		ex := sj.Explain
		if first {
			agg.Plan = ex.Plan
			agg.Plan.Stream = stream
			first = false
		} else {
			if agg.Plan.Engine != ex.Plan.Engine {
				// Filter disagreements stay visible per tile; the engine is
				// the one knob a client reads first, so flag divergence.
				agg.Plan.Engine = "mixed"
			}
			if ex.Plan.Workers > agg.Plan.Workers {
				agg.Plan.Workers = ex.Plan.Workers
			}
			agg.Plan.Planned = agg.Plan.Planned || ex.Plan.Planned
			agg.Plan.StreamRecommended = agg.Plan.StreamRecommended || ex.Plan.StreamRecommended
			agg.Plan.PredictedCandidates += ex.Plan.PredictedCandidates
			agg.Plan.PredictedExactTested += ex.Plan.PredictedExactTested
			agg.Plan.PredictedResultPairs += ex.Plan.PredictedResultPairs
			agg.Plan.PredictedCostNs += ex.Plan.PredictedCostNs
		}
		agg.Executed = agg.Executed && ex.Executed
		agg.ActualCandidates += ex.ActualCandidates
		agg.ActualExactTested += ex.ActualExactTested
		agg.ActualResultPairs += ex.ActualResultPairs
		agg.ActualWallNs += ex.ActualWallNs
	}
	if agg.Plan.Planned {
		if agg.ActualCandidates > 0 {
			agg.CandidateError = agg.Plan.PredictedCandidates / float64(agg.ActualCandidates)
		}
		if agg.ActualWallNs > 0 {
			agg.CostError = agg.Plan.PredictedCostNs / float64(agg.ActualWallNs)
		}
	}
	return agg
}

// Explain plans (and with run, executes) a scatter-gather join and
// returns the aggregate plus per-tile-pair plan records — the EXPLAIN
// verb of the sharded layer. Without run, every eligible tile pair is
// planned through multistep.ExplainJoin and nothing executes; with run,
// the join executes bufferlessly (statistics and plans, no pairs) and
// the records carry predicted-vs-actual errors.
func Explain(ctx context.Context, r, s *Sharded, run bool, opts ...multistep.Option) (ExplainResult, error) {
	res := multistep.ResolveOptions(opts)
	if err := res.Pred.Validate(); err != nil {
		return ExplainResult{}, err
	}
	if res.Cfg == nil && r.Fingerprint() != s.Fingerprint() {
		return ExplainResult{}, fmt.Errorf("shard: relations %q and %q were built under different configurations: %w",
			r.Name, s.Name, multistep.ErrConfigMismatch)
	}

	if run {
		var agg multistep.Explain
		runOpts := make([]multistep.Option, 0, len(opts)+2)
		runOpts = append(runOpts, opts...)
		runOpts = append(runOpts, multistep.WithBufferless(), multistep.WithExplain(&agg))
		_, st, err := Join(ctx, r, s, runOpts...)
		if err != nil {
			return ExplainResult{}, err
		}
		out := ExplainResult{Explain: agg, SubJoins: st.SubJoins}
		for _, sj := range st.PerTile {
			if sj.Explain != nil {
				out.PerTile = append(out.PerTile, TileExplain{RTile: sj.RTile, STile: sj.STile, Explain: *sj.Explain})
			}
		}
		return out, nil
	}

	eligible := eligiblePairs(r, s, res.Pred.Epsilon())
	out := ExplainResult{SubJoins: len(eligible)}
	subStats := make([]SubJoinStats, 0, len(eligible))
	for _, e := range eligible {
		if err := ctx.Err(); err != nil {
			return ExplainResult{}, err
		}
		ex, err := multistep.ExplainJoin(r.Tiles[e.ri].Rel, s.Tiles[e.si].Rel, opts...)
		if err != nil {
			return ExplainResult{}, err
		}
		out.PerTile = append(out.PerTile, TileExplain{RTile: e.ri, STile: e.si, Explain: ex})
		exCopy := ex
		subStats = append(subStats, SubJoinStats{RTile: e.ri, STile: e.si, Explain: &exCopy})
	}
	out.Explain = aggregateExplain(subStats, res.Stream != nil)
	out.Explain.Executed = false
	return out, nil
}
