// Package shard partitions one logical relation into N spatial tiles,
// each a self-contained multistep.Relation with its own R*-tree and page
// buffer, and serves joins and queries against the tile set through a
// scatter-gather layer that preserves the single-relation contracts:
// globally (A, B)-sorted join responses, limit truncation as the global
// sorted prefix, cancellation fanned out to every tile, and statistics
// that sum to the paper's accounting.
//
// The partition is disjoint: every object is assigned to exactly one
// tile by the Z-order position of its MBR center (internal/zorder), and
// tiles are contiguous runs of the Z-sorted object sequence, so tile
// sizes stay balanced regardless of skew. Tile MBRs overlap where
// objects straddle cell boundaries — routing uses the true MBRs, never
// the curve cells, so no candidate can be missed. Because no object is
// replicated, each qualifying pair arises in exactly one sub-join and
// the candidate/filter/exact counters sum exactly to the unsharded run
// (see DESIGN.md §10 for the replication/clipping trade-off).
package shard

import (
	"fmt"
	"slices"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/zorder"
)

// Tile is one shard of a partitioned relation: a complete
// multistep.Relation over the tile's objects (local IDs 0..n-1) plus the
// mapping back to global object IDs.
type Tile struct {
	// Index is the tile's position in Sharded.Tiles.
	Index int
	// Rel holds the tile's objects under local IDs; Rel.Objects[i]
	// corresponds to global object Global[i].
	Rel *multistep.Relation
	// Global maps local object IDs to the IDs of the unsharded relation.
	Global []int32
	// MBR is the union of the member objects' MBRs — the routing key.
	// Tile MBRs may overlap (objects straddle cell boundaries).
	MBR geom.Rect
}

// Sharded is a relation partitioned into Z-order tiles behind one
// facade. Zero tiles never occur: even an empty relation has one
// (empty) tile, so every code path routes uniformly.
type Sharded struct {
	// Name is the facade name; tile relations are named "Name[i]".
	Name string
	// Cfg is the configuration every tile was preprocessed under.
	Cfg multistep.Config
	// Tiles holds the shards in Z order of their object runs.
	Tiles []*Tile

	objects int
	mbr     geom.Rect
}

// Shards returns the tile count.
func (s *Sharded) Shards() int { return len(s.Tiles) }

// Objects returns the total object count across tiles.
func (s *Sharded) Objects() int { return s.objects }

// MBR returns the union of all tile MBRs (empty for an empty relation).
func (s *Sharded) MBR() geom.Rect { return s.mbr }

// Fingerprint returns the configuration fingerprint shared by every
// tile — the compatibility key for joins and stores.
func (s *Sharded) Fingerprint() uint64 { return multistep.ConfigFingerprint(s.Cfg) }

// ZCenter returns the Z code of a rectangle's center quantized onto the
// data space at the finest zorder level — the partition key of Build.
// Degenerate data-space axes (all centers collinear) quantize to cell 0
// on that axis. Exported so incremental builders (internal/loadgen) can
// reproduce Build's partition without materializing the relation.
func ZCenter(r, ds geom.Rect) uint64 {
	n := float64(uint32(1) << zorder.MaxLevel)
	quant := func(v, lo, hi float64) uint32 {
		if hi <= lo {
			return 0
		}
		t := (v - lo) / (hi - lo) * n
		if t < 0 {
			t = 0
		}
		if t > n-1 {
			t = n - 1
		}
		return uint32(t)
	}
	c := r.Center()
	return zorder.Encode(quant(c.X, ds.MinX, ds.MaxX), quant(c.Y, ds.MinY, ds.MaxY))
}

// Build partitions polys into at most shards tiles and preprocesses each
// tile as its own relation under cfg. The shard count clamps to
// [1, len(polys)] (and to exactly 1 for an empty input), so requesting
// more tiles than objects degrades gracefully.
//
// Objects are sorted by the Z-order code of their MBR center over the
// data space (the union MBR of the input) and split into contiguous,
// balanced runs — tile t holds Z-rank positions [t·n/N, (t+1)·n/N).
func Build(name string, polys []*geom.Polygon, shards int, cfg multistep.Config) *Sharded {
	n := len(polys)
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = max(n, 1)
	}

	ds := geom.EmptyRect()
	bounds := make([]geom.Rect, n)
	for i, p := range polys {
		bounds[i] = p.Bounds()
		ds = ds.Union(bounds[i])
	}

	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	codes := make([]uint64, n)
	for i := range codes {
		codes[i] = ZCenter(bounds[i], ds)
	}
	slices.SortStableFunc(order, func(a, b int32) int {
		switch {
		case codes[a] != codes[b]:
			if codes[a] < codes[b] {
				return -1
			}
			return 1
		default:
			return int(a - b)
		}
	})

	sh := &Sharded{Name: name, Cfg: cfg, objects: n, mbr: ds}
	for t := 0; t < shards; t++ {
		lo, hi := t*n/shards, (t+1)*n/shards
		global := make([]int32, 0, hi-lo)
		sub := make([]*geom.Polygon, 0, hi-lo)
		mbr := geom.EmptyRect()
		for _, g := range order[lo:hi] {
			global = append(global, g)
			sub = append(sub, polys[g])
			mbr = mbr.Union(bounds[g])
		}
		sh.Tiles = append(sh.Tiles, &Tile{
			Index:  t,
			Rel:    multistep.NewRelation(fmt.Sprintf("%s[%d]", name, t), sub, cfg),
			Global: global,
			MBR:    mbr,
		})
	}
	return sh
}

// FromRelation wraps an existing single relation as a one-tile Sharded,
// so monolithic and partitioned relations serve through the same
// scatter-gather path. The tile shares the relation's objects and tree;
// global IDs are the relation's own.
func FromRelation(rel *multistep.Relation) *Sharded {
	global := make([]int32, len(rel.Objects))
	mbr := geom.EmptyRect()
	for i, o := range rel.Objects {
		global[i] = o.ID
		mbr = mbr.Union(o.Poly.Bounds())
	}
	return &Sharded{
		Name:    rel.Name,
		Cfg:     rel.Cfg,
		Tiles:   []*Tile{{Index: 0, Rel: rel, Global: global, MBR: mbr}},
		objects: len(rel.Objects),
		mbr:     mbr,
	}
}
