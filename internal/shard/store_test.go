package shard

import (
	"context"
	"errors"
	"os"
	"path/filepath"
	"slices"
	"testing"

	"spatialjoin/internal/multistep"
)

// TestStoreRoundTrip: a 4-shard store written and reopened through the
// manifest joins and queries identically to the in-memory build — and to
// the unsharded golden.
func TestStoreRoundTrip(t *testing.T) {
	rp, sp, cfg := testWorkload(t)
	shR, shS := Build("R", rp, 4, cfg), Build("S", sp, 4, cfg)
	golden, _, err := multistep.Join(context.Background(),
		multistep.NewRelation("R", rp, cfg), multistep.NewRelation("S", sp, cfg))
	if err != nil {
		t.Fatal(err)
	}

	dir := t.TempDir()
	rDir, sDir := filepath.Join(dir, "R"), filepath.Join(dir, "S")
	if err := Save(rDir, shR); err != nil {
		t.Fatal(err)
	}
	if err := Save(sDir, shS); err != nil {
		t.Fatal(err)
	}
	if !IsStoreDir(rDir) {
		t.Error("IsStoreDir must recognize a saved store")
	}
	if IsStoreDir(dir) {
		t.Error("IsStoreDir must reject a directory without a manifest")
	}

	gotR, err := Open(rDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	gotS, err := Open(sDir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if gotR.Name != "R" || gotR.Shards() != 4 || gotR.Objects() != len(rp) {
		t.Fatalf("reopened facade: name %q, %d tiles, %d objects", gotR.Name, gotR.Shards(), gotR.Objects())
	}
	if gotR.MBR() != shR.MBR() {
		t.Errorf("reopened MBR %v, want %v", gotR.MBR(), shR.MBR())
	}
	pairs, _, err := Join(context.Background(), gotR, gotS)
	if err != nil {
		t.Fatal(err)
	}
	if !slices.Equal(pairs, golden) {
		t.Fatalf("reopened store joins to %d pairs, golden has %d", len(pairs), len(golden))
	}
}

// TestStoreEmptyRelationRoundTrip: the degenerate one-empty-tile store
// survives the trip too.
func TestStoreEmptyRelationRoundTrip(t *testing.T) {
	_, _, cfg := testWorkload(t)
	dir := filepath.Join(t.TempDir(), "E")
	if err := Save(dir, Build("E", nil, 4, cfg)); err != nil {
		t.Fatal(err)
	}
	got, err := Open(dir, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if got.Objects() != 0 || got.Shards() != 1 {
		t.Errorf("reopened empty store: %d objects, %d tiles", got.Objects(), got.Shards())
	}
}

// TestOpenRejectsManifestFingerprintMismatch: opening a store under a
// different configuration fails before any tile is touched.
func TestOpenRejectsManifestFingerprintMismatch(t *testing.T) {
	rp, _, cfg := testWorkload(t)
	dir := filepath.Join(t.TempDir(), "R")
	if err := Save(dir, Build("R", rp, 2, cfg)); err != nil {
		t.Fatal(err)
	}
	other := cfg
	other.Engine = multistep.EngineQuadratic
	if _, err := Open(dir, other); !errors.Is(err, multistep.ErrConfigMismatch) {
		t.Errorf("mismatched config opened: %v", err)
	}
}

// TestOpenRejectsSwappedTile: a tile file from a store built under a
// different configuration is rejected by its own fingerprint even when
// the manifest matches — the per-tile defense the acceptance criteria
// require.
func TestOpenRejectsSwappedTile(t *testing.T) {
	rp, sp, cfg := testWorkload(t)
	other := cfg
	other.Engine = multistep.EngineQuadratic // same page size: the swap reaches the fingerprint check

	base := t.TempDir()
	goodDir, alienDir := filepath.Join(base, "good"), filepath.Join(base, "alien")
	if err := Save(goodDir, Build("R", rp, 4, cfg)); err != nil {
		t.Fatal(err)
	}
	if err := Save(alienDir, Build("S", sp, 4, other)); err != nil {
		t.Fatal(err)
	}
	alien, err := os.ReadFile(tilePath(alienDir, 0))
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(tilePath(goodDir, 2), alien, 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(goodDir, cfg); !errors.Is(err, multistep.ErrConfigMismatch) {
		t.Errorf("swapped tile opened: %v", err)
	}
}

// TestOpenRejectsCorruptManifest covers truncation, bad magic and
// trailing garbage.
func TestOpenRejectsCorruptManifest(t *testing.T) {
	rp, _, cfg := testWorkload(t)
	dir := filepath.Join(t.TempDir(), "R")
	if err := Save(dir, Build("R", rp, 2, cfg)); err != nil {
		t.Fatal(err)
	}
	manifest := filepath.Join(dir, ManifestName)
	blob, err := os.ReadFile(manifest)
	if err != nil {
		t.Fatal(err)
	}

	cases := []struct {
		name string
		mut  func([]byte) []byte
	}{
		{"truncated", func(b []byte) []byte { return b[:len(b)/2] }},
		{"bad magic", func(b []byte) []byte { c := slices.Clone(b); c[0] ^= 0xFF; return c }},
		{"trailing bytes", func(b []byte) []byte { return append(slices.Clone(b), 0, 0, 0) }},
	}
	for _, tc := range cases {
		if err := os.WriteFile(manifest, tc.mut(blob), 0o644); err != nil {
			t.Fatal(err)
		}
		if _, err := Open(dir, cfg); !errors.Is(err, ErrBadManifest) {
			t.Errorf("%s: opened corrupt manifest: %v", tc.name, err)
		}
	}
}
