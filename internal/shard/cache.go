package shard

import (
	"spatialjoin/internal/multistep"
)

// Per-tile(-pair) sub-result caching hooks. A sharded relation's
// scatter-gather layer runs every request as independent sub-joins and
// sub-queries on deterministic per-tile session snapshots, which makes
// those sub-results cacheable: requests that differ in their full
// normalized key can still reach identical per-tile sub-problems and
// share that work. Concretely, a join request with a different worker
// count misses the whole-response cache, but every tile-pair sub-join
// it needs may replay from the tile cache; and because tile entries
// live independently in the byte-bounded LRU, a hot tile's sub-result
// can survive eviction of the (larger) whole-response entries that
// produced it, so the next full-key miss still skips that tile's work.
//
// The interfaces are implemented by the serving layer over its shared
// byte-bounded LRU (internal/mqe); shard itself stays storage-agnostic.
// Keys deliberately exclude the relation identity: the implementation
// scopes them (internal/serve prefixes the catalog entry's generation
// and config fingerprint), because only the layer that swaps relations
// can know when two *Sharded values are the same data.
//
// Cached sub-results carry the ORIGINAL run's statistics and plan
// record — the same policy as whole-response caching (see DESIGN.md
// §12) — and a cache hit skips the planner feedback EWMAs for that
// sub-problem, since no execution happened.

// QueryTileKey identifies one tile's sub-query result within one
// sharded relation. The target geometry is spelled out (not hashed) so
// implementations can stringify it exactly.
type QueryTileKey struct {
	// Tile is the tile index within the sharded relation.
	Tile int
	// Nearest and K describe a nearest-neighbour sub-query; window and
	// point targets leave them zero.
	Nearest bool
	K       int
	// MinX..MaxY is the window (degenerate for point targets; the query
	// point for nearest targets, MinX=MaxX=X, MinY=MaxY=Y).
	MinX, MinY, MaxX, MaxY float64
	// Pred is the predicate's canonical string form ("intersects",
	// "contains", "within(ε)" with ε in shortest round-trip notation).
	Pred string
	// CfgFP fingerprints a WithConfig override; 0 without one (the
	// tile's build configuration, already pinned by the caller's scoped
	// prefix).
	CfgFP uint64
	// Planned reports WithPlan: planned and pinned sub-queries may
	// resolve different filter settings.
	Planned bool
}

// QueryTileResult is one tile's cached sub-query outcome. IDs and
// neighbour IDs are tile-local (the merge layer translates through the
// tile's Global table on every use).
type QueryTileResult struct {
	IDs         []int32
	Neighbors   []multistep.Neighbor
	Stats       multistep.WindowStats
	PageTouches int64
	// Explain is the sub-query's plan record from the original run;
	// always captured on the caching path so a later request that wants
	// the plan echo can be served from cache.
	Explain *multistep.Explain
}

// QueryTileCache caches per-tile sub-query results. Implementations
// must be safe for concurrent use; Get must return a result whose
// slices the caller may read but not write.
type QueryTileCache interface {
	GetQueryTile(QueryTileKey) (QueryTileResult, bool)
	PutQueryTile(QueryTileKey, QueryTileResult)
}

// JoinTileKey identifies one tile-pair sub-join within one sharded
// relation pair.
type JoinTileKey struct {
	// RTile and STile are the pair's tile indices.
	RTile, STile int
	// Pred is the predicate's canonical string form.
	Pred string
	// CfgFP fingerprints a WithConfig override; 0 without one.
	CfgFP uint64
	// Planned reports WithPlan.
	Planned bool
	// Workers is the *requested* worker count (0 when unset). It is part
	// of the identity because the sub-join's plan record — which feeds
	// the aggregated plan echo — depends on it, even though the pairs
	// and statistics do not.
	Workers int
}

// JoinTileResult is one tile pair's cached sub-join outcome. Pairs are
// tile-local.
type JoinTileResult struct {
	Pairs   []multistep.Pair
	Stats   multistep.Stats
	Explain *multistep.Explain
}

// JoinTileCache caches per-tile-pair sub-join results, with the same
// contract as QueryTileCache.
type JoinTileCache interface {
	GetJoinTile(JoinTileKey) (JoinTileResult, bool)
	PutJoinTile(JoinTileKey, JoinTileResult)
}

// queryTileKey builds the cache key of one tile's sub-query under the
// resolved options.
func queryTileKey(tile int, res multistep.Resolved) QueryTileKey {
	k := QueryTileKey{
		Tile:    tile,
		Pred:    res.Pred.String(),
		Planned: res.Plan,
	}
	if res.Cfg != nil {
		k.CfgFP = multistep.ConfigFingerprint(*res.Cfg)
	}
	switch {
	case res.Nearest:
		k.Nearest = true
		k.K = res.NearestK
		k.MinX, k.MaxX = res.Point.X, res.Point.X
		k.MinY, k.MaxY = res.Point.Y, res.Point.Y
	case res.Window != nil:
		k.MinX, k.MinY = res.Window.MinX, res.Window.MinY
		k.MaxX, k.MaxY = res.Window.MaxX, res.Window.MaxY
	case res.Point != nil:
		k.MinX, k.MaxX = res.Point.X, res.Point.X
		k.MinY, k.MaxY = res.Point.Y, res.Point.Y
	}
	return k
}

// joinTileKey builds the cache key of one tile pair's sub-join under
// the resolved options.
func joinTileKey(ri, si int, res multistep.Resolved) JoinTileKey {
	k := JoinTileKey{
		RTile:   ri,
		STile:   si,
		Pred:    res.Pred.String(),
		Planned: res.Plan,
		Workers: res.Workers,
	}
	if res.Cfg != nil {
		k.CfgFP = multistep.ConfigFingerprint(*res.Cfg)
	}
	return k
}
