package shard

// Backward compatibility of the sharded store: version 1 manifests —
// written before the per-tile planner-statistics blobs existed — must
// still open and join identically. The test derives the v1 manifest
// from the current encoder by re-walking the v2 bytes, copying every
// field except the stats blobs, and patching the version, so it stays
// byte-exact with what a pre-statistics build wrote.

import (
	"context"
	"encoding/binary"
	"os"
	"path/filepath"
	"reflect"
	"testing"
)

// manifestToV1 rewrites a version 2 manifest blob into the version 1
// layout: same header and tile records, no per-tile stats blobs.
func manifestToV1(t *testing.T, v2 []byte) []byte {
	t.Helper()
	le := binary.LittleEndian
	fail := func() {
		t.Helper()
		t.Fatalf("manifest of %d bytes too short for the v2 layout", len(v2))
	}
	need := func(off, n int) {
		t.Helper()
		if off+n > len(v2) {
			fail()
		}
	}

	need(0, 16)
	if le.Uint16(v2[4:]) != manifestVersion {
		t.Fatalf("saved manifest has version %d, want %d", le.Uint16(v2[4:]), manifestVersion)
	}
	nameLen := int(le.Uint16(v2[14:]))
	need(16, nameLen+6)
	off := 16 + nameLen + 4 // past header, name and object count
	tiles := int(le.Uint16(v2[off:]))
	off += 2

	v1 := append([]byte(nil), v2[:off]...)
	le.PutUint16(v1[4:], 1)
	for i := 0; i < tiles; i++ {
		need(off, 36)
		count := int(le.Uint32(v2[off+32:]))
		recLen := 36 + 4*count
		need(off, recLen+4)
		v1 = append(v1, v2[off:off+recLen]...)
		statsLen := int(le.Uint32(v2[off+recLen:]))
		off += recLen + 4 + statsLen
	}
	if off != len(v2) {
		t.Fatalf("walked %d of %d manifest bytes", off, len(v2))
	}
	return v1
}

func TestManifestV1Compat(t *testing.T) {
	rp, sp, cfg := testWorkload(t)
	shR, shS := Build("R", rp, 3, cfg), Build("S", sp, 3, cfg)

	dir := t.TempDir()
	rDir, sDir := filepath.Join(dir, "R"), filepath.Join(dir, "S")
	for d, sh := range map[string]*Sharded{rDir: shR, sDir: shS} {
		if err := Save(d, sh); err != nil {
			t.Fatal(err)
		}
	}

	open := func() (*Sharded, *Sharded) {
		t.Helper()
		r, err := Open(rDir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		s, err := Open(sDir, cfg)
		if err != nil {
			t.Fatal(err)
		}
		return r, s
	}
	r2, s2 := open()
	golden, gst, err := Join(context.Background(), r2, s2)
	if err != nil {
		t.Fatal(err)
	}

	// Downgrade both manifests in place and reopen.
	for _, d := range []string{rDir, sDir} {
		mf := filepath.Join(d, ManifestName)
		blob, err := os.ReadFile(mf)
		if err != nil {
			t.Fatal(err)
		}
		if err := os.WriteFile(mf, manifestToV1(t, blob), 0o644); err != nil {
			t.Fatal(err)
		}
	}
	r1, s1 := open()

	// Without manifest blobs the statistics come from the tile files;
	// the structural part the planner routes on must be intact.
	for _, tile := range r1.Tiles {
		if tile.Rel.Stats == nil {
			t.Fatalf("tile %d reopened from a v1 manifest without statistics", tile.Index)
		}
		if tile.Rel.Stats.Objects != int64(len(tile.Rel.Objects)) {
			t.Fatalf("tile %d stats describe %d objects, tile holds %d",
				tile.Index, tile.Rel.Stats.Objects, len(tile.Rel.Objects))
		}
	}

	got, st, err := Join(context.Background(), r1, s1)
	if err != nil {
		t.Fatal(err)
	}
	if !reflect.DeepEqual(got, golden) {
		t.Errorf("v1-manifest store joined differently: %d vs %d pairs", len(got), len(golden))
	}
	if !reflect.DeepEqual(st, gst) {
		t.Errorf("v1-manifest store reported different statistics:\nv1 %+v\nv2 %+v", st, gst)
	}

	// A truncated v1 manifest must still be rejected.
	mf := filepath.Join(rDir, ManifestName)
	blob, err := os.ReadFile(mf)
	if err != nil {
		t.Fatal(err)
	}
	if err := os.WriteFile(mf, blob[:len(blob)-3], 0o644); err != nil {
		t.Fatal(err)
	}
	if _, err := Open(rDir, cfg); err == nil {
		t.Error("Open accepted a truncated v1 manifest")
	}
}
