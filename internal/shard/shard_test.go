package shard

import (
	"testing"

	"spatialjoin/internal/data"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/multistep"
)

// testWorkload is the shared map/overlay pair of the equivalence suite:
// small enough to build per-test, large enough that every tile of a
// four-way split holds work on both sides of the join.
func testWorkload(t testing.TB) ([]*geom.Polygon, []*geom.Polygon, multistep.Config) {
	t.Helper()
	rp := data.GenerateMap(data.MapConfig{Cells: 150, TargetVerts: 24, HoleFraction: 0.1, Seed: 907})
	sp := data.StrategyA(rp, 0.5)
	return rp, sp, multistep.DefaultConfig()
}

func TestBuildPartitionInvariants(t *testing.T) {
	rp, _, cfg := testWorkload(t)
	for _, n := range []int{1, 2, 4, 7} {
		sh := Build("R", rp, n, cfg)
		if sh.Shards() != n {
			t.Fatalf("Build(n=%d) made %d tiles", n, sh.Shards())
		}
		if sh.Objects() != len(rp) {
			t.Fatalf("n=%d: %d objects, want %d", n, sh.Objects(), len(rp))
		}
		// Every global ID assigned exactly once; tile MBRs cover their
		// members; tile sizes balanced to within one object.
		seen := make([]bool, len(rp))
		lo, hi := len(rp), 0
		for _, tile := range sh.Tiles {
			if len(tile.Global) != len(tile.Rel.Objects) {
				t.Fatalf("n=%d tile %d: %d global IDs for %d objects", n, tile.Index, len(tile.Global), len(tile.Rel.Objects))
			}
			if len(tile.Global) < lo {
				lo = len(tile.Global)
			}
			if len(tile.Global) > hi {
				hi = len(tile.Global)
			}
			for i, g := range tile.Global {
				if seen[g] {
					t.Fatalf("n=%d: global ID %d in two tiles", n, g)
				}
				seen[g] = true
				b := tile.Rel.Objects[i].Poly.Bounds()
				if !tile.MBR.Contains(b) {
					t.Fatalf("n=%d tile %d: MBR %v misses member %v", n, tile.Index, tile.MBR, b)
				}
			}
			if !sh.MBR().Contains(tile.MBR) {
				t.Fatalf("n=%d: facade MBR misses tile %d", n, tile.Index)
			}
		}
		for g, ok := range seen {
			if !ok {
				t.Fatalf("n=%d: global ID %d unassigned", n, g)
			}
		}
		if hi-lo > 1 {
			t.Errorf("n=%d: tile sizes unbalanced: min %d, max %d", n, lo, hi)
		}
	}
}

func TestBuildClampsShardCount(t *testing.T) {
	_, _, cfg := testWorkload(t)
	rp := data.GenerateMap(data.MapConfig{Cells: 4, TargetVerts: 12, Seed: 11})
	if got := Build("R", rp, 0, cfg).Shards(); got != 1 {
		t.Errorf("shards=0 clamps to %d, want 1", got)
	}
	if got := Build("R", rp, 100, cfg).Shards(); got != len(rp) {
		t.Errorf("shards=100 over %d objects clamps to %d", len(rp), got)
	}
	empty := Build("E", nil, 4, cfg)
	if empty.Shards() != 1 || empty.Objects() != 0 {
		t.Errorf("empty relation: %d tiles, %d objects, want one empty tile", empty.Shards(), empty.Objects())
	}
}

func TestFromRelationWrapsIdentity(t *testing.T) {
	rp, _, cfg := testWorkload(t)
	rel := multistep.NewRelation("R", rp, cfg)
	sh := FromRelation(rel)
	if sh.Shards() != 1 || sh.Objects() != len(rp) {
		t.Fatalf("FromRelation: %d tiles, %d objects", sh.Shards(), sh.Objects())
	}
	if sh.Tiles[0].Rel != rel {
		t.Error("FromRelation must share the relation, not copy it")
	}
	for i, g := range sh.Tiles[0].Global {
		if int(g) != i {
			t.Fatalf("global IDs not the identity: [%d] = %d", i, g)
		}
	}
	if sh.Fingerprint() != multistep.ConfigFingerprint(cfg) {
		t.Error("fingerprint disagrees with the relation's configuration")
	}
}
