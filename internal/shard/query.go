package shard

import (
	"context"
	"errors"
	"runtime"
	"slices"
	"sync"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/resilience"
	"spatialjoin/internal/resilience/fault"
)

// TileQueryStats is the accounting of one tile's sub-query.
type TileQueryStats struct {
	// Tile is the tile index.
	Tile int
	// Stats is the sub-query's own accounting on the tile's session.
	Stats multistep.WindowStats
	// PageTouches counts all page touches (hits and misses) of the
	// tile's session — Stats.PageAccesses counts only the misses.
	PageTouches int64
	// Explain is the sub-query's plan record, captured when the caller
	// passed WithExplain (each tile plans its filter setting from its
	// own statistics). Nil otherwise. Excluded from JSON: the wall-time
	// field would make otherwise-identical responses diverge.
	Explain *multistep.Explain `json:"-"`
}

// QueryStats aggregates a scatter-gather query. The embedded
// WindowStats sums the sub-queries: the partition is disjoint, so the
// candidate, filter and exact counters equal the unsharded run's, and
// PageAccesses is the total of real per-tile buffer misses.
// ResultObjects counts the merged (deduplicated, limit-truncated)
// response, not the per-tile sum.
type QueryStats struct {
	multistep.WindowStats
	// PageTouches totals all page touches (hits and misses) across the
	// routed tiles.
	PageTouches int64
	// Tiles lists each routed sub-query, sorted by tile index.
	Tiles []TileQueryStats
}

// TileFailure records one tile whose sub-query failed under
// WithPartialResults: the merged answer omits its objects.
type TileFailure struct {
	Tile int    `json:"tile"`
	Err  string `json:"err"`
}

// QueryResult is the merged answer of a scatter-gather query. IDs are
// global object IDs in ascending order (the canonical merged order — the
// single-relation path reports tree-delivery order instead); a WithLimit
// cap is the prefix of that order. Neighbors are sorted by (distance,
// global ID) as in the single-relation path.
//
// Under WithPartialResults a tile failure does not fail the query:
// Degraded is set, Failed lists the lost tiles (sorted by index), and
// the answer covers only the surviving tiles. Cancellation and deadline
// expiry still fail the whole query — a partial answer is for broken
// tiles, not for impatient clients — and a query where every routed
// tile failed returns the first failure rather than an empty answer.
type QueryResult struct {
	IDs       []int32
	Neighbors []multistep.Neighbor
	Stats     QueryStats
	Degraded  bool
	Failed    []TileFailure
}

// Query runs a window, point, ε-range or k-nearest-objects query against
// a sharded relation. Window and point targets route to the tiles whose
// MBR intersects the (ε-expanded) target; nearest targets fan out to
// every tile and merge the per-tile top-k — each tile's top-k is a
// superset of its members of the global top-k, so the merge is exact.
//
// The caller's WithLimit is lifted to the merge layer (sub-queries run
// uncapped): per-tile truncation happens in tree-delivery order, which
// cannot be reconciled with the global sorted-prefix contract.
//
// Cancellation fans out exactly as in Join.
func Query(ctx context.Context, r *Sharded, opts ...multistep.Option) (QueryResult, error) {
	return QueryCached(ctx, r, nil, opts...)
}

// QueryCached is Query with a per-tile sub-result cache: each routed
// tile's sub-query is looked up in tc before running, and fresh
// sub-results are stored after. A nil tc is exactly Query. Cached tiles
// contribute their original run's statistics and plan record, so the
// merged result is identical to an uncached run; the caller (the
// serving layer) must scope tc to this exact relation instance — see
// QueryTileCache.
func QueryCached(ctx context.Context, r *Sharded, tc QueryTileCache, opts ...multistep.Option) (QueryResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res := multistep.ResolveOptions(opts)
	if err := res.Pred.Validate(); err != nil {
		return QueryResult{}, err
	}
	if err := res.ValidateQueryTarget(); err != nil {
		return QueryResult{}, err
	}

	var tiles []*Tile
	if res.Nearest {
		tiles = r.Tiles
	} else {
		var target geom.Rect
		if res.Window != nil {
			target = *res.Window
		} else {
			target = geom.Rect{MinX: res.Point.X, MinY: res.Point.Y, MaxX: res.Point.X, MaxY: res.Point.Y}
		}
		grown := target.Expand(res.Pred.Epsilon())
		for _, t := range r.Tiles {
			if t.MBR.Intersects(grown) {
				tiles = append(tiles, t)
			}
		}
	}

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	type tileFailure struct {
		tile int
		err  error
	}
	var (
		mu        sync.Mutex
		firstErr  error
		failures  []tileFailure
		ids       []int32
		neighbors []multistep.Neighbor
		stats     QueryStats
	)
	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	var wg sync.WaitGroup
	for _, t := range tiles {
		wg.Add(1)
		go func(t *Tile) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			// The sub-query body is a recovery boundary: a panic inside
			// one tile's traversal becomes this tile's error instead of
			// killing the process.
			err := func() (err error) {
				defer resilience.RecoverTo(&err, "tile-query")
				if ferr := fault.Check("tile-query"); ferr != nil {
					return ferr
				}
				var key QueryTileKey
				if tc != nil {
					key = queryTileKey(t.Index, res)
					if cr, ok := tc.GetQueryTile(key); ok {
						mergeTileResult(&mu, t, cr, res.Explain != nil, &ids, &neighbors, &stats)
						return nil
					}
				}
				sess := t.Rel.NewSession()
				sub := make([]multistep.Option, 0, len(opts)+3)
				sub = append(sub, opts...)
				sub = append(sub, multistep.WithSession(sess), multistep.WithLimit(-1))
				// Each routed tile gets its own Explain: the caller's capture
				// target must not be written by N goroutines — appending a
				// fresh WithExplain overrides the one inside opts. The caching
				// path always captures one, so a cached sub-result can serve a
				// later request that wants the plan echo.
				var subEx *multistep.Explain
				if res.Explain != nil || tc != nil {
					subEx = new(multistep.Explain)
					sub = append(sub, multistep.WithExplain(subEx))
				}
				qr, qerr := multistep.Query(ctx, t.Rel, sub...)
				if qerr != nil {
					return qerr
				}
				if serr := sess.Err(); serr != nil {
					return serr
				}
				tr := QueryTileResult{IDs: qr.IDs, Neighbors: qr.Neighbors, Stats: qr.Stats, PageTouches: sess.Accesses(), Explain: subEx}
				if tc != nil {
					tc.PutQueryTile(key, tr)
				}
				mergeTileResult(&mu, t, tr, res.Explain != nil, &ids, &neighbors, &stats)
				return nil
			}()
			if err == nil {
				return
			}
			mu.Lock()
			defer mu.Unlock()
			// Degradation is for broken tiles only: cancellation and
			// deadline expiry always fail the whole query.
			if res.Partial && parent.Err() == nil &&
				!errors.Is(err, context.Canceled) && !errors.Is(err, context.DeadlineExceeded) {
				failures = append(failures, tileFailure{tile: t.Index, err: err})
				return
			}
			if firstErr == nil {
				firstErr = err
				cancel()
			}
		}(t)
	}
	wg.Wait()

	if firstErr == nil {
		firstErr = parent.Err()
	}
	if firstErr != nil {
		return QueryResult{}, firstErr
	}
	slices.SortFunc(failures, func(a, b tileFailure) int { return a.tile - b.tile })
	if len(failures) > 0 && len(stats.Tiles) == 0 {
		// Every routed tile failed: nothing to degrade to.
		return QueryResult{}, failures[0].err
	}
	slices.SortFunc(stats.Tiles, func(a, b TileQueryStats) int { return a.Tile - b.Tile })
	if res.Explain != nil {
		subStats := make([]SubJoinStats, 0, len(stats.Tiles))
		for _, t := range stats.Tiles {
			subStats = append(subStats, SubJoinStats{Explain: t.Explain})
		}
		*res.Explain = aggregateExplain(subStats, false)
	}

	var out QueryResult
	out.Stats = stats
	for _, f := range failures {
		out.Failed = append(out.Failed, TileFailure{Tile: f.tile, Err: f.err.Error()})
	}
	out.Degraded = len(out.Failed) > 0
	if res.Nearest {
		slices.SortFunc(neighbors, func(a, b multistep.Neighbor) int {
			switch {
			case a.Dist < b.Dist:
				return -1
			case a.Dist > b.Dist:
				return 1
			default:
				return int(a.ID - b.ID)
			}
		})
		k := res.NearestK
		if k > len(neighbors) {
			k = len(neighbors)
		}
		if k < 0 {
			k = 0
		}
		out.Neighbors = neighbors[:k]
		out.Stats.ResultObjects = int64(len(out.Neighbors))
		return out, nil
	}
	slices.Sort(ids)
	ids = slices.Compact(ids)
	if res.Limit >= 0 && len(ids) > res.Limit {
		ids = ids[:res.Limit]
	}
	out.IDs = ids
	out.Stats.ResultObjects = int64(len(ids))
	return out, nil
}

// mergeTileResult folds one tile's sub-result — fresh or cached — into
// the merge state under mu. The sub-result's local IDs are translated
// through the tile's Global table on every use (the cached slices are
// only ever read), and its Explain is surfaced only when the caller
// asked for one, so cached and uncached merges build identical state.
func mergeTileResult(mu *sync.Mutex, t *Tile, tr QueryTileResult, wantExplain bool,
	ids *[]int32, neighbors *[]multistep.Neighbor, stats *QueryStats) {
	mu.Lock()
	defer mu.Unlock()
	for _, id := range tr.IDs {
		*ids = append(*ids, t.Global[id])
	}
	for _, n := range tr.Neighbors {
		*neighbors = append(*neighbors, multistep.Neighbor{ID: t.Global[n.ID], Dist: n.Dist})
	}
	ex := tr.Explain
	if !wantExplain {
		ex = nil
	}
	stats.Tiles = append(stats.Tiles, TileQueryStats{Tile: t.Index, Stats: tr.Stats, PageTouches: tr.PageTouches, Explain: ex})
	stats.Candidates += tr.Stats.Candidates
	stats.FilterHits += tr.Stats.FilterHits
	stats.FilterFalseHits += tr.Stats.FilterFalseHits
	stats.ExactTested += tr.Stats.ExactTested
	stats.PageAccesses += tr.Stats.PageAccesses
	stats.PageTouches += tr.PageTouches
}
