package shard

import (
	"context"
	"reflect"
	"sync"
	"testing"

	"spatialjoin/internal/multistep"
)

// memTileCache is an in-memory implementation of both tile-cache
// interfaces for the shard-layer tests.
type memTileCache struct {
	mu        sync.Mutex
	joins     map[JoinTileKey]JoinTileResult
	queries   map[QueryTileKey]QueryTileResult
	joinHits  int
	queryHits int
}

func newMemTileCache() *memTileCache {
	return &memTileCache{
		joins:   make(map[JoinTileKey]JoinTileResult),
		queries: make(map[QueryTileKey]QueryTileResult),
	}
}

func (c *memTileCache) GetJoinTile(k JoinTileKey) (JoinTileResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.joins[k]
	if ok {
		c.joinHits++
	}
	return r, ok
}

func (c *memTileCache) PutJoinTile(k JoinTileKey, r JoinTileResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.joins[k] = r
}

func (c *memTileCache) GetQueryTile(k QueryTileKey) (QueryTileResult, bool) {
	c.mu.Lock()
	defer c.mu.Unlock()
	r, ok := c.queries[k]
	if ok {
		c.queryHits++
	}
	return r, ok
}

func (c *memTileCache) PutQueryTile(k QueryTileKey, r QueryTileResult) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.queries[k] = r
}

// stripPerTileExplains nulls the per-tile Explain pointers so JoinStats
// can be compared structurally between runs that captured explains and
// runs that did not.
func stripPerTileExplains(st *JoinStats) {
	for i := range st.PerTile {
		st.PerTile[i].Explain = nil
	}
}

// TestShardJoinBatchMatchesSolo: each request of a mixed batch over a
// sharded pair must return exactly its solo shard.Join result — pairs,
// aggregated stats, and per-tile breakdown — at several shard counts.
func TestShardJoinBatchMatchesSolo(t *testing.T) {
	rp, sp, cfg := testWorkload(t)
	noFilter := cfg
	noFilter.UseFilter = false
	items := [][]multistep.Option{
		{multistep.WithPredicate(multistep.Intersects())},
		{multistep.WithPredicate(multistep.Contains())},
		{multistep.WithPredicate(multistep.Intersects()), multistep.WithConfig(noFilter)},
		{multistep.WithPredicate(multistep.Intersects()), multistep.WithLimit(9)},
		{multistep.WithPredicate(multistep.Contains()), multistep.WithWorkers(2)},
	}
	for _, n := range []int{1, 3} {
		r := Build("R", rp, n, cfg)
		s := Build("S", sp, n, cfg)
		outs, err := JoinBatch(context.Background(), r, s, nil, items)
		if err != nil {
			t.Fatalf("n=%d JoinBatch: %v", n, err)
		}
		for i, opts := range items {
			pairs, st, err := Join(context.Background(), r, s, opts...)
			if err != nil {
				t.Fatalf("n=%d solo Join: %v", n, err)
			}
			if !reflect.DeepEqual(outs[i].Pairs, pairs) {
				t.Errorf("n=%d item %d: batched pairs (%d) != solo pairs (%d)", n, i, len(outs[i].Pairs), len(pairs))
			}
			if !reflect.DeepEqual(outs[i].Stats, st) {
				t.Errorf("n=%d item %d: batched JoinStats differ\nbatch %+v\nsolo  %+v", n, i, outs[i].Stats.Stats, st.Stats)
			}
		}
	}
}

// TestShardJoinBatchTileCache: a second batch over the same requests is
// served entirely from the tile-pair cache with identical results, and
// a request variant that misses the whole batch identity still hits the
// per-tile-pair entries it shares.
func TestShardJoinBatchTileCache(t *testing.T) {
	rp, sp, cfg := testWorkload(t)
	r := Build("R", rp, 3, cfg)
	s := Build("S", sp, 3, cfg)
	tc := newMemTileCache()
	items := [][]multistep.Option{
		{multistep.WithPredicate(multistep.Intersects())},
		{multistep.WithPredicate(multistep.Contains())},
	}

	first, err := JoinBatch(context.Background(), r, s, tc, items)
	if err != nil {
		t.Fatalf("JoinBatch: %v", err)
	}
	if tc.joinHits != 0 {
		t.Fatalf("cold batch hit the cache %d times", tc.joinHits)
	}
	entries := len(tc.joins)
	if entries == 0 {
		t.Fatal("cold batch cached nothing")
	}

	second, err := JoinBatch(context.Background(), r, s, tc, items)
	if err != nil {
		t.Fatalf("second JoinBatch: %v", err)
	}
	if tc.joinHits != entries {
		t.Fatalf("warm batch hit %d tile entries, want %d", tc.joinHits, entries)
	}
	for i := range items {
		sf, ss := first[i], second[i]
		stripPerTileExplains(&sf.Stats)
		stripPerTileExplains(&ss.Stats)
		if !reflect.DeepEqual(sf, ss) {
			t.Errorf("item %d: cached batch differs from cold batch", i)
		}
	}

	// A different limit is a different full request but the same
	// tile-pair identity: everything replays from cache.
	hitsBefore := tc.joinHits
	third, err := JoinBatch(context.Background(), r, s, tc, [][]multistep.Option{
		{multistep.WithPredicate(multistep.Intersects()), multistep.WithLimit(3)},
	})
	if err != nil {
		t.Fatalf("third JoinBatch: %v", err)
	}
	if tc.joinHits == hitsBefore {
		t.Fatal("limit variant did not reuse tile-pair entries")
	}
	if len(third[0].Pairs) != 3 {
		t.Fatalf("limit variant returned %d pairs, want 3", len(third[0].Pairs))
	}
	if !reflect.DeepEqual(third[0].Pairs, first[0].Pairs[:3]) {
		t.Fatal("limit variant is not the global sorted prefix of the full result")
	}
}

// TestShardQueryTileCache: QueryCached serves repeated window, point
// and nearest queries from the per-tile cache with identical results.
func TestShardQueryTileCache(t *testing.T) {
	rp, _, cfg := testWorkload(t)
	r := Build("R", rp, 4, cfg)
	tc := newMemTileCache()

	queries := [][]multistep.Option{
		{multistep.ForWindow(r.MBR())},
		{multistep.ForPoint(r.MBR().Center())},
		{multistep.ForNearest(r.MBR().Center(), 5)},
	}
	var first []QueryResult
	for _, q := range queries {
		qr, err := QueryCached(context.Background(), r, tc, q...)
		if err != nil {
			t.Fatalf("cold QueryCached: %v", err)
		}
		first = append(first, qr)
	}
	if tc.queryHits != 0 {
		t.Fatalf("cold queries hit the cache %d times", tc.queryHits)
	}
	entries := len(tc.queries)
	if entries == 0 {
		t.Fatal("cold queries cached nothing")
	}
	for i, q := range queries {
		qr, err := QueryCached(context.Background(), r, tc, q...)
		if err != nil {
			t.Fatalf("warm QueryCached: %v", err)
		}
		if !reflect.DeepEqual(qr, first[i]) {
			t.Errorf("query %d: cached result differs from cold result", i)
		}
	}
	if tc.queryHits != entries {
		t.Fatalf("warm queries hit %d tile entries, want %d", tc.queryHits, entries)
	}

	// The uncached entry point must match the cached results too.
	for i, q := range queries {
		qr, err := Query(context.Background(), r, q...)
		if err != nil {
			t.Fatalf("Query: %v", err)
		}
		if !reflect.DeepEqual(qr, first[i]) {
			t.Errorf("query %d: plain Query differs from QueryCached", i)
		}
	}
}
