package shard

import (
	"context"
	"fmt"
	"runtime"
	"slices"
	"sync"

	"spatialjoin/internal/multistep"
	"spatialjoin/internal/resilience"
	"spatialjoin/internal/resilience/fault"
)

// SubJoinStats is the accounting of one tile-pair sub-join.
type SubJoinStats struct {
	// RTile and STile are the tile indices of the pair.
	RTile, STile int
	// Stats is the sub-join's own multi-step accounting; page accesses
	// are real per-tile buffer misses (each sub-join runs on fresh
	// per-tile sessions).
	Stats multistep.Stats
	// Explain is the sub-join's plan record, captured when the caller
	// passed WithExplain (each sub-join is planned independently from
	// its own tiles' statistics, so skewed tiles run different plans).
	// Nil otherwise.
	Explain *multistep.Explain
}

// JoinStats aggregates a scatter-gather join. The embedded Stats sums
// the sub-joins field by field: the partition is disjoint, so every
// qualifying pair arises in exactly one sub-join and the candidate,
// filter, exact and result counters equal the unsharded run's. Page
// accesses and object fetches are honest per-tile totals — a tile
// joined against several peer tiles pays for its pages in each
// sub-join, so those fields exceed the monolithic run's; read PerTile
// for the breakdown.
type JoinStats struct {
	multistep.Stats
	// SubJoins counts the tile pairs whose MBRs passed the routing test
	// and actually ran.
	SubJoins int
	// PerTile lists each executed sub-join, sorted by (RTile, STile).
	PerTile []SubJoinStats
}

// addStats accumulates src into dst field by field.
func addStats(dst *multistep.Stats, src multistep.Stats) {
	dst.CandidatePairs += src.CandidatePairs
	dst.MBRJoin.Pairs += src.MBRJoin.Pairs
	dst.MBRJoin.RectTests += src.MBRJoin.RectTests
	dst.MBRJoin.LeafTests += src.MBRJoin.LeafTests
	dst.ZOrderCandidates += src.ZOrderCandidates
	dst.PageAccessesR += src.PageAccessesR
	dst.PageAccessesS += src.PageAccessesS
	dst.FilterHits += src.FilterHits
	dst.FilterFalseHits += src.FilterFalseHits
	dst.ExactTested += src.ExactTested
	dst.ExactHits += src.ExactHits
	dst.ObjectFetches += src.ObjectFetches
	dst.Ops.Add(src.Ops)
	dst.ResultPairs += src.ResultPairs
}

// Join runs the multi-step join of two sharded relations as per-tile-pair
// sub-joins and merges the responses back into the single-relation
// contract: pairs carry global object IDs, the collected response is
// (A, B)-sorted with adjacent duplicates removed, and a WithLimit cap is
// the prefix of that global order. The limit is lifted to the merge
// layer (sub-joins run uncapped): tiles sort by local IDs, a permutation
// of the global order, so a local prefix need not contain the global
// one. A WithStream emitter receives globally-translated pairs in
// arrival order, interleaved across sub-joins.
//
// Routing: sub-join (i, j) runs iff r.Tiles[i].MBR expanded by the
// predicate's ε intersects s.Tiles[j].MBR — tile MBRs are true object
// bounds, so no qualifying pair can be routed away.
//
// Cancellation fans out: the first sub-join error (including ctx
// cancellation) cancels every other sub-join, and Join returns only
// after all of them have stopped — no goroutine outlives the call.
func Join(ctx context.Context, r, s *Sharded, opts ...multistep.Option) ([]multistep.Pair, JoinStats, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	res := multistep.ResolveOptions(opts)
	if err := res.Pred.Validate(); err != nil {
		return nil, JoinStats{}, err
	}
	if res.Cfg == nil && r.Fingerprint() != s.Fingerprint() {
		return nil, JoinStats{}, fmt.Errorf("shard: relations %q and %q were built under different configurations: %w",
			r.Name, s.Name, multistep.ErrConfigMismatch)
	}

	eligible := eligiblePairs(r, s, res.Pred.Epsilon())

	parent := ctx
	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	var (
		mu       sync.Mutex
		out      []multistep.Pair
		firstErr error
		stats    = JoinStats{SubJoins: len(eligible)}
	)
	collect := res.Stream == nil && !res.Bufferless
	emit := res.Stream
	if emit != nil {
		inner := emit
		emit = func(p multistep.Pair) {
			mu.Lock()
			inner(p)
			mu.Unlock()
		}
	}

	sem := make(chan struct{}, max(1, runtime.GOMAXPROCS(0)))
	var wg sync.WaitGroup
	for _, e := range eligible {
		wg.Add(1)
		go func(e tilePair) {
			defer wg.Done()
			sem <- struct{}{}
			defer func() { <-sem }()
			if ctx.Err() != nil {
				return
			}
			rt, st := r.Tiles[e.ri], s.Tiles[e.si]
			// The sub-join body is a recovery boundary: a panic inside
			// one tile pair's traversal becomes this sub-join's error
			// (and, joins failing closed, the whole join's) instead of
			// killing the process.
			var (
				ps    []multistep.Pair
				sst   multistep.Stats
				subEx *multistep.Explain
			)
			err := func() (err error) {
				defer resilience.RecoverTo(&err, "tile-join")
				if ferr := fault.Check("tile-join"); ferr != nil {
					return ferr
				}
				sessR, sessS := rt.Rel.NewSession(), st.Rel.NewSession()
				// Fresh option slice per sub-join: appending to the shared
				// opts would race on its backing array.
				sub := make([]multistep.Option, 0, len(opts)+4)
				sub = append(sub, opts...)
				sub = append(sub, multistep.WithSessions(sessR, sessS),
					multistep.WithLimit(-1))
				// Each sub-join gets its own Explain: the caller's capture
				// target (if any) must not be written by N goroutines, and
				// per-tile-pair plans are the point — appending a fresh
				// WithExplain overrides the one inside opts.
				if res.Explain != nil {
					subEx = new(multistep.Explain)
					sub = append(sub, multistep.WithExplain(subEx))
				}
				if emit != nil {
					local := emit
					sub = append(sub, multistep.WithStream(func(p multistep.Pair) {
						local(multistep.Pair{A: rt.Global[p.A], B: st.Global[p.B]})
					}))
				}
				ps, sst, err = multistep.Join(ctx, rt.Rel, st.Rel, sub...)
				if err != nil {
					return err
				}
				if serr := sessR.Err(); serr != nil {
					return serr
				}
				return sessS.Err()
			}()
			mu.Lock()
			defer mu.Unlock()
			if err != nil {
				if firstErr == nil {
					firstErr = err
					cancel()
				}
				return
			}
			stats.PerTile = append(stats.PerTile, SubJoinStats{RTile: e.ri, STile: e.si, Stats: sst, Explain: subEx})
			addStats(&stats.Stats, sst)
			if collect {
				for _, p := range ps {
					out = append(out, multistep.Pair{A: rt.Global[p.A], B: st.Global[p.B]})
				}
			}
		}(e)
	}
	wg.Wait()

	if firstErr == nil {
		// Every sub-join may have skipped work on a context that was
		// cancelled before it started; surface the caller's error.
		firstErr = parent.Err()
	}
	if firstErr != nil {
		return nil, JoinStats{}, firstErr
	}
	slices.SortFunc(stats.PerTile, func(a, b SubJoinStats) int {
		switch {
		case a.RTile != b.RTile:
			return a.RTile - b.RTile
		default:
			return a.STile - b.STile
		}
	})
	if res.Explain != nil {
		*res.Explain = aggregateExplain(stats.PerTile, res.Stream != nil)
	}
	if collect {
		slices.SortFunc(out, func(p, q multistep.Pair) int {
			switch {
			case p.A != q.A:
				return int(p.A - q.A)
			default:
				return int(p.B - q.B)
			}
		})
		// The partition is disjoint, so duplicates cannot arise; the
		// compaction is the cheap invariant that keeps the merge correct
		// should a replicating partitioner ever be plugged in.
		out = slices.Compact(out)
		if res.Limit >= 0 && len(out) > res.Limit {
			out = out[:res.Limit]
		}
	}
	return out, stats, nil
}
