package shard

import (
	"encoding/binary"
	"fmt"
	"math"
	"os"
	"path/filepath"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/plan"
)

// StoreWriter writes a sharded store directory one tile at a time, so a
// builder never needs the whole relation in memory: preprocess a tile,
// hand it to WriteTile, drop it, repeat. The manifest is accumulated
// incrementally (MBRs, counts, ID mappings, planner statistics — small
// next to the geometry) and written by Finish. Save is a thin loop over
// this writer; the streaming scale-factor builder (internal/loadgen)
// drives it directly with tiles cut from a spill file.
//
// Tiles must be written in Z-run order (index 0, 1, …), matching the
// contiguous-run partition Build produces; Finish seals the directory.
// The output is byte-identical in layout to Save's and reopens with
// Open under the same configuration.
type StoreWriter struct {
	dir     string
	name    string
	cfg     multistep.Config
	objects int
	tiles   int
	records []byte // concatenated per-tile manifest records
	done    bool
}

// NewStoreWriter creates dir (if needed) and starts a sharded store for
// a relation with the given facade name, built under cfg.
func NewStoreWriter(dir, name string, cfg multistep.Config) (*StoreWriter, error) {
	if len(name) > 1<<16-1 {
		return nil, fmt.Errorf("shard: relation name of %d bytes exceeds the format", len(name))
	}
	if err := os.MkdirAll(dir, 0o755); err != nil {
		return nil, err
	}
	return &StoreWriter{dir: dir, name: name, cfg: cfg}, nil
}

// WriteTile preprocesses polys as the next tile's relation and writes
// its tile file. global maps the tile's local IDs (positions in polys)
// back to the relation's global object IDs; the two slices must be the
// same length. Neither slice is retained.
func (w *StoreWriter) WriteTile(polys []*geom.Polygon, global []int32) error {
	if len(polys) != len(global) {
		return fmt.Errorf("shard: tile of %d polygons with %d global IDs", len(polys), len(global))
	}
	rel := multistep.NewRelation(fmt.Sprintf("%s[%d]", w.name, w.tiles), polys, w.cfg)
	mbr := geom.EmptyRect()
	for _, p := range polys {
		mbr = mbr.Union(p.Bounds())
	}
	return w.writeRel(rel, global, mbr)
}

// writeRel writes an already-preprocessed tile relation — the shared
// path behind WriteTile and Save.
func (w *StoreWriter) writeRel(rel *multistep.Relation, global []int32, mbr geom.Rect) error {
	if w.done {
		return fmt.Errorf("shard: store %q already finished", w.dir)
	}
	if w.tiles >= 1<<16-1 {
		return fmt.Errorf("shard: %d tiles exceed the format", w.tiles+1)
	}
	if err := multistep.SaveRelationFile(tilePath(w.dir, w.tiles), rel, w.cfg); err != nil {
		return err
	}
	buf := w.records
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(mbr.MinX))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(mbr.MinY))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(mbr.MaxX))
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(mbr.MaxY))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(global)))
	for _, g := range global {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(g))
	}
	st := rel.Stats
	if st == nil {
		st = rel.ComputeStats()
	}
	stats := plan.AppendStats(nil, st)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(stats)))
	buf = append(buf, stats...)
	w.records = buf
	w.tiles++
	w.objects += len(global)
	return nil
}

// Finish writes the manifest, sealing the store. At least one tile must
// have been written (even an empty relation has one empty tile).
func (w *StoreWriter) Finish() error {
	if w.done {
		return fmt.Errorf("shard: store %q already finished", w.dir)
	}
	if w.tiles < 1 {
		return fmt.Errorf("shard: store %q has no tiles", w.dir)
	}
	buf := binary.LittleEndian.AppendUint32(nil, manifestMagic)
	buf = binary.LittleEndian.AppendUint16(buf, manifestVersion)
	buf = binary.LittleEndian.AppendUint64(buf, multistep.ConfigFingerprint(w.cfg))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(w.name)))
	buf = append(buf, w.name...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(w.objects))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(w.tiles))
	buf = append(buf, w.records...)
	w.done = true
	return os.WriteFile(filepath.Join(w.dir, ManifestName), buf, 0o644)
}
