package codec

import (
	"encoding/binary"
	"errors"
	"math"
	"testing"
)

var errTrunc = errors.New("test: truncated")

func TestDecodeSequence(t *testing.T) {
	var buf []byte
	buf = append(buf, 7)
	buf = binary.LittleEndian.AppendUint16(buf, 0xBEEF)
	buf = binary.LittleEndian.AppendUint32(buf, 0xDEADBEEF)
	buf = binary.LittleEndian.AppendUint64(buf, 0x0123456789ABCDEF)
	buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(3.5))
	buf = append(buf, 'x', 'y')

	d := New(buf, errTrunc)
	if v := d.U8(); v != 7 {
		t.Errorf("U8 = %d", v)
	}
	if v := d.U16(); v != 0xBEEF {
		t.Errorf("U16 = %#x", v)
	}
	if v := d.U32(); v != 0xDEADBEEF {
		t.Errorf("U32 = %#x", v)
	}
	if v := d.U64(); v != 0x0123456789ABCDEF {
		t.Errorf("U64 = %#x", v)
	}
	if v := d.F64(); v != 3.5 {
		t.Errorf("F64 = %v", v)
	}
	if d.Remaining() != 2 {
		t.Errorf("Remaining = %d, want 2", d.Remaining())
	}
	if string(d.Bytes(2)) != "xy" {
		t.Error("Bytes(2) wrong")
	}
	if d.Err() != nil {
		t.Errorf("Err = %v", d.Err())
	}
	if d.Pos() != len(buf) {
		t.Errorf("Pos = %d, want %d", d.Pos(), len(buf))
	}
}

func TestStickyTruncation(t *testing.T) {
	d := New([]byte{1, 2}, errTrunc)
	if d.U32() != 0 {
		t.Error("short U32 must return 0")
	}
	if !errors.Is(d.Err(), errTrunc) {
		t.Errorf("Err = %v, want errTrunc", d.Err())
	}
	// Every later read is a zero-valued no-op.
	if d.U8() != 0 || d.U16() != 0 || d.U64() != 0 || d.F64() != 0 || d.Bytes(1) != nil {
		t.Error("reads after the sticky error must return zero values")
	}
	if d.Pos() != 0 {
		t.Errorf("failed reads must not consume: Pos = %d", d.Pos())
	}
}

func TestNegativeAndOversizedBytes(t *testing.T) {
	d := New([]byte{1, 2, 3}, errTrunc)
	if d.Bytes(-1) != nil || !errors.Is(d.Err(), errTrunc) {
		t.Error("negative length must fail sticky")
	}
	d = New([]byte{1, 2, 3}, errTrunc)
	if d.Bytes(4) != nil || !errors.Is(d.Err(), errTrunc) {
		t.Error("oversized length must fail sticky")
	}
}

func TestSetErrWinsOverLaterTruncation(t *testing.T) {
	semantic := errors.New("test: semantic")
	d := New([]byte{1}, errTrunc)
	d.SetErr(semantic)
	d.U64() // would truncate, but the earlier error sticks
	if !errors.Is(d.Err(), semantic) {
		t.Errorf("Err = %v, want the first error", d.Err())
	}
	d.SetErr(errors.New("another"))
	if !errors.Is(d.Err(), semantic) {
		t.Error("SetErr must not overwrite an existing error")
	}
}

func TestRestAndSkip(t *testing.T) {
	d := New([]byte{1, 2, 3, 4}, errTrunc)
	d.U8()
	if got := d.Rest(); len(got) != 3 || got[0] != 2 {
		t.Errorf("Rest = %v", got)
	}
	d.Skip(2)
	if d.Pos() != 3 || d.Err() != nil {
		t.Errorf("Skip: pos %d err %v", d.Pos(), d.Err())
	}
	d.Skip(5)
	if !errors.Is(d.Err(), errTrunc) {
		t.Error("oversized Skip must fail sticky")
	}
}
