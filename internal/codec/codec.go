// Package codec holds the one byte-slice decoding core shared by every
// binary format of the repository (relations, approximation sets, the
// relation store). Each format reads through a Decoder with a sticky
// error: after the first failed read every subsequent read is a no-op
// returning the zero value, so decoding loops need a single error check
// at the end instead of one per field — and a truncated or corrupt
// stream can never be half-applied.
//
// The Decoder is deliberately dumb: it knows lengths and endianness
// (little, like every format here) but no format semantics. Callers own
// their sentinel errors — the error installed on a short read is the one
// passed to New, so errors.Is against the caller's sentinel keeps
// working unchanged.
package codec

import (
	"encoding/binary"
	"math"
)

// Decoder reads little-endian values off the front of a byte slice with
// a sticky error. The zero value is unusable; construct with New.
type Decoder struct {
	data  []byte
	pos   int
	err   error
	trunc error // installed as the sticky error on a short read
}

// New returns a Decoder over data. truncated is the error recorded when
// a read runs past the end of data (typically the caller's corrupt-format
// sentinel wrapped with a "truncated" message).
func New(data []byte, truncated error) *Decoder {
	return &Decoder{data: data, trunc: truncated}
}

// Err returns the sticky error, nil while all reads have succeeded.
func (d *Decoder) Err() error { return d.err }

// SetErr installs err as the sticky error unless one is already set.
// Callers use it to fail decoding on semantic (non-length) errors while
// keeping the single-check control flow.
func (d *Decoder) SetErr(err error) {
	if d.err == nil {
		d.err = err
	}
}

// Pos returns the number of bytes consumed so far.
func (d *Decoder) Pos() int { return d.pos }

// Remaining returns the number of unread bytes. Length fields must be
// validated against it before allocating, so corrupt input can never
// reserve more memory than the stream actually delivers.
func (d *Decoder) Remaining() int { return len(d.data) - d.pos }

// Rest returns the unread tail of the data without consuming it, for
// formats that embed sub-formats with their own decoders.
func (d *Decoder) Rest() []byte { return d.data[d.pos:] }

// Skip advances over n bytes consumed by an embedded sub-format.
func (d *Decoder) Skip(n int) {
	if d.err != nil || n < 0 || n > d.Remaining() {
		d.fail()
		return
	}
	d.pos += n
}

// Bytes consumes and returns the next n bytes (aliasing the input
// slice), or nil after a failure.
func (d *Decoder) Bytes(n int) []byte {
	if d.err != nil || n < 0 || n > d.Remaining() {
		d.fail()
		return nil
	}
	v := d.data[d.pos : d.pos+n]
	d.pos += n
	return v
}

// U8 consumes one byte.
func (d *Decoder) U8() byte {
	b := d.Bytes(1)
	if b == nil {
		return 0
	}
	return b[0]
}

// U16 consumes a little-endian uint16.
func (d *Decoder) U16() uint16 {
	b := d.Bytes(2)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint16(b)
}

// U32 consumes a little-endian uint32.
func (d *Decoder) U32() uint32 {
	b := d.Bytes(4)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint32(b)
}

// U64 consumes a little-endian uint64.
func (d *Decoder) U64() uint64 {
	b := d.Bytes(8)
	if b == nil {
		return 0
	}
	return binary.LittleEndian.Uint64(b)
}

// F64 consumes a little-endian IEEE 754 float64.
func (d *Decoder) F64() float64 {
	return math.Float64frombits(d.U64())
}

func (d *Decoder) fail() {
	if d.err == nil {
		d.err = d.trunc
	}
}
