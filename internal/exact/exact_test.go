package exact

import (
	"math"
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/ops"
)

func sq(cx, cy, half float64) []geom.Point {
	return []geom.Point{
		{X: cx - half, Y: cy - half}, {X: cx + half, Y: cy - half},
		{X: cx + half, Y: cy + half}, {X: cx - half, Y: cy + half},
	}
}

func starPoly(rng *rand.Rand, cx, cy, radius float64, n int) *geom.Polygon {
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		ang := 2 * math.Pi * float64(i) / float64(n)
		r := radius * (0.35 + 0.65*rng.Float64())
		pts[i] = geom.Point{X: cx + r*math.Cos(ang), Y: cy + r*math.Sin(ang)}
	}
	return geom.NewPolygon(pts)
}

func TestQuadraticBasics(t *testing.T) {
	a := Prepare(geom.NewPolygon(sq(0, 0, 1)))
	cases := []struct {
		name string
		b    *geom.Polygon
		want bool
	}{
		{"overlap", geom.NewPolygon(sq(1, 1, 1)), true},
		{"disjoint", geom.NewPolygon(sq(5, 5, 1)), false},
		{"contained", geom.NewPolygon(sq(0, 0, 0.25)), true},
		{"containing", geom.NewPolygon(sq(0, 0, 4)), true},
		{"touching", geom.NewPolygon(sq(2, 0, 1)), true},
	}
	for _, tc := range cases {
		var c ops.Counters
		if got := QuadraticIntersects(a, Prepare(tc.b), &c); got != tc.want {
			t.Errorf("%s: got %v, want %v", tc.name, got, tc.want)
		}
		if c.Total() == 0 {
			t.Errorf("%s: no operations counted", tc.name)
		}
	}
}

func TestPlaneSweepBasics(t *testing.T) {
	a := Prepare(geom.NewPolygon(sq(0, 0, 1)))
	cases := []struct {
		name string
		b    *geom.Polygon
		want bool
	}{
		{"overlap", geom.NewPolygon(sq(1, 1, 1)), true},
		{"disjoint", geom.NewPolygon(sq(5, 5, 1)), false},
		{"contained", geom.NewPolygon(sq(0, 0, 0.25)), true},
		{"containing", geom.NewPolygon(sq(0, 0, 4)), true},
		{"touching vertical edges", geom.NewPolygon(sq(2, 0, 1)), true},
		{"touching corner", geom.NewPolygon(sq(2, 2, 1)), true},
	}
	for _, tc := range cases {
		for _, restrict := range []bool{false, true} {
			var c ops.Counters
			if got := PlaneSweepIntersects(a, Prepare(tc.b), restrict, &c); got != tc.want {
				t.Errorf("%s (restrict=%v): got %v, want %v", tc.name, restrict, got, tc.want)
			}
		}
	}
}

func TestPlaneSweepHole(t *testing.T) {
	annulus := Prepare(geom.NewPolygon(sq(0, 0, 3), sq(0, 0, 2)))
	island := Prepare(geom.NewPolygon(sq(0, 0, 1)))
	for _, restrict := range []bool{false, true} {
		var c ops.Counters
		if PlaneSweepIntersects(annulus, island, restrict, &c) {
			t.Errorf("restrict=%v: island inside the hole must not intersect the annulus", restrict)
		}
		if QuadraticIntersects(annulus, island, &c) {
			t.Error("quadratic: island inside the hole must not intersect the annulus")
		}
	}
}

// TestEnginesAgreeWithGroundTruth is the core cross-validation of the
// exact geometry processor: on thousands of random polygon pairs, the
// quadratic algorithm, the plane sweep (both variants) and the geometric
// ground truth must return identical answers.
func TestEnginesAgreeWithGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(97))
	intersecting, disjoint := 0, 0
	for trial := 0; trial < 1500; trial++ {
		p1 := starPoly(rng, 0, 0, 1, 4+rng.Intn(20))
		p2 := starPoly(rng, rng.Float64()*3-1.5, rng.Float64()*3-1.5, 0.2+rng.Float64(), 4+rng.Intn(20))
		a, b := Prepare(p1), Prepare(p2)
		truth := p1.Intersects(p2)
		if truth {
			intersecting++
		} else {
			disjoint++
		}
		var c ops.Counters
		if got := QuadraticIntersects(a, b, &c); got != truth {
			t.Fatalf("trial %d: quadratic=%v truth=%v", trial, got, truth)
		}
		if got := PlaneSweepIntersects(a, b, false, &c); got != truth {
			t.Fatalf("trial %d: sweep(unrestricted)=%v truth=%v", trial, got, truth)
		}
		if got := PlaneSweepIntersects(a, b, true, &c); got != truth {
			t.Fatalf("trial %d: sweep(restricted)=%v truth=%v", trial, got, truth)
		}
	}
	if intersecting < 100 || disjoint < 100 {
		t.Fatalf("workload not balanced: %d intersecting, %d disjoint", intersecting, disjoint)
	}
}

func TestEnginesAgreeOnGridTouching(t *testing.T) {
	// Axis-parallel shapes exercise the vertical-edge special cases.
	rng := rand.New(rand.NewSource(101))
	for trial := 0; trial < 400; trial++ {
		x := float64(rng.Intn(5))
		y := float64(rng.Intn(5))
		p1 := geom.NewPolygon(sq(x, y, 1))
		p2 := geom.NewPolygon(sq(float64(rng.Intn(5)), float64(rng.Intn(5)), 1))
		a, b := Prepare(p1), Prepare(p2)
		truth := p1.Intersects(p2)
		var c ops.Counters
		if got := QuadraticIntersects(a, b, &c); got != truth {
			t.Fatalf("trial %d: quadratic=%v truth=%v", trial, got, truth)
		}
		for _, restrict := range []bool{false, true} {
			if got := PlaneSweepIntersects(a, b, restrict, &c); got != truth {
				t.Fatalf("trial %d: sweep(restrict=%v)=%v truth=%v", trial, restrict, got, truth)
			}
		}
	}
}

func TestPlaneSweepCheaperThanQuadratic(t *testing.T) {
	rng := rand.New(rand.NewSource(103))
	w := ops.PaperWeights()
	var quadCost, sweepCost float64
	for trial := 0; trial < 30; trial++ {
		p1 := starPoly(rng, 0, 0, 1, 150)
		p2 := starPoly(rng, rng.Float64()-0.5, rng.Float64()-0.5, 1, 150)
		a, b := Prepare(p1), Prepare(p2)
		var cq, cs ops.Counters
		QuadraticIntersects(a, b, &cq)
		PlaneSweepIntersects(a, b, true, &cs)
		quadCost += cq.Cost(w)
		sweepCost += cs.Cost(w)
	}
	if sweepCost >= quadCost {
		t.Errorf("plane sweep cost %v must beat quadratic cost %v on complex polygons", sweepCost, quadCost)
	}
}

func TestRestrictionSavesCost(t *testing.T) {
	// Partially overlapping complex polygons: the restriction must reduce
	// the number of processed edges and the weighted cost for false hits.
	rng := rand.New(rand.NewSource(107))
	w := ops.PaperWeights()
	var restricted, unrestricted float64
	n := 0
	for trial := 0; trial < 200; trial++ {
		p1 := starPoly(rng, 0, 0, 1, 100)
		p2 := starPoly(rng, 1.6, 0.3, 1, 100) // MBRs overlap slightly, objects usually disjoint
		if p1.Intersects(p2) {
			continue
		}
		a, b := Prepare(p1), Prepare(p2)
		var cr, cu ops.Counters
		PlaneSweepIntersects(a, b, true, &cr)
		PlaneSweepIntersects(a, b, false, &cu)
		restricted += cr.Cost(w)
		unrestricted += cu.Cost(w)
		n++
	}
	if n == 0 {
		t.Skip("no disjoint pairs generated")
	}
	if restricted >= unrestricted {
		t.Errorf("restricted cost %v must beat unrestricted %v on false hits", restricted, unrestricted)
	}
}

func TestCountersArithmetic(t *testing.T) {
	a := ops.Counters{EdgeIntersection: 3, Position: 2}
	b := ops.Counters{EdgeIntersection: 1, TrapIntersection: 5}
	a.Add(b)
	if a.EdgeIntersection != 4 || a.TrapIntersection != 5 || a.Position != 2 {
		t.Errorf("Add result wrong: %+v", a)
	}
	d := a.Sub(b)
	if d.EdgeIntersection != 3 || d.TrapIntersection != 0 {
		t.Errorf("Sub result wrong: %+v", d)
	}
	if a.Total() != 11 {
		t.Errorf("Total = %d, want 11", a.Total())
	}
	w := ops.PaperWeights()
	got := ops.Counters{EdgeIntersection: 2}.Cost(w)
	if math.Abs(got-30e-6) > 1e-12 {
		t.Errorf("Cost = %v, want 30µs", got)
	}
	if s := a.String(); s == "" {
		t.Error("String must not be empty")
	}
}
