package exact

import (
	"sync"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/ops"
)

// withinScratch holds the per-pair restricted edge sets of the
// within-distance kernel; recycled through a pool so the restriction
// allocates nothing in steady state.
type withinScratch struct {
	ea, eb []geom.Segment
}

var withinPool = sync.Pool{New: func() any { return new(withinScratch) }}

// WithinDistance decides the within-distance predicate on exact geometry:
// whether the closed polygonal regions of a and b lie within Euclidean
// distance eps of each other. It is the step 3 refinement of the ε-join,
// reusing the repository's distance kernel (segment–segment distances,
// the same primitive NearestObjects refines point candidates with).
//
// The test runs in three stages, mirroring the intersection engines:
//
//  1. MBR distance pretest — the MBR distance lower-bounds the region
//     distance, so a gap above eps decides "no" without touching edges.
//  2. Containment fallback — intersecting regions have distance 0; the
//     only intersection configuration without a boundary pair at
//     distance 0 is containment, decided by the MBR-pretested
//     point-in-polygon test of section 4.
//  3. Boundary distance — edge pairs are scanned (counted as edge
//     intersection tests) with an early exit at the first pair within
//     eps. With restrict set, the search-space restriction of
//     section 4.1 first drops every edge farther than eps from the
//     other object's MBR (counted as edge–rectangle tests), the
//     ε-analogue of clipping the sweep to the MBR intersection.
//
// With eps = 0 the predicate coincides with the intersection predicate.
func WithinDistance(a, b *PreparedPolygon, eps float64, restrict bool, c *ops.Counters) bool {
	c.RectIntersection++
	if a.MBR.Dist(b.MBR) > eps {
		return false
	}
	if containmentFallback(a, b, c) {
		return true
	}
	ea, eb := a.Edges, b.Edges
	if restrict {
		sc := withinPool.Get().(*withinScratch)
		defer withinPool.Put(sc)
		sc.ea = edgesNear(a.Edges, b.MBR, eps, sc.ea[:0], c)
		sc.eb = edgesNear(b.Edges, a.MBR, eps, sc.eb[:0], c)
		ea, eb = sc.ea, sc.eb
	}
	for _, sa := range ea {
		for _, sb := range eb {
			c.EdgeIntersection++
			if sa.DistToSegment(sb) <= eps {
				return true
			}
		}
	}
	return false
}

// edgesNear appends the edges within eps of the rectangle to buf — the
// only edges that can realize a boundary distance of at most eps to an
// object bounded by r. Every candidate edge is one edge–rectangle test.
func edgesNear(edges []geom.Segment, r geom.Rect, eps float64, buf []geom.Segment, c *ops.Counters) []geom.Segment {
	out := buf
	for _, e := range edges {
		c.EdgeRect++
		if e.Bounds().Dist(r) <= eps {
			out = append(out, e)
		}
	}
	return out
}
