package exact

import (
	"spatialjoin/internal/geom"
	"spatialjoin/internal/ops"
)

// ContainsPolygon decides the inclusion predicate a ⊇ b on exact geometry
// with Table 6 operation counting, following the same structure as the
// intersection tests: an MBR pretest, a proper-crossing scan over the edge
// pairs (edge intersection tests) and point-in-polygon probes (edge–line
// tests). It is the step 3 engine of the inclusion join (section 2.2).
func ContainsPolygon(a, b *PreparedPolygon, c *ops.Counters) bool {
	if !a.MBR.Contains(b.MBR) {
		return false
	}
	for _, eb := range b.Edges {
		bb := eb.Bounds()
		for _, ea := range a.Edges {
			if !bb.Intersects(ea.Bounds()) {
				continue
			}
			c.EdgeIntersection++
			if properCrossCounted(eb, ea) {
				return false
			}
		}
	}
	// No proper crossing: b lies entirely inside or outside a. The probe
	// must be a strict interior point of b: with closed-region semantics
	// b's vertices may lie ON a's boundary (e.g. b == a), where the
	// even–odd test is undefined.
	if !pointInPolygonCounted(a, b.interiorPoint(), c) {
		return false
	}
	// Holes of a strictly inside b break containment.
	for _, h := range a.Poly.Holes {
		cen := h.Centroid()
		if pointInPolygonCounted(b, cen, c) && !pointInPolygonCounted(a, cen, c) {
			return false
		}
	}
	return true
}

func properCrossCounted(s, t geom.Segment) bool {
	o1 := geom.Orientation(s.A, s.B, t.A)
	o2 := geom.Orientation(s.A, s.B, t.B)
	o3 := geom.Orientation(t.A, t.B, s.A)
	o4 := geom.Orientation(t.A, t.B, s.B)
	return o1*o2 < 0 && o3*o4 < 0
}

// IntersectsRectExact decides whether polygon a intersects the rectilinear
// window w on exact geometry — the step 3 predicate of the multi-step
// window query (section 2.4 builds the join processor on the same
// point-/window-query framework of [KBS 93, BHKS 93]). Each edge is tested
// against the window (edge–rectangle tests); if no edge meets it, the
// window either lies inside the polygon or outside (point probes).
func IntersectsRectExact(a *PreparedPolygon, w geom.Rect, c *ops.Counters) bool {
	if !a.MBR.Intersects(w) {
		return false
	}
	for _, e := range a.Edges {
		c.EdgeRect++
		if e.IntersectsRect(w) {
			return true
		}
	}
	// No boundary contact: containment one way or the other.
	if a.MBR.Contains(w) && pointInPolygonCounted(a, w.Center(), c) {
		return true
	}
	if w.Contains(a.MBR) {
		return true
	}
	return false
}
