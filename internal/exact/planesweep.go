package exact

import (
	"math"
	"sync"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/ops"
)

// sweepScratch holds the per-pair working memory of one plane sweep: the
// merged event schedule, the restriction bitmaps, the sweep-line status
// and the vertical-edge staging area. The join evaluates the sweep once
// per remaining candidate pair, so these buffers are recycled through a
// pool — in steady state a sweep allocates nothing.
type sweepScratch struct {
	events       []event
	keepA, keepB []bool
	status       []event
	verticals    []event
}

var sweepPool = sync.Pool{New: func() any { return new(sweepScratch) }}

// PlaneSweepIntersects decides the intersection predicate with the
// Shamos–Hoey plane-sweep algorithm of section 4.1: a vertical line sweeps
// the merged event schedule of both polygons; the sweep-line status keeps
// the edges crossing the line ordered by y, and edges are tested for
// intersection against their status neighbours on insertion and against
// their former neighbours on deletion. The algorithm stops at the first
// intersection between edges of different polygons (edges of one simple
// polygon meet only at shared vertices, which are not join intersections).
//
// With restrict true, the search space is restricted to the intersection
// rectangle of the two MBRs (each edge is pre-tested against it, counted
// as an edge–rectangle intersection test) — the variant the paper reports,
// which saves about 40 % of the cost.
//
// Vertical edges never span a sweep interval; they are tested immediately
// against the status entries in their y range and against the other
// vertical edges at the same x, then discarded.
//
// If no boundary crossing exists, the polygon-in-polygon fallback with the
// MBR pretest decides containment.
func PlaneSweepIntersects(a, b *PreparedPolygon, restrict bool, c *ops.Counters) bool {
	var clip geom.Rect
	if restrict {
		clip = a.MBR.Intersection(b.MBR)
		if clip.IsEmpty() {
			return false
		}
	}

	sc := sweepPool.Get().(*sweepScratch)
	defer sweepPool.Put(sc)

	// Merge the two per-polygon event schedules, optionally dropping edges
	// outside the clip rectangle. A nil keep bitmap means "keep all".
	events := sc.events[:0]
	var keepA, keepB []bool
	if restrict {
		sc.keepA = filterEdges(a, clip, sc.keepA, c)
		sc.keepB = filterEdges(b, clip, sc.keepB, c)
		keepA, keepB = sc.keepA, sc.keepB
	}
	for _, ev := range a.events {
		if keepA == nil || keepA[ev.edge] {
			ev.owner = 0
			events = append(events, ev)
		}
	}
	for _, ev := range b.events {
		if keepB == nil || keepB[ev.edge] {
			ev.owner = 1
			events = append(events, ev)
		}
	}
	sc.events = events
	mergeSortEvents(events)

	status := sweepStatus{a: a, b: b, items: sc.status[:0]}
	defer func() { sc.status = status.items }()
	verticals := sc.verticals[:0] // vertical edges seen at the current x
	defer func() { sc.verticals = verticals }()
	curX := math.Inf(-1)
	for _, ev := range events {
		if ev.x != curX {
			curX = ev.x
			verticals = verticals[:0]
		}
		status.x = ev.x
		seg := edgeOf(a, b, ev)
		vertical := math.Abs(seg.B.X-seg.A.X) < geom.Eps

		if ev.left {
			// Every newly active edge is tested against the vertical edges
			// already seen at this x: touching at a shared x is an
			// intersection under closed-region semantics.
			for _, v := range verticals {
				if status.crossTest(ev, v, c) {
					return true
				}
			}
			if vertical {
				if status.rangeTest(ev, seg, c) {
					return true
				}
				verticals = append(verticals, ev)
				continue // never enters the status
			}
			pos := status.insert(ev, c)
			if status.testAround(ev, pos, c) {
				return true
			}
		} else {
			if vertical {
				continue // was never inserted
			}
			pos := status.find(ev, c)
			if pos >= 0 {
				p, okP := status.neighbor(pos, -1)
				n, okN := status.neighbor(pos, +1)
				status.remove(pos)
				if okP && okN && status.crossTest(p, n, c) {
					return true
				}
			}
		}
	}
	return containmentFallback(a, b, c)
}

// filterEdges marks the edges intersecting the clip rectangle in a dense
// bitmap indexed by edge number (reusing buf), counting one
// edge–rectangle test per edge as in Table 6.
func filterEdges(pp *PreparedPolygon, clip geom.Rect, buf []bool, c *ops.Counters) []bool {
	keep := buf[:0]
	for i := range pp.Edges {
		c.EdgeRect++
		keep = append(keep, pp.Edges[i].IntersectsRect(clip))
	}
	return keep
}

// mergeSortEvents restores order on the concatenation of two sorted event
// schedules. Insertion sort exploits the near-sortedness; the cost model
// counts geometric operations, not sorting.
func mergeSortEvents(events []event) {
	for i := 1; i < len(events); i++ {
		for j := i; j > 0 && less(events[j], events[j-1]); j-- {
			events[j], events[j-1] = events[j-1], events[j]
		}
	}
}

func edgeOf(a, b *PreparedPolygon, ev event) geom.Segment {
	if ev.owner == 0 {
		return a.Edges[ev.edge]
	}
	return b.Edges[ev.edge]
}

// sweepStatus is the sweep-line status: the edges currently crossing the
// sweep line, ordered by their y coordinate at the sweep position (ties by
// slope). The paper stores it in an AVL tree; this implementation uses an
// ordered array with binary search, which performs the same O(log n)
// position tests per operation (the counted cost) with simpler code.
type sweepStatus struct {
	a, b  *PreparedPolygon
	x     float64
	items []event
}

// yAndSlope returns the status key of an edge at the sweep position.
func (s *sweepStatus) yAndSlope(ev event) (float64, float64) {
	e := edgeOf(s.a, s.b, ev)
	y := e.YAt(s.x)
	dx := e.B.X - e.A.X
	slope := math.Inf(1)
	if math.Abs(dx) > geom.Eps {
		slope = (e.B.Y - e.A.Y) / dx
	}
	return y, slope
}

// keyEps tolerates floating-point noise when comparing status keys.
const keyEps = 1e-9

// compare orders two status entries at the current sweep position; each
// call is one position test of Table 6.
func (s *sweepStatus) compare(p, q event, c *ops.Counters) int {
	c.Position++
	yp, sp := s.yAndSlope(p)
	yq, sq := s.yAndSlope(q)
	switch {
	case yp < yq-keyEps:
		return -1
	case yp > yq+keyEps:
		return 1
	case sp < sq:
		return -1
	case sp > sq:
		return 1
	case p.owner != q.owner:
		return int(p.owner) - int(q.owner)
	default:
		return int(p.edge) - int(q.edge)
	}
}

// insert places ev into the status and returns its position.
func (s *sweepStatus) insert(ev event, c *ops.Counters) int {
	lo, hi := 0, len(s.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.compare(s.items[mid], ev, c) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	s.items = append(s.items, event{})
	copy(s.items[lo+1:], s.items[lo:])
	s.items[lo] = ev
	return lo
}

// testAround tests the new entry against its lower and upper neighbours,
// extending over clusters of entries whose keys coincide with the new
// entry's within tolerance (touching configurations put several edges at
// the same y).
func (s *sweepStatus) testAround(ev event, pos int, c *ops.Counters) bool {
	yNew, _ := s.yAndSlope(ev)
	for i := pos - 1; i >= 0; i-- {
		if s.crossTest(ev, s.items[i], c) {
			return true
		}
		y, _ := s.yAndSlope(s.items[i])
		if math.Abs(y-yNew) > keyEps {
			break // past the equal-key cluster: only the direct neighbour matters
		}
	}
	for i := pos + 1; i < len(s.items); i++ {
		if s.crossTest(ev, s.items[i], c) {
			return true
		}
		y, _ := s.yAndSlope(s.items[i])
		if math.Abs(y-yNew) > keyEps {
			break
		}
	}
	return false
}

// rangeTest tests a vertical edge against every status entry whose y at
// the sweep position falls into the edge's y span.
func (s *sweepStatus) rangeTest(ev event, seg geom.Segment, c *ops.Counters) bool {
	lo := math.Min(seg.A.Y, seg.B.Y) - keyEps
	hi := math.Max(seg.A.Y, seg.B.Y) + keyEps
	for _, it := range s.items {
		y, _ := s.yAndSlope(it)
		if y < lo || y > hi {
			continue
		}
		if s.crossTest(ev, it, c) {
			return true
		}
	}
	return false
}

// find locates ev in the status (−1 when absent): binary search plus a
// short forward scan over the equal-key cluster, with a linear fallback
// guarding against key drift.
func (s *sweepStatus) find(ev event, c *ops.Counters) int {
	lo, hi := 0, len(s.items)
	for lo < hi {
		mid := (lo + hi) / 2
		if s.compare(s.items[mid], ev, c) < 0 {
			lo = mid + 1
		} else {
			hi = mid
		}
	}
	for i := lo; i < len(s.items) && i < lo+4; i++ {
		if s.items[i].edge == ev.edge && s.items[i].owner == ev.owner {
			return i
		}
	}
	for i := range s.items {
		if s.items[i].edge == ev.edge && s.items[i].owner == ev.owner {
			return i
		}
	}
	return -1
}

func (s *sweepStatus) remove(pos int) {
	s.items = append(s.items[:pos], s.items[pos+1:]...)
}

// neighbor returns the status entry at pos+dir.
func (s *sweepStatus) neighbor(pos, dir int) (event, bool) {
	i := pos + dir
	if i < 0 || i >= len(s.items) {
		return event{}, false
	}
	return s.items[i], true
}

// crossTest tests two status entries for intersection (one edge
// intersection test of Table 6) and reports true only for edges of
// different polygons.
func (s *sweepStatus) crossTest(p, q event, c *ops.Counters) bool {
	if p.owner == q.owner {
		return false
	}
	c.EdgeIntersection++
	return edgeOf(s.a, s.b, p).Intersects(edgeOf(s.a, s.b, q))
}
