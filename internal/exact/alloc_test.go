package exact

import (
	"testing"

	"spatialjoin/internal/data"
	"spatialjoin/internal/ops"
)

// TestExactKernelsAllocFree guards the step 3 kernels: once the pooled
// scratch buffers are warm, deciding a candidate pair — quadratic, plane
// sweep (restricted and not) or within-distance — performs zero heap
// allocations. The kernels run once per pair the filter could not
// decide, so any allocation here multiplies across the join.
func TestExactKernelsAllocFree(t *testing.T) {
	polys := data.GenerateMap(data.MapConfig{Cells: 16, TargetVerts: 48, Seed: 7})
	a, b := Prepare(polys[0]), Prepare(polys[1])
	c, d := Prepare(polys[2]), Prepare(polys[3])
	var ctr ops.Counters

	cases := []struct {
		name string
		run  func()
	}{
		{"quadratic", func() {
			QuadraticIntersects(a, b, &ctr)
			QuadraticIntersects(c, d, &ctr)
		}},
		{"planesweep-restricted", func() {
			PlaneSweepIntersects(a, b, true, &ctr)
			PlaneSweepIntersects(c, d, true, &ctr)
		}},
		{"planesweep-unrestricted", func() {
			PlaneSweepIntersects(a, b, false, &ctr)
			PlaneSweepIntersects(c, d, false, &ctr)
		}},
		{"within-restricted", func() {
			WithinDistance(a, b, 0.01, true, &ctr)
			WithinDistance(c, d, 0.01, true, &ctr)
		}},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			tc.run() // warm the scratch pools
			if allocs := testing.AllocsPerRun(100, tc.run); allocs != 0 {
				t.Fatalf("exact kernel allocates %.1f objects per run, want 0", allocs)
			}
		})
	}
}
