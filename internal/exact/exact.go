// Package exact implements the exact geometry processor of section 4: the
// final step of the multi-step spatial join, which decides the join
// predicate on the exact vector representation of the remaining candidate
// pairs. Three algorithms are provided, matching the paper's comparison:
//
//   - the brute-force quadratic edge test (section 4, "out of question"),
//   - the Shamos–Hoey plane sweep with search-space restriction
//     (section 4.1), and
//   - the TR*-tree test over decomposed objects (section 4.2, package
//     trstar, adapted through the Engine interface here).
//
// All algorithms count their geometric primitives in ops.Counters, the
// paper's reproducible cost measure.
package exact

import (
	"slices"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/ops"
)

// PreparedPolygon caches the per-object preprocessing the section 4
// algorithms rely on: the edge list, the MBR and the event schedule of the
// plane sweep (the paper sorts each polygon's vertices once, outside the
// measured cost).
type PreparedPolygon struct {
	Poly  *geom.Polygon
	MBR   geom.Rect
	Edges []geom.Segment
	// events lists edge insertions/removals ordered by x (ties: removals
	// after insertions are NOT required here because events are
	// re-merged and re-ordered per pair; see mergeEvents).
	events []event
}

type event struct {
	x     float64
	left  bool  // true: edge enters the sweep; false: edge leaves
	edge  int32 // index into Edges
	owner int8  // filled during the per-pair merge
}

// Prepare runs the per-object preprocessing. Its cost is excluded from the
// operation counts, exactly as in the paper (section 4.3: "the sorting of
// the vertices ... can be done in a preprocessing step").
func Prepare(p *geom.Polygon) *PreparedPolygon {
	pp := &PreparedPolygon{Poly: p, MBR: p.Bounds()}
	pp.Edges = p.Edges(pp.Edges)
	pp.events = make([]event, 0, 2*len(pp.Edges))
	for i, e := range pp.Edges {
		lx, rx := e.A.X, e.B.X
		if lx > rx {
			lx, rx = rx, lx
		}
		pp.events = append(pp.events,
			event{x: lx, left: true, edge: int32(i)},
			event{x: rx, left: false, edge: int32(i)},
		)
	}
	slices.SortFunc(pp.events, func(a, b event) int {
		switch {
		case less(a, b):
			return -1
		case less(b, a):
			return 1
		default:
			return 0
		}
	})
	return pp
}

// less orders events by x; at equal x insertions come first so touching
// configurations are seen while both edges are in the status.
func less(a, b event) bool {
	if a.x != b.x {
		return a.x < b.x
	}
	return a.left && !b.left
}

// anyVertex returns a vertex for the containment fallback.
func (pp *PreparedPolygon) anyVertex() geom.Point { return pp.Poly.Outer[0] }

// interiorPoint returns a point strictly inside the polygonal region: the
// centroid of the first convex ear whose interior belongs to the region.
// It falls back to the first vertex for numerically degenerate rings.
func (pp *PreparedPolygon) interiorPoint() geom.Point {
	r := pp.Poly.Outer
	n := len(r)
	for i := 0; i < n; i++ {
		a, b, c := r[(i-1+n)%n], r[i], r[(i+1)%n]
		if geom.Cross(a, b, c) <= geom.Eps {
			continue // reflex or flat corner
		}
		cen := geom.Point{X: (a.X + b.X + c.X) / 3, Y: (a.Y + b.Y + c.Y) / 3}
		if pp.Poly.ContainsPoint(cen) && !pp.Poly.OnBoundary(cen) {
			return cen
		}
	}
	return r[0]
}

// QuadraticIntersects decides the intersection predicate with the naive
// quadratic algorithm: every edge of one polygon is tested against every
// edge of the other (counted as edge intersection tests); if no edges
// intersect, the polygon-in-polygon fallback runs. The paper includes this
// algorithm only as the baseline of Table 7.
func QuadraticIntersects(a, b *PreparedPolygon, c *ops.Counters) bool {
	for _, ea := range a.Edges {
		for _, eb := range b.Edges {
			c.EdgeIntersection++
			if ea.Intersects(eb) {
				return true
			}
		}
	}
	return containmentFallback(a, b, c)
}

// containmentFallback handles the no-boundary-crossing case: one region
// may contain the other. The MBR pretest of section 4 omits the expensive
// point-in-polygon test unless one MBR contains the other (75–93 % of the
// tests in the paper's data).
func containmentFallback(a, b *PreparedPolygon, c *ops.Counters) bool {
	if a.MBR.Contains(b.MBR) && pointInPolygonCounted(a, b.anyVertex(), c) {
		return true
	}
	if b.MBR.Contains(a.MBR) && pointInPolygonCounted(b, a.anyVertex(), c) {
		return true
	}
	return false
}

// pointInPolygonCounted is the even–odd ray-casting test; each edge
// examined against the auxiliary horizontal line is one edge–line
// intersection test of Table 6.
func pointInPolygonCounted(pp *PreparedPolygon, p geom.Point, c *ops.Counters) bool {
	inside := false
	for _, e := range pp.Edges {
		c.EdgeLine++
		if (e.A.Y > p.Y) != (e.B.Y > p.Y) {
			xint := e.A.X + (p.Y-e.A.Y)*(e.B.X-e.A.X)/(e.B.Y-e.A.Y)
			if p.X < xint {
				inside = !inside
			}
		}
	}
	return inside
}
