package ops

import (
	"math"
	"strings"
	"testing"
	"testing/quick"
)

func TestPaperWeightsMatchTable6(t *testing.T) {
	w := PaperWeights()
	want := map[string]float64{
		"edge":     15e-6,
		"edgeLine": 18e-6,
		"position": 36e-6,
		"edgeRect": 28e-6,
		"rect":     28e-6,
		"trap":     38e-6,
	}
	got := map[string]float64{
		"edge":     w.EdgeIntersection,
		"edgeLine": w.EdgeLine,
		"position": w.Position,
		"edgeRect": w.EdgeRect,
		"rect":     w.RectIntersection,
		"trap":     w.TrapIntersection,
	}
	for k, v := range want {
		if got[k] != v {
			t.Errorf("%s = %v, want %v", k, got[k], v)
		}
	}
}

func TestCostLinear(t *testing.T) {
	w := PaperWeights()
	c := Counters{EdgeIntersection: 2, EdgeLine: 3, Position: 5, EdgeRect: 7, RectIntersection: 11, TrapIntersection: 13}
	want := 2*15e-6 + 3*18e-6 + 5*36e-6 + 7*28e-6 + 11*28e-6 + 13*38e-6
	if got := c.Cost(w); math.Abs(got-want) > 1e-15 {
		t.Errorf("Cost = %v, want %v", got, want)
	}
}

func TestAddSubTotalProperty(t *testing.T) {
	f := func(a1, a2, a3, b1, b2, b3 int32) bool {
		a := Counters{EdgeIntersection: int64(a1), Position: int64(a2), TrapIntersection: int64(a3)}
		b := Counters{EdgeIntersection: int64(b1), Position: int64(b2), TrapIntersection: int64(b3)}
		sum := a
		sum.Add(b)
		if sum.Sub(b) != a {
			return false
		}
		return sum.Total() == a.Total()+b.Total()
	}
	if err := quick.Check(f, &quick.Config{MaxCount: 300}); err != nil {
		t.Error(err)
	}
}

func TestStringMentionsAllCounters(t *testing.T) {
	s := Counters{EdgeIntersection: 1, EdgeLine: 2, Position: 3, EdgeRect: 4, RectIntersection: 5, TrapIntersection: 6}.String()
	for _, frag := range []string{"edge=1", "edgeLine=2", "pos=3", "edgeRect=4", "rect=5", "trap=6"} {
		if !strings.Contains(s, frag) {
			t.Errorf("String %q lacks %q", s, frag)
		}
	}
}
