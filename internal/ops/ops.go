// Package ops provides the weighted operation counting the paper uses as
// its reproducible cost measure for the exact geometry processor
// (section 4.3, Table 6): instead of wall-clock time, the algorithms count
// their geometric primitives, and a cost is derived from per-operation
// weights measured once on the host hardware (an HP 720 workstation in the
// paper).
package ops

import "fmt"

// Counters tallies the geometric primitives of section 4.3. All exact
// engines and the TR*-tree increment these as they run; experiments read
// them to reproduce Table 7 and Figures 16 and 17.
type Counters struct {
	EdgeIntersection int64 // edge–edge intersection tests (quadratic, sweep)
	EdgeLine         int64 // edge–auxiliary-line tests (point-in-polygon)
	Position         int64 // sweep-line status position comparisons
	EdgeRect         int64 // edge–rectangle tests (search-space restriction)
	RectIntersection int64 // rectangle–rectangle tests (TR*-tree directory)
	TrapIntersection int64 // trapezoid–trapezoid tests (TR*-tree leaves)
}

// Add accumulates o into c.
func (c *Counters) Add(o Counters) {
	c.EdgeIntersection += o.EdgeIntersection
	c.EdgeLine += o.EdgeLine
	c.Position += o.Position
	c.EdgeRect += o.EdgeRect
	c.RectIntersection += o.RectIntersection
	c.TrapIntersection += o.TrapIntersection
}

// Sub returns c − o, useful for per-pair deltas.
func (c Counters) Sub(o Counters) Counters {
	return Counters{
		EdgeIntersection: c.EdgeIntersection - o.EdgeIntersection,
		EdgeLine:         c.EdgeLine - o.EdgeLine,
		Position:         c.Position - o.Position,
		EdgeRect:         c.EdgeRect - o.EdgeRect,
		RectIntersection: c.RectIntersection - o.RectIntersection,
		TrapIntersection: c.TrapIntersection - o.TrapIntersection,
	}
}

// Total returns the unweighted operation count.
func (c Counters) Total() int64 {
	return c.EdgeIntersection + c.EdgeLine + c.Position + c.EdgeRect +
		c.RectIntersection + c.TrapIntersection
}

// Weights assigns a duration in seconds to each operation — Table 6 uses
// microsecond-scale weights measured on the paper's workstation.
type Weights struct {
	EdgeIntersection float64
	EdgeLine         float64
	Position         float64
	EdgeRect         float64
	RectIntersection float64
	TrapIntersection float64
}

// PaperWeights returns the published Table 6 weights (seconds).
func PaperWeights() Weights {
	return Weights{
		EdgeIntersection: 15e-6,
		EdgeLine:         18e-6,
		Position:         36e-6,
		EdgeRect:         28e-6,
		RectIntersection: 28e-6,
		TrapIntersection: 38e-6,
	}
}

// Cost returns the weighted cost of the counted operations in seconds —
// the measure of Table 7 and Figure 16.
func (c Counters) Cost(w Weights) float64 {
	return float64(c.EdgeIntersection)*w.EdgeIntersection +
		float64(c.EdgeLine)*w.EdgeLine +
		float64(c.Position)*w.Position +
		float64(c.EdgeRect)*w.EdgeRect +
		float64(c.RectIntersection)*w.RectIntersection +
		float64(c.TrapIntersection)*w.TrapIntersection
}

// String formats the counters compactly.
func (c Counters) String() string {
	return fmt.Sprintf("edge=%d edgeLine=%d pos=%d edgeRect=%d rect=%d trap=%d",
		c.EdgeIntersection, c.EdgeLine, c.Position, c.EdgeRect,
		c.RectIntersection, c.TrapIntersection)
}
