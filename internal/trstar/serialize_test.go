package trstar

import (
	"bytes"
	"math/rand"
	"testing"

	"spatialjoin/internal/ops"
)

func TestSerializeRoundtrip(t *testing.T) {
	rng := rand.New(rand.NewSource(431))
	for trial := 0; trial < 20; trial++ {
		p := starPoly(rng, rng.Float64()*3, rng.Float64()*3, 1, 8+rng.Intn(120))
		orig := NewFromPolygon(p, 3+trial%3)
		data, err := orig.MarshalBinary()
		if err != nil {
			t.Fatalf("marshal: %v", err)
		}
		got, err := UnmarshalBinary(data)
		if err != nil {
			t.Fatalf("unmarshal: %v", err)
		}
		if got.Height() != orig.Height() || got.NumTrapezoids() != orig.NumTrapezoids() ||
			got.Capacity() != orig.Capacity() {
			t.Fatalf("roundtrip changed shape: %d/%d/%d vs %d/%d/%d",
				got.Height(), got.NumTrapezoids(), got.Capacity(),
				orig.Height(), orig.NumTrapezoids(), orig.Capacity())
		}
		if err := got.Validate(); err != nil {
			t.Fatalf("roundtrip invalid: %v", err)
		}
		// The loaded tree answers identically.
		other := NewFromPolygon(starPoly(rng, rng.Float64()*3, rng.Float64()*3, 1, 12), 3)
		var c1, c2 ops.Counters
		if Intersects(orig, other, &c1) != Intersects(got, other, &c2) {
			t.Fatal("roundtrip changed intersection answers")
		}
		// Serialization is deterministic.
		again, _ := got.MarshalBinary()
		if !bytes.Equal(data, again) {
			t.Fatal("serialization not deterministic")
		}
	}
}

func TestSerializeEmpty(t *testing.T) {
	empty := New(nil, 3)
	data, err := empty.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalBinary(data)
	if err != nil {
		t.Fatal(err)
	}
	if got.NumTrapezoids() != 0 || got.Height() != 1 {
		t.Error("empty roundtrip malformed")
	}
}

func TestUnmarshalRejectsCorruption(t *testing.T) {
	rng := rand.New(rand.NewSource(433))
	tree := NewFromPolygon(starPoly(rng, 0, 0, 1, 40), 3)
	data, _ := tree.MarshalBinary()

	cases := map[string][]byte{
		"empty":     {},
		"short":     data[:8],
		"bad magic": append([]byte{1, 2, 3, 4}, data[4:]...),
		"truncated": data[:len(data)-5],
		"trailing":  append(append([]byte{}, data...), 0xAB),
		"tiny cap":  mutate(data, 4, 1),
		"node tag":  mutate(data, 10, 7),
	}
	for name, bad := range cases {
		if _, err := UnmarshalBinary(bad); err == nil {
			t.Errorf("%s: corruption not detected", name)
		}
	}
}

func mutate(data []byte, pos int, v byte) []byte {
	out := append([]byte{}, data...)
	if pos < len(out) {
		out[pos] = v
	}
	return out
}
