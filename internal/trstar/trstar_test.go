package trstar

import (
	"math"
	"math/rand"
	"testing"

	"spatialjoin/internal/decomp"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/ops"
)

func sq(cx, cy, half float64) []geom.Point {
	return []geom.Point{
		{X: cx - half, Y: cy - half}, {X: cx + half, Y: cy - half},
		{X: cx + half, Y: cy + half}, {X: cx - half, Y: cy + half},
	}
}

func starPoly(rng *rand.Rand, cx, cy, radius float64, n int) *geom.Polygon {
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		ang := 2 * math.Pi * float64(i) / float64(n)
		r := radius * (0.35 + 0.65*rng.Float64())
		pts[i] = geom.Point{X: cx + r*math.Cos(ang), Y: cy + r*math.Sin(ang)}
	}
	return geom.NewPolygon(pts)
}

func TestBuildAndValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(113))
	for _, capacity := range []int{3, 4, 5} {
		for trial := 0; trial < 10; trial++ {
			p := starPoly(rng, 0, 0, 1, 10+rng.Intn(80))
			tree := NewFromPolygon(p, capacity)
			if err := tree.Validate(); err != nil {
				t.Fatalf("capacity %d trial %d: %v", capacity, trial, err)
			}
			if tree.NumTrapezoids() == 0 {
				t.Fatal("tree must hold trapezoids")
			}
			if tree.Capacity() != capacity {
				t.Fatal("capacity not recorded")
			}
		}
	}
}

func TestHeightGrowsLogarithmically(t *testing.T) {
	rng := rand.New(rand.NewSource(127))
	small := NewFromPolygon(starPoly(rng, 0, 0, 1, 12), 3)
	big := NewFromPolygon(starPoly(rng, 0, 0, 1, 400), 3)
	if small.Height() >= big.Height() {
		t.Errorf("height must grow with complexity: small %d, big %d", small.Height(), big.Height())
	}
	// Height must stay logarithmic: with minimum fill 2 every level at
	// least doubles the entry count.
	maxH := int(math.Ceil(math.Log2(float64(big.NumTrapezoids())))) + 2
	if big.Height() > maxH {
		t.Errorf("height %d too large for %d trapezoids (max %d)",
			big.Height(), big.NumTrapezoids(), maxH)
	}
}

func TestContainsPointAgainstPolygon(t *testing.T) {
	rng := rand.New(rand.NewSource(131))
	for trial := 0; trial < 15; trial++ {
		p := starPoly(rng, 0, 0, 1, 8+rng.Intn(40))
		tree := NewFromPolygon(p, 3)
		var c ops.Counters
		for k := 0; k < 100; k++ {
			pt := geom.Point{X: rng.Float64()*2.4 - 1.2, Y: rng.Float64()*2.4 - 1.2}
			got := tree.ContainsPoint(pt, &c)
			want := p.ContainsPoint(pt)
			if got != want && distToBoundary(p, pt) > 1e-6 {
				t.Fatalf("trial %d: ContainsPoint(%v) = %v, polygon says %v", trial, pt, got, want)
			}
		}
		if c.RectIntersection == 0 {
			t.Fatal("point queries must count rectangle tests")
		}
	}
}

func distToBoundary(p *geom.Polygon, pt geom.Point) float64 {
	var edges []geom.Segment
	edges = p.Edges(edges)
	d := math.Inf(1)
	for _, e := range edges {
		if dd := e.DistToPoint(pt); dd < d {
			d = dd
		}
	}
	return d
}

// TestIntersectsAgainstGroundTruth cross-validates the TR*-tree join test
// against the exact polygon predicate on random pairs, including
// containment configurations (no boundary crossing).
func TestIntersectsAgainstGroundTruth(t *testing.T) {
	rng := rand.New(rand.NewSource(137))
	hits, misses := 0, 0
	for trial := 0; trial < 400; trial++ {
		p1 := starPoly(rng, 0, 0, 1, 5+rng.Intn(25))
		p2 := starPoly(rng, rng.Float64()*3-1.5, rng.Float64()*3-1.5, 0.15+rng.Float64(), 5+rng.Intn(25))
		t1 := NewFromPolygon(p1, 3)
		t2 := NewFromPolygon(p2, 3)
		truth := p1.Intersects(p2)
		var c ops.Counters
		if got := Intersects(t1, t2, &c); got != truth {
			t.Fatalf("trial %d: TR*-tree says %v, ground truth %v", trial, got, truth)
		}
		if truth {
			hits++
		} else {
			misses++
		}
	}
	if hits < 50 || misses < 50 {
		t.Fatalf("workload unbalanced: %d hits, %d misses", hits, misses)
	}
}

func TestIntersectsContainment(t *testing.T) {
	outer := NewFromPolygon(geom.NewPolygon(sq(0, 0, 4)), 3)
	inner := NewFromPolygon(geom.NewPolygon(sq(0, 0, 0.5)), 3)
	var c ops.Counters
	if !Intersects(outer, inner, &c) {
		t.Error("containment must be detected (trapezoids overlap by area)")
	}
	if !Intersects(inner, outer, &c) {
		t.Error("containment must be detected (swapped)")
	}
	// An island inside a hole does not intersect.
	annulus := NewFromPolygon(geom.NewPolygon(sq(0, 0, 3), sq(0, 0, 2)), 3)
	island := NewFromPolygon(geom.NewPolygon(sq(0, 0, 1)), 3)
	if Intersects(annulus, island, &c) {
		t.Error("island inside the hole must not intersect the annulus")
	}
}

func TestDifferentHeights(t *testing.T) {
	rng := rand.New(rand.NewSource(139))
	big := NewFromPolygon(starPoly(rng, 0, 0, 1, 300), 3)
	small := NewFromPolygon(starPoly(rng, 0.2, 0.2, 0.2, 6), 3)
	if big.Height() == small.Height() {
		t.Skip("trees happen to have equal heights")
	}
	truthPoly1 := starPoly(rng, 5, 5, 1, 300) // disjoint pair with different heights
	truthPoly2 := starPoly(rng, 0, 0, 0.3, 6)
	t1 := NewFromPolygon(truthPoly1, 3)
	t2 := NewFromPolygon(truthPoly2, 3)
	var c ops.Counters
	if Intersects(t1, t2, &c) != truthPoly1.Intersects(truthPoly2) {
		t.Error("different-height trees disagree with ground truth")
	}
	if Intersects(big, small, &c) == false {
		// small overlaps big's region around (0.2, 0.2)? verify via truth
		pb := starPoly(rng, 0, 0, 1, 300)
		_ = pb
	}
}

// TestCapacity3CheapestOnAverage reproduces the Figure 17 trend: with
// M = 3 the synchronized traversal performs no more weighted work than
// with M = 5 on complex objects.
func TestCapacity3CheapestOnAverage(t *testing.T) {
	rng := rand.New(rand.NewSource(149))
	w := ops.PaperWeights()
	costs := map[int]float64{}
	type pair struct{ a, b *geom.Polygon }
	var pairs []pair
	for i := 0; i < 40; i++ {
		pairs = append(pairs, pair{
			a: starPoly(rng, 0, 0, 1, 200),
			b: starPoly(rng, rng.Float64()*0.8-0.4, rng.Float64()*0.8-0.4, 1, 200),
		})
	}
	for _, m := range []int{3, 5} {
		var c ops.Counters
		for _, pr := range pairs {
			t1 := NewFromPolygon(pr.a, m)
			t2 := NewFromPolygon(pr.b, m)
			Intersects(t1, t2, &c)
		}
		costs[m] = c.Cost(w)
	}
	if costs[3] > costs[5]*1.15 {
		t.Errorf("M=3 cost %v should not exceed M=5 cost %v by >15%%", costs[3], costs[5])
	}
}

func TestEmptyAndDegenerate(t *testing.T) {
	empty := New(nil, 3)
	if empty.NumTrapezoids() != 0 || empty.Height() != 1 {
		t.Error("empty tree malformed")
	}
	other := NewFromPolygon(geom.NewPolygon(sq(0, 0, 1)), 3)
	var c ops.Counters
	if Intersects(empty, other, &c) || Intersects(other, empty, &c) {
		t.Error("empty tree intersects nothing")
	}
	if empty.ContainsPoint(geom.Point{}, &c) {
		t.Error("empty tree contains nothing")
	}
}

func TestNewPanicsOnTinyCapacity(t *testing.T) {
	defer func() {
		if recover() == nil {
			t.Error("capacity 1 must panic")
		}
	}()
	New([]decomp.Trapezoid{}, 1)
}
