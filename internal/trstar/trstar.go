// Package trstar implements the TR*-tree of section 4.2 [SK 91]: a
// main-memory resident R*-tree variant that organizes the trapezoids of
// one decomposed polygon. Its characteristic design choice is a very small
// maximum node capacity (M between 3 and 5, best performance at 3 —
// Figure 17), which minimizes the number of main-memory comparisons per
// traversal. The synchronized traversal of two TR*-trees decides the
// intersection join predicate of a candidate pair at least one order of
// magnitude cheaper than the plane sweep (Table 7).
package trstar

import (
	"fmt"
	"math/rand"

	"spatialjoin/internal/decomp"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/ops"
	"spatialjoin/internal/rtreecore"
)

// Tree is the TR*-tree over the trapezoids of one spatial object.
type Tree struct {
	root     *node
	capacity int // maximum entries per node (M)
	minFill  int // minimum entries per node after a split
	height   int // number of levels (leaf = level 1)
	numTraps int
}

type entry struct {
	rect  geom.Rect
	child *node            // non-leaf entries
	trap  decomp.Trapezoid // leaf entries
}

type node struct {
	leaf    bool
	entries []entry
}

func (n *node) bounds() geom.Rect {
	b := geom.EmptyRect()
	for _, e := range n.entries {
		b = b.Union(e.rect)
	}
	return b
}

// DefaultCapacity is the paper's recommended maximum node capacity
// (Figure 17: M = 3 performs best).
const DefaultCapacity = 3

// NewFromPolygon decomposes p into trapezoids and builds the TR*-tree over
// them — the paper's object-insertion preprocessing for the exact
// geometry processor.
func NewFromPolygon(p *geom.Polygon, capacity int) *Tree {
	return New(decomp.Trapezoidize(p), capacity)
}

// New builds a TR*-tree with the given maximum node capacity over the
// trapezoids, inserting one component at a time with the R*-tree insertion
// algorithms (ChooseSubtree, topological split, forced reinsert).
func New(traps []decomp.Trapezoid, capacity int) *Tree {
	if capacity < 3 {
		panic(fmt.Sprintf("trstar: capacity %d too small (need >= 3)", capacity))
	}
	// Minimum fill 40 % of the capacity, rounded up: splitting an
	// overflowing node of M+1 entries then yields two usable nodes even at
	// the paper's smallest capacity M = 3 (2+2).
	minFill := (capacity*2 + 4) / 5
	if minFill < 2 {
		minFill = 2
	}
	t := &Tree{
		root:     &node{leaf: true},
		capacity: capacity,
		minFill:  minFill,
		height:   1,
	}
	// Trapezoidize emits components in x order; sequential insertion into
	// an R-tree produces poorly filled nodes. A deterministic shuffle
	// restores the random insertion order the R*-tree algorithms assume.
	perm := make([]int, len(traps))
	for i := range perm {
		perm[i] = i
	}
	rng := rand.New(rand.NewSource(0x7257a2))
	rng.Shuffle(len(perm), func(i, j int) { perm[i], perm[j] = perm[j], perm[i] })
	for _, i := range perm {
		tr := traps[i]
		t.insert(entry{rect: tr.Bounds(), trap: tr}, 1)
		t.numTraps++
	}
	return t
}

// Height returns the number of levels of the tree. The paper reports
// average heights of 5.0 (Europe) and 7.6 (BW) with M = 3.
func (t *Tree) Height() int { return t.height }

// NumTrapezoids returns the number of stored components.
func (t *Tree) NumTrapezoids() int { return t.numTraps }

// Capacity returns the maximum node capacity M.
func (t *Tree) Capacity() int { return t.capacity }

// Bounds returns the bounding rectangle of all components.
func (t *Tree) Bounds() geom.Rect { return t.root.bounds() }

// pendingEntry is an entry awaiting (re)insertion at a given level
// (counted from the leaves, leaf = 1, so the target stays valid when the
// root splits and the tree grows).
type pendingEntry struct {
	e     entry
	level int
}

// insert adds an entry at the given level (1 = leaf), applying forced
// reinsertion on the first overflow per level and splitting otherwise.
// Reinsertions are queued and performed after the current descent unwinds,
// so a descent never mutates nodes outside its own path.
func (t *Tree) insert(e entry, level int) {
	queue := []pendingEntry{{e: e, level: level}}
	reinserted := make(map[int]bool)
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		split := t.chooseAndInsert(t.root, t.height, p.e, p.level, reinserted, &queue)
		if split != nil {
			// Root split: the tree grows by one level.
			old := t.root
			t.root = &node{leaf: false, entries: []entry{
				{rect: old.bounds(), child: old},
				{rect: split.bounds(), child: split},
			}}
			t.height++
		}
	}
}

// chooseAndInsert descends to the target level, inserts, and returns a new
// sibling node if the node split.
func (t *Tree) chooseAndInsert(n *node, nodeLevel int, e entry, targetLevel int, reinserted map[int]bool, queue *[]pendingEntry) *node {
	if nodeLevel == targetLevel {
		n.entries = append(n.entries, e)
		return t.overflowTreatment(n, nodeLevel, reinserted, queue)
	}
	rects := make([]geom.Rect, len(n.entries))
	for i, c := range n.entries {
		rects[i] = c.rect
	}
	childrenAreLeaves := nodeLevel-1 == 1
	i := rtreecore.ChooseSubtree(rects, e.rect, childrenAreLeaves)
	child := n.entries[i].child
	split := t.chooseAndInsert(child, nodeLevel-1, e, targetLevel, reinserted, queue)
	n.entries[i].rect = child.bounds()
	if split != nil {
		n.entries = append(n.entries, entry{rect: split.bounds(), child: split})
		return t.overflowTreatment(n, nodeLevel, reinserted, queue)
	}
	return nil
}

// overflowTreatment applies the R*-tree policy: on the first overflow of a
// level during one insertion, remove the 30 % farthest entries and queue
// them for reinsertion; afterwards, split.
func (t *Tree) overflowTreatment(n *node, level int, reinserted map[int]bool, queue *[]pendingEntry) *node {
	if len(n.entries) <= t.capacity {
		return nil
	}
	if level != t.height && !reinserted[level] {
		reinserted[level] = true
		p := len(n.entries) * 3 / 10
		if p < 1 {
			p = 1
		}
		rects := make([]geom.Rect, len(n.entries))
		for i, e := range n.entries {
			rects[i] = e.rect
		}
		order := rtreecore.ReinsertOrder(rects, p)
		drop := make(map[int]bool, p)
		for _, i := range order {
			drop[i] = true
			*queue = append(*queue, pendingEntry{e: n.entries[i], level: level})
		}
		kept := n.entries[:0]
		for i, e := range n.entries {
			if !drop[i] {
				kept = append(kept, e)
			}
		}
		n.entries = kept
		return nil
	}
	return t.split(n)
}

// split performs the R*-tree topological split, keeping one group in n and
// returning the other as a new sibling.
func (t *Tree) split(n *node) *node {
	rects := make([]geom.Rect, len(n.entries))
	for i, e := range n.entries {
		rects[i] = e.rect
	}
	g1, g2 := rtreecore.Split(rects, t.minFill)
	older := n.entries
	n.entries = make([]entry, 0, len(g1))
	for _, i := range g1 {
		n.entries = append(n.entries, older[i])
	}
	sib := &node{leaf: n.leaf, entries: make([]entry, 0, len(g2))}
	for _, i := range g2 {
		sib.entries = append(sib.entries, older[i])
	}
	return sib
}

// ContainsPoint reports whether p lies in the closed region represented by
// the tree (i.e. in some trapezoid), counting rectangle and trapezoid
// tests. Due to directory overlap the search may follow several paths; the
// paper notes O(n) worst-case point queries.
func (t *Tree) ContainsPoint(p geom.Point, c *ops.Counters) bool {
	return containsPoint(t.root, p, c)
}

func containsPoint(n *node, p geom.Point, c *ops.Counters) bool {
	for _, e := range n.entries {
		c.RectIntersection++
		if !e.rect.ContainsPoint(p) {
			continue
		}
		if n.leaf {
			c.TrapIntersection++
			if e.trap.ContainsPoint(p) {
				return true
			}
		} else if containsPoint(e.child, p, c) {
			return true
		}
	}
	return false
}

// Intersects decides whether the regions of two TR*-trees intersect via
// synchronized traversal (section 4.2): pairs of directory entries are
// pruned by rectangle intersection tests; pairs of leaf entries whose
// rectangles intersect are decided by trapezoid intersection tests. The
// traversal stops at the first intersecting trapezoid pair. Because the
// trapezoids tile the closed region, area containment (one object inside
// the other) is detected by the same test — no separate point-in-polygon
// fallback is needed.
func Intersects(t1, t2 *Tree, c *ops.Counters) bool {
	if t1.numTraps == 0 || t2.numTraps == 0 {
		return false
	}
	b1, b2 := t1.root.bounds(), t2.root.bounds()
	c.RectIntersection++
	if !b1.Intersects(b2) {
		return false
	}
	return nodesIntersect(t1.root, t2.root, b1, b2, c)
}

// nodesIntersect expands one node pair; b1 and b2 are the node regions,
// threaded down from the parent entry rectangles so the traversal (which
// runs once per remaining candidate pair of the join) never recomputes a
// bounds union. Entries are addressed by index — the entry struct embeds
// a whole trapezoid, and copying it per comparison dominated the
// traversal's CPU profile.
func nodesIntersect(n1, n2 *node, b1, b2 geom.Rect, c *ops.Counters) bool {
	switch {
	case n1.leaf && n2.leaf:
		for i := range n1.entries {
			e1 := &n1.entries[i]
			for j := range n2.entries {
				e2 := &n2.entries[j]
				c.RectIntersection++
				if !e1.rect.Intersects(e2.rect) {
					continue
				}
				c.TrapIntersection++
				if e1.trap.Intersects(e2.trap) {
					return true
				}
			}
		}
		return false
	case !n1.leaf && !n2.leaf:
		for i := range n1.entries {
			e1 := &n1.entries[i]
			for j := range n2.entries {
				e2 := &n2.entries[j]
				c.RectIntersection++
				if e1.rect.Intersects(e2.rect) && nodesIntersect(e1.child, e2.child, e1.rect, e2.rect, c) {
					return true
				}
			}
		}
		return false
	case n1.leaf:
		// Descend the taller tree only.
		for j := range n2.entries {
			e2 := &n2.entries[j]
			c.RectIntersection++
			if e2.rect.Intersects(b1) && nodesIntersect(n1, e2.child, b1, e2.rect, c) {
				return true
			}
		}
		return false
	default:
		for i := range n1.entries {
			e1 := &n1.entries[i]
			c.RectIntersection++
			if e1.rect.Intersects(b2) && nodesIntersect(e1.child, n2, e1.rect, b2, c) {
				return true
			}
		}
		return false
	}
}

// WithinDistance decides whether the regions of two TR*-trees lie within
// Euclidean distance eps of each other, via the same synchronized
// traversal as Intersects with the rectangle intersection tests replaced
// by rectangle distance tests (a sound prune: the MBR distance lower
// bounds the trapezoid distance) and the trapezoid intersection tests by
// exact trapezoid distance tests. Because the trapezoids tile the closed
// regions, the first component pair within eps decides the predicate —
// containment configurations included (an overlapping pair has distance
// 0). With eps = 0 the predicate coincides with Intersects.
func WithinDistance(t1, t2 *Tree, eps float64, c *ops.Counters) bool {
	if t1.numTraps == 0 || t2.numTraps == 0 {
		return false
	}
	b1, b2 := t1.root.bounds(), t2.root.bounds()
	c.RectIntersection++
	if b1.Dist(b2) > eps {
		return false
	}
	return nodesWithin(t1.root, t2.root, b1, b2, eps, c)
}

// nodesWithin mirrors nodesIntersect (threaded bounds, index-addressed
// entries) with distance tests in place of intersection tests.
func nodesWithin(n1, n2 *node, b1, b2 geom.Rect, eps float64, c *ops.Counters) bool {
	switch {
	case n1.leaf && n2.leaf:
		for i := range n1.entries {
			e1 := &n1.entries[i]
			for j := range n2.entries {
				e2 := &n2.entries[j]
				c.RectIntersection++
				if e1.rect.Dist(e2.rect) > eps {
					continue
				}
				c.TrapIntersection++
				if e1.trap.Dist(e2.trap) <= eps {
					return true
				}
			}
		}
		return false
	case !n1.leaf && !n2.leaf:
		for i := range n1.entries {
			e1 := &n1.entries[i]
			for j := range n2.entries {
				e2 := &n2.entries[j]
				c.RectIntersection++
				if e1.rect.Dist(e2.rect) <= eps && nodesWithin(e1.child, e2.child, e1.rect, e2.rect, eps, c) {
					return true
				}
			}
		}
		return false
	case n1.leaf:
		// Descend the taller tree only.
		for j := range n2.entries {
			e2 := &n2.entries[j]
			c.RectIntersection++
			if e2.rect.Dist(b1) <= eps && nodesWithin(n1, e2.child, b1, e2.rect, eps, c) {
				return true
			}
		}
		return false
	default:
		for i := range n1.entries {
			e1 := &n1.entries[i]
			c.RectIntersection++
			if e1.rect.Dist(b2) <= eps && nodesWithin(e1.child, n2, e1.rect, b2, eps, c) {
				return true
			}
		}
		return false
	}
}

// Validate checks the TR*-tree invariants (entry rectangles tightly bound
// children, capacities respected, all trapezoids reachable at one level).
// It is meant for tests.
func (t *Tree) Validate() error {
	count, err := validate(t.root, t.height, t.capacity)
	if err != nil {
		return err
	}
	if count != t.numTraps {
		return fmt.Errorf("trstar: reachable trapezoids %d != recorded %d", count, t.numTraps)
	}
	return nil
}

func validate(n *node, level, capacity int) (int, error) {
	if len(n.entries) > capacity {
		return 0, fmt.Errorf("trstar: node with %d > %d entries", len(n.entries), capacity)
	}
	if n.leaf {
		if level != 1 {
			return 0, fmt.Errorf("trstar: leaf at level %d", level)
		}
		for _, e := range n.entries {
			if !e.rect.Contains(e.trap.Bounds()) || !e.trap.Bounds().Contains(e.rect) {
				return 0, fmt.Errorf("trstar: leaf entry rect %v is not the trapezoid MBR", e.rect)
			}
		}
		return len(n.entries), nil
	}
	total := 0
	for _, e := range n.entries {
		cb := e.child.bounds()
		if !e.rect.Contains(cb) || !cb.Contains(e.rect) {
			return 0, fmt.Errorf("trstar: directory rect %v != child bounds %v", e.rect, cb)
		}
		sub, err := validate(e.child, level-1, capacity)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	return total, nil
}
