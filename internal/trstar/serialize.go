package trstar

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"spatialjoin/internal/decomp"
	"spatialjoin/internal/geom"
)

// The paper stores each object's TR*-tree persistently on secondary
// storage and transfers it into main memory as a whole when the exact
// geometry is required, without rebuilding the tree (section 4.2). This
// file provides that capability: a compact, self-contained binary format
// written and read in a single pass.
//
// Layout (little endian):
//
//	magic   uint32  'TRS1'
//	cap     uint8   maximum node capacity
//	height  uint8
//	count   uint32  number of trapezoids
//	nodes in preorder:
//	  tag     uint8   0 = internal, 1 = leaf
//	  n       uint8   number of entries
//	  per entry: leaf → 8 float64 (trapezoid corners);
//	             internal → child subtree follows recursively
const serialMagic = 0x54525331 // "TRS1"

var (
	// ErrCorrupt reports malformed serialized data.
	ErrCorrupt = errors.New("trstar: corrupt serialized tree")
)

// MarshalBinary serializes the tree.
func (t *Tree) MarshalBinary() ([]byte, error) {
	if t.capacity > 255 || t.height > 255 {
		return nil, fmt.Errorf("trstar: capacity %d or height %d exceeds the format", t.capacity, t.height)
	}
	buf := make([]byte, 0, 16+t.numTraps*70)
	buf = binary.LittleEndian.AppendUint32(buf, serialMagic)
	buf = append(buf, byte(t.capacity), byte(t.height))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(t.numTraps))
	buf = marshalNode(buf, t.root)
	return buf, nil
}

func marshalNode(buf []byte, n *node) []byte {
	tag := byte(0)
	if n.leaf {
		tag = 1
	}
	buf = append(buf, tag, byte(len(n.entries)))
	for _, e := range n.entries {
		if n.leaf {
			for _, p := range e.trap.P {
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.X))
				buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(p.Y))
			}
		} else {
			buf = marshalNode(buf, e.child)
		}
	}
	return buf
}

// UnmarshalBinary reconstructs a tree serialized by MarshalBinary. Entry
// rectangles are rederived from the trapezoids (they are exact MBRs), so
// the format stores no redundant geometry.
func UnmarshalBinary(data []byte) (*Tree, error) {
	r := &reader{data: data}
	magic, ok := r.u32()
	if !ok || magic != serialMagic {
		return nil, ErrCorrupt
	}
	capByte, ok1 := r.u8()
	height, ok2 := r.u8()
	count, ok3 := r.u32()
	if !ok1 || !ok2 || !ok3 || capByte < 3 {
		return nil, ErrCorrupt
	}
	root, err := unmarshalNode(r, int(capByte))
	if err != nil {
		return nil, err
	}
	if r.pos != len(r.data) {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrCorrupt, len(r.data)-r.pos)
	}
	t := &Tree{
		root:     root,
		capacity: int(capByte),
		minFill:  (int(capByte)*2 + 4) / 5,
		height:   int(height),
		numTraps: int(count),
	}
	if err := t.Validate(); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrCorrupt, err)
	}
	return t, nil
}

func unmarshalNode(r *reader, capacity int) (*node, error) {
	tag, ok1 := r.u8()
	count, ok2 := r.u8()
	if !ok1 || !ok2 || tag > 1 || int(count) > capacity {
		return nil, ErrCorrupt
	}
	n := &node{leaf: tag == 1}
	for i := 0; i < int(count); i++ {
		if n.leaf {
			var tr decomp.Trapezoid
			for k := 0; k < 4; k++ {
				x, okx := r.f64()
				y, oky := r.f64()
				if !okx || !oky {
					return nil, ErrCorrupt
				}
				tr.P[k] = geom.Point{X: x, Y: y}
			}
			n.entries = append(n.entries, entry{rect: tr.Bounds(), trap: tr})
		} else {
			child, err := unmarshalNode(r, capacity)
			if err != nil {
				return nil, err
			}
			n.entries = append(n.entries, entry{rect: child.bounds(), child: child})
		}
	}
	return n, nil
}

type reader struct {
	data []byte
	pos  int
}

func (r *reader) u8() (byte, bool) {
	if r.pos+1 > len(r.data) {
		return 0, false
	}
	v := r.data[r.pos]
	r.pos++
	return v, true
}

func (r *reader) u32() (uint32, bool) {
	if r.pos+4 > len(r.data) {
		return 0, false
	}
	v := binary.LittleEndian.Uint32(r.data[r.pos:])
	r.pos += 4
	return v, true
}

func (r *reader) f64() (float64, bool) {
	if r.pos+8 > len(r.data) {
		return 0, false
	}
	v := math.Float64frombits(binary.LittleEndian.Uint64(r.data[r.pos:]))
	r.pos += 8
	return v, true
}
