// Package bitset implements a fixed-size dense bitset over small integer
// keys. The streaming join uses it for the per-worker fetched-object sets
// and their deterministic union: object identifiers are dense indexes
// into a relation's object table, so a bitset replaces a hash set with
// one bit per object — no per-insert allocation, no hashing, and a union
// that is a word-wise OR.
package bitset

import "math/bits"

// Set is a fixed-capacity bitset. The zero value is an empty set of
// capacity 0; use New to size one.
type Set struct {
	words []uint64
}

// New returns an empty set capable of holding the keys [0, n).
func New(n int) *Set {
	return &Set{words: make([]uint64, (n+63)/64)}
}

// Set adds key i to the set. Keys beyond the capacity grow the set (the
// join pipeline never exceeds the relation size it allocated for; the
// growth path keeps the type safe for other callers).
func (s *Set) Set(i int) {
	w := i >> 6
	for w >= len(s.words) {
		s.words = append(s.words, 0)
	}
	s.words[w] |= 1 << (uint(i) & 63)
}

// Has reports whether key i is in the set.
func (s *Set) Has(i int) bool {
	w := i >> 6
	return w < len(s.words) && s.words[w]&(1<<(uint(i)&63)) != 0
}

// Or adds every key of o to s (s |= o), growing s if o is larger.
func (s *Set) Or(o *Set) {
	if o == nil {
		return
	}
	for len(s.words) < len(o.words) {
		s.words = append(s.words, 0)
	}
	for i, w := range o.words {
		s.words[i] |= w
	}
}

// Count returns the number of keys in the set.
func (s *Set) Count() int {
	n := 0
	for _, w := range s.words {
		n += bits.OnesCount64(w)
	}
	return n
}

// Reset empties the set, keeping its capacity.
func (s *Set) Reset() {
	for i := range s.words {
		s.words[i] = 0
	}
}
