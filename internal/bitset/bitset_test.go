package bitset

import (
	"math/rand"
	"testing"
)

func TestSetHasCount(t *testing.T) {
	s := New(200)
	keys := []int{0, 1, 63, 64, 65, 127, 128, 199}
	for _, k := range keys {
		if s.Has(k) {
			t.Fatalf("fresh set contains %d", k)
		}
		s.Set(k)
		s.Set(k) // idempotent
	}
	for _, k := range keys {
		if !s.Has(k) {
			t.Fatalf("set lost key %d", k)
		}
	}
	if got := s.Count(); got != len(keys) {
		t.Fatalf("Count = %d, want %d", got, len(keys))
	}
	s.Reset()
	if got := s.Count(); got != 0 {
		t.Fatalf("Count after Reset = %d, want 0", got)
	}
	for _, k := range keys {
		if s.Has(k) {
			t.Fatalf("Reset kept key %d", k)
		}
	}
}

func TestGrowBeyondCapacity(t *testing.T) {
	s := New(1)
	s.Set(1000)
	if !s.Has(1000) || s.Has(999) || s.Count() != 1 {
		t.Fatalf("growth path broken: Has(1000)=%v Has(999)=%v Count=%d",
			s.Has(1000), s.Has(999), s.Count())
	}
}

// TestOrMatchesMapUnion cross-checks the word-wise union against the map
// semantics it replaces in the streaming join's statistics merge.
func TestOrMatchesMapUnion(t *testing.T) {
	rng := rand.New(rand.NewSource(42))
	const n = 2000
	union := make(map[int]struct{})
	acc := New(n)
	for w := 0; w < 5; w++ {
		part := New(n)
		for i := 0; i < 300; i++ {
			k := rng.Intn(n)
			part.Set(k)
			union[k] = struct{}{}
		}
		acc.Or(part)
	}
	if got := acc.Count(); got != len(union) {
		t.Fatalf("union Count = %d, want %d", got, len(union))
	}
	for k := range union {
		if !acc.Has(k) {
			t.Fatalf("union lost key %d", k)
		}
	}
	acc.Or(nil) // no-op
	if got := acc.Count(); got != len(union) {
		t.Fatalf("Or(nil) changed Count to %d", got)
	}
}

func TestOrGrows(t *testing.T) {
	small, big := New(1), New(500)
	big.Set(400)
	small.Or(big)
	if !small.Has(400) {
		t.Fatal("Or did not grow the receiver")
	}
}
