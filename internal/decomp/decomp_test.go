package decomp

import (
	"math"
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
)

func sq(cx, cy, half float64) []geom.Point {
	return []geom.Point{
		{X: cx - half, Y: cy - half}, {X: cx + half, Y: cy - half},
		{X: cx + half, Y: cy + half}, {X: cx - half, Y: cy + half},
	}
}

func starPoly(rng *rand.Rand, cx, cy, radius float64, n int) *geom.Polygon {
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		ang := 2 * math.Pi * float64(i) / float64(n)
		r := radius * (0.35 + 0.65*rng.Float64())
		pts[i] = geom.Point{X: cx + r*math.Cos(ang), Y: cy + r*math.Sin(ang)}
	}
	return geom.NewPolygon(pts)
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }

func sumTrapArea(ts []Trapezoid) float64 {
	var s float64
	for _, t := range ts {
		s += t.Area()
	}
	return s
}

func TestTrapezoidizeSquare(t *testing.T) {
	p := geom.NewPolygon(sq(0, 0, 1))
	traps := Trapezoidize(p)
	if len(traps) != 1 {
		t.Fatalf("square must decompose into 1 trapezoid, got %d", len(traps))
	}
	if !almostEq(traps[0].Area(), 4, 1e-9) {
		t.Errorf("trapezoid area = %v, want 4", traps[0].Area())
	}
}

func TestTrapezoidizeLShape(t *testing.T) {
	p := geom.NewPolygon([]geom.Point{
		{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 2}, {X: 0, Y: 2},
	})
	traps := Trapezoidize(p)
	if got := sumTrapArea(traps); !almostEq(got, 3, 1e-9) {
		t.Errorf("trapezoid areas sum to %v, want 3", got)
	}
	if len(traps) != 2 {
		t.Errorf("L-shape: got %d trapezoids, want 2 (one per slab)", len(traps))
	}
}

func TestTrapezoidizeWithHole(t *testing.T) {
	p := geom.NewPolygon(sq(0, 0, 2), sq(0, 0, 1))
	traps := Trapezoidize(p)
	if got := sumTrapArea(traps); !almostEq(got, 12, 1e-9) {
		t.Errorf("annulus trapezoid areas sum to %v, want 12", got)
	}
	// No trapezoid may cover the hole interior.
	for _, tr := range traps {
		if tr.ContainsPoint(geom.Point{X: 0, Y: 0}) {
			t.Errorf("trapezoid %v covers the hole center", tr)
		}
	}
	// The annulus is fully covered.
	for _, pt := range []geom.Point{{X: 1.5, Y: 0}, {X: -1.5, Y: 0}, {X: 0, Y: 1.5}, {X: 0, Y: -1.5}} {
		found := false
		for _, tr := range traps {
			if tr.ContainsPoint(pt) {
				found = true
				break
			}
		}
		if !found {
			t.Errorf("no trapezoid covers annulus point %v", pt)
		}
	}
}

func TestTrapezoidizePropertyAreaAndContainment(t *testing.T) {
	rng := rand.New(rand.NewSource(61))
	for trial := 0; trial < 40; trial++ {
		p := starPoly(rng, 0, 0, 1, 5+rng.Intn(40))
		traps := Trapezoidize(p)
		if got := sumTrapArea(traps); !almostEq(got, p.Area(), 1e-6*math.Max(1, p.Area())) {
			t.Fatalf("trial %d: areas sum to %v, want %v", trial, got, p.Area())
		}
		// Trapezoid centers lie inside the polygon.
		for _, tr := range traps {
			c := tr.Ring().Centroid()
			if !p.ContainsPoint(c) {
				t.Fatalf("trial %d: trapezoid centroid %v outside polygon", trial, c)
			}
		}
		// Random interior points are covered by some trapezoid, exterior
		// points by none.
		for k := 0; k < 50; k++ {
			pt := geom.Point{X: rng.Float64()*2.4 - 1.2, Y: rng.Float64()*2.4 - 1.2}
			in := false
			for _, tr := range traps {
				if tr.ContainsPoint(pt) {
					in = true
					break
				}
			}
			if in != p.ContainsPoint(pt) {
				// Boundary-adjacent points may disagree within tolerance.
				if distToBoundary(p, pt) > 1e-6 {
					t.Fatalf("trial %d: coverage mismatch at %v (traps %v, poly %v)",
						trial, pt, in, p.ContainsPoint(pt))
				}
			}
		}
	}
}

func distToBoundary(p *geom.Polygon, pt geom.Point) float64 {
	var edges []geom.Segment
	edges = p.Edges(edges)
	d := math.Inf(1)
	for _, e := range edges {
		if dd := e.DistToPoint(pt); dd < d {
			d = dd
		}
	}
	return d
}

func TestTrapezoidIntersects(t *testing.T) {
	a := Trapezoid{P: [4]geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}}}
	b := Trapezoid{P: [4]geom.Point{{X: 1, Y: 1}, {X: 3, Y: 1}, {X: 3, Y: 3}, {X: 1, Y: 3}}}
	c := Trapezoid{P: [4]geom.Point{{X: 5, Y: 5}, {X: 6, Y: 5}, {X: 6, Y: 6}, {X: 5, Y: 6}}}
	if !a.Intersects(b) {
		t.Error("overlapping trapezoids must intersect")
	}
	if a.Intersects(c) {
		t.Error("disjoint trapezoids must not intersect")
	}
	// Degenerate (triangle) trapezoid.
	tri := Trapezoid{P: [4]geom.Point{{X: 0, Y: 0}, {X: 2, Y: 1}, {X: 2, Y: 1}, {X: 0, Y: 2}}}
	if !tri.Intersects(a) {
		t.Error("triangle-degenerate trapezoid must intersect the square")
	}
	if tri.Intersects(c) {
		t.Error("triangle-degenerate trapezoid must not reach the far square")
	}
}

func TestTriangulateSquareAndStar(t *testing.T) {
	p := geom.NewPolygon(sq(0, 0, 1))
	tris := Triangulate(p)
	if len(tris) != 2 {
		t.Errorf("square: got %d triangles, want 2", len(tris))
	}
	var area float64
	for _, tr := range tris {
		area += tr.Area()
	}
	if !almostEq(area, 4, 1e-9) {
		t.Errorf("triangle areas sum to %v, want 4", area)
	}
	rng := rand.New(rand.NewSource(67))
	for trial := 0; trial < 30; trial++ {
		poly := starPoly(rng, 0, 0, 1, 5+rng.Intn(30))
		tris := Triangulate(poly)
		if len(tris) != poly.NumVertices()-2 {
			t.Fatalf("trial %d: ear clipping must produce n-2 triangles, got %d for n=%d",
				trial, len(tris), poly.NumVertices())
		}
		var area float64
		for _, tr := range tris {
			area += tr.Area()
		}
		if !almostEq(area, poly.Area(), 1e-6) {
			t.Fatalf("trial %d: triangle areas sum to %v, want %v", trial, area, poly.Area())
		}
	}
}

func TestTriangulateWithHoles(t *testing.T) {
	p := geom.NewPolygon(sq(0, 0, 2), sq(0, 0, 1))
	tris := Triangulate(p)
	var area float64
	for _, tr := range tris {
		area += tr.Area()
	}
	if !almostEq(area, 12, 1e-9) {
		t.Errorf("annulus triangle areas sum to %v, want 12", area)
	}
}

func TestConvexParts(t *testing.T) {
	// A convex polygon collapses back to one part.
	p := geom.NewPolygon(sq(0, 0, 1))
	parts := ConvexParts(p)
	if len(parts) != 1 {
		t.Errorf("square convex parts = %d, want 1", len(parts))
	}
	// L-shape needs at least 2 convex parts.
	l := geom.NewPolygon([]geom.Point{
		{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 1}, {X: 1, Y: 1}, {X: 1, Y: 2}, {X: 0, Y: 2},
	})
	parts = ConvexParts(l)
	if len(parts) < 2 {
		t.Errorf("L-shape convex parts = %d, want >= 2", len(parts))
	}
	var area float64
	for _, part := range parts {
		if !part.IsConvex() {
			t.Error("every part must be convex")
		}
		area += part.Area()
	}
	if !almostEq(area, 3, 1e-9) {
		t.Errorf("convex part areas sum to %v, want 3", area)
	}
}

func TestConvexPartsProperty(t *testing.T) {
	rng := rand.New(rand.NewSource(71))
	for trial := 0; trial < 25; trial++ {
		poly := starPoly(rng, 0, 0, 1, 6+rng.Intn(25))
		parts := ConvexParts(poly)
		tris := Triangulate(poly)
		if len(parts) > len(tris) {
			t.Fatalf("trial %d: merging must not increase component count", trial)
		}
		var area float64
		for _, part := range parts {
			if !part.IsConvex() {
				t.Fatalf("trial %d: non-convex part", trial)
			}
			area += part.Area()
		}
		if !almostEq(area, poly.Area(), 1e-6) {
			t.Fatalf("trial %d: convex part areas %v != polygon area %v", trial, area, poly.Area())
		}
	}
}

func TestDecompositionStats(t *testing.T) {
	rng := rand.New(rand.NewSource(73))
	poly := starPoly(rng, 0, 0, 1, 30)
	ts := TrapezoidStats(poly)
	tr := TriangleStats(poly)
	cv := ConvexPartStats(poly)
	for _, s := range []Stats{ts, tr, cv} {
		if !almostEq(s.TotalArea, poly.Area(), 1e-6) {
			t.Errorf("stats area %v != polygon area %v", s.TotalArea, poly.Area())
		}
		if s.Components <= 0 {
			t.Error("stats must report components")
		}
	}
	if cv.Components > tr.Components {
		t.Error("convex parts must be at most as many as triangles")
	}
}
