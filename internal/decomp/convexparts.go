package decomp

import (
	"sort"

	"spatialjoin/internal/geom"
)

// ConvexParts decomposes a polygon into convex polygons (Figure 14) in the
// spirit of Hertel–Mehlhorn: starting from a triangulation, inessential
// diagonals are removed greedily — two parts sharing an edge are merged
// whenever their union stays convex. The result is exact (parts tile the
// region) and within the Hertel–Mehlhorn 4-approximation of the minimal
// convex decomposition for hole-free polygons.
func ConvexParts(p *geom.Polygon) []geom.Ring {
	tris := Triangulate(p)
	parts := make([]geom.Ring, len(tris))
	for i, t := range tris {
		parts[i] = t.Ring()
	}
	type edgeKey struct{ a, b geom.Point }
	key := func(a, b geom.Point) edgeKey {
		if a.X < b.X || (a.X == b.X && a.Y < b.Y) {
			return edgeKey{a, b}
		}
		return edgeKey{b, a}
	}
	merged := true
	for merged {
		merged = false
		// Index parts by their undirected edges; merge on first shared
		// edge whose removal keeps the union convex.
		owner := make(map[edgeKey]int)
		for i, part := range parts {
			if part == nil {
				continue
			}
			for j := range part {
				k := key(part[j], part[(j+1)%len(part)])
				other, seen := owner[k]
				if seen && other != i && parts[other] != nil {
					if u, okm := mergeAcross(parts[other], part, k.a, k.b); okm {
						parts[other] = u
						parts[i] = nil
						merged = true
						break
					}
				} else if !seen {
					owner[k] = i
				}
			}
		}
		parts = compact(parts)
	}
	sortRingsByMinX(parts)
	return parts
}

func compact(parts []geom.Ring) []geom.Ring {
	out := parts[:0]
	for _, p := range parts {
		if p != nil {
			out = append(out, p)
		}
	}
	return out
}

// mergeAcross joins two CCW rings sharing the undirected edge (a, b) into
// one ring and reports whether the union is convex.
func mergeAcross(r1, r2 geom.Ring, a, b geom.Point) (geom.Ring, bool) {
	// Locate the shared edge in each ring (as a directed edge; the rings
	// traverse it in opposite directions).
	i1 := findEdge(r1, a, b)
	i2 := findEdge(r2, a, b)
	if i1 < 0 || i2 < 0 {
		return nil, false
	}
	// Walk r1 from the end of its shared edge all the way around to its
	// start, then splice in r2's walk the same way.
	n1, n2 := len(r1), len(r2)
	var out geom.Ring
	for k := 1; k < n1; k++ {
		out = append(out, r1[(i1+k)%n1])
	}
	for k := 1; k < n2; k++ {
		out = append(out, r2[(i2+k)%n2])
	}
	out = dropCollinear(out)
	if len(out) < 3 || !out.IsConvex() || !out.IsCCW() {
		return nil, false
	}
	return out, true
}

// findEdge returns the index of the directed or reversed edge (a, b) in
// ring r, or -1.
func findEdge(r geom.Ring, a, b geom.Point) int {
	n := len(r)
	for i := 0; i < n; i++ {
		p, q := r[i], r[(i+1)%n]
		if (p == a && q == b) || (p == b && q == a) {
			return i
		}
	}
	return -1
}

// dropCollinear removes vertices that lie on the segment between their
// neighbours.
func dropCollinear(r geom.Ring) geom.Ring {
	n := len(r)
	if n < 3 {
		return r
	}
	var out geom.Ring
	for i := 0; i < n; i++ {
		a := r[(i-1+n)%n]
		b := r[i]
		c := r[(i+1)%n]
		if geom.Orientation(a, b, c) != 0 {
			out = append(out, b)
		}
	}
	if len(out) < 3 {
		return r
	}
	return out
}

// Stats summarizes a decomposition for the Figure 14 comparison.
type Stats struct {
	Components int
	TotalArea  float64
	MaxVerts   int
}

// TrapezoidStats summarizes the trapezoid decomposition of p.
func TrapezoidStats(p *geom.Polygon) Stats {
	traps := Trapezoidize(p)
	s := Stats{Components: len(traps), MaxVerts: 4}
	for _, t := range traps {
		s.TotalArea += t.Area()
	}
	return s
}

// TriangleStats summarizes the triangle decomposition of p.
func TriangleStats(p *geom.Polygon) Stats {
	tris := Triangulate(p)
	s := Stats{Components: len(tris), MaxVerts: 3}
	for _, t := range tris {
		s.TotalArea += t.Area()
	}
	return s
}

// ConvexPartStats summarizes the convex decomposition of p.
func ConvexPartStats(p *geom.Polygon) Stats {
	parts := ConvexParts(p)
	s := Stats{Components: len(parts)}
	for _, part := range parts {
		s.TotalArea += part.Area()
		if len(part) > s.MaxVerts {
			s.MaxVerts = len(part)
		}
	}
	return s
}

// sortRingsByMinX orders rings deterministically for reproducible output.
func sortRingsByMinX(rings []geom.Ring) {
	sort.Slice(rings, func(i, j int) bool {
		bi := rings[i].Bounds()
		bj := rings[j].Bounds()
		if bi.MinX != bj.MinX {
			return bi.MinX < bj.MinX
		}
		return bi.MinY < bj.MinY
	})
}
