package decomp

import (
	"spatialjoin/internal/geom"
)

// Triangle is one component of the triangle decomposition (Figure 14).
type Triangle struct {
	A, B, C geom.Point
}

// Bounds returns the minimum bounding rectangle of t.
func (t Triangle) Bounds() geom.Rect { return geom.RectFromPoints(t.A, t.B, t.C) }

// Area returns the area of t.
func (t Triangle) Area() float64 {
	v := geom.Cross(t.A, t.B, t.C) / 2
	if v < 0 {
		return -v
	}
	return v
}

// Ring returns the corners as a counterclockwise ring.
func (t Triangle) Ring() geom.Ring {
	if geom.Cross(t.A, t.B, t.C) >= 0 {
		return geom.Ring{t.A, t.B, t.C}
	}
	return geom.Ring{t.A, t.C, t.B}
}

// Triangulate decomposes a polygon into triangles. Hole-free polygons use
// ear clipping [PS 85]; polygons with holes are first trapezoidized and
// each trapezoid is split along a diagonal, which is also an exact
// triangulation (with roughly twice as many components as an optimal one —
// the Figure 14 comparison reports component counts, so the difference is
// visible rather than hidden).
func Triangulate(p *geom.Polygon) []Triangle {
	if len(p.Holes) == 0 {
		if tris, ok := earClip(p.Outer); ok {
			return tris
		}
	}
	traps := Trapezoidize(p)
	out := make([]Triangle, 0, 2*len(traps))
	for _, t := range traps {
		ring := t.dedup()
		switch len(ring) {
		case 3:
			out = append(out, Triangle{A: ring[0], B: ring[1], C: ring[2]})
		case 4:
			out = append(out,
				Triangle{A: ring[0], B: ring[1], C: ring[2]},
				Triangle{A: ring[0], B: ring[2], C: ring[3]})
		}
	}
	return out
}

// earClip triangulates a simple counterclockwise ring in O(n²). ok is
// false when no ear is found (numerically degenerate input); callers fall
// back to the trapezoid-based triangulation.
func earClip(ring geom.Ring) ([]Triangle, bool) {
	n := len(ring)
	if n < 3 {
		return nil, false
	}
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	var out []Triangle
	guard := 0
	for len(idx) > 3 {
		if guard++; guard > 2*n*n {
			return nil, false
		}
		clipped := false
		m := len(idx)
		for i := 0; i < m; i++ {
			ia := idx[(i-1+m)%m]
			ib := idx[i]
			ic := idx[(i+1)%m]
			a, b, c := ring[ia], ring[ib], ring[ic]
			if geom.Cross(a, b, c) <= geom.Eps {
				continue // reflex or degenerate corner: not an ear
			}
			// No other remaining vertex may lie inside the candidate ear.
			ear := Triangle{A: a, B: b, C: c}
			ok := true
			for _, j := range idx {
				if j == ia || j == ib || j == ic {
					continue
				}
				if pointInTriangle(ring[j], a, b, c) {
					ok = false
					break
				}
			}
			if !ok {
				continue
			}
			out = append(out, ear)
			idx = append(idx[:i], idx[i+1:]...)
			clipped = true
			break
		}
		if !clipped {
			return nil, false
		}
	}
	out = append(out, Triangle{A: ring[idx[0]], B: ring[idx[1]], C: ring[idx[2]]})
	return out, true
}

// pointInTriangle reports whether p lies strictly inside or on the
// boundary of the CCW triangle (a, b, c).
func pointInTriangle(p, a, b, c geom.Point) bool {
	return geom.Cross(a, b, p) >= -geom.Eps &&
		geom.Cross(b, c, p) >= -geom.Eps &&
		geom.Cross(c, a, p) >= -geom.Eps
}
