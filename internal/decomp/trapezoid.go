// Package decomp implements the object-decomposition techniques of
// section 4.2 and Figure 14: trapezoids (the paper's choice, after
// [AA 83]), triangles and convex polygons. Decomposing a complex polygon
// into simple components at insertion time replaces one expensive
// computational-geometry algorithm at query time by many executions of
// fast algorithms on simple components [KHS 91]; the components are
// organized in a main-memory TR*-tree (package trstar).
package decomp

import (
	"math"
	"sort"

	"spatialjoin/internal/convex"
	"spatialjoin/internal/geom"
)

// Trapezoid is one component of the trapezoidal decomposition: a convex
// quadrilateral with two vertical sides (either of which may degenerate to
// a point, making the component a triangle). Vertices are stored
// counterclockwise.
type Trapezoid struct {
	// P holds the corners counterclockwise: bottom-left, bottom-right,
	// top-right, top-left. For triangles two corners coincide.
	P [4]geom.Point
}

// Bounds returns the minimum bounding rectangle of t. The paper picks
// trapezoids as components precisely because single trapezoids are
// accurately approximated by MBRs.
func (t Trapezoid) Bounds() geom.Rect {
	return geom.RectFromPoints(t.P[0], t.P[1], t.P[2], t.P[3])
}

// Area returns the area of t.
func (t Trapezoid) Area() float64 {
	return geom.Ring(t.P[:]).Area()
}

// Ring returns the corners as a counterclockwise ring.
func (t Trapezoid) Ring() geom.Ring { return geom.Ring(t.P[:]) }

// ContainsPoint reports whether p lies in the closed trapezoid.
func (t Trapezoid) ContainsPoint(p geom.Point) bool {
	n := 0
	for i := 0; i < 4; i++ {
		a := t.P[i]
		b := t.P[(i+1)%4]
		if a == b {
			continue
		}
		if geom.Cross(a, b, p) < -geom.Eps {
			return false
		}
		n++
	}
	return n >= 3
}

// Intersects reports whether two closed trapezoids share at least one
// point — the "trapezoid intersection test" of Table 6, the innermost
// operation of the TR*-tree join.
func (t Trapezoid) Intersects(u Trapezoid) bool {
	return convex.SATIntersects(t.dedup(), u.dedup())
}

// Dist returns the Euclidean distance between two closed trapezoids: 0
// when they intersect, otherwise the smallest boundary distance. Because
// the trapezoids of a decomposition tile the closed region, the minimum
// of Dist over all component pairs of two decomposed objects equals the
// exact region distance — the within-distance analogue of the trapezoid
// intersection test.
func (t Trapezoid) Dist(u Trapezoid) float64 {
	return convex.Distance(t.dedup(), u.dedup())
}

// dedup drops coincident corners so the SAT sees a clean convex ring.
func (t Trapezoid) dedup() geom.Ring {
	out := make(geom.Ring, 0, 4)
	for i := 0; i < 4; i++ {
		if t.P[i] != t.P[(i+1)%4] {
			out = append(out, t.P[i])
		}
	}
	return out
}

// Trapezoidize decomposes a polygon (with holes) into trapezoids using a
// vertical slab sweep: between two consecutive distinct vertex x
// coordinates no edge starts or ends, so the slab's interior is a stack of
// trapezoids bounded by consecutive active edges (even–odd rule). The
// decomposition is exact: component areas sum to the polygon area and the
// union of components equals the closed region.
func Trapezoidize(p *geom.Polygon) []Trapezoid {
	var edges []geom.Segment
	edges = p.Edges(edges)

	// Distinct event x coordinates.
	xs := make([]float64, 0, len(edges))
	for _, e := range edges {
		xs = append(xs, e.A.X)
	}
	sort.Float64s(xs)
	xs = dedupFloats(xs)
	if len(xs) < 2 {
		return nil
	}

	// Sort non-vertical edges by their smaller x so the sweep can add them
	// as slabs open.
	type swEdge struct {
		s          geom.Segment
		minX, maxX float64
	}
	sw := make([]swEdge, 0, len(edges))
	for _, e := range edges {
		minX := math.Min(e.A.X, e.B.X)
		maxX := math.Max(e.A.X, e.B.X)
		if maxX-minX < geom.Eps {
			continue // vertical edges never span a slab
		}
		sw = append(sw, swEdge{s: e, minX: minX, maxX: maxX})
	}
	sort.Slice(sw, func(i, j int) bool { return sw[i].minX < sw[j].minX })

	var out []Trapezoid
	active := make([]swEdge, 0, 16)
	next := 0
	type span struct {
		yl, yr float64
		e      swEdge
	}
	spans := make([]span, 0, 16)
	for i := 0; i+1 < len(xs); i++ {
		xl, xr := xs[i], xs[i+1]
		// Admit edges opening at or before xl.
		for next < len(sw) && sw[next].minX <= xl+geom.Eps {
			active = append(active, sw[next])
			next++
		}
		// Retire edges that ended.
		keep := active[:0]
		for _, e := range active {
			if e.maxX > xl+geom.Eps {
				keep = append(keep, e)
			}
		}
		active = keep

		spans = spans[:0]
		for _, e := range active {
			if e.minX <= xl+geom.Eps && e.maxX >= xr-geom.Eps {
				spans = append(spans, span{yl: e.s.YAt(xl), yr: e.s.YAt(xr), e: e})
			}
		}
		sort.Slice(spans, func(a, b int) bool {
			ma := spans[a].yl + spans[a].yr
			mb := spans[b].yl + spans[b].yr
			return ma < mb
		})
		for k := 0; k+1 < len(spans); k += 2 {
			lo := spans[k]
			hi := spans[k+1]
			t := Trapezoid{P: [4]geom.Point{
				{X: xl, Y: lo.yl},
				{X: xr, Y: lo.yr},
				{X: xr, Y: hi.yr},
				{X: xl, Y: hi.yl},
			}}
			if t.Area() > geom.Eps {
				out = append(out, t)
			}
		}
	}
	return out
}

func dedupFloats(xs []float64) []float64 {
	out := xs[:0]
	for i, x := range xs {
		if i == 0 || x-out[len(out)-1] > geom.Eps {
			out = append(out, x)
		}
	}
	return out
}
