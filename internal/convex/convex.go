// Package convex provides the convex-geometry primitives behind the
// conservative approximations of section 3: convex hull construction,
// minimum-area enclosing rectangles (rotating calipers), minimum bounding
// m-corners (greedy minimal-area-addition edge removal after Dori and
// Ben-Bassat), convex–convex clipping for intersection areas, and two
// intersection tests for convex shapes — the separating-axis test for
// polygons and GJK for arbitrary convex support functions (circles,
// ellipses, polygons).
package convex

import (
	"math"
	"sort"
	"sync"

	"spatialjoin/internal/geom"
)

// Hull returns the convex hull of pts as a counterclockwise ring without
// collinear vertices, using Andrew's monotone-chain scan in O(n log n) —
// the Graham-scan family the paper cites [PS 85]. Degenerate inputs
// (fewer than three non-collinear points) yield a ring with fewer than
// three vertices.
func Hull(pts []geom.Point) geom.Ring {
	n := len(pts)
	if n == 0 {
		return nil
	}
	sorted := make([]geom.Point, n)
	copy(sorted, pts)
	sort.Slice(sorted, func(i, j int) bool {
		if sorted[i].X != sorted[j].X {
			return sorted[i].X < sorted[j].X
		}
		return sorted[i].Y < sorted[j].Y
	})
	// Deduplicate.
	uniq := sorted[:1]
	for _, p := range sorted[1:] {
		last := uniq[len(uniq)-1]
		if p.X != last.X || p.Y != last.Y {
			uniq = append(uniq, p)
		}
	}
	if len(uniq) < 3 {
		return geom.Ring(uniq)
	}
	hull := make([]geom.Point, 0, 2*len(uniq))
	// Lower hull.
	for _, p := range uniq {
		for len(hull) >= 2 && geom.Cross(hull[len(hull)-2], hull[len(hull)-1], p) <= geom.Eps {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	// Upper hull.
	lower := len(hull) + 1
	for i := len(uniq) - 2; i >= 0; i-- {
		p := uniq[i]
		for len(hull) >= lower && geom.Cross(hull[len(hull)-2], hull[len(hull)-1], p) <= geom.Eps {
			hull = hull[:len(hull)-1]
		}
		hull = append(hull, p)
	}
	return geom.Ring(hull[:len(hull)-1])
}

// OrientedRect is a rectangle with arbitrary orientation: the rotated
// minimum bounding rectangle (RMBR) of section 3.2. It is described by the
// paper's five parameters (center, two extents, angle); the corner points
// are cached for intersection tests.
type OrientedRect struct {
	Center  geom.Point
	W, H    float64 // extents along the rotated x and y axes
	Angle   float64 // rotation of the rectangle's x axis, radians in [0, π)
	Corners [4]geom.Point
}

// Area returns the area of the oriented rectangle.
func (o OrientedRect) Area() float64 { return o.W * o.H }

// Ring returns the corner points as a counterclockwise ring.
func (o OrientedRect) Ring() geom.Ring { return geom.Ring(o.Corners[:]) }

// ContainsPoint reports whether p lies in the closed oriented rectangle.
func (o OrientedRect) ContainsPoint(p geom.Point) bool {
	q := p.Sub(o.Center).Rotate(-o.Angle)
	return math.Abs(q.X) <= o.W/2+1e-9 && math.Abs(q.Y) <= o.H/2+1e-9
}

// MinAreaRect returns the minimum-area enclosing rectangle of a convex
// ring using rotating calipers: the optimum has one side collinear with a
// hull edge, so one pass over the hull edges suffices. The paper quotes a
// simple O(n²) algorithm; calipers compute the same rectangle faster.
func MinAreaRect(hull geom.Ring) OrientedRect {
	n := len(hull)
	if n == 0 {
		return OrientedRect{}
	}
	if n == 1 {
		p := hull[0]
		return OrientedRect{Center: p, Corners: [4]geom.Point{p, p, p, p}}
	}
	best := OrientedRect{W: math.Inf(1), H: math.Inf(1)}
	bestArea := math.Inf(1)
	for i := 0; i < n; i++ {
		a := hull[i]
		b := hull[(i+1)%n]
		d := b.Sub(a)
		L := d.Norm()
		if L < geom.Eps {
			continue
		}
		ux := geom.Point{X: d.X / L, Y: d.Y / L}
		uy := geom.Point{X: -ux.Y, Y: ux.X}
		minX, maxX := math.Inf(1), math.Inf(-1)
		minY, maxY := math.Inf(1), math.Inf(-1)
		for _, p := range hull {
			v := p.Sub(a)
			x := v.Dot(ux)
			y := v.Dot(uy)
			minX = math.Min(minX, x)
			maxX = math.Max(maxX, x)
			minY = math.Min(minY, y)
			maxY = math.Max(maxY, y)
		}
		w := maxX - minX
		h := maxY - minY
		area := w * h
		if area < bestArea {
			bestArea = area
			cx := (minX + maxX) / 2
			cy := (minY + maxY) / 2
			center := a.Add(ux.Scale(cx)).Add(uy.Scale(cy))
			angle := math.Atan2(ux.Y, ux.X)
			if angle < 0 {
				angle += math.Pi
			}
			var corners [4]geom.Point
			signs := [4][2]float64{{-1, -1}, {1, -1}, {1, 1}, {-1, 1}}
			for k, s := range signs {
				corners[k] = center.Add(ux.Scale(s[0] * w / 2)).Add(uy.Scale(s[1] * h / 2))
			}
			best = OrientedRect{Center: center, W: w, H: h, Angle: angle, Corners: corners}
		}
	}
	return best
}

// lineIntersection returns the intersection point of the infinite lines
// through (a1,a2) and (b1,b2). ok is false for (near-)parallel lines.
func lineIntersection(a1, a2, b1, b2 geom.Point) (geom.Point, bool) {
	d1 := a2.Sub(a1)
	d2 := b2.Sub(b1)
	den := d1.CrossVec(d2)
	if math.Abs(den) < geom.Eps {
		return geom.Point{}, false
	}
	t := b1.Sub(a1).CrossVec(d2) / den
	return a1.Add(d1.Scale(t)), true
}

// MinBoundingKGon circumscribes a convex ring by a convex polygon with at
// most k edges, greedily removing one edge at a time with minimal area
// addition — the heuristic flavour of Dori and Ben-Bassat [DB 83] the
// paper uses to compute the minimum bounding 4-corner and 5-corner.
// Removing edge (v_i, v_{i+1}) replaces it by the intersection point of
// the two neighbouring edge lines, adding the area of the triangle
// (v_i, x, v_{i+1}). If the hull already has at most k vertices it is
// returned unchanged. k must be at least 3.
func MinBoundingKGon(hull geom.Ring, k int) geom.Ring {
	if k < 3 {
		panic("convex: k-gon needs k >= 3")
	}
	if len(hull) <= k {
		return hull.Clone()
	}
	ring := hull.Clone()
	for len(ring) > k {
		n := len(ring)
		bestIdx := -1
		bestCost := math.Inf(1)
		var bestX geom.Point
		for i := 0; i < n; i++ {
			prevA := ring[(i-1+n)%n]
			prevB := ring[i]
			nextA := ring[(i+1)%n]
			nextB := ring[(i+2)%n]
			x, ok := lineIntersection(prevA, prevB, nextA, nextB)
			if !ok {
				continue
			}
			// The intersection must lie forward of the previous edge and
			// backward of the next edge, otherwise the removal would not
			// produce an enclosing polygon.
			if x.Sub(prevB).Dot(prevB.Sub(prevA)) < -geom.Eps {
				continue
			}
			if nextA.Sub(x).Dot(nextB.Sub(nextA)) < -geom.Eps {
				continue
			}
			cost := math.Abs(geom.Cross(ring[i], x, nextA)) / 2
			if cost < bestCost {
				bestCost = cost
				bestIdx = i
				bestX = x
			}
		}
		if bestIdx < 0 {
			break // no admissible removal (e.g. parallel neighbours everywhere)
		}
		// Replace vertices bestIdx and bestIdx+1 by the intersection point.
		next := (bestIdx + 1) % n
		out := make(geom.Ring, 0, n-1)
		for j := 0; j < n; j++ {
			switch j {
			case bestIdx:
				out = append(out, bestX)
			case next:
				// dropped
			default:
				out = append(out, ring[j])
			}
		}
		ring = out
	}
	return ring
}

// Clip returns the intersection of two convex counterclockwise rings via
// Sutherland–Hodgman clipping. The result is a convex ring, possibly with
// fewer than three vertices when the intersection is empty or degenerate.
// It backs the false-area test of section 3.3, which needs the area of the
// intersection of two conservative approximations.
func Clip(subject, clip geom.Ring) geom.Ring {
	out := subject.Clone()
	n := len(clip)
	for i := 0; i < n && len(out) > 0; i++ {
		a := clip[i]
		b := clip[(i+1)%n]
		out = clipHalfPlane(out, a, b)
	}
	return out
}

// clipHalfPlane keeps the part of ring on the left of the directed line
// a→b (inclusive).
func clipHalfPlane(ring geom.Ring, a, b geom.Point) geom.Ring {
	return clipHalfPlaneInto(nil, ring, a, b)
}

// clipHalfPlaneInto is clipHalfPlane appending into dst (which must not
// alias ring).
func clipHalfPlaneInto(dst geom.Ring, ring geom.Ring, a, b geom.Point) geom.Ring {
	out := dst
	n := len(ring)
	for i := 0; i < n; i++ {
		cur := ring[i]
		nxt := ring[(i+1)%n]
		curIn := geom.Cross(a, b, cur) >= -geom.Eps
		nxtIn := geom.Cross(a, b, nxt) >= -geom.Eps
		switch {
		case curIn && nxtIn:
			out = append(out, nxt)
		case curIn && !nxtIn:
			if x, ok := lineIntersection(cur, nxt, a, b); ok {
				out = append(out, x)
			}
		case !curIn && nxtIn:
			if x, ok := lineIntersection(cur, nxt, a, b); ok {
				out = append(out, x)
			}
			out = append(out, nxt)
		}
	}
	return out
}

// clipScratch is the ping-pong buffer pair of one pooled clipping run;
// IntersectionArea runs once per candidate pair under the false-area
// test, so its working memory is recycled.
type clipScratch struct{ a, b geom.Ring }

var clipPool = sync.Pool{New: func() any { return new(clipScratch) }}

// IntersectionArea returns the area of the intersection of two convex
// counterclockwise rings. Unlike Clip it retains no result: the
// intersection is built in pooled scratch buffers and only its area
// escapes, so the per-pair false-area test allocates nothing in steady
// state.
func IntersectionArea(a, b geom.Ring) float64 {
	sc := clipPool.Get().(*clipScratch)
	defer clipPool.Put(sc)
	cur := append(sc.a[:0], a...)
	out := sc.b[:0]
	n := len(b)
	for i := 0; i < n && len(cur) > 0; i++ {
		out = clipHalfPlaneInto(out[:0], cur, b[i], b[(i+1)%n])
		cur, out = out, cur
	}
	sc.a, sc.b = cur, out // store back the grown capacities
	if len(cur) < 3 {
		return 0
	}
	return cur.Area()
}

// SATIntersects reports whether two convex counterclockwise rings share at
// least one point, via the separating-axis theorem: the rings are disjoint
// iff some edge normal of either ring separates their projections.
// Touching boundaries count as intersecting.
func SATIntersects(a, b geom.Ring) bool {
	if len(a) == 0 || len(b) == 0 {
		return false
	}
	return !hasSeparatingAxis(a, b) && !hasSeparatingAxis(b, a)
}

func hasSeparatingAxis(a, b geom.Ring) bool {
	n := len(a)
	for i := 0; i < n; i++ {
		p := a[i]
		q := a[(i+1)%n]
		// Outward normal of a CCW edge.
		nx := q.Y - p.Y
		ny := p.X - q.X
		maxA := math.Inf(-1)
		for _, v := range a {
			d := v.X*nx + v.Y*ny
			if d > maxA {
				maxA = d
			}
		}
		minB := math.Inf(1)
		for _, v := range b {
			d := v.X*nx + v.Y*ny
			if d < minB {
				minB = d
			}
		}
		if minB > maxA+geom.Eps {
			return true
		}
	}
	return false
}

// Distance returns the Euclidean distance between the closed convex
// regions bounded by two rings: 0 when they intersect (SAT), otherwise
// the smallest distance between their boundaries. Degenerate rings with
// fewer than three vertices are treated as the point or segment they
// span. The result is exact, so it serves as a sound lower bound of the
// object distance when the rings are conservative approximations and as
// a sound upper bound when they are progressive ones.
func Distance(a, b geom.Ring) float64 {
	if len(a) == 0 || len(b) == 0 {
		return math.Inf(1)
	}
	if len(a) >= 3 && len(b) >= 3 && SATIntersects(a, b) {
		return 0
	}
	d := math.Inf(1)
	for i := range a {
		ea := a.Edge(i)
		for j := range b {
			if dd := ea.DistToSegment(b.Edge(j)); dd < d {
				d = dd
			}
		}
	}
	return d
}
