package convex

import (
	"math"

	"spatialjoin/internal/geom"
)

// Support is a convex shape described by its support function: Support(d)
// returns an extreme point of the shape in direction d. GJK needs nothing
// else, which lets one intersection test cover every conservative
// approximation of section 3 — convex polygons (hull, 4-/5-corner, RMBR),
// minimum bounding circles and minimum bounding ellipses — uniformly.
type Support interface {
	// SupportPoint returns a point of the shape with maximal dot product
	// with d. d is never the zero vector.
	SupportPoint(d geom.Point) geom.Point
	// Centroid returns any interior point, used to seed the search
	// direction.
	Centroid() geom.Point
}

// PolygonSupport adapts a convex ring to the Support interface.
type PolygonSupport geom.Ring

// SupportPoint returns the ring vertex extreme in direction d.
func (p PolygonSupport) SupportPoint(d geom.Point) geom.Point {
	best := p[0]
	bestDot := best.Dot(d)
	for _, v := range p[1:] {
		if dot := v.Dot(d); dot > bestDot {
			bestDot = dot
			best = v
		}
	}
	return best
}

// Centroid returns the vertex average (interior for convex rings).
func (p PolygonSupport) Centroid() geom.Point {
	var c geom.Point
	for _, v := range p {
		c.X += v.X
		c.Y += v.Y
	}
	n := float64(len(p))
	return geom.Point{X: c.X / n, Y: c.Y / n}
}

// CircleSupport is a disk with center C and radius R.
type CircleSupport struct {
	C geom.Point
	R float64
}

// SupportPoint returns the disk boundary point extreme in direction d.
func (c CircleSupport) SupportPoint(d geom.Point) geom.Point {
	n := d.Norm()
	if n < geom.Eps {
		return c.C
	}
	return c.C.Add(d.Scale(c.R / n))
}

// Centroid returns the disk center.
func (c CircleSupport) Centroid() geom.Point { return c.C }

// EllipseSupport is the ellipse {C + B·u : |u| ≤ 1}, i.e. the image of the
// unit disk under the linear map B (stored row-major: [B00 B01; B10 B11]).
type EllipseSupport struct {
	C                  geom.Point
	B00, B01, B10, B11 float64
}

// SupportPoint returns the ellipse boundary point extreme in direction d:
// C + B·(Bᵀd)/|Bᵀd|.
func (e EllipseSupport) SupportPoint(d geom.Point) geom.Point {
	// Bᵀ d
	tx := e.B00*d.X + e.B10*d.Y
	ty := e.B01*d.X + e.B11*d.Y
	n := math.Hypot(tx, ty)
	if n < geom.Eps {
		return e.C
	}
	tx /= n
	ty /= n
	return geom.Point{
		X: e.C.X + e.B00*tx + e.B01*ty,
		Y: e.C.Y + e.B10*tx + e.B11*ty,
	}
}

// Centroid returns the ellipse center.
func (e EllipseSupport) Centroid() geom.Point { return e.C }

// Area returns the area of the ellipse, π·|det B|.
func (e EllipseSupport) Area() float64 {
	return math.Pi * math.Abs(e.B00*e.B11-e.B01*e.B10)
}

// ContainsPoint reports whether p lies in the closed ellipse, by mapping p
// back through B⁻¹ and checking the unit disk.
func (e EllipseSupport) ContainsPoint(p geom.Point) bool {
	det := e.B00*e.B11 - e.B01*e.B10
	if math.Abs(det) < geom.Eps {
		return false
	}
	dx := p.X - e.C.X
	dy := p.Y - e.C.Y
	ux := (e.B11*dx - e.B01*dy) / det
	uy := (-e.B10*dx + e.B00*dy) / det
	return ux*ux+uy*uy <= 1+1e-9
}

// gjkTolerance bounds the progress GJK requires per iteration; shapes
// closer than this are reported as intersecting, matching the
// closed-region join semantics where touching counts.
const gjkTolerance = 1e-12

// GJKIntersects reports whether two convex shapes share at least one point
// using the Gilbert–Johnson–Keerthi algorithm on the Minkowski difference.
// It terminates in a bounded number of iterations and treats distances
// below gjkTolerance as intersections.
func GJKIntersects(a, b Support) bool {
	support := func(d geom.Point) geom.Point {
		return a.SupportPoint(d).Sub(b.SupportPoint(geom.Point{X: -d.X, Y: -d.Y}))
	}
	d := b.Centroid().Sub(a.Centroid())
	if d.Norm() < geom.Eps {
		return true // identical centroids: shapes certainly overlap
	}
	simplex := make([]geom.Point, 0, 3)
	p := support(d)
	simplex = append(simplex, p)
	d = p.Scale(-1) // toward the origin
	for iter := 0; iter < 100; iter++ {
		if d.Norm() < gjkTolerance {
			return true // origin on the current simplex boundary
		}
		p = support(d)
		if p.Dot(d) < -gjkTolerance {
			return false // support point did not pass the origin: separated
		}
		simplex = append(simplex, p)
		var contains bool
		simplex, d, contains = nextSimplex(simplex)
		if contains {
			return true
		}
	}
	// No convergence within the iteration budget: the origin is at the
	// boundary within floating-point noise; report intersection, which is
	// the conservative answer for a conservative-approximation filter.
	return true
}

// nextSimplex reduces the simplex to the lowest-dimensional feature
// closest to the origin and returns the next search direction. contains is
// true when the simplex encloses the origin.
func nextSimplex(s []geom.Point) ([]geom.Point, geom.Point, bool) {
	switch len(s) {
	case 2:
		b, a := s[0], s[1] // a is the most recently added point
		ab := b.Sub(a)
		ao := a.Scale(-1)
		if ab.Dot(ao) > 0 {
			// Origin is beside the segment: search perpendicular to ab
			// toward the origin.
			d := tripleProduct(ab, ao, ab)
			if d.Norm() < gjkTolerance {
				// Origin on the segment line.
				return s, d, true
			}
			return s, d, false
		}
		return []geom.Point{a}, ao, false
	case 3:
		c, b, a := s[0], s[1], s[2]
		ab := b.Sub(a)
		ac := c.Sub(a)
		ao := a.Scale(-1)
		abPerp := tripleProduct(ac, ab, ab) // perpendicular to ab, away from c
		acPerp := tripleProduct(ab, ac, ac) // perpendicular to ac, away from b
		if abPerp.Dot(ao) > gjkTolerance {
			return []geom.Point{b, a}, abPerp, false
		}
		if acPerp.Dot(ao) > gjkTolerance {
			return []geom.Point{c, a}, acPerp, false
		}
		return s, geom.Point{}, true // origin inside the triangle
	default:
		return s, s[0].Scale(-1), false
	}
}

// tripleProduct returns (a × b) × c in 2D: a vector perpendicular to c in
// the plane, oriented by a and b.
func tripleProduct(a, b, c geom.Point) geom.Point {
	z := a.CrossVec(b)
	return geom.Point{X: -z * c.Y, Y: z * c.X}
}
