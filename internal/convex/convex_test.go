package convex

import (
	"math"
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
)

func randPts(rng *rand.Rand, n int, scale float64) []geom.Point {
	pts := make([]geom.Point, n)
	for i := range pts {
		pts[i] = geom.Point{X: rng.Float64() * scale, Y: rng.Float64() * scale}
	}
	return pts
}

func TestHullSquare(t *testing.T) {
	pts := []geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}, {X: 0.5, Y: 0.5}, {X: 0.25, Y: 0.75}}
	h := Hull(pts)
	if len(h) != 4 {
		t.Fatalf("hull of square + interior points: len = %d, want 4", len(h))
	}
	if !h.IsCCW() {
		t.Error("hull must be counterclockwise")
	}
	if !h.IsConvex() {
		t.Error("hull must be convex")
	}
}

func TestHullDegenerate(t *testing.T) {
	if h := Hull(nil); h != nil {
		t.Error("empty input must give nil hull")
	}
	h := Hull([]geom.Point{{X: 1, Y: 1}})
	if len(h) != 1 {
		t.Errorf("single point hull: len = %d", len(h))
	}
	h = Hull([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 1}, {X: 2, Y: 2}, {X: 1, Y: 1}})
	if len(h) > 2 {
		t.Errorf("collinear points hull: len = %d, want <= 2", len(h))
	}
	// Duplicates collapse.
	h = Hull([]geom.Point{{X: 0, Y: 0}, {X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}})
	if len(h) != 3 {
		t.Errorf("hull with duplicates: len = %d, want 3", len(h))
	}
}

func TestHullPropertyContainsAll(t *testing.T) {
	rng := rand.New(rand.NewSource(3))
	for trial := 0; trial < 60; trial++ {
		pts := randPts(rng, 5+rng.Intn(100), 10)
		h := Hull(pts)
		if len(h) < 3 {
			continue
		}
		if !h.IsConvex() || !h.IsCCW() {
			t.Fatal("hull must be convex and CCW")
		}
		for _, p := range pts {
			if !h.ContainsPoint(p) {
				t.Fatalf("hull must contain every input point; missing %v", p)
			}
		}
		// Every hull vertex is an input point.
		for _, v := range h {
			found := false
			for _, p := range pts {
				if p == v {
					found = true
					break
				}
			}
			if !found {
				t.Fatalf("hull vertex %v is not an input point", v)
			}
		}
	}
}

func TestMinAreaRectAxisAligned(t *testing.T) {
	h := Hull([]geom.Point{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 2}, {X: 0, Y: 2}})
	o := MinAreaRect(h)
	if !almostEq(o.Area(), 8, 1e-9) {
		t.Errorf("Area = %v, want 8", o.Area())
	}
	for _, p := range h {
		if !o.ContainsPoint(p) {
			t.Errorf("RMBR must contain hull vertex %v", p)
		}
	}
}

func TestMinAreaRectRotated(t *testing.T) {
	// A 45°-rotated 2×1 rectangle: the RMBR should recover area 2, while
	// the axis-parallel MBR has area (3/√2)·(3/√2) = 4.5.
	base := []geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 1}, {X: 0, Y: 1}}
	rot := make([]geom.Point, len(base))
	for i, p := range base {
		rot[i] = p.Rotate(math.Pi / 4)
	}
	o := MinAreaRect(Hull(rot))
	if !almostEq(o.Area(), 2, 1e-9) {
		t.Errorf("rotated RMBR area = %v, want 2", o.Area())
	}
	mbr := geom.RectFromPoints(rot...)
	if o.Area() >= mbr.Area() {
		t.Errorf("RMBR area %v must beat MBR area %v", o.Area(), mbr.Area())
	}
}

func TestMinAreaRectPropertyConservative(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 60; trial++ {
		pts := randPts(rng, 4+rng.Intn(60), 5)
		h := Hull(pts)
		if len(h) < 3 {
			continue
		}
		o := MinAreaRect(h)
		for _, p := range pts {
			if !o.ContainsPoint(p) {
				t.Fatalf("RMBR must contain %v", p)
			}
		}
		mbr := geom.RectFromPoints(pts...)
		if o.Area() > mbr.Area()+1e-9 {
			t.Fatalf("RMBR area %v exceeds MBR area %v", o.Area(), mbr.Area())
		}
		if o.Area()+1e-9 < h.Area() {
			t.Fatalf("RMBR area %v below hull area %v", o.Area(), h.Area())
		}
	}
}

func TestMinBoundingKGon(t *testing.T) {
	rng := rand.New(rand.NewSource(9))
	for trial := 0; trial < 40; trial++ {
		pts := randPts(rng, 10+rng.Intn(80), 3)
		h := Hull(pts)
		if len(h) < 6 {
			continue
		}
		for _, k := range []int{4, 5} {
			g := MinBoundingKGon(h, k)
			if len(g) > k {
				t.Fatalf("k-gon has %d > %d vertices", len(g), k)
			}
			if !g.IsConvex() {
				t.Fatalf("k-gon must be convex")
			}
			for _, p := range h {
				if !g.ContainsPoint(p) {
					t.Fatalf("k=%d gon must contain hull vertex %v (trial %d)", k, p, trial)
				}
			}
			if g.Area()+1e-9 < h.Area() {
				t.Fatalf("k-gon area below hull area")
			}
		}
		// More corners allowed => no worse area.
		g4 := MinBoundingKGon(h, 4)
		g5 := MinBoundingKGon(h, 5)
		if g5.Area() > g4.Area()+1e-9 {
			t.Fatalf("5-gon area %v must not exceed 4-gon area %v", g5.Area(), g4.Area())
		}
	}
}

func TestMinBoundingKGonSmallHull(t *testing.T) {
	h := Hull([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}})
	g := MinBoundingKGon(h, 5)
	if len(g) != 3 {
		t.Errorf("hull with 3 vertices should be returned as-is, got %d", len(g))
	}
}

func TestClip(t *testing.T) {
	a := geom.NewRing([]geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}})
	b := geom.NewRing([]geom.Point{{X: 1, Y: 1}, {X: 3, Y: 1}, {X: 3, Y: 3}, {X: 1, Y: 3}})
	got := IntersectionArea(a, b)
	if !almostEq(got, 1, 1e-9) {
		t.Errorf("IntersectionArea = %v, want 1", got)
	}
	// Disjoint.
	c := geom.NewRing([]geom.Point{{X: 5, Y: 5}, {X: 6, Y: 5}, {X: 6, Y: 6}, {X: 5, Y: 6}})
	if area := IntersectionArea(a, c); area != 0 {
		t.Errorf("disjoint IntersectionArea = %v, want 0", area)
	}
	// Containment.
	d := geom.NewRing([]geom.Point{{X: 0.5, Y: 0.5}, {X: 1.5, Y: 0.5}, {X: 1.5, Y: 1.5}, {X: 0.5, Y: 1.5}})
	if area := IntersectionArea(a, d); !almostEq(area, 1, 1e-9) {
		t.Errorf("contained IntersectionArea = %v, want 1", area)
	}
}

func TestClipPropertyAgainstRects(t *testing.T) {
	rng := rand.New(rand.NewSource(21))
	for trial := 0; trial < 200; trial++ {
		r1 := geom.Rect{MinX: rng.Float64(), MinY: rng.Float64()}
		r1.MaxX = r1.MinX + rng.Float64()*2
		r1.MaxY = r1.MinY + rng.Float64()*2
		r2 := geom.Rect{MinX: rng.Float64(), MinY: rng.Float64()}
		r2.MaxX = r2.MinX + rng.Float64()*2
		r2.MaxY = r2.MinY + rng.Float64()*2
		c1 := r1.Corners()
		c2 := r2.Corners()
		ring1 := geom.Ring(c1[:])
		ring2 := geom.Ring(c2[:])
		want := r1.OverlapArea(r2)
		got := IntersectionArea(ring1, ring2)
		if !almostEq(got, want, 1e-9) {
			t.Fatalf("IntersectionArea = %v, want %v (rects %v %v)", got, want, r1, r2)
		}
	}
}

func TestSATIntersects(t *testing.T) {
	a := geom.NewRing([]geom.Point{{X: 0, Y: 0}, {X: 2, Y: 0}, {X: 2, Y: 2}, {X: 0, Y: 2}})
	b := geom.NewRing([]geom.Point{{X: 1, Y: 1}, {X: 3, Y: 1}, {X: 3, Y: 3}, {X: 1, Y: 3}})
	c := geom.NewRing([]geom.Point{{X: 5, Y: 5}, {X: 6, Y: 5}, {X: 6, Y: 6}, {X: 5, Y: 6}})
	touch := geom.NewRing([]geom.Point{{X: 2, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 2}, {X: 2, Y: 2}})
	if !SATIntersects(a, b) {
		t.Error("overlapping rings must intersect")
	}
	if SATIntersects(a, c) {
		t.Error("disjoint rings must not intersect")
	}
	if !SATIntersects(a, touch) {
		t.Error("touching rings must intersect (closed semantics)")
	}
	inner := geom.NewRing([]geom.Point{{X: 0.5, Y: 0.5}, {X: 1, Y: 0.5}, {X: 1, Y: 1}})
	if !SATIntersects(a, inner) || !SATIntersects(inner, a) {
		t.Error("containment must intersect")
	}
}

func TestSATAgainstClip(t *testing.T) {
	rng := rand.New(rand.NewSource(33))
	for trial := 0; trial < 300; trial++ {
		h1 := Hull(randPts(rng, 3+rng.Intn(10), 2))
		h2t := Hull(randPts(rng, 3+rng.Intn(10), 2))
		if len(h1) < 3 || len(h2t) < 3 {
			continue
		}
		dx := rng.Float64()*4 - 2
		h2 := h2t.Translate(dx, rng.Float64()*4-2)
		sat := SATIntersects(h1, h2)
		area := IntersectionArea(h1, h2)
		// SAT true with zero area is possible for touching; SAT false
		// requires zero area.
		if !sat && area > 1e-9 {
			t.Fatalf("SAT says disjoint but intersection area = %v", area)
		}
		if sat && area == 0 {
			// Verify it's at most a touching configuration: grow one ring
			// slightly and the area must become positive, or they are at
			// distance ~0.
			continue
		}
	}
}

func TestGJKPolygons(t *testing.T) {
	rng := rand.New(rand.NewSource(44))
	agree := 0
	for trial := 0; trial < 500; trial++ {
		h1 := Hull(randPts(rng, 3+rng.Intn(12), 2))
		h2t := Hull(randPts(rng, 3+rng.Intn(12), 2))
		if len(h1) < 3 || len(h2t) < 3 {
			continue
		}
		h2 := h2t.Translate(rng.Float64()*5-2.5, rng.Float64()*5-2.5)
		sat := SATIntersects(h1, h2)
		gjk := GJKIntersects(PolygonSupport(h1), PolygonSupport(h2))
		if sat != gjk {
			// Tolerate disagreement only in near-touching configurations.
			area := IntersectionArea(h1, h2)
			if area > 1e-9 {
				t.Fatalf("trial %d: SAT=%v GJK=%v with area %v", trial, sat, gjk, area)
			}
			continue
		}
		agree++
	}
	if agree < 400 {
		t.Fatalf("GJK agreed with SAT only %d times", agree)
	}
}

func TestGJKCircles(t *testing.T) {
	a := CircleSupport{C: geom.Point{X: 0, Y: 0}, R: 1}
	b := CircleSupport{C: geom.Point{X: 3, Y: 0}, R: 1}
	if GJKIntersects(a, b) {
		t.Error("disjoint circles must not intersect")
	}
	c := CircleSupport{C: geom.Point{X: 1.5, Y: 0}, R: 1}
	if !GJKIntersects(a, c) {
		t.Error("overlapping circles must intersect")
	}
	// Circle vs polygon.
	ring := geom.NewRing([]geom.Point{{X: 2, Y: -1}, {X: 4, Y: -1}, {X: 4, Y: 1}, {X: 2, Y: 1}})
	if GJKIntersects(a, PolygonSupport(ring)) {
		t.Error("circle at distance 1 from polygon edge must not intersect")
	}
	big := CircleSupport{C: geom.Point{X: 0, Y: 0}, R: 2.5}
	if !GJKIntersects(big, PolygonSupport(ring)) {
		t.Error("large circle must reach the polygon")
	}
}

func TestGJKCirclesPropertyMatchesAnalytic(t *testing.T) {
	rng := rand.New(rand.NewSource(55))
	for trial := 0; trial < 1000; trial++ {
		a := CircleSupport{C: geom.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4}, R: 0.1 + rng.Float64()}
		b := CircleSupport{C: geom.Point{X: rng.Float64() * 4, Y: rng.Float64() * 4}, R: 0.1 + rng.Float64()}
		want := a.C.Dist(b.C) <= a.R+b.R
		got := GJKIntersects(a, b)
		if got != want {
			gap := math.Abs(a.C.Dist(b.C) - (a.R + b.R))
			if gap > 1e-6 {
				t.Fatalf("trial %d: GJK=%v analytic=%v gap=%v", trial, got, want, gap)
			}
		}
	}
}

func TestEllipseSupport(t *testing.T) {
	// Axis-aligned ellipse with semi-axes 2 and 1.
	e := EllipseSupport{C: geom.Point{X: 0, Y: 0}, B00: 2, B11: 1}
	if !almostEq(e.Area(), 2*math.Pi, 1e-9) {
		t.Errorf("Area = %v, want 2π", e.Area())
	}
	if !e.ContainsPoint(geom.Point{X: 2, Y: 0}) || !e.ContainsPoint(geom.Point{X: 0, Y: 1}) {
		t.Error("ellipse must contain its axis endpoints")
	}
	if e.ContainsPoint(geom.Point{X: 2.01, Y: 0}) {
		t.Error("point beyond the major axis must be outside")
	}
	sp := e.SupportPoint(geom.Point{X: 1, Y: 0})
	if !almostEq(sp.X, 2, 1e-9) || !almostEq(sp.Y, 0, 1e-9) {
		t.Errorf("support in +x = %v, want (2,0)", sp)
	}
	// Ellipse-ellipse via GJK.
	f := EllipseSupport{C: geom.Point{X: 5, Y: 0}, B00: 2, B11: 1}
	if GJKIntersects(e, f) {
		t.Error("ellipses 5 apart with semi-major 2 must not intersect")
	}
	g := EllipseSupport{C: geom.Point{X: 3, Y: 0}, B00: 2, B11: 1}
	if !GJKIntersects(e, g) {
		t.Error("ellipses 3 apart with semi-major 2 must intersect")
	}
}

func almostEq(a, b, tol float64) bool { return math.Abs(a-b) <= tol }
