// Package plan is the cost-based adaptive query planner: the System-R
// recipe (statistics → selectivity → cheapest access path) applied to the
// paper's multi-step join processor. The seed's internal/costmodel
// reproduces section 5's *descriptive* model — it explains a measured
// run after the fact. This package is the *prescriptive* counterpart:
// per-relation statistics collected at build time, a histogram-overlap
// selectivity estimator for the step 1 candidate count, calibrated cost
// weights per plan point, and an exhaustive search over the small plan
// space (exact engine × filter on/off × worker count × emission mode)
// that picks the cheapest predicted configuration for one join.
//
// The package is a leaf: it imports only internal/geom, so the multistep
// processor can consult it without an import cycle. All inputs are plain
// statistics; the bridge from multistep.Relation is on the multistep
// side (Relation.Stats), and internal/costmodel.CalibratedParams bridges
// the calibrated weights back into the paper's section 5 units.
//
// Estimates feed back: after every completed join the observed candidate
// count, filter identification rate and hit rate update per-relation
// EWMAs (Observe), so systematic estimator bias — skew the grid cannot
// see, workload-specific filter behaviour — corrects itself over a few
// runs. The EWMAs are persisted with the statistics in the relation
// store, so a reopened relation starts from what its history taught it.
package plan

import (
	"math"
	"sync/atomic"

	"spatialjoin/internal/geom"
)

// GridDim is the per-axis resolution of the MBR-center density
// histogram. 16×16 cells keep the histogram at 2 KiB per relation while
// resolving the skew that matters for tile-sized relations; the
// selectivity estimate visits GridDim⁴ cell pairs (65 536), a few tens
// of microseconds — negligible against the joins being planned.
const GridDim = 16

// Pred mirrors the multistep predicate kinds (the planner must not
// import multistep). The numeric values match multistep's predKind.
type Pred int

// The plannable predicates.
const (
	PredIntersects Pred = iota
	PredContains
	PredWithin
	numPreds
)

// Stats are the per-relation statistics the planner estimates from:
// computed once at build time (ComputeStats), persisted in the relation
// store, and recomputed on open for stores predating the statistics
// section. The feedback EWMAs are the only mutable part and are safe for
// concurrent use.
type Stats struct {
	// Objects is the relation cardinality.
	Objects int64
	// MBR is the data space: the union of the object MBRs.
	MBR geom.Rect
	// MeanW and MeanH are the mean MBR extents. Together with the grid
	// they carry the Minkowski-style intersection test of the estimator:
	// two MBRs intersect iff their centers are within (wa+wb)/2 per axis.
	MeanW, MeanH float64
	// MeanVerts is the mean vertex count — the exact-test cost scale.
	MeanVerts float64
	// Grid is the GridDim×GridDim histogram of MBR-center counts over
	// MBR, row-major (x fastest). Float so future partitioners can store
	// fractional assignments.
	Grid []float64

	fb feedback
}

// feedback holds the per-predicate EWMAs updated by Observe. Values are
// float64 bits in atomics: observations arrive from concurrent joins.
// A zero word means "no observation yet".
type feedback struct {
	runs      atomic.Int64
	candRatio [numPreds]atomic.Uint64 // observed/predicted candidate count
	ident     [numPreds]atomic.Uint64 // fraction of candidates the filter decided
	hitFrac   [numPreds]atomic.Uint64 // fraction of candidates in the response set
	cacheHit  atomic.Uint64           // serving-layer result-cache hit rate
}

// ewmaAlpha weights a new observation against the running average. 0.3
// converges in a handful of runs without letting one outlier dominate.
const ewmaAlpha = 0.3

func ewmaStore(w *atomic.Uint64, v float64) {
	if math.IsNaN(v) || math.IsInf(v, 0) {
		return
	}
	for {
		old := w.Load()
		next := v
		if old != 0 {
			next = (1-ewmaAlpha)*math.Float64frombits(old) + ewmaAlpha*v
		}
		if w.CompareAndSwap(old, math.Float64bits(next)) {
			return
		}
	}
}

func ewmaLoad(w *atomic.Uint64, def float64) float64 {
	if bits := w.Load(); bits != 0 {
		return math.Float64frombits(bits)
	}
	return def
}

// Observe feeds one completed join back into the relation's EWMAs.
// predicted ≤ 0 skips the candidate-ratio update (the run was not
// planned), ident < 0 skips the identification update (the filter was
// off), hitFrac < 0 skips the hit-rate update (no candidates).
func (s *Stats) Observe(p Pred, predicted, actual, ident, hitFrac float64) {
	if s == nil || p < 0 || p >= numPreds {
		return
	}
	s.fb.runs.Add(1)
	if predicted > 0 && actual >= 0 {
		ratio := actual / predicted
		// Clamp: one degenerate estimate must not poison the EWMA.
		ratio = math.Max(0.05, math.Min(20, ratio))
		ewmaStore(&s.fb.candRatio[p], ratio)
	}
	if ident >= 0 {
		ewmaStore(&s.fb.ident[p], math.Min(1, ident))
	}
	if hitFrac >= 0 {
		ewmaStore(&s.fb.hitFrac[p], math.Min(1, hitFrac))
	}
}

// Runs returns the number of observations fed back so far.
func (s *Stats) Runs() int64 {
	if s == nil {
		return 0
	}
	return s.fb.runs.Load()
}

// CandCorrection returns the EWMA of observed/predicted candidates for
// the predicate, or 1 with no history.
func (s *Stats) CandCorrection(p Pred) float64 {
	if s == nil || p < 0 || p >= numPreds {
		return 1
	}
	return ewmaLoad(&s.fb.candRatio[p], 1)
}

// IdentRate returns the EWMA filter identification rate, or def.
func (s *Stats) IdentRate(p Pred, def float64) float64 {
	if s == nil || p < 0 || p >= numPreds {
		return def
	}
	return ewmaLoad(&s.fb.ident[p], def)
}

// ObserveCacheLookup feeds one serving-layer result-cache lookup
// against this relation into the cache-hit EWMA. Unlike the join
// feedback EWMAs this one is not persisted in the relation stores: hit
// rates describe the current serving session's traffic, not the data.
func (s *Stats) ObserveCacheLookup(hit bool) {
	if s == nil {
		return
	}
	v := 0.0
	if hit {
		v = 1.0
	}
	ewmaStore(&s.fb.cacheHit, v)
}

// CacheHitRate returns the EWMA of serving-layer result-cache lookups
// against this relation, or 0 with no history. Because ewmaStore treats
// a zero word as "no observation", an all-miss history decays toward
// but never reaches zero — which is fine: the rate only matters near 1.
func (s *Stats) CacheHitRate() float64 {
	if s == nil {
		return 0
	}
	return ewmaLoad(&s.fb.cacheHit, 0)
}

// HitFrac returns the EWMA response-pairs-per-candidate rate, or def.
func (s *Stats) HitFrac(p Pred, def float64) float64 {
	if s == nil || p < 0 || p >= numPreds {
		return def
	}
	return ewmaLoad(&s.fb.hitFrac[p], def)
}

// ComputeStats builds the statistics of a relation of n objects; rect
// and verts deliver the MBR and vertex count of object i. One pass, no
// allocation beyond the histogram — cheap enough to run unconditionally
// at build and open time.
func ComputeStats(n int, rect func(int) geom.Rect, verts func(int) int) *Stats {
	s := &Stats{Objects: int64(n), Grid: make([]float64, GridDim*GridDim)}
	if n == 0 {
		// Keep the zero Rect rather than EmptyRect(): the ±Inf empty
		// sentinel is not representable in the stats codec.
		return s
	}
	s.MBR = geom.EmptyRect()
	for i := 0; i < n; i++ {
		r := rect(i)
		s.MBR = s.MBR.Union(r)
		s.MeanW += r.Width()
		s.MeanH += r.Height()
		s.MeanVerts += float64(verts(i))
	}
	inv := 1 / float64(n)
	s.MeanW *= inv
	s.MeanH *= inv
	s.MeanVerts *= inv
	for i := 0; i < n; i++ {
		c := rect(i).Center()
		s.Grid[cellIndex(s.MBR, c)]++
	}
	return s
}

// cellIndex maps a point onto the histogram cell, clamping to the edge
// cells (degenerate axes collapse to cell 0 on that axis).
func cellIndex(mbr geom.Rect, p geom.Point) int {
	return cellCoord(mbr.MinX, mbr.MaxX, p.X) + GridDim*cellCoord(mbr.MinY, mbr.MaxY, p.Y)
}

func cellCoord(lo, hi, v float64) int {
	if hi <= lo {
		return 0
	}
	c := int((v - lo) / (hi - lo) * GridDim)
	if c < 0 {
		c = 0
	}
	if c >= GridDim {
		c = GridDim - 1
	}
	return c
}

// EstimateCandidates predicts the step 1 candidate count of the MBR join
// of two relations under the given predicate: the histogram-overlap
// selectivity over the two center histograms, with the mean-extent
// Minkowski threshold (two MBRs intersect iff their centers are within
// (wa+wb)/2 + ε per axis), corrected by the relations' feedback EWMAs.
// The inclusion predicate's MBR-nesting pretest is modelled as a
// constant nesting prior on top of the intersection estimate, corrected
// by the same feedback.
func EstimateCandidates(r, s *Stats, p Pred, eps float64, w Weights) float64 {
	if r == nil || s == nil || r.Objects == 0 || s.Objects == 0 {
		return 0
	}
	tx := (r.MeanW+s.MeanW)/2 + eps
	ty := (r.MeanH+s.MeanH)/2 + eps

	// Per-axis probability tables: px[a][b] = P(|Xa−Xb| ≤ tx) with Xa
	// uniform in R-grid column a and Xb uniform in S-grid column b.
	var px, py [GridDim][GridDim]float64
	for a := 0; a < GridDim; a++ {
		ra1, ra2 := cellInterval(r.MBR.MinX, r.MBR.MaxX, a)
		rb1, rb2 := cellInterval(r.MBR.MinY, r.MBR.MaxY, a)
		for b := 0; b < GridDim; b++ {
			sa1, sa2 := cellInterval(s.MBR.MinX, s.MBR.MaxX, b)
			sb1, sb2 := cellInterval(s.MBR.MinY, s.MBR.MaxY, b)
			px[a][b] = probWithin(ra1, ra2, sa1, sa2, tx)
			py[a][b] = probWithin(rb1, rb2, sb1, sb2, ty)
		}
	}

	// Collapse the 2D sum into marginals per (row, column) pair: the
	// center histograms are row-major GridDim×GridDim, so the full sum
	// Σ nR(a)·nS(b)·px·py factors through per-row column sums.
	var est float64
	for ry := 0; ry < GridDim; ry++ {
		for sy := 0; sy < GridDim; sy++ {
			pyv := py[ry][sy]
			if pyv == 0 {
				continue
			}
			var rowSum float64
			for rx := 0; rx < GridDim; rx++ {
				nr := r.Grid[ry*GridDim+rx]
				if nr == 0 {
					continue
				}
				var acc float64
				for sx := 0; sx < GridDim; sx++ {
					acc += s.Grid[sy*GridDim+sx] * px[rx][sx]
				}
				rowSum += nr * acc
			}
			est += rowSum * pyv
		}
	}

	if p == PredContains {
		est *= w.ContainPrior
	}
	// Geometric mean of the two sides' corrections: each EWMA saw the
	// same joint ratio, so averaging in log space avoids double counting.
	est *= math.Sqrt(r.CandCorrection(p) * s.CandCorrection(p))
	return est
}

// cellInterval returns the i-th of GridDim equal subintervals of
// [lo, hi]. A degenerate axis yields the point interval [lo, lo].
func cellInterval(lo, hi float64, i int) (float64, float64) {
	if hi <= lo {
		return lo, lo
	}
	w := (hi - lo) / GridDim
	return lo + float64(i)*w, lo + float64(i+1)*w
}

// probWithin returns P(|X−Y| ≤ t) for X ~ U[a1,a2], Y ~ U[b1,b2],
// exactly: the integrand m(y) = max(0, min(a2, y+t) − max(a1, y−t)) is
// piecewise linear with breakpoints at a1±t and a2±t, so the trapezoid
// rule over the breakpoints inside [b1, b2] integrates it without error.
func probWithin(a1, a2, b1, b2, t float64) float64 {
	if t < 0 {
		return 0
	}
	la, lb := a2-a1, b2-b1
	switch {
	case la <= 0 && lb <= 0:
		if math.Abs(a1-b1) <= t {
			return 1
		}
		return 0
	case la <= 0:
		return clamp01(overlap(b1, b2, a1-t, a1+t) / lb)
	case lb <= 0:
		return clamp01(overlap(a1, a2, b1-t, b1+t) / la)
	}
	m := func(y float64) float64 {
		v := math.Min(a2, y+t) - math.Max(a1, y-t)
		if v < 0 {
			return 0
		}
		return v
	}
	bps := [4]float64{a2 - t, a1 + t, a1 - t, a2 + t}
	// Insertion-sort the four breakpoints (clipped later): tiny and
	// allocation-free.
	for i := 1; i < len(bps); i++ {
		for j := i; j > 0 && bps[j] < bps[j-1]; j-- {
			bps[j], bps[j-1] = bps[j-1], bps[j]
		}
	}
	total := 0.0
	prev := b1
	for _, bp := range bps {
		if bp <= prev || bp >= b2 {
			continue
		}
		total += (m(prev) + m(bp)) / 2 * (bp - prev)
		prev = bp
	}
	total += (m(prev) + m(b2)) / 2 * (b2 - prev)
	return clamp01(total / (la * lb))
}

// overlap returns the length of [a1,a2] ∩ [b1,b2].
func overlap(a1, a2, b1, b2 float64) float64 {
	lo, hi := math.Max(a1, b1), math.Min(a2, b2)
	if hi <= lo {
		return 0
	}
	return hi - lo
}

func clamp01(v float64) float64 {
	if v < 0 {
		return 0
	}
	if v > 1 {
		return 1
	}
	return v
}
