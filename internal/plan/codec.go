package plan

import (
	"encoding/binary"
	"fmt"
	"math"
	"sync/atomic"
)

// The statistics blob is embedded (length-prefixed) inside the SJRL
// relation store and the SJSM shard manifest. It carries its own magic
// and version so the container formats can evolve independently; the
// feedback EWMAs are persisted too, so a reopened relation resumes from
// what its run history taught it.
const (
	statsMagic   = 0x534A5053 // "SJPS"
	statsVersion = 1
)

// AppendStats serializes a snapshot of the statistics (including the
// current feedback EWMAs) onto buf.
func AppendStats(buf []byte, s *Stats) []byte {
	var u64 [8]byte
	pu64 := func(v uint64) {
		binary.BigEndian.PutUint64(u64[:], v)
		buf = append(buf, u64[:]...)
	}
	pf64 := func(v float64) { pu64(math.Float64bits(v)) }

	var u32 [4]byte
	binary.BigEndian.PutUint32(u32[:], statsMagic)
	buf = append(buf, u32[:]...)
	binary.BigEndian.PutUint16(u32[:2], statsVersion)
	buf = append(buf, u32[:2]...)
	pu64(uint64(s.Objects))
	pf64(s.MBR.MinX)
	pf64(s.MBR.MinY)
	pf64(s.MBR.MaxX)
	pf64(s.MBR.MaxY)
	pf64(s.MeanW)
	pf64(s.MeanH)
	pf64(s.MeanVerts)
	binary.BigEndian.PutUint16(u32[:2], GridDim)
	buf = append(buf, u32[:2]...)
	binary.BigEndian.PutUint16(u32[:2], GridDim)
	buf = append(buf, u32[:2]...)
	for _, v := range s.Grid {
		pf64(v)
	}
	pu64(uint64(s.fb.runs.Load()))
	for p := 0; p < int(numPreds); p++ {
		pu64(s.fb.candRatio[p].Load())
		pu64(s.fb.ident[p].Load())
		pu64(s.fb.hitFrac[p].Load())
	}
	return buf
}

// DecodeStats parses a statistics blob. It validates the magic, version
// and histogram dimensions before allocating, so corrupt input errors
// without panicking or over-allocating; trailing bytes are an error
// (the container frames the blob with an exact length).
func DecodeStats(b []byte) (*Stats, error) {
	gu64 := func() (uint64, error) {
		if len(b) < 8 {
			return 0, fmt.Errorf("plan: stats blob truncated")
		}
		v := binary.BigEndian.Uint64(b[:8])
		b = b[8:]
		return v, nil
	}
	gf64 := func() (float64, error) {
		v, err := gu64()
		return math.Float64frombits(v), err
	}
	gu16 := func() (uint16, error) {
		if len(b) < 2 {
			return 0, fmt.Errorf("plan: stats blob truncated")
		}
		v := binary.BigEndian.Uint16(b[:2])
		b = b[2:]
		return v, nil
	}

	if len(b) < 6 {
		return nil, fmt.Errorf("plan: stats blob too short (%d bytes)", len(b))
	}
	if m := binary.BigEndian.Uint32(b[:4]); m != statsMagic {
		return nil, fmt.Errorf("plan: bad stats magic %#x", m)
	}
	b = b[4:]
	if v := binary.BigEndian.Uint16(b[:2]); v != statsVersion {
		return nil, fmt.Errorf("plan: unsupported stats version %d", v)
	}
	b = b[2:]

	s := &Stats{}
	objects, err := gu64()
	if err != nil {
		return nil, err
	}
	if objects > math.MaxInt64 {
		return nil, fmt.Errorf("plan: invalid object count %d", objects)
	}
	s.Objects = int64(objects)
	fields := []*float64{
		&s.MBR.MinX, &s.MBR.MinY, &s.MBR.MaxX, &s.MBR.MaxY,
		&s.MeanW, &s.MeanH, &s.MeanVerts,
	}
	for _, f := range fields {
		if *f, err = gf64(); err != nil {
			return nil, err
		}
		if math.IsNaN(*f) || math.IsInf(*f, 0) {
			return nil, fmt.Errorf("plan: non-finite statistic in blob")
		}
	}
	gw, err := gu16()
	if err != nil {
		return nil, err
	}
	gh, err := gu16()
	if err != nil {
		return nil, err
	}
	if gw != GridDim || gh != GridDim {
		return nil, fmt.Errorf("plan: unsupported histogram dimensions %d×%d", gw, gh)
	}
	// The remaining payload has a fixed size; check it up front so a
	// lying header cannot trigger a large allocation before failing.
	want := GridDim*GridDim*8 + 8 + int(numPreds)*3*8
	if len(b) != want {
		return nil, fmt.Errorf("plan: stats payload is %d bytes, want %d", len(b), want)
	}
	s.Grid = make([]float64, GridDim*GridDim)
	for i := range s.Grid {
		v, err := gf64()
		if err != nil {
			return nil, err
		}
		if math.IsNaN(v) || math.IsInf(v, 0) || v < 0 {
			return nil, fmt.Errorf("plan: invalid histogram count at cell %d", i)
		}
		s.Grid[i] = v
	}
	runs, err := gu64()
	if err != nil {
		return nil, err
	}
	if runs > math.MaxInt64 {
		return nil, fmt.Errorf("plan: invalid run count %d", runs)
	}
	s.fb.runs.Store(int64(runs))
	for p := 0; p < int(numPreds); p++ {
		for _, slot := range [3]*atomic.Uint64{&s.fb.candRatio[p], &s.fb.ident[p], &s.fb.hitFrac[p]} {
			bits, err := gu64()
			if err != nil {
				return nil, err
			}
			if f := math.Float64frombits(bits); bits != 0 && (math.IsNaN(f) || math.IsInf(f, 0) || f < 0) {
				return nil, fmt.Errorf("plan: invalid feedback EWMA in blob")
			}
			slot.Store(bits)
		}
	}
	return s, nil
}
