package plan

import (
	"bytes"
	"testing"
)

// FuzzDecodeStats feeds arbitrary bytes to the statistics codec:
// corrupt input must error without panicking or over-allocating, and
// every blob that decodes must re-encode byte-identically (the format
// has a single canonical encoding).
func FuzzDecodeStats(f *testing.F) {
	f.Add([]byte{})
	f.Add(AppendStats(nil, uniformStats(0, 1, 0, 0)))
	f.Add(AppendStats(nil, uniformStats(50, 2, 0.05, 0.02)))
	withFeedback := uniformStats(10, 3, 0.1, 0.1)
	withFeedback.Observe(PredWithin, 100, 250, 0.7, 0.4)
	f.Add(AppendStats(nil, withFeedback))
	f.Fuzz(func(t *testing.T, data []byte) {
		s, err := DecodeStats(data)
		if err != nil {
			return
		}
		if got := AppendStats(nil, s); !bytes.Equal(got, data) {
			t.Fatalf("decode→encode not canonical: %d bytes in, %d out", len(data), len(got))
		}
		// A decoded blob must be usable by the estimator without panics.
		_ = EstimateCandidates(s, s, PredIntersects, 0, DefaultWeights())
	})
}
