package plan_test

// The planner's headline guarantee, enforced here end to end: across
// the experiment grid (three predicates × three exact engines × filter
// on/off), the planner-chosen execution is never worse than 1.5× the
// best static configuration, and strictly better than the worst one
// whenever the grid has a meaningful spread. The bit-exactness test
// pins the override contract: a fully pinned planned join executes
// identically to the unplanned call.

import (
	"context"
	"reflect"
	"testing"
	"time"

	"spatialjoin/internal/data"
	"spatialjoin/internal/multistep"
)

// buildPair builds the regression workload: the section 5 style
// synthetic maps at the cost model's calibration vertex count.
func buildPair(t testing.TB, n int) (*multistep.Relation, *multistep.Relation, multistep.Config) {
	t.Helper()
	cfg := multistep.DefaultConfig()
	base := data.GenerateMap(data.MapConfig{Cells: n, TargetVerts: 48, Seed: 7321})
	shifted := data.StrategyA(base, 0.45)
	r := multistep.NewRelation("R", base, cfg)
	s := multistep.NewRelation("S", shifted, cfg)
	return r, s, cfg
}

// timeJoin returns the fastest of 1+reps runs of the join — the robust
// wall-clock estimator under scheduler noise (the first run doubles as
// the warm-up paying the lazy exact representations).
func timeJoin(t *testing.T, r, s *multistep.Relation, reps int, opts ...multistep.Option) time.Duration {
	t.Helper()
	opts = append(opts, multistep.WithBufferless())
	run := func() time.Duration {
		t0 := time.Now()
		if _, _, err := multistep.Join(context.Background(), r, s, opts...); err != nil {
			t.Fatal(err)
		}
		return time.Since(t0)
	}
	best := run()
	for i := 0; i < reps; i++ {
		if d := run(); d < best {
			best = d
		}
	}
	return best
}

var regressEngines = []multistep.Engine{
	multistep.EngineTRStar, multistep.EnginePlaneSweep, multistep.EngineQuadratic,
}

func regressPreds() []struct {
	name string
	pred multistep.Predicate
} {
	return []struct {
		name string
		pred multistep.Predicate
	}{
		{"intersects", multistep.Intersects()},
		{"within", multistep.WithinDistance(0.005)},
		{"contains", multistep.Contains()},
	}
}

// TestPlannerWithinBoundOfBestStatic is the 1.5× guarantee: for every
// predicate, the planner-chosen execution must cost at most 1.5× the
// best static engine×filter cell (plus a small absolute slack — at
// sub-millisecond cell times the ratio alone is scheduler noise), and
// must strictly beat the worst static cell whenever the grid spreads
// by more than 2×.
func TestPlannerWithinBoundOfBestStatic(t *testing.T) {
	n, reps := 600, 3
	if testing.Short() {
		n, reps = 400, 2
	}
	r, s, cfg := buildPair(t, n)
	const slack = 25 * time.Millisecond

	for _, pc := range regressPreds() {
		t.Run(pc.name, func(t *testing.T) {
			var best, worst time.Duration
			var bestName, worstName string
			for _, eng := range regressEngines {
				for _, filt := range []bool{true, false} {
					c := cfg
					c.Engine = eng
					c.UseFilter = filt
					d := timeJoin(t, r, s, reps,
						multistep.WithConfig(c), multistep.WithPredicate(pc.pred), multistep.WithWorkers(1))
					name := eng.String()
					if !filt {
						name += "/nofilter"
					}
					if best == 0 || d < best {
						best, bestName = d, name
					}
					if d > worst {
						worst, worstName = d, name
					}
				}
			}
			got := timeJoin(t, r, s, reps,
				multistep.WithPlan(), multistep.WithPredicate(pc.pred))
			t.Logf("planner %v vs best %v (%s), worst %v (%s)", got, best, bestName, worst, worstName)
			if bound := best + best/2 + slack; got > bound {
				t.Errorf("planner took %v, above the 1.5× bound %v of best static %v (%s)",
					got, bound, best, bestName)
			}
			if worst > 2*best && got >= worst {
				t.Errorf("planner took %v, not better than the worst static %v (%s) despite a %0.1f× grid spread",
					got, worst, worstName, float64(worst)/float64(best))
			}
		})
	}
}

// TestExplicitOptionsOverridePlannerBitExact pins the override
// contract: WithConfig and WithWorkers reach the planner as one-element
// candidate lists, so a fully pinned planned join returns exactly the
// response set and statistics of the unplanned call — bit for bit,
// including the page accounting.
func TestExplicitOptionsOverridePlannerBitExact(t *testing.T) {
	r, s, cfg := buildPair(t, 300)
	ctx := context.Background()
	for _, eng := range regressEngines {
		for _, pc := range regressPreds() {
			c := cfg
			c.Engine = eng
			base, bst, err := multistep.Join(ctx, r, s,
				multistep.WithConfig(c), multistep.WithPredicate(pc.pred), multistep.WithWorkers(1))
			if err != nil {
				t.Fatalf("%s/%s: %v", eng, pc.name, err)
			}
			planned, pst, err := multistep.Join(ctx, r, s,
				multistep.WithPlan(),
				multistep.WithConfig(c), multistep.WithPredicate(pc.pred), multistep.WithWorkers(1))
			if err != nil {
				t.Fatalf("%s/%s planned: %v", eng, pc.name, err)
			}
			if !reflect.DeepEqual(base, planned) {
				t.Errorf("%s/%s: pinned planned join returned a different response set (%d vs %d pairs)",
					eng, pc.name, len(planned), len(base))
			}
			if !reflect.DeepEqual(bst, pst) {
				t.Errorf("%s/%s: pinned planned join returned different statistics:\nstatic  %+v\nplanned %+v",
					eng, pc.name, bst, pst)
			}
		}
	}
}
