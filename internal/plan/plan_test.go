package plan

import (
	"math"
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
)

// TestProbWithinMonteCarlo checks the exact piecewise-linear integral
// P(|X−Y| ≤ t) against brute-force sampling for a spread of interval
// configurations, including degenerate (point) intervals.
func TestProbWithinMonteCarlo(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	cases := []struct{ a1, a2, b1, b2, t float64 }{
		{0, 1, 0, 1, 0.25},
		{0, 1, 2, 3, 0.5},
		{0, 1, 2, 3, 1.5},
		{0, 4, 1, 2, 0.3},
		{-1, 1, -3, 3, 0.1},
		{0, 1, 0.5, 0.5, 0.2}, // degenerate B
		{0.5, 0.5, 0, 1, 0.2}, // degenerate A
		{2, 2, 2.1, 2.1, 0.2}, // both degenerate, within t
		{2, 2, 5, 5, 0.2},     // both degenerate, beyond t
		{0, 1, 0, 1, 0},       // zero threshold
	}
	const samples = 200000
	for _, c := range cases {
		got := probWithin(c.a1, c.a2, c.b1, c.b2, c.t)
		hits := 0
		for i := 0; i < samples; i++ {
			x := c.a1 + rng.Float64()*(c.a2-c.a1)
			y := c.b1 + rng.Float64()*(c.b2-c.b1)
			if math.Abs(x-y) <= c.t {
				hits++
			}
		}
		want := float64(hits) / samples
		if math.Abs(got-want) > 0.01 {
			t.Errorf("probWithin(%v,%v,%v,%v,t=%v) = %v, Monte Carlo says %v",
				c.a1, c.a2, c.b1, c.b2, c.t, got, want)
		}
	}
}

func uniformStats(n int, seed int64, w, h float64) *Stats {
	rng := rand.New(rand.NewSource(seed))
	rects := make([]geom.Rect, n)
	for i := range rects {
		cx, cy := rng.Float64(), rng.Float64()
		rects[i] = geom.Rect{MinX: cx - w/2, MinY: cy - h/2, MaxX: cx + w/2, MaxY: cy + h/2}
	}
	// 48 mean vertices: the calibration point of DefaultWeights, so the
	// engine-ordering assertions exercise the measured regime. (Below
	// ~15 vertices the vertex scaling correctly makes the quadratic
	// engine the cheapest — that is a feature, not the case pinned here.)
	return ComputeStats(n, func(i int) geom.Rect { return rects[i] }, func(int) int { return 48 })
}

// TestEstimateCandidatesUniform pins the estimator against the
// closed-form expectation for uniform data: for n×m boxes of extent w
// in the unit square, E[pairs] ≈ n·m·(2w)·(2h) (Minkowski area).
func TestEstimateCandidatesUniform(t *testing.T) {
	r := uniformStats(500, 1, 0.02, 0.02)
	s := uniformStats(400, 2, 0.02, 0.02)
	got := EstimateCandidates(r, s, PredIntersects, 0, DefaultWeights())
	want := 500.0 * 400.0 * 0.04 * 0.04 // ≈ 320
	if got < want/2 || got > want*2 {
		t.Fatalf("uniform estimate = %.1f, closed form ≈ %.1f (want within 2×)", got, want)
	}
	// Within-distance must predict strictly more candidates.
	within := EstimateCandidates(r, s, PredWithin, 0.05, DefaultWeights())
	if within <= got {
		t.Fatalf("within(ε=0.05) estimate %.1f not greater than intersects estimate %.1f", within, got)
	}
	// Contains candidates pass the nesting pretest: far fewer.
	contains := EstimateCandidates(r, s, PredContains, 0, DefaultWeights())
	if contains >= got {
		t.Fatalf("contains estimate %.1f not below intersects estimate %.1f", contains, got)
	}
}

// TestEstimateCandidatesSkew: clustering the same objects into a corner
// must raise the predicted candidate count (density drives selectivity).
func TestEstimateCandidatesSkew(t *testing.T) {
	uni := uniformStats(500, 3, 0.02, 0.02)
	rng := rand.New(rand.NewSource(4))
	rects := make([]geom.Rect, 500)
	for i := range rects {
		cx, cy := rng.Float64()*0.1, rng.Float64()*0.1
		rects[i] = geom.Rect{MinX: cx - 0.01, MinY: cy - 0.01, MaxX: cx + 0.01, MaxY: cy + 0.01}
	}
	skew := ComputeStats(500, func(i int) geom.Rect { return rects[i] }, func(int) int { return 10 })
	w := DefaultWeights()
	if eu, es := EstimateCandidates(uni, uni, PredIntersects, 0, w), EstimateCandidates(skew, skew, PredIntersects, 0, w); es <= eu {
		t.Fatalf("skewed self-join estimate %.1f not above uniform %.1f", es, eu)
	}
}

func TestComputeStats(t *testing.T) {
	rects := []geom.Rect{
		{MinX: 0, MinY: 0, MaxX: 2, MaxY: 1},
		{MinX: 4, MinY: 3, MaxX: 6, MaxY: 7},
	}
	verts := []int{10, 30}
	s := ComputeStats(2, func(i int) geom.Rect { return rects[i] }, func(i int) int { return verts[i] })
	if s.Objects != 2 || s.MeanVerts != 20 || s.MeanW != 2 || s.MeanH != 2.5 {
		t.Fatalf("stats = %+v", s)
	}
	if s.MBR != (geom.Rect{MinX: 0, MinY: 0, MaxX: 6, MaxY: 7}) {
		t.Fatalf("MBR = %+v", s.MBR)
	}
	var total float64
	for _, v := range s.Grid {
		total += v
	}
	if total != 2 {
		t.Fatalf("histogram mass = %v, want 2", total)
	}
	empty := ComputeStats(0, nil, nil)
	if empty.Objects != 0 || empty.MBR != (geom.Rect{}) {
		t.Fatalf("empty stats = %+v", empty)
	}
}

// TestChooseOrdersEngines: with the calibrated defaults and a
// non-trivial candidate load, the search must prefer the TR*-tree,
// then plane sweep, then quadratic — the ordering every committed BENCH
// baseline measured.
func TestChooseOrdersEngines(t *testing.T) {
	r := uniformStats(1000, 5, 0.03, 0.03)
	s := uniformStats(1000, 6, 0.03, 0.03)
	w := DefaultWeights()
	costOf := func(e Engine) float64 {
		c := Choose(r, s, w, Request{
			Pred: PredIntersects, Engines: []Engine{e}, Filters: []bool{true},
			Workers: []int{1}, MaxProcs: 1, Collect: true,
		})
		return c.PredCostNs
	}
	tr, ps, q := costOf(EngineTRStar), costOf(EnginePlaneSweep), costOf(EngineQuadratic)
	if !(tr < ps && ps < q) {
		t.Fatalf("engine cost ordering wrong: trstar=%v planesweep=%v quadratic=%v", tr, ps, q)
	}
	free := Choose(r, s, w, Request{Pred: PredIntersects, MaxProcs: 1, Collect: true})
	if free.Engine != EngineTRStar || !free.UseFilter {
		t.Fatalf("free search chose %v filter=%v, want trstar with filter", free.Engine, free.UseFilter)
	}
	if free.Evaluated != 6 {
		t.Fatalf("evaluated %d plan points, want 6 (3 engines × 2 filters × 1 worker)", free.Evaluated)
	}
}

// TestChooseRespectsPins: one-element dimension lists are obeyed.
func TestChooseRespectsPins(t *testing.T) {
	r := uniformStats(300, 7, 0.02, 0.02)
	c := Choose(r, r, DefaultWeights(), Request{
		Pred: PredIntersects, Engines: []Engine{EngineQuadratic},
		Filters: []bool{false}, Workers: []int{3}, MaxProcs: 8,
	})
	if c.Engine != EngineQuadratic || c.UseFilter || c.Workers != 3 {
		t.Fatalf("pinned choice = %+v", c)
	}
}

// TestChooseWorkers: with many processors and a heavy predicted load,
// more workers must win; with MaxProcs=1 the setup cost keeps it at 1.
func TestChooseWorkers(t *testing.T) {
	r := uniformStats(2000, 8, 0.05, 0.05)
	w := DefaultWeights()
	req := Request{Pred: PredIntersects, Workers: []int{1, 2, 4, 8}, MaxProcs: 8, Collect: true}
	if c := Choose(r, r, w, req); c.Workers <= 1 {
		t.Fatalf("8-way host with heavy load chose %d workers", c.Workers)
	}
	req.MaxProcs = 1
	if c := Choose(r, r, w, req); c.Workers != 1 {
		t.Fatalf("single-proc host chose %d workers", c.Workers)
	}
}

// TestFeedbackCorrection: observing that real candidate counts run 3×
// the prediction must pull future estimates up, and the EWMAs must
// survive a codec round trip.
func TestFeedbackCorrection(t *testing.T) {
	r := uniformStats(500, 9, 0.02, 0.02)
	s := uniformStats(500, 10, 0.02, 0.02)
	w := DefaultWeights()
	base := EstimateCandidates(r, s, PredIntersects, 0, w)
	for i := 0; i < 8; i++ {
		r.Observe(PredIntersects, base, 3*base, 0.9, 0.5)
		s.Observe(PredIntersects, base, 3*base, 0.9, 0.5)
	}
	corrected := EstimateCandidates(r, s, PredIntersects, 0, w)
	if corrected < 2*base {
		t.Fatalf("after 3× feedback, estimate %.1f did not rise from %.1f", corrected, base)
	}
	if r.Runs() != 8 {
		t.Fatalf("Runs() = %d, want 8", r.Runs())
	}
	if got := r.IdentRate(PredIntersects, 0); math.Abs(got-0.9) > 1e-9 {
		t.Fatalf("IdentRate = %v, want 0.9", got)
	}

	blob := AppendStats(nil, r)
	back, err := DecodeStats(blob)
	if err != nil {
		t.Fatalf("DecodeStats: %v", err)
	}
	if back.Objects != r.Objects || back.MBR != r.MBR || back.MeanVerts != r.MeanVerts ||
		back.MeanW != r.MeanW || back.MeanH != r.MeanH {
		t.Fatalf("round trip lost scalar stats: %+v vs %+v", back, r)
	}
	for i := range r.Grid {
		if back.Grid[i] != r.Grid[i] {
			t.Fatalf("round trip lost histogram cell %d", i)
		}
	}
	if back.Runs() != r.Runs() || back.CandCorrection(PredIntersects) != r.CandCorrection(PredIntersects) ||
		back.IdentRate(PredIntersects, 0) != r.IdentRate(PredIntersects, 0) ||
		back.HitFrac(PredIntersects, 0) != r.HitFrac(PredIntersects, 0) {
		t.Fatalf("round trip lost feedback EWMAs")
	}
}

// TestDecodeStatsRejects: corrupted blobs error, never panic.
func TestDecodeStatsRejects(t *testing.T) {
	good := AppendStats(nil, uniformStats(10, 11, 0.1, 0.1))
	cases := map[string][]byte{
		"empty":     {},
		"short":     good[:5],
		"truncated": good[:len(good)-3],
		"trailing":  append(append([]byte{}, good...), 0),
		"badmagic":  append([]byte{0, 0, 0, 0}, good[4:]...),
	}
	badVersion := append([]byte{}, good...)
	badVersion[5] = 99
	cases["badversion"] = badVersion
	for name, b := range cases {
		if _, err := DecodeStats(b); err == nil {
			t.Errorf("%s: decode succeeded, want error", name)
		}
	}
}

// TestChooseCacheHitRate: a predicted cache hit plans workers=1 when
// the workers dimension is open, but a pinned workers list still wins.
func TestChooseCacheHitRate(t *testing.T) {
	r := uniformStats(2000, 8, 0.05, 0.05)
	w := DefaultWeights()
	req := Request{Pred: PredIntersects, Workers: []int{1, 2, 4, 8}, MaxProcs: 8, Collect: true}
	if c := Choose(r, r, w, req); c.Workers <= 1 {
		t.Fatalf("heavy load without cache traffic chose %d workers", c.Workers)
	}
	req.CacheHitRate = 0.8
	if c := Choose(r, r, w, req); c.Workers != 1 {
		t.Fatalf("predicted cache hit chose %d workers, want 1", c.Workers)
	}
	pinned := Request{Pred: PredIntersects, Workers: []int{4}, MaxProcs: 8, CacheHitRate: 0.9}
	if c := Choose(r, r, w, pinned); c.Workers != 4 {
		t.Fatalf("pinned workers overridden to %d by cache hit rate", c.Workers)
	}
	req.CacheHitRate = 0.2
	if c := Choose(r, r, w, req); c.Workers <= 1 {
		t.Fatalf("low hit rate restricted workers to %d", c.Workers)
	}
}

// TestCacheHitEWMA: the serving-session cache EWMA converges toward
// the lookup mix and is not part of the persisted stats codec.
func TestCacheHitEWMA(t *testing.T) {
	r := uniformStats(100, 11, 0.02, 0.02)
	if r.CacheHitRate() != 0 {
		t.Fatalf("fresh CacheHitRate = %v, want 0", r.CacheHitRate())
	}
	for i := 0; i < 20; i++ {
		r.ObserveCacheLookup(true)
	}
	if got := r.CacheHitRate(); got < 0.9 {
		t.Fatalf("after 20 hits CacheHitRate = %v, want > 0.9", got)
	}
	for i := 0; i < 20; i++ {
		r.ObserveCacheLookup(false)
	}
	if got := r.CacheHitRate(); got > 0.1 {
		t.Fatalf("after 20 misses CacheHitRate = %v, want < 0.1", got)
	}
	blob := AppendStats(nil, r)
	back, err := DecodeStats(blob)
	if err != nil {
		t.Fatalf("DecodeStats: %v", err)
	}
	if back.CacheHitRate() != 0 {
		t.Fatalf("cache EWMA leaked into the store codec: %v", back.CacheHitRate())
	}
	var nilStats *Stats
	nilStats.ObserveCacheLookup(true)
	if nilStats.CacheHitRate() != 0 {
		t.Fatal("nil stats CacheHitRate != 0")
	}
}
