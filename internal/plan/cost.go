package plan

import "math"

// Engine mirrors the multistep exact-engine constants (the planner must
// not import multistep). The numeric values match multistep.Engine.
type Engine int

// The three exact-geometry engines of the paper's step 3.
const (
	EngineQuadratic Engine = iota
	EnginePlaneSweep
	EngineTRStar
)

func (e Engine) String() string {
	switch e {
	case EngineQuadratic:
		return "quadratic"
	case EnginePlaneSweep:
		return "planesweep"
	case EngineTRStar:
		return "trstar"
	}
	return "unknown"
}

// Weights are the calibrated cost coefficients, all in nanoseconds. The
// defaults come from the committed BENCH_PR6.json trajectory (1200
// objects/relation, ~48 vertices/object, filter on, GOMAXPROCS=1): the
// measured ns-per-candidate figures are decomposed into traversal +
// filter + (1 − ident) · exact using the suite's observed ~0.85
// identification rate for intersects and ~0.7 for within. Absolute
// accuracy does not matter — plan choice only needs the *ordering* of
// predicted costs to match the ordering of real runtimes, and the 1.5×
// regression grid in plan_test pins exactly that.
type Weights struct {
	// TraversalNsPerCand is step 1 work per candidate pair (tree
	// traversal, dedup bitsets, batching).
	TraversalNsPerCand float64
	// TraversalParallelFrac is the fraction of traversal work that the
	// parallel tree partitioning actually spreads across workers.
	TraversalParallelFrac float64
	// PageNs is the cost per tree page touched during traversal.
	PageNs float64
	// FilterNsPerCand is step 2 (conservative + progressive
	// approximation tests) per candidate.
	FilterNsPerCand float64
	// ExactNs[engine] is the step 3 cost per exactly-tested pair at
	// RefVerts mean vertices, per predicate family. Within-distance
	// tests are a separate column: its exact test (min segment distance)
	// has different engine constants than boolean intersection.
	IntersectExactNs [3]float64
	WithinExactNs    [3]float64
	// ContainsExtraNs is added per exact containment test on top of the
	// intersect column (point-in-polygon sweep after the edge tests).
	ContainsExtraNs float64
	// RefVerts is the mean vertex count the ExactNs columns were
	// calibrated at.
	RefVerts float64
	// WorkerSetupNs and WorkerSetupNsPerCand are the per-worker fixed
	// cost (goroutine, bitsets, batch buffers) and the per-candidate
	// channel/merge overhead the parallel pipeline adds.
	WorkerSetupNs         float64
	WorkerSetupNsPerCand  float64
	CollectNsPerResult    float64
	StreamResultThreshold float64
	// Priors used when a relation has no feedback history yet.
	IdentPrior    [3]float64 // per Pred
	HitFracPrior  [3]float64 // per Pred
	ContainPrior  float64    // P(MBR nesting | MBR intersection)
	WithinEpsCost float64    // extra per-candidate cost of ε-expansion
	// WindowExactNs is the cost of one exact object-vs-window test at
	// RefVerts (the step 3 of a window/point query — cheaper than an
	// object-vs-object test).
	WindowExactNs float64
}

// DefaultWeights returns the BENCH_PR6-calibrated coefficients.
func DefaultWeights() Weights {
	return Weights{
		// trstar intersects measured ≈1600 ns/cand = 300 traversal +
		// 400 filter + 0.15 · 6000 exact; planesweep ≈5600 → 32000;
		// quadratic ≈12700 → 80000.
		TraversalNsPerCand:    300,
		TraversalParallelFrac: 0.8,
		PageNs:                250,
		FilterNsPerCand:       400,
		IntersectExactNs:      [3]float64{80000, 32000, 6000},
		// within measured: quadratic ≈70600 → 230000, planesweep
		// ≈5500 → 16000, trstar ≈4000 → 11000 (ident ≈0.7 for within).
		WithinExactNs:         [3]float64{230000, 16000, 11000},
		ContainsExtraNs:       4000,
		RefVerts:              48,
		WorkerSetupNs:         60000,
		WorkerSetupNsPerCand:  150,
		CollectNsPerResult:    120,
		StreamResultThreshold: 200000,
		IdentPrior:            [3]float64{0.85, 0.80, 0.70},
		HitFracPrior:          [3]float64{0.55, 0.30, 0.60},
		ContainPrior:          0.02,
		WithinEpsCost:         100,
		WindowExactNs:         3000,
	}
}

// ChooseQueryFilter decides whether a window/point query on a relation
// should run the approximation filter before the exact test: yes when
// the expected exact work a filter decision saves exceeds the filter
// test itself. Distance (ε-range) queries go straight to the exact
// distance kernel, so the filter never pays there.
func ChooseQueryFilter(s *Stats, w Weights, p Pred) bool {
	if p == PredWithin || s == nil {
		return false
	}
	ident := s.IdentRate(p, w.IdentPrior[p])
	verts := s.MeanVerts
	if verts <= 0 {
		verts = w.RefVerts
	}
	return ident*w.WindowExactNs*(verts/w.RefVerts) > w.FilterNsPerCand
}

// exactNs returns the calibrated step 3 cost per tested pair for one
// engine under one predicate, scaled from RefVerts to the workload's
// mean vertex counts. Quadratic compares every edge pair (∝ vr·vs),
// plane sweep sorts and sweeps the union of edges (∝ vr+vs), and the
// TR*-tree probes one prebuilt tree with the other's edges (∝ vr·√vs).
func (w Weights) exactNs(e Engine, p Pred, vr, vs float64) float64 {
	if vr <= 0 {
		vr = w.RefVerts
	}
	if vs <= 0 {
		vs = w.RefVerts
	}
	col := w.IntersectExactNs
	if p == PredWithin {
		col = w.WithinExactNs
	}
	base := col[int(e)]
	ref := w.RefVerts
	var scale float64
	switch e {
	case EngineQuadratic:
		scale = (vr * vs) / (ref * ref)
	case EnginePlaneSweep:
		scale = (vr + vs) / (2 * ref)
	default: // TR*-tree
		scale = (vr * math.Sqrt(vs)) / (ref * math.Sqrt(ref))
	}
	c := base * scale
	if p == PredContains {
		c += w.ContainsExtraNs
	}
	return c
}

// Request describes one planning problem: the predicate, the degrees of
// freedom the caller left open (as candidate lists — a pinned dimension
// is a one-element list), and the fixed context of the run.
type Request struct {
	Pred Pred
	Eps  float64
	// Engines and Filters enumerate the open plan dimensions in
	// preference order (ties in predicted cost resolve to the earlier
	// entry). Workers likewise.
	Engines []Engine
	Filters []bool
	Workers []int
	// MaxProcs caps effective parallelism (GOMAXPROCS at plan time).
	MaxProcs int
	// PagesR and PagesS are the relations' R*-tree page counts (leaf +
	// directory), from the rstar PageBreakdown hook.
	PagesR, PagesS int
	// VertsR and VertsS override the stats' mean vertex counts when > 0.
	VertsR, VertsS float64
	// CacheHitRate is the serving layer's result-cache hit-rate EWMA
	// for this traffic (0 when unknown or not serving). A likely hit
	// means the plan almost never executes, so burning worker setup on
	// it is waste: at a rate ≥ 0.5 an *open* workers dimension is
	// restricted to a single worker. A pinned (one-element) workers
	// list is respected regardless.
	CacheHitRate float64
	// Collect is true when the caller materializes the response set
	// (Join without WithStream) — adds per-result collection cost and
	// makes large results a reason to recommend streaming.
	Collect bool
}

// Choice is the plan the search settled on, with its predictions.
type Choice struct {
	Engine    Engine
	UseFilter bool
	Workers   int
	// StreamRecommended is advice, not a decision: the planner cannot
	// change the caller's API shape (collect vs callback), but flags
	// result sets predicted past StreamResultThreshold.
	StreamRecommended bool

	PredCandidates  float64
	PredExactTested float64
	PredResults     float64
	PredCostNs      float64
	// Evaluated counts the plan points scored; the space is tiny
	// (engines × filters × workers), so the search is exhaustive.
	Evaluated int
}

// Choose scores every (engine × filter × workers) point against the
// statistics and returns the cheapest. Both stats must be non-nil; the
// multistep layer falls back to its static defaults when a relation
// predates statistics and none could be recomputed.
func Choose(r, s *Stats, w Weights, req Request) Choice {
	if req.MaxProcs < 1 {
		req.MaxProcs = 1
	}
	if len(req.Engines) == 0 {
		req.Engines = []Engine{EngineTRStar, EnginePlaneSweep, EngineQuadratic}
	}
	if len(req.Filters) == 0 {
		req.Filters = []bool{true, false}
	}
	if len(req.Workers) == 0 {
		req.Workers = []int{1}
	}
	if req.CacheHitRate >= 0.5 && len(req.Workers) > 1 {
		req.Workers = []int{1}
	}

	cand := EstimateCandidates(r, s, req.Pred, req.Eps, w)
	ident := math.Sqrt(r.IdentRate(req.Pred, w.IdentPrior[req.Pred]) *
		s.IdentRate(req.Pred, w.IdentPrior[req.Pred]))
	hit := math.Sqrt(r.HitFrac(req.Pred, w.HitFracPrior[req.Pred]) *
		s.HitFrac(req.Pred, w.HitFracPrior[req.Pred]))
	results := cand * hit
	vr, vs := req.VertsR, req.VertsS
	if vr <= 0 {
		vr = r.MeanVerts
	}
	if vs <= 0 {
		vs = s.MeanVerts
	}

	best := Choice{PredCandidates: cand, PredResults: results, PredCostNs: math.Inf(1)}
	for _, eng := range req.Engines {
		for _, filter := range req.Filters {
			exactFrac := 1.0
			if filter {
				exactFrac = 1 - ident
			}
			exact := cand * exactFrac
			perCand := w.TraversalNsPerCand
			if req.Pred == PredWithin {
				perCand += w.WithinEpsCost
			}
			trav := cand * perCand
			pages := float64(req.PagesR+req.PagesS) * w.PageNs
			filterC := 0.0
			if filter {
				filterC = cand * w.FilterNsPerCand
			}
			exactC := exact * w.exactNs(eng, req.Pred, vr, vs)
			parallel := filterC + exactC + trav*w.TraversalParallelFrac
			serial := trav*(1-w.TraversalParallelFrac) + pages
			if req.Collect {
				serial += results * w.CollectNsPerResult
			}
			for _, workers := range req.Workers {
				if workers < 1 {
					continue
				}
				best.Evaluated++
				eff := float64(min(workers, req.MaxProcs))
				cost := serial + parallel/eff +
					float64(workers)*w.WorkerSetupNs + cand*w.WorkerSetupNsPerCand*b2f(workers > 1)
				if cost < best.PredCostNs {
					ev := best.Evaluated
					best = Choice{
						Engine: eng, UseFilter: filter, Workers: workers,
						PredCandidates: cand, PredExactTested: exact,
						PredResults: results, PredCostNs: cost, Evaluated: ev,
					}
				}
			}
		}
	}
	best.StreamRecommended = req.Collect && results > w.StreamResultThreshold
	return best
}

func b2f(b bool) float64 {
	if b {
		return 1
	}
	return 0
}
