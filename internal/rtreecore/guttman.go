package rtreecore

import "spatialjoin/internal/geom"

// SplitQuadratic partitions the rectangles with Guttman's quadratic split
// [Gut 84] — the classic R-tree algorithm the R*-tree improved upon, kept
// here as the comparison baseline: PickSeeds chooses the pair wasting the
// most area in a combined rectangle; the remaining entries are assigned
// one by one to the group whose rectangle needs the smaller enlargement,
// with min-fill forcing at the end.
func SplitQuadratic(rects []geom.Rect, minFill int) (g1, g2 []int) {
	n := len(rects)
	if minFill < 1 {
		minFill = 1
	}
	if minFill > n/2 {
		minFill = n / 2
	}

	// PickSeeds: maximize the dead area of the pair's bounding rectangle.
	s1, s2 := 0, 1
	worst := -1.0
	for i := 0; i < n; i++ {
		for j := i + 1; j < n; j++ {
			d := rects[i].Union(rects[j]).Area() - rects[i].Area() - rects[j].Area()
			if d > worst {
				worst = d
				s1, s2 = i, j
			}
		}
	}
	g1 = append(g1, s1)
	g2 = append(g2, s2)
	b1, b2 := rects[s1], rects[s2]

	remaining := make([]int, 0, n-2)
	for i := 0; i < n; i++ {
		if i != s1 && i != s2 {
			remaining = append(remaining, i)
		}
	}
	for len(remaining) > 0 {
		// Min-fill forcing: if one group must take all the rest, do so.
		if len(g1)+len(remaining) == minFill {
			g1 = append(g1, remaining...)
			break
		}
		if len(g2)+len(remaining) == minFill {
			g2 = append(g2, remaining...)
			break
		}
		// PickNext: the entry with the greatest preference difference.
		bestIdx := 0
		bestDiff := -1.0
		for k, i := range remaining {
			d1 := b1.Enlargement(rects[i])
			d2 := b2.Enlargement(rects[i])
			diff := d1 - d2
			if diff < 0 {
				diff = -diff
			}
			if diff > bestDiff {
				bestDiff = diff
				bestIdx = k
			}
		}
		i := remaining[bestIdx]
		remaining = append(remaining[:bestIdx], remaining[bestIdx+1:]...)
		d1 := b1.Enlargement(rects[i])
		d2 := b2.Enlargement(rects[i])
		takeFirst := d1 < d2
		if d1 == d2 {
			takeFirst = b1.Area() < b2.Area()
			if b1.Area() == b2.Area() {
				takeFirst = len(g1) <= len(g2)
			}
		}
		if takeFirst {
			g1 = append(g1, i)
			b1 = b1.Union(rects[i])
		} else {
			g2 = append(g2, i)
			b2 = b2.Union(rects[i])
		}
	}
	return g1, g2
}
