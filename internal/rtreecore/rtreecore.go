// Package rtreecore implements the node-level algorithms of the R*-tree
// [BKSS 90] shared by the secondary-storage R*-tree (package rstar) and
// its main-memory variant, the TR*-tree (package trstar): subtree choice,
// the topological split (choose axis by margin, choose distribution by
// overlap, then area) and the forced-reinsert candidate order.
package rtreecore

import (
	"sort"

	"spatialjoin/internal/geom"
)

// chooseSubtreeCandidates bounds the overlap-enlargement computation: for
// large node capacities, [BKSS 90] determines the overlap criterion only
// among the 32 entries with the least area enlargement ("to reduce the
// CPU cost ... the determination of the minimum overlap is restricted").
const chooseSubtreeCandidates = 32

// ChooseSubtree returns the index of the child rectangle the new entry
// should descend into. For children that are leaves the R*-tree minimizes
// overlap enlargement (resolving ties by area enlargement, then area),
// restricted to the 32 least-area-enlargement entries as in [BKSS 90];
// for internal children it minimizes area enlargement (ties by area).
func ChooseSubtree(children []geom.Rect, r geom.Rect, childrenAreLeaves bool) int {
	best := 0
	if childrenAreLeaves {
		cands := candidateIndices(children, r)
		best = cands[0]
		bestOverlap, bestEnl, bestArea := overlapEnlargement(children, best, r), children[best].Enlargement(r), children[best].Area()
		for _, i := range cands[1:] {
			ov := overlapEnlargement(children, i, r)
			enl := children[i].Enlargement(r)
			area := children[i].Area()
			if ov < bestOverlap ||
				(ov == bestOverlap && enl < bestEnl) ||
				(ov == bestOverlap && enl == bestEnl && area < bestArea) {
				best, bestOverlap, bestEnl, bestArea = i, ov, enl, area
			}
		}
		return best
	}
	bestEnl, bestArea := children[0].Enlargement(r), children[0].Area()
	for i := 1; i < len(children); i++ {
		enl := children[i].Enlargement(r)
		area := children[i].Area()
		if enl < bestEnl || (enl == bestEnl && area < bestArea) {
			best, bestEnl, bestArea = i, enl, area
		}
	}
	return best
}

// candidateIndices returns the indices examined by the leaf-level overlap
// criterion: all of them for small nodes, otherwise the
// chooseSubtreeCandidates entries with the least area enlargement.
func candidateIndices(children []geom.Rect, r geom.Rect) []int {
	idx := all(len(children))
	if len(children) <= chooseSubtreeCandidates {
		return idx
	}
	sort.Slice(idx, func(a, b int) bool {
		return children[idx[a]].Enlargement(r) < children[idx[b]].Enlargement(r)
	})
	return idx[:chooseSubtreeCandidates]
}

// overlapEnlargement returns the increase of the total overlap between
// children[i] and its siblings when children[i] is enlarged to include r.
func overlapEnlargement(children []geom.Rect, i int, r geom.Rect) float64 {
	enlarged := children[i].Union(r)
	var before, after float64
	for j, c := range children {
		if j == i {
			continue
		}
		before += children[i].OverlapArea(c)
		after += enlarged.OverlapArea(c)
	}
	return after - before
}

// Split partitions the rectangles into two groups according to the R*-tree
// topological split and returns the index sets of both groups. minFill is
// the minimum number of entries per group (the R*-tree uses 40 % of the
// capacity).
func Split(rects []geom.Rect, minFill int) (g1, g2 []int) {
	n := len(rects)
	if minFill < 1 {
		minFill = 1
	}
	if minFill > n/2 {
		minFill = n / 2
	}

	// Choose the split axis: the one with the smallest total margin over
	// all candidate distributions of both sortings.
	bestAxis := 0
	bestMargin := marginSum(rects, 0, minFill)
	if m := marginSum(rects, 1, minFill); m < bestMargin {
		bestAxis = 1
	}

	// Choose the distribution on the winning axis: minimum overlap,
	// resolving ties by minimum total area.
	order := sortedOrder(rects, bestAxis)
	bestK := -1
	bestOverlap, bestArea := 0.0, 0.0
	for k := minFill; k <= n-minFill; k++ {
		b1 := unionOf(rects, order[:k])
		b2 := unionOf(rects, order[k:])
		ov := b1.OverlapArea(b2)
		area := b1.Area() + b2.Area()
		if bestK < 0 || ov < bestOverlap || (ov == bestOverlap && area < bestArea) {
			bestK, bestOverlap, bestArea = k, ov, area
		}
	}
	g1 = append(g1, order[:bestK]...)
	g2 = append(g2, order[bestK:]...)
	return g1, g2
}

// marginSum returns the sum of the margins of all candidate distributions
// along the given axis (0 = x, 1 = y), the R*-tree split-axis goodness.
func marginSum(rects []geom.Rect, axis, minFill int) float64 {
	order := sortedOrder(rects, axis)
	n := len(rects)
	var s float64
	for k := minFill; k <= n-minFill; k++ {
		s += unionOf(rects, order[:k]).Margin() + unionOf(rects, order[k:]).Margin()
	}
	return s
}

// sortedOrder returns entry indices sorted by (min, max) along the axis.
func sortedOrder(rects []geom.Rect, axis int) []int {
	order := make([]int, len(rects))
	for i := range order {
		order[i] = i
	}
	sort.Slice(order, func(a, b int) bool {
		ra, rb := rects[order[a]], rects[order[b]]
		if axis == 0 {
			if ra.MinX != rb.MinX {
				return ra.MinX < rb.MinX
			}
			return ra.MaxX < rb.MaxX
		}
		if ra.MinY != rb.MinY {
			return ra.MinY < rb.MinY
		}
		return ra.MaxY < rb.MaxY
	})
	return order
}

func unionOf(rects []geom.Rect, idx []int) geom.Rect {
	u := geom.EmptyRect()
	for _, i := range idx {
		u = u.Union(rects[i])
	}
	return u
}

// ReinsertOrder returns the indices of the p entries to remove for forced
// reinsertion: the entries whose centers are farthest from the center of
// the node's bounding rectangle, in decreasing distance ("far reinsert").
func ReinsertOrder(rects []geom.Rect, p int) []int {
	bounds := unionOf(rects, all(len(rects)))
	c := bounds.Center()
	order := all(len(rects))
	sort.Slice(order, func(a, b int) bool {
		da := rects[order[a]].Center().Dist(c)
		db := rects[order[b]].Center().Dist(c)
		return da > db
	})
	if p > len(order) {
		p = len(order)
	}
	return order[:p]
}

func all(n int) []int {
	idx := make([]int, n)
	for i := range idx {
		idx[i] = i
	}
	return idx
}
