package rtreecore

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
)

func randRects(rng *rand.Rand, n int) []geom.Rect {
	out := make([]geom.Rect, n)
	for i := range out {
		x, y := rng.Float64()*10, rng.Float64()*10
		out[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64(), MaxY: y + rng.Float64()}
	}
	return out
}

func TestChooseSubtreePrefersContaining(t *testing.T) {
	children := []geom.Rect{
		{MinX: 0, MinY: 0, MaxX: 10, MaxY: 10},
		{MinX: 20, MinY: 20, MaxX: 30, MaxY: 30},
	}
	r := geom.Rect{MinX: 1, MinY: 1, MaxX: 2, MaxY: 2}
	for _, leaves := range []bool{true, false} {
		if got := ChooseSubtree(children, r, leaves); got != 0 {
			t.Errorf("leaves=%v: chose child %d, want 0 (contains the entry)", leaves, got)
		}
	}
}

func TestChooseSubtreeMinimizesEnlargement(t *testing.T) {
	children := []geom.Rect{
		{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},
		{MinX: 5, MinY: 5, MaxX: 6, MaxY: 6},
	}
	r := geom.Rect{MinX: 5.5, MinY: 5.5, MaxX: 5.6, MaxY: 5.6}
	if got := ChooseSubtree(children, r, false); got != 1 {
		t.Errorf("chose child %d, want 1 (zero enlargement)", got)
	}
}

func TestChooseSubtreeLeafOverlapCriterion(t *testing.T) {
	// Two overlapping children; inserting into the left one would increase
	// their mutual overlap, the right one would not.
	children := []geom.Rect{
		{MinX: 0, MinY: 0, MaxX: 4, MaxY: 4},
		{MinX: 3, MinY: 0, MaxX: 7, MaxY: 4},
	}
	r := geom.Rect{MinX: 6.5, MinY: 1, MaxX: 6.9, MaxY: 2}
	if got := ChooseSubtree(children, r, true); got != 1 {
		t.Errorf("chose child %d, want 1 (no overlap enlargement)", got)
	}
}

func TestSplitRespectsMinFill(t *testing.T) {
	rng := rand.New(rand.NewSource(5))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(60)
		minFill := 1 + rng.Intn(3)
		rects := randRects(rng, n)
		g1, g2 := Split(rects, minFill)
		if len(g1)+len(g2) != n {
			t.Fatalf("split lost entries: %d + %d != %d", len(g1), len(g2), n)
		}
		want := minFill
		if want > n/2 {
			want = n / 2
		}
		if len(g1) < want || len(g2) < want {
			t.Fatalf("split groups %d/%d violate min fill %d", len(g1), len(g2), want)
		}
		seen := map[int]bool{}
		for _, i := range append(append([]int{}, g1...), g2...) {
			if seen[i] {
				t.Fatalf("index %d appears twice", i)
			}
			seen[i] = true
		}
	}
}

func TestSplitSeparatesClusters(t *testing.T) {
	// Two well-separated clusters must be split apart.
	var rects []geom.Rect
	rng := rand.New(rand.NewSource(6))
	for i := 0; i < 10; i++ {
		x, y := rng.Float64(), rng.Float64()
		rects = append(rects, geom.Rect{MinX: x, MinY: y, MaxX: x + 0.1, MaxY: y + 0.1})
	}
	for i := 0; i < 10; i++ {
		x, y := 100+rng.Float64(), rng.Float64()
		rects = append(rects, geom.Rect{MinX: x, MinY: y, MaxX: x + 0.1, MaxY: y + 0.1})
	}
	g1, g2 := Split(rects, 4)
	firstGroupOf := func(idx int) bool {
		for _, i := range g1 {
			if i == idx {
				return true
			}
		}
		return false
	}
	left := firstGroupOf(0)
	for i := 1; i < 10; i++ {
		if firstGroupOf(i) != left {
			t.Fatal("left cluster split across groups")
		}
	}
	for i := 10; i < 20; i++ {
		if firstGroupOf(i) == left {
			t.Fatal("clusters not separated")
		}
	}
	_ = g2
}

func TestReinsertOrderFarthestFirst(t *testing.T) {
	rects := []geom.Rect{
		{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1},       // near the center of the union
		{MinX: -10, MinY: -10, MaxX: -9, MaxY: -9}, // far corner
		{MinX: 10, MinY: 10, MaxX: 11, MaxY: 11},   // far corner
		{MinX: 0.2, MinY: 0.2, MaxX: 0.8, MaxY: 0.8},
	}
	order := ReinsertOrder(rects, 2)
	if len(order) != 2 {
		t.Fatalf("want 2 indices, got %d", len(order))
	}
	for _, i := range order {
		if i != 1 && i != 2 {
			t.Errorf("farthest entries are 1 and 2; got index %d", i)
		}
	}
	// Requesting more than available clamps.
	if got := ReinsertOrder(rects, 99); len(got) != len(rects) {
		t.Errorf("over-request must clamp to %d, got %d", len(rects), len(got))
	}
}

func TestSplitPropertyBoundingBoxesShrink(t *testing.T) {
	rng := rand.New(rand.NewSource(7))
	for trial := 0; trial < 50; trial++ {
		rects := randRects(rng, 20)
		g1, g2 := Split(rects, 4)
		u := geom.EmptyRect()
		for _, r := range rects {
			u = u.Union(r)
		}
		b1 := geom.EmptyRect()
		for _, i := range g1 {
			b1 = b1.Union(rects[i])
		}
		b2 := geom.EmptyRect()
		for _, i := range g2 {
			b2 = b2.Union(rects[i])
		}
		if !u.Contains(b1) || !u.Contains(b2) {
			t.Fatal("group boxes must stay inside the union")
		}
		if b1.Area()+b2.Area() > 2*u.Area()+1e-9 {
			t.Fatal("split produced absurdly large groups")
		}
	}
}
