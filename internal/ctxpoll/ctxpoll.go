// Package ctxpoll converts a context into a polling hook cheap enough
// for the innermost loops of the query pipeline. The traversal and the
// filter/exact workers poll at every node pair or candidate pair, so the
// hook must not take a lock per call: cancellation is observed through
// an atomic flag armed by a single watcher goroutine.
package ctxpoll

import (
	"context"
	"sync/atomic"
)

// Stop returns a polling hook for ctx: nil (meaning "never poll") for
// contexts that cannot be cancelled, otherwise a lock-free func that
// becomes true once the context is done. release must be called when
// the guarded work ends; it lets the watcher goroutine exit even when
// the context is never cancelled.
func Stop(ctx context.Context) (stop func() bool, release func()) {
	if ctx == nil || ctx.Done() == nil {
		return nil, func() {}
	}
	var flag atomic.Bool
	done := make(chan struct{})
	go func() {
		select {
		case <-ctx.Done():
			flag.Store(true)
		case <-done:
		}
	}()
	return flag.Load, func() { close(done) }
}
