package rstar

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/rtreecore"
)

func TestBulkLoadCorrectness(t *testing.T) {
	rng := rand.New(rand.NewSource(601))
	items := make([]Item, 5000)
	for i := range items {
		items[i] = Item{Rect: randRect(rng, 100, 3), ID: int32(i)}
	}
	tree := BulkLoad(items, DefaultConfig())
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	if tree.Size() != len(items) {
		t.Fatalf("Size = %d", tree.Size())
	}
	// Queries agree with a scan.
	for trial := 0; trial < 40; trial++ {
		w := randRect(rng, 100, 10)
		got := map[int32]bool{}
		tree.WindowQuery(w, func(it Item) { got[it.ID] = true })
		want := 0
		for _, it := range items {
			if it.Rect.Intersects(w) {
				want++
				if !got[it.ID] {
					t.Fatalf("bulk-loaded tree misses item %d", it.ID)
				}
			}
		}
		if len(got) != want {
			t.Fatalf("window query found %d, scan %d", len(got), want)
		}
	}
}

func TestBulkLoadPacksTighter(t *testing.T) {
	rng := rand.New(rand.NewSource(607))
	items := make([]Item, 8000)
	for i := range items {
		items[i] = Item{Rect: randRect(rng, 100, 2), ID: int32(i)}
	}
	dynamic := New(DefaultConfig())
	for _, it := range items {
		dynamic.Insert(it)
	}
	static := BulkLoad(items, DefaultConfig())
	// STR packs near 100 %: it must allocate clearly fewer pages.
	if static.Pages() >= dynamic.Pages() {
		t.Errorf("STR pages %d must be below dynamic pages %d", static.Pages(), dynamic.Pages())
	}
	if static.Height() > dynamic.Height() {
		t.Errorf("STR height %d must not exceed dynamic height %d", static.Height(), dynamic.Height())
	}
}

func TestBulkLoadEmptyAndJoin(t *testing.T) {
	empty := BulkLoad(nil, DefaultConfig())
	if empty.Size() != 0 || empty.Height() != 1 {
		t.Error("empty bulk load malformed")
	}
	rng := rand.New(rand.NewSource(613))
	items1 := make([]Item, 700)
	for i := range items1 {
		items1[i] = Item{Rect: randRect(rng, 50, 2), ID: int32(i)}
	}
	items2 := make([]Item, 600)
	for i := range items2 {
		items2[i] = Item{Rect: randRect(rng, 50, 2), ID: int32(i)}
	}
	t1 := BulkLoad(items1, DefaultConfig())
	t2 := BulkLoad(items2, DefaultConfig())
	got := 0
	Join(t1, t2, func(a, b Item) { got++ })
	want := 0
	for _, a := range items1 {
		for _, b := range items2 {
			if a.Rect.Intersects(b.Rect) {
				want++
			}
		}
	}
	if got != want {
		t.Fatalf("bulk-loaded join found %d pairs, want %d", got, want)
	}
}

func TestGuttmanSplitVariant(t *testing.T) {
	rng := rand.New(rand.NewSource(617))
	cfg := DefaultConfig()
	cfg.Split = SplitQuadraticGuttman
	tree, items := buildTree(t, rng, 3000, cfg)
	// Correctness is identical; only the node quality differs.
	for trial := 0; trial < 30; trial++ {
		w := randRect(rng, 100, 8)
		got := 0
		tree.WindowQuery(w, func(Item) { got++ })
		want := 0
		for _, it := range items {
			if it.Rect.Intersects(w) {
				want++
			}
		}
		if got != want {
			t.Fatalf("Guttman tree query found %d, want %d", got, want)
		}
	}
}

func TestSplitQuadraticRespectsMinFill(t *testing.T) {
	rng := rand.New(rand.NewSource(619))
	for trial := 0; trial < 100; trial++ {
		n := 4 + rng.Intn(50)
		rects := make([]geom.Rect, n)
		for i := range rects {
			x, y := rng.Float64()*10, rng.Float64()*10
			rects[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64(), MaxY: y + rng.Float64()}
		}
		minFill := 1 + rng.Intn(3)
		g1, g2 := rtreecore.SplitQuadratic(rects, minFill)
		if len(g1)+len(g2) != n {
			t.Fatalf("quadratic split lost entries")
		}
		want := minFill
		if want > n/2 {
			want = n / 2
		}
		if len(g1) < want || len(g2) < want {
			t.Fatalf("groups %d/%d violate min fill %d", len(g1), len(g2), want)
		}
	}
}

// TestRStarBeatsGuttmanOnQueries is the classic result the R*-tree paper
// establishes and this paper relies on: the topological split + forced
// reinsert produce a better tree (fewer node touches per query).
func TestRStarBeatsGuttmanOnQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(631))
	items := make([]Item, 6000)
	for i := range items {
		items[i] = Item{Rect: randRect(rng, 100, 2), ID: int32(i)}
	}
	accesses := map[SplitAlgorithm]int64{}
	for _, split := range []SplitAlgorithm{SplitRStar, SplitQuadraticGuttman} {
		cfg := DefaultConfig()
		cfg.Split = split
		tree := New(cfg)
		for _, it := range items {
			tree.Insert(it)
		}
		tree.Buffer().Clear()
		qrng := rand.New(rand.NewSource(641))
		for q := 0; q < 300; q++ {
			tree.WindowQuery(randRect(qrng, 100, 5), func(Item) {})
		}
		accesses[split] = tree.Buffer().Accesses()
	}
	if accesses[SplitRStar] > accesses[SplitQuadraticGuttman] {
		t.Errorf("R* split (%d accesses) should not lose to Guttman (%d)",
			accesses[SplitRStar], accesses[SplitQuadraticGuttman])
	}
}
