package rstar

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
)

func randRect(rng *rand.Rand, space, maxExt float64) geom.Rect {
	x := rng.Float64() * space
	y := rng.Float64() * space
	return geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*maxExt, MaxY: y + rng.Float64()*maxExt}
}

func buildTree(t *testing.T, rng *rand.Rand, n int, cfg Config) (*Tree, []Item) {
	t.Helper()
	tree := New(cfg)
	items := make([]Item, n)
	for i := range items {
		items[i] = Item{Rect: randRect(rng, 100, 3), ID: int32(i)}
		tree.Insert(items[i])
	}
	if err := tree.Validate(); err != nil {
		t.Fatalf("Validate: %v", err)
	}
	return tree, items
}

func TestInsertAndValidate(t *testing.T) {
	rng := rand.New(rand.NewSource(151))
	for _, pageSize := range []int{2048, 4096} {
		cfg := DefaultConfig()
		cfg.PageSize = pageSize
		tree, _ := buildTree(t, rng, 2000, cfg)
		if tree.Size() != 2000 {
			t.Fatalf("Size = %d", tree.Size())
		}
		if tree.Height() < 2 {
			t.Fatalf("2000 items must not fit one page (height %d)", tree.Height())
		}
	}
}

func TestLeafCapacityReflectsEntrySize(t *testing.T) {
	small := New(Config{PageSize: 4096, LeafEntryBytes: 48, BufferBytes: 1 << 17})
	big := New(Config{PageSize: 4096, LeafEntryBytes: 104, BufferBytes: 1 << 17})
	if small.LeafCapacity() <= big.LeafCapacity() {
		t.Errorf("bigger entries must reduce capacity: %d vs %d",
			small.LeafCapacity(), big.LeafCapacity())
	}
	// 4096-16 = 4080; 4080/48 = 85, 4080/104 = 39.
	if small.LeafCapacity() != 85 || big.LeafCapacity() != 39 {
		t.Errorf("capacities = %d, %d; want 85, 39", small.LeafCapacity(), big.LeafCapacity())
	}
}

func TestWindowQueryAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(157))
	tree, items := buildTree(t, rng, 3000, DefaultConfig())
	for trial := 0; trial < 50; trial++ {
		w := randRect(rng, 100, 15)
		got := map[int32]bool{}
		tree.WindowQuery(w, func(it Item) { got[it.ID] = true })
		want := map[int32]bool{}
		for _, it := range items {
			if it.Rect.Intersects(w) {
				want[it.ID] = true
			}
		}
		if len(got) != len(want) {
			t.Fatalf("trial %d: window query returned %d items, scan %d", trial, len(got), len(want))
		}
		for id := range want {
			if !got[id] {
				t.Fatalf("trial %d: item %d missing from window query", trial, id)
			}
		}
	}
}

func TestPointQueryAgainstScan(t *testing.T) {
	rng := rand.New(rand.NewSource(163))
	tree, items := buildTree(t, rng, 2000, DefaultConfig())
	for trial := 0; trial < 100; trial++ {
		p := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		got := 0
		tree.PointQuery(p, func(Item) { got++ })
		want := 0
		for _, it := range items {
			if it.Rect.ContainsPoint(p) {
				want++
			}
		}
		if got != want {
			t.Fatalf("trial %d: point query found %d, scan %d", trial, got, want)
		}
	}
}

func TestAllVisitsEverything(t *testing.T) {
	rng := rand.New(rand.NewSource(167))
	tree, items := buildTree(t, rng, 500, DefaultConfig())
	seen := map[int32]bool{}
	tree.All(func(it Item) { seen[it.ID] = true })
	if len(seen) != len(items) {
		t.Fatalf("All visited %d of %d items", len(seen), len(items))
	}
}

func TestJoinAgainstNestedLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(173))
	cfg := DefaultConfig()
	t1, items1 := buildTree(t, rng, 800, cfg)
	t2, items2 := buildTree(t, rng, 700, cfg)
	type pair struct{ a, b int32 }
	got := map[pair]int{}
	st := Join(t1, t2, func(a, b Item) { got[pair{a.ID, b.ID}]++ })
	want := map[pair]bool{}
	for _, a := range items1 {
		for _, b := range items2 {
			if a.Rect.Intersects(b.Rect) {
				want[pair{a.ID, b.ID}] = true
			}
		}
	}
	if len(got) != len(want) {
		t.Fatalf("join found %d pairs, nested loops %d", len(got), len(want))
	}
	for p, count := range got {
		if !want[p] {
			t.Fatalf("join emitted wrong pair %v", p)
		}
		if count != 1 {
			t.Fatalf("pair %v emitted %d times, want exactly once", p, count)
		}
	}
	if st.Pairs != int64(len(want)) {
		t.Fatalf("JoinStats.Pairs = %d, want %d", st.Pairs, len(want))
	}
	if st.RectTests <= 0 {
		t.Fatal("join must count rectangle tests")
	}
	// The plane-sweep/restriction join must test far fewer pairs than
	// nested loops over the full Cartesian product of entries.
	if st.RectTests >= int64(len(items1))*int64(len(items2)) {
		t.Fatalf("join rect tests %d not better than nested loops %d",
			st.RectTests, len(items1)*len(items2))
	}
}

func TestJoinEmptyTrees(t *testing.T) {
	cfg := DefaultConfig()
	empty := New(cfg)
	rng := rand.New(rand.NewSource(179))
	full, _ := buildTree(t, rng, 100, cfg)
	if st := Join(empty, full, func(a, b Item) { t.Fatal("no pairs expected") }); st.Pairs != 0 {
		t.Fatal("empty join must produce nothing")
	}
	if st := Join(full, empty, func(a, b Item) { t.Fatal("no pairs expected") }); st.Pairs != 0 {
		t.Fatal("empty join must produce nothing (swapped)")
	}
}

func TestJoinDifferentHeights(t *testing.T) {
	rng := rand.New(rand.NewSource(181))
	cfg := DefaultConfig()
	big, items1 := buildTree(t, rng, 4000, cfg)
	small, items2 := buildTree(t, rng, 30, cfg)
	if big.Height() == small.Height() {
		t.Skip("heights coincide")
	}
	got := 0
	Join(big, small, func(a, b Item) { got++ })
	want := 0
	for _, a := range items1 {
		for _, b := range items2 {
			if a.Rect.Intersects(b.Rect) {
				want++
			}
		}
	}
	if got != want {
		t.Fatalf("different-height join found %d pairs, want %d", got, want)
	}
}

func TestBufferCountsPageAccesses(t *testing.T) {
	rng := rand.New(rand.NewSource(191))
	cfg := DefaultConfig()
	cfg.BufferBytes = 32 * cfg.PageSize
	tree, _ := buildTree(t, rng, 5000, cfg)
	tree.Buffer().ResetCounters()
	for i := 0; i < 100; i++ {
		w := randRect(rng, 100, 5)
		tree.WindowQuery(w, func(Item) {})
	}
	if tree.Buffer().Accesses() == 0 {
		t.Fatal("queries must touch pages")
	}
	if tree.Buffer().Misses() == 0 {
		t.Fatal("a 32-page buffer cannot hold a 5000-item tree: misses expected")
	}
	if tree.Buffer().Hits() == 0 {
		t.Fatal("root pages must hit the buffer")
	}
}

func TestSmallerPagesMoreAccesses(t *testing.T) {
	// Figure 10 precondition: with smaller pages, queries touch more pages.
	rng := rand.New(rand.NewSource(193))
	counts := map[int]int64{}
	for _, ps := range []int{2048, 4096} {
		cfg := Config{PageSize: ps, LeafEntryBytes: 48, BufferBytes: 128 << 10}
		rng2 := rand.New(rand.NewSource(199))
		tree := New(cfg)
		for i := 0; i < 4000; i++ {
			tree.Insert(Item{Rect: randRect(rng2, 100, 2), ID: int32(i)})
		}
		tree.Buffer().Clear()
		for trial := 0; trial < 200; trial++ {
			w := randRect(rng, 100, 8)
			tree.WindowQuery(w, func(Item) {})
		}
		counts[ps] = tree.Buffer().Accesses()
	}
	if counts[2048] <= counts[4096] {
		t.Errorf("2 KB pages should need more page touches than 4 KB: %d vs %d",
			counts[2048], counts[4096])
	}
}

// TestPageBreakdownCountsLivePages: the planner's traversal cost charges
// per reachable page, so the breakdown must account for every live node
// exactly once — leaves + directories equal to a structural walk's count,
// a single-page tree reported as one leaf and no directories, and the
// total never exceeding the allocation high-water mark.
func TestPageBreakdownCountsLivePages(t *testing.T) {
	rng := rand.New(rand.NewSource(313))

	small := New(DefaultConfig())
	small.Insert(Item{Rect: randRect(rng, 100, 3), ID: 0})
	if l, d := small.PageBreakdown(); l != 1 || d != 0 {
		t.Fatalf("single-page tree reported %d leaves, %d directories", l, d)
	}

	tree, items := buildTree(t, rng, 3000, DefaultConfig())
	leaves, dirs := tree.PageBreakdown()
	if leaves < 2 || dirs < 1 {
		t.Fatalf("3000 items must spread over several pages, got %d leaves, %d directories", leaves, dirs)
	}
	if tree.Height() >= 2 && dirs == 0 {
		t.Errorf("height %d tree reported no directory pages", tree.Height())
	}
	if total := leaves + dirs; total > tree.Pages() {
		t.Errorf("breakdown counts %d live pages, more than the %d ever allocated", total, tree.Pages())
	}
	// Leaves must be able to hold every item under the capacity bound.
	if leaves*tree.LeafCapacity() < len(items) {
		t.Errorf("%d leaves of capacity %d cannot hold %d items", leaves, tree.LeafCapacity(), len(items))
	}
}
