package rstar

import (
	"spatialjoin/internal/geom"
	"spatialjoin/internal/storage"
)

// Delete removes the item with the given key rectangle and ID, following
// the R-tree deletion algorithm [Gut 84] adopted by the R*-tree: the entry
// is removed from its leaf; underfull nodes along the path are dissolved
// and their remaining entries reinserted at their original level
// (CondenseTree); the root is collapsed when it keeps a single child.
// It reports whether the item was found.
func (t *Tree) Delete(it Item) bool {
	var orphans []pendingEntry
	found, _ := t.deleteRec(t.root, t.height, it, &orphans)
	if !found {
		return false
	}
	t.size--
	// Collapse a root with one child.
	for !t.root.leaf && len(t.root.entries) == 1 {
		t.root = t.root.entries[0].child
		t.height--
	}
	// Reinsert orphaned entries at their recorded level. Levels are
	// counted from the leaves, so they survive height changes.
	for _, o := range orphans {
		t.reinsertEntry(o)
	}
	return true
}

// deleteRec removes it from the subtree; the bool results are (found,
// childDissolved).
func (t *Tree) deleteRec(n *node, level int, it Item, orphans *[]pendingEntry) (bool, bool) {
	t.touch(n)
	if n.leaf {
		for i, e := range n.entries {
			if e.item.ID == it.ID && e.item.Rect == it.Rect {
				n.entries = append(n.entries[:i], n.entries[i+1:]...)
				return true, len(n.entries) < t.minFillOf(true)
			}
		}
		return false, false
	}
	for i := range n.entries {
		if !n.entries[i].rect.Contains(it.Rect) {
			continue
		}
		found, dissolved := t.deleteRec(n.entries[i].child, level-1, it, orphans)
		if !found {
			continue
		}
		if dissolved {
			// CondenseTree: orphan the remaining entries of the underfull
			// child and drop it from this node.
			child := n.entries[i].child
			for _, ce := range child.entries {
				*orphans = append(*orphans, pendingEntry{e: ce, level: level - 1})
			}
			n.entries = append(n.entries[:i], n.entries[i+1:]...)
		} else {
			n.entries[i].rect = n.entries[i].child.bounds()
		}
		return true, len(n.entries) < t.minFillOf(false)
	}
	return false, false
}

// reinsertEntry inserts an entry at a given level using the standard
// insertion machinery.
func (t *Tree) reinsertEntry(p pendingEntry) {
	if p.level > t.height {
		// The tree shrank below the orphan's level: graft by raising the
		// root (extremely rare; happens when mass deletion collapses the
		// tree while high-level orphans remain).
		for p.level > t.height {
			old := t.root
			t.root = t.newNode(false)
			t.root.entries = []entry{{rect: old.bounds(), child: old}}
			t.height++
		}
	}
	queue := []pendingEntry{p}
	reinserted := make(map[int]bool)
	for len(queue) > 0 {
		q := queue[0]
		queue = queue[1:]
		split := t.chooseAndInsert(t.root, t.height, q.e, q.level, reinserted, &queue)
		if split != nil {
			old := t.root
			t.root = t.newNode(false)
			t.root.entries = []entry{
				{rect: old.bounds(), child: old},
				{rect: split.bounds(), child: split},
			}
			t.height++
		}
	}
}

// nnCandidate is one priority-queue element of the nearest-neighbour
// search.
type nnCandidate struct {
	dist float64
	n    *node
	item Item
	leaf bool
}

// NearestNeighbors returns the k items whose key rectangles are closest to
// p (by minimum distance; 0 for covering rectangles), using best-first
// traversal with a distance-ordered priority queue. Spatial selections
// like this are among the basic operations the paper lists in section 2.
// Page visits are accounted on the shared buffer (single-query mode).
func (t *Tree) NearestNeighbors(p geom.Point, k int) []Item {
	return t.NearestNeighborsAccess(t.buf, p, k)
}

// NearestNeighborsAccess is NearestNeighbors with page visits routed
// through an explicit access context (see PointQueryAccess).
func (t *Tree) NearestNeighborsAccess(ax storage.Accessor, p geom.Point, k int) []Item {
	if k <= 0 || t.size == 0 {
		return nil
	}
	var heap nnHeap
	heap.push(nnCandidate{dist: rectDist(t.root.bounds(), p), n: t.root})
	var out []Item
	for heap.len() > 0 && len(out) < k {
		c := heap.pop()
		if c.leaf {
			out = append(out, c.item)
			continue
		}
		ax.Access(c.n.page)
		for _, e := range c.n.entries {
			if c.n.leaf {
				heap.push(nnCandidate{dist: rectDist(e.rect, p), item: e.item, leaf: true})
			} else {
				heap.push(nnCandidate{dist: rectDist(e.rect, p), n: e.child})
			}
		}
	}
	return out
}

// rectDist returns the minimum distance between p and the closed rectangle.
func rectDist(r geom.Rect, p geom.Point) float64 {
	dx := 0.0
	if p.X < r.MinX {
		dx = r.MinX - p.X
	} else if p.X > r.MaxX {
		dx = p.X - r.MaxX
	}
	dy := 0.0
	if p.Y < r.MinY {
		dy = r.MinY - p.Y
	} else if p.Y > r.MaxY {
		dy = p.Y - r.MaxY
	}
	if dx == 0 {
		return dy
	}
	if dy == 0 {
		return dx
	}
	return geom.Point{X: dx, Y: dy}.Norm()
}

// nnHeap is a minimal binary min-heap on candidate distance.
type nnHeap struct {
	items []nnCandidate
}

func (h *nnHeap) len() int { return len(h.items) }

func (h *nnHeap) push(c nnCandidate) {
	h.items = append(h.items, c)
	i := len(h.items) - 1
	for i > 0 {
		parent := (i - 1) / 2
		if h.items[parent].dist <= h.items[i].dist {
			break
		}
		h.items[parent], h.items[i] = h.items[i], h.items[parent]
		i = parent
	}
}

func (h *nnHeap) pop() nnCandidate {
	top := h.items[0]
	last := len(h.items) - 1
	h.items[0] = h.items[last]
	h.items = h.items[:last]
	i := 0
	for {
		l, r := 2*i+1, 2*i+2
		small := i
		if l < last && h.items[l].dist < h.items[small].dist {
			small = l
		}
		if r < last && h.items[r].dist < h.items[small].dist {
			small = r
		}
		if small == i {
			break
		}
		h.items[i], h.items[small] = h.items[small], h.items[i]
		i = small
	}
	return top
}
