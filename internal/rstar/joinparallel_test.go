package rstar

import (
	"sort"
	"sync"
	"testing"

	"spatialjoin/internal/geom"
)

// joinTrees builds two deterministic trees whose item sets overlap.
func joinTrees(n int) (*Tree, *Tree) {
	t1 := New(DefaultConfig())
	t2 := New(DefaultConfig())
	for i := 0; i < n; i++ {
		x := float64(i%97) / 97
		y := float64((i*31)%89) / 89
		t1.Insert(Item{Rect: geom.Rect{MinX: x, MinY: y, MaxX: x + 0.02, MaxY: y + 0.02}, ID: int32(i)})
		x2 := float64((i*17)%97) / 97
		y2 := float64((i*7)%89) / 89
		t2.Insert(Item{Rect: geom.Rect{MinX: x2, MinY: y2, MaxX: x2 + 0.02, MaxY: y2 + 0.02}, ID: int32(i)})
	}
	return t1, t2
}

type idPair struct{ a, b int32 }

func sortedPairs(ps []idPair) []idPair {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].a != ps[j].a {
			return ps[i].a < ps[j].a
		}
		return ps[i].b < ps[j].b
	})
	return ps
}

// TestJoinParallelMatchesJoin checks that the partitioned traversal
// delivers exactly the sequential candidate set, the same JoinStats, and —
// thanks to the page-trace replay — the same buffer hit/miss counts.
func TestJoinParallelMatchesJoin(t *testing.T) {
	for _, n := range []int{0, 5, 40, 800, 5000} {
		t1, t2 := joinTrees(n)

		t1.Buffer().Clear()
		t2.Buffer().Clear()
		var want []idPair
		wantSt := Join(t1, t2, func(a, b Item) { want = append(want, idPair{a.ID, b.ID}) })
		wantM1, wantM2 := t1.Buffer().Misses(), t2.Buffer().Misses()
		wantH1, wantH2 := t1.Buffer().Hits(), t2.Buffer().Hits()
		sortedPairs(want)

		for _, workers := range []int{1, 2, 3, 8, 0} {
			t1.Buffer().Clear()
			t2.Buffer().Clear()
			var mu sync.Mutex
			var got []idPair
			st := JoinParallel(t1, t2, workers, func(w int, a, b Item) {
				mu.Lock()
				got = append(got, idPair{a.ID, b.ID})
				mu.Unlock()
			})
			sortedPairs(got)
			if len(got) != len(want) {
				t.Fatalf("n=%d workers=%d: %d pairs, want %d", n, workers, len(got), len(want))
			}
			for i := range got {
				if got[i] != want[i] {
					t.Fatalf("n=%d workers=%d: pair %d = %v, want %v", n, workers, i, got[i], want[i])
				}
			}
			if st != wantSt {
				t.Errorf("n=%d workers=%d: JoinStats %+v, want %+v", n, workers, st, wantSt)
			}
			if m1, m2 := t1.Buffer().Misses(), t2.Buffer().Misses(); m1 != wantM1 || m2 != wantM2 {
				t.Errorf("n=%d workers=%d: buffer misses (%d, %d), want (%d, %d)",
					n, workers, m1, m2, wantM1, wantM2)
			}
			if h1, h2 := t1.Buffer().Hits(), t2.Buffer().Hits(); h1 != wantH1 || h2 != wantH2 {
				t.Errorf("n=%d workers=%d: buffer hits (%d, %d), want (%d, %d)",
					n, workers, h1, h2, wantH1, wantH2)
			}
		}
	}
}

// TestJoinParallelWorkerIndexBounds checks the per-worker serialization
// contract: indices stay in range and per-index call counts add up.
func TestJoinParallelWorkerIndexBounds(t *testing.T) {
	t1, t2 := joinTrees(2000)
	const workers = 4
	counts := make([]int64, workers)
	total := JoinParallel(t1, t2, workers, func(w int, a, b Item) {
		if w < 0 || w >= workers {
			panic("worker index out of range")
		}
		counts[w]++ // serial per index by contract; race detector verifies
	})
	var sum int64
	for _, c := range counts {
		sum += c
	}
	if sum != total.Pairs {
		t.Errorf("emitted %d pairs across workers, stats say %d", sum, total.Pairs)
	}
}
