package rstar

import (
	"context"
	"runtime"
	"sync"
	"sync/atomic"

	"spatialjoin/internal/ctxpoll"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/storage"
)

// JoinParallel runs the MBR-join of Join with the synchronized traversal
// partitioned at the subtree level: the two roots are paired sequentially,
// every intersecting pairing of root children becomes one task, and the
// tasks are fanned out over a pool of workers that traverse their subtree
// pairs independently.
//
// emit is called for every candidate pair, concurrently from the worker
// goroutines; worker identifies the calling worker (0 ≤ worker < the
// normalized worker count), and calls with the same worker index are
// serial, so the caller can keep per-worker state without locks. The
// emission order differs from Join's; the emitted multiset of pairs does
// not.
//
// The buffer managers are not safe for concurrent use, so workers record
// their page visits into per-task traces that are replayed through the
// buffers in the sequential traversal order after the workers finish. The
// returned JoinStats and the trees' buffer hit/miss counters are therefore
// byte-identical to running Join on the same trees in the same buffer
// state.
//
// workers ≤ 0 selects GOMAXPROCS. With one worker, a leaf root, or trees
// of height one the traversal falls back to the sequential Join path
// (emitting with worker index 0).
func JoinParallel(t1, t2 *Tree, workers int, emit func(worker int, a, b Item)) JoinStats {
	return JoinParallelAccess(context.Background(), t1, t2, t1.buf, t2.buf, 0, workers, emit)
}

// JoinParallelAccess is JoinParallel with each tree's page visits
// replayed into an explicit access context instead of the shared
// buffers, an ε-expanded rectangle predicate (eps = 0 selects the plain
// MBR intersection join; see JoinAccessEps), and cooperative
// cancellation: when ctx is cancelled the traversal workers stop at the
// next node pair, pending tasks are dropped, the page-trace replay is
// skipped, and the partial statistics are returned (the caller observes
// the cancellation via ctx.Err()).
//
// With per-query sessions (NewSession on both trees) the whole parallel
// join — traversal fan-out included — is safe to run concurrently with
// other queries on the same trees, and ax1/ax2 report accounting
// identical to a sequential JoinAccessEps from the same buffer state.
func JoinParallelAccess(ctx context.Context, t1, t2 *Tree, ax1, ax2 storage.Accessor, eps float64, workers int, emit func(worker int, a, b Item)) JoinStats {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var st JoinStats
	if t1.size == 0 || t2.size == 0 {
		return st
	}
	stop, release := ctxpoll.Stop(ctx)
	defer release()
	if workers == 1 || t1.root.leaf || t2.root.leaf {
		v := newJoinVisit(t1, t2, &st, eps, stop, func(a, b Item) { emit(0, a, b) })
		v.ax1, v.ax2 = ax1, ax2
		v.nodes(t1.root, t2.root, t1.root.bounds(), t2.root.bounds())
		return st
	}

	// Root pairing, sequentially: touch both roots, restrict to the
	// intersection of the (ε-expanded) root regions, and sweep the root
	// entries. Each emitted child pairing becomes one task; the task order
	// is exactly the order the sequential traversal would descend in.
	ax1.Access(t1.root.page)
	ax2.Access(t2.root.page)
	inter := t1.root.bounds().Expand(eps).Intersection(t2.root.bounds().Expand(eps))
	if inter.IsEmpty() {
		return st
	}
	type task struct {
		n1, n2 *node
		b1, b2 geom.Rect
	}
	var tasks []task
	var rootScratch sweepScratch
	sweepPairs(t1.root.entries, t2.root.entries, inter, eps, &st, &rootScratch, func(e1, e2 *entry) {
		tasks = append(tasks, task{e1.child, e2.child, e1.rect, e2.rect})
	})

	type taskResult struct {
		st             JoinStats
		trace1, trace2 []storage.PageID
	}
	results := make([]taskResult, len(tasks))
	var next atomic.Int64
	var wg sync.WaitGroup
	for w := 0; w < workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			// One visitor per worker: the sweep scratch is reused across
			// every task the worker processes.
			v := newJoinVisit(t1, t2, nil, eps, stop, func(a, b Item) { emit(w, a, b) })
			for {
				if stop != nil && stop() {
					return
				}
				i := int(next.Add(1)) - 1
				if i >= len(tasks) {
					return
				}
				res := &results[i]
				v.st = &res.st
				v.trace1, v.trace2 = &res.trace1, &res.trace2
				v.nodes(tasks[i].n1, tasks[i].n2, tasks[i].b1, tasks[i].b2)
			}
		}(w)
	}
	wg.Wait()
	if ctx.Err() != nil {
		// Cancelled: the partial traces would not reproduce any sequential
		// state; the caller discards the statistics along with the error.
		return st
	}

	// Merge the per-task statistics and replay the page traces in task
	// order. Every statistic is a sum, so the merge is deterministic; the
	// replay reproduces the sequential access sequence, so the access
	// contexts end in the same state with the same hit/miss counts.
	for i := range results {
		res := &results[i]
		st.Pairs += res.st.Pairs
		st.RectTests += res.st.RectTests
		st.LeafTests += res.st.LeafTests
		for _, pid := range res.trace1 {
			ax1.Access(pid)
		}
		for _, pid := range res.trace2 {
			ax2.Access(pid)
		}
	}
	return st
}
