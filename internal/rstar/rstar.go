// Package rstar implements the R*-tree [BKSS 90] as a secondary-storage
// spatial access method: nodes correspond to pages of a configurable size,
// every node visit is routed through an LRU buffer manager, and the entry
// payload size is configurable so that storing approximations in addition
// to the MBR (section 3.4, approach 2) measurably reduces the page
// capacity — exactly the trade-off Figures 10 and 11 quantify.
//
// The spatial join of step 1 (the MBR-join) is the synchronized traversal
// of two R*-trees after [BKS 93a], with restriction of the search space to
// the intersection rectangle of the node regions and plane-sweep ordering
// of the entries.
package rstar

import (
	"fmt"
	"slices"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/rtreecore"
	"spatialjoin/internal/storage"
)

// Item is one data entry of the tree: a geometric key (normally the MBR of
// the object; under section 3.4's approach 1, the bounding box of a finer
// conservative approximation) and the object identifier.
type Item struct {
	Rect geom.Rect
	ID   int32
}

// Config sizes the tree's pages and buffer.
type Config struct {
	// PageSize is the page size in bytes (the paper uses 2048 and 4096).
	PageSize int
	// LeafEntryBytes is the size of one data entry: 16 B for the MBR plus
	// 32 B of additional information plus any approximations stored with
	// it (section 5; see approx.ApproxByteSize).
	LeafEntryBytes int
	// BufferBytes is the LRU buffer capacity (the paper uses 128 KB).
	BufferBytes int
	// Split selects the overflow split algorithm (default: the R*-tree
	// topological split; SplitQuadraticGuttman gives the classic R-tree).
	Split SplitAlgorithm
	// BufferPolicy selects the page replacement policy (default LRU, the
	// paper's choice).
	BufferPolicy storage.Policy
	// Store, when non-nil, is the page store node visits are routed
	// through, overriding the counting buffer the tree would otherwise
	// build from BufferBytes/PageSize/BufferPolicy. Pass a
	// storage.FileStore to back the accounting with real paged reads.
	Store storage.PageStore
}

// DefaultConfig mirrors the section 5 setup: 4 KB pages, MBR-only entries,
// 128 KB buffer.
func DefaultConfig() Config {
	return Config{PageSize: 4096, LeafEntryBytes: 48, BufferBytes: 128 << 10}
}

const (
	pageHeaderBytes    = 16 // level, count, ...
	internalEntryBytes = 20 // MBR (16 B) + child pointer (4 B)
)

// Tree is a paged R*-tree.
type Tree struct {
	cfg      Config
	buf      storage.PageStore
	root     *node
	height   int
	size     int
	leafCap  int
	innerCap int
	minLeaf  int
	minInner int
	nextPage storage.PageID
}

type entry struct {
	rect  geom.Rect
	child *node // nil for leaf entries
	item  Item
}

type node struct {
	page    storage.PageID
	leaf    bool
	entries []entry
}

func (n *node) bounds() geom.Rect {
	b := geom.EmptyRect()
	for _, e := range n.entries {
		b = b.Union(e.rect)
	}
	return b
}

// New creates an empty tree. Capacities derive from the page geometry; a
// page must fit at least three entries of either kind.
func New(cfg Config) *Tree {
	leafCap := (cfg.PageSize - pageHeaderBytes) / cfg.LeafEntryBytes
	innerCap := (cfg.PageSize - pageHeaderBytes) / internalEntryBytes
	if leafCap < 3 || innerCap < 3 {
		panic(fmt.Sprintf("rstar: page size %d too small for entries of %d bytes",
			cfg.PageSize, cfg.LeafEntryBytes))
	}
	buf := cfg.Store
	if buf == nil {
		buf = storage.NewBufferManagerPolicy(cfg.BufferBytes, cfg.PageSize, cfg.BufferPolicy)
	}
	t := &Tree{
		cfg:      cfg,
		buf:      buf,
		height:   1,
		leafCap:  leafCap,
		innerCap: innerCap,
		minLeaf:  maxInt(2, leafCap*2/5),
		minInner: maxInt(2, innerCap*2/5),
	}
	t.root = t.newNode(true)
	return t
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func (t *Tree) newNode(leaf bool) *node {
	n := &node{page: t.nextPage, leaf: leaf}
	t.nextPage++
	return n
}

// Buffer exposes the page store for measurements.
func (t *Tree) Buffer() storage.PageStore { return t.buf }

// Size returns the number of stored items.
func (t *Tree) Size() int { return t.size }

// Height returns the number of levels.
func (t *Tree) Height() int { return t.height }

// Pages returns the number of allocated pages.
func (t *Tree) Pages() int { return int(t.nextPage) }

// LeafCapacity returns the data-page capacity implied by the entry size —
// the quantity the approximation storage of section 3.4 reduces.
func (t *Tree) LeafCapacity() int { return t.leafCap }

// PageBreakdown counts the live leaf and directory pages of the tree —
// the statistics hook for the adaptive planner, whose traversal cost
// term charges per page touched. It walks the current node structure,
// so (unlike Pages, which reports the allocation high-water mark) the
// counts reflect pages a traversal can actually reach.
func (t *Tree) PageBreakdown() (leaves, dirs int) {
	var walk func(n *node)
	walk = func(n *node) {
		if n.leaf {
			leaves++
			return
		}
		dirs++
		for _, e := range n.entries {
			walk(e.child)
		}
	}
	walk(t.root)
	return leaves, dirs
}

// capacityOf returns the capacity of a node at the given level.
func (t *Tree) capacityOf(leaf bool) int {
	if leaf {
		return t.leafCap
	}
	return t.innerCap
}

func (t *Tree) minFillOf(leaf bool) int {
	if leaf {
		return t.minLeaf
	}
	return t.minInner
}

// touch routes one node visit through the shared buffer — the
// single-query accounting mode used by construction and the plain query
// entry points. Queries that must run concurrently route their visits
// through a per-query storage.Accessor instead (the *Access variants).
func (t *Tree) touch(n *node) { t.buf.Access(n.page) }

// NewSession returns a per-query access context over the tree's page
// store: a private replacement simulation seeded from the store's
// current buffer snapshot, with its own counters. Any number of sessions
// may query the tree concurrently through the *Access entry points; the
// shared buffer (and therefore every other query's accounting) is left
// untouched.
func (t *Tree) NewSession() *storage.Session { return storage.NewSession(t.buf) }

// Insert adds an item, following the R*-tree insertion algorithm
// (ChooseSubtree by overlap/area enlargement, forced reinsertion on the
// first overflow per level, topological split otherwise).
func (t *Tree) Insert(it Item) {
	t.size++
	queue := []pendingEntry{{e: entry{rect: it.Rect, item: it}, level: 1}}
	reinserted := make(map[int]bool)
	for len(queue) > 0 {
		p := queue[0]
		queue = queue[1:]
		split := t.chooseAndInsert(t.root, t.height, p.e, p.level, reinserted, &queue)
		if split != nil {
			old := t.root
			t.root = t.newNode(false)
			t.root.entries = []entry{
				{rect: old.bounds(), child: old},
				{rect: split.bounds(), child: split},
			}
			t.height++
		}
	}
}

type pendingEntry struct {
	e     entry
	level int
}

func (t *Tree) chooseAndInsert(n *node, nodeLevel int, e entry, targetLevel int, reinserted map[int]bool, queue *[]pendingEntry) *node {
	t.touch(n)
	if nodeLevel == targetLevel {
		n.entries = append(n.entries, e)
		return t.overflowTreatment(n, nodeLevel, reinserted, queue)
	}
	rects := make([]geom.Rect, len(n.entries))
	for i, c := range n.entries {
		rects[i] = c.rect
	}
	i := rtreecore.ChooseSubtree(rects, e.rect, nodeLevel-1 == 1)
	child := n.entries[i].child
	split := t.chooseAndInsert(child, nodeLevel-1, e, targetLevel, reinserted, queue)
	n.entries[i].rect = child.bounds()
	if split != nil {
		n.entries = append(n.entries, entry{rect: split.bounds(), child: split})
		return t.overflowTreatment(n, nodeLevel, reinserted, queue)
	}
	return nil
}

func (t *Tree) overflowTreatment(n *node, level int, reinserted map[int]bool, queue *[]pendingEntry) *node {
	if len(n.entries) <= t.capacityOf(n.leaf) {
		return nil
	}
	// Forced reinsertion is an R*-tree mechanism; the classic Guttman
	// variant splits immediately.
	if t.cfg.Split == SplitRStar && level != t.height && !reinserted[level] {
		reinserted[level] = true
		p := len(n.entries) * 3 / 10
		if p < 1 {
			p = 1
		}
		rects := make([]geom.Rect, len(n.entries))
		for i, e := range n.entries {
			rects[i] = e.rect
		}
		order := rtreecore.ReinsertOrder(rects, p)
		drop := make(map[int]bool, p)
		for _, i := range order {
			drop[i] = true
			*queue = append(*queue, pendingEntry{e: n.entries[i], level: level})
		}
		kept := n.entries[:0]
		for i, e := range n.entries {
			if !drop[i] {
				kept = append(kept, e)
			}
		}
		n.entries = kept
		return nil
	}
	return t.split(n)
}

func (t *Tree) split(n *node) *node {
	rects := make([]geom.Rect, len(n.entries))
	for i, e := range n.entries {
		rects[i] = e.rect
	}
	var g1, g2 []int
	if t.cfg.Split == SplitQuadraticGuttman {
		g1, g2 = rtreecore.SplitQuadratic(rects, t.minFillOf(n.leaf))
	} else {
		g1, g2 = rtreecore.Split(rects, t.minFillOf(n.leaf))
	}
	older := n.entries
	n.entries = make([]entry, 0, len(g1))
	for _, i := range g1 {
		n.entries = append(n.entries, older[i])
	}
	sib := t.newNode(n.leaf)
	sib.entries = make([]entry, 0, len(g2))
	for _, i := range g2 {
		sib.entries = append(sib.entries, older[i])
	}
	t.touch(sib)
	return sib
}

// PointQuery calls fn for every item whose key rectangle contains p,
// with page visits accounted on the shared buffer (single-query mode).
func (t *Tree) PointQuery(p geom.Point, fn func(Item)) {
	t.PointQueryAccess(t.buf, p, fn)
}

// PointQueryAccess is PointQuery with page visits routed through an
// explicit access context. With per-query sessions (NewSession), any
// number of searches may run concurrently on the same tree.
func (t *Tree) PointQueryAccess(ax storage.Accessor, p geom.Point, fn func(Item)) {
	t.searchRect(ax, t.root, geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y}, nil, fn)
}

// WindowQuery calls fn for every item whose key rectangle intersects the
// query window w, with page visits accounted on the shared buffer
// (single-query mode).
func (t *Tree) WindowQuery(w geom.Rect, fn func(Item)) {
	t.WindowQueryAccess(t.buf, w, fn)
}

// WindowQueryAccess is WindowQuery with page visits routed through an
// explicit access context (see PointQueryAccess).
func (t *Tree) WindowQueryAccess(ax storage.Accessor, w geom.Rect, fn func(Item)) {
	t.WindowQueryAccessStop(ax, w, nil, fn)
}

// WindowQueryAccessStop is WindowQueryAccess with an abort hook: a
// non-nil stop is polled at every node visit and ends the search when it
// returns true — the cancellation hook of the context-threaded query
// entry points.
func (t *Tree) WindowQueryAccessStop(ax storage.Accessor, w geom.Rect, stop func() bool, fn func(Item)) {
	t.searchRect(ax, t.root, w, stop, fn)
}

func (t *Tree) searchRect(ax storage.Accessor, n *node, w geom.Rect, stop func() bool, fn func(Item)) {
	if stop != nil && stop() {
		return
	}
	ax.Access(n.page)
	for _, e := range n.entries {
		if !e.rect.Intersects(w) {
			continue
		}
		if n.leaf {
			fn(e.item)
		} else {
			t.searchRect(ax, e.child, w, stop, fn)
		}
	}
}

// All calls fn for every stored item (a full scan in tree order).
func (t *Tree) All(fn func(Item)) {
	t.searchRect(t.buf, t.root, geom.Rect{MinX: -1e300, MinY: -1e300, MaxX: 1e300, MaxY: 1e300}, nil, fn)
}

// Validate checks the structural invariants; for tests.
func (t *Tree) Validate() error {
	count, err := t.validate(t.root, t.height)
	if err != nil {
		return err
	}
	if count != t.size {
		return fmt.Errorf("rstar: reachable items %d != size %d", count, t.size)
	}
	return nil
}

func (t *Tree) validate(n *node, level int) (int, error) {
	if len(n.entries) > t.capacityOf(n.leaf) {
		return 0, fmt.Errorf("rstar: node with %d entries exceeds capacity %d", len(n.entries), t.capacityOf(n.leaf))
	}
	if n.leaf {
		if level != 1 {
			return 0, fmt.Errorf("rstar: leaf at level %d", level)
		}
		return len(n.entries), nil
	}
	total := 0
	for _, e := range n.entries {
		cb := e.child.bounds()
		if !e.rect.Contains(cb) || !cb.Contains(e.rect) {
			return 0, fmt.Errorf("rstar: directory rect %v != child bounds %v", e.rect, cb)
		}
		sub, err := t.validate(e.child, level-1)
		if err != nil {
			return 0, err
		}
		total += sub
	}
	return total, nil
}

// JoinStats reports the work of one MBR-join.
type JoinStats struct {
	Pairs     int64 // candidate pairs emitted
	RectTests int64 // key intersection tests between entries (all levels)
	LeafTests int64 // key intersection tests between data entries only
}

// Join runs the MBR-join of step 1 [BKS 93a]: a synchronized depth-first
// traversal of both trees. At each node pair the search space is
// restricted to the intersection rectangle of the node regions, entries
// are sorted by their lower x bound, and intersecting entry pairs are
// enumerated with a plane sweep over that order. fn receives every pair of
// items whose key rectangles intersect — the candidate set of the
// multi-step join. Page visits are accounted on the trees' shared
// buffers (single-query mode).
func Join(t1, t2 *Tree, fn func(a, b Item)) JoinStats {
	return JoinAccess(t1, t2, t1.buf, t2.buf, fn)
}

// JoinAccess is Join with each tree's page visits routed through an
// explicit access context. With per-query sessions (NewSession on both
// trees), any number of joins may run concurrently on the same trees.
func JoinAccess(t1, t2 *Tree, ax1, ax2 storage.Accessor, fn func(a, b Item)) JoinStats {
	return JoinAccessEps(t1, t2, ax1, ax2, 0, nil, fn)
}

// JoinAccessEps generalizes JoinAccess to the ε-expanded MBR predicate of
// the within-distance join: fn receives every pair of items whose key
// rectangles come within eps of each other per axis (equivalently, whose
// ε-expanded rectangles intersect — the candidate predicate of the
// ε-join; with eps = 0 this is exactly the MBR intersection join). The
// traversal restricts the search space to the intersection of the
// ε-expanded node regions and keeps the plane-sweep enumeration, with the
// ε slack folded into the sweep bounds. A non-nil stop is polled at every
// node pair and aborts the traversal when it returns true (partial
// statistics are returned) — the cancellation hook of the
// context-threaded join pipeline.
func JoinAccessEps(t1, t2 *Tree, ax1, ax2 storage.Accessor, eps float64, stop func() bool, fn func(a, b Item)) JoinStats {
	var st JoinStats
	if t1.size == 0 || t2.size == 0 {
		return st
	}
	v := newJoinVisit(t1, t2, &st, eps, stop, fn)
	v.ax1, v.ax2 = ax1, ax2
	v.nodes(t1.root, t2.root, t1.root.bounds(), t2.root.bounds())
	return st
}

// joinVisit parameterizes the synchronized traversal over how node visits
// are recorded: the sequential Join routes them through access contexts
// (ax1/ax2), while the parallel traversal of JoinParallel records per-task
// page traces (trace1/trace2) and replays them afterwards (the buffer
// manager is not safe for concurrent use, and replaying in canonical
// order keeps the miss counts identical to the sequential traversal). eps
// widens every rectangle predicate for the within-distance join (0 =
// plain intersection); stop, when non-nil, aborts the traversal early.
//
// The visitor owns one sweep scratch per traversal depth, so the restrict
// and plane-sweep buffers of every node-pair expansion are reused across
// sibling pairs at the same depth: in steady state the expansion performs
// zero heap allocations (guarded by TestNodePairSweepAllocFree).
type joinVisit struct {
	ax1, ax2       storage.Accessor // nil: record into the traces instead
	trace1, trace2 *[]storage.PageID
	st             *JoinStats
	fn             func(a, b Item)
	eps            float64
	stop           func() bool
	depth          int
	scratch        []sweepScratch
}

// sweepScratch holds the reusable restrict buffers of one traversal
// depth. The slices are stored back after every use so their capacity
// survives to the next node pair at that depth.
type sweepScratch struct{ r1, r2 []entry }

// newJoinVisit sizes a visitor for a traversal of the two trees: the
// recursion descends at least one tree per level, so the depth never
// exceeds the height sum.
func newJoinVisit(t1, t2 *Tree, st *JoinStats, eps float64, stop func() bool, fn func(a, b Item)) *joinVisit {
	return &joinVisit{
		st: st, fn: fn, eps: eps, stop: stop,
		scratch: make([]sweepScratch, t1.height+t2.height+1),
	}
}

// scratchAt returns the sweep scratch of one traversal depth, growing the
// ladder if a caller exceeds the sizing estimate.
func (v *joinVisit) scratchAt(d int) *sweepScratch {
	for d >= len(v.scratch) {
		v.scratch = append(v.scratch, sweepScratch{})
	}
	return &v.scratch[d]
}

func (v *joinVisit) touch1(n *node) {
	if v.ax1 != nil {
		v.ax1.Access(n.page)
		return
	}
	*v.trace1 = append(*v.trace1, n.page)
}

func (v *joinVisit) touch2(n *node) {
	if v.ax2 != nil {
		v.ax2.Access(n.page)
		return
	}
	*v.trace2 = append(*v.trace2, n.page)
}

// within reports whether the per-axis gap between two rectangles is at
// most eps — the ε-expanded intersection predicate. With eps = 0 it is
// exactly Rect.Intersects.
func within(a, b geom.Rect, eps float64) bool {
	if a.IsEmpty() || b.IsEmpty() {
		return false
	}
	return a.MinX <= b.MaxX+eps && b.MinX <= a.MaxX+eps &&
		a.MinY <= b.MaxY+eps && b.MinY <= a.MaxY+eps
}

// nodes expands one node pair. b1 and b2 are the node regions, threaded
// down from the parent entries (the directory invariant makes the entry
// rectangle exactly the child's bounds), so the traversal never recomputes
// a bounds union.
func (v *joinVisit) nodes(n1, n2 *node, b1, b2 geom.Rect) {
	if v.stop != nil && v.stop() {
		return
	}
	v.touch1(n1)
	v.touch2(n2)
	// Restrict the search space to the intersection of the ε-expanded
	// node regions: every entry pair within eps of each other has both
	// entries intersecting it (each rectangle lies in its own expanded
	// region and meets the expansion of the other side's).
	inter := b1.Expand(v.eps).Intersection(b2.Expand(v.eps))
	if inter.IsEmpty() {
		return
	}
	sc := v.scratchAt(v.depth)
	v.depth++
	switch {
	case n1.leaf && n2.leaf:
		before := v.st.RectTests
		sweepPairs(n1.entries, n2.entries, inter, v.eps, v.st, sc, func(e1, e2 *entry) {
			v.st.Pairs++
			v.fn(e1.item, e2.item)
		})
		v.st.LeafTests += v.st.RectTests - before
	case !n1.leaf && !n2.leaf:
		sweepPairs(n1.entries, n2.entries, inter, v.eps, v.st, sc, func(e1, e2 *entry) {
			v.nodes(e1.child, e2.child, e1.rect, e2.rect)
		})
	case n1.leaf:
		// Different heights: descend the deeper tree only.
		for i := range n2.entries {
			v.st.RectTests++
			if within(n2.entries[i].rect, b1, v.eps) {
				v.nodes(n1, n2.entries[i].child, b1, n2.entries[i].rect)
			}
		}
	default:
		for i := range n1.entries {
			v.st.RectTests++
			if within(n1.entries[i].rect, b2, v.eps) {
				v.nodes(n1.entries[i].child, n2, n1.entries[i].rect, b2)
			}
		}
	}
	v.depth--
}

// sweepPairs enumerates the pairs of entries whose rectangles satisfy the
// ε-expanded intersection predicate. Restricting the search space: only
// entries intersecting the (ε-expanded) common intersection rectangle
// participate. Plane-sweep order: both restricted sequences are sorted by
// MinX and swept, so an entry is only tested against entries whose x
// ranges come within eps of its own [BKS 93a]. The restricted sequences
// live in sc's reusable buffers, so a warmed traversal allocates nothing
// here.
func sweepPairs(e1, e2 []entry, inter geom.Rect, eps float64, st *JoinStats, sc *sweepScratch, emit func(a, b *entry)) {
	r1 := restrict(e1, inter, st, sc.r1[:0])
	sc.r1 = r1
	r2 := restrict(e2, inter, st, sc.r2[:0])
	sc.r2 = r2
	if len(r1) == 0 || len(r2) == 0 {
		return
	}
	slices.SortFunc(r1, compareMinX)
	slices.SortFunc(r2, compareMinX)
	i, j := 0, 0
	for i < len(r1) && j < len(r2) {
		if r1[i].rect.MinX <= r2[j].rect.MinX {
			sweepInternal(&r1[i], r2, j, eps, st, emit, false)
			i++
		} else {
			sweepInternal(&r2[j], r1, i, eps, st, emit, true)
			j++
		}
	}
}

// compareMinX orders entries by their lower x bound — the plane-sweep
// order of [BKS 93a]. A typed comparison: sort.Slice's reflection-based
// swapper allocated on every node pair and dominated the join's
// allocation profile.
func compareMinX(a, b entry) int {
	switch {
	case a.rect.MinX < b.rect.MinX:
		return -1
	case b.rect.MinX < a.rect.MinX:
		return 1
	default:
		return 0
	}
}

// sweepInternal tests pivot against others[from:] while their x ranges
// come within eps of the pivot's.
func sweepInternal(pivot *entry, others []entry, from int, eps float64, st *JoinStats, emit func(a, b *entry), swapped bool) {
	for k := from; k < len(others) && others[k].rect.MinX <= pivot.rect.MaxX+eps; k++ {
		st.RectTests++
		if pivot.rect.MinY <= others[k].rect.MaxY+eps && others[k].rect.MinY <= pivot.rect.MaxY+eps {
			if swapped {
				emit(&others[k], pivot)
			} else {
				emit(pivot, &others[k])
			}
		}
	}
}

// restrict filters entries to those intersecting the search-space
// rectangle, appending to buf (the caller's reusable scratch).
func restrict(es []entry, inter geom.Rect, st *JoinStats, buf []entry) []entry {
	out := buf
	for i := range es {
		st.RectTests++
		if es[i].rect.Intersects(inter) {
			out = append(out, es[i])
		}
	}
	return out
}
