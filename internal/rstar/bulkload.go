package rstar

import (
	"math"
	"sort"

	"spatialjoin/internal/geom"
)

// SplitAlgorithm selects the node split used on overflow.
type SplitAlgorithm int

// Split algorithms: the R*-tree topological split [BKSS 90] (default) and
// Guttman's quadratic split [Gut 84] as the classic-R-tree baseline.
const (
	SplitRStar SplitAlgorithm = iota
	SplitQuadraticGuttman
)

// BulkLoad builds a tree over the items with Sort-Tile-Recursive packing:
// items are sorted by x, partitioned into √-proportioned vertical slabs,
// sorted by y within each slab and packed into full leaves; directory
// levels are packed the same way. STR produces near-100 % page utilization
// — the static counterpart of the paper's dynamically built R*-trees,
// exposed for the build-strategy ablation.
func BulkLoad(items []Item, cfg Config) *Tree {
	t := New(cfg)
	if len(items) == 0 {
		return t
	}
	leaves := t.packLeaves(items)
	level := 1
	for len(leaves) > 1 {
		leaves = t.packNodes(leaves)
		level++
	}
	t.root = leaves[0]
	t.height = level
	t.size = len(items)
	return t
}

// packLeaves tiles the items into full leaves.
func (t *Tree) packLeaves(items []Item) []*node {
	sorted := make([]Item, len(items))
	copy(sorted, items)
	capacity := t.leafCap
	nLeaves := (len(sorted) + capacity - 1) / capacity
	nSlabs := int(math.Ceil(math.Sqrt(float64(nLeaves))))
	slabSize := nSlabs * capacity

	sort.Slice(sorted, func(i, j int) bool {
		return sorted[i].Rect.Center().X < sorted[j].Rect.Center().X
	})
	var leaves []*node
	for lo := 0; lo < len(sorted); lo += slabSize {
		hi := lo + slabSize
		if hi > len(sorted) {
			hi = len(sorted)
		}
		slab := sorted[lo:hi]
		sort.Slice(slab, func(i, j int) bool {
			return slab[i].Rect.Center().Y < slab[j].Rect.Center().Y
		})
		for l := 0; l < len(slab); l += capacity {
			h := l + capacity
			if h > len(slab) {
				h = len(slab)
			}
			leaf := t.newNode(true)
			for _, it := range slab[l:h] {
				leaf.entries = append(leaf.entries, entry{rect: it.Rect, item: it})
			}
			t.touch(leaf)
			leaves = append(leaves, leaf)
		}
	}
	return leaves
}

// packNodes tiles child nodes into directory nodes.
func (t *Tree) packNodes(children []*node) []*node {
	type childBox struct {
		n *node
		b geom.Rect
	}
	boxes := make([]childBox, len(children))
	for i, c := range children {
		boxes[i] = childBox{n: c, b: c.bounds()}
	}
	capacity := t.innerCap
	nNodes := (len(boxes) + capacity - 1) / capacity
	nSlabs := int(math.Ceil(math.Sqrt(float64(nNodes))))
	slabSize := nSlabs * capacity

	sort.Slice(boxes, func(i, j int) bool {
		return boxes[i].b.Center().X < boxes[j].b.Center().X
	})
	var out []*node
	for lo := 0; lo < len(boxes); lo += slabSize {
		hi := lo + slabSize
		if hi > len(boxes) {
			hi = len(boxes)
		}
		slab := boxes[lo:hi]
		sort.Slice(slab, func(i, j int) bool {
			return slab[i].b.Center().Y < slab[j].b.Center().Y
		})
		for l := 0; l < len(slab); l += capacity {
			h := l + capacity
			if h > len(slab) {
				h = len(slab)
			}
			dir := t.newNode(false)
			for _, cb := range slab[l:h] {
				dir.entries = append(dir.entries, entry{rect: cb.b, child: cb.n})
			}
			t.touch(dir)
			out = append(out, dir)
		}
	}
	return out
}
