package rstar

import (
	"errors"
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
)

func randomItems(n int, seed int64) []Item {
	rng := rand.New(rand.NewSource(seed))
	items := make([]Item, n)
	for i := range items {
		x, y := rng.Float64()*1000, rng.Float64()*1000
		items[i] = Item{
			Rect: geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*20, MaxY: y + rng.Float64()*20},
			ID:   int32(i),
		}
	}
	return items
}

func TestTreeSerializeRoundTrip(t *testing.T) {
	cfg := DefaultConfig()
	for _, build := range []struct {
		name string
		make func([]Item) *Tree
	}{
		{"dynamic", func(items []Item) *Tree {
			tr := New(cfg)
			for _, it := range items {
				tr.Insert(it)
			}
			return tr
		}},
		{"bulk", func(items []Item) *Tree { return BulkLoad(items, cfg) }},
	} {
		t.Run(build.name, func(t *testing.T) {
			items := randomItems(700, 17)
			tr := build.make(items)
			blob, err := tr.MarshalBinary()
			if err != nil {
				t.Fatal(err)
			}
			got, err := UnmarshalTree(blob, cfg)
			if err != nil {
				t.Fatal(err)
			}
			if got.Size() != tr.Size() || got.Height() != tr.Height() || got.Pages() != tr.Pages() {
				t.Fatalf("shape differs: size %d/%d height %d/%d pages %d/%d",
					got.Size(), tr.Size(), got.Height(), tr.Height(), got.Pages(), tr.Pages())
			}
			if err := got.Validate(); err != nil {
				t.Fatalf("restored tree invalid: %v", err)
			}
			// Identical structure ⇒ identical page-access traces and
			// identical search results.
			tr.Buffer().Clear()
			got.Buffer().Clear()
			w := geom.Rect{MinX: 100, MinY: 100, MaxX: 400, MaxY: 400}
			var wantIDs, gotIDs []int32
			tr.WindowQuery(w, func(it Item) { wantIDs = append(wantIDs, it.ID) })
			got.WindowQuery(w, func(it Item) { gotIDs = append(gotIDs, it.ID) })
			if len(wantIDs) == 0 || len(wantIDs) != len(gotIDs) {
				t.Fatalf("window query %d results, want %d (nonzero)", len(gotIDs), len(wantIDs))
			}
			for i := range wantIDs {
				if wantIDs[i] != gotIDs[i] {
					t.Fatalf("window query order differs at %d", i)
				}
			}
			if tr.Buffer().Misses() != got.Buffer().Misses() || tr.Buffer().Hits() != got.Buffer().Hits() {
				t.Errorf("page trace differs: %d/%d vs %d/%d",
					tr.Buffer().Hits(), tr.Buffer().Misses(), got.Buffer().Hits(), got.Buffer().Misses())
			}
		})
	}
}

func TestTreeSerializeJoinEquivalence(t *testing.T) {
	cfg := DefaultConfig()
	t1 := BulkLoad(randomItems(400, 5), cfg)
	t2 := BulkLoad(randomItems(400, 6), cfg)
	b1, err := t1.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	b2, err := t2.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	t1.Buffer().Clear()
	t2.Buffer().Clear()
	var want int
	wantStats := Join(t1, t2, func(a, b Item) { want++ })
	wantM := t1.Buffer().Misses() + t2.Buffer().Misses()

	r1, err := UnmarshalTree(b1, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r2, err := UnmarshalTree(b2, cfg)
	if err != nil {
		t.Fatal(err)
	}
	r1.Buffer().Clear()
	r2.Buffer().Clear()
	var got int
	gotStats := Join(r1, r2, func(a, b Item) { got++ })
	gotM := r1.Buffer().Misses() + r2.Buffer().Misses()
	if got != want || gotStats != wantStats || gotM != wantM {
		t.Errorf("join differs after round trip: %d pairs/%+v/%d misses, want %d/%+v/%d",
			got, gotStats, gotM, want, wantStats, wantM)
	}
}

func TestTreeSerializeInsertAfterReopen(t *testing.T) {
	cfg := DefaultConfig()
	tr := BulkLoad(randomItems(200, 9), cfg)
	blob, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	got, err := UnmarshalTree(blob, cfg)
	if err != nil {
		t.Fatal(err)
	}
	// nextPage must have been restored: new nodes must not collide with
	// existing page IDs.
	for _, it := range randomItems(300, 10) {
		it.ID += 1000
		got.Insert(it)
	}
	if err := got.Validate(); err != nil {
		t.Fatalf("tree invalid after post-reopen inserts: %v", err)
	}
	if got.Size() != 500 {
		t.Fatalf("size %d, want 500", got.Size())
	}
}

func TestTreeSerializeCorruptInputs(t *testing.T) {
	cfg := DefaultConfig()
	tr := BulkLoad(randomItems(150, 3), cfg)
	blob, err := tr.MarshalBinary()
	if err != nil {
		t.Fatal(err)
	}
	if _, err := UnmarshalTree(blob, cfg); err != nil {
		t.Fatalf("pristine blob must parse: %v", err)
	}
	for _, n := range []int{0, 4, 20, treeHeaderBytes, len(blob) - 1} {
		if _, err := UnmarshalTree(blob[:n], cfg); !errors.Is(err, ErrCorrupt) {
			t.Errorf("truncation to %d: err = %v, want ErrCorrupt", n, err)
		}
	}
	// A different page size must be rejected (slot mismatch).
	small := cfg
	small.PageSize = 2048
	if _, err := UnmarshalTree(blob, small); !errors.Is(err, ErrCorrupt) {
		t.Errorf("config mismatch: err = %v, want ErrCorrupt", err)
	}
	// Structural corruption must error or yield a valid tree, never
	// panic.
	for pos := 0; pos < len(blob); pos += 11 {
		mut := append([]byte{}, blob...)
		mut[pos] ^= 0xA5
		got, err := UnmarshalTree(mut, cfg)
		if err == nil {
			if vErr := got.Validate(); vErr != nil {
				// The only silent corruption a flip can cause is inside
				// rectangle coordinates, which Validate may or may not
				// notice; a structurally invalid tree must not surface.
				t.Errorf("byte flip at %d: invalid tree accepted: %v", pos, vErr)
			}
		}
	}
}
