package rstar

import (
	"encoding/binary"
	"errors"
	"fmt"
	"math"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/storage"
)

// The R*-tree persists in a page-granular layout: one fixed-size slot per
// page ID, so the serialized form mirrors the paged structure the buffer
// accounting models and a slot can be fetched individually by page
// number. Reconstruction preserves the page IDs exactly — a join on a
// reopened tree replays the identical page-access trace, so the hit/miss
// counts match the originally built tree byte for byte.
//
// The physical slot is larger than the modelled page (cfg.PageSize):
// the model follows the paper's 4-byte-coordinate entry sizes (16 B per
// MBR), while the implementation stores float64 coordinates (32 B per
// MBR) plus a 4-byte ID. The slot size is therefore derived from the
// node capacities, not from cfg.PageSize; the modelled metrics are not
// affected (see DESIGN.md, "On-disk formats").
//
// Layout (little endian):
//
//	magic    uint32  'RSTP'
//	version  uint16  1
//	slot     uint32  bytes per node slot
//	nextPage uint32  number of slots
//	rootPage uint32
//	height   uint16
//	size     uint64  number of stored items
//	slots ×nextPage, each slot bytes:
//	  used  uint8   0 = free page (unreachable after deletes), 1 = node
//	  leaf  uint8
//	  count uint16
//	  entries ×count: rect 4×float64, then item ID (leaf) or child
//	  page (internal) as uint32
const (
	treeMagic       = 0x52535450 // "RSTP"
	treeVersion     = 1
	treeHeaderBytes = 28
	slotHeaderBytes = 4
	slotEntryBytes  = 4*8 + 4
)

// ErrCorrupt reports malformed serialized tree data.
var ErrCorrupt = errors.New("rstar: corrupt serialized tree")

// slotBytes returns the physical slot size implied by the node
// capacities.
func (t *Tree) slotBytes() int {
	return slotHeaderBytes + slotEntryBytes*maxInt(t.leafCap, t.innerCap)
}

// MarshalBinary serializes the tree in the page-granular layout. Free
// pages (left behind by deletions) become zeroed slots.
func (t *Tree) MarshalBinary() ([]byte, error) {
	slot := t.slotBytes()
	if t.nextPage > math.MaxUint32/2 || t.height > math.MaxUint16 {
		return nil, fmt.Errorf("rstar: tree with %d pages exceeds the format", t.nextPage)
	}
	buf := make([]byte, treeHeaderBytes+int(t.nextPage)*slot)
	binary.LittleEndian.PutUint32(buf[0:], treeMagic)
	binary.LittleEndian.PutUint16(buf[4:], treeVersion)
	binary.LittleEndian.PutUint32(buf[6:], uint32(slot))
	binary.LittleEndian.PutUint32(buf[10:], uint32(t.nextPage))
	binary.LittleEndian.PutUint32(buf[14:], uint32(t.root.page))
	binary.LittleEndian.PutUint16(buf[18:], uint16(t.height))
	binary.LittleEndian.PutUint64(buf[20:], uint64(t.size))
	if err := t.marshalNode(buf, t.root, slot); err != nil {
		return nil, err
	}
	return buf, nil
}

func (t *Tree) marshalNode(buf []byte, n *node, slot int) error {
	if len(n.entries) > (slot-slotHeaderBytes)/slotEntryBytes {
		return fmt.Errorf("rstar: node with %d entries overflows the %d-byte slot", len(n.entries), slot)
	}
	s := buf[treeHeaderBytes+int(n.page)*slot:]
	s[0] = 1
	if n.leaf {
		s[1] = 1
	}
	binary.LittleEndian.PutUint16(s[2:], uint16(len(n.entries)))
	off := slotHeaderBytes
	for _, e := range n.entries {
		putRect(s[off:], e.rect)
		if n.leaf {
			binary.LittleEndian.PutUint32(s[off+32:], uint32(e.item.ID))
		} else {
			binary.LittleEndian.PutUint32(s[off+32:], uint32(e.child.page))
			if err := t.marshalNode(buf, e.child, slot); err != nil {
				return err
			}
		}
		off += slotEntryBytes
	}
	return nil
}

func putRect(b []byte, r geom.Rect) {
	binary.LittleEndian.PutUint64(b[0:], math.Float64bits(r.MinX))
	binary.LittleEndian.PutUint64(b[8:], math.Float64bits(r.MinY))
	binary.LittleEndian.PutUint64(b[16:], math.Float64bits(r.MaxX))
	binary.LittleEndian.PutUint64(b[24:], math.Float64bits(r.MaxY))
}

func getRect(b []byte) geom.Rect {
	return geom.Rect{
		MinX: math.Float64frombits(binary.LittleEndian.Uint64(b[0:])),
		MinY: math.Float64frombits(binary.LittleEndian.Uint64(b[8:])),
		MaxX: math.Float64frombits(binary.LittleEndian.Uint64(b[16:])),
		MaxY: math.Float64frombits(binary.LittleEndian.Uint64(b[24:])),
	}
}

// rawNode is one parsed slot before the tree is linked.
type rawNode struct {
	used     bool
	leaf     bool
	rects    []geom.Rect
	ids      []uint32 // item IDs (leaf) or child pages (internal)
	resolved *node
}

// UnmarshalTree reconstructs a tree serialized by MarshalBinary under the
// same configuration (the capacities and buffer derive from cfg, so cfg
// must equal the one the tree was built with — the relation store's
// config fingerprint enforces this). Page IDs, structure and statistics
// are restored exactly; the buffer starts empty (restore a snapshot with
// Buffer().Restore to resume a saved buffer state).
func UnmarshalTree(data []byte, cfg Config) (*Tree, error) {
	t := New(cfg)
	if len(data) < treeHeaderBytes {
		return nil, fmt.Errorf("%w: truncated header", ErrCorrupt)
	}
	if binary.LittleEndian.Uint32(data[0:]) != treeMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrCorrupt)
	}
	if v := binary.LittleEndian.Uint16(data[4:]); v != treeVersion {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrCorrupt, v)
	}
	slot := int(binary.LittleEndian.Uint32(data[6:]))
	nextPage := int(binary.LittleEndian.Uint32(data[10:]))
	rootPage := int(binary.LittleEndian.Uint32(data[14:]))
	height := int(binary.LittleEndian.Uint16(data[18:]))
	size := binary.LittleEndian.Uint64(data[20:])
	if slot != t.slotBytes() {
		return nil, fmt.Errorf("%w: slot size %d does not match the configuration (want %d)", ErrCorrupt, slot, t.slotBytes())
	}
	if nextPage < 1 || uint64(len(data)-treeHeaderBytes) != uint64(nextPage)*uint64(slot) {
		return nil, fmt.Errorf("%w: %d slots of %d bytes do not fill %d bytes", ErrCorrupt, nextPage, slot, len(data)-treeHeaderBytes)
	}
	if rootPage >= nextPage || height < 1 || size > uint64(nextPage)*uint64(t.leafCap) {
		return nil, fmt.Errorf("%w: implausible header (root %d height %d size %d)", ErrCorrupt, rootPage, height, size)
	}

	raw := make([]rawNode, nextPage)
	for i := range raw {
		s := data[treeHeaderBytes+i*slot : treeHeaderBytes+(i+1)*slot]
		switch s[0] {
		case 0:
			continue // free page
		case 1:
		default:
			return nil, fmt.Errorf("%w: bad slot tag %d", ErrCorrupt, s[0])
		}
		r := &raw[i]
		r.used = true
		r.leaf = s[1] == 1
		count := int(binary.LittleEndian.Uint16(s[2:]))
		cap := t.innerCap
		if r.leaf {
			cap = t.leafCap
		}
		if s[1] > 1 || count > cap || slotHeaderBytes+count*slotEntryBytes > slot {
			return nil, fmt.Errorf("%w: slot %d with %d entries", ErrCorrupt, i, count)
		}
		r.rects = make([]geom.Rect, count)
		r.ids = make([]uint32, count)
		for k := 0; k < count; k++ {
			e := s[slotHeaderBytes+k*slotEntryBytes:]
			r.rects[k] = getRect(e)
			r.ids[k] = binary.LittleEndian.Uint32(e[32:])
		}
	}

	items := 0
	root, err := resolveNode(raw, rootPage, height, &items)
	if err != nil {
		return nil, err
	}
	for i := range raw {
		if raw[i].used && raw[i].resolved == nil {
			return nil, fmt.Errorf("%w: orphan node at page %d", ErrCorrupt, i)
		}
	}
	if uint64(items) != size {
		return nil, fmt.Errorf("%w: %d reachable items, header says %d", ErrCorrupt, items, size)
	}
	t.root = root
	t.height = height
	t.size = items
	t.nextPage = storage.PageID(nextPage)
	return t, nil
}

// Items calls fn for every stored item in tree order without routing the
// walk through the page buffer — a structural scan for serialization and
// validation that must not disturb the modelled access counts (contrast
// All, which simulates a full paged scan).
func (t *Tree) Items(fn func(Item)) { itemsRec(t.root, fn) }

func itemsRec(n *node, fn func(Item)) {
	for _, e := range n.entries {
		if n.leaf {
			fn(e.item)
		} else {
			itemsRec(e.child, fn)
		}
	}
}

// resolveNode links the raw slot at page into a node tree, checking that
// every page is referenced at most once and that all leaves sit at level
// 1. Directory entry rectangles are recomputed from the child bounds
// (they are exact copies in the source tree), so the invariant
// rect == child.bounds() holds by construction.
func resolveNode(raw []rawNode, page, level int, items *int) (*node, error) {
	if page < 0 || page >= len(raw) || !raw[page].used {
		return nil, fmt.Errorf("%w: reference to free page %d", ErrCorrupt, page)
	}
	r := &raw[page]
	if r.resolved != nil {
		return nil, fmt.Errorf("%w: page %d referenced twice", ErrCorrupt, page)
	}
	if r.leaf != (level == 1) {
		return nil, fmt.Errorf("%w: leaf flag of page %d contradicts level %d", ErrCorrupt, page, level)
	}
	n := &node{page: storage.PageID(page), leaf: r.leaf}
	r.resolved = n
	n.entries = make([]entry, len(r.rects))
	for k := range r.rects {
		if r.leaf {
			it := Item{Rect: r.rects[k], ID: int32(r.ids[k])}
			n.entries[k] = entry{rect: it.Rect, item: it}
			*items++
			continue
		}
		child, err := resolveNode(raw, int(r.ids[k]), level-1, items)
		if err != nil {
			return nil, err
		}
		n.entries[k] = entry{rect: child.bounds(), child: child}
	}
	return n, nil
}
