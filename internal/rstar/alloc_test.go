package rstar

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/geom"
)

// buildAllocTrees returns two joined trees whose pages all fit the
// buffer, so a warmed traversal performs no buffer faults (a miss
// allocates a frame node — legitimate, but not part of the node-pair
// expansion under test).
func buildAllocTrees(t *testing.T) (*Tree, *Tree) {
	t.Helper()
	rng := rand.New(rand.NewSource(7))
	cfg := DefaultConfig()
	cfg.BufferBytes = 64 << 20 // every page stays resident
	t1, t2 := New(cfg), New(cfg)
	for i := 0; i < 1500; i++ {
		x, y := rng.Float64(), rng.Float64()
		w, h := 0.01+0.02*rng.Float64(), 0.01+0.02*rng.Float64()
		t1.Insert(Item{Rect: geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}, ID: int32(i)})
		x, y = rng.Float64(), rng.Float64()
		t2.Insert(Item{Rect: geom.Rect{MinX: x, MinY: y, MaxX: x + w, MaxY: y + h}, ID: int32(i)})
	}
	return t1, t2
}

// TestNodePairSweepAllocFree is the allocation-regression guard of the
// synchronized-traversal hot path: once the visitor's per-depth scratch
// buffers have reached their high-water mark (one warm-up traversal), the
// node-pair expansion — search-space restriction, plane-sweep sort, pair
// enumeration — must perform zero heap allocations.
func TestNodePairSweepAllocFree(t *testing.T) {
	t1, t2 := buildAllocTrees(t)
	var st JoinStats
	var pairs int64
	v := newJoinVisit(t1, t2, &st, 0, nil, func(a, b Item) { pairs++ })
	v.ax1, v.ax2 = t1.buf, t2.buf
	b1, b2 := t1.root.bounds(), t2.root.bounds()

	v.nodes(t1.root, t2.root, b1, b2) // warm-up: scratch + buffer residency
	if pairs == 0 {
		t.Fatal("degenerate workload: the traversal emitted no pairs")
	}

	allocs := testing.AllocsPerRun(20, func() {
		v.nodes(t1.root, t2.root, b1, b2)
	})
	if allocs != 0 {
		t.Fatalf("steady-state node-pair expansion allocates %.1f objects per traversal, want 0", allocs)
	}
}

// TestJoinAllocsBounded guards the whole-join allocation budget: a full
// JoinAccessEps on warmed trees may allocate only the visitor and its
// scratch ladder, independent of the data size.
func TestJoinAllocsBounded(t *testing.T) {
	t1, t2 := buildAllocTrees(t)
	var pairs int64
	fn := func(a, b Item) { pairs++ }
	JoinAccess(t1, t2, t1.buf, t2.buf, fn) // warm the buffers

	allocs := testing.AllocsPerRun(10, func() {
		JoinAccess(t1, t2, t1.buf, t2.buf, fn)
	})
	// Visitor + scratch ladder + a few restrict-buffer growths to the
	// high-water mark; anything near the node-pair count is a regression.
	const budget = 64
	if allocs > budget {
		t.Fatalf("JoinAccess allocates %.1f objects per join, want <= %d", allocs, budget)
	}
}
