package rstar

import (
	"math/rand"
	"sort"
	"testing"

	"spatialjoin/internal/geom"
)

func TestDeleteBasic(t *testing.T) {
	rng := rand.New(rand.NewSource(401))
	tree, items := buildTree(t, rng, 1000, DefaultConfig())
	// Delete half the items, validating as we go.
	for i := 0; i < 500; i++ {
		if !tree.Delete(items[i]) {
			t.Fatalf("item %d not found for deletion", i)
		}
		if i%100 == 0 {
			if err := tree.Validate(); err != nil {
				t.Fatalf("after %d deletions: %v", i+1, err)
			}
		}
	}
	if tree.Size() != 500 {
		t.Fatalf("Size = %d, want 500", tree.Size())
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	// Deleted items are gone, surviving items remain findable.
	for i, it := range items {
		found := false
		tree.WindowQuery(it.Rect, func(got Item) {
			if got.ID == it.ID {
				found = true
			}
		})
		if i < 500 && found {
			t.Fatalf("deleted item %d still present", i)
		}
		if i >= 500 && !found {
			t.Fatalf("surviving item %d lost", i)
		}
	}
	// Double delete fails cleanly.
	if tree.Delete(items[0]) {
		t.Error("deleting a deleted item must fail")
	}
}

func TestDeleteAll(t *testing.T) {
	rng := rand.New(rand.NewSource(409))
	tree, items := buildTree(t, rng, 400, DefaultConfig())
	rng.Shuffle(len(items), func(i, j int) { items[i], items[j] = items[j], items[i] })
	for i, it := range items {
		if !tree.Delete(it) {
			t.Fatalf("item %d not deletable", i)
		}
	}
	if tree.Size() != 0 {
		t.Fatalf("Size = %d after deleting everything", tree.Size())
	}
	if tree.Height() != 1 {
		t.Fatalf("Height = %d, want 1 (collapsed root)", tree.Height())
	}
	count := 0
	tree.All(func(Item) { count++ })
	if count != 0 {
		t.Fatalf("%d items still reachable", count)
	}
	// The tree remains usable.
	tree.Insert(Item{Rect: geom.Rect{MinX: 0, MinY: 0, MaxX: 1, MaxY: 1}, ID: 1})
	if tree.Size() != 1 {
		t.Fatal("insert after mass deletion failed")
	}
}

func TestDeleteInterleavedWithQueries(t *testing.T) {
	rng := rand.New(rand.NewSource(419))
	cfg := DefaultConfig()
	tree := New(cfg)
	live := map[int32]Item{}
	nextID := int32(0)
	for round := 0; round < 2000; round++ {
		if rng.Float64() < 0.6 || len(live) == 0 {
			it := Item{Rect: randRect(rng, 50, 2), ID: nextID}
			nextID++
			live[it.ID] = it
			tree.Insert(it)
		} else {
			// Delete a random live item.
			var victim Item
			for _, it := range live {
				victim = it
				break
			}
			if !tree.Delete(victim) {
				t.Fatalf("round %d: live item %d not deletable", round, victim.ID)
			}
			delete(live, victim.ID)
		}
	}
	if err := tree.Validate(); err != nil {
		t.Fatal(err)
	}
	if tree.Size() != len(live) {
		t.Fatalf("Size = %d, live = %d", tree.Size(), len(live))
	}
	got := map[int32]bool{}
	tree.All(func(it Item) { got[it.ID] = true })
	if len(got) != len(live) {
		t.Fatalf("reachable %d != live %d", len(got), len(live))
	}
	for id := range live {
		if !got[id] {
			t.Fatalf("live item %d unreachable", id)
		}
	}
}

func TestNearestNeighbors(t *testing.T) {
	rng := rand.New(rand.NewSource(421))
	tree, items := buildTree(t, rng, 2000, DefaultConfig())
	for trial := 0; trial < 50; trial++ {
		p := geom.Point{X: rng.Float64() * 100, Y: rng.Float64() * 100}
		k := 1 + rng.Intn(10)
		got := tree.NearestNeighbors(p, k)
		if len(got) != k {
			t.Fatalf("trial %d: got %d neighbours, want %d", trial, len(got), k)
		}
		// Brute-force ground truth on rect distance.
		dists := make([]float64, len(items))
		for i, it := range items {
			dists[i] = rectDist(it.Rect, p)
		}
		sort.Float64s(dists)
		for i, it := range got {
			d := rectDist(it.Rect, p)
			if d > dists[k-1]+1e-9 {
				t.Fatalf("trial %d: neighbour %d at distance %v, k-th true distance %v", trial, i, d, dists[k-1])
			}
			if i > 0 && d+1e-9 < rectDist(got[i-1].Rect, p) {
				t.Fatalf("trial %d: neighbours not in increasing distance order", trial)
			}
		}
	}
	if got := tree.NearestNeighbors(geom.Point{}, 0); got != nil {
		t.Error("k=0 must return nil")
	}
	empty := New(DefaultConfig())
	if got := empty.NearestNeighbors(geom.Point{}, 3); got != nil {
		t.Error("empty tree must return nil")
	}
}

func TestRectDist(t *testing.T) {
	r := geom.Rect{MinX: 0, MinY: 0, MaxX: 2, MaxY: 2}
	cases := []struct {
		p geom.Point
		d float64
	}{
		{geom.Point{X: 1, Y: 1}, 0},
		{geom.Point{X: 3, Y: 1}, 1},
		{geom.Point{X: 1, Y: -2}, 2},
		{geom.Point{X: 5, Y: 6}, 5},
	}
	for _, c := range cases {
		if got := rectDist(r, c.p); got != c.d {
			t.Errorf("rectDist(%v) = %v, want %v", c.p, got, c.d)
		}
	}
}
