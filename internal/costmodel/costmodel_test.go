package costmodel

import (
	"math"
	"testing"

	"spatialjoin/internal/multistep"
	"spatialjoin/internal/plan"
)

func TestFromStatsVersions(t *testing.T) {
	p := PaperParams()
	// A synthetic run shaped like the paper's section 5 workload: 86,000
	// candidate pairs, of which the filter identifies 46 %.
	// The paper's MBR-join is cheap relative to object access (section 5:
	// "the MBR-join does not much affect the total execution time").
	unfiltered := multistep.Stats{
		CandidatePairs: 86000,
		ExactTested:    86000,
		PageAccessesR:  5000,
		PageAccessesS:  5000,
	}
	filtered := multistep.Stats{
		CandidatePairs:  86000,
		FilterHits:      20000,
		FilterFalseHits: 19000,
		ExactTested:     47000,
		PageAccessesR:   6500,
		PageAccessesS:   6500,
	}

	v1 := FromStats(unfiltered, multistep.EnginePlaneSweep, p)
	v2 := FromStats(filtered, multistep.EnginePlaneSweep, p)
	v3 := FromStats(filtered, multistep.EngineTRStar, p)

	// Figure 18 shape: v1 > v2 > v3, with v1/v3 > 3.
	if !(v1.Total() > v2.Total() && v2.Total() > v3.Total()) {
		t.Fatalf("ordering violated: v1=%.0f v2=%.0f v3=%.0f", v1.Total(), v2.Total(), v3.Total())
	}
	if v1.Total()/v3.Total() < 3 {
		t.Errorf("v1/v3 = %.2f, want > 3 (Figure 18)", v1.Total()/v3.Total())
	}
	// v3: the exact test is "practically negligible" but object access
	// grows by the storage factor.
	if v3.ExactTest > 0.1*v3.Total() {
		t.Errorf("v3 exact test %.1f should be negligible vs total %.1f", v3.ExactTest, v3.Total())
	}
	if v3.ObjectAccess <= v2.ObjectAccess {
		t.Errorf("TR*-tree storage factor must raise object access: %.1f vs %.1f",
			v3.ObjectAccess, v2.ObjectAccess)
	}
	// Spot check v1 arithmetic: 10,000 pages * 10 ms + 86,000 * 10 ms +
	// 86,000 * 25 ms.
	want := 10000*10e-3 + 86000*10e-3 + 86000*25e-3
	if math.Abs(v1.Total()-want) > 1e-6 {
		t.Errorf("v1 total = %v, want %v", v1.Total(), want)
	}
}

func TestBreakdownTotal(t *testing.T) {
	b := Breakdown{MBRJoin: 1, ObjectAccess: 2, ExactTest: 3}
	if b.Total() != 6 {
		t.Errorf("Total = %v", b.Total())
	}
}

func TestFigure11GainLoss(t *testing.T) {
	p := PaperParams()
	base := multistep.Stats{PageAccessesR: 1000, PageAccessesS: 1000}
	filt := multistep.Stats{
		PageAccessesR: 1200, PageAccessesS: 1200,
		FilterHits: 5000, FilterFalseHits: 4000,
	}
	gl := Figure11(base, filt, p)
	if gl.Loss != 400 {
		t.Errorf("Loss = %v, want 400", gl.Loss)
	}
	if gl.Gain != 9000 {
		t.Errorf("Gain = %v, want 9000", gl.Gain)
	}
	if gl.Total != 8600 {
		t.Errorf("Total = %v, want 8600", gl.Total)
	}
}

func TestParallelIO(t *testing.T) {
	p := PaperParams()
	if got := ParallelIO(100, 1, p); math.Abs(got-1.0) > 1e-12 {
		t.Errorf("1 disk: %v, want 1s", got)
	}
	if got := ParallelIO(100, 4, p); math.Abs(got-0.25) > 1e-12 {
		t.Errorf("4 disks: %v, want 0.25s", got)
	}
	if got := ParallelIO(101, 4, p); math.Abs(got-0.26) > 1e-12 {
		t.Errorf("uneven striping: %v, want 0.26s (ceil)", got)
	}
	if ParallelIO(100, 0, p) != ParallelIO(100, 1, p) {
		t.Error("disks < 1 must clamp to 1")
	}
}

func TestParallelBreakdown(t *testing.T) {
	b := Breakdown{MBRJoin: 8, ObjectAccess: 16, ExactTest: 4}
	got := ParallelBreakdown(b, 4, 2)
	if got.MBRJoin != 2 || got.ObjectAccess != 4 || got.ExactTest != 2 {
		t.Errorf("ParallelBreakdown = %+v", got)
	}
	if ParallelBreakdown(b, 0, 0) != b {
		t.Error("degenerate parallelism must be identity")
	}
}

func TestQuadraticModeled(t *testing.T) {
	p := PaperParams()
	st := multistep.Stats{ExactTested: 10}
	b := FromStats(st, multistep.EngineQuadratic, p)
	if b.ExactTest <= FromStats(st, multistep.EnginePlaneSweep, p).ExactTest {
		t.Error("quadratic per-pair cost must exceed plane sweep")
	}
}

// TestCalibratedParams pins the calibrated model's invariants: the
// engine ordering the committed BENCH baselines measured (TR*-tree <
// plane sweep < quadratic per pair) and agreement with the planner's
// calibration (the same BENCH_PR6 decomposition feeds both, so the two
// models must rank engines identically).
func TestCalibratedParams(t *testing.T) {
	c := CalibratedParams()
	if !(c.TRStarPerPair < c.PlaneSweepPerPair && c.PlaneSweepPerPair < c.QuadraticPerPair) {
		t.Fatalf("calibrated engine ordering wrong: %+v", c)
	}
	w := plan.DefaultWeights()
	ratio := func(ns float64, s float64) float64 { return ns / (s * 1e9) }
	// Each engine's planner weight and calibrated per-pair cost must be
	// the same figure (weights are ns, Params are seconds).
	for _, e := range []struct {
		name string
		ns   float64
		sec  float64
	}{
		{"trstar", w.IntersectExactNs[2], c.TRStarPerPair},
		{"planesweep", w.IntersectExactNs[1], c.PlaneSweepPerPair},
		{"quadratic", w.IntersectExactNs[0], c.QuadraticPerPair},
	} {
		if r := ratio(e.ns, e.sec); math.Abs(r-1) > 1e-9 {
			t.Errorf("%s: planner weight %v ns vs calibrated %v s (ratio %v)", e.name, e.ns, e.sec, r)
		}
	}
	// The calibrated model must still order a measured run the same way
	// the paper model does: quadratic worst for the same stats.
	st := multistep.Stats{PageAccessesR: 100, PageAccessesS: 100, ExactTested: 10000}
	tr := FromStats(st, multistep.EngineTRStar, c).Total()
	ps := FromStats(st, multistep.EnginePlaneSweep, c).Total()
	q := FromStats(st, multistep.EngineQuadratic, c).Total()
	if !(tr < ps && ps < q) {
		t.Fatalf("calibrated FromStats ordering wrong: tr=%v ps=%v q=%v", tr, ps, q)
	}
}
