// Package costmodel implements the total-performance model of section 5
// (Figure 18): the execution time of an intersection join split into the
// MBR-join I/O, the object accesses (transferring exact geometry into main
// memory) and the exact intersection tests. The paper derives the
// constants from its experiments; they are parameters here so the model
// can also be fed host-measured values.
package costmodel

import "spatialjoin/internal/multistep"

// Params are the constants of the section 5 model.
type Params struct {
	// PageAccessTime is the cost of one disk page access (paper: 10 ms).
	PageAccessTime float64
	// ObjectAccessPages models the page accesses caused by one candidate
	// pair that was not identified by the filter (paper: 1).
	ObjectAccessPages float64
	// TRStorageFactor inflates object accesses when objects are stored as
	// TR*-trees, whose representation is larger than a point list
	// (paper: 1.5).
	TRStorageFactor float64
	// PlaneSweepPerPair is the exact-test cost per remaining pair with
	// the plane-sweep algorithm (paper: 25 ms).
	PlaneSweepPerPair float64
	// TRStarPerPair is the exact-test cost per remaining pair with the
	// TR*-tree algorithm (paper: 1 ms).
	TRStarPerPair float64
	// QuadraticPerPair is the exact-test cost per remaining pair with the
	// quadratic algorithm (derived from Table 7; the paper excludes it
	// from Figure 18 as "out of question").
	QuadraticPerPair float64
}

// PaperParams returns the constants of section 5.
func PaperParams() Params {
	return Params{
		PageAccessTime:    10e-3,
		ObjectAccessPages: 1,
		TRStorageFactor:   1.5,
		PlaneSweepPerPair: 25e-3,
		TRStarPerPair:     1e-3,
		QuadraticPerPair:  2e0, // BW-complexity objects, Table 7
	}
}

// CalibratedParams returns the section 5 model fed with this
// implementation's measured constants instead of the paper's 1993
// hardware: the per-pair CPU costs come from the same committed
// BENCH_PR6.json ns-per-candidate decomposition that calibrates
// plan.DefaultWeights (see internal/plan), and the page access time is
// a modern NVMe-class figure rather than 10 ms of seek. The paper's
// *structure* — I/O + object access + exact test — is unchanged, so
// Breakdowns stay comparable bar for bar; only the absolute scale moves
// from 1993 seconds to measured microseconds.
//
// The bridge between the two models: plan.Weights cost one *candidate*
// (traversal + filter + conditional exact test) because the planner
// chooses before running; Params cost one *unidentified pair* because
// the paper's model explains a finished run. CalibratedParams converts
// the planner's exact-test weights (trstar 6 µs, planesweep 32 µs,
// quadratic 80 µs at the benchmark's ~48 vertices) into the Params
// shape.
func CalibratedParams() Params {
	return Params{
		PageAccessTime:    20e-6, // buffered page touch, not a disk seek
		ObjectAccessPages: 1,
		TRStorageFactor:   1.5,
		PlaneSweepPerPair: 32e-6,
		TRStarPerPair:     6e-6,
		QuadraticPerPair:  80e-6,
	}
}

// Breakdown is one stacked bar of Figure 18, in seconds.
type Breakdown struct {
	MBRJoin      float64 // step 1 page accesses
	ObjectAccess float64 // fetching exact geometry for step 3
	ExactTest    float64 // step 3 CPU
}

// Total returns the total execution time of the modelled join.
func (b Breakdown) Total() float64 { return b.MBRJoin + b.ObjectAccess + b.ExactTest }

// FromStats models the execution time of a measured multi-step join run:
// the page accesses of both R*-trees, one object access per unidentified
// pair (times the storage factor for TR*-tree representations), and the
// per-pair exact-test cost of the configured engine.
func FromStats(st multistep.Stats, engine multistep.Engine, p Params) Breakdown {
	var b Breakdown
	b.MBRJoin = float64(st.PageAccessesR+st.PageAccessesS) * p.PageAccessTime

	perPair := p.ObjectAccessPages * p.PageAccessTime
	var exactPerPair float64
	switch engine {
	case multistep.EnginePlaneSweep:
		exactPerPair = p.PlaneSweepPerPair
	case multistep.EngineTRStar:
		exactPerPair = p.TRStarPerPair
		perPair *= p.TRStorageFactor
	case multistep.EngineQuadratic:
		exactPerPair = p.QuadraticPerPair
	}
	b.ObjectAccess = float64(st.ExactTested) * perPair
	b.ExactTest = float64(st.ExactTested) * exactPerPair
	return b
}

// GainLoss quantifies the Figure 11 trade-off of storing approximations in
// addition to the MBR: Loss is the extra MBR-join page accesses caused by
// the larger entries; Gain is the page accesses saved by filter-identified
// pairs (one per pair, the paper's "very cautious assumption"); Total is
// Gain − Loss (positive = worthwhile).
type GainLoss struct {
	Loss, Gain, Total float64
}

// ParallelIO models the I/O parallelism of the paper's section 6 outlook:
// with the pages of both trees declustered round-robin over the given
// number of independent disks, the I/O time of n page accesses drops to
// the busiest disk's share. The simple balanced-striping model gives
// ceil(n / disks) accesses of latency each.
func ParallelIO(pageAccesses int64, disks int, p Params) float64 {
	if disks < 1 {
		disks = 1
	}
	perDisk := (pageAccesses + int64(disks) - 1) / int64(disks)
	return float64(perDisk) * p.PageAccessTime
}

// ParallelBreakdown rescales a modelled breakdown for d-way CPU and I/O
// parallelism: I/O components divide by the disk count, the exact-test CPU
// component by the worker count (the filter/exact steps parallelize pair-
// wise, see multistep.JoinParallel).
func ParallelBreakdown(b Breakdown, disks, workers int) Breakdown {
	if disks < 1 {
		disks = 1
	}
	if workers < 1 {
		workers = 1
	}
	return Breakdown{
		MBRJoin:      b.MBRJoin / float64(disks),
		ObjectAccess: b.ObjectAccess / float64(disks),
		ExactTest:    b.ExactTest / float64(workers),
	}
}

// Figure11 computes the gain/loss balance from a baseline run (MBR only)
// and a filtered run of the same join.
func Figure11(baseline, filtered multistep.Stats, p Params) GainLoss {
	basePages := float64(baseline.PageAccessesR + baseline.PageAccessesS)
	filtPages := float64(filtered.PageAccessesR + filtered.PageAccessesS)
	loss := (filtPages - basePages)
	gain := float64(filtered.FilterHits+filtered.FilterFalseHits) * p.ObjectAccessPages
	return GainLoss{Loss: loss, Gain: gain, Total: gain - loss}
}
