package data

import (
	"bytes"
	"strings"
	"testing"
)

func TestRelationRoundtrip(t *testing.T) {
	rel := GenerateMap(MapConfig{Cells: 40, TargetVerts: 48, HoleFraction: 0.4, Seed: 77})
	var buf bytes.Buffer
	if err := WriteRelation(&buf, rel); err != nil {
		t.Fatalf("write: %v", err)
	}
	got, err := ReadRelation(&buf)
	if err != nil {
		t.Fatalf("read: %v", err)
	}
	if len(got) != len(rel) {
		t.Fatalf("roundtrip count %d, want %d", len(got), len(rel))
	}
	for i := range rel {
		if got[i].NumVertices() != rel[i].NumVertices() || len(got[i].Holes) != len(rel[i].Holes) {
			t.Fatalf("polygon %d shape changed", i)
		}
		for j, p := range rel[i].Outer {
			if got[i].Outer[j] != p {
				t.Fatalf("polygon %d vertex %d changed: %v vs %v", i, j, got[i].Outer[j], p)
			}
		}
		if got[i].Area() != rel[i].Area() {
			t.Fatalf("polygon %d area changed", i)
		}
	}
}

func TestRelationRoundtripEmpty(t *testing.T) {
	var buf bytes.Buffer
	if err := WriteRelation(&buf, nil); err != nil {
		t.Fatal(err)
	}
	got, err := ReadRelation(&buf)
	if err != nil {
		t.Fatal(err)
	}
	if len(got) != 0 {
		t.Fatal("empty roundtrip must stay empty")
	}
}

func TestReadRelationRejectsCorruption(t *testing.T) {
	rel := GenerateMap(MapConfig{Cells: 5, TargetVerts: 24, Seed: 79})
	var buf bytes.Buffer
	if err := WriteRelation(&buf, rel); err != nil {
		t.Fatal(err)
	}
	data := buf.Bytes()
	cases := map[string][]byte{
		"empty":     {},
		"bad magic": append([]byte{9, 9, 9, 9}, data[4:]...),
		"truncated": data[:len(data)/2],
		"huge count": func() []byte {
			d := append([]byte{}, data...)
			d[4], d[5], d[6], d[7] = 0xFF, 0xFF, 0xFF, 0xFF
			return d
		}(),
	}
	for name, bad := range cases {
		if _, err := ReadRelation(bytes.NewReader(bad)); err == nil {
			t.Errorf("%s: corruption not detected", name)
		} else if !strings.Contains(err.Error(), "corrupt") {
			t.Errorf("%s: unexpected error %v", name, err)
		}
	}
}
