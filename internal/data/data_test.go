package data

import (
	"math"
	"testing"

	"spatialjoin/internal/geom"
)

func TestGenerateMapDeterministic(t *testing.T) {
	a := GenerateMap(MapConfig{Cells: 50, TargetVerts: 40, Seed: 1})
	b := GenerateMap(MapConfig{Cells: 50, TargetVerts: 40, Seed: 1})
	if len(a) != len(b) {
		t.Fatal("same seed must give same relation size")
	}
	for i := range a {
		if a[i].NumVertices() != b[i].NumVertices() {
			t.Fatal("same seed must give identical polygons")
		}
		if a[i].Outer[0] != b[i].Outer[0] {
			t.Fatal("same seed must give identical coordinates")
		}
	}
	c := GenerateMap(MapConfig{Cells: 50, TargetVerts: 40, Seed: 2})
	if a[0].Outer[0] == c[0].Outer[0] {
		t.Error("different seeds must differ")
	}
}

func TestGenerateMapCounts(t *testing.T) {
	for _, n := range []int{1, 10, 374, 810} {
		rel := GenerateMap(MapConfig{Cells: n, TargetVerts: 32, Seed: 7})
		if len(rel) != n {
			t.Errorf("Cells=%d: got %d polygons", n, len(rel))
		}
	}
	if GenerateMap(MapConfig{Cells: 0}) != nil {
		t.Error("zero cells must give nil")
	}
}

func TestGenerateMapVertexTarget(t *testing.T) {
	for _, target := range []int{32, 84, 256} {
		rel := GenerateMap(MapConfig{Cells: 100, TargetVerts: target, Seed: 11})
		st := Stats(rel)
		if st.Avg < float64(target)*0.6 || st.Avg > float64(target)*1.7 {
			t.Errorf("target %d: average vertices %.1f too far off", target, st.Avg)
		}
		if st.Min < 3 {
			t.Errorf("target %d: polygon with %d vertices", target, st.Min)
		}
		if st.Max <= st.Min {
			t.Errorf("target %d: no vertex-count spread (min %d, max %d)", target, st.Min, st.Max)
		}
	}
}

func TestGeneratedPolygonsAreValid(t *testing.T) {
	rel := GenerateMap(MapConfig{Cells: 120, TargetVerts: 84, HoleFraction: 0.5, Seed: 13})
	holes := 0
	for i, p := range rel {
		if err := p.ValidateSimple(); err != nil {
			t.Fatalf("polygon %d invalid: %v", i, err)
		}
		if len(p.Holes) > 0 {
			holes++
		}
		if p.Area() <= 0 {
			t.Fatalf("polygon %d has non-positive area", i)
		}
	}
	if holes == 0 {
		t.Error("with HoleFraction 0.5 some polygons must have holes")
	}
}

func TestTilingDoesNotOverlap(t *testing.T) {
	// Adjacent cells share boundaries exactly: interiors must be disjoint,
	// so the sum of areas must equal the area of the union (≈ the hull of
	// the map). A cheap sufficient check: sample points and count covering
	// cells — never more than one (up to boundary tolerance).
	rel := GenerateMap(MapConfig{Cells: 64, TargetVerts: 48, Seed: 17})
	for trial := 0; trial < 300; trial++ {
		pt := geom.Point{
			X: 0.1 + 0.8*float64(trial%17)/17 + 0.01*float64(trial%7),
			Y: 0.1 + 0.8*float64(trial%19)/19 + 0.013*float64(trial%5),
		}
		cover := 0
		for _, p := range rel {
			if p.Bounds().ContainsPoint(pt) && p.ContainsPoint(pt) && distToBoundary(p, pt) > 1e-9 {
				cover++
			}
		}
		if cover > 1 {
			t.Fatalf("point %v covered by %d cells; tiling overlaps", pt, cover)
		}
	}
}

func distToBoundary(p *geom.Polygon, pt geom.Point) float64 {
	var edges []geom.Segment
	edges = p.Edges(edges)
	d := math.Inf(1)
	for _, e := range edges {
		if dd := e.DistToPoint(pt); dd < d {
			d = dd
		}
	}
	return d
}

func TestNormalizedFalseAreaRegime(t *testing.T) {
	// Table 1 regime: the average normalized MBR false area of real
	// cartography data is ≈ 0.9–1.0. The generator must reproduce at
	// least fa ≥ 0.5 on average, or the filter experiments lose their
	// discriminative power.
	rel := GenerateMap(EuropeConfig())
	var sum float64
	for _, p := range rel {
		obj := p.Area()
		mbr := p.Bounds().Area()
		sum += (mbr - obj) / obj
	}
	avg := sum / float64(len(rel))
	if avg < 0.5 {
		t.Errorf("average normalized false area %.2f too small for Table 1's regime", avg)
	}
	if avg > 2.0 {
		t.Errorf("average normalized false area %.2f implausibly large", avg)
	}
}

func TestStrategyA(t *testing.T) {
	rel := GenerateMap(MapConfig{Cells: 60, TargetVerts: 32, Seed: 23})
	shifted := StrategyA(rel, 0.45)
	if len(shifted) != len(rel) {
		t.Fatal("strategy A must preserve cardinality")
	}
	for i := range rel {
		if math.Abs(shifted[i].Area()-rel[i].Area()) > 1e-9 {
			t.Fatal("strategy A must preserve areas")
		}
		if shifted[i].Bounds() == rel[i].Bounds() {
			t.Fatal("strategy A must move objects")
		}
	}
	if StrategyA(nil, 0.45) != nil {
		t.Error("empty relation must give nil")
	}
}

func TestStrategyB(t *testing.T) {
	rel := GenerateMap(MapConfig{Cells: 60, TargetVerts: 32, Seed: 29})
	b := StrategyB(rel, 99)
	if len(b) != len(rel) {
		t.Fatal("strategy B must preserve cardinality")
	}
	var sum float64
	for i, p := range b {
		sum += p.Area()
		bb := p.Bounds()
		if bb.MinX < -1e-9 || bb.MinY < -1e-9 || bb.MaxX > 1+1e-9 || bb.MaxY > 1+1e-9 {
			t.Errorf("object %d leaves the unit data space: %v", i, bb)
		}
		if err := p.ValidateSimple(); err != nil {
			t.Errorf("object %d invalid after strategy B: %v", i, err)
		}
	}
	if math.Abs(sum-1) > 0.05 {
		t.Errorf("strategy B object areas sum to %.3f, want ≈ 1 (data-space area)", sum)
	}
	if StrategyB(nil, 1) != nil {
		t.Error("empty relation must give nil")
	}
}

func TestSeriesConstructors(t *testing.T) {
	for _, s := range []Series{EuropeA(), BWA()} {
		if len(s.R) == 0 || len(s.S) == 0 {
			t.Fatalf("%s: empty side", s.Name)
		}
		if len(s.R) != len(s.S) {
			t.Fatalf("%s: asymmetric sides", s.Name)
		}
	}
}

func TestStats(t *testing.T) {
	rel := GenerateMap(MapConfig{Cells: 25, TargetVerts: 40, HoleFraction: 1, Seed: 31})
	st := Stats(rel)
	if st.Objects != 25 {
		t.Errorf("Objects = %d", st.Objects)
	}
	if st.Min > st.Max || st.Avg <= 0 {
		t.Error("stats inconsistent")
	}
	empty := Stats(nil)
	if empty.Objects != 0 || empty.Min != 0 {
		t.Error("empty stats malformed")
	}
}
