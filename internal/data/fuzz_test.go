package data

import (
	"bytes"
	"errors"
	"testing"

	"spatialjoin/internal/geom"
)

// FuzzReadRelation fuzzes the stream decoder: corrupt or truncated
// input must return an error wrapping ErrBadRelation — never panic and
// never allocate more than the stream actually delivers. Valid input
// must round-trip through WriteRelation unchanged.
func FuzzReadRelation(f *testing.F) {
	seed := func(polys []*geom.Polygon) []byte {
		var buf bytes.Buffer
		if err := WriteRelation(&buf, polys); err != nil {
			f.Fatal(err)
		}
		return buf.Bytes()
	}
	f.Add(seed(nil))
	f.Add(seed([]*geom.Polygon{geom.NewPolygon([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 0, Y: 1}})}))
	f.Add(seed(GenerateMap(MapConfig{Cells: 4, TargetVerts: 12, Seed: 7})))
	f.Add([]byte{})
	f.Add([]byte{0x31, 0x52, 0x4A, 0x53, 0xFF, 0xFF, 0xFF, 0xFF}) // magic + absurd count

	f.Fuzz(func(t *testing.T, data []byte) {
		polys, err := ReadRelation(bytes.NewReader(data))
		if err != nil {
			if !errors.Is(err, ErrBadRelation) {
				t.Errorf("error does not wrap ErrBadRelation: %v", err)
			}
			return
		}
		var buf bytes.Buffer
		if err := WriteRelation(&buf, polys); err != nil {
			t.Errorf("decoded relation does not re-serialize: %v", err)
		}
	})
}

// FuzzDecodePolygon fuzzes the byte-slice polygon decoder used by the
// relation store.
func FuzzDecodePolygon(f *testing.F) {
	tri := geom.NewPolygon([]geom.Point{{X: 0, Y: 0}, {X: 4, Y: 0}, {X: 0, Y: 4}},
		[]geom.Point{{X: 1, Y: 1}, {X: 2, Y: 1}, {X: 1, Y: 2}})
	f.Add(AppendPolygon(nil, tri))
	f.Add([]byte{})

	f.Fuzz(func(t *testing.T, data []byte) {
		p, n, err := DecodePolygon(data)
		if err != nil {
			if !errors.Is(err, ErrBadRelation) {
				t.Errorf("error does not wrap ErrBadRelation: %v", err)
			}
			return
		}
		if n > len(data) {
			t.Fatalf("consumed %d of %d bytes", n, len(data))
		}
		round := AppendPolygon(nil, p)
		if !bytes.Equal(round, data[:n]) {
			t.Error("re-encoded polygon differs from its source bytes")
		}
	})
}
