// Package data generates the synthetic cartographic relations that stand
// in for the paper's proprietary map data (see DESIGN.md, substitutions).
//
// A relation is a tiling of "counties": a jittered grid whose cell
// boundaries are fractal polylines produced by midpoint displacement.
// Adjacent cells share each displaced boundary exactly, like real
// administrative subdivisions; a global rotation of the map puts cell
// edges in general position relative to the axes, reproducing the high
// normalized MBR false areas the paper measures on real data (Table 1:
// ∅ ≈ 0.9–1.0). A configurable fraction of cells carries a lake-like hole
// (section 2.1: polygons with holes). All generation is deterministic in
// the seed.
//
// The paper's test series are reproduced by the two strategies of
// section 3.1: strategy A joins a relation with a shifted copy of itself;
// strategy B randomly shifts and rotates each object and rescales so the
// object areas sum to the data-space area.
package data

import (
	"math"
	"math/rand"
	"sort"

	"spatialjoin/internal/geom"
)

// MapConfig parameterizes GenerateMap.
type MapConfig struct {
	// Cells is the approximate number of polygons (rounded to a grid).
	Cells int
	// TargetVerts is the average vertex count per polygon (the paper's
	// m∅: 84 for Europe, 527 for BW).
	TargetVerts int
	// HoleFraction of the cells receive one lake-like hole.
	HoleFraction float64
	// Rotation of the whole map in radians; non-axis-parallel boundaries
	// make MBRs as loose as on real maps. Defaults to ≈ 0.5 rad when 0.
	Rotation float64
	// Roughness of the fractal boundary displacement in (0, 0.5); defaults
	// to 0.17 when 0.
	Roughness float64
	// FjordProb is the probability that a cell boundary carries a deep
	// bay. Real municipalities are strongly non-convex (the paper's
	// Britain example); fjords raise the false area of the hull-family
	// approximations toward the paper's regime. Defaults to 0.7 when 0;
	// negative disables fjords.
	FjordProb float64
	// Extent scales the data space to [0, Extent]²; 0 means the unit
	// square. The scale-factor datasets (internal/loadgen) grow the
	// territory with √SF so object sizes and densities stay constant
	// across scale factors. Honoured by StreamMap and GenerateMap alike.
	Extent float64
	// Seed makes generation reproducible.
	Seed int64
}

// EuropeConfig mirrors the Europe relation of Figure 2: 810 polygons with
// on average 84 vertices.
func EuropeConfig() MapConfig {
	return MapConfig{Cells: 810, TargetVerts: 84, HoleFraction: 0.06, Seed: 9401}
}

// BWConfig mirrors the BW relation of Figure 2: 374 polygons with on
// average 527 vertices.
func BWConfig() MapConfig {
	return MapConfig{Cells: 374, TargetVerts: 527, HoleFraction: 0.08, Seed: 9402}
}

// BigConfig mirrors the 130,000-object relations of sections 3.4 and 5,
// scaled by n (pass 130000 for the paper's size). Vertex counts are kept
// moderate so the workload is index- and filter-bound, as in the paper's
// I/O experiments.
func BigConfig(n int, seed int64) MapConfig {
	return MapConfig{Cells: n, TargetVerts: 28, HoleFraction: 0.02, Seed: seed}
}

// GenerateMap builds one relation: a rotated, jittered grid tiling of
// fractal-boundary polygons over the unit data space.
func GenerateMap(cfg MapConfig) []*geom.Polygon {
	if cfg.Cells < 1 {
		return nil
	}
	if cfg.Rotation == 0 {
		cfg.Rotation = 0.5
	}
	if cfg.Roughness == 0 {
		cfg.Roughness = 0.24
	}
	if cfg.FjordProb == 0 {
		cfg.FjordProb = 0.7
	}
	if cfg.FjordProb < 0 {
		cfg.FjordProb = 0
	}
	rng := rand.New(rand.NewSource(cfg.Seed))

	kx := int(math.Round(math.Sqrt(float64(cfg.Cells))))
	if kx < 1 {
		kx = 1
	}
	ky := (cfg.Cells + kx - 1) / kx

	// Jittered grid corners. The jitter is bounded well below half a cell
	// so cells remain simple quads.
	corners := make([][]geom.Point, kx+1)
	for i := 0; i <= kx; i++ {
		corners[i] = make([]geom.Point, ky+1)
		for j := 0; j <= ky; j++ {
			jx := (rng.Float64() - 0.5) * 0.42
			jy := (rng.Float64() - 0.5) * 0.42
			corners[i][j] = geom.Point{
				X: (float64(i) + jx) / float64(kx),
				Y: (float64(j) + jy) / float64(ky),
			}
		}
	}

	// The subdivision depth d yields 2^d segments per cell side; four
	// sides must average TargetVerts vertices.
	perSide := float64(cfg.TargetVerts) / 4
	baseDepth := int(math.Round(math.Log2(math.Max(1, perSide))))

	// Shared displaced boundaries: horizontal edges H[i][j] connect
	// corners (i,j)-(i+1,j); vertical edges V[i][j] connect (i,j)-(i,j+1).
	// Each edge carries an aggressiveness level: level 0 is the full
	// fractal + fjord carving; the repair loop below tames individual
	// edges (level 1: half roughness, no fjords; level 2: gentle) when a
	// cell turns out non-simple, so validity never caps the global
	// concavity parameters.
	genEdge := func(a, b geom.Point, seed int64, level int) []geom.Point {
		erng := rand.New(rand.NewSource(seed))
		rough := cfg.Roughness
		fjord := cfg.FjordProb
		switch level {
		case 1:
			rough /= 2
			fjord = 0
		case 2:
			rough /= 6
			fjord = 0
		}
		e := displace(erng, a, b, edgeDepth(erng, baseDepth), rough)
		return addFjords(erng, e, fjord)
	}
	hSeed := func(i, j int) int64 { return cfg.Seed*1_000_003 + int64(i)*7919 + int64(j)*104729 + 1 }
	vSeed := func(i, j int) int64 { return cfg.Seed*1_000_003 + int64(i)*7919 + int64(j)*104729 + 2 }

	hEdges := make([][][]geom.Point, kx)
	hLevel := make([][]int, kx)
	for i := 0; i < kx; i++ {
		hEdges[i] = make([][]geom.Point, ky+1)
		hLevel[i] = make([]int, ky+1)
		for j := 0; j <= ky; j++ {
			hEdges[i][j] = genEdge(corners[i][j], corners[i+1][j], hSeed(i, j), 0)
		}
	}
	vEdges := make([][][]geom.Point, kx+1)
	vLevel := make([][]int, kx+1)
	for i := 0; i <= kx; i++ {
		vEdges[i] = make([][]geom.Point, ky)
		vLevel[i] = make([]int, ky)
		for j := 0; j < ky; j++ {
			vEdges[i][j] = genEdge(corners[i][j], corners[i][j+1], vSeed(i, j), 0)
		}
	}

	buildCell := func(i, j int) geom.Ring {
		return geom.NewRing(assembleCell(hEdges[i][j], vEdges[i+1][j], hEdges[i][j+1], vEdges[i][j]))
	}

	// Repair loop: tame the edges of non-simple cells and re-validate the
	// affected neighbourhood until every cell is simple. Cells are
	// processed in row-major order — map iteration order would make the
	// bump pattern, and with it the generated polygons, nondeterministic.
	type cellID struct{ i, j int }
	pending := make(map[cellID]bool, kx*ky)
	for j := 0; j < ky; j++ {
		for i := 0; i < kx; i++ {
			pending[cellID{i, j}] = true
		}
	}
	for round := 0; round < 4 && len(pending) > 0; round++ {
		order := make([]cellID, 0, len(pending))
		for c := range pending {
			order = append(order, c)
		}
		sort.Slice(order, func(a, b int) bool {
			if order[a].j != order[b].j {
				return order[a].j < order[b].j
			}
			return order[a].i < order[b].i
		})
		next := make(map[cellID]bool)
		for _, c := range order {
			ring := buildCell(c.i, c.j)
			if !ring.SelfIntersects() {
				continue
			}
			// Tame all four edges one level and re-check the neighbours
			// that share them.
			bump := func(kind byte, i, j int) {
				if kind == 'h' {
					if hLevel[i][j] < 2 {
						hLevel[i][j]++
						hEdges[i][j] = genEdge(corners[i][j], corners[i+1][j], hSeed(i, j), hLevel[i][j])
					}
					if j > 0 {
						next[cellID{i, j - 1}] = true
					}
					if j < ky {
						next[cellID{i, j}] = true
					}
				} else {
					if vLevel[i][j] < 2 {
						vLevel[i][j]++
						vEdges[i][j] = genEdge(corners[i][j], corners[i][j+1], vSeed(i, j), vLevel[i][j])
					}
					if i > 0 {
						next[cellID{i - 1, j}] = true
					}
					if i < kx {
						next[cellID{i, j}] = true
					}
				}
			}
			bump('h', c.i, c.j)
			bump('h', c.i, c.j+1)
			bump('v', c.i, c.j)
			bump('v', c.i+1, c.j)
		}
		// Re-validate only cells adjacent to re-generated edges, but make
		// sure the bumped cells themselves are rechecked.
		pending = next
	}

	center := geom.Point{X: 0.5, Y: 0.5}
	rot := func(p geom.Point) geom.Point { return p.RotateAround(cfg.Rotation, center) }
	if cfg.Extent > 0 && cfg.Extent != 1 {
		// Scale after rotation so Extent purely grows the territory; the
		// default 0 leaves the historical unit-square output untouched.
		ext := cfg.Extent
		rot = func(p geom.Point) geom.Point {
			q := p.RotateAround(cfg.Rotation, center)
			return geom.Point{X: q.X * ext, Y: q.Y * ext}
		}
	}

	polys := make([]*geom.Polygon, 0, cfg.Cells)
	for j := 0; j < ky && len(polys) < cfg.Cells; j++ {
		for i := 0; i < kx && len(polys) < cfg.Cells; i++ {
			p := &geom.Polygon{Outer: buildCell(i, j)}
			if rng.Float64() < cfg.HoleFraction {
				if hole, ok := makeHole(rng, p); ok {
					p.Holes = append(p.Holes, hole)
				}
			}
			polys = append(polys, p.Transform(rot))
		}
	}
	return polys
}

// edgeDepth varies the subdivision depth around the base so vertex counts
// spread like real data (Figure 2 reports mmin ≪ m∅ ≪ mmax).
func edgeDepth(rng *rand.Rand, base int) int {
	d := base
	switch r := rng.Float64(); {
	case r < 0.15:
		d--
	case r > 0.85:
		d++
	}
	if d < 0 {
		d = 0
	}
	return d
}

// displace builds a fractal polyline from a to b (inclusive) with 2^depth
// segments by recursive midpoint displacement. The perpendicular offset is
// bounded by roughness·length and halves per level, which keeps the
// polyline inside a lens around the base segment and thus free of
// self-intersections and of crossings with neighbouring cell boundaries.
func displace(rng *rand.Rand, a, b geom.Point, depth int, roughness float64) []geom.Point {
	out := make([]geom.Point, 0, (1<<depth)+1)
	out = append(out, a)
	var rec func(a, b geom.Point, depth int, amp float64)
	rec = func(a, b geom.Point, depth int, amp float64) {
		if depth == 0 {
			out = append(out, b)
			return
		}
		mid := geom.Point{X: (a.X + b.X) / 2, Y: (a.Y + b.Y) / 2}
		d := b.Sub(a)
		// Perpendicular offset, uniformly in ±amp·|d|.
		off := (rng.Float64()*2 - 1) * amp
		mid = mid.Add(geom.Point{X: -d.Y * off, Y: d.X * off})
		rec(a, mid, depth-1, amp*0.55)
		rec(mid, b, depth-1, amp*0.55)
	}
	rec(a, b, depth, roughness)
	return out
}

// addFjords carves up to two deep bays into a boundary polyline. The bay
// is a perpendicular displacement of a contiguous middle run of points
// with a smooth (raised-cosine) profile, bounded by 0.21 of the edge
// length, so it cannot reach the opposite boundary of either adjacent cell
// (minimum cell thickness after corner jitter is ≈ 0.58 of the nominal
// size) and never touches the corner regions. One neighbour sees the bay,
// the other the complementary peninsula — the tiling stays exact.
func addFjords(rng *rand.Rand, line []geom.Point, prob float64) []geom.Point {
	n := len(line)
	if n < 9 || rng.Float64() >= prob {
		return line
	}
	a, b := line[0], line[n-1]
	d := b.Sub(a)
	fjords := 1 + rng.Intn(2)
	for f := 0; f < fjords; f++ {
		center := 0.3 + 0.4*rng.Float64()  // position along the edge
		width := 0.10 + 0.15*rng.Float64() // half-width along the edge
		depth := (0.14 + 0.12*rng.Float64())
		if rng.Intn(2) == 0 {
			depth = -depth
		}
		for i := 1; i < n-1; i++ {
			t := float64(i) / float64(n-1)
			u := (t - center) / width
			if u < -1 || u > 1 {
				continue
			}
			w := 0.5 * (1 + math.Cos(math.Pi*u)) // 1 at the bay axis, 0 at the rim
			line[i] = line[i].Add(geom.Point{X: -d.Y * depth * w, Y: d.X * depth * w})
		}
	}
	return line
}

// assembleCell stitches the four boundary polylines of a cell into one
// counterclockwise ring: bottom, right, top reversed, left reversed. The
// shared junction points are dropped once.
func assembleCell(bottom, right, top, left []geom.Point) []geom.Point {
	ring := make([]geom.Point, 0, len(bottom)+len(right)+len(top)+len(left)-4)
	ring = append(ring, bottom[:len(bottom)-1]...)
	ring = append(ring, right[:len(right)-1]...)
	for k := len(top) - 1; k > 0; k-- {
		ring = append(ring, top[k])
	}
	for k := len(left) - 1; k > 0; k-- {
		ring = append(ring, left[k])
	}
	return ring
}

// makeHole cuts a lake-like star hole around the cell centroid. ok is
// false when the hole would touch the boundary.
func makeHole(rng *rand.Rand, p *geom.Polygon) (geom.Ring, bool) {
	c := p.Outer.Centroid()
	if !p.Outer.ContainsPoint(c) {
		return nil, false
	}
	b := p.Bounds()
	r := 0.16 * math.Min(b.Width(), b.Height())
	n := 6 + rng.Intn(8)
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		ang := 2 * math.Pi * float64(i) / float64(n)
		rr := r * (0.6 + 0.4*rng.Float64())
		pts[i] = geom.Point{X: c.X + rr*math.Cos(ang), Y: c.Y + rr*math.Sin(ang)}
	}
	for _, pt := range pts {
		if !p.Outer.ContainsPoint(pt) {
			return nil, false
		}
	}
	return geom.NewRing(pts).Reversed(), true
}

// StrategyA returns the paper's strategy A counterpart of rel: a copy
// shifted diagonally by the given fraction of the average object extent
// (section 3.1). The paper leaves the shift unspecified; 0.45 of the
// average extent yields candidate-set sizes in the regime of Table 2.
func StrategyA(rel []*geom.Polygon, fraction float64) []*geom.Polygon {
	if len(rel) == 0 {
		return nil
	}
	var extent float64
	for _, p := range rel {
		b := p.Bounds()
		extent += (b.Width() + b.Height()) / 2
	}
	extent /= float64(len(rel))
	d := extent * fraction
	out := make([]*geom.Polygon, len(rel))
	for i, p := range rel {
		out[i] = p.Translate(d, d)
	}
	return out
}

// StrategyB returns one strategy-B relation derived from rel: every object
// is randomly shifted and rotated within the unit data space, and all
// objects are scaled by a common factor so that the sum of the object
// areas equals the data-space area (section 3.1). Objects of the result
// may overlap each other.
func StrategyB(rel []*geom.Polygon, seed int64) []*geom.Polygon {
	if len(rel) == 0 {
		return nil
	}
	rng := rand.New(rand.NewSource(seed))
	var sum float64
	for _, p := range rel {
		sum += p.Area()
	}
	scale := 1.0
	if sum > 0 {
		scale = math.Sqrt(1.0 / sum)
	}
	out := make([]*geom.Polygon, len(rel))
	for i, p := range rel {
		b := p.Bounds()
		c := b.Center()
		ang := rng.Float64() * 2 * math.Pi
		// Scale about the object center, rotate, then place the object at
		// a uniform position such that its scaled extent stays inside the
		// unit square.
		half := math.Max(b.Width(), b.Height()) * scale * 0.75
		tx := half + rng.Float64()*math.Max(0, 1-2*half)
		ty := half + rng.Float64()*math.Max(0, 1-2*half)
		target := geom.Point{X: tx, Y: ty}
		out[i] = p.Transform(func(pt geom.Point) geom.Point {
			v := pt.Sub(c).Scale(scale).Rotate(ang)
			return target.Add(v)
		})
	}
	return out
}

// Relation bundles a generated relation with its name for reporting.
type Relation struct {
	Name  string
	Polys []*geom.Polygon
}

// Series is one of the paper's four test series (section 3.1).
type Series struct {
	Name string
	R, S []*geom.Polygon
}

// EuropeA returns the Europe A test series.
func EuropeA() Series {
	r := GenerateMap(EuropeConfig())
	return Series{Name: "Europe A", R: r, S: StrategyA(r, 0.45)}
}

// EuropeB returns the Europe B test series.
func EuropeB() Series {
	r := GenerateMap(EuropeConfig())
	return Series{Name: "Europe B", R: StrategyB(r, 31), S: StrategyB(r, 32)}
}

// BWA returns the BW A test series.
func BWA() Series {
	r := GenerateMap(BWConfig())
	return Series{Name: "BW A", R: r, S: StrategyA(r, 0.45)}
}

// BWB returns the BW B test series.
func BWB() Series {
	r := GenerateMap(BWConfig())
	return Series{Name: "BW B", R: StrategyB(r, 41), S: StrategyB(r, 42)}
}

// AllSeries returns the four test series of Table 2.
func AllSeries() []Series {
	return []Series{EuropeA(), EuropeB(), BWA(), BWB()}
}

// VertexStats reports the Figure 2 complexity measures of a relation.
type VertexStats struct {
	Objects          int
	Avg              float64
	Min, Max         int
	WithHoles        int
	TotalVertexCount int
}

// Stats computes the Figure 2 measures for a relation.
func Stats(rel []*geom.Polygon) VertexStats {
	st := VertexStats{Objects: len(rel), Min: math.MaxInt}
	for _, p := range rel {
		n := p.NumVertices()
		st.TotalVertexCount += n
		if n < st.Min {
			st.Min = n
		}
		if n > st.Max {
			st.Max = n
		}
		if len(p.Holes) > 0 {
			st.WithHoles++
		}
	}
	if st.Objects > 0 {
		st.Avg = float64(st.TotalVertexCount) / float64(st.Objects)
	} else {
		st.Min = 0
	}
	return st
}
