package data

import (
	"fmt"
	"runtime"
	"testing"

	"spatialjoin/internal/geom"
)

// streamCfg is the shared test configuration: big enough to exercise
// multiple rows and the repair paths, small enough for -short.
func streamCfg(cells int) MapConfig {
	return MapConfig{Cells: cells, TargetVerts: 28, HoleFraction: 0.05, Seed: 1207}
}

// TestStreamMapDeterministic proves the same configuration yields the
// identical polygon sequence across runs.
func TestStreamMapDeterministic(t *testing.T) {
	collect := func() []*geom.Polygon {
		var out []*geom.Polygon
		_, err := StreamMap(streamCfg(500), func(id int32, p *geom.Polygon) error {
			if int(id) != len(out) {
				t.Fatalf("id %d out of order (have %d)", id, len(out))
			}
			out = append(out, p)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return out
	}
	a, b := collect(), collect()
	if len(a) != 500 || len(b) != 500 {
		t.Fatalf("emitted %d / %d polygons, want 500", len(a), len(b))
	}
	for i := range a {
		av, bv := a[i].Vertices(nil), b[i].Vertices(nil)
		if len(av) != len(bv) {
			t.Fatalf("polygon %d: %d vs %d vertices", i, len(av), len(bv))
		}
		for k := range av {
			if av[k] != bv[k] {
				t.Fatalf("polygon %d vertex %d: %v vs %v", i, k, av[k], bv[k])
			}
		}
	}
}

// TestStreamMapSimplePolygons asserts every emitted polygon is simple —
// the contract the exact geometry engines rely on — including under the
// aggressive default roughness/fjord parameters that exercise repair.
func TestStreamMapSimplePolygons(t *testing.T) {
	for _, cells := range []int{1, 13, 400, 1500} {
		cfg := streamCfg(cells)
		st, err := StreamMap(cfg, func(id int32, p *geom.Polygon) error {
			if err := p.ValidateSimple(); err != nil {
				return fmt.Errorf("cell %d: %w", id, err)
			}
			return nil
		})
		if err != nil {
			t.Fatalf("cells=%d: %v", cells, err)
		}
		if st.Objects != cells {
			t.Fatalf("cells=%d: emitted %d", cells, st.Objects)
		}
		if st.QuadFallbacks > cells/50 {
			t.Fatalf("cells=%d: %d quad fallbacks — repair is failing too often", cells, st.QuadFallbacks)
		}
	}
}

// TestStreamMapExtent checks the data space scales with Extent while
// object sizes stay put (the constant-density scale-factor design).
func TestStreamMapExtent(t *testing.T) {
	avgExtent := func(cells int, extent float64) (float64, geom.Rect) {
		cfg := streamCfg(cells)
		cfg.Extent = extent
		var sum float64
		var n int
		ds := geom.EmptyRect()
		_, err := StreamMap(cfg, func(_ int32, p *geom.Polygon) error {
			b := p.Bounds()
			sum += (b.Width() + b.Height()) / 2
			n++
			ds = ds.Union(b)
			return nil
		})
		if err != nil {
			t.Fatal(err)
		}
		return sum / float64(n), ds
	}
	// 4× the cells at 2× the extent: same cell size, 2× the territory.
	small, dsSmall := avgExtent(400, 1)
	big, dsBig := avgExtent(1600, 2)
	if ratio := big / small; ratio < 0.8 || ratio > 1.25 {
		t.Fatalf("object extent changed with SF: %.4f vs %.4f (ratio %.2f)", small, big, ratio)
	}
	if ratio := dsBig.Width() / dsSmall.Width(); ratio < 1.8 || ratio > 2.2 {
		t.Fatalf("data space should double: %.3f vs %.3f", dsSmall.Width(), dsBig.Width())
	}
}

// TestStreamMapBoundedMemory is the satellite's bounded-memory
// assertion: streaming a relation must keep the live heap near the
// row-window size, far below the materialized slice. The generator runs
// with a discarding callback; live-heap checkpoints along the way must
// stay under a bound sized at a small multiple of the row window.
func TestStreamMapBoundedMemory(t *testing.T) {
	if testing.Short() {
		t.Skip("bounded-memory assertion allocates a 60k-cell stream; skipped with -short")
	}
	cfg := streamCfg(60000)
	cfg.TargetVerts = 84 // materialized: ≥ 60000·84·16 B ≈ 80 MB of vertices alone

	runtime.GC()
	var base runtime.MemStats
	runtime.ReadMemStats(&base)

	const budget = 24 << 20 // bound: a small multiple of the ~1 MB row window
	var peak uint64
	count := 0
	_, err := StreamMap(cfg, func(id int32, p *geom.Polygon) error {
		count++
		if count%10000 == 0 {
			runtime.GC()
			var m runtime.MemStats
			runtime.ReadMemStats(&m)
			if m.HeapAlloc > base.HeapAlloc && m.HeapAlloc-base.HeapAlloc > peak {
				peak = m.HeapAlloc - base.HeapAlloc
			}
		}
		return nil
	})
	if err != nil {
		t.Fatal(err)
	}
	if count != cfg.Cells {
		t.Fatalf("emitted %d, want %d", count, cfg.Cells)
	}
	if peak > budget {
		t.Fatalf("streaming generation held %d bytes live (budget %d) — the window is not bounded", peak, budget)
	}
}
