package data

import (
	"bufio"
	"encoding/binary"
	"errors"
	"fmt"
	"io"
	"math"

	"spatialjoin/internal/codec"
	"spatialjoin/internal/geom"
)

// Relations persist in a compact binary format so generated datasets can
// be produced once (cmd/datagen) and reused across runs and external
// tools.
//
// Layout (little endian):
//
//	magic   uint32 'SJR1'
//	count   uint32 number of polygons
//	per polygon:
//	  rings uint32 (1 outer + holes)
//	  per ring: n uint32, then n × (x float64, y float64)
const relationMagic = 0x534A5231 // "SJR1"

// ErrBadRelation reports malformed serialized relation data.
var ErrBadRelation = errors.New("data: corrupt relation stream")

// WriteRelation serializes a relation to w.
func WriteRelation(w io.Writer, rel []*geom.Polygon) error {
	rw, err := NewRelationWriter(w, len(rel))
	if err != nil {
		return err
	}
	for _, p := range rel {
		if err := rw.Append(p); err != nil {
			return err
		}
	}
	return rw.Close()
}

// RelationWriter streams a relation to the WriteRelation format one
// polygon at a time — the bounded-memory path of cmd/datagen for very
// large -n: the polygon count is declared up front, so the header can
// be written before any geometry exists.
type RelationWriter struct {
	bw        *bufio.Writer
	remaining int
	scratch   []byte
}

// NewRelationWriter writes the header for a relation of count polygons.
// Exactly count Append calls must follow before Close.
func NewRelationWriter(w io.Writer, count int) (*RelationWriter, error) {
	if count < 0 || count > maxRelationPolys {
		return nil, fmt.Errorf("data: relation of %d polygons out of range", count)
	}
	bw := bufio.NewWriterSize(w, 1<<20)
	if err := binary.Write(bw, binary.LittleEndian, uint32(relationMagic)); err != nil {
		return nil, err
	}
	if err := binary.Write(bw, binary.LittleEndian, uint32(count)); err != nil {
		return nil, err
	}
	return &RelationWriter{bw: bw, remaining: count}, nil
}

// Append writes the next polygon.
func (rw *RelationWriter) Append(p *geom.Polygon) error {
	if rw.remaining <= 0 {
		return fmt.Errorf("data: more polygons than the declared count")
	}
	rw.remaining--
	rw.scratch = AppendPolygon(rw.scratch[:0], p)
	_, err := rw.bw.Write(rw.scratch)
	return err
}

// Close flushes the stream and verifies the declared count was met.
func (rw *RelationWriter) Close() error {
	if rw.remaining != 0 {
		return fmt.Errorf("data: %d polygons short of the declared count", rw.remaining)
	}
	return rw.bw.Flush()
}

// maxRelationPolys bounds ReadRelation against absurd headers.
const maxRelationPolys = 50_000_000

// ReadRelation deserializes a relation written by WriteRelation.
func ReadRelation(r io.Reader) ([]*geom.Polygon, error) {
	br := bufio.NewReader(r)
	var magic, count uint32
	if err := binary.Read(br, binary.LittleEndian, &magic); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRelation, err)
	}
	if magic != relationMagic {
		return nil, fmt.Errorf("%w: bad magic %#x", ErrBadRelation, magic)
	}
	if err := binary.Read(br, binary.LittleEndian, &count); err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRelation, err)
	}
	if count > maxRelationPolys {
		return nil, fmt.Errorf("%w: implausible polygon count %d", ErrBadRelation, count)
	}
	readRing := func() (geom.Ring, error) {
		var n uint32
		if err := binary.Read(br, binary.LittleEndian, &n); err != nil {
			return nil, err
		}
		if n < 3 || n > maxRelationPolys {
			return nil, fmt.Errorf("ring of %d vertices", n)
		}
		// Grow incrementally: a corrupt header must not allocate more
		// than the stream actually delivers.
		ring := make(geom.Ring, 0, minInt(int(n), 4096))
		for i := uint32(0); i < n; i++ {
			var xb, yb uint64
			if err := binary.Read(br, binary.LittleEndian, &xb); err != nil {
				return nil, err
			}
			if err := binary.Read(br, binary.LittleEndian, &yb); err != nil {
				return nil, err
			}
			ring = append(ring, geom.Point{X: math.Float64frombits(xb), Y: math.Float64frombits(yb)})
		}
		return ring, nil
	}
	out := make([]*geom.Polygon, 0, minInt(int(count), 4096))
	for k := uint32(0); k < count; k++ {
		var rings uint32
		if err := binary.Read(br, binary.LittleEndian, &rings); err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRelation, err)
		}
		if rings < 1 || rings > 1<<20 {
			return nil, fmt.Errorf("%w: polygon with %d rings", ErrBadRelation, rings)
		}
		outer, err := readRing()
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRelation, err)
		}
		p := &geom.Polygon{Outer: outer}
		for h := uint32(1); h < rings; h++ {
			hole, err := readRing()
			if err != nil {
				return nil, fmt.Errorf("%w: %v", ErrBadRelation, err)
			}
			p.Holes = append(p.Holes, hole)
		}
		out = append(out, p)
	}
	return out, nil
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

// AppendPolygon appends one polygon to buf in the byte-slice counterpart
// of the stream format (rings uint32, then per ring n uint32 and n
// points), for embedding polygons inside other formats such as the
// relation store.
func AppendPolygon(buf []byte, p *geom.Polygon) []byte {
	buf = binary.LittleEndian.AppendUint32(buf, uint32(1+len(p.Holes)))
	appendRing := func(r geom.Ring) {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(len(r)))
		for _, pt := range r {
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(pt.X))
			buf = binary.LittleEndian.AppendUint64(buf, math.Float64bits(pt.Y))
		}
	}
	appendRing(p.Outer)
	for _, h := range p.Holes {
		appendRing(h)
	}
	return buf
}

// DecodePolygon decodes one polygon from the front of data, returning
// the polygon and the number of bytes consumed. Corrupt input yields an
// error wrapping ErrBadRelation; allocations never exceed the data
// actually present.
func DecodePolygon(data []byte) (*geom.Polygon, int, error) {
	d := codec.New(data, fmt.Errorf("%w: truncated polygon", ErrBadRelation))
	rings := d.U32()
	if err := d.Err(); err != nil {
		return nil, 0, err
	}
	if rings < 1 || rings > 1<<20 {
		return nil, 0, fmt.Errorf("%w: polygon with %d rings", ErrBadRelation, rings)
	}
	readRing := func() (geom.Ring, error) {
		n := d.U32()
		if err := d.Err(); err != nil {
			return nil, err
		}
		// Compare in uint64: int(n)*16 would overflow on 32-bit
		// platforms and let a corrupt length reach make().
		if n < 3 || uint64(d.Remaining()) < uint64(n)*16 {
			return nil, fmt.Errorf("%w: ring of %d vertices exceeds the remaining data", ErrBadRelation, n)
		}
		ring := make(geom.Ring, n)
		for i := range ring {
			ring[i] = geom.Point{X: d.F64(), Y: d.F64()}
		}
		return ring, nil
	}
	p := &geom.Polygon{}
	var err error
	if p.Outer, err = readRing(); err != nil {
		return nil, 0, err
	}
	for h := uint32(1); h < rings; h++ {
		hole, err := readRing()
		if err != nil {
			return nil, 0, err
		}
		p.Holes = append(p.Holes, hole)
	}
	return p, d.Pos(), nil
}
