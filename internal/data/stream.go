package data

import (
	"math"
	"math/rand"

	"spatialjoin/internal/geom"
)

// StreamMap is the bounded-memory counterpart of GenerateMap: it emits
// the polygons of a generated map one at a time, in row-major cell
// order, holding only a two-row window of cell boundaries in memory —
// O(√n · m∅) instead of O(n · m∅). It exists for the scale-factor
// datasets of the load harness (internal/loadgen), where an SF=10
// relation has millions of polygons and materializing the full slice
// before preprocessing would dominate the build's footprint.
//
// The generated map has the same character as GenerateMap's — a
// rotated, jittered grid of fractal-boundary counties with shared cell
// boundaries, lake holes and fjords — but is NOT polygon-identical to
// it: corner jitter derives from per-corner hashes instead of one
// sequential random stream, and boundary repair is row-local (a cell
// may only tame edges no later row has already consumed) instead of
// global. Both choices are what make single-pass bounded-memory
// emission possible. Repair resolutions:
//
//  1. A non-simple cell tames its top and side edges (its bottom edge
//     is frozen — the previous row already emitted it) and re-checks,
//     up to the same two taming levels GenerateMap uses.
//  2. If still non-simple, the cell regenerates a private gentle copy
//     of its bottom edge. The neighbour below keeps the wild version,
//     so the shared-boundary tiling is broken along that one edge (a
//     "seam"); StreamStats counts them.
//  3. As a last resort the cell falls back to its plain jittered quad,
//     which the jitter bound keeps simple.
//
// Generation is deterministic in cfg: the same configuration always
// yields the same polygon sequence, in one pass or across runs.
// cfg.Extent > 0 scales the data space to [0, Extent]² (the load
// harness grows the territory with the scale factor so object sizes
// and densities stay constant); 0 means the unit square.
//
// yield receives the cell's ID (dense, 0..Cells-1) and its polygon; a
// non-nil error aborts generation and is returned. The polygon is
// freshly allocated per call — the callback may retain it.
func StreamMap(cfg MapConfig, yield func(id int32, p *geom.Polygon) error) (StreamStats, error) {
	var st StreamStats
	if cfg.Cells < 1 {
		return st, nil
	}
	if cfg.Rotation == 0 {
		cfg.Rotation = 0.5
	}
	if cfg.Roughness == 0 {
		cfg.Roughness = 0.24
	}
	if cfg.FjordProb == 0 {
		cfg.FjordProb = 0.7
	}
	if cfg.FjordProb < 0 {
		cfg.FjordProb = 0
	}
	extent := cfg.Extent
	if extent <= 0 {
		extent = 1
	}

	kx := int(math.Round(math.Sqrt(float64(cfg.Cells))))
	if kx < 1 {
		kx = 1
	}
	ky := (cfg.Cells + kx - 1) / kx

	// Per-corner jitter from a position hash, so any corner is computable
	// on demand without replaying a global random stream.
	corner := func(i, j int) geom.Point {
		h := splitmix(uint64(cfg.Seed)*0x9E3779B97F4A7C15 + uint64(i)*0x85EBCA77C2B2AE63 + uint64(j)*0xC2B2AE3D27D4EB4F)
		jx := (unitFloat(h) - 0.5) * 0.42
		h = splitmix(h)
		jy := (unitFloat(h) - 0.5) * 0.42
		return geom.Point{
			X: (float64(i) + jx) / float64(kx) * extent,
			Y: (float64(j) + jy) / float64(ky) * extent,
		}
	}
	cornerRow := func(j int) []geom.Point {
		row := make([]geom.Point, kx+1)
		for i := range row {
			row[i] = corner(i, j)
		}
		return row
	}

	perSide := float64(cfg.TargetVerts) / 4
	baseDepth := int(math.Round(math.Log2(math.Max(1, perSide))))

	genEdge := func(a, b geom.Point, seed int64, level int) []geom.Point {
		erng := rand.New(rand.NewSource(seed))
		rough := cfg.Roughness
		fjord := cfg.FjordProb
		switch level {
		case 1:
			rough /= 2
			fjord = 0
		case 2:
			rough /= 6
			fjord = 0
		}
		e := displace(erng, a, b, edgeDepth(erng, baseDepth), rough)
		return addFjords(erng, e, fjord)
	}
	hSeed := func(i, j int) int64 { return cfg.Seed*1_000_003 + int64(i)*7919 + int64(j)*104729 + 1 }
	vSeed := func(i, j int) int64 { return cfg.Seed*1_000_003 + int64(i)*7919 + int64(j)*104729 + 2 }

	center := geom.Point{X: 0.5 * extent, Y: 0.5 * extent}
	rot := func(p geom.Point) geom.Point { return p.RotateAround(cfg.Rotation, center) }

	// The sliding window: the current row's bottom boundary (the previous
	// row's top, levels final) and corner rows j and j+1.
	bottomCorners := cornerRow(0)
	bottom := make([][]geom.Point, kx)
	for i := 0; i < kx; i++ {
		bottom[i] = genEdge(bottomCorners[i], bottomCorners[i+1], hSeed(i, 0), 0)
	}

	emitted := int32(0)
	for j := 0; j < ky && int(emitted) < cfg.Cells; j++ {
		topCorners := cornerRow(j + 1)
		top := make([][]geom.Point, kx)
		topLevel := make([]int, kx)
		for i := 0; i < kx; i++ {
			top[i] = genEdge(topCorners[i], topCorners[i+1], hSeed(i, j+1), 0)
		}
		verts := make([][]geom.Point, kx+1)
		vertLevel := make([]int, kx+1)
		for i := 0; i <= kx; i++ {
			verts[i] = genEdge(bottomCorners[i], topCorners[i], vSeed(i, j), 0)
		}

		buildCell := func(i int) geom.Ring {
			return geom.NewRing(assembleCell(bottom[i], verts[i+1], top[i], verts[i]))
		}

		// Row-local repair: tame the tameable edges of non-simple cells
		// and re-check the same-row neighbours sharing them. Bottom edges
		// are frozen — the previous row has already been emitted.
		pending := make([]bool, kx)
		for i := range pending {
			pending[i] = true
		}
		for round := 0; round < 4; round++ {
			any := false
			for i := 0; i < kx; i++ {
				if !pending[i] {
					continue
				}
				pending[i] = false
				if !buildCell(i).SelfIntersects() {
					continue
				}
				any = true
				if topLevel[i] < 2 {
					topLevel[i]++
					top[i] = genEdge(topCorners[i], topCorners[i+1], hSeed(i, j+1), topLevel[i])
				}
				for _, vi := range [2]int{i, i + 1} {
					if vertLevel[vi] < 2 {
						vertLevel[vi]++
						verts[vi] = genEdge(bottomCorners[vi], topCorners[vi], vSeed(vi, j), vertLevel[vi])
					}
				}
				pending[i] = true
				if i > 0 {
					pending[i-1] = true
				}
				if i < kx-1 {
					pending[i+1] = true
				}
			}
			if !any {
				break
			}
		}

		for i := 0; i < kx && int(emitted) < cfg.Cells; i++ {
			ring := buildCell(i)
			if ring.SelfIntersects() {
				// The frozen bottom edge is the remaining wild input: give
				// this cell a private gentle copy. The neighbour below keeps
				// the original — a seam in the tiling, counted, rare.
				st.Seams++
				privBottom := genEdge(bottomCorners[i], bottomCorners[i+1], hSeed(i, j), 2)
				ring = geom.NewRing(assembleCell(privBottom, verts[i+1], top[i], verts[i]))
				if ring.SelfIntersects() {
					// Last resort: the plain jittered quad is simple by the
					// jitter bound (corners move < half a cell).
					st.QuadFallbacks++
					ring = geom.NewRing([]geom.Point{
						bottomCorners[i], bottomCorners[i+1], topCorners[i+1], topCorners[i],
					})
				}
			}
			p := &geom.Polygon{Outer: ring}
			hrng := rand.New(rand.NewSource(int64(splitmix(uint64(cfg.Seed)*0xD6E8FEB86659FD93 + uint64(emitted)))))
			if hrng.Float64() < cfg.HoleFraction {
				if hole, ok := makeHole(hrng, p); ok {
					p.Holes = append(p.Holes, hole)
				}
			}
			if err := yield(emitted, p.Transform(rot)); err != nil {
				return st, err
			}
			emitted++
		}

		// Slide the window: this row's top is the next row's bottom, at
		// its repaired levels (final — later rows never regenerate it).
		bottomCorners = topCorners
		bottom = top
	}
	st.Objects = int(emitted)
	return st, nil
}

// StreamStats reports how StreamMap's row-local repair resolved: Seams
// counts cells that replaced their frozen bottom boundary with a
// private gentle copy (breaking the shared tiling along one edge),
// QuadFallbacks the cells that fell back to their plain jittered quad.
type StreamStats struct {
	Objects       int
	Seams         int
	QuadFallbacks int
}

// splitmix is the SplitMix64 finalizer — the per-position hash behind
// StreamMap's on-demand corner jitter and hole decisions.
func splitmix(x uint64) uint64 {
	x += 0x9E3779B97F4A7C15
	x ^= x >> 30
	x *= 0xBF58476D1CE4E5B9
	x ^= x >> 27
	x *= 0x94D049BB133111EB
	x ^= x >> 31
	return x
}

// unitFloat maps a hash onto [0, 1).
func unitFloat(h uint64) float64 { return float64(h>>11) / (1 << 53) }
