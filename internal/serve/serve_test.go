package serve

import (
	"context"
	"encoding/json"
	"fmt"
	"net/http"
	"net/http/httptest"
	"path/filepath"
	"reflect"
	"runtime"
	"strings"
	"sync"
	"testing"
	"time"

	"spatialjoin/internal/data"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/shard"
)

// testCatalog builds a small two-relation catalog (R and its shifted
// copy S) under the paper's default configuration.
func testCatalog(t testing.TB) (*Catalog, multistep.Config) {
	t.Helper()
	cfg := multistep.DefaultConfig()
	cfg.BufferBytes = 8192 // small buffer: non-trivial per-query accounting
	rp := data.GenerateMap(data.MapConfig{Cells: 80, TargetVerts: 48, HoleFraction: 0.1, Seed: 211})
	sp := data.StrategyA(rp, 0.45)
	cat := NewCatalog()
	cat.Add("R", multistep.NewRelation("R", rp, cfg), cfg)
	cat.Add("S", multistep.NewRelation("S", sp, cfg), cfg)
	return cat, cfg
}

func get(t *testing.T, h http.Handler, url string, wantStatus int, out any) {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("GET %s: status %d (want %d): %s", url, rec.Code, wantStatus, rec.Body)
	}
	if out != nil {
		if err := json.Unmarshal(rec.Body.Bytes(), out); err != nil {
			t.Fatalf("GET %s: bad JSON: %v", url, err)
		}
	}
}

func TestEndpoints(t *testing.T) {
	cat, _ := testCatalog(t)
	h := NewServer(cat).Handler()

	var health struct {
		OK        bool `json:"ok"`
		Relations int  `json:"relations"`
	}
	get(t, h, "/healthz", http.StatusOK, &health)
	if !health.OK || health.Relations != 2 {
		t.Errorf("healthz = %+v", health)
	}

	var rels []relationInfo
	get(t, h, "/relations", http.StatusOK, &rels)
	if len(rels) != 2 || rels[0].Name != "R" || rels[1].Name != "S" || rels[0].Objects == 0 {
		t.Errorf("relations = %+v", rels)
	}
	// The catalog listing is the introspection surface: fingerprint,
	// shard count, relation MBR and per-tile bounds.
	for _, ri := range rels {
		if len(ri.Fingerprint) != 16 {
			t.Errorf("relation %q: fingerprint %q, want 16 hex digits", ri.Name, ri.Fingerprint)
		}
		if ri.Shards != 1 || len(ri.Tiles) != 1 {
			t.Errorf("relation %q: %d shards, %d tiles, want 1/1 for a monolithic entry", ri.Name, ri.Shards, len(ri.Tiles))
		}
		if ri.MBR.IsEmpty() || !ri.MBR.Contains(ri.Tiles[0].MBR) {
			t.Errorf("relation %q: MBR %+v does not cover tile MBR %+v", ri.Name, ri.MBR, ri.Tiles[0].MBR)
		}
		if ri.Tiles[0].Objects != ri.Objects {
			t.Errorf("relation %q: tile holds %d of %d objects", ri.Name, ri.Tiles[0].Objects, ri.Objects)
		}
	}
	if rels[0].Fingerprint != rels[1].Fingerprint {
		t.Errorf("same-config relations report different fingerprints: %q vs %q",
			rels[0].Fingerprint, rels[1].Fingerprint)
	}

	var win windowResponse
	get(t, h, "/window?rel=R&minx=0.2&miny=0.2&maxx=0.45&maxy=0.4", http.StatusOK, &win)
	if len(win.IDs) == 0 || win.Stats.Candidates == 0 {
		t.Errorf("window = %+v", win)
	}

	var pt windowResponse
	get(t, h, "/point?rel=R&x=0.31&y=0.47", http.StatusOK, &pt)
	if len(pt.IDs) != 1 || pt.IDs[0] != 47 {
		t.Errorf("point = %+v", pt)
	}

	var nn nearestResponse
	get(t, h, "/nearest?rel=R&x=0.31&y=0.47&k=3", http.StatusOK, &nn)
	if len(nn.Neighbors) != 3 || nn.Neighbors[0].ID != 47 || nn.Neighbors[0].Dist != 0 {
		t.Errorf("nearest = %+v", nn)
	}
	// The best-first search touches at least the root; misses depend on
	// which pages the session snapshot holds resident.
	if nn.Stats.PageTouches <= 0 || nn.Stats.PageAccesses < 0 {
		t.Errorf("nearest must report its per-query page accounting, got %+v", nn.Stats)
	}

	var jn joinResponse
	get(t, h, "/join?r=R&s=S", http.StatusOK, &jn)
	if jn.Stats.ResultPairs == 0 || int64(len(jn.Pairs)) != jn.Stats.ResultPairs || jn.Truncated {
		t.Errorf("join = %d pairs, stats %+v", len(jn.Pairs), jn.Stats)
	}

	var trunc joinResponse
	get(t, h, "/join?r=R&s=S&limit=5", http.StatusOK, &trunc)
	if len(trunc.Pairs) != 5 || !trunc.Truncated || trunc.Stats.ResultPairs != jn.Stats.ResultPairs {
		t.Errorf("limited join = %d pairs truncated=%v", len(trunc.Pairs), trunc.Truncated)
	}
	// A truncated response returns the (A, B)-smallest pairs — the
	// deterministic prefix of the sorted response set, independent of
	// worker scheduling.
	if !reflect.DeepEqual(trunc.Pairs, jn.Pairs[:5]) {
		t.Errorf("truncated join is not the sorted prefix: %v vs %v", trunc.Pairs, jn.Pairs[:5])
	}

	// An absurd workers parameter is clamped, not obeyed.
	var wj joinResponse
	get(t, h, "/join?r=R&s=S&limit=5&workers=1000000000", http.StatusOK, &wj)
	if !reflect.DeepEqual(wj.Pairs, trunc.Pairs) || wj.Stats.ResultPairs != jn.Stats.ResultPairs {
		t.Errorf("clamped-workers join diverged")
	}
}

func TestEndpointErrors(t *testing.T) {
	cat, cfg := testCatalog(t)
	// A third relation under a different configuration: joins against it
	// must be rejected by fingerprint.
	other := cfg
	other.PageSize = 2048
	rp := data.GenerateMap(data.MapConfig{Cells: 20, TargetVerts: 24, Seed: 7})
	cat.Add("T", multistep.NewRelation("T", rp, other), other)
	h := NewServer(cat).Handler()

	get(t, h, "/window?rel=missing&minx=0&miny=0&maxx=1&maxy=1", http.StatusNotFound, nil)
	get(t, h, "/window?rel=R&minx=0&miny=0&maxx=1", http.StatusBadRequest, nil)
	get(t, h, "/window?rel=R&minx=zero&miny=0&maxx=1&maxy=1", http.StatusBadRequest, nil)
	get(t, h, "/point?rel=R&x=0.5", http.StatusBadRequest, nil)
	get(t, h, "/nearest?rel=R&x=0.5&y=0.5&k=0", http.StatusBadRequest, nil)
	get(t, h, "/join?r=R", http.StatusBadRequest, nil)

	// A fingerprint-mismatched pair conflicts, and the body names both
	// fingerprints so the caller can see which side to rebuild.
	var conflict errorBody
	get(t, h, "/join?r=R&s=T", http.StatusConflict, &conflict)
	if conflict.Error == "" {
		t.Error("conflict body has no error message")
	}
	if len(conflict.RFingerprint) != 16 || len(conflict.SFingerprint) != 16 {
		t.Errorf("conflict fingerprints = %q / %q, want 16 hex digits each",
			conflict.RFingerprint, conflict.SFingerprint)
	}
	if conflict.RFingerprint == conflict.SFingerprint {
		t.Error("conflicting relations report the same fingerprint")
	}
	// Matching pairs never carry the conflict fingerprints.
	var okBody map[string]any
	get(t, h, "/join?r=R&s=S&limit=1", http.StatusOK, &okBody)
	if _, present := okBody["rFingerprint"]; present {
		t.Error("successful join leaked the conflict fingerprint fields")
	}
}

func TestCatalogLoadFile(t *testing.T) {
	cfg := multistep.DefaultConfig()
	rp := data.GenerateMap(data.MapConfig{Cells: 30, TargetVerts: 32, Seed: 77})
	rel := multistep.NewRelation("stored", rp, cfg)
	path := filepath.Join(t.TempDir(), "rel.store")
	if err := multistep.SaveRelationFile(path, rel, cfg); err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog()
	if err := cat.LoadFile("stored", path, cfg); err != nil {
		t.Fatal(err)
	}
	e, ok := cat.Get("stored")
	if !ok || e.Sh.Objects() != len(rel.Objects) {
		t.Fatal("loaded relation missing or truncated")
	}
	if err := cat.LoadFile("bad", filepath.Join(t.TempDir(), "absent.store"), cfg); err == nil {
		t.Fatal("loading a missing file must fail")
	}
}

// TestServeShardedStore is the end-to-end sharded path: a 4-shard store
// saved to disk, reopened through the manifest (Catalog.LoadDir — the
// same route cmd/spatialjoinserve takes for a store directory), and
// served; every endpoint must answer exactly as the monolithic catalog
// does.
func TestServeShardedStore(t *testing.T) {
	cfg := multistep.DefaultConfig()
	cfg.BufferBytes = 8192
	rp := data.GenerateMap(data.MapConfig{Cells: 80, TargetVerts: 48, HoleFraction: 0.1, Seed: 211})
	sp := data.StrategyA(rp, 0.45)

	dir := t.TempDir()
	rDir, sDir := filepath.Join(dir, "R"), filepath.Join(dir, "S")
	if err := shard.Save(rDir, shard.Build("R", rp, 4, cfg)); err != nil {
		t.Fatal(err)
	}
	if err := shard.Save(sDir, shard.Build("S", sp, 4, cfg)); err != nil {
		t.Fatal(err)
	}
	cat := NewCatalog()
	if err := cat.LoadDir("R", rDir, cfg); err != nil {
		t.Fatal(err)
	}
	if err := cat.LoadDir("S", sDir, cfg); err != nil {
		t.Fatal(err)
	}
	sharded := NewServer(cat).Handler()
	mono, _ := testCatalog(t)
	monoH := NewServer(mono).Handler()

	var rels []relationInfo
	get(t, sharded, "/relations", http.StatusOK, &rels)
	if len(rels) != 2 || rels[0].Shards != 4 || len(rels[0].Tiles) != 4 {
		t.Fatalf("sharded listing = %+v", rels)
	}

	// Joins and queries agree with the monolithic catalog pair for pair
	// and ID for ID (the stats differ in page accounting only, so the
	// comparison is on results).
	var jm, js joinResponse
	get(t, monoH, "/join?r=R&s=S", http.StatusOK, &jm)
	get(t, sharded, "/join?r=R&s=S", http.StatusOK, &js)
	if jm.Stats.ResultPairs == 0 || !reflect.DeepEqual(js.Pairs, jm.Pairs) {
		t.Errorf("sharded /join returned %d pairs, monolithic %d", len(js.Pairs), len(jm.Pairs))
	}
	var wm, ws windowResponse
	get(t, monoH, "/window?rel=R&minx=0.2&miny=0.2&maxx=0.45&maxy=0.4", http.StatusOK, &wm)
	get(t, sharded, "/window?rel=R&minx=0.2&miny=0.2&maxx=0.45&maxy=0.4", http.StatusOK, &ws)
	if len(wm.IDs) == 0 || !reflect.DeepEqual(ws.IDs, wm.IDs) {
		t.Errorf("sharded /window IDs %v, monolithic %v", ws.IDs, wm.IDs)
	}
	var nm, ns nearestResponse
	get(t, monoH, "/nearest?rel=R&x=0.31&y=0.47&k=3", http.StatusOK, &nm)
	get(t, sharded, "/nearest?rel=R&x=0.31&y=0.47&k=3", http.StatusOK, &ns)
	if !reflect.DeepEqual(ns.Neighbors, nm.Neighbors) {
		t.Errorf("sharded /nearest %v, monolithic %v", ns.Neighbors, nm.Neighbors)
	}
}

// stripMarkers removes the multi-query execution marker lines
// ("cached": true / "coalesced": true) from a JSON response body. The
// markers lead their structs, so the remainder is exactly the solo-run
// body — the byte-identity contract of DESIGN.md §12.
func stripMarkers(body string) string {
	lines := strings.Split(body, "\n")
	out := lines[:0]
	for _, ln := range lines {
		if strings.Contains(ln, `"cached": true`) || strings.Contains(ln, `"coalesced": true`) {
			continue
		}
		out = append(out, ln)
	}
	return strings.Join(out, "\n")
}

// TestConcurrentRequests hammers one server with parallel mixed queries
// and checks that every response equals its solo-run baseline — the
// HTTP-level proof of per-query isolation (run it under -race).
// Responses may legitimately be served from the cache or a coalesced
// execution; after stripping those marker lines the bodies must be
// byte-identical.
func TestConcurrentRequests(t *testing.T) {
	cat, _ := testCatalog(t)
	h := NewServer(cat).Handler()

	urls := []string{
		"/window?rel=R&minx=0.2&miny=0.2&maxx=0.45&maxy=0.4",
		"/window?rel=S&minx=0.5&miny=0.1&maxx=0.8&maxy=0.6",
		"/point?rel=R&x=0.31&y=0.47",
		"/nearest?rel=R&x=0.7&y=0.2&k=4",
		"/join?r=R&s=S&limit=100",
	}
	baseline := make([]string, len(urls))
	for i, u := range urls {
		req := httptest.NewRequest("GET", u, nil)
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, req)
		if rec.Code != http.StatusOK {
			t.Fatalf("baseline GET %s: %d", u, rec.Code)
		}
		baseline[i] = rec.Body.String()
	}

	const goroutines = 9
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			for round := 0; round < 4; round++ {
				i := (g + round) % len(urls)
				req := httptest.NewRequest("GET", urls[i], nil)
				rec := httptest.NewRecorder()
				h.ServeHTTP(rec, req)
				if rec.Code != http.StatusOK {
					t.Errorf("goroutine %d: GET %s: %d", g, urls[i], rec.Code)
					return
				}
				if stripMarkers(rec.Body.String()) != stripMarkers(baseline[i]) {
					t.Errorf("goroutine %d: GET %s diverged from the solo-run response", g, urls[i])
				}
			}
		}(g)
	}
	wg.Wait()
}

// TestServerOverRealConnections exercises the full network stack once:
// an httptest.Server with keep-alives and true parallel clients.
func TestServerOverRealConnections(t *testing.T) {
	cat, _ := testCatalog(t)
	ts := httptest.NewServer(NewServer(cat).Handler())
	defer ts.Close()

	var want windowResponse
	res, err := http.Get(ts.URL + "/window?rel=R&minx=0.2&miny=0.2&maxx=0.45&maxy=0.4")
	if err != nil {
		t.Fatal(err)
	}
	if err := json.NewDecoder(res.Body).Decode(&want); err != nil {
		t.Fatal(err)
	}
	res.Body.Close()

	var wg sync.WaitGroup
	for g := 0; g < 8; g++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			res, err := http.Get(ts.URL + "/window?rel=R&minx=0.2&miny=0.2&maxx=0.45&maxy=0.4")
			if err != nil {
				t.Error(err)
				return
			}
			defer res.Body.Close()
			var got windowResponse
			if err := json.NewDecoder(res.Body).Decode(&got); err != nil {
				t.Error(err)
				return
			}
			got.Cached, got.Coalesced = false, false
			if !reflect.DeepEqual(got, want) {
				t.Error("concurrent network response diverged from baseline")
			}
		}()
	}
	wg.Wait()
}

// BenchmarkConcurrentQueries measures the serving throughput (QPS) of
// one opened relation under parallel load — the "serve many" payoff of
// the per-query access contexts. Run with -cpu to scale the client
// parallelism; qps is reported as a custom metric.
func BenchmarkConcurrentQueries(b *testing.B) {
	cat, _ := testCatalog(b)
	h := NewServer(cat).Handler()
	// Pre-warm the lazy exact representations so the benchmark measures
	// steady-state serving, not one-time builds.
	warm := httptest.NewRequest("GET", "/join?r=R&s=S&limit=1", nil)
	h.ServeHTTP(httptest.NewRecorder(), warm)

	for _, bench := range []struct{ name, url string }{
		{"window", "/window?rel=R&minx=0.2&miny=0.2&maxx=0.45&maxy=0.4"},
		{"point", "/point?rel=R&x=0.31&y=0.47"},
		{"nearest", "/nearest?rel=R&x=0.31&y=0.47&k=5"},
		{"join", "/join?r=R&s=S&limit=0"},
	} {
		b.Run(bench.name, func(b *testing.B) {
			start := time.Now()
			b.RunParallel(func(pb *testing.PB) {
				for pb.Next() {
					req := httptest.NewRequest("GET", bench.url, nil)
					rec := httptest.NewRecorder()
					h.ServeHTTP(rec, req)
					if rec.Code != http.StatusOK {
						b.Fatalf("status %d", rec.Code)
					}
				}
			})
			elapsed := time.Since(start).Seconds()
			if elapsed > 0 {
				b.ReportMetric(float64(b.N)/elapsed, "qps")
			}
		})
	}
}

// Example output shape of the window endpoint, for the README.
func ExampleServer() {
	cat := NewCatalog()
	cfg := multistep.DefaultConfig()
	rp := data.GenerateMap(data.MapConfig{Cells: 12, TargetVerts: 16, Seed: 3})
	cat.Add("demo", multistep.NewRelation("demo", rp, cfg), cfg)
	h := NewServer(cat).Handler()
	req := httptest.NewRequest("GET", "/healthz", nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	fmt.Print(rec.Body.String())
	// Output:
	// {
	//   "ok": true,
	//   "relations": 1
	// }
}

// TestJoinPredicates exercises the /join predicate and epsilon
// parameters: the contains join, the within-distance join (a superset of
// the intersection join, degenerating to it at ε = 0), and parameter
// validation.
func TestJoinPredicates(t *testing.T) {
	cat, _ := testCatalog(t)
	h := NewServer(cat).Handler()

	var inter joinResponse
	get(t, h, "/join?r=R&s=S", http.StatusOK, &inter)
	if inter.Predicate != "intersects" || inter.Stats.ResultPairs == 0 {
		t.Fatalf("intersects join = %+v", inter.Stats)
	}

	var zero joinResponse
	get(t, h, "/join?r=R&s=S&predicate=within&epsilon=0", http.StatusOK, &zero)
	if zero.Stats.ResultPairs != inter.Stats.ResultPairs {
		t.Errorf("within(0) found %d pairs, intersects %d", zero.Stats.ResultPairs, inter.Stats.ResultPairs)
	}

	var within joinResponse
	get(t, h, "/join?r=R&s=S&epsilon=0.02", http.StatusOK, &within) // epsilon implies within
	if within.Predicate != "within(0.02)" {
		t.Errorf("predicate echoed as %q", within.Predicate)
	}
	if within.Stats.ResultPairs < inter.Stats.ResultPairs {
		t.Errorf("ε-join found %d pairs, fewer than the %d intersecting",
			within.Stats.ResultPairs, inter.Stats.ResultPairs)
	}

	// The inclusion self-join: every region contains itself, so the
	// response holds at least the diagonal.
	var contains joinResponse
	get(t, h, "/join?r=R&s=R&predicate=contains", http.StatusOK, &contains)
	if contains.Predicate != "contains" || contains.Stats.ResultPairs < 80 {
		t.Errorf("contains self-join = %+v", contains.Stats)
	}

	get(t, h, "/join?r=R&s=S&predicate=frobnicate", http.StatusBadRequest, nil)
	get(t, h, "/join?r=R&s=S&epsilon=-1", http.StatusBadRequest, nil)
	get(t, h, "/join?r=R&s=S&epsilon=nope", http.StatusBadRequest, nil)
	// An explicit intersects predicate with an epsilon is promoted to the
	// ε-join (matching cmd/spatialjoin), never silently dropped…
	var promoted joinResponse
	get(t, h, "/join?r=R&s=S&predicate=intersects&epsilon=0.02", http.StatusOK, &promoted)
	if promoted.Predicate != "within(0.02)" || promoted.Stats.ResultPairs != within.Stats.ResultPairs {
		t.Errorf("intersects+epsilon promoted to %q (%d pairs), want within(0.02) (%d pairs)",
			promoted.Predicate, promoted.Stats.ResultPairs, within.Stats.ResultPairs)
	}
	// …while an epsilon on a predicate that takes none is rejected.
	get(t, h, "/join?r=R&s=S&predicate=contains&epsilon=0.02", http.StatusBadRequest, nil)

	// ε-range queries on the single-relation endpoints.
	var pt windowResponse
	get(t, h, "/point?rel=R&x=0.31&y=0.47&epsilon=0.05", http.StatusOK, &pt)
	var plain windowResponse
	get(t, h, "/point?rel=R&x=0.31&y=0.47", http.StatusOK, &plain)
	if len(pt.IDs) < len(plain.IDs) {
		t.Errorf("ε-range point query found %d, plain point query %d", len(pt.IDs), len(plain.IDs))
	}
}

// TestCancelledRequestReleasesWorkers is the serving-layer cancellation
// acceptance test: a /join request whose client disconnects mid-join
// must stop its pipeline workers (no goroutine leak — run under -race in
// CI) instead of running the join to completion.
func TestCancelledRequestReleasesWorkers(t *testing.T) {
	// A heavier workload than testCatalog so the join reliably outlives
	// the cancellation point.
	cfg := multistep.DefaultConfig()
	cfg.UseFilter = false
	cfg.Engine = multistep.EngineQuadratic
	rp := data.GenerateMap(data.MapConfig{Cells: 600, TargetVerts: 56, HoleFraction: 0.1, Seed: 613})
	sp := data.StrategyA(rp, 0.45)
	cat := NewCatalog()
	cat.Add("R", multistep.NewRelation("R", rp, cfg), cfg)
	cat.Add("S", multistep.NewRelation("S", sp, cfg), cfg)
	srv := httptest.NewServer(NewServer(cat).Handler())
	defer srv.Close()

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	req, err := http.NewRequestWithContext(ctx, "GET", srv.URL+"/join?r=R&s=S&workers=4", nil)
	if err != nil {
		t.Fatal(err)
	}
	done := make(chan error, 1)
	go func() {
		resp, err := http.DefaultClient.Do(req)
		if err == nil {
			resp.Body.Close()
		}
		done <- err
	}()
	time.Sleep(50 * time.Millisecond) // let the join start
	start := time.Now()
	cancel()
	if err := <-done; err == nil {
		t.Log("request finished before the cancellation point; leak check still applies")
	}

	// All request-scoped goroutines — HTTP handler, traversal workers,
	// filter/exact pool, collector — must drain promptly.
	deadline := time.Now().Add(5 * time.Second)
	for runtime.NumGoroutine() > before {
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after client disconnect: %d, baseline %d (waited %v)",
				runtime.NumGoroutine(), before, time.Since(start))
		}
		time.Sleep(5 * time.Millisecond)
	}
}
