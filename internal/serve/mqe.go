package serve

import (
	"context"
	"errors"
	"fmt"
	"net/http"

	"spatialjoin/internal/hist"
	"spatialjoin/internal/mqe"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/procinfo"
	"spatialjoin/internal/resilience"
	"spatialjoin/internal/resilience/fault"
	"spatialjoin/internal/shard"
)

// Multi-query execution (DESIGN.md §12). Every query request runs
// through a canonical execution path: the validated parameters build a
// normalized, limit-insensitive key; identical concurrent requests
// coalesce into a single execution (mqe.Group); completed canonical
// results live in one byte-bounded LRU (mqe.Cache) shared between
// whole responses and per-tile sub-results; and concurrent join
// requests over the same relation pair within the batching window run
// one synchronized traversal (mqe.Batcher → shard.JoinBatch). Each
// response is then derived from the canonical result per request —
// sorted-prefix limit, recomputed truncation — so cached, coalesced
// and solo runs are byte-identical up to the cached/coalesced markers.

// queryCanonical is the cached canonical result of a single-relation
// request: the uncapped merged answer plus the plan echo. Derivations
// only read it (slices are shared between concurrent responses).
// Degraded results — partial=1 answers that lost tiles — flow through
// the same struct but are never stored in the cache: the missing tiles
// may heal, and a cached degraded answer would outlive the failure.
type queryCanonical struct {
	IDs       []int32
	Neighbors []multistep.Neighbor
	Stats     shard.QueryStats
	Plan      planEcho
	Degraded  bool
	Failed    []shard.TileFailure
}

// joinCanonical is the cached canonical result of a join request: the
// sorted response-set prefix at the server's MaxJoinPairs cap (every
// request limit is a prefix of it) plus aggregated stats and the plan
// echo.
type joinCanonical struct {
	Pairs []multistep.Pair
	Stats shard.JoinStats
	Plan  planEcho
}

// entryOverhead is the assumed fixed footprint of one cache entry
// (key, struct headers, LRU bookkeeping) on top of its slices.
const entryOverhead = 256

func (c *queryCanonical) size() int64 {
	return entryOverhead + 4*int64(len(c.IDs)) + 16*int64(len(c.Neighbors)) + 96*int64(len(c.Stats.Tiles))
}

func (c *joinCanonical) size() int64 {
	return entryOverhead + 8*int64(len(c.Pairs)) + 160*int64(len(c.Stats.PerTile))
}

func queryTileSize(r shard.QueryTileResult) int64 {
	return entryOverhead + 4*int64(len(r.IDs)) + 16*int64(len(r.Neighbors))
}

func joinTileSize(r shard.JoinTileResult) int64 {
	return entryOverhead + 8*int64(len(r.Pairs))
}

// init lazily builds the multi-query execution state from the
// configuration fields; Handler calls it before serving.
func (s *Server) init() {
	s.initOnce.Do(func() {
		s.cache = mqe.NewCache(s.CacheBytes)
		s.batcher = mqe.NewBatcher(s.BatchWindow)
		s.metrics = make(map[string]*endpointTally)
		if s.MaxInFlight > 0 {
			s.limiter = resilience.NewLimiter(s.MaxInFlight, s.MaxQueue, s.QueueWait)
		}
	})
}

// observeLookup feeds one whole-response cache lookup into the planner
// feedback of every tile of the involved relations, driving the
// cache-aware worker collapse (plan.Request.CacheHitRate).
func (s *Server) observeLookup(hit bool, entries ...*Entry) {
	for _, e := range entries {
		for _, t := range e.Sh.Tiles {
			t.Rel.Stats.ObserveCacheLookup(hit)
		}
	}
}

// queryTileAdapter scopes the shared LRU to one entry's per-tile
// sub-query results.
type queryTileAdapter struct {
	c     *mqe.Cache
	scope string
}

func (a queryTileAdapter) key(k shard.QueryTileKey) string {
	return a.scope + fmt.Sprintf("|%v", k)
}

func (a queryTileAdapter) GetQueryTile(k shard.QueryTileKey) (shard.QueryTileResult, bool) {
	v, ok := a.c.Get(a.key(k))
	if !ok {
		return shard.QueryTileResult{}, false
	}
	return v.(shard.QueryTileResult), true
}

func (a queryTileAdapter) PutQueryTile(k shard.QueryTileKey, r shard.QueryTileResult) {
	a.c.Put(a.key(k), r, queryTileSize(r))
}

// joinTileAdapter scopes the shared LRU to one entry pair's
// tile-pair sub-join results.
type joinTileAdapter struct {
	c     *mqe.Cache
	scope string
}

func (a joinTileAdapter) key(k shard.JoinTileKey) string {
	return a.scope + fmt.Sprintf("|%v", k)
}

func (a joinTileAdapter) GetJoinTile(k shard.JoinTileKey) (shard.JoinTileResult, bool) {
	v, ok := a.c.Get(a.key(k))
	if !ok {
		return shard.JoinTileResult{}, false
	}
	return v.(shard.JoinTileResult), true
}

func (a joinTileAdapter) PutJoinTile(k shard.JoinTileKey, r shard.JoinTileResult) {
	a.c.Put(a.key(k), r, joinTileSize(r))
}

// queryTileCache returns the per-tile sub-result cache for one entry,
// or nil (cache disabled). The typed-nil trap is why this returns the
// interface only when a real adapter backs it.
func (s *Server) queryTileCache(p *queryParams) shard.QueryTileCache {
	if s.cache == nil {
		return nil
	}
	return queryTileAdapter{c: s.cache, scope: "tq|" + entryScope(p.name, p.e)}
}

// joinTileCache returns the tile-pair sub-result cache for one entry
// pair, or nil (cache disabled).
func (s *Server) joinTileCache(p *joinParams) shard.JoinTileCache {
	if s.cache == nil {
		return nil
	}
	return joinTileAdapter{c: s.cache, scope: "tj|" + entryScope(p.nameR, p.eR) + "|" + entryScope(p.nameS, p.eS)}
}

// runQuery serves a single-relation request through the canonical
// path: LRU lookup, single-flight coalescing, canonical (uncapped)
// execution. cached and coalesced report how the result was obtained.
func (s *Server) runQuery(ctx context.Context, p *queryParams) (qc *queryCanonical, cached, coalesced bool, err error) {
	key := p.cacheKey()
	if v, ok := s.cache.Get(key); ok {
		s.observeLookup(true, p.e)
		return v.(*queryCanonical), true, false, nil
	}
	if s.cache != nil {
		s.observeLookup(false, p.e)
	}
	v, coalesced, err := s.flight.Do(key, func() (any, error) {
		c, err := s.execQuery(ctx, p)
		if err != nil {
			return nil, err
		}
		if !c.Degraded {
			s.cache.Put(key, c, c.size())
		}
		return c, nil
	})
	if err != nil {
		// A coalesced leader's client may disconnect — or its server-side
		// deadline may fire — while this request is still live: rerun
		// solo on our own context.
		if coalesced && (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) && ctx.Err() == nil {
			c, err := s.execQuery(ctx, p)
			if err != nil {
				return nil, false, false, err
			}
			if !c.Degraded {
				s.cache.Put(key, c, c.size())
			}
			return c, false, true, nil
		}
		return nil, false, false, err
	}
	return v.(*queryCanonical), false, coalesced, nil
}

// execQuery is the canonical single-relation execution: uncapped (the
// limit is applied per response as a sorted prefix), per-tile cached.
func (s *Server) execQuery(ctx context.Context, p *queryParams) (*queryCanonical, error) {
	var ex multistep.Explain
	var opts []multistep.Option
	switch p.kind {
	case kindWindow:
		opts = append(opts, multistep.ForWindow(p.win))
	case kindPoint:
		opts = append(opts, multistep.ForPoint(p.pt))
	case kindNearest:
		opts = append(opts, multistep.ForNearest(p.pt, p.k))
	}
	if p.kind != kindNearest {
		opts = append(opts, multistep.WithPredicate(p.pred), multistep.WithExplain(&ex))
		if p.plan {
			// WithConfig would pin the filter knob; the planner path runs on
			// the tiles' build configuration (identical to e.Cfg — the entry
			// was opened under it) and chooses the filter per tile.
			opts = append(opts, multistep.WithPlan())
		} else {
			opts = append(opts, multistep.WithConfig(p.e.Cfg))
		}
	}
	if p.partial {
		opts = append(opts, multistep.WithPartialResults())
	}
	res, err := shard.QueryCached(ctx, p.e.Sh, s.queryTileCache(p), opts...)
	if err != nil {
		return nil, err
	}
	return &queryCanonical{
		IDs: res.IDs, Neighbors: res.Neighbors, Stats: res.Stats, Plan: echoOf(ex.Plan),
		Degraded: res.Degraded, Failed: res.Failed,
	}, nil
}

// joinBatchReq is one member of a batched join execution.
type joinBatchReq struct {
	p *joinParams
}

// runJoin serves a join request through the canonical path: LRU
// lookup, single-flight coalescing, then the batching window — all
// misses over the same relation pair and step-1 ε within the window
// run ONE synchronized traversal (shard.JoinBatch).
func (s *Server) runJoin(ctx context.Context, p *joinParams) (jc *joinCanonical, cached, coalesced bool, err error) {
	key := p.cacheKey()
	if v, ok := s.cache.Get(key); ok {
		s.observeLookup(true, p.eR, p.eS)
		return v.(*joinCanonical), true, false, nil
	}
	if s.cache != nil {
		s.observeLookup(false, p.eR, p.eS)
	}
	v, coalesced, err := s.flight.Do(key, func() (any, error) {
		out, err := s.batcher.Run(p.batchKey(), &joinBatchReq{p: p}, func(reqs []any) ([]any, error) {
			return s.execJoinBatch(ctx, reqs)
		})
		if err != nil {
			return nil, err
		}
		c := out.(*joinCanonical)
		s.cache.Put(key, c, c.size())
		return c, nil
	})
	if err != nil {
		// The executing leader (single-flight or batch opener) may have
		// been cancelled by its own client — or timed out on its own
		// server-side deadline — while this request is still live: rerun
		// solo on our own context.
		if (errors.Is(err, context.Canceled) || errors.Is(err, context.DeadlineExceeded)) && ctx.Err() == nil {
			out, err := s.execJoinBatch(ctx, []any{&joinBatchReq{p: p}})
			if err != nil {
				return nil, false, false, err
			}
			c := out[0].(*joinCanonical)
			s.cache.Put(key, c, c.size())
			return c, false, true, nil
		}
		return nil, false, false, err
	}
	return v.(*joinCanonical), false, coalesced, nil
}

// execJoinBatch runs one batch of join requests — all over the same
// relation pair and step-1 ε, by batchKey construction — as a single
// shard.JoinBatch call and builds each member's canonical result.
func (s *Server) execJoinBatch(ctx context.Context, reqs []any) ([]any, error) {
	first := reqs[0].(*joinBatchReq).p
	items := make([][]multistep.Option, len(reqs))
	exs := make([]multistep.Explain, len(reqs))
	for i, rq := range reqs {
		p := rq.(*joinBatchReq).p
		opts := []multistep.Option{
			multistep.WithPredicate(p.pred),
			multistep.WithWorkers(p.workers),
			// Canonical cap: the largest limit any request can ask for.
			multistep.WithLimit(s.MaxJoinPairs),
			multistep.WithExplain(&exs[i]),
		}
		if p.plan {
			// WithPlan resolves engine, filter and workers per tile pair; an
			// explicit workers parameter stays pinned (WithWorkers > 0 wins).
			// WithConfig would pin engine and filter, so the planner path
			// relies on the tiles' build configuration instead.
			opts = append(opts, multistep.WithPlan())
		} else {
			opts = append(opts, multistep.WithConfig(p.eR.Cfg))
		}
		items[i] = opts
	}
	outs, err := shard.JoinBatch(ctx, first.eR.Sh, first.eS.Sh, s.joinTileCache(first), items)
	if err != nil {
		return nil, err
	}
	res := make([]any, len(reqs))
	for i := range outs {
		res[i] = &joinCanonical{Pairs: outs[i].Pairs, Stats: outs[i].Stats, Plan: echoOf(exs[i].Plan)}
	}
	return res, nil
}

// serveStats answers GET /stats: the shared cache counters, the
// single-flight coalesce count, the batching counters, the admission
// controller's gauges, per-endpoint request counts with latency
// percentiles and resilience outcomes, any quarantined relations, any
// armed fault injections, and the process's resident set size (the
// figure the load harness samples during a run).
type serveStats struct {
	Cache       mqe.CacheStats           `json:"cache"`
	Coalesced   int64                    `json:"coalesced"`
	Batch       mqe.BatcherStats         `json:"batch"`
	Admission   resilience.LimiterStats  `json:"admission"`
	Endpoints   map[string]endpointStats `json:"endpoints"`
	Quarantined map[string]string        `json:"quarantined,omitempty"`
	Faults      []fault.InjectionStats   `json:"faults,omitempty"`
	Process     processStats             `json:"process"`
}

// endpointStats is one endpoint's row in /stats. Latencies come from a
// fixed-bucket log-linear histogram (internal/hist): ≤ 2.4% relative
// quantile error, constant memory, lock-free recording. InFlight is an
// instantaneous gauge; Shed, TimedOut, Degraded and Panics count the
// endpoint's resilience outcomes (shed requests are counted under
// Requests too, but not under Latency-observed successes).
type endpointStats struct {
	Requests int64         `json:"requests"`
	InFlight int64         `json:"in_flight"`
	Shed     int64         `json:"shed"`
	TimedOut int64         `json:"timed_out"`
	Degraded int64         `json:"degraded"`
	Panics   int64         `json:"panics"`
	Latency  hist.Snapshot `json:"latency_ms"`
}

type processStats struct {
	RSSBytes     int64 `json:"rss_bytes"`
	PeakRSSBytes int64 `json:"peak_rss_bytes"`
}

func (s *Server) handleStats(w http.ResponseWriter, r *http.Request) {
	eps := make(map[string]endpointStats, len(s.metrics))
	for name, t := range s.metrics {
		eps[name] = endpointStats{
			Requests: t.requests.Load(),
			InFlight: t.inflight.Load(),
			Shed:     t.shed.Load(),
			TimedOut: t.timedOut.Load(),
			Degraded: t.degraded.Load(),
			Panics:   t.panics.Load(),
			Latency:  t.latency.Snapshot(),
		}
	}
	writeJSON(w, http.StatusOK, serveStats{
		Cache:       s.cache.Stats(),
		Coalesced:   s.flight.Coalesced(),
		Batch:       s.batcher.Stats(),
		Admission:   s.limiter.Stats(),
		Endpoints:   eps,
		Quarantined: s.cat.QuarantinedAll(),
		Faults:      fault.Stats(),
		Process:     processStats{RSSBytes: procinfo.CurrentRSS(), PeakRSSBytes: procinfo.PeakRSS()},
	})
}
