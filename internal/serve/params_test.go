package serve

import (
	"encoding/json"
	"net/http"
	"net/http/httptest"
	"testing"

	"spatialjoin/internal/data"
	"spatialjoin/internal/multistep"
)

// getError issues the request, asserts the status, and asserts the body
// is a well-formed JSON error envelope with a non-empty message — the
// contract every rejected request must honour (clients parse the
// envelope, never scrape HTML or plain text).
func getError(t *testing.T, h http.Handler, url string, wantStatus int) errorBody {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("GET %s: status %d (want %d): %s", url, rec.Code, wantStatus, rec.Body)
	}
	if ct := rec.Header().Get("Content-Type"); ct != "application/json" {
		t.Fatalf("GET %s: Content-Type %q, want application/json", url, ct)
	}
	var e errorBody
	if err := json.Unmarshal(rec.Body.Bytes(), &e); err != nil {
		t.Fatalf("GET %s: error body is not JSON: %v: %s", url, err, rec.Body)
	}
	if e.Error == "" {
		t.Fatalf("GET %s: error body without a message: %s", url, rec.Body)
	}
	return e
}

// TestParamRejections pins the 4xx surface of the parameter layer:
// every malformed request is rejected with the intended status and a
// JSON error body, never silently reinterpreted.
func TestParamRejections(t *testing.T) {
	cat, _ := testCatalog(t)
	h := NewServer(cat).Handler()

	cases := []struct {
		name   string
		url    string
		status int
	}{
		// Missing and unknown relations.
		{"window missing rel", "/window?minx=0&miny=0&maxx=1&maxy=1", http.StatusBadRequest},
		{"window unknown rel", "/window?rel=nope&minx=0&miny=0&maxx=1&maxy=1", http.StatusNotFound},
		{"join missing r", "/join?s=S", http.StatusBadRequest},
		{"join unknown s", "/join?r=R&s=nope", http.StatusNotFound},
		{"nearest unknown rel", "/nearest?rel=nope&x=0&y=0", http.StatusNotFound},

		// Missing and malformed geometry.
		{"window missing maxy", "/window?rel=R&minx=0&miny=0&maxx=1", http.StatusBadRequest},
		{"window malformed minx", "/window?rel=R&minx=abc&miny=0&maxx=1&maxy=1", http.StatusBadRequest},
		{"point missing y", "/point?rel=R&x=0.5", http.StatusBadRequest},

		// Negative and overflowing limits: rejected, not clamped — a
		// client whose paging arithmetic went negative should hear about
		// it rather than receive the largest possible response.
		{"window negative limit", "/window?rel=R&minx=0&miny=0&maxx=1&maxy=1&limit=-1", http.StatusBadRequest},
		{"window overflow limit", "/window?rel=R&minx=0&miny=0&maxx=1&maxy=1&limit=99999999999999999999", http.StatusBadRequest},
		{"point negative limit", "/point?rel=R&x=0.5&y=0.5&limit=-7", http.StatusBadRequest},
		{"join negative limit", "/join?r=R&s=S&limit=-1", http.StatusBadRequest},
		{"join overflow limit", "/join?r=R&s=S&limit=10000000000000000000000", http.StatusBadRequest},
		{"join malformed limit", "/join?r=R&s=S&limit=ten", http.StatusBadRequest},

		// Malformed and misapplied epsilon.
		{"window malformed epsilon", "/window?rel=R&minx=0&miny=0&maxx=1&maxy=1&epsilon=wide", http.StatusBadRequest},
		{"join malformed epsilon", "/join?r=R&s=S&epsilon=0..1", http.StatusBadRequest},
		{"join epsilon on contains", "/join?r=R&s=S&predicate=contains&epsilon=0.1", http.StatusBadRequest},

		// Unknown predicates and malformed counts.
		{"join unknown predicate", "/join?r=R&s=S&predicate=overlaps", http.StatusBadRequest},
		{"window unknown predicate", "/window?rel=R&minx=0&miny=0&maxx=1&maxy=1&predicate=touches", http.StatusBadRequest},
		{"nearest k=0", "/nearest?rel=R&x=0.5&y=0.5&k=0", http.StatusBadRequest},
		{"nearest malformed k", "/nearest?rel=R&x=0.5&y=0.5&k=few", http.StatusBadRequest},
		{"join malformed workers", "/join?r=R&s=S&workers=many", http.StatusBadRequest},
	}
	for _, tc := range cases {
		t.Run(tc.name, func(t *testing.T) {
			getError(t, h, tc.url, tc.status)
		})
	}
}

// TestJoinFingerprintConflict pins the 409 shape: joining relations
// preprocessed under different configurations reports both fingerprints
// so the caller can see which side to rebuild.
func TestJoinFingerprintConflict(t *testing.T) {
	cfg := multistep.DefaultConfig()
	other := cfg
	other.PageSize = cfg.PageSize * 2
	polys := data.GenerateMap(data.MapConfig{Cells: 40, TargetVerts: 32, Seed: 7})
	cat := NewCatalog()
	cat.Add("R", multistep.NewRelation("R", polys, cfg), cfg)
	cat.Add("S", multistep.NewRelation("S", polys, other), other)
	h := NewServer(cat).Handler()
	e409 := getError(t, h, "/join?r=R&s=S", http.StatusConflict)
	if len(e409.RFingerprint) != 16 || len(e409.SFingerprint) != 16 || e409.RFingerprint == e409.SFingerprint {
		t.Fatalf("conflict body fingerprints: %+v", e409)
	}
}

// TestValidLimitsStillServe guards the hardening against over-reach:
// limit=0 and large-but-representable limits remain valid.
func TestValidLimitsStillServe(t *testing.T) {
	cat, _ := testCatalog(t)
	h := NewServer(cat).Handler()
	var win struct {
		IDs []int32 `json:"ids"`
	}
	get(t, h, "/window?rel=R&minx=0&miny=0&maxx=1&maxy=1&limit=0", http.StatusOK, &win)
	if len(win.IDs) != 0 {
		t.Fatalf("limit=0 returned %d ids", len(win.IDs))
	}
	var join struct {
		Pairs []struct{ A, B int32 } `json:"pairs"`
		Stats struct {
			ResultPairs int64
		} `json:"stats"`
	}
	get(t, h, "/join?r=R&s=S&limit=1000000000", http.StatusOK, &join)
	if join.Stats.ResultPairs == 0 {
		t.Fatal("join returned no pairs at all")
	}
}
