package serve

import (
	"context"
	"net/http"
	"net/http/httptest"
	"strings"
	"sync"
	"testing"
	"time"

	"spatialjoin/internal/data"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/resilience/fault"
	"spatialjoin/internal/shard"
)

// shardedCatalog builds a catalog of genuinely partitioned relations,
// so tile-level fault injection has independent tiles to hit.
func shardedCatalog(t testing.TB, tiles int) *Catalog {
	t.Helper()
	cfg := multistep.DefaultConfig()
	cfg.BufferBytes = 8192
	rp := data.GenerateMap(data.MapConfig{Cells: 80, TargetVerts: 48, HoleFraction: 0.1, Seed: 211})
	sp := data.StrategyA(rp, 0.45)
	cat := NewCatalog()
	cat.AddSharded("R", shard.Build("R", rp, tiles, cfg), cfg)
	cat.AddSharded("S", shard.Build("S", sp, tiles, cfg), cfg)
	return cat
}

// armFaults arms an injection spec for the duration of the test. The
// fault harness is process-global, so tests using it must not run in
// parallel.
func armFaults(t *testing.T, spec string) {
	t.Helper()
	if err := fault.Arm(spec); err != nil {
		t.Fatalf("fault.Arm(%q): %v", spec, err)
	}
	t.Cleanup(fault.Disarm)
}

func TestTimeoutParamValidation(t *testing.T) {
	cat, _ := testCatalog(t)
	h := NewServer(cat).Handler()
	for _, bad := range []string{"abc", "0", "-5", "1.5"} {
		var e errorBody
		get(t, h, "/window?rel=R&minx=0&miny=0&maxx=1&maxy=1&timeout_ms="+bad, http.StatusBadRequest, &e)
		if !strings.Contains(e.Error, "timeout_ms") {
			t.Errorf("timeout_ms=%s: error %q does not name the parameter", bad, e.Error)
		}
	}
}

// TestServerDeadline504: a per-request deadline that fires mid-query
// answers 504 with a structured body and bumps the timed_out counter.
// The query is made slow with latency injection at the tile-query site.
func TestServerDeadline504(t *testing.T) {
	cat, _ := testCatalog(t)
	h := NewServer(cat).Handler()
	armFaults(t, "tile-query:latency=200ms")

	var e errorBody
	get(t, h, "/window?rel=R&minx=0&miny=0&maxx=1&maxy=1&timeout_ms=50", http.StatusGatewayTimeout, &e)
	if !strings.Contains(e.Error, "deadline") {
		t.Errorf("504 body %q does not explain the deadline", e.Error)
	}

	var st serveStats
	get(t, h, "/stats", http.StatusOK, &st)
	if st.Endpoints["window"].TimedOut != 1 {
		t.Errorf("stats timed_out = %d, want 1", st.Endpoints["window"].TimedOut)
	}

	// Without injected latency the same request beats the same deadline.
	fault.Disarm()
	var win windowResponse
	get(t, h, "/window?rel=R&minx=0&miny=0&maxx=1&maxy=1&timeout_ms=5000", http.StatusOK, &win)
	if len(win.IDs) == 0 {
		t.Error("post-timeout request returned no rows")
	}
}

// TestAdmissionShed429: with one in-flight slot and no queue, a request
// arriving while another executes is shed with 429 and Retry-After, and
// the server admits again once the slot frees.
func TestAdmissionShed429(t *testing.T) {
	cat, _ := testCatalog(t)
	srv := NewServer(cat)
	srv.MaxInFlight = 1
	srv.MaxQueue = 0
	h := srv.Handler()
	armFaults(t, "tile-query:latency=400ms")

	const u = "/window?rel=R&minx=0&miny=0&maxx=1&maxy=1"
	var wg sync.WaitGroup
	wg.Add(1)
	go func() {
		defer wg.Done()
		rec := httptest.NewRecorder()
		h.ServeHTTP(rec, httptest.NewRequest("GET", u, nil))
		if rec.Code != http.StatusOK {
			t.Errorf("slot-holding request: status %d: %s", rec.Code, rec.Body)
		}
	}()
	time.Sleep(100 * time.Millisecond) // let the first request occupy the slot

	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, httptest.NewRequest("GET", u, nil))
	if rec.Code != http.StatusTooManyRequests {
		t.Fatalf("concurrent request: status %d, want 429: %s", rec.Code, rec.Body)
	}
	if rec.Header().Get("Retry-After") == "" {
		t.Error("429 without Retry-After")
	}
	wg.Wait()

	fault.Disarm()
	var win windowResponse
	get(t, h, u, http.StatusOK, &win)

	var st serveStats
	get(t, h, "/stats", http.StatusOK, &st)
	if st.Endpoints["window"].Shed != 1 {
		t.Errorf("stats shed = %d, want 1", st.Endpoints["window"].Shed)
	}
	if st.Admission.Shed != 1 || st.Admission.MaxInFlight != 1 {
		t.Errorf("admission stats = %+v", st.Admission)
	}
}

// TestPanicIsolation: an injected panic inside a tile sub-query is
// contained to a 500 with an incident ID; the process and the handler
// keep serving, and the same request succeeds once the fault is gone.
func TestPanicIsolation(t *testing.T) {
	cat, _ := testCatalog(t)
	h := NewServer(cat).Handler()
	armFaults(t, "tile-query:panic")

	const u = "/window?rel=R&minx=0&miny=0&maxx=1&maxy=1"
	var e errorBody
	get(t, h, u, http.StatusInternalServerError, &e)
	if e.Incident == "" || !strings.Contains(e.Error, e.Incident) {
		t.Fatalf("500 body %+v does not carry an incident ID", e)
	}

	fault.Disarm()
	var win windowResponse
	get(t, h, u, http.StatusOK, &win)
	if len(win.IDs) == 0 {
		t.Error("server did not recover after the injected panic")
	}
}

// TestPartialDegradedResponse: with partial=1, a window query over a
// 4-tile relation survives two injected tile failures, answers 200 with
// degraded:true and the failed-tile list, and is never cached — the
// identical follow-up re-executes (and re-degrades) instead of replaying
// a cached degraded body.
func TestPartialDegradedResponse(t *testing.T) {
	cat := shardedCatalog(t, 4)
	h := NewServer(cat).Handler()
	armFaults(t, "tile-query:error@2")

	const u = "/window?rel=R&minx=-1&miny=-1&maxx=2&maxy=2&partial=1"
	var win windowResponse
	get(t, h, u, http.StatusOK, &win)
	if !win.Degraded || len(win.FailedTiles) != 2 {
		t.Fatalf("degraded=%t failedTiles=%v, want degraded with 2 failed tiles", win.Degraded, win.FailedTiles)
	}
	for _, f := range win.FailedTiles {
		if f.Err == "" {
			t.Errorf("failed tile %d without an error string", f.Tile)
		}
	}

	var again windowResponse
	get(t, h, u, http.StatusOK, &again)
	if again.Cached {
		t.Fatal("degraded response was served from cache")
	}
	if !again.Degraded {
		t.Fatal("second partial request did not re-execute against the armed faults")
	}

	var st serveStats
	get(t, h, "/stats", http.StatusOK, &st)
	if st.Endpoints["window"].Degraded != 2 {
		t.Errorf("stats degraded = %d, want 2", st.Endpoints["window"].Degraded)
	}
	if len(st.Faults) == 0 {
		t.Error("stats does not report the armed faults")
	}

	// Strict mode over the same faults fails the whole request.
	var e errorBody
	get(t, h, "/window?rel=R&minx=-1&miny=-1&maxx=2&maxy=2", http.StatusInternalServerError, &e)

	// partial cannot conjure rows when every tile fails.
	fault.Disarm()
	armFaults(t, "tile-query:error")
	get(t, h, u, http.StatusInternalServerError, &e)
}

// TestPartialMatchesStrictRows: a degraded response returns exactly the
// rows of its surviving tiles — re-running without faults returns a
// superset.
func TestPartialMatchesStrictRows(t *testing.T) {
	cat := shardedCatalog(t, 4)
	h := NewServer(cat).Handler()

	const base = "/window?rel=R&minx=-1&miny=-1&maxx=2&maxy=2"
	var full windowResponse
	get(t, h, base, http.StatusOK, &full)

	armFaults(t, "tile-query:error@2")
	var deg windowResponse
	get(t, h, base+"&partial=1", http.StatusOK, &deg)
	if !deg.Degraded {
		t.Fatal("expected a degraded response")
	}
	if len(deg.IDs) == 0 || len(deg.IDs) >= len(full.IDs) {
		t.Fatalf("degraded rows = %d, want a strict non-empty subset of %d", len(deg.IDs), len(full.IDs))
	}
	all := make(map[int32]bool, len(full.IDs))
	for _, id := range full.IDs {
		all[id] = true
	}
	for _, id := range deg.IDs {
		if !all[id] {
			t.Fatalf("degraded response invented row %d", id)
		}
	}
}

func TestJoinRejectsPartial(t *testing.T) {
	cat, _ := testCatalog(t)
	h := NewServer(cat).Handler()
	var e errorBody
	get(t, h, "/join?r=R&s=S&partial=1", http.StatusBadRequest, &e)
	if !strings.Contains(e.Error, "fail closed") {
		t.Errorf("join partial rejection %q does not explain fail-closed", e.Error)
	}
}

func TestReadyzDrain(t *testing.T) {
	cat, _ := testCatalog(t)
	srv := NewServer(cat)
	h := srv.Handler()

	get(t, h, "/readyz", http.StatusOK, nil)
	srv.SetDraining(true)
	get(t, h, "/readyz", http.StatusServiceUnavailable, nil)
	srv.SetDraining(false)
	get(t, h, "/readyz", http.StatusOK, nil)

	// An empty catalog is not ready, but it is alive.
	empty := NewServer(NewCatalog()).Handler()
	get(t, empty, "/readyz", http.StatusServiceUnavailable, nil)
	get(t, empty, "/healthz", http.StatusOK, nil)
}

func TestQuarantinedRelation503(t *testing.T) {
	cat, _ := testCatalog(t)
	cat.Quarantine("bad", "checksum mismatch in page 7")
	h := NewServer(cat).Handler()

	var e errorBody
	get(t, h, "/window?rel=bad&minx=0&miny=0&maxx=1&maxy=1", http.StatusServiceUnavailable, &e)
	if !strings.Contains(e.Error, "quarantine") {
		t.Errorf("quarantined relation error %q does not say quarantined", e.Error)
	}

	var st serveStats
	get(t, h, "/stats", http.StatusOK, &st)
	if st.Quarantined["bad"] != "checksum mismatch in page 7" {
		t.Errorf("stats quarantined = %v", st.Quarantined)
	}

	// An unknown relation is still a plain 404, not a 503.
	get(t, h, "/window?rel=ghost&minx=0&miny=0&maxx=1&maxy=1", http.StatusNotFound, &e)

	// Re-registering the name lifts the quarantine.
	cfg := multistep.DefaultConfig()
	rp := data.GenerateMap(data.MapConfig{Cells: 40, TargetVerts: 32, Seed: 3})
	cat.Add("bad", multistep.NewRelation("bad", rp, cfg), cfg)
	var win windowResponse
	get(t, h, "/window?rel=bad&minx=0&miny=0&maxx=1&maxy=1", http.StatusOK, &win)
}

// TestClientDisconnectWritesNothing: a request whose context is already
// cancelled produces no response body — there is no client to answer,
// and no error status is fabricated.
func TestClientDisconnectWritesNothing(t *testing.T) {
	cat, _ := testCatalog(t)
	h := NewServer(cat).Handler()

	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	req := httptest.NewRequest("GET", "/window?rel=R&minx=0&miny=0&maxx=1&maxy=1", nil).WithContext(ctx)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Body.Len() != 0 {
		t.Fatalf("cancelled request got a body: %s", rec.Body)
	}
}

// TestErroredResponsesNotCached: a request failed by an injected error
// must not poison the result cache for the faultless retry.
func TestErroredResponsesNotCached(t *testing.T) {
	cat, _ := testCatalog(t)
	h := NewServer(cat).Handler()
	armFaults(t, "tile-query:error")

	const u = "/window?rel=R&minx=0&miny=0&maxx=1&maxy=1"
	var e errorBody
	get(t, h, u, http.StatusInternalServerError, &e)

	fault.Disarm()
	var win windowResponse
	get(t, h, u, http.StatusOK, &win)
	if win.Cached {
		t.Fatal("first success after an injected failure claims to be cached")
	}
	if len(win.IDs) == 0 {
		t.Fatal("retry after injected failure returned no rows")
	}
}
