package serve

import (
	"fmt"
	"net/http"
	"runtime"
	"strconv"
	"strings"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/multistep"
)

// Request parameter parsing. Every query endpoint funnels through
// parseQuery or parseJoin: one validated parse producing the typed
// parameter set that is also the canonical cache identity — the same
// struct builds the normalized cache key (cacheKey), so a request can
// never be cached under parameters other than the ones it validated.

// relParam resolves the relation named by the query parameter key,
// returning the entry and its catalog name.
func (s *Server) relParam(w http.ResponseWriter, r *http.Request, key string) (*Entry, string, bool) {
	name := r.URL.Query().Get(key)
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing relation parameter %q", key)
		return nil, "", false
	}
	e, ok := s.cat.Get(name)
	if !ok {
		if reason, q := s.cat.Quarantined(name); q {
			writeError(w, http.StatusServiceUnavailable, "relation %q is quarantined: %s", name, reason)
			return nil, "", false
		}
		writeError(w, http.StatusNotFound, "unknown relation %q", name)
		return nil, "", false
	}
	return e, name, true
}

// floatParam parses a required float query parameter.
func floatParam(w http.ResponseWriter, r *http.Request, key string) (float64, bool) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		writeError(w, http.StatusBadRequest, "missing parameter %q", key)
		return 0, false
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parameter %q: %v", key, err)
		return 0, false
	}
	return v, true
}

// intParam parses an optional int query parameter with a default.
func intParam(w http.ResponseWriter, r *http.Request, key string, def int) (int, bool) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parameter %q: %v", key, err)
		return 0, false
	}
	return v, true
}

// limitParam parses the optional limit parameter. A negative limit is
// rejected rather than silently treated as "no limit": a client
// computing limits (paging arithmetic gone wrong, integer overflow on
// its side) should hear about it, not receive the largest possible
// response. Out-of-range numerals (strconv overflow) fail the same way.
func limitParam(w http.ResponseWriter, r *http.Request, def int) (int, bool) {
	raw := r.URL.Query().Get("limit")
	if raw == "" {
		return def, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parameter %q: %v", "limit", err)
		return 0, false
	}
	if v < 0 {
		writeError(w, http.StatusBadRequest, "parameter %q must not be negative", "limit")
		return 0, false
	}
	return v, true
}

// predicateParam resolves the optional predicate of a request: the
// plain intersection query without parameters, the ε-range
// (within-distance) query with epsilon (or predicate=within&epsilon=ε).
// As in cmd/spatialjoin, an epsilon promotes the (default or explicit)
// intersects predicate to within; an epsilon on a predicate that takes
// none (contains) is rejected rather than silently dropped.
func predicateParam(w http.ResponseWriter, r *http.Request) (multistep.Predicate, bool) {
	name := r.URL.Query().Get("predicate")
	rawEps := r.URL.Query().Get("epsilon")
	eps := 0.0
	if rawEps != "" {
		v, err := strconv.ParseFloat(rawEps, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "parameter %q: %v", "epsilon", err)
			return multistep.Predicate{}, false
		}
		eps = v
		switch strings.ToLower(name) {
		case "", "intersects", "intersect":
			name = "within"
		case "within", "within-distance", "distance", "epsilon":
		default:
			writeError(w, http.StatusBadRequest,
				"parameter %q is only valid with the within predicate, not %q", "epsilon", name)
			return multistep.Predicate{}, false
		}
	}
	pred, err := multistep.ParsePredicate(name, eps)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return multistep.Predicate{}, false
	}
	return pred, true
}

// planParam reports whether the request should resolve its open options
// through the cost-based planner: on by default, switched off per
// request with plan=off (or 0/false/no) and server-wide with NoPlan.
func (s *Server) planParam(r *http.Request) bool {
	if s.NoPlan {
		return false
	}
	switch strings.ToLower(r.URL.Query().Get("plan")) {
	case "off", "0", "false", "no":
		return false
	}
	return true
}

// queryKind selects the target shape of a single-relation request.
type queryKind int

const (
	kindWindow queryKind = iota
	kindPoint
	kindNearest
)

// queryParams is the validated parameter set of a /window, /point or
// /nearest request — the canonical form behind its cache key.
type queryParams struct {
	e    *Entry
	name string
	kind queryKind
	win  geom.Rect
	pt   geom.Point
	k    int
	pred multistep.Predicate
	plan bool
	// partial opts into graceful degradation: tile failures drop out of
	// the merged answer (degraded response) instead of failing the whole
	// request. Part of the cache key — a strict request must never be
	// answered from a canonical result computed permissively.
	partial bool
	// limit caps the response IDs (window/point only); -1 is uncapped.
	// Deliberately NOT part of the cache key: the canonical result is
	// computed uncapped and every limit is a sorted prefix of it.
	limit int
}

// partialParam reads the optional partial parameter (1/true/yes/on).
func partialParam(r *http.Request) bool {
	switch strings.ToLower(r.URL.Query().Get("partial")) {
	case "1", "true", "yes", "on":
		return true
	}
	return false
}

// parseQuery validates a single-relation request of the given kind.
func (s *Server) parseQuery(w http.ResponseWriter, r *http.Request, kind queryKind) (*queryParams, bool) {
	p := &queryParams{kind: kind, limit: -1}
	var ok bool
	if p.e, p.name, ok = s.relParam(w, r, "rel"); !ok {
		return nil, false
	}
	switch kind {
	case kindWindow:
		minx, ok := floatParam(w, r, "minx")
		if !ok {
			return nil, false
		}
		miny, ok := floatParam(w, r, "miny")
		if !ok {
			return nil, false
		}
		maxx, ok := floatParam(w, r, "maxx")
		if !ok {
			return nil, false
		}
		maxy, ok := floatParam(w, r, "maxy")
		if !ok {
			return nil, false
		}
		p.win = geom.Rect{MinX: minx, MinY: miny, MaxX: maxx, MaxY: maxy}
	case kindPoint, kindNearest:
		x, ok := floatParam(w, r, "x")
		if !ok {
			return nil, false
		}
		y, ok := floatParam(w, r, "y")
		if !ok {
			return nil, false
		}
		p.pt = geom.Point{X: x, Y: y}
	}
	p.partial = partialParam(r)
	if kind == kindNearest {
		k, ok := intParam(w, r, "k", 5)
		if !ok {
			return nil, false
		}
		if k < 1 {
			writeError(w, http.StatusBadRequest, "parameter %q must be positive", "k")
			return nil, false
		}
		p.k = k
		return p, true
	}
	var ok2 bool
	if p.pred, ok2 = predicateParam(w, r); !ok2 {
		return nil, false
	}
	limit, ok2 := limitParam(w, r, -1)
	if !ok2 {
		return nil, false
	}
	p.limit = limit
	p.plan = s.planParam(r)
	return p, true
}

// joinParams is the validated parameter set of a /join or /explain
// request — the canonical form behind the join cache key.
type joinParams struct {
	eR, eS       *Entry
	nameR, nameS string
	pred         multistep.Predicate
	workers      int
	plan         bool
	// limit caps the response pairs; excluded from the cache key (the
	// canonical result is computed at the server's MaxJoinPairs cap and
	// every smaller limit is its sorted prefix).
	limit int
}

// parseJoin validates a relation-pair request. workersDef is the
// default worker count (/join passes the server's JoinWorkers, /explain
// 0); withLimit selects whether the limit parameter applies.
func (s *Server) parseJoin(w http.ResponseWriter, r *http.Request, workersDef int, withLimit bool) (*joinParams, bool) {
	p := &joinParams{limit: -1}
	// Joins fail closed: a degraded join silently missing a tile pair's
	// share of the response set is indistinguishable from a correct
	// smaller answer, so the parameter is rejected rather than ignored.
	if partialParam(r) {
		writeError(w, http.StatusBadRequest, "parameter %q is not supported on joins: joins fail closed", "partial")
		return nil, false
	}
	var ok bool
	if p.eR, p.nameR, ok = s.relParam(w, r, "r"); !ok {
		return nil, false
	}
	if p.eS, p.nameS, ok = s.relParam(w, r, "s"); !ok {
		return nil, false
	}
	if p.eR.Sh.Fingerprint() != p.eS.Sh.Fingerprint() {
		writeJSON(w, http.StatusConflict, errorBody{
			Error: fmt.Sprintf(
				"relations %q and %q were preprocessed under different configurations", p.nameR, p.nameS),
			RFingerprint: fingerprintString(p.eR.Sh.Fingerprint()),
			SFingerprint: fingerprintString(p.eS.Sh.Fingerprint()),
		})
		return nil, false
	}
	if p.pred, ok = predicateParam(w, r); !ok {
		return nil, false
	}
	if withLimit {
		limit, ok := limitParam(w, r, s.MaxJoinPairs)
		if !ok {
			return nil, false
		}
		if limit > s.MaxJoinPairs {
			limit = s.MaxJoinPairs
		}
		p.limit = limit
	}
	workers, ok := intParam(w, r, "workers", workersDef)
	if !ok {
		return nil, false
	}
	// Clamp the per-request worker count: an unauthenticated parameter
	// must not be able to allocate per-worker state without bound.
	if maxWorkers := 4 * runtime.GOMAXPROCS(0); workers > maxWorkers {
		workers = maxWorkers
	}
	p.workers = workers
	p.plan = s.planParam(r)
	return p, true
}

// fmtFloat renders a float for a cache key in shortest round-trip
// notation (injective over float64).
func fmtFloat(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }

// entryScope is the cache-key scope of one catalog entry: name,
// generation and preprocessing fingerprint. The generation makes
// swapping a relation (re-Add under the same name) invalidate every
// cached response involving the old entry even when the new build has
// the same configuration fingerprint; the fingerprint documents the
// configuration identity that joins additionally require.
func entryScope(name string, e *Entry) string {
	return fmt.Sprintf("%s#%d@%016x", name, e.Gen, e.Sh.Fingerprint())
}

// cacheKey is the normalized whole-response key of a single-relation
// request: entry scope, target geometry, predicate and plan mode. The
// limit is excluded by design (limit-insensitive canonical form).
func (p *queryParams) cacheKey() string {
	var b strings.Builder
	b.WriteString("q|")
	b.WriteString(entryScope(p.name, p.e))
	switch p.kind {
	case kindWindow:
		fmt.Fprintf(&b, "|w|%s,%s,%s,%s", fmtFloat(p.win.MinX), fmtFloat(p.win.MinY), fmtFloat(p.win.MaxX), fmtFloat(p.win.MaxY))
	case kindPoint:
		fmt.Fprintf(&b, "|p|%s,%s", fmtFloat(p.pt.X), fmtFloat(p.pt.Y))
	case kindNearest:
		fmt.Fprintf(&b, "|n|%s,%s|k%d|pt%t", fmtFloat(p.pt.X), fmtFloat(p.pt.Y), p.k, p.partial)
		return b.String()
	}
	fmt.Fprintf(&b, "|%s|pl%t|pt%t", p.pred.String(), p.plan, p.partial)
	return b.String()
}

// cacheKey is the normalized whole-response key of a join request:
// both entry scopes, predicate, requested workers and plan mode. The
// limit is excluded (limit-insensitive canonical form); the workers
// parameter is included because the plan echo depends on it.
func (p *joinParams) cacheKey() string {
	return fmt.Sprintf("j|%s|%s|%s|w%d|pl%t",
		entryScope(p.nameR, p.eR), entryScope(p.nameS, p.eS), p.pred.String(), p.workers, p.plan)
}

// batchKey groups join requests that can share one synchronized
// traversal: the same relation pair (by generation) and the same
// step-1 ε. Predicate kind, workers and plan mode legitimately differ
// within a batch — the batched traversal demultiplexes per request.
func (p *joinParams) batchKey() string {
	return fmt.Sprintf("b|%s|%s|e%s",
		entryScope(p.nameR, p.eR), entryScope(p.nameS, p.eS), fmtFloat(p.pred.Epsilon()))
}
