// Package serve is the concurrent query-serving layer on top of the
// multi-step processor: an HTTP service over a catalog of sharded
// relations, answered by the internal/shard scatter-gather coordinator.
// Every relation — monolithic or tile-partitioned — is served through
// the same path: requests fan out to the owning tiles on per-tile
// storage.Sessions (one opened relation serves any number of
// simultaneous join, window, point and nearest-neighbour queries) and
// the merge layer reassembles one paper-faithful response per request.
//
// On top of that path sits the multi-query execution layer (DESIGN.md
// §12): a fingerprint-keyed, byte-bounded result cache, single-flight
// coalescing of identical concurrent requests, and a batching window
// under which concurrent joins over the same relation pair share one
// synchronized R*-tree traversal. All three preserve byte-identical
// responses up to the cached/coalesced markers.
//
// The intended deployment is "build once, serve many": preprocess
// relations offline (cmd/datagen -store, optionally -shards N), open
// the persisted stores at startup (multistep.OpenRelationFile or
// shard.Open), and serve queries from the immutable in-memory tiles.
// cmd/spatialjoinserve is the binary.
package serve

import (
	"context"
	"encoding/json"
	"errors"
	"fmt"
	"log"
	"net/http"
	"sort"
	"strconv"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/hist"
	"spatialjoin/internal/mqe"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/resilience"
	"spatialjoin/internal/resilience/fault"
	"spatialjoin/internal/shard"
)

// Entry is one served relation — a sharded facade (possibly a single
// tile) with the configuration it was built under. Queries against the
// entry use exactly this configuration; joining two entries requires
// equal preprocessing fingerprints.
type Entry struct {
	Sh  *shard.Sharded
	Cfg multistep.Config
	// Gen is the catalog generation of this entry: a counter bumped on
	// every registration. Cache keys include it, so re-registering a
	// name (a data swap) invalidates every cached response involving
	// the old entry even when the new build shares the configuration
	// fingerprint — the fingerprint identifies the preprocessing
	// configuration, not the data.
	Gen uint64
}

// Catalog is the named set of relations a server exposes. Relations are
// registered at startup (or added at runtime — the catalog itself is
// concurrency-safe); the relations themselves are immutable once added.
type Catalog struct {
	mu   sync.RWMutex
	gen  uint64
	rels map[string]*Entry
	// quarantined maps relation names whose store failed to open to the
	// failure reason. A quarantined name answers 503 (the data exists but
	// this process cannot serve it) instead of 404, and the server keeps
	// serving the healthy relations. A successful (re-)registration
	// clears the quarantine.
	quarantined map[string]string
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{rels: make(map[string]*Entry), quarantined: make(map[string]string)}
}

// Add registers a monolithic relation under a name, replacing any
// previous entry. The relation is wrapped as a single-tile shard so it
// serves through the same scatter-gather path as partitioned stores.
func (c *Catalog) Add(name string, rel *multistep.Relation, cfg multistep.Config) {
	c.AddSharded(name, shard.FromRelation(rel), cfg)
}

// AddSharded registers a sharded relation under a name, replacing any
// previous entry. Replacement is how serving-layer caches invalidate:
// the new entry carries a fresh generation, so no stale response can be
// served for the name.
func (c *Catalog) AddSharded(name string, sh *shard.Sharded, cfg multistep.Config) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.rels[name] = &Entry{Sh: sh, Cfg: cfg, Gen: c.gen}
	delete(c.quarantined, name)
}

// Quarantine marks a relation name as registered-but-unservable: its
// store failed to open. The name answers 503 with the reason until a
// successful registration replaces it.
func (c *Catalog) Quarantine(name, reason string) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.quarantined[name] = reason
}

// Quarantined returns the quarantine reason of a name, if it is
// quarantined.
func (c *Catalog) Quarantined(name string) (string, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	reason, ok := c.quarantined[name]
	return reason, ok
}

// QuarantinedAll snapshots the quarantined names and reasons (nil when
// none — the /stats field omits cleanly).
func (c *Catalog) QuarantinedAll() map[string]string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	if len(c.quarantined) == 0 {
		return nil
	}
	out := make(map[string]string, len(c.quarantined))
	for n, r := range c.quarantined {
		out[n] = r
	}
	return out
}

// LoadPath opens a persisted store at path — a sharded store directory
// or a single-relation store file — and registers it under name. On
// failure the name is quarantined instead of registered, and the error
// is returned so the caller can log it: a server loading several
// relations keeps serving the healthy ones while the quarantined name
// answers 503 with the reason.
func (c *Catalog) LoadPath(name, path string, cfg multistep.Config) error {
	var err error
	if shard.IsStoreDir(path) {
		err = c.LoadDir(name, path, cfg)
	} else {
		err = c.LoadFile(name, path, cfg)
	}
	if err != nil {
		c.Quarantine(name, err.Error())
	}
	return err
}

// LoadFile opens a persisted relation store (multistep.SaveRelationFile
// layout) and registers it under the given name.
func (c *Catalog) LoadFile(name, path string, cfg multistep.Config) error {
	rel, err := multistep.OpenRelationFile(path, cfg)
	if err != nil {
		return fmt.Errorf("serve: open %s: %w", path, err)
	}
	c.Add(name, rel, cfg)
	return nil
}

// LoadDir opens a sharded store directory (shard.Save layout) and
// registers it under the given name.
func (c *Catalog) LoadDir(name, dir string, cfg multistep.Config) error {
	sh, err := shard.Open(dir, cfg)
	if err != nil {
		return fmt.Errorf("serve: open %s: %w", dir, err)
	}
	c.AddSharded(name, sh, cfg)
	return nil
}

// Get returns the entry registered under name.
func (c *Catalog) Get(name string) (*Entry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.rels[name]
	return e, ok
}

// Names returns the registered relation names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.rels))
	for n := range c.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Server serves the catalog over HTTP. Every query request creates
// per-query sessions, so requests are handled fully concurrently.
//
// Joins and window/point queries run through the cost-based planner
// (internal/plan) by default: the engine, filter setting and worker
// count the request left open are chosen per tile pair from the
// relations' statistics, and every response echoes the resolved plan.
// A request opts out with plan=off (the build configuration verbatim),
// the whole server with NoPlan.
//
// Responses are served through the multi-query execution layer: a
// byte-bounded LRU result cache (CacheBytes), single-flight coalescing
// of identical in-flight requests, and an optional batching window
// (BatchWindow) under which concurrent joins over the same relation
// pair share one synchronized traversal. Configure the fields before
// the first Handler call; they are latched when serving starts.
type Server struct {
	cat *Catalog
	// MaxJoinPairs caps the number of response pairs a /join request
	// returns inline (the full count is always reported in the
	// statistics). Defaults to DefaultMaxJoinPairs.
	MaxJoinPairs int
	// JoinWorkers is the per-request worker count of the streaming join
	// pipeline; ≤ 0 lets the planner choose (GOMAXPROCS when planning
	// is off).
	JoinWorkers int
	// NoPlan disables adaptive planning server-wide: every request runs
	// its relations' build configuration verbatim, as if plan=off.
	NoPlan bool
	// CacheBytes bounds the shared result/tile cache in bytes; ≤ 0
	// disables caching. NewServer sets DefaultCacheBytes.
	CacheBytes int64
	// BatchWindow is how long the first join request of a batch group
	// waits for concurrent requests over the same relation pair to
	// join its synchronized traversal; 0 (the default) disables
	// batching — each request runs its own traversal immediately.
	BatchWindow time.Duration

	// RequestTimeout is the default server-side deadline of each query
	// request; ≤ 0 means no default deadline. A request may pick its own
	// with ?timeout_ms=, capped by MaxRequestTimeout.
	RequestTimeout time.Duration
	// MaxRequestTimeout caps every request deadline, default or
	// per-request; ≤ 0 means uncapped.
	MaxRequestTimeout time.Duration
	// MaxInFlight bounds the query requests executing at once; ≤ 0
	// disables admission control. Requests beyond it wait in a queue of
	// at most MaxQueue for up to QueueWait, and everything beyond that is
	// shed with 429 and Retry-After.
	MaxInFlight int
	// MaxQueue is the admission wait-queue bound (only with MaxInFlight).
	MaxQueue int
	// QueueWait is how long a queued request waits for a slot before
	// being shed (only with MaxInFlight); ≤ 0 waits on the client alone.
	QueueWait time.Duration

	initOnce sync.Once
	cache    *mqe.Cache
	flight   mqe.Group
	batcher  *mqe.Batcher
	metrics  map[string]*endpointTally
	limiter  *resilience.Limiter
	draining atomic.Bool
}

// endpointTally is one endpoint's request counters and latency
// histogram — the per-endpoint figures /stats reports. Recording is
// lock-free (atomics all the way down), so instrumentation costs a few
// nanoseconds per request.
type endpointTally struct {
	requests atomic.Int64
	latency  hist.Histogram
	// inflight is the instantaneous gauge of admitted, still-running
	// requests; the rest are the resilience outcome counters.
	inflight atomic.Int64
	shed     atomic.Int64
	timedOut atomic.Int64
	degraded atomic.Int64
	panics   atomic.Int64
}

// DefaultMaxJoinPairs bounds the /join response body.
const DefaultMaxJoinPairs = 10000

// DefaultCacheBytes is the default result/tile cache budget (64 MiB).
const DefaultCacheBytes int64 = 64 << 20

// NewServer returns a Server over the catalog.
func NewServer(cat *Catalog) *Server {
	return &Server{cat: cat, MaxJoinPairs: DefaultMaxJoinPairs, CacheBytes: DefaultCacheBytes}
}

// Handler returns the HTTP handler tree:
//
//	GET /healthz                                     liveness + relation count
//	GET /readyz                                      readiness: 503 while draining or empty
//	GET /relations                                   catalog listing
//	GET /stats                                       cache / coalesce / batch / resilience counters
//	GET /window?rel=R&minx=&miny=&maxx=&maxy=        multi-step window query
//	         [&epsilon=ε][&limit=]                   (ε-range: within ε of the window)
//	GET /point?rel=R&x=&y=[&epsilon=ε][&limit=]      multi-step point / ε-range query
//	GET /nearest?rel=R&x=&y=&k=5                     k nearest objects by region distance
//	GET /join?r=R&s=S[&predicate=intersects|contains|within]
//	         [&epsilon=ε][&limit=][&workers=]        multi-step spatial join
//	GET /explain?r=R&s=S[&predicate=][&epsilon=]     EXPLAIN a join: per-tile-pair
//	         [&run=1][&workers=][&plan=off]          plans, with run=1 executed with
//	                                                 predicted-vs-actual errors
//
// All responses are JSON; query statistics (the paper's per-step
// measures, including the per-query buffer page accesses) ride along
// with every result. /join, /window and /point plan through the
// cost-based planner by default and echo the resolved plan (engine,
// filter, workers) in the response; plan=off pins the build
// configuration instead.
//
// A response served from the result cache carries "cached": true; one
// that received a concurrent identical request's result carries
// "coalesced": true. Apart from those markers, cached and coalesced
// responses are byte-identical to solo runs — same sort order, same
// statistics (the original run's, as DESIGN.md §12 specifies).
//
// Every handler threads the request context through the query pipeline:
// when the client disconnects, the step 1 traversal workers, the
// filter/exact pool and the collector all stop at their next check, so a
// cancelled request releases its workers instead of running the join to
// completion.
//
// Query endpoints additionally accept &timeout_ms= (a per-request
// server-side deadline, capped by MaxRequestTimeout; a fired deadline
// answers 504), and /window, /point and /nearest accept &partial=1
// (degrade to the surviving tiles on tile failure instead of failing
// the whole request — the response carries degraded:true and the failed
// tiles; joins always fail closed and reject the parameter). When
// admission control is configured, requests beyond the in-flight and
// queue bounds are shed with 429 and Retry-After.
func (s *Server) Handler() http.Handler {
	s.init()
	mux := http.NewServeMux()
	tally := func(name string) *endpointTally {
		t := s.metrics[name]
		if t == nil {
			t = &endpointTally{}
			s.metrics[name] = t
		}
		return t
	}
	register := func(name string, h http.HandlerFunc) {
		t := tally(name)
		mux.HandleFunc("GET /"+name, func(w http.ResponseWriter, r *http.Request) {
			t.requests.Add(1)
			start := time.Now()
			h(w, r)
			t.latency.RecordDuration(time.Since(start))
		})
	}
	// guard wraps the query endpoints in the resilience envelope:
	// admission control (shed with 429 + Retry-After when saturated),
	// the server-side deadline (?timeout_ms= capped by the server max),
	// and the request-level panic boundary (500 with an incident ID; the
	// process keeps serving).
	guard := func(name string, h func(http.ResponseWriter, *http.Request, *endpointTally)) {
		t := tally(name)
		mux.HandleFunc("GET /"+name, func(w http.ResponseWriter, r *http.Request) {
			t.requests.Add(1)
			start := time.Now()
			defer func() { t.latency.RecordDuration(time.Since(start)) }()
			release, err := s.limiter.Acquire(r.Context())
			if err != nil {
				if errors.Is(err, resilience.ErrSaturated) {
					t.shed.Add(1)
					w.Header().Set("Retry-After", "1")
					writeError(w, http.StatusTooManyRequests, "server saturated: %d in flight, queue full", s.MaxInFlight)
				}
				// Otherwise the client gave up while queued; write nothing.
				return
			}
			defer release()
			t.inflight.Add(1)
			defer t.inflight.Add(-1)
			r2, cancel, ok := s.withDeadline(w, r)
			if !ok {
				return
			}
			defer cancel()
			defer func() {
				if rec := recover(); rec != nil {
					pe := resilience.Recovered(name, rec)
					t.panics.Add(1)
					log.Printf("serve: %v\n%s", pe, pe.Stack)
					writeJSON(w, http.StatusInternalServerError,
						errorBody{Error: fmt.Sprintf("internal error (incident %s)", pe.Incident), Incident: pe.Incident})
				}
			}()
			h(w, r2, t)
		})
	}
	register("healthz", s.handleHealthz)
	register("readyz", s.handleReadyz)
	register("relations", s.handleRelations)
	register("stats", s.handleStats)
	guard("window", s.handleWindow)
	guard("point", s.handlePoint)
	guard("nearest", s.handleNearest)
	guard("join", s.handleJoin)
	guard("explain", s.handleExplain)
	return mux
}

// errDeadline is the cancellation cause of a fired server-side request
// deadline. It wraps context.DeadlineExceeded so every layer's deadline
// check keeps working, while finishQuery can tell a server-imposed
// deadline (504) from a client that set its own and went away (write
// nothing).
var errDeadline = fmt.Errorf("server-side request deadline exceeded: %w", context.DeadlineExceeded)

// withDeadline applies the request's deadline: ?timeout_ms= if given
// (positive integer milliseconds), else the server default, both capped
// by MaxRequestTimeout. It reports false after writing a 400 for a
// malformed or non-positive timeout_ms.
func (s *Server) withDeadline(w http.ResponseWriter, r *http.Request) (*http.Request, context.CancelFunc, bool) {
	d := s.RequestTimeout
	if raw := r.URL.Query().Get("timeout_ms"); raw != "" {
		ms, err := strconv.Atoi(raw)
		if err != nil || ms <= 0 {
			writeError(w, http.StatusBadRequest, "parameter %q must be a positive integer of milliseconds", "timeout_ms")
			return nil, nil, false
		}
		d = time.Duration(ms) * time.Millisecond
	}
	if s.MaxRequestTimeout > 0 && (d <= 0 || d > s.MaxRequestTimeout) {
		d = s.MaxRequestTimeout
	}
	if d <= 0 {
		return r, func() {}, true
	}
	ctx, cancel := context.WithTimeoutCause(r.Context(), d, errDeadline)
	return r.WithContext(ctx), cancel, true
}

// SetDraining flips the readiness gate: a draining server still answers
// in-flight and even new requests (the listener closes separately), but
// /readyz reports 503 so orchestrators stop routing to it.
func (s *Server) SetDraining(v bool) { s.draining.Store(v) }

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
	// Incident correlates a 500 response with the server-side log line
	// carrying the recovered panic's stack.
	Incident string `json:"incident,omitempty"`
	// RFingerprint and SFingerprint carry the two preprocessing
	// fingerprints of a /join configuration-mismatch conflict, so the
	// caller can see which side to rebuild.
	RFingerprint string `json:"rFingerprint,omitempty"`
	SFingerprint string `json:"sFingerprint,omitempty"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "relations": len(s.cat.Names())})
}

// handleReadyz answers readiness, as distinct from /healthz liveness: a
// live process is not ready while it has nothing to serve or while it
// is draining for shutdown.
func (s *Server) handleReadyz(w http.ResponseWriter, r *http.Request) {
	n := len(s.cat.Names())
	switch {
	case s.draining.Load():
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "draining", "relations": n})
	case n == 0:
		writeJSON(w, http.StatusServiceUnavailable, map[string]any{"ready": false, "reason": "no relations loaded", "relations": 0})
	default:
		writeJSON(w, http.StatusOK, map[string]any{"ready": true, "relations": n})
	}
}

// tileInfo is one shard row of a relation listing.
type tileInfo struct {
	Index   int       `json:"index"`
	Objects int       `json:"objects"`
	MBR     geom.Rect `json:"mbr"`
}

// relationInfo is one catalog listing row. Height is the tallest tile
// tree, Pages the total across tiles.
type relationInfo struct {
	Name        string     `json:"name"`
	Objects     int        `json:"objects"`
	MBR         geom.Rect  `json:"mbr"`
	Fingerprint string     `json:"fingerprint"`
	Shards      int        `json:"shards"`
	Height      int        `json:"treeHeight"`
	Pages       int        `json:"treePages"`
	Engine      string     `json:"engine"`
	Tiles       []tileInfo `json:"tiles"`
}

// fingerprintString renders a preprocessing fingerprint the way the
// listing and error bodies report it.
func fingerprintString(fp uint64) string { return fmt.Sprintf("%016x", fp) }

func (s *Server) handleRelations(w http.ResponseWriter, r *http.Request) {
	var out []relationInfo
	for _, name := range s.cat.Names() {
		e, ok := s.cat.Get(name)
		if !ok {
			continue
		}
		info := relationInfo{
			Name:        name,
			Objects:     e.Sh.Objects(),
			MBR:         e.Sh.MBR(),
			Fingerprint: fingerprintString(e.Sh.Fingerprint()),
			Shards:      e.Sh.Shards(),
			Engine:      e.Cfg.Engine.String(),
		}
		for _, t := range e.Sh.Tiles {
			if h := t.Rel.Tree.Height(); h > info.Height {
				info.Height = h
			}
			info.Pages += t.Rel.Tree.Pages()
			info.Tiles = append(info.Tiles, tileInfo{Index: t.Index, Objects: len(t.Rel.Objects), MBR: t.MBR})
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// planEcho is the execution-plan echo of /join, /window and /point: the
// resolved knobs only. The planner's predicted-cost figures are
// deliberately left out — they evolve with the feedback EWMAs request
// over request, so echoing them would make otherwise-identical
// responses diverge; /explain reports them.
type planEcho struct {
	Planned bool   `json:"planned"`
	Engine  string `json:"engine"`
	Filter  bool   `json:"filter"`
	Workers int    `json:"workers"`
}

func echoOf(p multistep.Plan) planEcho {
	return planEcho{Planned: p.Planned, Engine: p.Engine, Filter: p.UseFilter, Workers: p.Workers}
}

// windowResponse answers /window and /point. IDs are ascending global
// object IDs (the scatter-gather merge order), truncated to the limit
// when one was given; Stats aggregates the routed tiles, with the
// per-tile breakdown alongside. Plan echoes the resolved execution
// plan aggregated over the routed tiles — the shard fan-out is
// len(Stats.Tiles). Cached and Coalesced are the multi-query execution
// markers; they lead the struct so stripping their lines from the JSON
// body yields the solo-run response.
type windowResponse struct {
	Cached    bool `json:"cached,omitempty"`
	Coalesced bool `json:"coalesced,omitempty"`
	// Degraded marks a partial=1 response that lost tiles; FailedTiles
	// lists them. Degraded responses are never cached.
	Degraded    bool                `json:"degraded,omitempty"`
	FailedTiles []shard.TileFailure `json:"failedTiles,omitempty"`
	Relation    string              `json:"relation"`
	IDs         []int32             `json:"ids"`
	Truncated   bool                `json:"truncated"`
	Plan        planEcho            `json:"plan"`
	Stats       shard.QueryStats    `json:"stats"`
}

func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request, t *endpointTally) {
	s.serveQuery(w, r, t, kindWindow)
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request, t *endpointTally) {
	s.serveQuery(w, r, t, kindPoint)
}

// serveQuery is the shared /window and /point handler: canonical
// execution through the multi-query layer, then per-request derivation
// (sorted-prefix limit, recomputed result count).
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, t *endpointTally, kind queryKind) {
	p, ok := s.parseQuery(w, r, kind)
	if !ok {
		return
	}
	qc, cached, coalesced, err := s.runQuery(r.Context(), p)
	if !s.finishQuery(w, r, t, err) {
		return
	}
	if qc.Degraded {
		t.degraded.Add(1)
	}
	ids := qc.IDs
	truncated := false
	if p.limit >= 0 && len(ids) > p.limit {
		ids = ids[:p.limit]
		truncated = true
	}
	if ids == nil {
		ids = []int32{}
	}
	stats := qc.Stats
	stats.ResultObjects = int64(len(ids))
	writeJSON(w, http.StatusOK, windowResponse{
		Cached:      cached,
		Coalesced:   coalesced,
		Degraded:    qc.Degraded,
		FailedTiles: qc.Failed,
		Relation:    p.name,
		IDs:         ids,
		Truncated:   truncated,
		Plan:        qc.Plan,
		Stats:       stats,
	})
}

// finishQuery maps a query error onto the response: a fired server-side
// deadline is 504, a recovered panic or fired injection is 500 (the
// panic with its incident ID), a client that went away on its own gets
// nothing written, and any other error is a bad request. It reports
// whether the handler should proceed to write the result.
func (s *Server) finishQuery(w http.ResponseWriter, r *http.Request, t *endpointTally, err error) bool {
	if err == nil {
		return true
	}
	ctx := r.Context()
	if ctx.Err() != nil {
		if errors.Is(context.Cause(ctx), errDeadline) {
			t.timedOut.Add(1)
			writeError(w, http.StatusGatewayTimeout, "%v", context.Cause(ctx))
			return false
		}
		return false // client disconnected; the pipeline already stopped
	}
	if pe, ok := resilience.AsPanic(err); ok {
		t.panics.Add(1)
		log.Printf("serve: %v\n%s", pe, pe.Stack)
		writeJSON(w, http.StatusInternalServerError,
			errorBody{Error: fmt.Sprintf("internal error (incident %s)", pe.Incident), Incident: pe.Incident})
		return false
	}
	if fault.IsInjected(err) {
		writeError(w, http.StatusInternalServerError, "%v", err)
		return false
	}
	writeError(w, http.StatusBadRequest, "%v", err)
	return false
}

// nearestStats carries the per-query page accounting of a nearest
// query (the multi-step WindowStats do not apply to the best-first
// search, but the paper's page-access metric does).
type nearestStats struct {
	// PageAccesses counts the page touches that missed the buffer —
	// the paper's I/O metric for this query alone.
	PageAccesses int64
	// PageTouches counts all page touches of the best-first search.
	PageTouches int64
}

// nearestResponse answers /nearest.
type nearestResponse struct {
	Cached      bool                 `json:"cached,omitempty"`
	Coalesced   bool                 `json:"coalesced,omitempty"`
	Degraded    bool                 `json:"degraded,omitempty"`
	FailedTiles []shard.TileFailure  `json:"failedTiles,omitempty"`
	Relation    string               `json:"relation"`
	Neighbors   []multistep.Neighbor `json:"neighbors"`
	Stats       nearestStats         `json:"stats"`
}

func (s *Server) handleNearest(w http.ResponseWriter, r *http.Request, t *endpointTally) {
	p, ok := s.parseQuery(w, r, kindNearest)
	if !ok {
		return
	}
	qc, cached, coalesced, err := s.runQuery(r.Context(), p)
	if !s.finishQuery(w, r, t, err) {
		return
	}
	if qc.Degraded {
		t.degraded.Add(1)
	}
	nn := qc.Neighbors
	if nn == nil {
		nn = []multistep.Neighbor{}
	}
	writeJSON(w, http.StatusOK, nearestResponse{
		Cached:      cached,
		Coalesced:   coalesced,
		Degraded:    qc.Degraded,
		FailedTiles: qc.Failed,
		Relation:    p.name,
		Neighbors:   nn,
		Stats:       nearestStats{PageAccesses: qc.Stats.PageAccesses, PageTouches: qc.Stats.PageTouches},
	})
}

// joinResponse answers /join. Pairs is truncated to the limit; the full
// response-set size is Stats.ResultPairs. Stats aggregates the tile-pair
// sub-joins (SubJoins of them) as shard.Join documents. Plan echoes the
// resolved execution plan aggregated over the sub-joins ("mixed" engine
// when skewed tiles chose differently); /explain has the per-tile-pair
// breakdown. Cached and Coalesced lead the struct so stripping their
// lines from the JSON body yields the solo-run response.
type joinResponse struct {
	Cached    bool             `json:"cached,omitempty"`
	Coalesced bool             `json:"coalesced,omitempty"`
	R         string           `json:"r"`
	S         string           `json:"s"`
	Predicate string           `json:"predicate"`
	Pairs     []multistep.Pair `json:"pairs"`
	Truncated bool             `json:"truncated"`
	SubJoins  int              `json:"subJoins"`
	Plan      planEcho         `json:"plan"`
	Stats     multistep.Stats  `json:"stats"`
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request, t *endpointTally) {
	p, ok := s.parseJoin(w, r, s.JoinWorkers, true)
	if !ok {
		return
	}
	// The scatter-gather join collects the full response set and sorts
	// before truncating: both sub-join emission order and tile
	// completion order depend on scheduling, so keeping "the first
	// limit pairs" would return a different subset per request on
	// multi-core hosts. The canonical result is capped at MaxJoinPairs;
	// this request's limit is a sorted prefix of it. The request
	// context rides along and fans out to every tile, so a disconnected
	// client stops all sub-joins.
	jc, cached, coalesced, err := s.runJoin(r.Context(), p)
	if !s.finishQuery(w, r, t, err) {
		return
	}
	pairs := jc.Pairs
	if len(pairs) > p.limit {
		pairs = pairs[:p.limit]
	}
	if pairs == nil {
		pairs = []multistep.Pair{}
	}
	writeJSON(w, http.StatusOK, joinResponse{
		Cached:    cached,
		Coalesced: coalesced,
		R:         p.nameR,
		S:         p.nameS,
		Predicate: p.pred.String(),
		Pairs:     pairs,
		Truncated: jc.Stats.ResultPairs > int64(len(pairs)),
		SubJoins:  jc.Stats.SubJoins,
		Plan:      jc.Plan,
		Stats:     jc.Stats.Stats,
	})
}

// explainResponse answers /explain: the aggregate EXPLAIN record plus
// the per-tile-pair plans of the scatter-gather join.
type explainResponse struct {
	R         string `json:"r"`
	S         string `json:"s"`
	Predicate string `json:"predicate"`
	Run       bool   `json:"run"`
	shard.ExplainResult
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request, t *endpointTally) {
	p, ok := s.parseJoin(w, r, 0, false)
	if !ok {
		return
	}
	run := false
	switch strings.ToLower(r.URL.Query().Get("run")) {
	case "1", "true", "yes", "on":
		run = true
	}
	opts := []multistep.Option{multistep.WithPredicate(p.pred)}
	if p.workers > 0 {
		opts = append(opts, multistep.WithWorkers(p.workers))
	}
	if p.plan {
		opts = append(opts, multistep.WithPlan())
	} else {
		opts = append(opts, multistep.WithConfig(p.eR.Cfg))
	}
	res, err := shard.Explain(r.Context(), p.eR.Sh, p.eS.Sh, run, opts...)
	if !s.finishQuery(w, r, t, err) {
		return
	}
	writeJSON(w, http.StatusOK, explainResponse{
		R: p.nameR, S: p.nameS,
		Predicate:     p.pred.String(),
		Run:           run,
		ExplainResult: res,
	})
}
