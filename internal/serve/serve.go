// Package serve is the concurrent query-serving layer on top of the
// multi-step processor: an HTTP service over a catalog of sharded
// relations, answered by the internal/shard scatter-gather coordinator.
// Every relation — monolithic or tile-partitioned — is served through
// the same path: requests fan out to the owning tiles on per-tile
// storage.Sessions (one opened relation serves any number of
// simultaneous join, window, point and nearest-neighbour queries) and
// the merge layer reassembles one paper-faithful response per request.
//
// On top of that path sits the multi-query execution layer (DESIGN.md
// §12): a fingerprint-keyed, byte-bounded result cache, single-flight
// coalescing of identical concurrent requests, and a batching window
// under which concurrent joins over the same relation pair share one
// synchronized R*-tree traversal. All three preserve byte-identical
// responses up to the cached/coalesced markers.
//
// The intended deployment is "build once, serve many": preprocess
// relations offline (cmd/datagen -store, optionally -shards N), open
// the persisted stores at startup (multistep.OpenRelationFile or
// shard.Open), and serve queries from the immutable in-memory tiles.
// cmd/spatialjoinserve is the binary.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"sort"
	"strings"
	"sync"
	"sync/atomic"
	"time"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/hist"
	"spatialjoin/internal/mqe"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/shard"
)

// Entry is one served relation — a sharded facade (possibly a single
// tile) with the configuration it was built under. Queries against the
// entry use exactly this configuration; joining two entries requires
// equal preprocessing fingerprints.
type Entry struct {
	Sh  *shard.Sharded
	Cfg multistep.Config
	// Gen is the catalog generation of this entry: a counter bumped on
	// every registration. Cache keys include it, so re-registering a
	// name (a data swap) invalidates every cached response involving
	// the old entry even when the new build shares the configuration
	// fingerprint — the fingerprint identifies the preprocessing
	// configuration, not the data.
	Gen uint64
}

// Catalog is the named set of relations a server exposes. Relations are
// registered at startup (or added at runtime — the catalog itself is
// concurrency-safe); the relations themselves are immutable once added.
type Catalog struct {
	mu   sync.RWMutex
	gen  uint64
	rels map[string]*Entry
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{rels: make(map[string]*Entry)}
}

// Add registers a monolithic relation under a name, replacing any
// previous entry. The relation is wrapped as a single-tile shard so it
// serves through the same scatter-gather path as partitioned stores.
func (c *Catalog) Add(name string, rel *multistep.Relation, cfg multistep.Config) {
	c.AddSharded(name, shard.FromRelation(rel), cfg)
}

// AddSharded registers a sharded relation under a name, replacing any
// previous entry. Replacement is how serving-layer caches invalidate:
// the new entry carries a fresh generation, so no stale response can be
// served for the name.
func (c *Catalog) AddSharded(name string, sh *shard.Sharded, cfg multistep.Config) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.gen++
	c.rels[name] = &Entry{Sh: sh, Cfg: cfg, Gen: c.gen}
}

// LoadFile opens a persisted relation store (multistep.SaveRelationFile
// layout) and registers it under the given name.
func (c *Catalog) LoadFile(name, path string, cfg multistep.Config) error {
	rel, err := multistep.OpenRelationFile(path, cfg)
	if err != nil {
		return fmt.Errorf("serve: open %s: %w", path, err)
	}
	c.Add(name, rel, cfg)
	return nil
}

// LoadDir opens a sharded store directory (shard.Save layout) and
// registers it under the given name.
func (c *Catalog) LoadDir(name, dir string, cfg multistep.Config) error {
	sh, err := shard.Open(dir, cfg)
	if err != nil {
		return fmt.Errorf("serve: open %s: %w", dir, err)
	}
	c.AddSharded(name, sh, cfg)
	return nil
}

// Get returns the entry registered under name.
func (c *Catalog) Get(name string) (*Entry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.rels[name]
	return e, ok
}

// Names returns the registered relation names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.rels))
	for n := range c.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Server serves the catalog over HTTP. Every query request creates
// per-query sessions, so requests are handled fully concurrently.
//
// Joins and window/point queries run through the cost-based planner
// (internal/plan) by default: the engine, filter setting and worker
// count the request left open are chosen per tile pair from the
// relations' statistics, and every response echoes the resolved plan.
// A request opts out with plan=off (the build configuration verbatim),
// the whole server with NoPlan.
//
// Responses are served through the multi-query execution layer: a
// byte-bounded LRU result cache (CacheBytes), single-flight coalescing
// of identical in-flight requests, and an optional batching window
// (BatchWindow) under which concurrent joins over the same relation
// pair share one synchronized traversal. Configure the fields before
// the first Handler call; they are latched when serving starts.
type Server struct {
	cat *Catalog
	// MaxJoinPairs caps the number of response pairs a /join request
	// returns inline (the full count is always reported in the
	// statistics). Defaults to DefaultMaxJoinPairs.
	MaxJoinPairs int
	// JoinWorkers is the per-request worker count of the streaming join
	// pipeline; ≤ 0 lets the planner choose (GOMAXPROCS when planning
	// is off).
	JoinWorkers int
	// NoPlan disables adaptive planning server-wide: every request runs
	// its relations' build configuration verbatim, as if plan=off.
	NoPlan bool
	// CacheBytes bounds the shared result/tile cache in bytes; ≤ 0
	// disables caching. NewServer sets DefaultCacheBytes.
	CacheBytes int64
	// BatchWindow is how long the first join request of a batch group
	// waits for concurrent requests over the same relation pair to
	// join its synchronized traversal; 0 (the default) disables
	// batching — each request runs its own traversal immediately.
	BatchWindow time.Duration

	initOnce sync.Once
	cache    *mqe.Cache
	flight   mqe.Group
	batcher  *mqe.Batcher
	metrics  map[string]*endpointTally
}

// endpointTally is one endpoint's request counter and latency
// histogram — the per-endpoint figures /stats reports. Recording is
// lock-free (atomics all the way down), so instrumentation costs a few
// nanoseconds per request.
type endpointTally struct {
	requests atomic.Int64
	latency  hist.Histogram
}

// DefaultMaxJoinPairs bounds the /join response body.
const DefaultMaxJoinPairs = 10000

// DefaultCacheBytes is the default result/tile cache budget (64 MiB).
const DefaultCacheBytes int64 = 64 << 20

// NewServer returns a Server over the catalog.
func NewServer(cat *Catalog) *Server {
	return &Server{cat: cat, MaxJoinPairs: DefaultMaxJoinPairs, CacheBytes: DefaultCacheBytes}
}

// Handler returns the HTTP handler tree:
//
//	GET /healthz                                     liveness + relation count
//	GET /relations                                   catalog listing
//	GET /stats                                       cache / coalesce / batch counters
//	GET /window?rel=R&minx=&miny=&maxx=&maxy=        multi-step window query
//	         [&epsilon=ε][&limit=]                   (ε-range: within ε of the window)
//	GET /point?rel=R&x=&y=[&epsilon=ε][&limit=]      multi-step point / ε-range query
//	GET /nearest?rel=R&x=&y=&k=5                     k nearest objects by region distance
//	GET /join?r=R&s=S[&predicate=intersects|contains|within]
//	         [&epsilon=ε][&limit=][&workers=]        multi-step spatial join
//	GET /explain?r=R&s=S[&predicate=][&epsilon=]     EXPLAIN a join: per-tile-pair
//	         [&run=1][&workers=][&plan=off]          plans, with run=1 executed with
//	                                                 predicted-vs-actual errors
//
// All responses are JSON; query statistics (the paper's per-step
// measures, including the per-query buffer page accesses) ride along
// with every result. /join, /window and /point plan through the
// cost-based planner by default and echo the resolved plan (engine,
// filter, workers) in the response; plan=off pins the build
// configuration instead.
//
// A response served from the result cache carries "cached": true; one
// that received a concurrent identical request's result carries
// "coalesced": true. Apart from those markers, cached and coalesced
// responses are byte-identical to solo runs — same sort order, same
// statistics (the original run's, as DESIGN.md §12 specifies).
//
// Every handler threads the request context through the query pipeline:
// when the client disconnects, the step 1 traversal workers, the
// filter/exact pool and the collector all stop at their next check, so a
// cancelled request releases its workers instead of running the join to
// completion.
func (s *Server) Handler() http.Handler {
	s.init()
	mux := http.NewServeMux()
	register := func(name string, h http.HandlerFunc) {
		t := s.metrics[name]
		if t == nil {
			t = &endpointTally{}
			s.metrics[name] = t
		}
		mux.HandleFunc("GET /"+name, func(w http.ResponseWriter, r *http.Request) {
			t.requests.Add(1)
			start := time.Now()
			h(w, r)
			t.latency.RecordDuration(time.Since(start))
		})
	}
	register("healthz", s.handleHealthz)
	register("relations", s.handleRelations)
	register("stats", s.handleStats)
	register("window", s.handleWindow)
	register("point", s.handlePoint)
	register("nearest", s.handleNearest)
	register("join", s.handleJoin)
	register("explain", s.handleExplain)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
	// RFingerprint and SFingerprint carry the two preprocessing
	// fingerprints of a /join configuration-mismatch conflict, so the
	// caller can see which side to rebuild.
	RFingerprint string `json:"rFingerprint,omitempty"`
	SFingerprint string `json:"sFingerprint,omitempty"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "relations": len(s.cat.Names())})
}

// tileInfo is one shard row of a relation listing.
type tileInfo struct {
	Index   int       `json:"index"`
	Objects int       `json:"objects"`
	MBR     geom.Rect `json:"mbr"`
}

// relationInfo is one catalog listing row. Height is the tallest tile
// tree, Pages the total across tiles.
type relationInfo struct {
	Name        string     `json:"name"`
	Objects     int        `json:"objects"`
	MBR         geom.Rect  `json:"mbr"`
	Fingerprint string     `json:"fingerprint"`
	Shards      int        `json:"shards"`
	Height      int        `json:"treeHeight"`
	Pages       int        `json:"treePages"`
	Engine      string     `json:"engine"`
	Tiles       []tileInfo `json:"tiles"`
}

// fingerprintString renders a preprocessing fingerprint the way the
// listing and error bodies report it.
func fingerprintString(fp uint64) string { return fmt.Sprintf("%016x", fp) }

func (s *Server) handleRelations(w http.ResponseWriter, r *http.Request) {
	var out []relationInfo
	for _, name := range s.cat.Names() {
		e, ok := s.cat.Get(name)
		if !ok {
			continue
		}
		info := relationInfo{
			Name:        name,
			Objects:     e.Sh.Objects(),
			MBR:         e.Sh.MBR(),
			Fingerprint: fingerprintString(e.Sh.Fingerprint()),
			Shards:      e.Sh.Shards(),
			Engine:      e.Cfg.Engine.String(),
		}
		for _, t := range e.Sh.Tiles {
			if h := t.Rel.Tree.Height(); h > info.Height {
				info.Height = h
			}
			info.Pages += t.Rel.Tree.Pages()
			info.Tiles = append(info.Tiles, tileInfo{Index: t.Index, Objects: len(t.Rel.Objects), MBR: t.MBR})
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// planEcho is the execution-plan echo of /join, /window and /point: the
// resolved knobs only. The planner's predicted-cost figures are
// deliberately left out — they evolve with the feedback EWMAs request
// over request, so echoing them would make otherwise-identical
// responses diverge; /explain reports them.
type planEcho struct {
	Planned bool   `json:"planned"`
	Engine  string `json:"engine"`
	Filter  bool   `json:"filter"`
	Workers int    `json:"workers"`
}

func echoOf(p multistep.Plan) planEcho {
	return planEcho{Planned: p.Planned, Engine: p.Engine, Filter: p.UseFilter, Workers: p.Workers}
}

// windowResponse answers /window and /point. IDs are ascending global
// object IDs (the scatter-gather merge order), truncated to the limit
// when one was given; Stats aggregates the routed tiles, with the
// per-tile breakdown alongside. Plan echoes the resolved execution
// plan aggregated over the routed tiles — the shard fan-out is
// len(Stats.Tiles). Cached and Coalesced are the multi-query execution
// markers; they lead the struct so stripping their lines from the JSON
// body yields the solo-run response.
type windowResponse struct {
	Cached    bool             `json:"cached,omitempty"`
	Coalesced bool             `json:"coalesced,omitempty"`
	Relation  string           `json:"relation"`
	IDs       []int32          `json:"ids"`
	Truncated bool             `json:"truncated"`
	Plan      planEcho         `json:"plan"`
	Stats     shard.QueryStats `json:"stats"`
}

func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, kindWindow)
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	s.serveQuery(w, r, kindPoint)
}

// serveQuery is the shared /window and /point handler: canonical
// execution through the multi-query layer, then per-request derivation
// (sorted-prefix limit, recomputed result count).
func (s *Server) serveQuery(w http.ResponseWriter, r *http.Request, kind queryKind) {
	p, ok := s.parseQuery(w, r, kind)
	if !ok {
		return
	}
	qc, cached, coalesced, err := s.runQuery(r.Context(), p)
	if !finishQuery(w, r, err) {
		return
	}
	ids := qc.IDs
	truncated := false
	if p.limit >= 0 && len(ids) > p.limit {
		ids = ids[:p.limit]
		truncated = true
	}
	if ids == nil {
		ids = []int32{}
	}
	stats := qc.Stats
	stats.ResultObjects = int64(len(ids))
	writeJSON(w, http.StatusOK, windowResponse{
		Cached:    cached,
		Coalesced: coalesced,
		Relation:  p.name,
		IDs:       ids,
		Truncated: truncated,
		Plan:      qc.Plan,
		Stats:     stats,
	})
}

// finishQuery maps a query error onto the response: a cancelled request
// writes nothing (the client is gone), any other error is a bad request.
// It reports whether the handler should proceed to write the result.
func finishQuery(w http.ResponseWriter, r *http.Request, err error) bool {
	if err == nil {
		return true
	}
	if r.Context().Err() != nil {
		return false // client disconnected; the pipeline already stopped
	}
	writeError(w, http.StatusBadRequest, "%v", err)
	return false
}

// nearestStats carries the per-query page accounting of a nearest
// query (the multi-step WindowStats do not apply to the best-first
// search, but the paper's page-access metric does).
type nearestStats struct {
	// PageAccesses counts the page touches that missed the buffer —
	// the paper's I/O metric for this query alone.
	PageAccesses int64
	// PageTouches counts all page touches of the best-first search.
	PageTouches int64
}

// nearestResponse answers /nearest.
type nearestResponse struct {
	Cached    bool                 `json:"cached,omitempty"`
	Coalesced bool                 `json:"coalesced,omitempty"`
	Relation  string               `json:"relation"`
	Neighbors []multistep.Neighbor `json:"neighbors"`
	Stats     nearestStats         `json:"stats"`
}

func (s *Server) handleNearest(w http.ResponseWriter, r *http.Request) {
	p, ok := s.parseQuery(w, r, kindNearest)
	if !ok {
		return
	}
	qc, cached, coalesced, err := s.runQuery(r.Context(), p)
	if !finishQuery(w, r, err) {
		return
	}
	nn := qc.Neighbors
	if nn == nil {
		nn = []multistep.Neighbor{}
	}
	writeJSON(w, http.StatusOK, nearestResponse{
		Cached:    cached,
		Coalesced: coalesced,
		Relation:  p.name,
		Neighbors: nn,
		Stats:     nearestStats{PageAccesses: qc.Stats.PageAccesses, PageTouches: qc.Stats.PageTouches},
	})
}

// joinResponse answers /join. Pairs is truncated to the limit; the full
// response-set size is Stats.ResultPairs. Stats aggregates the tile-pair
// sub-joins (SubJoins of them) as shard.Join documents. Plan echoes the
// resolved execution plan aggregated over the sub-joins ("mixed" engine
// when skewed tiles chose differently); /explain has the per-tile-pair
// breakdown. Cached and Coalesced lead the struct so stripping their
// lines from the JSON body yields the solo-run response.
type joinResponse struct {
	Cached    bool             `json:"cached,omitempty"`
	Coalesced bool             `json:"coalesced,omitempty"`
	R         string           `json:"r"`
	S         string           `json:"s"`
	Predicate string           `json:"predicate"`
	Pairs     []multistep.Pair `json:"pairs"`
	Truncated bool             `json:"truncated"`
	SubJoins  int              `json:"subJoins"`
	Plan      planEcho         `json:"plan"`
	Stats     multistep.Stats  `json:"stats"`
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	p, ok := s.parseJoin(w, r, s.JoinWorkers, true)
	if !ok {
		return
	}
	// The scatter-gather join collects the full response set and sorts
	// before truncating: both sub-join emission order and tile
	// completion order depend on scheduling, so keeping "the first
	// limit pairs" would return a different subset per request on
	// multi-core hosts. The canonical result is capped at MaxJoinPairs;
	// this request's limit is a sorted prefix of it. The request
	// context rides along and fans out to every tile, so a disconnected
	// client stops all sub-joins.
	jc, cached, coalesced, err := s.runJoin(r.Context(), p)
	if !finishQuery(w, r, err) {
		return
	}
	pairs := jc.Pairs
	if len(pairs) > p.limit {
		pairs = pairs[:p.limit]
	}
	if pairs == nil {
		pairs = []multistep.Pair{}
	}
	writeJSON(w, http.StatusOK, joinResponse{
		Cached:    cached,
		Coalesced: coalesced,
		R:         p.nameR,
		S:         p.nameS,
		Predicate: p.pred.String(),
		Pairs:     pairs,
		Truncated: jc.Stats.ResultPairs > int64(len(pairs)),
		SubJoins:  jc.Stats.SubJoins,
		Plan:      jc.Plan,
		Stats:     jc.Stats.Stats,
	})
}

// explainResponse answers /explain: the aggregate EXPLAIN record plus
// the per-tile-pair plans of the scatter-gather join.
type explainResponse struct {
	R         string `json:"r"`
	S         string `json:"s"`
	Predicate string `json:"predicate"`
	Run       bool   `json:"run"`
	shard.ExplainResult
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	p, ok := s.parseJoin(w, r, 0, false)
	if !ok {
		return
	}
	run := false
	switch strings.ToLower(r.URL.Query().Get("run")) {
	case "1", "true", "yes", "on":
		run = true
	}
	opts := []multistep.Option{multistep.WithPredicate(p.pred)}
	if p.workers > 0 {
		opts = append(opts, multistep.WithWorkers(p.workers))
	}
	if p.plan {
		opts = append(opts, multistep.WithPlan())
	} else {
		opts = append(opts, multistep.WithConfig(p.eR.Cfg))
	}
	res, err := shard.Explain(r.Context(), p.eR.Sh, p.eS.Sh, run, opts...)
	if !finishQuery(w, r, err) {
		return
	}
	writeJSON(w, http.StatusOK, explainResponse{
		R: p.nameR, S: p.nameS,
		Predicate:     p.pred.String(),
		Run:           run,
		ExplainResult: res,
	})
}
