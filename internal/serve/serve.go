// Package serve is the concurrent query-serving layer on top of the
// multi-step processor: an HTTP service over a catalog of sharded
// relations, answered by the internal/shard scatter-gather coordinator.
// Every relation — monolithic or tile-partitioned — is served through
// the same path: requests fan out to the owning tiles on per-tile
// storage.Sessions (one opened relation serves any number of
// simultaneous join, window, point and nearest-neighbour queries) and
// the merge layer reassembles one paper-faithful response per request.
//
// The intended deployment is "build once, serve many": preprocess
// relations offline (cmd/datagen -store, optionally -shards N), open
// the persisted stores at startup (multistep.OpenRelationFile or
// shard.Open), and serve queries from the immutable in-memory tiles.
// cmd/spatialjoinserve is the binary.
package serve

import (
	"encoding/json"
	"fmt"
	"net/http"
	"runtime"
	"sort"
	"strconv"
	"strings"
	"sync"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/shard"
)

// Entry is one served relation — a sharded facade (possibly a single
// tile) with the configuration it was built under. Queries against the
// entry use exactly this configuration; joining two entries requires
// equal preprocessing fingerprints.
type Entry struct {
	Sh  *shard.Sharded
	Cfg multistep.Config
}

// Catalog is the named set of relations a server exposes. Relations are
// registered at startup (or added at runtime — the catalog itself is
// concurrency-safe); the relations themselves are immutable once added.
type Catalog struct {
	mu   sync.RWMutex
	rels map[string]*Entry
}

// NewCatalog returns an empty catalog.
func NewCatalog() *Catalog {
	return &Catalog{rels: make(map[string]*Entry)}
}

// Add registers a monolithic relation under a name, replacing any
// previous entry. The relation is wrapped as a single-tile shard so it
// serves through the same scatter-gather path as partitioned stores.
func (c *Catalog) Add(name string, rel *multistep.Relation, cfg multistep.Config) {
	c.AddSharded(name, shard.FromRelation(rel), cfg)
}

// AddSharded registers a sharded relation under a name, replacing any
// previous entry.
func (c *Catalog) AddSharded(name string, sh *shard.Sharded, cfg multistep.Config) {
	c.mu.Lock()
	defer c.mu.Unlock()
	c.rels[name] = &Entry{Sh: sh, Cfg: cfg}
}

// LoadFile opens a persisted relation store (multistep.SaveRelationFile
// layout) and registers it under the given name.
func (c *Catalog) LoadFile(name, path string, cfg multistep.Config) error {
	rel, err := multistep.OpenRelationFile(path, cfg)
	if err != nil {
		return fmt.Errorf("serve: open %s: %w", path, err)
	}
	c.Add(name, rel, cfg)
	return nil
}

// LoadDir opens a sharded store directory (shard.Save layout) and
// registers it under the given name.
func (c *Catalog) LoadDir(name, dir string, cfg multistep.Config) error {
	sh, err := shard.Open(dir, cfg)
	if err != nil {
		return fmt.Errorf("serve: open %s: %w", dir, err)
	}
	c.AddSharded(name, sh, cfg)
	return nil
}

// Get returns the entry registered under name.
func (c *Catalog) Get(name string) (*Entry, bool) {
	c.mu.RLock()
	defer c.mu.RUnlock()
	e, ok := c.rels[name]
	return e, ok
}

// Names returns the registered relation names, sorted.
func (c *Catalog) Names() []string {
	c.mu.RLock()
	defer c.mu.RUnlock()
	names := make([]string, 0, len(c.rels))
	for n := range c.rels {
		names = append(names, n)
	}
	sort.Strings(names)
	return names
}

// Server serves the catalog over HTTP. Every query request creates
// per-query sessions, so requests are handled fully concurrently.
//
// Joins and window/point queries run through the cost-based planner
// (internal/plan) by default: the engine, filter setting and worker
// count the request left open are chosen per tile pair from the
// relations' statistics, and every response echoes the resolved plan.
// A request opts out with plan=off (the build configuration verbatim),
// the whole server with NoPlan.
type Server struct {
	cat *Catalog
	// MaxJoinPairs caps the number of response pairs a /join request
	// returns inline (the full count is always reported in the
	// statistics). Defaults to DefaultMaxJoinPairs.
	MaxJoinPairs int
	// JoinWorkers is the per-request worker count of the streaming join
	// pipeline; ≤ 0 lets the planner choose (GOMAXPROCS when planning
	// is off).
	JoinWorkers int
	// NoPlan disables adaptive planning server-wide: every request runs
	// its relations' build configuration verbatim, as if plan=off.
	NoPlan bool
}

// DefaultMaxJoinPairs bounds the /join response body.
const DefaultMaxJoinPairs = 10000

// NewServer returns a Server over the catalog.
func NewServer(cat *Catalog) *Server {
	return &Server{cat: cat, MaxJoinPairs: DefaultMaxJoinPairs}
}

// Handler returns the HTTP handler tree:
//
//	GET /healthz                                     liveness + relation count
//	GET /relations                                   catalog listing
//	GET /window?rel=R&minx=&miny=&maxx=&maxy=        multi-step window query
//	         [&epsilon=ε]                            (ε-range: within ε of the window)
//	GET /point?rel=R&x=&y=[&epsilon=ε]               multi-step point / ε-range query
//	GET /nearest?rel=R&x=&y=&k=5                     k nearest objects by region distance
//	GET /join?r=R&s=S[&predicate=intersects|contains|within]
//	         [&epsilon=ε][&limit=][&workers=]        multi-step spatial join
//	GET /explain?r=R&s=S[&predicate=][&epsilon=]     EXPLAIN a join: per-tile-pair
//	         [&run=1][&workers=][&plan=off]          plans, with run=1 executed with
//	                                                 predicted-vs-actual errors
//
// All responses are JSON; query statistics (the paper's per-step
// measures, including the per-query buffer page accesses) ride along
// with every result. /join, /window and /point plan through the
// cost-based planner by default and echo the resolved plan (engine,
// filter, workers) in the response; plan=off pins the build
// configuration instead.
//
// Every handler threads the request context through the query pipeline:
// when the client disconnects, the step 1 traversal workers, the
// filter/exact pool and the collector all stop at their next check, so a
// cancelled request releases its workers instead of running the join to
// completion.
func (s *Server) Handler() http.Handler {
	mux := http.NewServeMux()
	mux.HandleFunc("GET /healthz", s.handleHealthz)
	mux.HandleFunc("GET /relations", s.handleRelations)
	mux.HandleFunc("GET /window", s.handleWindow)
	mux.HandleFunc("GET /point", s.handlePoint)
	mux.HandleFunc("GET /nearest", s.handleNearest)
	mux.HandleFunc("GET /join", s.handleJoin)
	mux.HandleFunc("GET /explain", s.handleExplain)
	return mux
}

func writeJSON(w http.ResponseWriter, status int, v any) {
	w.Header().Set("Content-Type", "application/json")
	w.WriteHeader(status)
	enc := json.NewEncoder(w)
	enc.SetIndent("", "  ")
	_ = enc.Encode(v)
}

type errorBody struct {
	Error string `json:"error"`
	// RFingerprint and SFingerprint carry the two preprocessing
	// fingerprints of a /join configuration-mismatch conflict, so the
	// caller can see which side to rebuild.
	RFingerprint string `json:"rFingerprint,omitempty"`
	SFingerprint string `json:"sFingerprint,omitempty"`
}

func writeError(w http.ResponseWriter, status int, format string, args ...any) {
	writeJSON(w, status, errorBody{Error: fmt.Sprintf(format, args...)})
}

// relParam resolves the relation named by the query parameter key,
// returning the entry and its catalog name.
func (s *Server) relParam(w http.ResponseWriter, r *http.Request, key string) (*Entry, string, bool) {
	name := r.URL.Query().Get(key)
	if name == "" {
		writeError(w, http.StatusBadRequest, "missing relation parameter %q", key)
		return nil, "", false
	}
	e, ok := s.cat.Get(name)
	if !ok {
		writeError(w, http.StatusNotFound, "unknown relation %q", name)
		return nil, "", false
	}
	return e, name, true
}

// floatParam parses a required float query parameter.
func floatParam(w http.ResponseWriter, r *http.Request, key string) (float64, bool) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		writeError(w, http.StatusBadRequest, "missing parameter %q", key)
		return 0, false
	}
	v, err := strconv.ParseFloat(raw, 64)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parameter %q: %v", key, err)
		return 0, false
	}
	return v, true
}

// intParam parses an optional int query parameter with a default.
func intParam(w http.ResponseWriter, r *http.Request, key string, def int) (int, bool) {
	raw := r.URL.Query().Get(key)
	if raw == "" {
		return def, true
	}
	v, err := strconv.Atoi(raw)
	if err != nil {
		writeError(w, http.StatusBadRequest, "parameter %q: %v", key, err)
		return 0, false
	}
	return v, true
}

// planParam reports whether the request should resolve its open options
// through the cost-based planner: on by default, switched off per
// request with plan=off (or 0/false/no) and server-wide with NoPlan.
func (s *Server) planParam(r *http.Request) bool {
	if s.NoPlan {
		return false
	}
	switch strings.ToLower(r.URL.Query().Get("plan")) {
	case "off", "0", "false", "no":
		return false
	}
	return true
}

func (s *Server) handleHealthz(w http.ResponseWriter, r *http.Request) {
	writeJSON(w, http.StatusOK, map[string]any{"ok": true, "relations": len(s.cat.Names())})
}

// tileInfo is one shard row of a relation listing.
type tileInfo struct {
	Index   int       `json:"index"`
	Objects int       `json:"objects"`
	MBR     geom.Rect `json:"mbr"`
}

// relationInfo is one catalog listing row. Height is the tallest tile
// tree, Pages the total across tiles.
type relationInfo struct {
	Name        string     `json:"name"`
	Objects     int        `json:"objects"`
	MBR         geom.Rect  `json:"mbr"`
	Fingerprint string     `json:"fingerprint"`
	Shards      int        `json:"shards"`
	Height      int        `json:"treeHeight"`
	Pages       int        `json:"treePages"`
	Engine      string     `json:"engine"`
	Tiles       []tileInfo `json:"tiles"`
}

// fingerprintString renders a preprocessing fingerprint the way the
// listing and error bodies report it.
func fingerprintString(fp uint64) string { return fmt.Sprintf("%016x", fp) }

func (s *Server) handleRelations(w http.ResponseWriter, r *http.Request) {
	var out []relationInfo
	for _, name := range s.cat.Names() {
		e, ok := s.cat.Get(name)
		if !ok {
			continue
		}
		info := relationInfo{
			Name:        name,
			Objects:     e.Sh.Objects(),
			MBR:         e.Sh.MBR(),
			Fingerprint: fingerprintString(e.Sh.Fingerprint()),
			Shards:      e.Sh.Shards(),
			Engine:      e.Cfg.Engine.String(),
		}
		for _, t := range e.Sh.Tiles {
			if h := t.Rel.Tree.Height(); h > info.Height {
				info.Height = h
			}
			info.Pages += t.Rel.Tree.Pages()
			info.Tiles = append(info.Tiles, tileInfo{Index: t.Index, Objects: len(t.Rel.Objects), MBR: t.MBR})
		}
		out = append(out, info)
	}
	writeJSON(w, http.StatusOK, out)
}

// planEcho is the execution-plan echo of /join, /window and /point: the
// resolved knobs only. The planner's predicted-cost figures are
// deliberately left out — they evolve with the feedback EWMAs request
// over request, so echoing them would make otherwise-identical
// responses diverge; /explain reports them.
type planEcho struct {
	Planned bool   `json:"planned"`
	Engine  string `json:"engine"`
	Filter  bool   `json:"filter"`
	Workers int    `json:"workers"`
}

func echoOf(p multistep.Plan) planEcho {
	return planEcho{Planned: p.Planned, Engine: p.Engine, Filter: p.UseFilter, Workers: p.Workers}
}

// windowResponse answers /window and /point. IDs are ascending global
// object IDs (the scatter-gather merge order); Stats aggregates the
// routed tiles, with the per-tile breakdown alongside. Plan echoes the
// resolved execution plan aggregated over the routed tiles — the shard
// fan-out is len(Stats.Tiles).
type windowResponse struct {
	Relation string           `json:"relation"`
	IDs      []int32          `json:"ids"`
	Plan     planEcho         `json:"plan"`
	Stats    shard.QueryStats `json:"stats"`
}

func (s *Server) handleWindow(w http.ResponseWriter, r *http.Request) {
	e, name, ok := s.relParam(w, r, "rel")
	if !ok {
		return
	}
	minx, ok := floatParam(w, r, "minx")
	if !ok {
		return
	}
	miny, ok := floatParam(w, r, "miny")
	if !ok {
		return
	}
	maxx, ok := floatParam(w, r, "maxx")
	if !ok {
		return
	}
	maxy, ok := floatParam(w, r, "maxy")
	if !ok {
		return
	}
	win := geom.Rect{MinX: minx, MinY: miny, MaxX: maxx, MaxY: maxy}
	pred, ok := predicateParam(w, r)
	if !ok {
		return
	}
	var ex multistep.Explain
	opts := []multistep.Option{multistep.ForWindow(win), multistep.WithPredicate(pred), multistep.WithExplain(&ex)}
	if s.planParam(r) {
		// WithConfig would pin the filter knob; the planner path runs on
		// the tiles' build configuration (identical to e.Cfg — the entry
		// was opened under it) and chooses the filter per tile.
		opts = append(opts, multistep.WithPlan())
	} else {
		opts = append(opts, multistep.WithConfig(e.Cfg))
	}
	res, err := shard.Query(r.Context(), e.Sh, opts...)
	if !finishQuery(w, r, err) {
		return
	}
	ids := res.IDs
	if ids == nil {
		ids = []int32{}
	}
	writeJSON(w, http.StatusOK, windowResponse{Relation: name, IDs: ids, Plan: echoOf(ex.Plan), Stats: res.Stats})
}

// predicateParam resolves the optional predicate of a request: the
// plain intersection query without parameters, the ε-range
// (within-distance) query with epsilon (or predicate=within&epsilon=ε).
// As in cmd/spatialjoin, an epsilon promotes the (default or explicit)
// intersects predicate to within; an epsilon on a predicate that takes
// none (contains) is rejected rather than silently dropped.
func predicateParam(w http.ResponseWriter, r *http.Request) (multistep.Predicate, bool) {
	name := r.URL.Query().Get("predicate")
	rawEps := r.URL.Query().Get("epsilon")
	eps := 0.0
	if rawEps != "" {
		v, err := strconv.ParseFloat(rawEps, 64)
		if err != nil {
			writeError(w, http.StatusBadRequest, "parameter %q: %v", "epsilon", err)
			return multistep.Predicate{}, false
		}
		eps = v
		switch strings.ToLower(name) {
		case "", "intersects", "intersect":
			name = "within"
		case "within", "within-distance", "distance", "epsilon":
		default:
			writeError(w, http.StatusBadRequest,
				"parameter %q is only valid with the within predicate, not %q", "epsilon", name)
			return multistep.Predicate{}, false
		}
	}
	pred, err := multistep.ParsePredicate(name, eps)
	if err != nil {
		writeError(w, http.StatusBadRequest, "%v", err)
		return multistep.Predicate{}, false
	}
	return pred, true
}

// finishQuery maps a query error onto the response: a cancelled request
// writes nothing (the client is gone), any other error is a bad request.
// It reports whether the handler should proceed to write the result.
func finishQuery(w http.ResponseWriter, r *http.Request, err error) bool {
	if err == nil {
		return true
	}
	if r.Context().Err() != nil {
		return false // client disconnected; the pipeline already stopped
	}
	writeError(w, http.StatusBadRequest, "%v", err)
	return false
}

func (s *Server) handlePoint(w http.ResponseWriter, r *http.Request) {
	e, name, ok := s.relParam(w, r, "rel")
	if !ok {
		return
	}
	x, ok := floatParam(w, r, "x")
	if !ok {
		return
	}
	y, ok := floatParam(w, r, "y")
	if !ok {
		return
	}
	pred, ok := predicateParam(w, r)
	if !ok {
		return
	}
	var ex multistep.Explain
	opts := []multistep.Option{multistep.ForPoint(geom.Point{X: x, Y: y}), multistep.WithPredicate(pred), multistep.WithExplain(&ex)}
	if s.planParam(r) {
		opts = append(opts, multistep.WithPlan())
	} else {
		opts = append(opts, multistep.WithConfig(e.Cfg))
	}
	res, err := shard.Query(r.Context(), e.Sh, opts...)
	if !finishQuery(w, r, err) {
		return
	}
	ids := res.IDs
	if ids == nil {
		ids = []int32{}
	}
	writeJSON(w, http.StatusOK, windowResponse{Relation: name, IDs: ids, Plan: echoOf(ex.Plan), Stats: res.Stats})
}

// nearestStats carries the per-query page accounting of a nearest
// query (the multi-step WindowStats do not apply to the best-first
// search, but the paper's page-access metric does).
type nearestStats struct {
	// PageAccesses counts the page touches that missed the buffer —
	// the paper's I/O metric for this query alone.
	PageAccesses int64
	// PageTouches counts all page touches of the best-first search.
	PageTouches int64
}

// nearestResponse answers /nearest.
type nearestResponse struct {
	Relation  string               `json:"relation"`
	Neighbors []multistep.Neighbor `json:"neighbors"`
	Stats     nearestStats         `json:"stats"`
}

func (s *Server) handleNearest(w http.ResponseWriter, r *http.Request) {
	e, name, ok := s.relParam(w, r, "rel")
	if !ok {
		return
	}
	x, ok := floatParam(w, r, "x")
	if !ok {
		return
	}
	y, ok := floatParam(w, r, "y")
	if !ok {
		return
	}
	k, ok := intParam(w, r, "k", 5)
	if !ok {
		return
	}
	if k < 1 {
		writeError(w, http.StatusBadRequest, "parameter %q must be positive", "k")
		return
	}
	res, err := shard.Query(r.Context(), e.Sh,
		multistep.ForNearest(geom.Point{X: x, Y: y}, k))
	if !finishQuery(w, r, err) {
		return
	}
	nn := res.Neighbors
	if nn == nil {
		nn = []multistep.Neighbor{}
	}
	writeJSON(w, http.StatusOK, nearestResponse{
		Relation:  name,
		Neighbors: nn,
		Stats:     nearestStats{PageAccesses: res.Stats.PageAccesses, PageTouches: res.Stats.PageTouches},
	})
}

// joinResponse answers /join. Pairs is truncated to the limit; the full
// response-set size is Stats.ResultPairs. Stats aggregates the tile-pair
// sub-joins (SubJoins of them) as shard.Join documents. Plan echoes the
// resolved execution plan aggregated over the sub-joins ("mixed" engine
// when skewed tiles chose differently); /explain has the per-tile-pair
// breakdown.
type joinResponse struct {
	R         string           `json:"r"`
	S         string           `json:"s"`
	Predicate string           `json:"predicate"`
	Pairs     []multistep.Pair `json:"pairs"`
	Truncated bool             `json:"truncated"`
	SubJoins  int              `json:"subJoins"`
	Plan      planEcho         `json:"plan"`
	Stats     multistep.Stats  `json:"stats"`
}

func (s *Server) handleJoin(w http.ResponseWriter, r *http.Request) {
	eR, nameR, ok := s.relParam(w, r, "r")
	if !ok {
		return
	}
	eS, nameS, ok := s.relParam(w, r, "s")
	if !ok {
		return
	}
	if eR.Sh.Fingerprint() != eS.Sh.Fingerprint() {
		writeJSON(w, http.StatusConflict, errorBody{
			Error: fmt.Sprintf(
				"relations %q and %q were preprocessed under different configurations", nameR, nameS),
			RFingerprint: fingerprintString(eR.Sh.Fingerprint()),
			SFingerprint: fingerprintString(eS.Sh.Fingerprint()),
		})
		return
	}
	pred, ok := predicateParam(w, r)
	if !ok {
		return
	}
	limit, ok := intParam(w, r, "limit", s.MaxJoinPairs)
	if !ok {
		return
	}
	if limit < 0 || limit > s.MaxJoinPairs {
		limit = s.MaxJoinPairs
	}
	workers, ok := intParam(w, r, "workers", s.JoinWorkers)
	if !ok {
		return
	}
	// Clamp the per-request worker count: an unauthenticated parameter
	// must not be able to allocate per-worker state without bound.
	if maxWorkers := 4 * runtime.GOMAXPROCS(0); workers > maxWorkers {
		workers = maxWorkers
	}

	// The scatter-gather join collects the full response set and sorts
	// before truncating (WithLimit): both sub-join emission order and
	// tile completion order depend on scheduling, so keeping "the first
	// limit pairs" would return a different subset per request on
	// multi-core hosts. The request context rides along and fans out to
	// every tile, so a disconnected client stops all sub-joins.
	var ex multistep.Explain
	opts := []multistep.Option{
		multistep.WithPredicate(pred),
		multistep.WithWorkers(workers),
		multistep.WithLimit(limit),
		multistep.WithExplain(&ex),
	}
	if s.planParam(r) {
		// WithPlan resolves engine, filter and workers per tile pair; an
		// explicit workers parameter stays pinned (WithWorkers > 0 wins).
		// WithConfig would pin engine and filter, so the planner path
		// relies on the tiles' build configuration instead.
		opts = append(opts, multistep.WithPlan())
	} else {
		opts = append(opts, multistep.WithConfig(eR.Cfg))
	}
	pairs, st, err := shard.Join(r.Context(), eR.Sh, eS.Sh, opts...)
	if !finishQuery(w, r, err) {
		return
	}
	if pairs == nil {
		pairs = []multistep.Pair{}
	}
	writeJSON(w, http.StatusOK, joinResponse{
		R: nameR, S: nameS,
		Predicate: pred.String(),
		Pairs:     pairs,
		Truncated: st.ResultPairs > int64(len(pairs)),
		SubJoins:  st.SubJoins,
		Plan:      echoOf(ex.Plan),
		Stats:     st.Stats,
	})
}

// explainResponse answers /explain: the aggregate EXPLAIN record plus
// the per-tile-pair plans of the scatter-gather join.
type explainResponse struct {
	R         string `json:"r"`
	S         string `json:"s"`
	Predicate string `json:"predicate"`
	Run       bool   `json:"run"`
	shard.ExplainResult
}

func (s *Server) handleExplain(w http.ResponseWriter, r *http.Request) {
	eR, nameR, ok := s.relParam(w, r, "r")
	if !ok {
		return
	}
	eS, nameS, ok := s.relParam(w, r, "s")
	if !ok {
		return
	}
	if eR.Sh.Fingerprint() != eS.Sh.Fingerprint() {
		writeJSON(w, http.StatusConflict, errorBody{
			Error: fmt.Sprintf(
				"relations %q and %q were preprocessed under different configurations", nameR, nameS),
			RFingerprint: fingerprintString(eR.Sh.Fingerprint()),
			SFingerprint: fingerprintString(eS.Sh.Fingerprint()),
		})
		return
	}
	pred, ok := predicateParam(w, r)
	if !ok {
		return
	}
	run := false
	switch strings.ToLower(r.URL.Query().Get("run")) {
	case "1", "true", "yes", "on":
		run = true
	}
	workers, ok := intParam(w, r, "workers", 0)
	if !ok {
		return
	}
	if maxWorkers := 4 * runtime.GOMAXPROCS(0); workers > maxWorkers {
		workers = maxWorkers
	}
	opts := []multistep.Option{multistep.WithPredicate(pred)}
	if workers > 0 {
		opts = append(opts, multistep.WithWorkers(workers))
	}
	if s.planParam(r) {
		opts = append(opts, multistep.WithPlan())
	} else {
		opts = append(opts, multistep.WithConfig(eR.Cfg))
	}
	res, err := shard.Explain(r.Context(), eR.Sh, eS.Sh, run, opts...)
	if !finishQuery(w, r, err) {
		return
	}
	writeJSON(w, http.StatusOK, explainResponse{
		R: nameR, S: nameS,
		Predicate:     pred.String(),
		Run:           run,
		ExplainResult: res,
	})
}
