package serve

import (
	"net/http"
	"net/http/httptest"
	"reflect"
	"strings"
	"sync"
	"testing"
	"time"

	"spatialjoin/internal/data"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/shard"
)

// getBody fetches a URL from a handler and returns the raw body.
func getBody(t *testing.T, h http.Handler, url string, wantStatus int) string {
	t.Helper()
	req := httptest.NewRequest("GET", url, nil)
	rec := httptest.NewRecorder()
	h.ServeHTTP(rec, req)
	if rec.Code != wantStatus {
		t.Fatalf("GET %s: status %d (want %d): %s", url, rec.Code, wantStatus, rec.Body)
	}
	return rec.Body.String()
}

// TestCachedResponsesByteIdentical is the whole-response cache
// acceptance test: for every endpoint and predicate, a cache-served
// response must be byte-identical to the uncached response except for
// the "cached": true marker line. plan=off pins the configuration so
// the planner's feedback EWMAs cannot legitimately change the plan
// echo between runs; /nearest never plans.
func TestCachedResponsesByteIdentical(t *testing.T) {
	cat, _ := testCatalog(t)
	withCache := NewServer(cat).Handler()
	noCacheSrv := NewServer(cat)
	noCacheSrv.CacheBytes = -1
	noCache := noCacheSrv.Handler()

	urls := []string{
		"/join?r=R&s=S&plan=off",
		"/join?r=R&s=S&predicate=contains&plan=off",
		"/join?r=R&s=S&epsilon=0.01&plan=off",
		"/join?r=R&s=S&limit=7&plan=off",
		"/window?rel=R&minx=0.2&miny=0.2&maxx=0.45&maxy=0.4&plan=off",
		"/window?rel=R&minx=0.2&miny=0.2&maxx=0.45&maxy=0.4&epsilon=0.03&plan=off",
		"/point?rel=R&x=0.31&y=0.47&plan=off",
		"/nearest?rel=R&x=0.31&y=0.47&k=4",
	}
	for _, u := range urls {
		off := getBody(t, noCache, u, http.StatusOK)
		cold := getBody(t, withCache, u, http.StatusOK)
		warm := getBody(t, withCache, u, http.StatusOK)
		if !strings.Contains(warm, `"cached": true`) {
			t.Errorf("GET %s: repeated request not served from cache", u)
		}
		if stripMarkers(cold) != off {
			t.Errorf("GET %s: cold cached-server response differs from uncached server", u)
		}
		if stripMarkers(warm) != off {
			t.Errorf("GET %s: cached response (markers stripped) differs from uncached response:\ncached: %s\nsolo:   %s", u, warm, off)
		}
	}
}

// TestCachedShardedJoin runs the cache path over genuinely partitioned
// relations: the second identical join is served from cache with an
// identical body, and the per-tile-pair sub-results populate the same
// shared LRU.
func TestCachedShardedJoin(t *testing.T) {
	cfg := multistep.DefaultConfig()
	cfg.BufferBytes = 8192
	rp := data.GenerateMap(data.MapConfig{Cells: 80, TargetVerts: 48, HoleFraction: 0.1, Seed: 211})
	sp := data.StrategyA(rp, 0.45)
	cat := NewCatalog()
	cat.AddSharded("R", shard.Build("R", rp, 4, cfg), cfg)
	cat.AddSharded("S", shard.Build("S", sp, 4, cfg), cfg)
	h := NewServer(cat).Handler()

	const u = "/join?r=R&s=S&epsilon=0.01&limit=5&plan=off"
	first := getBody(t, h, u, http.StatusOK)
	second := getBody(t, h, u, http.StatusOK)
	if !strings.Contains(second, `"cached": true`) {
		t.Fatal("repeated sharded join not served from cache")
	}
	if stripMarkers(second) != first {
		t.Fatalf("cached sharded join differs from the cold run:\nfirst:  %s\nsecond: %s", first, second)
	}

	// A different limit misses the whole-response key but every
	// tile-pair sub-join replays from the tile cache; the response must
	// still be the canonical sorted prefix.
	var full, limited joinResponse
	get(t, h, "/join?r=R&s=S&plan=off", http.StatusOK, &full)
	get(t, h, "/join?r=R&s=S&limit=2&plan=off", http.StatusOK, &limited)
	if len(limited.Pairs) != 2 || !reflect.DeepEqual(limited.Pairs, full.Pairs[:2]) {
		t.Fatalf("limit variant is not the sorted prefix: %v vs %v", limited.Pairs, full.Pairs[:2])
	}
	if !reflect.DeepEqual(limited.Stats, full.Stats) {
		t.Fatal("limit variant reports different statistics")
	}
}

// TestCacheInvalidationOnSwap: re-registering a name invalidates every
// cached response involving the old entry — the catalog generation in
// the key changes even though the configuration fingerprint may not.
func TestCacheInvalidationOnSwap(t *testing.T) {
	cfg := multistep.DefaultConfig()
	cfg.BufferBytes = 8192
	rp := data.GenerateMap(data.MapConfig{Cells: 80, TargetVerts: 48, HoleFraction: 0.1, Seed: 211})
	sp := data.StrategyA(rp, 0.45)
	cat := NewCatalog()
	cat.Add("R", multistep.NewRelation("R", rp, cfg), cfg)
	cat.Add("S", multistep.NewRelation("S", sp, cfg), cfg)
	h := NewServer(cat).Handler()

	const u = "/join?r=R&s=S&plan=off"
	getBody(t, h, u, http.StatusOK)
	warm := getBody(t, h, u, http.StatusOK)
	if !strings.Contains(warm, `"cached": true`) {
		t.Fatal("repeated join not served from cache")
	}

	// Swap R for a different dataset built under the SAME configuration:
	// the fingerprint is unchanged, so only the generation can (and
	// must) invalidate.
	rp2 := data.GenerateMap(data.MapConfig{Cells: 60, TargetVerts: 40, Seed: 99})
	cat.Add("R", multistep.NewRelation("R", rp2, cfg), cfg)
	swapped := getBody(t, h, u, http.StatusOK)
	if strings.Contains(swapped, `"cached": true`) {
		t.Fatal("stale response served after the relation was swapped")
	}
	if stripMarkers(warm) == swapped {
		t.Fatal("swapped relation returned the old dataset's response")
	}
	// And the swapped pair is itself cacheable again.
	again := getBody(t, h, u, http.StatusOK)
	if !strings.Contains(again, `"cached": true`) || stripMarkers(again) != swapped {
		t.Fatal("swapped relation's responses do not cache")
	}
}

// TestCoalescedJoinMatchesSolo: a request arriving while an identical
// one is in flight receives the leader's result, marked coalesced and
// otherwise byte-identical. The batch window holds the leader open so
// the follower's arrival is deterministic.
func TestCoalescedJoinMatchesSolo(t *testing.T) {
	cat, _ := testCatalog(t)
	srv := NewServer(cat)
	srv.BatchWindow = 500 * time.Millisecond
	h := srv.Handler()

	const u = "/join?r=R&s=S&plan=off"
	var leader, follower string
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		leader = getBody(t, h, u, http.StatusOK)
	}()
	time.Sleep(150 * time.Millisecond) // the leader is now inside its batch window
	go func() {
		defer wg.Done()
		follower = getBody(t, h, u, http.StatusOK)
	}()
	wg.Wait()

	if !strings.Contains(follower, `"coalesced": true`) {
		t.Fatal("concurrent identical request was not coalesced")
	}
	if stripMarkers(follower) != stripMarkers(leader) {
		t.Fatalf("coalesced response differs from the leader's:\nleader:   %s\nfollower: %s", leader, follower)
	}
}

// TestBatchedJoinsMatchSolo: two concurrent joins with different
// predicates over the same relation pair share one synchronized
// traversal (the batch window groups them) and each still answers
// byte-identically to its solo run on an unbatched, uncached server.
func TestBatchedJoinsMatchSolo(t *testing.T) {
	cat, _ := testCatalog(t)
	srv := NewServer(cat)
	srv.BatchWindow = 500 * time.Millisecond
	h := srv.Handler()
	soloSrv := NewServer(cat)
	soloSrv.CacheBytes = -1
	solo := soloSrv.Handler()

	u1 := "/join?r=R&s=S&plan=off"
	u2 := "/join?r=R&s=S&predicate=contains&plan=off"
	var b1, b2 string
	var wg sync.WaitGroup
	wg.Add(2)
	go func() {
		defer wg.Done()
		b1 = getBody(t, h, u1, http.StatusOK)
	}()
	time.Sleep(150 * time.Millisecond) // u1 opened the batch; u2 joins it
	go func() {
		defer wg.Done()
		b2 = getBody(t, h, u2, http.StatusOK)
	}()
	wg.Wait()

	var st serveStats
	get(t, h, "/stats", http.StatusOK, &st)
	if st.Batch.Batched < 2 {
		t.Fatalf("batch stats report %d batched requests, want >= 2", st.Batch.Batched)
	}
	if got, want := stripMarkers(b1), getBody(t, solo, u1, http.StatusOK); got != want {
		t.Errorf("batched intersects join differs from solo:\nbatched: %s\nsolo:    %s", got, want)
	}
	if got, want := stripMarkers(b2), getBody(t, solo, u2, http.StatusOK); got != want {
		t.Errorf("batched contains join differs from solo:\nbatched: %s\nsolo:    %s", got, want)
	}
}

// TestStatsEndpoint: /stats exposes the cache, coalesce and batch
// counters, and the cache-lookup feedback reaches the relations'
// planner statistics.
func TestStatsEndpoint(t *testing.T) {
	cat, _ := testCatalog(t)
	h := NewServer(cat).Handler()

	var st serveStats
	get(t, h, "/stats", http.StatusOK, &st)
	if st.Cache.MaxBytes != DefaultCacheBytes || st.Cache.Entries != 0 || st.Cache.Hits != 0 {
		t.Fatalf("fresh stats = %+v", st)
	}

	const u = "/join?r=R&s=S&limit=3"
	getBody(t, h, u, http.StatusOK)
	get(t, h, "/stats", http.StatusOK, &st)
	if st.Cache.Misses == 0 || st.Cache.Entries == 0 || st.Cache.Bytes == 0 {
		t.Fatalf("stats after a cold join = %+v", st)
	}
	getBody(t, h, u, http.StatusOK)
	get(t, h, "/stats", http.StatusOK, &st)
	if st.Cache.Hits == 0 {
		t.Fatalf("stats after a warm join = %+v", st)
	}

	// The lookup feedback drives the planner's cache-hit EWMA on every
	// tile of the involved relations.
	e, _ := cat.Get("R")
	if e.Sh.Tiles[0].Rel.Stats.CacheHitRate() <= 0 {
		t.Fatal("cache lookups did not reach the planner feedback EWMA")
	}
}

// TestCacheEvictionBudget: a tiny byte budget stays respected under a
// stream of distinct queries — entries are evicted, never over-filled.
func TestCacheEvictionBudget(t *testing.T) {
	cat, _ := testCatalog(t)
	srv := NewServer(cat)
	srv.CacheBytes = 1500
	h := srv.Handler()

	for i := 0; i < 12; i++ {
		x := 0.05 + float64(i)*0.07
		getBody(t, h, "/point?rel=R&x="+trimFloat(x)+"&y=0.5&plan=off", http.StatusOK)
	}
	var st serveStats
	get(t, h, "/stats", http.StatusOK, &st)
	if st.Cache.Bytes > st.Cache.MaxBytes {
		t.Fatalf("cache over budget: %d > %d", st.Cache.Bytes, st.Cache.MaxBytes)
	}
	if st.Cache.Evictions == 0 {
		t.Fatalf("no evictions under a %d-byte budget: %+v", srv.CacheBytes, st)
	}
}

func trimFloat(v float64) string {
	return strings.TrimRight(strings.TrimRight(fmtFloat(v), "0"), ".")
}

// TestWindowLimit: the new limit parameter of /window and /point is
// the sorted prefix of the unlimited response, with the result count
// and truncation marker derived per request.
func TestWindowLimit(t *testing.T) {
	cat, _ := testCatalog(t)
	h := NewServer(cat).Handler()

	var full, limited windowResponse
	get(t, h, "/window?rel=R&minx=0.2&miny=0.2&maxx=0.45&maxy=0.4&plan=off", http.StatusOK, &full)
	if len(full.IDs) < 4 || full.Truncated {
		t.Fatalf("full window = %+v", full)
	}
	get(t, h, "/window?rel=R&minx=0.2&miny=0.2&maxx=0.45&maxy=0.4&limit=3&plan=off", http.StatusOK, &limited)
	if !limited.Cached {
		t.Fatal("limit variant missed the limit-insensitive cache key")
	}
	if !reflect.DeepEqual(limited.IDs, full.IDs[:3]) || !limited.Truncated {
		t.Fatalf("limited window = %+v", limited)
	}
	if limited.Stats.ResultObjects != 3 || limited.Stats.Candidates != full.Stats.Candidates {
		t.Fatalf("limited window stats = %+v", limited.Stats)
	}
}
