// Package benchfmt is the schema of the repository's versioned
// measurement files (BENCH_*.json) — the performance trajectory every
// PR appends comparable numbers to. It started life inside cmd/bench;
// it lives here so the service-level load harness (cmd/loadtest) can
// append its closed-loop runs to the same trajectory and `cmd/bench
// -check` can validate every producer's output with one schema.
//
// A file holds one entry per labelled run; WriteRun replaces a run by
// label, so re-measuring on the same machine updates in place. Two row
// shapes share the Result struct: the single-process join workloads of
// cmd/bench (wall ns/op, pairs/sec, allocs) and the service-level rows
// of cmd/loadtest (QPS and latency percentiles per query class at a
// scale factor). Fields not applicable to a row are zero and omitted.
package benchfmt

import (
	"encoding/json"
	"fmt"
	"os"

	"spatialjoin/internal/procinfo"
)

// Version is the schema version of the emitted JSON.
const Version = 1

// File is the on-disk measurement file: one entry per labelled run.
type File struct {
	Version   int    `json:"version"`
	Benchmark string `json:"benchmark"`
	Runs      []Run  `json:"runs"`
}

// Run is one invocation of a measurement harness on one build.
type Run struct {
	Label        string   `json:"label"`
	Commit       string   `json:"commit,omitempty"`
	Date         string   `json:"date"`
	GoVersion    string   `json:"go_version"`
	GOMAXPROCS   int      `json:"gomaxprocs"`
	CPU          string   `json:"cpu,omitempty"`
	Workload     Workload `json:"workload"`
	PeakRSSBytes int64    `json:"peak_rss_bytes,omitempty"`
	Results      []Result `json:"results"`
}

// Workload records the dataset parameters of a run. The join grid
// fills Objects/Verts/Seed; load-harness runs additionally record the
// scale factor and loop shape that produced the rows.
type Workload struct {
	Objects  int     `json:"objects_per_relation"`
	Verts    int     `json:"avg_vertices"`
	Seed     int64   `json:"seed"`
	Epsilon  float64 `json:"epsilon"`
	Reps     int     `json:"reps"`
	Shifted  float64 `json:"strategy_a_shift"`
	PageSize int     `json:"page_size"`
	// ScaleFactor is the loadgen SF of a service-level run (0 for the
	// single-process join grid).
	ScaleFactor float64 `json:"scale_factor,omitempty"`
	// Mode is the load-loop shape of a service-level run: "closed" or
	// "open".
	Mode string `json:"mode,omitempty"`
	// Workers is the client worker count of a service-level run.
	Workers int `json:"load_workers,omitempty"`
	// DurationSec is the measured window of a service-level run.
	DurationSec float64 `json:"duration_sec,omitempty"`
}

// Result is one measured workload cell.
type Result struct {
	Name           string  `json:"name"`
	Predicate      string  `json:"predicate"`
	Engine         string  `json:"engine"`
	Workers        int     `json:"workers"`
	Shards         int     `json:"shards,omitempty"`
	WallNsPerOp    float64 `json:"wall_ns_per_op"`
	ResultPairs    int64   `json:"result_pairs"`
	CandidatePairs int64   `json:"candidate_pairs"`
	PairsPerSec    float64 `json:"pairs_per_sec"`
	NsPerCandidate float64 `json:"ns_per_candidate"`
	AllocsPerOp    float64 `json:"allocs_per_op"`
	BytesPerOp     float64 `json:"bytes_per_op"`
	// Planned marks a planner-chosen cell (-planner mode): Engine and
	// Workers then record the planner's choice, not a pinned setting.
	Planned bool `json:"planned,omitempty"`
	// NoFilter marks a static cell measured with the geometric filter
	// switched off at query time.
	NoFilter bool `json:"no_filter,omitempty"`
	// QPS and CacheHitRate report serving-layer cells: requests served
	// per second, and the fraction answered from the result cache.
	QPS          float64 `json:"qps,omitempty"`
	CacheHitRate float64 `json:"cache_hit_rate,omitempty"`

	// The service-level fields of a cmd/loadtest row: one row per query
	// class (join/window/point/nearest, or "all"), latencies from the
	// harness-side histogram.
	Class    string `json:"class,omitempty"`
	Requests int64  `json:"requests,omitempty"`
	Errors   int64  `json:"errors,omitempty"`
	// Shed, TimedOut and Degraded are the resilience outcomes of a
	// loadtest row — 429s from admission control, 504s from fired
	// server-side deadlines, and partial 200s after tile failure. They
	// are not errors: a shedding server under overload is behaving.
	Shed     int64   `json:"shed,omitempty"`
	TimedOut int64   `json:"timed_out,omitempty"`
	Degraded int64   `json:"degraded,omitempty"`
	P50Ms    float64 `json:"p50_ms,omitempty"`
	P95Ms    float64 `json:"p95_ms,omitempty"`
	P99Ms    float64 `json:"p99_ms,omitempty"`
	MaxMs    float64 `json:"max_ms,omitempty"`
	// CacheOn records whether the serving layer's result cache was
	// enabled for this row.
	CacheOn bool `json:"cache_on,omitempty"`
	// ServerRSSBytes is the peak server RSS sampled over the run.
	ServerRSSBytes int64 `json:"server_rss_bytes,omitempty"`
}

// WriteRun loads the measurement file if it exists, replaces or appends
// the run by label, and writes the file back.
func WriteRun(path string, run Run) error {
	f := File{Version: Version, Benchmark: "spatialjoin multi-step join workloads"}
	if raw, err := os.ReadFile(path); err == nil {
		if err := json.Unmarshal(raw, &f); err != nil {
			return fmt.Errorf("existing %s is not a measurement file: %w", path, err)
		}
	}
	replaced := false
	for i := range f.Runs {
		if f.Runs[i].Label == run.Label {
			f.Runs[i] = run
			replaced = true
			break
		}
	}
	if !replaced {
		f.Runs = append(f.Runs, run)
	}
	f.Version = Version
	raw, err := json.MarshalIndent(f, "", "  ")
	if err != nil {
		return err
	}
	return os.WriteFile(path, append(raw, '\n'), 0o644)
}

// Validate parses a measurement file and checks the schema invariants
// CI relies on: a known version, at least one run, and non-empty
// results each carrying a name and either a positive wall time (join
// grid rows) or a positive request count (service-level rows).
func Validate(path string) error {
	raw, err := os.ReadFile(path)
	if err != nil {
		return err
	}
	var f File
	if err := json.Unmarshal(raw, &f); err != nil {
		return fmt.Errorf("%s: %w", path, err)
	}
	if f.Version != Version {
		return fmt.Errorf("%s: version %d, want %d", path, f.Version, Version)
	}
	if len(f.Runs) == 0 {
		return fmt.Errorf("%s: no runs", path)
	}
	for _, r := range f.Runs {
		if r.Label == "" {
			return fmt.Errorf("%s: run without a label", path)
		}
		if len(r.Results) == 0 {
			return fmt.Errorf("%s: run %q has no results", path, r.Label)
		}
		for _, res := range r.Results {
			if res.Name == "" {
				return fmt.Errorf("%s: run %q has a result without a name", path, r.Label)
			}
			if res.WallNsPerOp <= 0 && res.Requests <= 0 {
				return fmt.Errorf("%s: run %q result %q has neither a wall time nor a request count",
					path, r.Label, res.Name)
			}
			if res.Requests > 0 && res.Errors == res.Requests {
				return fmt.Errorf("%s: run %q result %q: every request errored", path, r.Label, res.Name)
			}
		}
	}
	return nil
}

// PeakRSS returns the peak resident set size of this process (Linux
// VmHWM, in bytes), or 0 where /proc is unavailable.
func PeakRSS() int64 { return procinfo.PeakRSS() }

// CurrentRSS returns the current resident set size of this process
// (Linux VmRSS, in bytes), or 0 where /proc is unavailable.
func CurrentRSS() int64 { return procinfo.CurrentRSS() }

// CPUModel returns the CPU model name (Linux /proc/cpuinfo), or "".
func CPUModel() string { return procinfo.CPUModel() }
