package experiments

import (
	"fmt"
	"math"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/data"
	"spatialjoin/internal/geom"
)

// Figure2 reproduces the relation characteristics of Figure 2: number of
// objects and vertex statistics of the Europe and BW analogs.
func Figure2(e *Env) *Table {
	t := &Table{
		Title:  "Figure 2 — analysed spatial relations (synthetic analogs)",
		Header: []string{"relation", "#objects", "m_avg", "m_min", "m_max", "with holes"},
	}
	for _, rel := range []struct {
		name  string
		polys []*geom.Polygon
	}{{"Europe", e.Europe()}, {"BW", e.BW()}} {
		st := data.Stats(rel.polys)
		t.AddRow(rel.name, fmt.Sprint(st.Objects), fmt.Sprintf("%.0f", st.Avg),
			fmt.Sprint(st.Min), fmt.Sprint(st.Max), fmt.Sprint(st.WithHoles))
	}
	t.Comment = "Paper: Europe 810 objects m∅=84 (4..869); BW 374 objects m∅=527 (6..2087)."
	return t
}

// Table1 reproduces Table 1: the false area of the MBR normalized to the
// object area (average, minimum, maximum) for both relations.
func Table1(e *Env) *Table {
	t := &Table{
		Title:  "Table 1 — normalized false area of the MBR",
		Header: []string{"relation", "avg", "min", "max"},
	}
	for _, rel := range []struct {
		name  string
		polys []*geom.Polygon
	}{{"Europe", e.Europe()}, {"BW", e.BW()}} {
		sum, mn, mx := 0.0, math.Inf(1), math.Inf(-1)
		for _, p := range rel.polys {
			fa := (p.Bounds().Area() - p.Area()) / p.Area()
			sum += fa
			mn = math.Min(mn, fa)
			mx = math.Max(mx, fa)
		}
		t.AddRow(rel.name, f2(sum/float64(len(rel.polys))), f2(mn), f2(mx))
	}
	t.Comment = "Paper: Europe 0.91 (0.25..20.13); BW 1.02 (0.38..3.48)."
	return t
}

// Table2 reproduces Table 2: per test series the number of intersecting
// MBR pairs, hits and false hits.
func Table2(e *Env) *Table {
	t := &Table{
		Title:  "Table 2 — test series of the approximation joins",
		Header: []string{"series", "#intersecting MBRs", "#hits", "#false hits", "false-hit share %"},
	}
	for _, sd := range e.Series() {
		t.AddRow(sd.Name, fmt.Sprint(len(sd.Pairs)), fmt.Sprint(sd.Hits),
			fmt.Sprint(sd.FalseHits()), pct(sd.FalseHits(), len(sd.Pairs)))
	}
	t.Comment = "Paper: ~31–33 % of the MBR-join pairs are false hits in all four series."
	return t
}

// Table3 reproduces Table 3: the percentage of false hits identified by
// each conservative approximation after the MBR-join.
func Table3(e *Env) *Table {
	t := &Table{
		Title:  "Table 3 — false hits identified by conservative approximations (%)",
		Header: []string{"series", "MBC", "MBE", "RMBR", "4-C", "5-C", "CH"},
	}
	for _, sd := range e.Series() {
		row := []string{sd.Name}
		for _, k := range approx.ConservativeKinds {
			identified := 0
			for _, p := range sd.Pairs {
				if p.Hit {
					continue
				}
				if !approx.ConservativeIntersects(k, sd.SetsR[p.I], sd.SetsS[p.J]) {
					identified++
				}
			}
			row = append(row, pct(identified, sd.FalseHits()))
		}
		t.AddRow(row...)
	}
	t.Comment = "Paper: MBC ≈ 17–19, MBE ≈ 42–44, RMBR ≈ 36–45, 4-C ≈ 51–59, 5-C ≈ 65–70, CH ≈ 80–83."
	return t
}

// Table4 reproduces Table 4: the percentage of hits identified by the
// false-area test with each conservative approximation.
func Table4(e *Env) *Table {
	kinds := []approx.Kind{approx.MBR, approx.RMBR, approx.C4, approx.C5, approx.CH}
	t := &Table{
		Title:  "Table 4 — hits identified by the false-area test (%)",
		Header: []string{"series", "MBR", "RMBR", "4-C", "5-C", "CH"},
	}
	for _, sd := range e.Series() {
		row := []string{sd.Name}
		for _, k := range kinds {
			identified := 0
			for _, p := range sd.Pairs {
				if !p.Hit {
					continue
				}
				if approx.FalseAreaHit(k, sd.SetsR[p.I], sd.SetsS[p.J]) {
					identified++
				}
			}
			row = append(row, pct(identified, sd.Hits))
		}
		t.AddRow(row...)
	}
	t.Comment = "Paper: ≈ 0 for the MBR, ≈ 5–8 for the 5-C, ≈ 9–13 for the CH."
	return t
}

// Table5 reproduces Table 5: the percentage of hits identified by the
// progressive approximations.
func Table5(e *Env) *Table {
	t := &Table{
		Title:  "Table 5 — hits identified by progressive approximations (%)",
		Header: []string{"series", "MEC", "MER"},
	}
	for _, sd := range e.Series() {
		row := []string{sd.Name}
		for _, k := range approx.ProgressiveKinds {
			identified := 0
			for _, p := range sd.Pairs {
				if !p.Hit {
					continue
				}
				if approx.ProgressiveIntersects(k, sd.SetsR[p.I], sd.SetsS[p.J]) {
					identified++
				}
			}
			row = append(row, pct(identified, sd.Hits))
		}
		t.AddRow(row...)
	}
	t.Comment = "Paper: MEC ≈ 31–33, MER ≈ 34–36."
	return t
}

// Figure4 reproduces Figure 4: the average MBR-based false area of each
// conservative approximation, normalized to the object area.
func Figure4(e *Env) *Table {
	kinds := []approx.Kind{approx.CH, approx.C5, approx.C4, approx.RMBR, approx.MBE, approx.MBC, approx.MBR}
	t := &Table{
		Title:  "Figure 4 — MBR-based false area normalized to object area (average)",
		Header: []string{"approximation", "Europe", "BW"},
	}
	sets := map[string][]*approx.Set{}
	opt := approx.Options{Conservative: []approx.Kind{approx.RMBR, approx.CH, approx.C4, approx.C5, approx.MBC, approx.MBE}}
	sets["Europe"] = computeSets(e.Europe(), opt)
	sets["BW"] = computeSets(e.BW(), opt)
	for _, k := range kinds {
		name := k.String()
		if k == approx.MBR {
			name = "only MBR"
		}
		row := []string{name}
		for _, rel := range []string{"Europe", "BW"} {
			var sum float64
			for _, s := range sets[rel] {
				sum += s.MBRBasedFalseArea(k)
			}
			row = append(row, f2(sum/float64(len(sets[rel]))))
		}
		t.AddRow(row...)
	}
	t.Comment = "Paper ordering: CH < 5-C < 4-C < RMBR ≈ MBE < MBC < only MBR (≈ 0.9–1.0)."
	return t
}

// Figure5Point is one point of the Figure 5 scatter: an approximation's
// average MBR-based false area against the share of false hits it
// identifies, for the Europe B series.
type Figure5Point struct {
	Kind          string
	FalseArea     float64
	IdentifiedPct float64
}

// Figure5 reproduces Figure 5 for the Europe B series.
func Figure5(e *Env) *Table {
	sd := e.SeriesByName("Europe B")
	kinds := []approx.Kind{approx.MBR, approx.MBC, approx.MBE, approx.RMBR, approx.C4, approx.C5, approx.CH}
	t := &Table{
		Title:  "Figure 5 — MBR-based false area vs identified false hits (Europe B)",
		Header: []string{"approximation", "avg false area", "identified false hits %"},
	}
	for _, k := range kinds {
		var sum float64
		for _, s := range sd.SetsR {
			sum += s.MBRBasedFalseArea(k)
		}
		for _, s := range sd.SetsS {
			sum += s.MBRBasedFalseArea(k)
		}
		fa := sum / float64(len(sd.SetsR)+len(sd.SetsS))
		identified := 0
		if k != approx.MBR {
			for _, p := range sd.Pairs {
				if !p.Hit && !approx.ConservativeIntersects(k, sd.SetsR[p.I], sd.SetsS[p.J]) {
					identified++
				}
			}
		}
		t.AddRow(k.String(), f2(fa), pct(identified, sd.FalseHits()))
	}
	t.AddRow("object", "0.00", "100.0")
	t.Comment = "Paper: near-linear dependency for MBR/MBC/RMBR/4-C; 5-C, MBE and CH lie above the line."
	return t
}

// Figure8 reproduces Figure 8: the area of the progressive approximations
// normalized to the object area.
func Figure8(e *Env) *Table {
	t := &Table{
		Title:  "Figure 8 — approximation quality of progressive approximations (area ratio)",
		Header: []string{"relation", "MEC", "MER"},
	}
	opt := approx.Options{Progressive: []approx.Kind{approx.MEC, approx.MER}, MECPrecision: 2e-3}
	for _, rel := range []struct {
		name  string
		polys []*geom.Polygon
	}{{"Europe", e.Europe()}, {"BW", e.BW()}} {
		sets := computeSets(rel.polys, opt)
		var mec, mer float64
		for _, s := range sets {
			mec += s.ProgressiveQuality(approx.MEC)
			mer += s.ProgressiveQuality(approx.MER)
		}
		n := float64(len(sets))
		t.AddRow(rel.name, f2(mec/n), f2(mer/n))
	}
	t.Comment = "Paper: MEC 0.42 / 0.42 and MER 0.43 / 0.45 (Europe / BW)."
	return t
}

// Figure12 reproduces Figure 12: the division of the BW A candidate set
// into identified hits (MER test), identified false hits (5-corner test)
// and non-identified pairs.
func Figure12(e *Env) *Table {
	sd := e.SeriesByName("BW A")
	identifiedFalse, identifiedHits := 0, 0
	nonIdentifiedFalse, nonIdentifiedHits := 0, 0
	for _, p := range sd.Pairs {
		a, b := sd.SetsR[p.I], sd.SetsS[p.J]
		if !approx.ConservativeIntersects(approx.C5, a, b) {
			identifiedFalse++
			continue
		}
		if approx.ProgressiveIntersects(approx.MER, a, b) {
			identifiedHits++
			continue
		}
		if p.Hit {
			nonIdentifiedHits++
		} else {
			nonIdentifiedFalse++
		}
	}
	n := len(sd.Pairs)
	t := &Table{
		Title:  "Figure 12 — identified and non-identified hits and false hits (BW A, 5-C + MER)",
		Header: []string{"class", "pairs", "share %"},
	}
	t.AddRow("identified false hits (5-corner)", fmt.Sprint(identifiedFalse), pct(identifiedFalse, n))
	t.AddRow("identified hits (MER)", fmt.Sprint(identifiedHits), pct(identifiedHits, n))
	t.AddRow("non-identified false hits", fmt.Sprint(nonIdentifiedFalse), pct(nonIdentifiedFalse, n))
	t.AddRow("non-identified hits", fmt.Sprint(nonIdentifiedHits), pct(nonIdentifiedHits, n))
	t.AddRow("identified total", fmt.Sprint(identifiedFalse+identifiedHits), pct(identifiedFalse+identifiedHits, n))
	t.Comment = "Paper: 23 % identified false hits + 23 % identified hits = 46 % identified."
	return t
}
