package experiments

import (
	"fmt"
	"strings"
)

// Table is a simple aligned text table used by all experiment reports.
type Table struct {
	Title   string
	Header  []string
	Rows    [][]string
	Comment string
}

// AddRow appends one formatted row.
func (t *Table) AddRow(cells ...string) { t.Rows = append(t.Rows, cells) }

// String renders the table with aligned columns.
func (t *Table) String() string {
	var b strings.Builder
	if t.Title != "" {
		fmt.Fprintf(&b, "%s\n", t.Title)
	}
	widths := make([]int, len(t.Header))
	for i, h := range t.Header {
		widths[i] = len(h)
	}
	for _, row := range t.Rows {
		for i, c := range row {
			if i < len(widths) && len(c) > widths[i] {
				widths[i] = len(c)
			}
		}
	}
	line := func(cells []string) {
		for i, c := range cells {
			if i > 0 {
				b.WriteString("  ")
			}
			fmt.Fprintf(&b, "%-*s", widths[minInt(i, len(widths)-1)], c)
		}
		b.WriteByte('\n')
	}
	line(t.Header)
	total := 0
	for _, w := range widths {
		total += w + 2
	}
	b.WriteString(strings.Repeat("-", maxInt(4, total-2)))
	b.WriteByte('\n')
	for _, row := range t.Rows {
		line(row)
	}
	if t.Comment != "" {
		fmt.Fprintf(&b, "%s\n", t.Comment)
	}
	return b.String()
}

func minInt(a, b int) int {
	if a < b {
		return a
	}
	return b
}

func maxInt(a, b int) int {
	if a > b {
		return a
	}
	return b
}

func pct(num, den int) string {
	if den == 0 {
		return "n/a"
	}
	return fmt.Sprintf("%.1f", 100*float64(num)/float64(den))
}

func f2(v float64) string { return fmt.Sprintf("%.2f", v) }
