package experiments

import (
	"fmt"
	"math/rand"
	"time"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/decomp"
	"spatialjoin/internal/exact"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/ops"
	"spatialjoin/internal/trstar"
)

// MeasureWeights times the six geometric primitives of Table 6 on the
// host, returning seconds per operation. The paper measured them on an
// HP 720 workstation; the ratios, not the absolute values, drive all
// weighted-cost comparisons.
func MeasureWeights() ops.Weights {
	rng := rand.New(rand.NewSource(271))
	const n = 4096
	segs := make([]geom.Segment, n)
	rects := make([]geom.Rect, n)
	traps := make([]decomp.Trapezoid, n)
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		segs[i] = geom.Segment{
			A: geom.Point{X: rng.Float64(), Y: rng.Float64()},
			B: geom.Point{X: rng.Float64(), Y: rng.Float64()},
		}
		x, y := rng.Float64(), rng.Float64()
		rects[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + rng.Float64()*0.2, MaxY: y + rng.Float64()*0.2}
		x2 := x + 0.1
		traps[i] = decomp.Trapezoid{P: [4]geom.Point{
			{X: x, Y: y}, {X: x2, Y: y + rng.Float64()*0.05},
			{X: x2, Y: y + 0.1 + rng.Float64()*0.05}, {X: x, Y: y + 0.1},
		}}
		pts[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	var sink bool
	timeOp := func(f func(i int)) float64 {
		const reps = 200000
		start := time.Now()
		for i := 0; i < reps; i++ {
			f(i & (n - 1))
		}
		return time.Since(start).Seconds() / reps
	}
	w := ops.Weights{}
	w.EdgeIntersection = timeOp(func(i int) { sink = segs[i].Intersects(segs[(i+1)&(n-1)]) })
	w.EdgeLine = timeOp(func(i int) {
		// One step of the point-in-polygon crossing test.
		e := segs[i]
		p := pts[(i+1)&(n-1)]
		if (e.A.Y > p.Y) != (e.B.Y > p.Y) {
			xint := e.A.X + (p.Y-e.A.Y)*(e.B.X-e.A.X)/(e.B.Y-e.A.Y)
			sink = p.X < xint
		}
	})
	w.Position = timeOp(func(i int) {
		x := pts[i].X
		sink = segs[i].YAt(x) < segs[(i+1)&(n-1)].YAt(x)
	})
	w.EdgeRect = timeOp(func(i int) { sink = segs[i].IntersectsRect(rects[(i+1)&(n-1)]) })
	w.RectIntersection = timeOp(func(i int) { sink = rects[i].Intersects(rects[(i+1)&(n-1)]) })
	w.TrapIntersection = timeOp(func(i int) { sink = traps[i].Intersects(traps[(i+1)&(n-1)]) })
	_ = sink
	return w
}

// Table6 reports the paper's operation weights next to host-measured ones.
func Table6() *Table {
	host := MeasureWeights()
	paper := ops.PaperWeights()
	t := &Table{
		Title:  "Table 6 — weights of the geometric operations (µs)",
		Header: []string{"operation", "paper (HP 720)", "host-measured"},
	}
	rows := []struct {
		name         string
		paper, hostV float64
	}{
		{"edge intersection test", paper.EdgeIntersection, host.EdgeIntersection},
		{"edge-line intersection test", paper.EdgeLine, host.EdgeLine},
		{"position test", paper.Position, host.Position},
		{"edge-rectangle intersection test", paper.EdgeRect, host.EdgeRect},
		{"rectangle intersection test", paper.RectIntersection, host.RectIntersection},
		{"trapezoid intersection test", paper.TrapIntersection, host.TrapIntersection},
	}
	for _, r := range rows {
		t.AddRow(r.name, fmt.Sprintf("%.0f", r.paper*1e6), fmt.Sprintf("%.3f", r.hostV*1e6))
	}
	t.Comment = "Weighted costs below always use the paper's weights so shapes are comparable."
	return t
}

// remainingPairs returns the candidate pairs of a series that survive the
// geometric filter used in section 4.3: the 5-corner test for false hits
// and the MEC test for hits.
func remainingPairs(sd *SeriesData) []PairInfo {
	var out []PairInfo
	for _, p := range sd.Pairs {
		a, b := sd.SetsR[p.I], sd.SetsS[p.J]
		if !approx.ConservativeIntersects(approx.C5, a, b) {
			continue // identified false hit
		}
		if approx.ProgressiveIntersects(approx.MEC, a, b) {
			continue // identified hit
		}
		out = append(out, p)
	}
	return out
}

// Table7Result carries the measured numbers of Table 7 for assertions.
type Table7Result struct {
	Series    string
	Hits      int
	FalseHits int
	// Cost per pair in seconds (paper weights) per algorithm and class,
	// plus the total over all remaining pairs.
	CostPerHit      map[string]float64
	CostPerFalseHit map[string]float64
	Total           map[string]float64
}

// quadraticSampleCap bounds how many pairs the quadratic baseline actually
// executes per class; its per-pair cost is an average over the sample and
// the total is extrapolated. The paper itself calls the algorithm "out of
// question"; sampling keeps the experiment runnable on the BW relation
// (527-vertex objects make the full quadratic run quadratically painful).
const quadraticSampleCap = 120

// Table7 reproduces Table 7: the cost of the three exact intersection
// algorithms on the candidate pairs remaining after the geometric filter
// (5-C + MEC) for the Europe A and BW A series.
func Table7(e *Env) (*Table, []Table7Result) {
	w := ops.PaperWeights()
	t := &Table{
		Title: "Table 7 — cost of the exact intersection algorithms (paper weights)",
		Header: []string{"series", "algorithm", "#hits", "cost/hit ms", "#false hits",
			"cost/false ms", "total s"},
	}
	var results []Table7Result
	for _, name := range []string{"Europe A", "BW A"} {
		sd := e.SeriesByName(name)
		rem := remainingPairs(sd)
		res := Table7Result{
			Series:          name,
			CostPerHit:      map[string]float64{},
			CostPerFalseHit: map[string]float64{},
			Total:           map[string]float64{},
		}
		for _, p := range rem {
			if p.Hit {
				res.Hits++
			} else {
				res.FalseHits++
			}
		}

		algos := []struct {
			name   string
			sample int
			run    func(p PairInfo, c *ops.Counters)
		}{
			{"quadratic", quadraticSampleCap, func(p PairInfo, c *ops.Counters) {
				exact.QuadraticIntersects(exact.Prepare(sd.R[p.I]), exact.Prepare(sd.S[p.J]), c)
			}},
			{"plane-sweep", 0, func(p PairInfo, c *ops.Counters) {
				exact.PlaneSweepIntersects(exact.Prepare(sd.R[p.I]), exact.Prepare(sd.S[p.J]), true, c)
			}},
			{"TR*-tree", 0, func(p PairInfo, c *ops.Counters) {
				trstar.Intersects(e.Tree(sd, 'R', p.I, 3), e.Tree(sd, 'S', p.J, 3), c)
			}},
		}
		for _, algo := range algos {
			var hitCost, falseCost float64
			hitN, falseN := 0, 0
			for _, p := range rem {
				if algo.sample > 0 {
					if p.Hit && hitN >= algo.sample {
						continue
					}
					if !p.Hit && falseN >= algo.sample {
						continue
					}
				}
				var c ops.Counters
				algo.run(p, &c)
				cost := c.Cost(w)
				if p.Hit {
					hitCost += cost
					hitN++
				} else {
					falseCost += cost
					falseN++
				}
			}
			perHit, perFalse := 0.0, 0.0
			if hitN > 0 {
				perHit = hitCost / float64(hitN)
			}
			if falseN > 0 {
				perFalse = falseCost / float64(falseN)
			}
			total := perHit*float64(res.Hits) + perFalse*float64(res.FalseHits)
			res.CostPerHit[algo.name] = perHit
			res.CostPerFalseHit[algo.name] = perFalse
			res.Total[algo.name] = total
			t.AddRow(name, algo.name, fmt.Sprint(res.Hits), fmt.Sprintf("%.2f", perHit*1e3),
				fmt.Sprint(res.FalseHits), fmt.Sprintf("%.2f", perFalse*1e3),
				fmt.Sprintf("%.2f", total))
		}
		results = append(results, res)
	}
	t.Comment = "Paper shape: quadratic ≫ plane-sweep ≫ TR*-tree (≥ one order of magnitude each on BW A).\n" +
		"Quadratic per-pair costs are averaged over a sample of the remaining pairs (see quadraticSampleCap)."
	return t, results
}

// Figure16Bin is one x-bucket of the Figure 16 scatter.
type Figure16Bin struct {
	EdgesUpTo  int
	PlaneSweep float64 // average cost per pair, seconds
	TRStar     float64
	Pairs      int
}

// Figure16 reproduces Figure 16: the cost of deciding one BW A pair as a
// function of the total number of edges, for the plane sweep (with
// search-space restriction) and the TR*-tree.
func Figure16(e *Env) (*Table, []Figure16Bin) {
	w := ops.PaperWeights()
	sd := e.SeriesByName("BW A")
	rem := remainingPairs(sd)
	const nBins = 8
	maxEdges := 0
	type sample struct {
		edges  int
		ps, tr float64
	}
	var samples []sample
	for _, p := range rem {
		edges := sd.R[p.I].NumEdges() + sd.S[p.J].NumEdges()
		if edges > maxEdges {
			maxEdges = edges
		}
		var cps, ctr ops.Counters
		exact.PlaneSweepIntersects(exact.Prepare(sd.R[p.I]), exact.Prepare(sd.S[p.J]), true, &cps)
		trstar.Intersects(e.Tree(sd, 'R', p.I, 3), e.Tree(sd, 'S', p.J, 3), &ctr)
		samples = append(samples, sample{edges: edges, ps: cps.Cost(w), tr: ctr.Cost(w)})
	}
	bins := make([]Figure16Bin, nBins)
	for _, s := range samples {
		b := s.edges * nBins / (maxEdges + 1)
		bins[b].Pairs++
		bins[b].PlaneSweep += s.ps
		bins[b].TRStar += s.tr
		bins[b].EdgesUpTo = (b + 1) * (maxEdges + 1) / nBins
	}
	t := &Table{
		Title:  "Figure 16 — cost of intersecting a pair of polygons vs Σ edges (BW A)",
		Header: []string{"edges ≤", "pairs", "plane-sweep ms/pair", "TR*-tree ms/pair"},
	}
	for i := range bins {
		if bins[i].Pairs == 0 {
			continue
		}
		bins[i].PlaneSweep /= float64(bins[i].Pairs)
		bins[i].TRStar /= float64(bins[i].Pairs)
		t.AddRow(fmt.Sprint(bins[i].EdgesUpTo), fmt.Sprint(bins[i].Pairs),
			fmt.Sprintf("%.2f", bins[i].PlaneSweep*1e3), fmt.Sprintf("%.2f", bins[i].TRStar*1e3))
	}
	t.Comment = "Paper: plane-sweep cost grows strongly with the edge count; TR*-tree cost barely depends on it."
	return t, bins
}

// Figure17Row is one node capacity of the Figure 17 comparison.
type Figure17Row struct {
	M         int
	RectTests int64
	TrapTests int64
}

// Figure17 reproduces Figure 17: the number of rectangle and trapezoid
// intersection tests of the TR*-tree join over the BW A remaining pairs
// for maximum node capacities 3, 4 and 5.
func Figure17(e *Env) (*Table, []Figure17Row) {
	sd := e.SeriesByName("BW A")
	rem := remainingPairs(sd)
	t := &Table{
		Title:  "Figure 17 — TR*-tree performance for different maximum node capacities (BW A)",
		Header: []string{"M", "#rectangle tests", "#trapezoid tests"},
	}
	var rows []Figure17Row
	for _, m := range []int{3, 4, 5} {
		var c ops.Counters
		for _, p := range rem {
			trstar.Intersects(e.Tree(sd, 'R', p.I, m), e.Tree(sd, 'S', p.J, m), &c)
		}
		rows = append(rows, Figure17Row{M: m, RectTests: c.RectIntersection, TrapTests: c.TrapIntersection})
		t.AddRow(fmt.Sprint(m), fmt.Sprint(c.RectIntersection), fmt.Sprint(c.TrapIntersection))
	}
	t.Comment = "Paper: both counts are minimal for M = 3."
	return t, rows
}
