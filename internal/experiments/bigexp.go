package experiments

import (
	"fmt"
	"math/rand"
	"sync"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/convex"
	"spatialjoin/internal/costmodel"
	"spatialjoin/internal/data"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/rstar"
)

// BigParams sizes the section 3.4/3.5/5 experiments. The paper joins two
// relations of about 130,000 objects; the default here is a
// shape-preserving 20,000 so the whole suite runs in minutes — pass
// N=130000 (cmd/experiments -big) for the full-scale run.
type BigParams struct {
	N           int   // objects per relation
	Points      int   // point queries per measurement (Figure 10)
	Windows     int   // window queries per size class (Figure 10)
	Seed        int64 // data seed
	BufferBytes int   // LRU buffer (paper: 128 KB)
}

// DefaultBigParams returns the scaled-down defaults.
func DefaultBigParams() BigParams {
	return BigParams{N: 20000, Points: 400, Windows: 150, Seed: 7001, BufferBytes: 128 << 10}
}

// bigRelations caches the generated big relations per (n, seed).
var bigCache sync.Map

type bigKey struct {
	n    int
	seed int64
}

func bigRelations(p BigParams) (r, s []*geom.Polygon) {
	if v, ok := bigCache.Load(bigKey{p.N, p.Seed}); ok {
		pair := v.([2][]*geom.Polygon)
		return pair[0], pair[1]
	}
	r = data.GenerateMap(data.BigConfig(p.N, p.Seed))
	s = data.StrategyA(r, 0.45)
	bigCache.Store(bigKey{p.N, p.Seed}, [2][]*geom.Polygon{r, s})
	return r, s
}

// approachTrees builds the approach 1 and approach 2 trees of section 3.4
// for one conservative kind: approach 1 uses the approximation as the
// geometric key (entry = approximation + info; key rect = the
// approximation's bounding box, which is looser than the MBR); approach 2
// stores the approximation in addition to the MBR (larger entry, tighter
// key).
func approachTrees(polys []*geom.Polygon, kind approx.Kind, pageSize, bufferBytes int) (a1, a2 *rstar.Tree) {
	kindBytes := kind.ByteSize(0)
	a1 = rstar.New(rstar.Config{
		PageSize:       pageSize,
		LeafEntryBytes: kindBytes + 32,
		BufferBytes:    bufferBytes,
	})
	a2 = rstar.New(rstar.Config{
		PageSize:       pageSize,
		LeafEntryBytes: 16 + kindBytes + 32,
		BufferBytes:    bufferBytes,
	})
	for i, p := range polys {
		var verts []geom.Point
		verts = p.Vertices(verts)
		hull := convex.Hull(verts)
		var keyRect geom.Rect
		switch kind {
		case approx.RMBR:
			o := convex.MinAreaRect(hull)
			keyRect = o.Ring().Bounds()
		case approx.C5:
			keyRect = convex.MinBoundingKGon(hull, 5).Bounds()
		default:
			keyRect = p.Bounds()
		}
		a1.Insert(rstar.Item{Rect: keyRect, ID: int32(i)})
		a2.Insert(rstar.Item{Rect: p.Bounds(), ID: int32(i)})
	}
	return a1, a2
}

// Figure10 reproduces Figure 10: the I/O cost of approach 2 (approximation
// in addition to the MBR) as a percentage of approach 1 (approximation
// instead of the MBR), for point queries, 1 % and 5 % window queries and
// the intersection join, with RMBR and 5-C approximations on 2 KB and 4 KB
// pages. It also reports the CPU-side ratio of approximation tests, which
// the paper quotes as "about 30 times as often" for approach 1.
func Figure10(p BigParams) *Table {
	t := &Table{
		Title: "Figure 10 — page accesses of approach 2 in % of approach 1",
		Header: []string{"approx", "page KB", "point q. %", "window 1% %", "window 5% %",
			"join %", "approx-test ratio a1/a2"},
	}
	r, s := bigRelations(p)
	rng := rand.New(rand.NewSource(p.Seed + 1))
	points := make([]geom.Point, p.Points)
	for i := range points {
		points[i] = geom.Point{X: rng.Float64(), Y: rng.Float64()}
	}
	win := func(ext float64) []geom.Rect {
		out := make([]geom.Rect, p.Windows)
		for i := range out {
			x := rng.Float64() * (1 - ext)
			y := rng.Float64() * (1 - ext)
			out[i] = geom.Rect{MinX: x, MinY: y, MaxX: x + ext, MaxY: y + ext}
		}
		return out
	}
	w1 := win(0.01)
	w5 := win(0.05)

	for _, kind := range []approx.Kind{approx.RMBR, approx.C5} {
		for _, pageSize := range []int{2048, 4096} {
			a1, a2 := approachTrees(r, kind, pageSize, p.BufferBytes)
			b1, b2 := approachTrees(s, kind, pageSize, p.BufferBytes)

			measure := func(tree *rstar.Tree, run func(*rstar.Tree)) int64 {
				tree.Buffer().Clear()
				run(tree)
				return tree.Buffer().Misses()
			}
			queryCost := func(tree *rstar.Tree, class int) int64 {
				return measure(tree, func(tr *rstar.Tree) {
					switch class {
					case 0:
						for _, pt := range points {
							tr.PointQuery(pt, func(rstar.Item) {})
						}
					case 1:
						for _, w := range w1 {
							tr.WindowQuery(w, func(rstar.Item) {})
						}
					case 2:
						for _, w := range w5 {
							tr.WindowQuery(w, func(rstar.Item) {})
						}
					}
				})
			}
			var joinMisses [2]int64
			var approxTests [2]int64
			for i, pair := range [2][2]*rstar.Tree{{a1, b1}, {a2, b2}} {
				pair[0].Buffer().Clear()
				pair[1].Buffer().Clear()
				st := rstar.Join(pair[0], pair[1], func(a, b rstar.Item) {})
				joinMisses[i] = pair[0].Buffer().Misses() + pair[1].Buffer().Misses()
				if i == 0 {
					// Approach 1: the key IS the approximation; every
					// leaf-level key test is an approximation test.
					approxTests[0] = st.LeafTests
				} else {
					// Approach 2: the approximation is tested only for
					// pairs whose MBRs intersect.
					approxTests[1] = st.Pairs
				}
			}
			ratio := func(v2, v1 int64) string {
				if v1 == 0 {
					return "n/a"
				}
				return fmt.Sprintf("%.0f", 100*float64(v2)/float64(v1))
			}
			atRatio := "n/a"
			if approxTests[1] > 0 {
				atRatio = fmt.Sprintf("%.1f", float64(approxTests[0])/float64(approxTests[1]))
			}
			t.AddRow(kind.String(), fmt.Sprint(pageSize/1024),
				ratio(queryCost(a2, 0), queryCost(a1, 0)),
				ratio(queryCost(a2, 1), queryCost(a1, 1)),
				ratio(queryCost(a2, 2), queryCost(a1, 2)),
				ratio(joinMisses[1], joinMisses[0]),
				atRatio)
		}
	}
	t.Comment = "Paper: only slight differences (bars near 100 %), small advantages for approach 1 on I/O;\n" +
		"approach 1 tests the approximation ≈ 30× as often — approach 2 wins overall."
	return t
}

// Figure11Row is one bar group of Figure 11.
type Figure11Row struct {
	Kind     approx.Kind
	PageSize int
	Loss     float64 // extra MBR-join page accesses
	Gain     float64 // page accesses saved by identified pairs
	Total    float64 // Gain − Loss
}

// Figure11 reproduces Figure 11: the loss (extra MBR-join page accesses
// caused by storing approximations), the gain (page accesses saved by
// filter-identified pairs, one per pair) and the total, for the RMBR and
// the 5-C (each together with the MER) on 2 KB and 4 KB pages.
func Figure11(p BigParams) (*Table, []Figure11Row) {
	t := &Table{
		Title:  "Figure 11 — change of performance using approximations (page accesses)",
		Header: []string{"approx", "page KB", "loss", "gain", "total"},
	}
	r, s := bigRelations(p)
	var rows []Figure11Row
	for _, kind := range []approx.Kind{approx.RMBR, approx.C5} {
		for _, pageSize := range []int{2048, 4096} {
			base := multistep.DefaultConfig()
			base.UseFilter = false
			base.PageSize = pageSize
			base.BufferBytes = p.BufferBytes

			filt := multistep.DefaultConfig()
			filt.Filter.Conservative = kind
			filt.Filter.Progressive = approx.MER
			filt.PageSize = pageSize
			filt.BufferBytes = p.BufferBytes

			r0 := multistep.NewRelation("R", r, base)
			s0 := multistep.NewRelation("S", s, base)
			_, st0 := seqJoin(r0, s0, base)

			r1 := multistep.NewRelation("R", r, filt)
			s1 := multistep.NewRelation("S", s, filt)
			_, st1 := seqJoin(r1, s1, filt)

			gl := costmodel.Figure11(st0, st1, costmodel.PaperParams())
			rows = append(rows, Figure11Row{Kind: kind, PageSize: pageSize,
				Loss: gl.Loss, Gain: gl.Gain, Total: gl.Total})
			t.AddRow(kind.String(), fmt.Sprint(pageSize/1024),
				fmt.Sprintf("%.0f", gl.Loss), fmt.Sprintf("%.0f", gl.Gain),
				fmt.Sprintf("%.0f", gl.Total))
		}
	}
	t.Comment = "Paper: gains far exceed the additional MBR-join cost for both approximations and page sizes."
	return t, rows
}

// Figure18Row is one stacked bar of Figure 18.
type Figure18Row struct {
	Version   string
	Breakdown costmodel.Breakdown
}

// Figure18 reproduces Figure 18: the total join performance of the three
// processor versions — version 1 without additional approximations and
// with the plane-sweep exact step, version 2 adding the 5-C + MER filter,
// version 3 additionally replacing the plane sweep by the TR*-tree.
// Measured statistics feed the section 5 cost model with the paper's
// constants.
func Figure18(p BigParams) (*Table, []Figure18Row) {
	r, s := bigRelations(p)

	v1cfg := multistep.DefaultConfig()
	v1cfg.UseFilter = false
	v1cfg.Engine = multistep.EnginePlaneSweep
	v1cfg.BufferBytes = p.BufferBytes

	v2cfg := multistep.DefaultConfig()
	v2cfg.Engine = multistep.EnginePlaneSweep
	v2cfg.BufferBytes = p.BufferBytes

	v3cfg := multistep.DefaultConfig()
	v3cfg.Engine = multistep.EngineTRStar
	v3cfg.BufferBytes = p.BufferBytes

	params := costmodel.PaperParams()
	var rows []Figure18Row

	r1 := multistep.NewRelation("R", r, v1cfg)
	s1 := multistep.NewRelation("S", s, v1cfg)
	_, st1 := seqJoin(r1, s1, v1cfg)
	rows = append(rows, Figure18Row{Version: "version 1 (no filter, plane-sweep)",
		Breakdown: costmodel.FromStats(st1, v1cfg.Engine, params)})

	// Versions 2 and 3 share the filtered relations (same entry layout).
	r2 := multistep.NewRelation("R", r, v2cfg)
	s2 := multistep.NewRelation("S", s, v2cfg)
	_, st2 := seqJoin(r2, s2, v2cfg)
	rows = append(rows, Figure18Row{Version: "version 2 (5-C+MER filter, plane-sweep)",
		Breakdown: costmodel.FromStats(st2, v2cfg.Engine, params)})

	_, st3 := seqJoin(r2, s2, v3cfg)
	rows = append(rows, Figure18Row{Version: "version 3 (5-C+MER filter, TR*-tree)",
		Breakdown: costmodel.FromStats(st3, v3cfg.Engine, params)})

	t := &Table{
		Title:  "Figure 18 — total join performance (section 5 cost model, seconds)",
		Header: []string{"version", "MBR-join", "object access", "exact test", "total"},
	}
	for _, row := range rows {
		b := row.Breakdown
		t.AddRow(row.Version, fmt.Sprintf("%.1f", b.MBRJoin),
			fmt.Sprintf("%.1f", b.ObjectAccess), fmt.Sprintf("%.1f", b.ExactTest),
			fmt.Sprintf("%.1f", b.Total()))
	}
	if len(rows) == 3 {
		t.Comment = fmt.Sprintf(
			"Speedups: v1/v2 = %.2f, v2/v3 = %.2f, v1/v3 = %.2f (paper: ≈ 1.7, ≈ 2, > 3).",
			rows[0].Breakdown.Total()/rows[1].Breakdown.Total(),
			rows[1].Breakdown.Total()/rows[2].Breakdown.Total(),
			rows[0].Breakdown.Total()/rows[2].Breakdown.Total())
	}
	return t, rows
}
