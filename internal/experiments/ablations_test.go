package experiments

import (
	"testing"
)

func TestAblationStep1AllGeneratorsAgree(t *testing.T) {
	skipInShort(t)
	tab := AblationStep1(sharedEnv())
	if len(tab.Rows) != 3 {
		t.Fatal("need three generators")
	}
	c0 := cell(t, tab, 0, 1)
	for row := 1; row < 3; row++ {
		if cell(t, tab, row, 1) != c0 {
			t.Errorf("generator %s delivered %v candidates, want %v",
				tab.Rows[row][0], cell(t, tab, row, 1), c0)
		}
	}
}

func TestAblationDecompositionShape(t *testing.T) {
	skipInShort(t)
	tab := AblationDecomposition(sharedEnv())
	traps := cell(t, tab, 0, 1)
	tris := cell(t, tab, 1, 1)
	convex := cell(t, tab, 2, 1)
	if tris < traps {
		t.Errorf("triangles (%v) must be at least as many as trapezoids (%v)", tris, traps)
	}
	if convex > tris {
		t.Errorf("convex parts (%v) must not exceed triangles (%v)", convex, tris)
	}
	// Exact decompositions: area error is numerically negligible.
	for row := 0; row < 3; row++ {
		if cell(t, tab, row, 3) > 1e-6 {
			t.Errorf("row %d: area error %v too large", row, cell(t, tab, row, 3))
		}
	}
}

func TestAblationSAMsShape(t *testing.T) {
	skipInShort(t)
	tab := AblationSAMs(smallBig())
	if len(tab.Rows) != 4 {
		t.Fatal("need four SAMs")
	}
	// Rows: R* dynamic, R* STR, Guttman, R+.
	strPages := cell(t, tab, 1, 1)
	dynPages := cell(t, tab, 0, 1)
	if strPages > dynPages {
		t.Errorf("STR pages %v must not exceed dynamic pages %v", strPages, dynPages)
	}
	rplusPoint := cell(t, tab, 3, 3)
	dynPoint := cell(t, tab, 0, 3)
	if rplusPoint > dynPoint {
		t.Errorf("R+ point touches %v must not exceed R* %v (single-path property)", rplusPoint, dynPoint)
	}
}

func TestAblationBufferPolicyShape(t *testing.T) {
	skipInShort(t)
	tab := AblationBufferPolicy(smallBig())
	if len(tab.Rows) != 3 {
		t.Fatal("need three policies")
	}
	lru := cell(t, tab, 0, 1)
	for row := 1; row < 3; row++ {
		if cell(t, tab, row, 1) < lru*0.85 {
			t.Errorf("policy %s beat LRU markedly (%v vs %v); unexpected for this workload",
				tab.Rows[row][0], cell(t, tab, row, 1), lru)
		}
	}
}

func TestAblationTRCapacityTrend(t *testing.T) {
	skipInShort(t)
	tab := AblationTRCapacityWide(sharedEnv())
	if len(tab.Rows) != 6 {
		t.Fatal("need six capacities")
	}
	costM3 := cell(t, tab, 0, 3)
	costM32 := cell(t, tab, 5, 3)
	if costM32 < costM3 {
		t.Errorf("M=32 weighted cost %v must exceed M=3 cost %v", costM32, costM3)
	}
}
