package experiments

import (
	"strconv"
	"strings"
	"sync"
	"testing"

	"spatialjoin/internal/approx"
)

// The environment is expensive (four preprocessed series); tests share one.
var (
	testEnvOnce sync.Once
	testEnv     *Env
)

func sharedEnv() *Env {
	testEnvOnce.Do(func() { testEnv = NewEnv() })
	return testEnv
}

// skipInShort gates the expensive experiment reproductions behind
// `go test -short`: the full suite regenerates every table and figure and
// takes minutes, which is too slow for CI's per-commit loop.
func skipInShort(t *testing.T) {
	t.Helper()
	if testing.Short() {
		t.Skip("experiment reproduction skipped in -short mode")
	}
}

// smallBig returns the scaled-down big-relation parameters for tests.
func smallBig() BigParams {
	p := DefaultBigParams()
	p.N = 3000
	p.Points = 100
	p.Windows = 40
	return p
}

func cell(t *testing.T, tab *Table, row, col int) float64 {
	t.Helper()
	v, err := strconv.ParseFloat(strings.TrimSpace(tab.Rows[row][col]), 64)
	if err != nil {
		t.Fatalf("cell (%d,%d) = %q is not numeric: %v", row, col, tab.Rows[row][col], err)
	}
	return v
}

func TestFigure2AndTable1(t *testing.T) {
	skipInShort(t)
	e := sharedEnv()
	f2 := Figure2(e)
	if len(f2.Rows) != 2 {
		t.Fatal("Figure 2 needs two relations")
	}
	// Europe ≈ 810 objects, BW ≈ 374.
	if got := cell(t, f2, 0, 1); got != 810 {
		t.Errorf("Europe objects = %v, want 810", got)
	}
	if got := cell(t, f2, 1, 1); got != 374 {
		t.Errorf("BW objects = %v, want 374", got)
	}
	// BW objects are far more complex than Europe's.
	if cell(t, f2, 1, 2) < 3*cell(t, f2, 0, 2) {
		t.Error("BW average vertex count must dwarf Europe's")
	}

	t1 := Table1(e)
	for row := 0; row < 2; row++ {
		avg := cell(t, t1, row, 1)
		if avg < 0.5 || avg > 1.6 {
			t.Errorf("Table 1 row %d: avg normalized false area %v outside the paper's regime", row, avg)
		}
	}
}

func TestTable2Shape(t *testing.T) {
	skipInShort(t)
	e := sharedEnv()
	tab := Table2(e)
	if len(tab.Rows) != 4 {
		t.Fatal("Table 2 needs four series")
	}
	for i, sd := range e.Series() {
		if len(sd.Pairs) < 500 {
			t.Errorf("series %s has only %d candidate pairs", sd.Name, len(sd.Pairs))
		}
		share := cell(t, tab, i, 4)
		if share < 20 || share > 45 {
			t.Errorf("series %s: false-hit share %.1f%% outside the paper's ≈1/3 regime", sd.Name, share)
		}
	}
}

func TestTable3Shape(t *testing.T) {
	skipInShort(t)
	e := sharedEnv()
	tab := Table3(e)
	// Columns: series, MBC, MBE, RMBR, 4-C, 5-C, CH.
	for row := range tab.Rows {
		mbc := cell(t, tab, row, 1)
		c4 := cell(t, tab, row, 4)
		c5 := cell(t, tab, row, 5)
		ch := cell(t, tab, row, 6)
		// Paper ordering: CH best, then 5-C, then 4-C; MBC worst.
		if !(ch >= c5 && c5 >= c4) {
			t.Errorf("row %d: ordering CH ≥ 5-C ≥ 4-C violated (%v, %v, %v)", row, ch, c5, c4)
		}
		if mbc >= c5 {
			t.Errorf("row %d: MBC (%v) must identify fewer false hits than 5-C (%v)", row, mbc, c5)
		}
		// 5-C identifies roughly two thirds of the false hits.
		if c5 < 40 || c5 > 90 {
			t.Errorf("row %d: 5-C identified %v%%, want the paper's ≈2/3 regime", row, c5)
		}
		if ch < 60 {
			t.Errorf("row %d: CH identified only %v%%", row, ch)
		}
	}
}

func TestTable4Shape(t *testing.T) {
	skipInShort(t)
	e := sharedEnv()
	tab := Table4(e)
	for row := range tab.Rows {
		mbr := cell(t, tab, row, 1)
		c5 := cell(t, tab, row, 4)
		ch := cell(t, tab, row, 5)
		// Paper: ≈0 for the MBR and ≈5–8 for the 5-C. The synthetic tiles
		// are less fjorded than real municipalities, so the test fires
		// somewhat more often here (see EXPERIMENTS.md); the bounds assert
		// the same qualitative regime: MBR nearly useless, 5-C a small
		// fraction, both far below the progressive tests of Table 5.
		if mbr > 6 {
			t.Errorf("row %d: false-area test with MBR identified %v%%, paper says ≈0", row, mbr)
		}
		if c5 > 28 {
			t.Errorf("row %d: 5-C false-area test %v%% implausibly high", row, c5)
		}
		if ch < c5 {
			t.Errorf("row %d: CH (%v) must beat 5-C (%v) in the false-area test", row, ch, c5)
		}
	}
}

func TestTable5Shape(t *testing.T) {
	skipInShort(t)
	e := sharedEnv()
	tab := Table5(e)
	for row := range tab.Rows {
		mec := cell(t, tab, row, 1)
		mer := cell(t, tab, row, 2)
		// Paper: ≈ 1/3 of the hits for either progressive approximation.
		if mec < 15 || mec > 60 {
			t.Errorf("row %d: MEC identified %v%% of hits, outside the ≈1/3 regime", row, mec)
		}
		if mer < 15 || mer > 60 {
			t.Errorf("row %d: MER identified %v%% of hits, outside the ≈1/3 regime", row, mer)
		}
	}
	// The false-area test with the 5-C identifies far fewer hits than the
	// progressive approximations (the paper's argument for them).
	t4 := Table4(e)
	for row := range tab.Rows {
		if cell(t, t4, row, 4) >= cell(t, tab, row, 2) {
			t.Errorf("row %d: false-area(5-C) must identify fewer hits than MER", row)
		}
	}
}

func TestFigure4Shape(t *testing.T) {
	skipInShort(t)
	e := sharedEnv()
	tab := Figure4(e)
	// Rows: CH, 5-C, 4-C, RMBR, MBE, MBC, only MBR; columns Europe, BW.
	for col := 1; col <= 2; col++ {
		ch := cell(t, tab, 0, col)
		c5 := cell(t, tab, 1, col)
		c4 := cell(t, tab, 2, col)
		mbr := cell(t, tab, 6, col)
		if !(ch <= c5+1e-9 && c5 <= c4+1e-9) {
			t.Errorf("col %d: ordering CH ≤ 5-C ≤ 4-C violated", col)
		}
		if mbr < c4 {
			t.Errorf("col %d: the MBR must have the largest false area", col)
		}
		if c5 > 0.6*mbr {
			t.Errorf("col %d: 5-C false area %v not clearly below MBR %v", col, c5, mbr)
		}
	}
}

func TestFigure5Shape(t *testing.T) {
	skipInShort(t)
	e := sharedEnv()
	tab := Figure5(e)
	if len(tab.Rows) != 8 {
		t.Fatalf("Figure 5 needs 7 approximations + object, got %d rows", len(tab.Rows))
	}
	// Smaller false area must broadly give more identified false hits.
	chRow := tab.Rows[6]
	if chRow[0] != "CH" {
		t.Fatal("row order changed")
	}
	if cell(t, tab, 6, 2) < cell(t, tab, 1, 2) {
		t.Error("CH must identify more false hits than MBC")
	}
}

func TestFigure8Shape(t *testing.T) {
	skipInShort(t)
	e := sharedEnv()
	tab := Figure8(e)
	for row := 0; row < 2; row++ {
		for col := 1; col <= 2; col++ {
			q := cell(t, tab, row, col)
			if q < 0.2 || q > 0.7 {
				t.Errorf("progressive quality %v outside the paper's ≈0.42–0.45 regime", q)
			}
		}
	}
}

func TestFigure12Shape(t *testing.T) {
	skipInShort(t)
	e := sharedEnv()
	tab := Figure12(e)
	identified := cell(t, tab, 4, 2)
	if identified < 30 || identified > 75 {
		t.Errorf("identified share %v%% outside the paper's ≈46%% regime", identified)
	}
}

func TestTable6Weights(t *testing.T) {
	skipInShort(t)
	tab := Table6()
	if len(tab.Rows) != 6 {
		t.Fatal("Table 6 needs six operations")
	}
	for row := range tab.Rows {
		host := cell(t, tab, row, 2)
		if host <= 0 || host > 100 {
			t.Errorf("row %d: host weight %v µs implausible", row, host)
		}
	}
}

func TestTable7Shape(t *testing.T) {
	skipInShort(t)
	e := sharedEnv()
	_, results := Table7(e)
	for _, res := range results {
		quad := res.Total["quadratic"]
		sweep := res.Total["plane-sweep"]
		tr := res.Total["TR*-tree"]
		if !(quad > sweep && sweep > tr) {
			t.Errorf("%s: ordering quadratic > plane-sweep > TR*-tree violated (%v, %v, %v)",
				res.Series, quad, sweep, tr)
		}
		if sweep/tr < 3 {
			t.Errorf("%s: TR*-tree must beat the plane sweep clearly (ratio %.2f)", res.Series, sweep/tr)
		}
		if quad/sweep < 2 {
			t.Errorf("%s: plane sweep must beat quadratic clearly (ratio %.2f)", res.Series, quad/sweep)
		}
	}
	// BW objects are ~7× more complex; the plane sweep must cost much
	// more per pair there, while the TR*-tree cost grows far slower
	// (Table 7: factor 1.35 vs ≈5 in the paper).
	var europe, bw Table7Result
	for _, r := range results {
		if r.Series == "Europe A" {
			europe = r
		} else {
			bw = r
		}
	}
	sweepGrowth := bw.CostPerHit["plane-sweep"] / europe.CostPerHit["plane-sweep"]
	trGrowth := bw.CostPerHit["TR*-tree"] / europe.CostPerHit["TR*-tree"]
	if trGrowth >= sweepGrowth {
		t.Errorf("TR*-tree cost growth (%.2f) must stay below plane-sweep growth (%.2f)",
			trGrowth, sweepGrowth)
	}
}

func TestFigure16Shape(t *testing.T) {
	skipInShort(t)
	e := sharedEnv()
	_, bins := Figure16(e)
	var first, last *Figure16Bin
	for i := range bins {
		if bins[i].Pairs > 0 {
			if first == nil {
				first = &bins[i]
			}
			last = &bins[i]
		}
	}
	if first == nil || first == last {
		t.Skip("not enough spread in edge counts")
	}
	if last.PlaneSweep <= first.PlaneSweep {
		t.Error("plane-sweep cost must grow with the edge count")
	}
	// TR*-tree cost stays within a small factor across the range.
	if last.TRStar > 6*first.TRStar {
		t.Errorf("TR*-tree cost grew %vx across edge bins; paper reports low dependency",
			last.TRStar/first.TRStar)
	}
}

func TestFigure17Shape(t *testing.T) {
	skipInShort(t)
	e := sharedEnv()
	_, rows := Figure17(e)
	if len(rows) != 3 {
		t.Fatal("Figure 17 needs M = 3, 4, 5")
	}
	if !(rows[0].M == 3 && rows[2].M == 5) {
		t.Fatal("row order")
	}
	// Paper: both counts are minimal at M = 3 (allow a little slack for
	// the synthetic data on the rectangle side).
	if float64(rows[0].TrapTests) > 1.1*float64(rows[2].TrapTests) {
		t.Errorf("trapezoid tests at M=3 (%d) must not exceed M=5 (%d)",
			rows[0].TrapTests, rows[2].TrapTests)
	}
	if float64(rows[0].RectTests) > 1.3*float64(rows[2].RectTests) {
		t.Errorf("rectangle tests at M=3 (%d) must stay near or below M=5 (%d)",
			rows[0].RectTests, rows[2].RectTests)
	}
}

func TestFigure10Shape(t *testing.T) {
	skipInShort(t)
	tab := Figure10(smallBig())
	if len(tab.Rows) != 4 {
		t.Fatal("Figure 10 needs RMBR/5-C × 2/4 KB")
	}
	for row := range tab.Rows {
		for col := 2; col <= 5; col++ {
			v := cell(t, tab, row, col)
			// Paper: "only slight differences" — both approaches within a
			// factor ~1.6 of each other.
			if v < 60 || v > 165 {
				t.Errorf("row %d col %d: approach 2 at %v%% of approach 1; paper reports near-100%%",
					row, col, v)
			}
		}
		// Approach 1 must test the approximation much more often.
		if ratio := cell(t, tab, row, 6); ratio < 3 {
			t.Errorf("row %d: approximation-test ratio %v; paper reports ≈30", row, ratio)
		}
	}
}

func TestFigure11Shape(t *testing.T) {
	skipInShort(t)
	_, rows := Figure11(smallBig())
	if len(rows) != 4 {
		t.Fatal("Figure 11 needs RMBR/5-C × 2/4 KB")
	}
	for _, r := range rows {
		if r.Total <= 0 {
			t.Errorf("%v @%dB: total %v must be positive (gains exceed losses)",
				r.Kind, r.PageSize, r.Total)
		}
		if r.Gain < 2*r.Loss {
			t.Errorf("%v @%dB: gain %v not clearly above loss %v", r.Kind, r.PageSize, r.Gain, r.Loss)
		}
	}
	// The 5-C identifies more pairs than the RMBR.
	if rows[2].Gain <= rows[0].Gain {
		t.Errorf("5-C gain (%v) must exceed RMBR gain (%v)", rows[2].Gain, rows[0].Gain)
	}
}

func TestFigure18Shape(t *testing.T) {
	skipInShort(t)
	_, rows := Figure18(smallBig())
	if len(rows) != 3 {
		t.Fatal("Figure 18 needs three versions")
	}
	v1 := rows[0].Breakdown.Total()
	v2 := rows[1].Breakdown.Total()
	v3 := rows[2].Breakdown.Total()
	if !(v1 > v2 && v2 > v3) {
		t.Fatalf("version ordering violated: %v, %v, %v", v1, v2, v3)
	}
	if v1/v3 < 2.5 {
		t.Errorf("v1/v3 = %.2f, paper reports > 3", v1/v3)
	}
	// Version 3: exact test practically negligible.
	if rows[2].Breakdown.ExactTest > 0.15*v3 {
		t.Errorf("v3 exact test %.1f should be a small share of %.1f", rows[2].Breakdown.ExactTest, v3)
	}
	// Version 1: object access + exact test dominate.
	if rows[0].Breakdown.MBRJoin > rows[0].Breakdown.ObjectAccess {
		t.Errorf("v1: MBR-join %.1f should not dominate object access %.1f",
			rows[0].Breakdown.MBRJoin, rows[0].Breakdown.ObjectAccess)
	}
}

func TestFalseAreaKindParams(t *testing.T) {
	// Guard: the kinds used across experiments expose parameter counts.
	if approx.C5.NumParams(0) != 10 || approx.MER.NumParams(0) != 4 {
		t.Error("kind parameter counts drifted")
	}
}
