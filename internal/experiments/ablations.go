package experiments

import (
	"context"
	"fmt"
	"math/rand"
	"time"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/costmodel"
	"spatialjoin/internal/decomp"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/ops"
	"spatialjoin/internal/rplus"
	"spatialjoin/internal/rstar"
	"spatialjoin/internal/storage"
	"spatialjoin/internal/trstar"
)

// The ablation experiments quantify the design decisions DESIGN.md §8
// calls out, beyond what the paper's own figures cover.

// AblationStep1 compares the three candidate generators of step 1 on one
// workload: candidate quality is identical by construction (all produce
// the MBR-intersecting pairs); what differs is the work done to get there.
func AblationStep1(e *Env) *Table {
	sd := e.SeriesByName("Europe A")
	t := &Table{
		Title:  "Ablation — step 1 candidate generators (Europe A)",
		Header: []string{"generator", "candidates", "wall ms", "notes"},
	}
	for _, step1 := range []multistep.Step1{multistep.Step1RStar, multistep.Step1ZOrder, multistep.Step1NestedLoops} {
		cfg := multistep.DefaultConfig()
		cfg.Step1 = step1
		cfg.Filter.NoProgressive = true
		cfg.Filter.NoConservative = true
		cfg.UseFilter = false
		r := multistep.NewRelation("R", sd.R, cfg)
		s := multistep.NewRelation("S", sd.S, cfg)
		start := time.Now()
		_, st := seqJoin(r, s, cfg)
		wall := time.Since(start)
		note := ""
		if step1 == multistep.Step1ZOrder {
			note = fmt.Sprintf("%d raw Z candidates", st.ZOrderCandidates)
		}
		t.AddRow(step1.String(), fmt.Sprint(st.CandidatePairs),
			fmt.Sprintf("%.1f", wall.Seconds()*1e3), note)
	}
	t.Comment = "All generators deliver the identical candidate set; they differ in how they enumerate it."
	return t
}

// AblationDecomposition compares the three decomposition techniques of
// Figure 14 on the BW relation: component counts and the TR*-tree exact
// cost when each technique's components back the tree (trapezoids and
// triangles share the Trapezoid component type; triangles are trapezoids
// with two coincident corners).
func AblationDecomposition(e *Env) *Table {
	bw := e.BW()
	t := &Table{
		Title:  "Ablation — decomposition techniques (Figure 14, BW relation)",
		Header: []string{"technique", "avg components", "avg verts/component", "area error"},
	}
	type techn struct {
		name string
		run  func(p int) decomp.Stats
	}
	techs := []techn{
		{"trapezoids", func(i int) decomp.Stats { return decomp.TrapezoidStats(bw[i]) }},
		{"triangles", func(i int) decomp.Stats { return decomp.TriangleStats(bw[i]) }},
		{"convex parts", func(i int) decomp.Stats { return decomp.ConvexPartStats(bw[i]) }},
	}
	sample := 40
	if sample > len(bw) {
		sample = len(bw)
	}
	for _, tech := range techs {
		var comps, verts, areaErr float64
		for i := 0; i < sample; i++ {
			st := tech.run(i)
			comps += float64(st.Components)
			verts += float64(st.MaxVerts)
			diff := st.TotalArea - bw[i].Area()
			if diff < 0 {
				diff = -diff
			}
			areaErr += diff
		}
		t.AddRow(tech.name, fmt.Sprintf("%.0f", comps/float64(sample)),
			fmt.Sprintf("%.1f", verts/float64(sample)),
			fmt.Sprintf("%.2e", areaErr/float64(sample)))
	}
	t.Comment = "Trapezoids give the fewest components with exactly MBR-approximable shapes — the paper's choice."
	return t
}

// AblationTRCapacityWide sweeps the TR*-tree capacity beyond Figure 17's
// 3–5 range, showing the trend continues.
func AblationTRCapacityWide(e *Env) *Table {
	sd := e.SeriesByName("Europe A")
	rem := remainingPairs(sd)
	t := &Table{
		Title:  "Ablation — TR*-tree node capacity, extended sweep (Europe A)",
		Header: []string{"M", "#rect tests", "#trap tests", "weighted cost s"},
	}
	w := ops.PaperWeights()
	for _, m := range []int{3, 4, 5, 8, 16, 32} {
		var c ops.Counters
		for _, p := range rem {
			trstar.Intersects(e.Tree(sd, 'R', p.I, m), e.Tree(sd, 'S', p.J, m), &c)
		}
		t.AddRow(fmt.Sprint(m), fmt.Sprint(c.RectIntersection), fmt.Sprint(c.TrapIntersection),
			fmt.Sprintf("%.2f", c.Cost(w)))
	}
	t.Comment = "Figure 17's finding extends: small nodes stay best; cost grows steadily with M."
	return t
}

// AblationBuildStrategy compares dynamic R*-tree construction with STR
// bulk loading on build effort and query quality.
func AblationBuildStrategy(p BigParams) *Table {
	r, _ := bigRelations(p)
	items := make([]rstar.Item, len(r))
	for i, poly := range r {
		items[i] = rstar.Item{Rect: poly.Bounds(), ID: int32(i)}
	}
	t := &Table{
		Title:  "Ablation — R*-tree build strategy",
		Header: []string{"strategy", "build ms", "pages", "height", "window-query page touches"},
	}
	for _, mode := range []string{"dynamic insert", "STR bulk load"} {
		start := time.Now()
		var tree *rstar.Tree
		if mode == "dynamic insert" {
			tree = rstar.New(rstar.DefaultConfig())
			for _, it := range items {
				tree.Insert(it)
			}
		} else {
			tree = rstar.BulkLoad(items, rstar.DefaultConfig())
		}
		build := time.Since(start)
		tree.Buffer().Clear()
		for q := 0; q < 200; q++ {
			x := float64(q%20) / 20 * 0.95
			y := float64(q/20) / 10 * 0.95
			w := geom.Rect{MinX: x, MinY: y, MaxX: x + 0.03, MaxY: y + 0.03}
			tree.WindowQuery(w, func(rstar.Item) {})
		}
		t.AddRow(mode, fmt.Sprintf("%.0f", build.Seconds()*1e3),
			fmt.Sprint(tree.Pages()), fmt.Sprint(tree.Height()),
			fmt.Sprint(tree.Buffer().Accesses()))
	}
	t.Comment = "STR builds orders of magnitude faster and packs tighter; dynamic insertion keeps the index incremental."
	return t
}

// Figure18Wall is the wall-clock companion of Figure 18: instead of the
// section 5 cost model it times the three processor versions on the host
// (preprocessing excluded, joins measured), confirming that the modelled
// factor-3 improvement also shows up in real execution time.
func Figure18Wall(p BigParams) *Table {
	r, s := bigRelations(p)
	t := &Table{
		Title:  "Figure 18 (wall clock) — total join time on this host",
		Header: []string{"version", "join wall s", "exact pairs"},
	}
	run := func(name string, cfg multistep.Config, rr, ss *multistep.Relation) (float64, int64) {
		// The paper builds exact representations (sorted vertices,
		// trapezoid TR*-trees) at object insertion time; prebuild them so
		// the timer covers query processing only, as in Figure 18.
		for _, rel := range []*multistep.Relation{rr, ss} {
			for _, o := range rel.Objects {
				if cfg.Engine == multistep.EngineTRStar {
					o.Tree(cfg.TRCapacity)
				} else {
					o.Prepared()
				}
			}
		}
		start := time.Now()
		_, st := seqJoin(rr, ss, cfg)
		wall := time.Since(start).Seconds()
		t.AddRow(name, fmt.Sprintf("%.2f", wall), fmt.Sprint(st.ExactTested))
		return wall, st.ExactTested
	}

	v1cfg := multistep.DefaultConfig()
	v1cfg.UseFilter = false
	v1cfg.Engine = multistep.EnginePlaneSweep
	r1 := multistep.NewRelation("R", r, v1cfg)
	s1 := multistep.NewRelation("S", s, v1cfg)
	w1, _ := run("version 1 (no filter, plane-sweep)", v1cfg, r1, s1)

	v2cfg := multistep.DefaultConfig()
	v2cfg.Engine = multistep.EnginePlaneSweep
	r2 := multistep.NewRelation("R", r, v2cfg)
	s2 := multistep.NewRelation("S", s, v2cfg)
	w2, _ := run("version 2 (5-C+MER filter, plane-sweep)", v2cfg, r2, s2)

	v3cfg := multistep.DefaultConfig()
	v3cfg.Engine = multistep.EngineTRStar
	w3, _ := run("version 3 (5-C+MER filter, TR*-tree)", v3cfg, r2, s2)

	t.Comment = fmt.Sprintf("Wall-clock speedups on this host: v1/v2 = %.2f, v1/v3 = %.2f.\n"+
		"Preprocessing (decomposition, TR*-tree builds) happens at insertion time as in the paper.\n"+
		"Wall clock has no disk component, so the gap is smaller than the modelled Figure 18; with\n"+
		"the paper's complex objects the exact step dominates and the TR*-tree's order-of-magnitude\n"+
		"advantage shows directly (Table 7, exact_engines example).", w1/w2, w1/w3)
	return t
}

// AblationParallelism models the section 6 outlook on one measured run:
// the version 3 join statistics fed through the CPU/I/O parallelism model
// for several disk and worker counts, plus the measured wall-clock scaling
// of JoinParallel (collect-then-sort) and the streaming pipeline
// JoinStream (partitioned step 1, bounded channels).
func AblationParallelism(p BigParams) *Table {
	r, s := bigRelations(p)
	cfg := multistep.DefaultConfig()
	cfg.BufferBytes = p.BufferBytes
	rr := multistep.NewRelation("R", r, cfg)
	ss := multistep.NewRelation("S", s, cfg)
	_, st := seqJoin(rr, ss, cfg)
	base := costmodel.FromStats(st, cfg.Engine, costmodel.PaperParams())

	t := &Table{
		Title:  "Ablation — CPU and I/O parallelism (section 6 outlook, version 3 join)",
		Header: []string{"disks", "workers", "modelled total s", "wall s (JoinParallel)", "wall s (JoinStream)"},
	}
	for _, conf := range [][2]int{{1, 1}, {2, 2}, {4, 4}, {8, 8}} {
		disks, workers := conf[0], conf[1]
		modelled := costmodel.ParallelBreakdown(base, disks, workers).Total()
		start := time.Now()
		if _, _, err := multistep.Join(context.Background(), rr, ss,
			multistep.WithConfig(cfg), multistep.WithWorkers(workers)); err != nil {
			panic(err)
		}
		wallParallel := time.Since(start).Seconds()
		// Consume the streamed pairs so both wall columns include
		// delivering every response pair (JoinParallel materializes them).
		var streamed int64
		start = time.Now()
		if _, _, err := multistep.Join(context.Background(), rr, ss,
			multistep.WithConfig(cfg), multistep.WithWorkers(workers),
			multistep.WithStream(func(multistep.Pair) { streamed++ })); err != nil {
			panic(err)
		}
		wallStream := time.Since(start).Seconds()
		t.AddRow(fmt.Sprint(disks), fmt.Sprint(workers),
			fmt.Sprintf("%.1f", modelled), fmt.Sprintf("%.2f", wallParallel),
			fmt.Sprintf("%.2f", wallStream))
	}
	t.Comment = "The modelled column divides I/O by the disk count and exact CPU by the worker count;\n" +
		"the wall columns measure real parallelism on this host. JoinStream additionally\n" +
		"partitions the step 1 traversal and keeps memory bounded by the pipeline depth."
	return t
}

// AblationBufferPolicy compares page-replacement policies on the MBR-join
// workload — the paper fixes LRU; this quantifies how much that choice
// matters.
func AblationBufferPolicy(p BigParams) *Table {
	r, s := bigRelations(p)
	t := &Table{
		Title:  "Ablation — buffer replacement policy (MBR-join page faults)",
		Header: []string{"policy", "page faults", "hit rate %"},
	}
	for _, pol := range []storage.Policy{storage.LRU, storage.FIFO, storage.Clock} {
		// Build two fresh trees whose buffers use the policy.
		cfg := rstar.Config{PageSize: 4096, LeafEntryBytes: 48, BufferBytes: p.BufferBytes, BufferPolicy: pol}
		t1 := rstar.New(cfg)
		t2 := rstar.New(cfg)
		for i, poly := range r {
			t1.Insert(rstar.Item{Rect: poly.Bounds(), ID: int32(i)})
		}
		for i, poly := range s {
			t2.Insert(rstar.Item{Rect: poly.Bounds(), ID: int32(i)})
		}
		t1.Buffer().Clear()
		t2.Buffer().Clear()
		rstar.Join(t1, t2, func(a, b rstar.Item) {})
		faults := t1.Buffer().Misses() + t2.Buffer().Misses()
		total := t1.Buffer().Accesses() + t2.Buffer().Accesses()
		hitRate := 0.0
		if total > 0 {
			hitRate = 100 * float64(total-faults) / float64(total)
		}
		t.AddRow(pol.String(), fmt.Sprint(faults), fmt.Sprintf("%.1f", hitRate))
	}
	t.Comment = "LRU and FIFO run neck and neck on the synchronized traversal (either may edge out\n" +
		"the other by a few percent); Clock's coarser recency approximation pays noticeably more faults."
	return t
}

// AblationSAMs compares the spatial access methods the paper names: the
// R*-tree (dynamic and STR-bulk-loaded), the classic Guttman R-tree and
// the R+-tree, on storage and query page touches over the same items.
func AblationSAMs(p BigParams) *Table {
	r, _ := bigRelations(p)
	items := make([]rstar.Item, len(r))
	plusItems := make([]rplus.Item, len(r))
	for i, poly := range r {
		b := poly.Bounds()
		items[i] = rstar.Item{Rect: b, ID: int32(i)}
		plusItems[i] = rplus.Item{Rect: b, ID: int32(i)}
	}
	t := &Table{
		Title:  "Ablation — spatial access methods (point / window page touches, 500 queries each)",
		Header: []string{"SAM", "pages", "height", "point touches", "window touches"},
	}
	type sam struct {
		name   string
		pages  int
		height int
		point  func(geom.Point)
		window func(geom.Rect)
		buf    storage.PageStore
	}
	var sams []sam
	addStar := func(name string, tree *rstar.Tree) {
		sams = append(sams, sam{
			name: name, pages: tree.Pages(), height: tree.Height(),
			point:  func(pt geom.Point) { tree.PointQuery(pt, func(rstar.Item) {}) },
			window: func(w geom.Rect) { tree.WindowQuery(w, func(rstar.Item) {}) },
			buf:    tree.Buffer(),
		})
	}
	dyn := rstar.New(rstar.DefaultConfig())
	for _, it := range items {
		dyn.Insert(it)
	}
	addStar("R*-tree (dynamic)", dyn)
	addStar("R*-tree (STR bulk)", rstar.BulkLoad(items, rstar.DefaultConfig()))
	gutCfg := rstar.DefaultConfig()
	gutCfg.Split = rstar.SplitQuadraticGuttman
	gut := rstar.New(gutCfg)
	for _, it := range items {
		gut.Insert(it)
	}
	addStar("R-tree (Guttman)", gut)
	plus := rplus.Build(plusItems, rplus.DefaultConfig())
	sams = append(sams, sam{
		name: "R+-tree", pages: plus.Pages(), height: plus.Height(),
		point:  func(pt geom.Point) { plus.PointQuery(pt, func(rplus.Item) {}) },
		window: func(w geom.Rect) { plus.WindowQuery(w, func(rplus.Item) {}) },
		buf:    plus.Buffer(),
	})

	for _, s := range sams {
		qrng := rand.New(rand.NewSource(p.Seed + 9))
		s.buf.Clear()
		for q := 0; q < 500; q++ {
			s.point(geom.Point{X: qrng.Float64(), Y: qrng.Float64()})
		}
		pointTouches := s.buf.Accesses()
		s.buf.Clear()
		for q := 0; q < 500; q++ {
			x, y := qrng.Float64()*0.95, qrng.Float64()*0.95
			s.window(geom.Rect{MinX: x, MinY: y, MaxX: x + 0.03, MaxY: y + 0.03})
		}
		t.AddRow(s.name, fmt.Sprint(s.pages), fmt.Sprint(s.height),
			fmt.Sprint(pointTouches), fmt.Sprint(s.buf.Accesses()))
	}
	t.Comment = "The R+-tree wins point queries via its single-path property and pays in duplicated entries;\n" +
		"the R*-tree split beats Guttman's; STR packs the fewest pages."
	return t
}

// AblationFilterCombos runs every conservative×progressive filter pair on
// Europe A, end to end — the design space behind the paper's section 3.6
// recommendation.
func AblationFilterCombos(e *Env) *Table {
	sd := e.SeriesByName("Europe A")
	t := &Table{
		Title:  "Ablation — filter combinations, end to end (Europe A)",
		Header: []string{"conservative", "progressive", "identified %", "exact pairs", "entry bytes"},
	}
	for _, cons := range []approx.Kind{approx.MBC, approx.RMBR, approx.C4, approx.C5, approx.CH} {
		for _, prog := range []approx.Kind{approx.MEC, approx.MER} {
			cfg := multistep.DefaultConfig()
			cfg.Filter.Conservative = cons
			cfg.Filter.Progressive = prog
			cfg.MECPrecision = 2e-3
			r := multistep.NewRelation("R", sd.R, cfg)
			s := multistep.NewRelation("S", sd.S, cfg)
			_, st := seqJoin(r, s, cfg)
			t.AddRow(cons.String(), prog.String(),
				fmt.Sprintf("%.0f", 100*st.Identified()),
				fmt.Sprint(st.ExactTested),
				fmt.Sprint(multistep.EntryBytes(cfg)))
		}
	}
	t.Comment = "The paper's 5-C + MER sits at the knee: near-CH identification at a quarter of the storage."
	return t
}
