// Package experiments regenerates every table and figure of the paper's
// evaluation. Each experiment is one exported function returning a
// printable result; cmd/experiments runs them all and bench_test.go wraps
// each in a testing.B benchmark. Results are deterministic in the data
// seeds.
//
// Absolute numbers differ from the paper's — the data is synthetic and the
// hardware is not an HP 720 — but every qualitative shape the paper
// reports is reproduced and asserted in the experiment tests: who wins, by
// roughly what factor, and where the crossovers fall. EXPERIMENTS.md
// records paper-vs-measured values side by side.
package experiments

import (
	"context"
	"sync"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/data"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/ops"
	"spatialjoin/internal/trstar"
)

// SeriesData is one fully preprocessed test series: all approximations of
// every object and the ground-truth classification of every candidate
// pair of the MBR-join.
type SeriesData struct {
	Name  string
	R, S  []*geom.Polygon
	SetsR []*approx.Set
	SetsS []*approx.Set
	Pairs []PairInfo
	Hits  int // pairs whose objects intersect
}

// PairInfo is one candidate pair of a series with its ground truth.
type PairInfo struct {
	I, J int  // indices into R and S
	Hit  bool // exact-geometry ground truth
}

// Env lazily builds and caches the experiment datasets, shared by all
// tables, figures and benchmarks.
type Env struct {
	europeOnce sync.Once
	europe     []*geom.Polygon
	bwOnce     sync.Once
	bw         []*geom.Polygon

	seriesOnce sync.Once
	series     []*SeriesData

	mu        sync.Mutex
	treeCache map[treeKey]*trstar.Tree
}

type treeKey struct {
	series   string
	side     byte
	idx      int
	capacity int
}

// NewEnv returns an empty environment; datasets materialize on first use.
func NewEnv() *Env {
	return &Env{treeCache: make(map[treeKey]*trstar.Tree)}
}

// Europe returns the Europe-analog relation (Figure 2).
func (e *Env) Europe() []*geom.Polygon {
	e.europeOnce.Do(func() { e.europe = data.GenerateMap(data.EuropeConfig()) })
	return e.europe
}

// BW returns the BW-analog relation (Figure 2).
func (e *Env) BW() []*geom.Polygon {
	e.bwOnce.Do(func() { e.bw = data.GenerateMap(data.BWConfig()) })
	return e.bw
}

// Series returns the four preprocessed test series of Table 2 (Europe A/B,
// BW A/B): approximation sets for every object and ground truth for every
// MBR-candidate pair.
func (e *Env) Series() []*SeriesData {
	e.seriesOnce.Do(func() {
		for _, s := range data.AllSeries() {
			e.series = append(e.series, e.prepareSeries(s))
		}
	})
	return e.series
}

// SeriesByName returns one series ("Europe A", "Europe B", "BW A", "BW B").
func (e *Env) SeriesByName(name string) *SeriesData {
	for _, s := range e.Series() {
		if s.Name == name {
			return s
		}
	}
	return nil
}

func (e *Env) prepareSeries(s data.Series) *SeriesData {
	sd := &SeriesData{Name: s.Name, R: s.R, S: s.S}
	opt := approx.AllOptions()
	opt.MECPrecision = 2e-3
	sd.SetsR = computeSets(s.R, opt)
	sd.SetsS = computeSets(s.S, opt)

	// Candidate pairs of the MBR-join with ground truth, decided by the
	// TR*-tree engine (validated against brute force in the test suites).
	treesR := make([]*trstar.Tree, len(s.R))
	treesS := make([]*trstar.Tree, len(s.S))
	var c ops.Counters
	for i, a := range s.R {
		ab := sd.SetsR[i].MBR
		for j, b := range s.S {
			if !ab.Intersects(sd.SetsS[j].MBR) {
				continue
			}
			if treesR[i] == nil {
				treesR[i] = trstar.NewFromPolygon(a, trstar.DefaultCapacity)
			}
			if treesS[j] == nil {
				treesS[j] = trstar.NewFromPolygon(b, trstar.DefaultCapacity)
			}
			hit := trstar.Intersects(treesR[i], treesS[j], &c)
			sd.Pairs = append(sd.Pairs, PairInfo{I: i, J: j, Hit: hit})
			if hit {
				sd.Hits++
			}
		}
	}
	return sd
}

func computeSets(polys []*geom.Polygon, opt approx.Options) []*approx.Set {
	out := make([]*approx.Set, len(polys))
	type job struct{ i int }
	jobs := make(chan int, len(polys))
	for i := range polys {
		jobs <- i
	}
	close(jobs)
	var wg sync.WaitGroup
	for w := 0; w < 8; w++ {
		wg.Add(1)
		go func() {
			defer wg.Done()
			for i := range jobs {
				out[i] = approx.Compute(polys[i], opt)
			}
		}()
	}
	wg.Wait()
	return out
}

// Tree returns a cached TR*-tree for one object of a series side.
func (e *Env) Tree(sd *SeriesData, side byte, idx, capacity int) *trstar.Tree {
	key := treeKey{series: sd.Name, side: side, idx: idx, capacity: capacity}
	e.mu.Lock()
	t, ok := e.treeCache[key]
	e.mu.Unlock()
	if ok {
		return t
	}
	var p *geom.Polygon
	if side == 'R' {
		p = sd.R[idx]
	} else {
		p = sd.S[idx]
	}
	t = trstar.NewFromPolygon(p, capacity)
	e.mu.Lock()
	e.treeCache[key] = t
	e.mu.Unlock()
	return t
}

// FalseHits returns the number of candidate pairs that are false hits.
func (sd *SeriesData) FalseHits() int { return len(sd.Pairs) - sd.Hits }

// seqJoin runs the unified join sequentially (one worker) under an
// explicit configuration — the experiments' measurement mode, matching
// the paper's single-CPU accounting.
func seqJoin(r, s *multistep.Relation, cfg multistep.Config) ([]multistep.Pair, multistep.Stats) {
	pairs, st, err := multistep.Join(context.Background(), r, s,
		multistep.WithConfig(cfg), multistep.WithWorkers(1))
	if err != nil {
		panic(err)
	}
	return pairs, st
}
