package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"math/rand"
	"net/http"
	"sort"
	"sync"
	"sync/atomic"
	"time"

	"spatialjoin/internal/hist"
)

// Options shapes a load run.
type Options struct {
	// BaseURL is the server root, e.g. "http://127.0.0.1:8080".
	BaseURL string
	// Workers is the client count in closed mode (each runs one request
	// at a time, back to back — classic closed-loop think-time-zero);
	// open mode uses it only as a hint and launches by schedule.
	Workers int
	// Mode is "closed" (default) or "open". Open mode fires requests on
	// a fixed arrival schedule of RateQPS and measures each latency from
	// its INTENDED start, so a slow server inflates the percentiles
	// instead of silently thinning the arrival stream (no coordinated
	// omission).
	Mode string
	// RateQPS is the open-mode arrival rate; ignored in closed mode.
	RateQPS float64
	// Mix picks queries per request: "uniform" (default) over the
	// flight, or "zipf" (rank-skewed toward the cheap head of the
	// flight order).
	Mix string
	// Warmup runs the load without recording before the measured window
	// starts — JIT-free steady state, caches primed (or deliberately
	// not: the server decides).
	Warmup time.Duration
	// Duration is the measured window.
	Duration time.Duration
	// Seed makes the request sequence reproducible.
	Seed int64
	// Client overrides the HTTP client (defaults to one with sane
	// keep-alive limits for Workers connections).
	Client *http.Client
}

// ClassReport is the measured outcome of one query class (or "all").
// Shed (429), TimedOut (504) and Degraded (partial 200) are first-class
// columns, separate from Errors: under overload or injected faults
// those responses are the resilience layer working as designed, and
// folding them into Errors would make a correctly-shedding server look
// broken. Their latencies land in Latency alongside the successes —
// every server-answered request is measured.
type ClassReport struct {
	Class    string        `json:"class"`
	Requests int64         `json:"requests"`
	Errors   int64         `json:"errors"`
	Shed     int64         `json:"shed,omitempty"`
	TimedOut int64         `json:"timed_out,omitempty"`
	Degraded int64         `json:"degraded,omitempty"`
	QPS      float64       `json:"qps"`
	Latency  hist.Snapshot `json:"latency_ms"`
}

// Report is the outcome of a load run.
type Report struct {
	SF          float64       `json:"scale_factor"`
	Mode        string        `json:"mode"`
	Mix         string        `json:"mix"`
	Workers     int           `json:"workers"`
	RateQPS     float64       `json:"rate_qps,omitempty"`
	WarmupSec   float64       `json:"warmup_sec"`
	DurationSec float64       `json:"duration_sec"`
	Overall     ClassReport   `json:"overall"`
	Classes     []ClassReport `json:"classes"`
	// ServerRSSBytes is the highest server RSS observed via /stats
	// during the run (0 if the server does not report it).
	ServerRSSBytes int64 `json:"server_rss_bytes,omitempty"`
	// ErrorSamples holds the first few distinct error strings, for
	// diagnosis; Errors counts them all.
	ErrorSamples []string `json:"error_samples,omitempty"`
}

// classTally accumulates one class's measurements.
type classTally struct {
	requests atomic.Int64
	errors   atomic.Int64
	shed     atomic.Int64
	timedOut atomic.Int64
	degraded atomic.Int64
	hist     hist.Histogram
}

// recorder collects measurements across workers.
type recorder struct {
	classes map[string]*classTally
	overall classTally

	mu      sync.Mutex
	samples []string
}

func newRecorder(f *Flight) *recorder {
	r := &recorder{classes: make(map[string]*classTally)}
	for _, q := range f.Queries {
		if _, ok := r.classes[q.Class]; !ok {
			r.classes[q.Class] = &classTally{}
		}
	}
	return r
}

func (r *recorder) record(class string, d time.Duration, oc Outcome, err error) {
	t := r.classes[class]
	t.requests.Add(1)
	r.overall.requests.Add(1)
	if err != nil {
		t.errors.Add(1)
		r.overall.errors.Add(1)
		r.mu.Lock()
		if len(r.samples) < 8 {
			s := err.Error()
			dup := false
			for _, have := range r.samples {
				if have == s {
					dup = true
					break
				}
			}
			if !dup {
				r.samples = append(r.samples, s)
			}
		}
		r.mu.Unlock()
		return
	}
	switch oc {
	case OutcomeShed:
		t.shed.Add(1)
		r.overall.shed.Add(1)
	case OutcomeTimeout:
		t.timedOut.Add(1)
		r.overall.timedOut.Add(1)
	case OutcomeDegraded:
		t.degraded.Add(1)
		r.overall.degraded.Add(1)
	}
	// Shed, timed-out and degraded responses were answered by the
	// server; their latencies are measurements, not noise.
	t.hist.RecordDuration(d)
	r.overall.hist.RecordDuration(d)
}

// Run drives the flight against the server and reports QPS and latency
// percentiles per query class. The flight should be calibrated first so
// every response is cardinality-checked; uncalibrated queries are only
// checked for well-formedness.
func Run(ctx context.Context, f *Flight, opts Options) (*Report, error) {
	if len(f.Queries) == 0 {
		return nil, fmt.Errorf("loadgen: empty flight")
	}
	if opts.Workers < 1 {
		opts.Workers = 1
	}
	if opts.Duration <= 0 {
		opts.Duration = 10 * time.Second
	}
	switch opts.Mode {
	case "", "closed":
		opts.Mode = "closed"
	case "open":
		if opts.RateQPS <= 0 {
			return nil, fmt.Errorf("loadgen: open mode needs a positive rate")
		}
	default:
		return nil, fmt.Errorf("loadgen: unknown mode %q", opts.Mode)
	}
	switch opts.Mix {
	case "", "uniform":
		opts.Mix = "uniform"
	case "zipf":
	default:
		return nil, fmt.Errorf("loadgen: unknown mix %q", opts.Mix)
	}
	client := opts.Client
	if client == nil {
		tr := http.DefaultTransport.(*http.Transport).Clone()
		tr.MaxIdleConnsPerHost = opts.Workers + 4
		client = &http.Client{Transport: tr}
	}

	rec := newRecorder(f)
	var peakRSS atomic.Int64

	ctx, cancel := context.WithCancel(ctx)
	defer cancel()

	// Sample the server's self-reported RSS through /stats while the
	// load runs.
	var rssWG sync.WaitGroup
	rssWG.Add(1)
	go func() {
		defer rssWG.Done()
		tick := time.NewTicker(250 * time.Millisecond)
		defer tick.Stop()
		for {
			if rss := serverRSS(ctx, client, opts.BaseURL); rss > peakRSS.Load() {
				peakRSS.Store(rss)
			}
			select {
			case <-ctx.Done():
				return
			case <-tick.C:
			}
		}
	}()

	start := time.Now()
	measureFrom := start.Add(opts.Warmup)
	deadline := measureFrom.Add(opts.Duration)

	pick := newPicker(f, opts)

	var err error
	if opts.Mode == "closed" {
		err = runClosed(ctx, f, opts, client, rec, pick, measureFrom, deadline)
	} else {
		err = runOpen(ctx, f, opts, client, rec, pick, measureFrom, deadline)
	}
	cancel()
	rssWG.Wait()
	if err != nil {
		return nil, err
	}

	measured := opts.Duration.Seconds()
	mk := func(class string, t *classTally) ClassReport {
		return ClassReport{
			Class:    class,
			Requests: t.requests.Load(),
			Errors:   t.errors.Load(),
			Shed:     t.shed.Load(),
			TimedOut: t.timedOut.Load(),
			Degraded: t.degraded.Load(),
			QPS:      float64(t.requests.Load()) / measured,
			Latency:  t.hist.Snapshot(),
		}
	}
	rep := &Report{
		SF:             f.Spec.SF,
		Mode:           opts.Mode,
		Mix:            opts.Mix,
		Workers:        opts.Workers,
		RateQPS:        opts.RateQPS,
		WarmupSec:      opts.Warmup.Seconds(),
		DurationSec:    measured,
		Overall:        mk("all", &rec.overall),
		ServerRSSBytes: peakRSS.Load(),
		ErrorSamples:   rec.samples,
	}
	classes := make([]string, 0, len(rec.classes))
	for c := range rec.classes {
		classes = append(classes, c)
	}
	sort.Strings(classes)
	for _, c := range classes {
		rep.Classes = append(rep.Classes, mk(c, rec.classes[c]))
	}
	return rep, nil
}

// newPicker returns a per-caller factory: each worker seeds its own
// deterministic stream so closed-loop runs are reproducible regardless
// of scheduling.
func newPicker(f *Flight, opts Options) func(workerSeed int64) func() *Query {
	n := len(f.Queries)
	return func(workerSeed int64) func() *Query {
		rng := rand.New(rand.NewSource(opts.Seed*1_000_003 + workerSeed))
		if opts.Mix == "zipf" {
			z := rand.NewZipf(rng, 1.2, 1, uint64(n-1))
			return func() *Query { return f.Queries[z.Uint64()] }
		}
		return func() *Query { return f.Queries[rng.Intn(n)] }
	}
}

// maxShedRetries bounds the closed-mode 429 retry loop: a shed request
// is retried with jittered exponential backoff at most this many times
// before the worker moves on. Every attempt is recorded — the retries
// are visible load, not hidden work.
const maxShedRetries = 3

func runClosed(ctx context.Context, f *Flight, opts Options, client *http.Client,
	rec *recorder, pick func(int64) func() *Query, measureFrom, deadline time.Time) error {
	var wg sync.WaitGroup
	for w := 0; w < opts.Workers; w++ {
		wg.Add(1)
		go func(w int) {
			defer wg.Done()
			next := pick(int64(w))
			rng := rand.New(rand.NewSource(opts.Seed*7919 + int64(w)))
			for {
				if ctx.Err() != nil || !time.Now().Before(deadline) {
					return
				}
				q := next()
				for attempt := 0; ; attempt++ {
					t0 := time.Now()
					_, oc, err := FetchOutcome(ctx, client, opts.BaseURL, q)
					if ctx.Err() != nil {
						return // cancellation errors are not server errors
					}
					if t0.After(measureFrom) {
						rec.record(q.Class, time.Since(t0), oc, err)
					}
					if oc != OutcomeShed || attempt >= maxShedRetries {
						break
					}
					// Jittered exponential backoff, per-worker deterministic:
					// ~4ms, 8ms, 16ms, each scaled by [0.5, 1.5).
					backoff := time.Duration(float64(4*time.Millisecond) *
						float64(int64(1)<<attempt) * (0.5 + rng.Float64()))
					select {
					case <-ctx.Done():
						return
					case <-time.After(backoff):
					}
					if !time.Now().Before(deadline) {
						return
					}
				}
			}
		}(w)
	}
	wg.Wait()
	return ctx.Err()
}

// runOpen fires requests on the fixed arrival schedule and measures
// each from its intended start, so queueing delay at a saturated server
// lands in the percentiles instead of vanishing (coordinated omission).
// In-flight requests are unbounded by design — backlog is the signal.
func runOpen(ctx context.Context, f *Flight, opts Options, client *http.Client,
	rec *recorder, pick func(int64) func() *Query, measureFrom, deadline time.Time) error {
	interval := time.Duration(float64(time.Second) / opts.RateQPS)
	if interval <= 0 {
		interval = time.Nanosecond
	}
	next := pick(0)
	var wg sync.WaitGroup
	start := time.Now()
	for k := 0; ; k++ {
		intended := start.Add(time.Duration(k) * interval)
		if !intended.Before(deadline) {
			break
		}
		if d := time.Until(intended); d > 0 {
			select {
			case <-ctx.Done():
				wg.Wait()
				return ctx.Err()
			case <-time.After(d):
			}
		}
		if ctx.Err() != nil {
			break
		}
		q := next()
		wg.Add(1)
		go func(q *Query, intended time.Time) {
			defer wg.Done()
			_, oc, err := FetchOutcome(ctx, client, opts.BaseURL, q)
			if ctx.Err() != nil {
				return
			}
			if intended.After(measureFrom) {
				// Open mode never retries: the arrival schedule is the
				// workload, and a shed arrival is a shed arrival.
				rec.record(q.Class, time.Since(intended), oc, err)
			}
		}(q, intended)
	}
	wg.Wait()
	return ctx.Err()
}

// serverRSS reads the server's self-reported resident set size from
// GET /stats; 0 when unavailable.
func serverRSS(ctx context.Context, client *http.Client, base string) int64 {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+"/stats", nil)
	if err != nil {
		return 0
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0
	}
	defer resp.Body.Close()
	var v struct {
		Process struct {
			RSSBytes int64 `json:"rss_bytes"`
		} `json:"process"`
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 1<<20))
	if err != nil || json.Unmarshal(body, &v) != nil {
		return 0
	}
	return v.Process.RSSBytes
}
