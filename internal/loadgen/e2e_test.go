package loadgen

import (
	"context"
	"net/http/httptest"
	"path/filepath"
	"testing"
	"time"

	"spatialjoin/internal/data"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/serve"
)

// startServer builds the two relations of the scale factor with the
// streaming store builder and serves them from a live test server —
// the full production path: StreamMap → BuildStore → shard.Open →
// serve.Handler.
func startServer(t *testing.T, spec Spec, cacheBytes int64) *httptest.Server {
	t.Helper()
	cfg := multistep.DefaultConfig()
	dir := t.TempDir()
	cat := serve.NewCatalog()
	for _, side := range []string{"R", "S"} {
		name := spec.RelationName(side)
		store := filepath.Join(dir, name+".store")
		mc, err := spec.MapConfig(side)
		if err != nil {
			t.Fatal(err)
		}
		if _, err := BuildStore(store, name, mc, 3, cfg); err != nil {
			t.Fatalf("build %s: %v", name, err)
		}
		if err := cat.LoadDir(name, store, cfg); err != nil {
			t.Fatalf("open %s: %v", name, err)
		}
	}
	srv := serve.NewServer(cat)
	srv.CacheBytes = cacheBytes
	ts := httptest.NewServer(srv.Handler())
	t.Cleanup(ts.Close)
	return ts
}

// TestFlightCalibration runs the full flight against a live server and
// checks the calibrated cardinalities against independent ground truth:
// brute-force geometry for window and point, the exact k for nearest,
// and the limit for the truncated high-selectivity window.
func TestFlightCalibration(t *testing.T) {
	spec, err := For(0.01)
	if err != nil {
		t.Fatal(err)
	}
	ts := startServer(t, spec, 0) // cache off: every fetch is a real execution
	f := NewFlight(spec)
	if len(f.Queries) != 12 {
		t.Fatalf("flight has %d queries, want 12", len(f.Queries))
	}
	ctx := context.Background()
	if err := f.Calibrate(ctx, ts.Client(), ts.URL); err != nil {
		t.Fatal(err)
	}
	byName := map[string]*Query{}
	for _, q := range f.Queries {
		if q.Expected < 0 {
			t.Errorf("%s: not calibrated", q.Name)
		}
		byName[q.Name] = q
	}

	if got := byName["nearest_small"].Expected; got != 4 {
		t.Errorf("nearest_small: %d neighbors, want exactly k=4", got)
	}
	if got := byName["nearest_large"].Expected; got != 32 {
		t.Errorf("nearest_large: %d neighbors, want exactly k=32", got)
	}
	if got := byName["window_high"].Expected; got != 100 {
		t.Errorf("window_high: %d ids, want the limit-truncated 100", got)
	}
	if got := byName["join_intersects"].Expected; got <= 0 {
		t.Errorf("join_intersects: %d pairs, want some", got)
	}
	if lo, hi := byName["join_within_low"].Expected, byName["join_within_high"].Expected; lo > hi {
		t.Errorf("join_within: epsilon %v pairs > epsilon %v pairs (%d > %d)",
			0.1, 1.0, lo, hi)
	}

	// Independent ground truth: regenerate relation R and brute-force the
	// epsilon-free window and point queries with raw geometry predicates.
	mc, err := spec.MapConfig("R")
	if err != nil {
		t.Fatal(err)
	}
	var polys []*geom.Polygon
	if _, err := data.StreamMap(mc, func(_ int32, p *geom.Polygon) error {
		polys = append(polys, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	cell := spec.Extent / float64(intSqrt(spec.Objects))
	c := 0.5 * spec.Extent

	w := geom.Rect{MinX: c - 1.5*cell, MinY: c - 1.5*cell, MaxX: c + 1.5*cell, MaxY: c + 1.5*cell}
	corners := w.Corners()
	rectPoly := geom.NewPolygon(corners[:])
	var wantWindow int64
	for _, p := range polys {
		if p.Intersects(rectPoly) {
			wantWindow++
		}
	}
	if got := byName["window_low"].Expected; got != wantWindow {
		t.Errorf("window_low: server found %d, brute force %d", got, wantWindow)
	}

	pt := geom.Point{X: c, Y: c}
	var wantPoint int64
	for _, p := range polys {
		if p.Bounds().ContainsPoint(pt) && p.ContainsPoint(pt) {
			wantPoint++
		}
	}
	if got := byName["point_center"].Expected; got != wantPoint {
		t.Errorf("point_center: server found %d, brute force %d", got, wantPoint)
	}

	// Re-fetch after calibration: cardinalities must be stable, and a
	// deliberately wrong expectation must be caught.
	for _, q := range f.Queries {
		if _, err := Fetch(ctx, ts.Client(), ts.URL, q); err != nil {
			t.Errorf("%s: post-calibration fetch: %v", q.Name, err)
		}
	}
	bad := *byName["window_low"]
	bad.Expected++
	if _, err := Fetch(ctx, ts.Client(), ts.URL, &bad); err == nil {
		t.Error("cardinality mismatch went undetected")
	}
}

// TestRunClosedLoop drives the closed-loop generator against a live
// cached server and checks the report's internal consistency.
func TestRunClosedLoop(t *testing.T) {
	spec, err := For(0.01)
	if err != nil {
		t.Fatal(err)
	}
	ts := startServer(t, spec, serve.DefaultCacheBytes)
	f := NewFlight(spec)
	ctx := context.Background()
	if err := f.Calibrate(ctx, ts.Client(), ts.URL); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(ctx, f, Options{
		BaseURL:  ts.URL,
		Workers:  4,
		Mix:      "zipf",
		Warmup:   100 * time.Millisecond,
		Duration: 400 * time.Millisecond,
		Seed:     7,
		Client:   ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overall.Errors != 0 {
		t.Fatalf("%d/%d requests errored: %v", rep.Overall.Errors, rep.Overall.Requests, rep.ErrorSamples)
	}
	if rep.Overall.Requests == 0 {
		t.Fatal("no requests measured")
	}
	if rep.Mode != "closed" || rep.Mix != "zipf" || rep.SF != spec.SF || rep.Workers != 4 {
		t.Errorf("report header wrong: %+v", rep)
	}
	var sum int64
	for _, c := range rep.Classes {
		sum += c.Requests
		if c.Latency.Count != c.Requests-c.Errors {
			t.Errorf("class %s: %d latency samples for %d ok requests",
				c.Class, c.Latency.Count, c.Requests-c.Errors)
		}
		if c.Requests > 0 && c.Latency.P50Ms > c.Latency.MaxMs {
			t.Errorf("class %s: p50 %.3fms above max %.3fms", c.Class, c.Latency.P50Ms, c.Latency.MaxMs)
		}
	}
	if sum != rep.Overall.Requests {
		t.Errorf("class requests sum to %d, overall says %d", sum, rep.Overall.Requests)
	}
	if rep.Overall.QPS <= 0 {
		t.Errorf("QPS %.1f", rep.Overall.QPS)
	}
	if rep.ServerRSSBytes <= 0 {
		t.Errorf("server RSS not sampled (got %d)", rep.ServerRSSBytes)
	}
}

// TestRunOpenMode exercises the fixed-arrival-rate loop: the scheduler
// must issue roughly rate×duration requests and measure from intended
// start times without errors.
func TestRunOpenMode(t *testing.T) {
	spec, err := For(0.01)
	if err != nil {
		t.Fatal(err)
	}
	ts := startServer(t, spec, serve.DefaultCacheBytes)
	f := NewFlight(spec)
	ctx := context.Background()
	if err := f.Calibrate(ctx, ts.Client(), ts.URL); err != nil {
		t.Fatal(err)
	}
	rep, err := Run(ctx, f, Options{
		BaseURL:  ts.URL,
		Mode:     "open",
		RateQPS:  100,
		Warmup:   50 * time.Millisecond,
		Duration: 400 * time.Millisecond,
		Seed:     11,
		Client:   ts.Client(),
	})
	if err != nil {
		t.Fatal(err)
	}
	if rep.Overall.Errors != 0 {
		t.Fatalf("%d/%d requests errored: %v", rep.Overall.Errors, rep.Overall.Requests, rep.ErrorSamples)
	}
	if rep.Overall.Requests == 0 {
		t.Fatal("no requests measured")
	}
	// 100 QPS over a 400 ms window is ~40 intended arrivals; allow wide
	// scheduling slop but catch a stuck or runaway scheduler.
	if rep.Overall.Requests > 60 {
		t.Errorf("open mode issued %d measured requests for a 40-request schedule", rep.Overall.Requests)
	}
	if rep.Mode != "open" {
		t.Errorf("mode %q", rep.Mode)
	}

	// Rejection paths of Run itself.
	if _, err := Run(ctx, f, Options{BaseURL: ts.URL, Mode: "open"}); err == nil {
		t.Error("open mode without a rate accepted")
	}
	if _, err := Run(ctx, f, Options{BaseURL: ts.URL, Mode: "sawtooth"}); err == nil {
		t.Error("unknown mode accepted")
	}
	if _, err := Run(ctx, f, Options{BaseURL: ts.URL, Mix: "pareto"}); err == nil {
		t.Error("unknown mix accepted")
	}
}
