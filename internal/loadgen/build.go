package loadgen

import (
	"bufio"
	"fmt"
	"os"
	"path/filepath"
	"slices"

	"spatialjoin/internal/data"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/shard"
)

// BuildStats reports a streaming store build.
type BuildStats struct {
	Objects int
	Tiles   int
	// Seams and QuadFallbacks carry through the generator's repair
	// accounting (see data.StreamStats).
	Seams         int
	QuadFallbacks int
	// SpillBytes is the size of the temporary geometry spill file.
	SpillBytes int64
}

// BuildStore generates the relation described by mc with the streaming
// generator and writes it as a sharded store directory at dir, under
// the facade name and preprocessing configuration given — without ever
// materializing the full relation. The build runs in three passes:
//
//  1. Stream the polygons to a temporary spill file beside dir,
//     keeping only per-object MBRs and spill offsets in memory
//     (~60 bytes/object, against ~1 KB/object for live geometry).
//  2. Z-sort the object index exactly as shard.Build does (Z code of
//     the MBR center over the union data space, ties by object ID) and
//     cut it into contiguous balanced runs.
//  3. Rehydrate one tile's polygons at a time from the spill and hand
//     them to a shard.StoreWriter; peak geometry in memory is one tile.
//
// The output is byte-identical to shard.Save(shard.Build(...)) over the
// same polygon sequence, so stores built either way are interchangeable
// and reopen with shard.Open under cfg.
func BuildStore(dir, name string, mc data.MapConfig, shards int, cfg multistep.Config) (BuildStats, error) {
	var bs BuildStats
	if mc.Cells < 1 {
		return bs, fmt.Errorf("loadgen: cannot build a store of %d objects", mc.Cells)
	}

	if err := os.MkdirAll(filepath.Dir(dir), 0o755); err != nil && filepath.Dir(dir) != "." {
		return bs, err
	}
	spill, err := os.CreateTemp(filepath.Dir(dir), ".spill-*")
	if err != nil {
		return bs, err
	}
	defer func() {
		spill.Close()
		os.Remove(spill.Name())
	}()

	// Pass 1: stream geometry to the spill (data.AppendPolygon framing —
	// the same per-polygon encoding the relation formats use), MBRs and
	// offsets to memory.
	w := bufio.NewWriterSize(spill, 1<<20)
	offsets := make([]int64, 1, mc.Cells+1)
	bounds := make([]geom.Rect, 0, mc.Cells)
	ds := geom.EmptyRect()
	var pos int64
	var scratch []byte
	st, err := data.StreamMap(mc, func(_ int32, p *geom.Polygon) error {
		scratch = data.AppendPolygon(scratch[:0], p)
		if _, err := w.Write(scratch); err != nil {
			return err
		}
		pos += int64(len(scratch))
		offsets = append(offsets, pos)
		b := p.Bounds()
		bounds = append(bounds, b)
		ds = ds.Union(b)
		return nil
	})
	if err != nil {
		return bs, err
	}
	if err := w.Flush(); err != nil {
		return bs, err
	}
	bs.Seams, bs.QuadFallbacks, bs.SpillBytes = st.Seams, st.QuadFallbacks, pos

	// Pass 2: the same partition shard.Build computes — Z code of the
	// MBR center over the union data space, ties broken by object ID,
	// contiguous balanced runs.
	n := st.Objects
	if shards < 1 {
		shards = 1
	}
	if shards > n {
		shards = n
	}
	codes := make([]uint64, n)
	for i := range codes {
		codes[i] = shard.ZCenter(bounds[i], ds)
	}
	order := make([]int32, n)
	for i := range order {
		order[i] = int32(i)
	}
	slices.SortStableFunc(order, func(a, b int32) int {
		switch {
		case codes[a] != codes[b]:
			if codes[a] < codes[b] {
				return -1
			}
			return 1
		default:
			return int(a - b)
		}
	})
	codes, bounds = nil, nil

	// Pass 3: rehydrate and preprocess one tile at a time.
	sw, err := shard.NewStoreWriter(dir, name, cfg)
	if err != nil {
		return bs, err
	}
	for t := 0; t < shards; t++ {
		lo, hi := t*n/shards, (t+1)*n/shards
		polys := make([]*geom.Polygon, 0, hi-lo)
		global := make([]int32, 0, hi-lo)
		for _, g := range order[lo:hi] {
			p, err := readSpillPolygon(spill, offsets[g], offsets[g+1]-offsets[g])
			if err != nil {
				return bs, fmt.Errorf("loadgen: spill object %d: %w", g, err)
			}
			polys = append(polys, p)
			global = append(global, g)
		}
		if err := sw.WriteTile(polys, global); err != nil {
			return bs, err
		}
	}
	if err := sw.Finish(); err != nil {
		return bs, err
	}
	bs.Objects, bs.Tiles = n, shards
	return bs, nil
}

// readSpillPolygon rehydrates one polygon from the spill by offset.
func readSpillPolygon(f *os.File, off, length int64) (*geom.Polygon, error) {
	buf := make([]byte, length)
	if _, err := f.ReadAt(buf, off); err != nil {
		return nil, err
	}
	p, n, err := data.DecodePolygon(buf)
	if err != nil {
		return nil, err
	}
	if int64(n) != length {
		return nil, fmt.Errorf("spill record of %d bytes decoded as %d", length, n)
	}
	return p, nil
}
