package loadgen

import (
	"context"
	"encoding/json"
	"fmt"
	"io"
	"net/http"
	"net/url"
	"strconv"
)

// Query is one named, fully parameterized request of the flight. The
// parameters are fixed per scale factor, so a query's response
// cardinality is a deterministic property of the dataset — Calibrate
// records it once and every subsequent response is checked against it,
// turning the load run into a continuous correctness assertion.
type Query struct {
	// Name identifies the query in reports ("join_intersects",
	// "window_low", …).
	Name string
	// Class is the latency-histogram group: join, window, point or
	// nearest.
	Class string
	// Path is the request path and query string, relative to the server
	// base URL.
	Path string
	// Expected is the calibrated response cardinality; -1 before
	// Calibrate.
	Expected int64
}

// Flight is the fixed query set the load generator samples from — the
// harness's Wisconsin-style micro-benchmark: every query is named,
// parameterized by the scale factor only, and individually checkable.
// Queries are ordered cheapest-first; the Zipf mix weights the head of
// this order, so a skewed mix behaves like a realistic read-heavy
// workload (frequent cheap point/window lookups, occasional full
// joins).
type Flight struct {
	Spec    Spec
	Queries []*Query
}

// NewFlight builds the standard 12-query flight over the two relations
// of spec (which must be registered on the server under
// spec.RelationName("R") / ("S")).
//
// Geometric parameters derive from the dataset's invariants: the mean
// object diameter is one grid cell ≈ extent/√objects = 1/√SFObjects —
// CONSTANT across scale factors by the constant-density design — so
// epsilons and window sides expressed in cells keep each query's
// per-object selectivity comparable at every SF.
func NewFlight(spec Spec) *Flight {
	ext := spec.Extent
	cell := ext / float64(intSqrt(spec.Objects))
	c := 0.5 * ext
	relR, relS := spec.RelationName("R"), spec.RelationName("S")

	num := func(v float64) string { return strconv.FormatFloat(v, 'g', -1, 64) }
	window := func(cx, cy, half float64, extra url.Values) string {
		v := url.Values{}
		v.Set("rel", relR)
		v.Set("minx", num(cx-half))
		v.Set("miny", num(cy-half))
		v.Set("maxx", num(cx+half))
		v.Set("maxy", num(cy+half))
		for k, vs := range extra {
			v[k] = vs
		}
		return "/window?" + v.Encode()
	}
	point := func(x, y float64, extra url.Values) string {
		v := url.Values{}
		v.Set("rel", relR)
		v.Set("x", num(x))
		v.Set("y", num(y))
		for k, vs := range extra {
			v[k] = vs
		}
		return "/point?" + v.Encode()
	}
	nearest := func(x, y float64, k int) string {
		v := url.Values{}
		v.Set("rel", relR)
		v.Set("x", num(x))
		v.Set("y", num(y))
		v.Set("k", strconv.Itoa(k))
		return "/nearest?" + v.Encode()
	}
	join := func(pred string, epsilon float64) string {
		v := url.Values{}
		v.Set("r", relR)
		v.Set("s", relS)
		v.Set("predicate", pred)
		if epsilon > 0 {
			v.Set("epsilon", num(epsilon))
		}
		// Bound the response body: the statistics report the full result
		// cardinality whatever the limit.
		v.Set("limit", "10")
		return "/join?" + v.Encode()
	}

	qs := []*Query{
		{Name: "point_center", Class: "point", Path: point(c, c, nil)},
		{Name: "point_eps", Class: "point", Path: point(c+4*cell, c-4*cell, url.Values{"epsilon": {num(cell)}})},
		{Name: "nearest_small", Class: "nearest", Path: nearest(c+8*cell, c+8*cell, 4)},
		{Name: "nearest_large", Class: "nearest", Path: nearest(c-12*cell, c-12*cell, 32)},
		{Name: "window_low", Class: "window", Path: window(c, c, 1.5*cell, nil)},
		{Name: "window_edge", Class: "window", Path: window(0.1*ext, 0.1*ext, 2*cell, nil)},
		{Name: "window_eps", Class: "window", Path: window(c-6*cell, c+6*cell, 1.5*cell, url.Values{"epsilon": {num(2 * cell)}})},
		{Name: "window_high", Class: "window", Path: window(c, c, 0.25*ext, url.Values{"limit": {"100"}})},
		{Name: "join_within_low", Class: "join", Path: join("within", 0.1*cell)},
		{Name: "join_intersects", Class: "join", Path: join("intersects", 0)},
		{Name: "join_contains", Class: "join", Path: join("contains", 0)},
		{Name: "join_within_high", Class: "join", Path: join("within", cell)},
	}
	for _, q := range qs {
		q.Expected = -1
	}
	return &Flight{Spec: spec, Queries: qs}
}

func intSqrt(n int) int {
	k := 1
	for (k+1)*(k+1) <= n {
		k++
	}
	return k
}

// Calibrate runs every query once against the server and records its
// response cardinality as the expected value for the run. It doubles as
// the flight's smoke test: any non-200 response fails calibration.
func (f *Flight) Calibrate(ctx context.Context, client *http.Client, base string) error {
	for _, q := range f.Queries {
		card, err := Fetch(ctx, client, base, q)
		if err != nil {
			return fmt.Errorf("loadgen: calibrate %s: %w", q.Name, err)
		}
		q.Expected = card
	}
	return nil
}

// The response slivers the harness parses: just enough to extract the
// deterministic cardinality of each query class. Joins report the full
// result-set size in the statistics whatever the inline limit;
// window/point responses return the (limit-truncated, but
// deterministically ordered) ID prefix; nearest returns exactly k
// neighbors.
type joinSliver struct {
	Stats struct {
		ResultPairs int64
	} `json:"stats"`
}

type windowSliver struct {
	Degraded bool    `json:"degraded"`
	IDs      []int32 `json:"ids"`
}

type nearestSliver struct {
	Degraded  bool              `json:"degraded"`
	Neighbors []json.RawMessage `json:"neighbors"`
}

type errorSliver struct {
	Error string `json:"error"`
}

// Outcome classifies one request's result. Shed, timed-out and degraded
// responses are first-class outcomes, not errors: a resilient server
// under overload or injected faults is SUPPOSED to produce them, and a
// chaos run needs to count them separately from genuine failures
// (malformed bodies, wrong cardinalities, unexpected statuses).
type Outcome string

const (
	// OutcomeOK is a well-formed 200 with the calibrated cardinality.
	OutcomeOK Outcome = "ok"
	// OutcomeShed is a 429 from admission control.
	OutcomeShed Outcome = "shed"
	// OutcomeTimeout is a 504 from a fired server-side deadline.
	OutcomeTimeout Outcome = "timeout"
	// OutcomeDegraded is a well-formed 200 with degraded:true (partial
	// results after tile failure); its cardinality is not checked — the
	// answer legitimately covers fewer tiles.
	OutcomeDegraded Outcome = "degraded"
	// OutcomeError is everything else.
	OutcomeError Outcome = "error"
)

// Fetch issues q against base and returns the response cardinality. A
// non-200 status, a malformed body, or (after calibration) a
// cardinality mismatch is an error — including shed, timed-out and
// degraded responses, which Calibrate and other strict callers must
// treat as failures. Load runs use FetchOutcome instead.
func Fetch(ctx context.Context, client *http.Client, base string, q *Query) (int64, error) {
	card, oc, err := FetchOutcome(ctx, client, base, q)
	if err != nil {
		return card, err
	}
	switch oc {
	case OutcomeShed:
		return card, fmt.Errorf("request shed (status 429)")
	case OutcomeTimeout:
		return card, fmt.Errorf("request timed out server-side (status 504)")
	case OutcomeDegraded:
		return card, fmt.Errorf("degraded response")
	}
	return card, nil
}

// FetchOutcome issues q against base and classifies the result. The
// outcome is OutcomeError exactly when the returned error is non-nil.
func FetchOutcome(ctx context.Context, client *http.Client, base string, q *Query) (int64, Outcome, error) {
	req, err := http.NewRequestWithContext(ctx, http.MethodGet, base+q.Path, nil)
	if err != nil {
		return 0, OutcomeError, err
	}
	resp, err := client.Do(req)
	if err != nil {
		return 0, OutcomeError, err
	}
	body, err := io.ReadAll(io.LimitReader(resp.Body, 64<<20))
	resp.Body.Close()
	if err != nil {
		return 0, OutcomeError, err
	}
	switch resp.StatusCode {
	case http.StatusOK:
	case http.StatusTooManyRequests:
		return 0, OutcomeShed, nil
	case http.StatusGatewayTimeout:
		return 0, OutcomeTimeout, nil
	default:
		var e errorSliver
		if json.Unmarshal(body, &e) == nil && e.Error != "" {
			return 0, OutcomeError, fmt.Errorf("status %d: %s", resp.StatusCode, e.Error)
		}
		return 0, OutcomeError, fmt.Errorf("status %d", resp.StatusCode)
	}

	var card int64
	degraded := false
	switch q.Class {
	case "join":
		var v joinSliver
		if err := json.Unmarshal(body, &v); err != nil {
			return 0, OutcomeError, fmt.Errorf("bad join body: %w", err)
		}
		card = v.Stats.ResultPairs
	case "window", "point":
		var v windowSliver
		if err := json.Unmarshal(body, &v); err != nil {
			return 0, OutcomeError, fmt.Errorf("bad %s body: %w", q.Class, err)
		}
		card, degraded = int64(len(v.IDs)), v.Degraded
	case "nearest":
		var v nearestSliver
		if err := json.Unmarshal(body, &v); err != nil {
			return 0, OutcomeError, fmt.Errorf("bad nearest body: %w", err)
		}
		card, degraded = int64(len(v.Neighbors)), v.Degraded
	default:
		return 0, OutcomeError, fmt.Errorf("unknown query class %q", q.Class)
	}
	if degraded {
		return card, OutcomeDegraded, nil
	}
	if q.Expected >= 0 && card != q.Expected {
		return card, OutcomeError, fmt.Errorf("cardinality %d, expected %d", card, q.Expected)
	}
	return card, OutcomeOK, nil
}
