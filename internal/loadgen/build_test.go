package loadgen

import (
	"bytes"
	"os"
	"path/filepath"
	"testing"

	"spatialjoin/internal/data"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/multistep"
	"spatialjoin/internal/shard"
)

func TestSpecFor(t *testing.T) {
	s, err := For(1)
	if err != nil {
		t.Fatal(err)
	}
	if s.Objects != SFObjects || s.Extent != 1 || s.Verts != SFVerts {
		t.Fatalf("SF=1 spec: %+v", s)
	}
	s, err = For(0.01)
	if err != nil {
		t.Fatal(err)
	}
	if s.Objects != 1300 {
		t.Fatalf("SF=0.01 objects = %d, want 1300", s.Objects)
	}
	if s.RelationName("R") != "sf0.01-R" || s.RelationName("S") != "sf0.01-S" {
		t.Fatalf("names: %q %q", s.RelationName("R"), s.RelationName("S"))
	}
	if _, err := For(0); err == nil {
		t.Fatal("SF=0 accepted")
	}
	r, _ := s.MapConfig("R")
	sS, _ := s.MapConfig("S")
	if r.Seed == sS.Seed {
		t.Fatal("R and S share a seed")
	}
	if _, err := s.MapConfig("Q"); err == nil {
		t.Fatal("unknown side accepted")
	}
}

// TestBuildStoreMatchesShardBuild is the interchangeability contract:
// the bounded-memory streaming build must produce a store directory
// byte-identical to materializing the same polygon sequence and running
// shard.Build + shard.Save — same partition, same tile files, same
// manifest.
func TestBuildStoreMatchesShardBuild(t *testing.T) {
	mc := data.MapConfig{Cells: 400, TargetVerts: 28, HoleFraction: 0.06, Seed: 42}
	cfg := multistep.DefaultConfig()
	const shards = 4

	var polys []*geom.Polygon
	if _, err := data.StreamMap(mc, func(_ int32, p *geom.Polygon) error {
		polys = append(polys, p)
		return nil
	}); err != nil {
		t.Fatal(err)
	}
	dirA := filepath.Join(t.TempDir(), "materialized")
	if err := shard.Save(dirA, shard.Build("rel", polys, shards, cfg)); err != nil {
		t.Fatal(err)
	}

	dirB := filepath.Join(t.TempDir(), "streamed")
	bs, err := BuildStore(dirB, "rel", mc, shards, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if bs.Objects != 400 || bs.Tiles != shards {
		t.Fatalf("build stats: %+v", bs)
	}

	entriesA, err := os.ReadDir(dirA)
	if err != nil {
		t.Fatal(err)
	}
	entriesB, err := os.ReadDir(dirB)
	if err != nil {
		t.Fatal(err)
	}
	if len(entriesA) != len(entriesB) {
		t.Fatalf("file counts differ: %d vs %d", len(entriesA), len(entriesB))
	}
	for i, ea := range entriesA {
		if entriesB[i].Name() != ea.Name() {
			t.Fatalf("file %d: %q vs %q", i, ea.Name(), entriesB[i].Name())
		}
		a, err := os.ReadFile(filepath.Join(dirA, ea.Name()))
		if err != nil {
			t.Fatal(err)
		}
		b, err := os.ReadFile(filepath.Join(dirB, ea.Name()))
		if err != nil {
			t.Fatal(err)
		}
		if !bytes.Equal(a, b) {
			t.Fatalf("%s differs between materialized and streamed builds", ea.Name())
		}
	}

	// And the streamed store must round-trip through the normal opener.
	sh, err := shard.Open(dirB, cfg)
	if err != nil {
		t.Fatal(err)
	}
	if sh.Objects() != 400 || sh.Shards() != shards || sh.Name != "rel" {
		t.Fatalf("reopened store: objects=%d shards=%d name=%q", sh.Objects(), sh.Shards(), sh.Name)
	}
	// No spill file may remain beside the store.
	leftovers, _ := filepath.Glob(filepath.Join(filepath.Dir(dirB), ".spill-*"))
	if len(leftovers) != 0 {
		t.Fatalf("spill files left behind: %v", leftovers)
	}
}
