// Package loadgen is the service-level load harness: scale-factor
// dataset specs with bounded-memory store builds, a fixed flight of
// named parameterized queries with expected-cardinality checks, and a
// multi-client closed/open-loop generator that drives a live
// spatialjoinserve over HTTP and reports QPS and latency percentiles
// per query class. DESIGN.md §13 describes the harness; cmd/loadtest
// and cmd/datagen -sf are the front ends.
package loadgen

import (
	"fmt"
	"math"

	"spatialjoin/internal/data"
)

// SFObjects is the per-relation object count at scale factor 1 — the
// paper's section-5 map size class. Counts scale linearly with SF.
const SFObjects = 130_000

// SFVerts is the average vertex count per object at every scale
// factor: SF scales how MANY objects there are, never their shape.
const SFVerts = 28

// sfSeed anchors the generation seeds of all scale-factor datasets, so
// any two builds of the same SF are identical stores.
const sfSeed = 73_520_100

// Spec is a scale-factor dataset: two relations R and S of Objects
// polygons each, generated over the same [0, Extent]² territory from
// different seeds, so their join behaves like the paper's map-overlay
// workloads. The data space grows with √SF on each axis while object
// sizes stay fixed — density, selectivity per unit area, and per-object
// cost are constant across scale factors, which is what makes latencies
// at different SFs comparable (SSB-style scaling, not a zoom).
type Spec struct {
	SF      float64
	Objects int
	Verts   int
	Extent  float64
	// HoleFraction matches the repository's default map character.
	HoleFraction float64
	// SeedR and SeedS generate the two sides.
	SeedR, SeedS int64
}

// For resolves a scale factor to its dataset spec. SF must be positive;
// the practical range is 0.01 (1 300 objects, a CI smoke dataset) to
// 100+ (13 M objects, bounded-memory builds only).
func For(sf float64) (Spec, error) {
	if !(sf > 0) || math.IsInf(sf, 0) {
		return Spec{}, fmt.Errorf("loadgen: scale factor %v out of range", sf)
	}
	objects := int(math.Round(sf * SFObjects))
	if objects < 16 {
		objects = 16
	}
	return Spec{
		SF:           sf,
		Objects:      objects,
		Verts:        SFVerts,
		Extent:       math.Sqrt(sf),
		HoleFraction: 0.06,
		SeedR:        sfSeed,
		SeedS:        sfSeed + 1,
	}, nil
}

// MapConfig returns the streaming-generator configuration for one side
// of the dataset (side "R" or "S").
func (s Spec) MapConfig(side string) (data.MapConfig, error) {
	cfg := data.MapConfig{
		Cells:        s.Objects,
		TargetVerts:  s.Verts,
		HoleFraction: s.HoleFraction,
		Extent:       s.Extent,
	}
	switch side {
	case "R":
		cfg.Seed = s.SeedR
	case "S":
		cfg.Seed = s.SeedS
	default:
		return data.MapConfig{}, fmt.Errorf("loadgen: unknown side %q (want R or S)", side)
	}
	return cfg, nil
}

// RelationName names one side's relation in the catalog: "sfN-R" style,
// with the SF formatted compactly (sf0.01-R, sf1-R, sf10-S).
func (s Spec) RelationName(side string) string {
	return fmt.Sprintf("sf%s-%s", trimFloat(s.SF), side)
}

func trimFloat(v float64) string {
	if v == math.Trunc(v) {
		return fmt.Sprintf("%d", int64(v))
	}
	return fmt.Sprintf("%g", v)
}
