package multistep

import (
	"context"
	"math"
	"testing"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/data"
	"spatialjoin/internal/geom"
)

// NestedLoopsWithin is the brute-force oracle of the ε-join: all pairs
// within eps by the exact region distance (geom.Polygon.DistToPolygon).
func NestedLoopsWithin(r, s []*geom.Polygon, eps float64) []Pair {
	var out []Pair
	for i, a := range r {
		for j, b := range s {
			if a.DistToPolygon(b) <= eps {
				out = append(out, Pair{A: int32(i), B: int32(j)})
			}
		}
	}
	return out
}

// withinSeries is a smaller workload than smallSeries: the ε-join oracle
// is quadratic in pairs with a full distance computation each.
func withinSeries(t *testing.T) ([]*geom.Polygon, []*geom.Polygon) {
	t.Helper()
	r := data.GenerateMap(data.MapConfig{Cells: 48, TargetVerts: 36, HoleFraction: 0.1, Seed: 433})
	s := data.StrategyA(r, 0.45)
	return r, s
}

// TestWithinDistanceMatchesBruteForce is the ε-join's correctness
// theorem: for every exact engine, with and without the geometric
// filter, and for ε ∈ {0, small, large}, the unified Join under
// WithinDistance computes exactly the brute-force response set by exact
// region distance.
func TestWithinDistanceMatchesBruteForce(t *testing.T) {
	rp, sp := withinSeries(t)
	// The small ε is on the order of a cell diameter fraction; the large
	// one makes nearly everything qualify — both regimes plus the ε = 0
	// degeneration to the intersection join are pinned.
	for _, eps := range []float64{0, 0.008, 0.15} {
		want := NestedLoopsWithin(rp, sp, eps)
		if len(want) == 0 {
			t.Fatalf("eps=%g: oracle found nothing; test is vacuous", eps)
		}
		for _, engine := range []Engine{EngineQuadratic, EnginePlaneSweep, EngineTRStar} {
			for _, useFilter := range []bool{false, true} {
				cfg := DefaultConfig()
				cfg.Engine = engine
				cfg.UseFilter = useFilter
				r := NewRelation("R", rp, cfg)
				s := NewRelation("S", sp, cfg)
				got, st, err := Join(context.Background(), r, s,
					WithPredicate(WithinDistance(eps)))
				if err != nil {
					t.Fatal(err)
				}
				name := engine.String()
				if useFilter {
					name += "+filter"
				}
				assertSameResponse(t, name, got, want)
				if st.CandidatePairs < int64(len(want)) {
					t.Errorf("eps=%g %s: candidate set smaller than the response set", eps, name)
				}
			}
		}
	}
}

// TestWithinZeroEqualsIntersects pins the degeneration: the ε-join at
// ε = 0 answers exactly the intersection join on every engine.
func TestWithinZeroEqualsIntersects(t *testing.T) {
	rp, sp := withinSeries(t)
	for _, engine := range []Engine{EngineQuadratic, EnginePlaneSweep, EngineTRStar} {
		cfg := DefaultConfig()
		cfg.Engine = engine
		r := NewRelation("R", rp, cfg)
		s := NewRelation("S", sp, cfg)
		inter, _, err := Join(context.Background(), r, s)
		if err != nil {
			t.Fatal(err)
		}
		within, _, err := Join(context.Background(), r, s, WithPredicate(WithinDistance(0)))
		if err != nil {
			t.Fatal(err)
		}
		assertSameResponse(t, engine.String()+" eps=0", within, inter)
	}
}

// TestWithinStreamingEquivalence proves the streaming emission of the
// ε-join equals the collected response set with identical statistics,
// across worker counts — the new predicate rides the same pipeline
// guarantees as the intersection join.
func TestWithinStreamingEquivalence(t *testing.T) {
	rp, sp := withinSeries(t)
	const eps = 0.02
	cfg := DefaultConfig()
	r := NewRelation("R", rp, cfg)
	s := NewRelation("S", sp, cfg)

	clearBuffers(r, s)
	want, wantSt, err := Join(context.Background(), r, s,
		WithPredicate(WithinDistance(eps)), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	if len(want) == 0 {
		t.Fatal("ε-join produced nothing; test is vacuous")
	}
	for _, workers := range []int{1, 2, 4, 0} {
		clearBuffers(r, s)
		var got []Pair
		_, st, err := Join(context.Background(), r, s,
			WithPredicate(WithinDistance(eps)), WithWorkers(workers),
			WithStream(func(p Pair) { got = append(got, p) }))
		if err != nil {
			t.Fatal(err)
		}
		assertSameResponse(t, "stream", got, want)
		if st != wantSt {
			t.Errorf("workers=%d: streamed ε-join stats diverge:\n got %+v\nwant %+v", workers, st, wantSt)
		}
	}
}

// TestWithinFilterSoundness checks the distance filter classifications
// directly against exact distances: a FalseHit must have distance > ε, a
// Hit must have distance ≤ ε.
func TestWithinFilterSoundness(t *testing.T) {
	rp, sp := withinSeries(t)
	cfg := DefaultConfig()
	r := NewRelation("R", rp, cfg)
	s := NewRelation("S", sp, cfg)
	const eps = 0.01
	decided := 0
	for _, oa := range r.Objects {
		for _, ob := range s.Objects {
			if oa.Approx.MBR.Dist(ob.Approx.MBR) > 2*eps {
				continue // keep the oracle work bounded
			}
			truth := oa.Poly.DistToPolygon(ob.Poly)
			switch WithinDistance(eps).classify(cfg.Filter, oa, ob) {
			case approx.Hit:
				decided++
				if truth > eps {
					t.Fatalf("UNSOUND hit: objects %d,%d at distance %g > ε=%g", oa.ID, ob.ID, truth, eps)
				}
			case approx.FalseHit:
				decided++
				if truth <= eps {
					t.Fatalf("UNSOUND false hit: objects %d,%d at distance %g ≤ ε=%g", oa.ID, ob.ID, truth, eps)
				}
			}
		}
	}
	if decided == 0 {
		t.Fatal("the ε filter never decided anything")
	}
}

// TestWithinRangeQuery validates the ε-range Query (point and window
// targets under WithinDistance) against brute-force distances.
func TestWithinRangeQuery(t *testing.T) {
	polys := data.GenerateMap(data.MapConfig{Cells: 90, TargetVerts: 32, Seed: 457})
	cfg := DefaultConfig()
	rel := NewRelation("R", polys, cfg)
	pts := []geom.Point{{X: 0.5, Y: 0.5}, {X: 0.1, Y: 0.85}, {X: -0.2, Y: 0.4}}
	for _, eps := range []float64{0, 0.03, 0.4} {
		for _, p := range pts {
			res, err := Query(context.Background(), rel,
				ForPoint(p), WithPredicate(WithinDistance(eps)))
			if err != nil {
				t.Fatal(err)
			}
			got := map[int32]bool{}
			for _, id := range res.IDs {
				got[id] = true
			}
			for i, poly := range polys {
				want := poly.DistToPoint(p) <= eps
				if got[int32(i)] != want {
					t.Fatalf("eps=%g point %v object %d: query %v, truth %v",
						eps, p, i, got[int32(i)], want)
				}
			}
		}
		w := geom.Rect{MinX: 0.4, MinY: 0.42, MaxX: 0.52, MaxY: 0.5}
		res, err := Query(context.Background(), rel,
			ForWindow(w), WithPredicate(WithinDistance(eps)))
		if err != nil {
			t.Fatal(err)
		}
		got := map[int32]bool{}
		for _, id := range res.IDs {
			got[id] = true
		}
		for i, poly := range polys {
			want := poly.DistToRect(w) <= eps
			if got[int32(i)] != want {
				t.Fatalf("eps=%g window object %d: query %v, truth %v", eps, i, got[int32(i)], want)
			}
		}
	}
}

// TestDistToPolygonKernel sanity-checks the oracle kernel itself on
// hand-computable configurations.
func TestDistToPolygonKernel(t *testing.T) {
	unit := geom.NewPolygon([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}})
	if d := unit.DistToPolygon(unit); d != 0 {
		t.Errorf("self distance = %g", d)
	}
	right := geom.NewPolygon([]geom.Point{{X: 3, Y: 0}, {X: 4, Y: 0}, {X: 4, Y: 1}, {X: 3, Y: 1}})
	if d := unit.DistToPolygon(right); math.Abs(d-2) > 1e-12 {
		t.Errorf("axis gap distance = %g, want 2", d)
	}
	diag := geom.NewPolygon([]geom.Point{{X: 4, Y: 4}, {X: 5, Y: 4}, {X: 5, Y: 5}, {X: 4, Y: 5}})
	if d := unit.DistToPolygon(diag); math.Abs(d-3*math.Sqrt2) > 1e-12 {
		t.Errorf("diagonal distance = %g, want %g", d, 3*math.Sqrt2)
	}
	inner := geom.NewPolygon([]geom.Point{{X: 0.4, Y: 0.4}, {X: 0.6, Y: 0.4}, {X: 0.6, Y: 0.6}, {X: 0.4, Y: 0.6}})
	if d := unit.DistToPolygon(inner); d != 0 {
		t.Errorf("contained distance = %g", d)
	}
	// A polygon inside the hole of an annulus is separated by the rim gap.
	annulus := geom.NewPolygon(
		[]geom.Point{{X: -2, Y: -2}, {X: 3, Y: -2}, {X: 3, Y: 3}, {X: -2, Y: 3}},
		[]geom.Point{{X: -1, Y: -1}, {X: 2, Y: -1}, {X: 2, Y: 2}, {X: -1, Y: 2}},
	)
	if d := annulus.DistToPolygon(unit); math.Abs(d-1) > 1e-12 {
		t.Errorf("hole distance = %g, want 1", d)
	}
	if d := unit.DistToRect(geom.Rect{MinX: 2, MinY: 1, MaxX: 3, MaxY: 2}); math.Abs(d-1) > 1e-12 {
		t.Errorf("rect distance = %g, want 1", d)
	}
}
