package multistep

import "spatialjoin/internal/geom"

// Neighbor is one result of a nearest-neighbour query: an object ID with
// its exact distance to the query point (0 when the point lies in the
// object's region). Nearest queries run through the unified Query entry
// point with the ForNearest target (see api.go).
type Neighbor struct {
	ID   int32
	Dist float64
}

// mbrDist returns the Euclidean distance from p to the closed rectangle —
// the lower bound the best-first refinement of nearestQuery prunes with.
func mbrDist(r geom.Rect, p geom.Point) float64 {
	return r.Dist(geom.Rect{MinX: p.X, MinY: p.Y, MaxX: p.X, MaxY: p.Y})
}
