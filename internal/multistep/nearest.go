package multistep

import (
	"sort"

	"spatialjoin/internal/geom"
	"spatialjoin/internal/storage"
)

// Neighbor is one result of a nearest-neighbour query: an object ID with
// its exact distance to the query point (0 when the point lies in the
// object's region).
type Neighbor struct {
	ID   int32
	Dist float64
}

// NearestObjects returns the k objects of r closest to p by exact region
// distance — one of the basic spatial operations of section 2. The search
// refines R*-tree nearest-neighbour candidates (whose MBR distance is a
// lower bound of the region distance) until the k-th exact distance is
// proven final: when the k-th best exact distance does not exceed the MBR
// distance of the next unexamined candidate, no further object can
// improve the result.
//
// Page visits are accounted on the shared tree buffer (single-query
// mode); NearestObjectsAccess is the concurrent-query variant.
func NearestObjects(r *Relation, p geom.Point, k int) []Neighbor {
	return NearestObjectsAccess(r, r.Tree.Buffer(), p, k)
}

// NearestObjectsAccess is NearestObjects with page visits routed through
// an explicit access context (see WindowQueryAccess).
func NearestObjectsAccess(r *Relation, ax storage.Accessor, p geom.Point, k int) []Neighbor {
	if k <= 0 || len(r.Objects) == 0 {
		return nil
	}
	if k > len(r.Objects) {
		k = len(r.Objects)
	}
	fetch := k * 4
	if fetch < k+8 {
		fetch = k + 8
	}
	for {
		if fetch > len(r.Objects) {
			fetch = len(r.Objects)
		}
		cands := r.Tree.NearestNeighborsAccess(ax, p, fetch)
		out := make([]Neighbor, 0, len(cands))
		for _, it := range cands {
			out = append(out, Neighbor{
				ID:   it.ID,
				Dist: r.Objects[it.ID].Poly.DistToPoint(p),
			})
		}
		sort.Slice(out, func(i, j int) bool {
			if out[i].Dist != out[j].Dist {
				return out[i].Dist < out[j].Dist
			}
			return out[i].ID < out[j].ID
		})
		if fetch == len(r.Objects) {
			return out[:k]
		}
		// The MBR distance of the last candidate bounds every unexamined
		// object from below.
		lastMBRDist := mbrDist(cands[len(cands)-1].Rect, p)
		if out[k-1].Dist <= lastMBRDist {
			return out[:k]
		}
		fetch *= 2
	}
}

func mbrDist(r geom.Rect, p geom.Point) float64 {
	dx := 0.0
	if p.X < r.MinX {
		dx = r.MinX - p.X
	} else if p.X > r.MaxX {
		dx = p.X - r.MaxX
	}
	dy := 0.0
	if p.Y < r.MinY {
		dy = r.MinY - p.Y
	} else if p.Y > r.MaxY {
		dy = p.Y - r.MaxY
	}
	if dx == 0 {
		return dy
	}
	if dy == 0 {
		return dx
	}
	return geom.Point{X: dx, Y: dy}.Norm()
}
