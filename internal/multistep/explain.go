package multistep

import (
	"math"
	"runtime"
	"time"

	"spatialjoin/internal/plan"
)

// This file is the adaptive-planning surface of the join processor. The
// planner itself lives in internal/plan (statistics, selectivity, cost,
// search); here it is bridged into the option machinery:
//
//   - WithPlan() lets Join resolve the options the caller left unset —
//     exact engine, filter on/off, worker count — through the planner.
//     Explicit options always win: WithConfig pins the engine and the
//     filter, WithWorkers pins the worker count, and a pinned dimension
//     reaches the planner as a one-element candidate list, so a fully
//     pinned planned join executes bit-identically to the unplanned
//     call (the regression tests assert exactly that).
//   - WithExplain(&ex) captures the chosen plan, its predicted cost,
//     and — after execution — the predicted-vs-actual error.
//   - ExplainJoin plans without executing (the EXPLAIN verb).
//
// Planning is opt-in by design: the bare Join/Query entry points keep
// the paper's semantics (the relations' build configuration verbatim),
// so every golden-statistics suite pins the same numbers it always did.
// The serving layer and the CLI tools turn planning on by default.

// Plan describes the execution configuration one call ran (or would
// run) under. Engine names use the canonical parseable spelling
// ("trstar", "planesweep", "quadratic").
type Plan struct {
	// Planned reports whether the planner chose any dimension; false
	// means the plan merely echoes the caller's resolved options (no
	// WithPlan, or relations without statistics).
	Planned bool `json:"planned"`
	// Engine, UseFilter and Workers are the resolved execution knobs.
	Engine    string `json:"engine"`
	UseFilter bool   `json:"filter"`
	Workers   int    `json:"workers"`
	// Stream reports the caller's emission mode (WithStream);
	// StreamRecommended is the planner's advice to stream when the
	// predicted response set is large. The planner cannot change the
	// caller's API shape, so the two may disagree.
	Stream            bool `json:"stream"`
	StreamRecommended bool `json:"streamRecommended,omitempty"`
	// Predicted* are the planner's estimates; zero when not planned.
	PredictedCandidates  float64 `json:"predictedCandidates,omitempty"`
	PredictedExactTested float64 `json:"predictedExactTested,omitempty"`
	PredictedResultPairs float64 `json:"predictedResultPairs,omitempty"`
	PredictedCostNs      float64 `json:"predictedCostNs,omitempty"`
}

// Explain is the EXPLAIN record of one join: the plan, and after
// execution the measured counts and the prediction error.
type Explain struct {
	Plan     Plan `json:"plan"`
	Executed bool `json:"executed"`
	// Actual* are filled after a successful execution.
	ActualCandidates  int64 `json:"actualCandidates,omitempty"`
	ActualExactTested int64 `json:"actualExactTested,omitempty"`
	ActualResultPairs int64 `json:"actualResultPairs,omitempty"`
	ActualWallNs      int64 `json:"actualWallNs,omitempty"`
	// CandidateError and CostError are predicted/actual ratios (1 is a
	// perfect prediction); zero when the run was not planned or the
	// denominator is zero.
	CandidateError float64 `json:"candidateError,omitempty"`
	CostError      float64 `json:"costError,omitempty"`
}

// WithPlan resolves the options the caller left unset through the
// cost-based planner: the exact engine and filter setting (unless
// WithConfig pinned them) and the worker count (unless WithWorkers did).
// Relations without statistics fall back to their build configuration
// unchanged. See internal/plan for the model.
func WithPlan() Option {
	return func(o *queryOptions) { o.planned = true }
}

// WithExplain records the resolved plan and, after execution, the
// predicted-vs-actual error into *ex. It composes with WithPlan (the
// chosen plan) or without it (an echo of the static configuration).
func WithExplain(ex *Explain) Option {
	return func(o *queryOptions) { o.explain = ex }
}

// ExplainJoin resolves and plans a join exactly as Join with the same
// options would, without executing it — the EXPLAIN verb.
func ExplainJoin(r, s *Relation, opts ...Option) (Explain, error) {
	o := resolve(opts)
	if err := o.pred.validate(); err != nil {
		return Explain{}, err
	}
	cfg, err := joinConfig(r, s, &o)
	if err != nil {
		return Explain{}, err
	}
	var ex Explain
	if o.planned {
		_, _, ex.Plan = planJoin(r, s, cfg, &o)
	} else {
		ex.Plan = echoPlan(cfg, &o)
	}
	return ex, nil
}

// planPred maps a predicate kind onto the planner's mirror type.
func planPred(p Predicate) plan.Pred { return plan.Pred(p.kind) }

// effectiveWorkers mirrors the worker defaulting of the join pipeline
// (withDefaults): ≤ 0 selects GOMAXPROCS, and everything is clamped to
// 4×GOMAXPROCS.
func effectiveWorkers(n int) int {
	if n <= 0 {
		n = runtime.GOMAXPROCS(0)
	}
	if maxWorkers := 4 * runtime.GOMAXPROCS(0); n > maxWorkers {
		n = maxWorkers
	}
	return n
}

// workerGrid returns the candidate worker counts of an unpinned search:
// powers of two from 1 to the pipeline's 4×GOMAXPROCS clamp.
func workerGrid() []int {
	limit := 4 * runtime.GOMAXPROCS(0)
	var ws []int
	for w := 1; w <= limit; w *= 2 {
		ws = append(ws, w)
	}
	return ws
}

// echoPlan describes the static (unplanned) execution of a call.
func echoPlan(cfg Config, o *queryOptions) Plan {
	return Plan{
		Engine:    plan.Engine(cfg.Engine).String(),
		UseFilter: cfg.UseFilter,
		Workers:   effectiveWorkers(o.workers),
		Stream:    o.emit != nil,
	}
}

// planJoin runs the planner for one join and returns the adjusted
// configuration, the chosen worker count, and the plan record. Pinned
// dimensions (WithConfig → engine and filter, WithWorkers → workers)
// reach the search as one-element candidate lists; relations without
// statistics skip planning entirely.
func planJoin(r, s *Relation, cfg Config, o *queryOptions) (Config, int, Plan) {
	if r.Stats == nil || s.Stats == nil {
		pl := echoPlan(cfg, o)
		return cfg, o.workers, pl
	}
	req := plan.Request{
		Pred:     planPred(o.pred),
		Eps:      o.pred.Epsilon(),
		MaxProcs: runtime.GOMAXPROCS(0),
		Collect:  o.emit == nil && !o.bufferless,
		// Serving-layer cache pressure: when lookups against either side
		// mostly hit, the plan rarely executes, and an open workers
		// dimension collapses to 1 (see plan.Request.CacheHitRate).
		CacheHitRate: math.Max(r.Stats.CacheHitRate(), s.Stats.CacheHitRate()),
	}
	if o.cfg != nil {
		// An explicit configuration pins the engine and the filter.
		req.Engines = []plan.Engine{plan.Engine(cfg.Engine)}
		req.Filters = []bool{cfg.UseFilter}
	} else {
		// The TR*-tree engine needs a node capacity; the filter can be
		// switched off at query time but never on — a relation built
		// without the filter has no approximations to test.
		if cfg.TRCapacity > 0 {
			req.Engines = append(req.Engines, plan.EngineTRStar)
		}
		req.Engines = append(req.Engines, plan.EnginePlaneSweep, plan.EngineQuadratic)
		if cfg.UseFilter {
			req.Filters = []bool{true, false}
		} else {
			req.Filters = []bool{false}
		}
	}
	if o.workers > 0 {
		req.Workers = []int{effectiveWorkers(o.workers)}
	} else {
		req.Workers = workerGrid()
	}
	rl, rd := r.Tree.PageBreakdown()
	sl, sd := s.Tree.PageBreakdown()
	req.PagesR, req.PagesS = rl+rd, sl+sd

	c := plan.Choose(r.Stats, s.Stats, plan.DefaultWeights(), req)
	cfg.Engine = Engine(c.Engine)
	cfg.UseFilter = c.UseFilter
	pl := Plan{
		Planned:              true,
		Engine:               c.Engine.String(),
		UseFilter:            c.UseFilter,
		Workers:              c.Workers,
		Stream:               o.emit != nil,
		StreamRecommended:    c.StreamRecommended,
		PredictedCandidates:  c.PredCandidates,
		PredictedExactTested: c.PredExactTested,
		PredictedResultPairs: c.PredResults,
		PredictedCostNs:      c.PredCostNs,
	}
	return cfg, c.Workers, pl
}

// planQuery resolves the filter dimension of a single-relation query —
// the only open knob there: queries are single-threaded and engine-free
// (the exact window test has one kernel). WithConfig pins the filter
// as it does for joins.
func planQuery(r *Relation, cfg Config, o *queryOptions) (Config, Plan) {
	pl := Plan{
		Engine:    plan.Engine(cfg.Engine).String(),
		UseFilter: cfg.UseFilter,
		Workers:   1,
	}
	if !o.planned || o.cfg != nil || r.Stats == nil {
		return cfg, pl
	}
	if cfg.UseFilter {
		// The filter can be switched off at query time, never on.
		cfg.UseFilter = plan.ChooseQueryFilter(r.Stats, plan.DefaultWeights(), planPred(o.pred))
	}
	pl.Planned = true
	pl.UseFilter = cfg.UseFilter
	return cfg, pl
}

// observeJoin feeds a completed join back into both relations' EWMAs:
// the candidate-count prediction error (planned runs only), the filter
// identification rate (filtered runs only), and the hit rate.
func observeJoin(r, s *Relation, cfg Config, pred Predicate, pl Plan, st Stats) {
	if r.Stats == nil || s.Stats == nil {
		return
	}
	predicted := 0.0
	if pl.Planned {
		predicted = pl.PredictedCandidates
	}
	ident, hit := -1.0, -1.0
	if st.CandidatePairs > 0 {
		hit = float64(st.ResultPairs) / float64(st.CandidatePairs)
		if cfg.UseFilter {
			ident = st.Identified()
		}
	}
	p := planPred(pred)
	r.Stats.Observe(p, predicted, float64(st.CandidatePairs), ident, hit)
	s.Stats.Observe(p, predicted, float64(st.CandidatePairs), ident, hit)
}

// fillExplain completes an Explain record after execution.
func fillExplain(ex *Explain, pl Plan, st Stats, wall time.Duration, ok bool) {
	ex.Plan = pl
	ex.Executed = ok
	if !ok {
		return
	}
	ex.ActualCandidates = st.CandidatePairs
	ex.ActualExactTested = st.ExactTested
	ex.ActualResultPairs = st.ResultPairs
	ex.ActualWallNs = wall.Nanoseconds()
	if pl.Planned {
		if st.CandidatePairs > 0 {
			ex.CandidateError = pl.PredictedCandidates / float64(st.CandidatePairs)
		}
		if ex.ActualWallNs > 0 {
			ex.CostError = pl.PredictedCostNs / float64(ex.ActualWallNs)
		}
	}
}
