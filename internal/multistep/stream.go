package multistep

import (
	"context"
	"runtime"
	"sync"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/bitset"
	"spatialjoin/internal/ctxpoll"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/ops"
	"spatialjoin/internal/resilience"
	"spatialjoin/internal/resilience/fault"
	"spatialjoin/internal/rstar"
	"spatialjoin/internal/storage"
	"spatialjoin/internal/zorder"
)

// StreamOptions tunes the streaming join pipeline.
//
// Deprecated: the fields map onto options of the unified Join entry
// point — Workers → WithWorkers, Batch → WithBatch, Queue → WithQueue,
// AccessR/AccessS → WithSessions. The type remains for the facade's
// deprecated JoinStream wrapper.
type StreamOptions struct {
	// Workers sets both the step 1 traversal fan-out and the size of the
	// step 2+3 worker pool; ≤ 0 selects GOMAXPROCS.
	Workers int
	// Batch is the number of candidate pairs per pipeline batch (default
	// 256). Larger batches amortize channel traffic; smaller batches
	// lower latency and peak memory.
	Batch int
	// Queue is the bounded depth of the candidate and result channels,
	// in batches (default 4×Workers). Together with Batch it caps the
	// in-flight memory at O((Queue+2·Workers)·Batch) candidate pairs —
	// the pipeline never materializes the full candidate set.
	Queue int
	// AccessR and AccessS, when non-nil, are the per-query page-access
	// contexts the step 1 traversal is accounted on (typically
	// Relation.NewSession of each side).
	AccessR, AccessS storage.Accessor
}

// DefaultStreamOptions returns the resolved default pipeline shape:
// GOMAXPROCS workers, 256-pair batches, a 4×Workers batch queue.
//
// Deprecated: the unified Join applies the same defaults; see
// StreamOptions.
func DefaultStreamOptions() StreamOptions {
	o := StreamOptions{Workers: runtime.GOMAXPROCS(0), Batch: 256}
	o.Queue = 4 * o.Workers
	return o
}

// withDefaults resolves the pipeline shape of one join call. The worker
// count is clamped to 4×GOMAXPROCS: beyond that, extra workers only cost
// memory and scheduling (the serving layer applies the same guard to its
// unauthenticated workers parameter; the library enforces it for every
// caller rather than trusting them).
func (o queryOptions) withDefaults() queryOptions {
	if o.workers <= 0 {
		o.workers = runtime.GOMAXPROCS(0)
	}
	if maxWorkers := 4 * runtime.GOMAXPROCS(0); o.workers > maxWorkers {
		o.workers = maxWorkers
	}
	if o.batch <= 0 {
		o.batch = 256
	}
	if o.queue <= 0 {
		o.queue = 4 * o.workers
	}
	return o
}

// streamCand is one candidate pair in flight between step 1 and step 2.
type streamCand struct{ a, b int32 }

// candBatchPool and pairBatchPool recycle the pipeline's batch buffers:
// the channels carry *[]T so a drained batch returns to the pool with its
// backing array AND its box, making the steady-state batch traffic
// allocation-free. Batches abandoned on cancellation simply fall to the
// garbage collector.
var (
	candBatchPool = sync.Pool{New: func() any { return new([]streamCand) }}
	pairBatchPool = sync.Pool{New: func() any { return new([]Pair) }}
)

// streamWorker accumulates one worker's share of the steps 2+3 statistics;
// the shares are merged deterministically after the pipeline drains. The
// fetched-object sets are bitsets over the dense object indexes — one bit
// per object instead of a hash-set entry per fetch.
type streamWorker struct {
	hits, falseHits    int64
	exactTested        int64
	exactHits          int64
	ops                ops.Counters
	fetchedR, fetchedS *bitset.Set
}

// joinStream runs the multi-step spatial join as a streaming, fully
// parallel pipeline and calls emit for every response pair:
//
//	step 1  — the candidate generator runs as the producer; with the
//	          R*-tree generator the synchronized traversal itself is
//	          partitioned at the subtree level over Workers goroutines
//	          (rstar.JoinParallelAccess), evaluating the predicate's
//	          (possibly ε-expanded) rectangle test and candidate pretest.
//	steps 2+3 — candidate batches flow through a bounded channel into a
//	          pool of Workers that classify each pair with the
//	          predicate's geometric filter (once) and decide the
//	          survivors on the predicate's exact geometry test.
//
// emit is called from a single collector goroutine, one pair at a time,
// in no particular order; a nil emit discards the pairs and returns only
// statistics. Memory stays bounded by the channel depths regardless of
// the candidate-set size.
//
// The emitted pair set and every statistic are independent of the worker
// count: the per-task and per-worker counters are pure sums and set
// unions, so the merge is independent of scheduling, and the step 1 page
// traces are replayed in sequential traversal order (see
// rstar.JoinParallelAccess).
//
// Cancellation: the traversal workers poll the context at every node
// pair, the producers at every batch boundary, and the filter/exact pool
// at every pair; a cancelled context drains the pipeline without further
// work and surfaces ctx.Err().
func joinStream(ctx context.Context, r, s *Relation, cfg Config, pred Predicate, o queryOptions, emit func(Pair)) (Stats, error) {
	o = o.withDefaults()
	var st Stats

	// Internal failure propagation: a worker that panics (a bug in an
	// exact kernel, or an injected fault) or hits a fired "exact"
	// injection cancels the pipeline with itself as the cause; the
	// panic is contained to the request instead of killing the process.
	ctx, fail := context.WithCancelCause(ctx)
	defer fail(nil)

	axR, axS := o.axR, o.axS
	if axR == nil {
		r.Tree.Buffer().ResetCounters()
		axR = r.Tree.Buffer()
	}
	if axS == nil {
		s.Tree.Buffer().ResetCounters()
		axS = s.Tree.Buffer()
	}
	missesR, missesS := axR.Misses(), axS.Misses()

	stop, release := ctxpoll.Stop(ctx)
	defer release()
	stopCh := ctx.Done()

	candCh := make(chan *[]streamCand, o.queue)
	resCh := make(chan *[]Pair, o.queue)

	// send enqueues one candidate batch, abandoning it when the context
	// is cancelled (the workers are draining by then).
	send := func(buf *[]streamCand) {
		select {
		case candCh <- buf:
		case <-stopCh: // nil for uncancellable contexts: select blocks on the send alone
		}
	}

	// Steps 2+3: the worker pool.
	workers := make([]streamWorker, o.workers)
	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func(ws *streamWorker) {
			defer wg.Done()
			// A panicking worker fails this join, not the process: the
			// recovered panic becomes the pipeline's cancellation cause
			// and the remaining stages drain normally.
			defer func() {
				if rec := recover(); rec != nil {
					fail(resilience.Recovered("exact", rec))
				}
			}()
			ws.fetchedR = bitset.New(len(r.Objects))
			ws.fetchedS = bitset.New(len(s.Objects))
			for bp := range candCh {
				op := pairBatchPool.Get().(*[]Pair)
				out := (*op)[:0]
				for _, c := range *bp {
					if stop != nil && stop() {
						break
					}
					oa, ob := r.Objects[c.a], s.Objects[c.b]
					// Step 2: the predicate's geometric filter, evaluated
					// exactly once per candidate.
					if cfg.UseFilter {
						switch pred.classify(cfg.Filter, oa, ob) {
						case approx.Hit:
							ws.hits++
							out = append(out, Pair{A: c.a, B: c.b})
							continue
						case approx.FalseHit:
							ws.falseHits++
							continue
						}
					}
					// Step 3: the predicate's exact geometry test.
					ws.exactTested++
					ws.fetchedR.Set(int(c.a))
					ws.fetchedS.Set(int(c.b))
					if ferr := fault.Check("exact"); ferr != nil {
						fail(ferr)
						break
					}
					if pred.exactDecide(cfg, oa, ob, &ws.ops) {
						ws.exactHits++
						out = append(out, Pair{A: c.a, B: c.b})
					}
				}
				*bp = (*bp)[:0]
				candBatchPool.Put(bp)
				*op = out
				if len(out) > 0 {
					select {
					case resCh <- op:
					case <-stopCh:
					}
				} else {
					pairBatchPool.Put(op)
				}
			}
		}(&workers[w])
	}

	// The collector serializes emission of the response set.
	var resultPairs int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for op := range resCh {
			resultPairs += int64(len(*op))
			if emit != nil {
				for _, p := range *op {
					emit(p)
				}
			}
			*op = (*op)[:0]
			pairBatchPool.Put(op)
		}
	}()

	// Step 1: the candidate producer, on the calling goroutine. Candidate
	// counting happens producer-side (per traversal worker for the
	// R*-tree generator — the counts are pure sums, so the merge is
	// scheduling-independent): the predicate pretest (MBR nesting for
	// inclusion joins) refines the rectangle-test survivors into
	// candidates.
	eps := pred.step1Eps()
	// newBatch takes a recycled candidate buffer from the pool.
	newBatch := func() *[]streamCand {
		bp := candBatchPool.Get().(*[]streamCand)
		*bp = (*bp)[:0]
		return bp
	}
	switch cfg.Step1 {
	case Step1RStar:
		// Per-traversal-worker batch buffers and candidate counters:
		// rstar.JoinParallelAccess serializes calls with the same worker
		// index, so no locks are needed.
		batches := make([]*[]streamCand, o.workers)
		for w := range batches {
			batches[w] = newBatch()
		}
		cands := make([]int64, o.workers)
		st.MBRJoin = rstar.JoinParallelAccess(ctx, r.Tree, s.Tree, axR, axS, eps, o.workers, func(w int, a, b rstar.Item) {
			if !pred.pretest(r.Objects[a.ID], s.Objects[b.ID]) {
				return
			}
			cands[w]++
			bp := batches[w]
			*bp = append(*bp, streamCand{a.ID, b.ID})
			if len(*bp) >= o.batch {
				send(bp)
				batches[w] = newBatch()
			}
		})
		for _, bp := range batches {
			if len(*bp) > 0 {
				send(bp)
			} else {
				candBatchPool.Put(bp)
			}
		}
		for _, c := range cands {
			st.CandidatePairs += c
		}
	case Step1ZOrder:
		// Space-filling-curve sort-merge: the Z covers of the ε-expanded
		// R-side MBRs yield a candidate superset; the (ε-expanded) MBR
		// test removes the quantization false positives before the
		// geometric filter sees the pair.
		mbrsR := make([]geom.Rect, len(r.Objects))
		space := geom.EmptyRect()
		for i, o := range r.Objects {
			mbrsR[i] = o.Approx.MBR.Expand(eps)
			space = space.Union(mbrsR[i])
		}
		mbrsS := make([]geom.Rect, len(s.Objects))
		for i, o := range s.Objects {
			mbrsS[i] = o.Approx.MBR
			space = space.Union(mbrsS[i])
		}
		zcfg := zorder.DefaultCoverConfig()
		zcfg.DataSpace = space // both relations must be fully covered
		bp := newBatch()
		zorder.Join(mbrsR, mbrsS, zcfg, func(i, j int) {
			if stop != nil && stop() {
				return
			}
			st.ZOrderCandidates++
			if mbrsR[i].Intersects(mbrsS[j]) && pred.pretest(r.Objects[i], s.Objects[j]) {
				st.CandidatePairs++
				*bp = append(*bp, streamCand{int32(i), int32(j)})
				if len(*bp) >= o.batch {
					send(bp)
					bp = newBatch()
				}
			}
		})
		if len(*bp) > 0 {
			send(bp)
		} else {
			candBatchPool.Put(bp)
		}
	case Step1NestedLoops:
		bp := newBatch()
	nested:
		for _, oa := range r.Objects {
			if stop != nil && stop() {
				break nested
			}
			for _, ob := range s.Objects {
				if oa.Approx.MBR.Expand(eps).Intersects(ob.Approx.MBR) && pred.pretest(oa, ob) {
					st.CandidatePairs++
					*bp = append(*bp, streamCand{oa.ID, ob.ID})
					if len(*bp) >= o.batch {
						send(bp)
						bp = newBatch()
					}
				}
			}
		}
		if len(*bp) > 0 {
			send(bp)
		} else {
			candBatchPool.Put(bp)
		}
	default:
		panic("multistep: unknown step 1 generator")
	}
	close(candCh)
	wg.Wait()
	close(resCh)
	<-done

	if ctx.Err() != nil {
		// Cause distinguishes an internal failure (worker panic, fired
		// injection) from the caller's own cancellation, for which it
		// reproduces ctx.Err().
		return st, context.Cause(ctx)
	}

	// Deterministic merge: every counter is a sum and the fetch sets are
	// unions (word-wise ORs of the per-worker bitsets), so the totals do
	// not depend on how candidates were spread over the workers.
	unionR := bitset.New(len(r.Objects))
	unionS := bitset.New(len(s.Objects))
	for w := range workers {
		ws := &workers[w]
		st.FilterHits += ws.hits
		st.FilterFalseHits += ws.falseHits
		st.ExactTested += ws.exactTested
		st.ExactHits += ws.exactHits
		st.Ops.Add(ws.ops)
		unionR.Or(ws.fetchedR)
		unionS.Or(ws.fetchedS)
	}
	st.ObjectFetches = int64(unionR.Count() + unionS.Count())
	st.PageAccessesR = axR.Misses() - missesR
	st.PageAccessesS = axS.Misses() - missesS
	st.ResultPairs = resultPairs
	return st, nil
}
