package multistep

import (
	"context"
	"runtime"
	"sync"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/ctxpoll"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/ops"
	"spatialjoin/internal/rstar"
	"spatialjoin/internal/storage"
	"spatialjoin/internal/zorder"
)

// StreamOptions tunes the streaming join pipeline.
//
// Deprecated: the fields map onto options of the unified Join entry
// point — Workers → WithWorkers, Batch → WithBatch, Queue → WithQueue,
// AccessR/AccessS → WithSessions. The type remains for the facade's
// deprecated JoinStream wrapper.
type StreamOptions struct {
	// Workers sets both the step 1 traversal fan-out and the size of the
	// step 2+3 worker pool; ≤ 0 selects GOMAXPROCS.
	Workers int
	// Batch is the number of candidate pairs per pipeline batch (default
	// 256). Larger batches amortize channel traffic; smaller batches
	// lower latency and peak memory.
	Batch int
	// Queue is the bounded depth of the candidate and result channels,
	// in batches (default 4×Workers). Together with Batch it caps the
	// in-flight memory at O((Queue+2·Workers)·Batch) candidate pairs —
	// the pipeline never materializes the full candidate set.
	Queue int
	// AccessR and AccessS, when non-nil, are the per-query page-access
	// contexts the step 1 traversal is accounted on (typically
	// Relation.NewSession of each side).
	AccessR, AccessS storage.Accessor
}

// DefaultStreamOptions returns the resolved default pipeline shape:
// GOMAXPROCS workers, 256-pair batches, a 4×Workers batch queue.
//
// Deprecated: the unified Join applies the same defaults; see
// StreamOptions.
func DefaultStreamOptions() StreamOptions {
	o := StreamOptions{Workers: runtime.GOMAXPROCS(0), Batch: 256}
	o.Queue = 4 * o.Workers
	return o
}

// withDefaults resolves the pipeline shape of one join call.
func (o queryOptions) withDefaults() queryOptions {
	if o.workers <= 0 {
		o.workers = runtime.GOMAXPROCS(0)
	}
	if o.batch <= 0 {
		o.batch = 256
	}
	if o.queue <= 0 {
		o.queue = 4 * o.workers
	}
	return o
}

// streamCand is one candidate pair in flight between step 1 and step 2.
type streamCand struct{ a, b int32 }

// streamWorker accumulates one worker's share of the steps 2+3 statistics;
// the shares are merged deterministically after the pipeline drains.
type streamWorker struct {
	hits, falseHits    int64
	exactTested        int64
	exactHits          int64
	ops                ops.Counters
	fetchedR, fetchedS map[int32]struct{}
}

// joinStream runs the multi-step spatial join as a streaming, fully
// parallel pipeline and calls emit for every response pair:
//
//	step 1  — the candidate generator runs as the producer; with the
//	          R*-tree generator the synchronized traversal itself is
//	          partitioned at the subtree level over Workers goroutines
//	          (rstar.JoinParallelAccess), evaluating the predicate's
//	          (possibly ε-expanded) rectangle test and candidate pretest.
//	steps 2+3 — candidate batches flow through a bounded channel into a
//	          pool of Workers that classify each pair with the
//	          predicate's geometric filter (once) and decide the
//	          survivors on the predicate's exact geometry test.
//
// emit is called from a single collector goroutine, one pair at a time,
// in no particular order; a nil emit discards the pairs and returns only
// statistics. Memory stays bounded by the channel depths regardless of
// the candidate-set size.
//
// The emitted pair set and every statistic are independent of the worker
// count: the per-task and per-worker counters are pure sums and set
// unions, so the merge is independent of scheduling, and the step 1 page
// traces are replayed in sequential traversal order (see
// rstar.JoinParallelAccess).
//
// Cancellation: the traversal workers poll the context at every node
// pair, the producers at every batch boundary, and the filter/exact pool
// at every pair; a cancelled context drains the pipeline without further
// work and surfaces ctx.Err().
func joinStream(ctx context.Context, r, s *Relation, cfg Config, pred Predicate, o queryOptions, emit func(Pair)) (Stats, error) {
	o = o.withDefaults()
	var st Stats

	axR, axS := o.axR, o.axS
	if axR == nil {
		r.Tree.Buffer().ResetCounters()
		axR = r.Tree.Buffer()
	}
	if axS == nil {
		s.Tree.Buffer().ResetCounters()
		axS = s.Tree.Buffer()
	}
	missesR, missesS := axR.Misses(), axS.Misses()

	stop, release := ctxpoll.Stop(ctx)
	defer release()
	stopCh := ctx.Done()

	candCh := make(chan []streamCand, o.queue)
	resCh := make(chan []Pair, o.queue)

	// send enqueues one candidate batch, abandoning it when the context
	// is cancelled (the workers are draining by then).
	send := func(buf []streamCand) {
		select {
		case candCh <- buf:
		case <-stopCh: // nil for uncancellable contexts: select blocks on the send alone
		}
	}

	// Steps 2+3: the worker pool.
	workers := make([]streamWorker, o.workers)
	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func(ws *streamWorker) {
			defer wg.Done()
			ws.fetchedR = make(map[int32]struct{})
			ws.fetchedS = make(map[int32]struct{})
			for batch := range candCh {
				var out []Pair
				for _, c := range batch {
					if stop != nil && stop() {
						break
					}
					oa, ob := r.Objects[c.a], s.Objects[c.b]
					// Step 2: the predicate's geometric filter, evaluated
					// exactly once per candidate.
					if cfg.UseFilter {
						switch pred.classify(cfg.Filter, oa, ob) {
						case approx.Hit:
							ws.hits++
							out = append(out, Pair{A: c.a, B: c.b})
							continue
						case approx.FalseHit:
							ws.falseHits++
							continue
						}
					}
					// Step 3: the predicate's exact geometry test.
					ws.exactTested++
					ws.fetchedR[c.a] = struct{}{}
					ws.fetchedS[c.b] = struct{}{}
					if pred.exactDecide(cfg, oa, ob, &ws.ops) {
						ws.exactHits++
						out = append(out, Pair{A: c.a, B: c.b})
					}
				}
				if len(out) > 0 {
					select {
					case resCh <- out:
					case <-stopCh:
					}
				}
			}
		}(&workers[w])
	}

	// The collector serializes emission of the response set.
	var resultPairs int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for batch := range resCh {
			resultPairs += int64(len(batch))
			if emit != nil {
				for _, p := range batch {
					emit(p)
				}
			}
		}
	}()

	// Step 1: the candidate producer, on the calling goroutine. Candidate
	// counting happens producer-side (per traversal worker for the
	// R*-tree generator — the counts are pure sums, so the merge is
	// scheduling-independent): the predicate pretest (MBR nesting for
	// inclusion joins) refines the rectangle-test survivors into
	// candidates.
	eps := pred.step1Eps()
	switch cfg.Step1 {
	case Step1RStar:
		// Per-traversal-worker batch buffers and candidate counters:
		// rstar.JoinParallelAccess serializes calls with the same worker
		// index, so no locks are needed.
		batches := make([][]streamCand, o.workers)
		cands := make([]int64, o.workers)
		st.MBRJoin = rstar.JoinParallelAccess(ctx, r.Tree, s.Tree, axR, axS, eps, o.workers, func(w int, a, b rstar.Item) {
			if !pred.pretest(r.Objects[a.ID], s.Objects[b.ID]) {
				return
			}
			cands[w]++
			buf := append(batches[w], streamCand{a.ID, b.ID})
			if len(buf) >= o.batch {
				send(buf)
				buf = nil
			}
			batches[w] = buf
		})
		for _, buf := range batches {
			if len(buf) > 0 {
				send(buf)
			}
		}
		for _, c := range cands {
			st.CandidatePairs += c
		}
	case Step1ZOrder:
		// Space-filling-curve sort-merge: the Z covers of the ε-expanded
		// R-side MBRs yield a candidate superset; the (ε-expanded) MBR
		// test removes the quantization false positives before the
		// geometric filter sees the pair.
		mbrsR := make([]geom.Rect, len(r.Objects))
		space := geom.EmptyRect()
		for i, o := range r.Objects {
			mbrsR[i] = o.Approx.MBR.Expand(eps)
			space = space.Union(mbrsR[i])
		}
		mbrsS := make([]geom.Rect, len(s.Objects))
		for i, o := range s.Objects {
			mbrsS[i] = o.Approx.MBR
			space = space.Union(mbrsS[i])
		}
		zcfg := zorder.DefaultCoverConfig()
		zcfg.DataSpace = space // both relations must be fully covered
		var buf []streamCand
		zorder.Join(mbrsR, mbrsS, zcfg, func(i, j int) {
			if stop != nil && stop() {
				return
			}
			st.ZOrderCandidates++
			if mbrsR[i].Intersects(mbrsS[j]) && pred.pretest(r.Objects[i], s.Objects[j]) {
				st.CandidatePairs++
				buf = append(buf, streamCand{int32(i), int32(j)})
				if len(buf) >= o.batch {
					send(buf)
					buf = nil
				}
			}
		})
		if len(buf) > 0 {
			send(buf)
		}
	case Step1NestedLoops:
		var buf []streamCand
	nested:
		for _, oa := range r.Objects {
			if stop != nil && stop() {
				break nested
			}
			for _, ob := range s.Objects {
				if oa.Approx.MBR.Expand(eps).Intersects(ob.Approx.MBR) && pred.pretest(oa, ob) {
					st.CandidatePairs++
					buf = append(buf, streamCand{oa.ID, ob.ID})
					if len(buf) >= o.batch {
						send(buf)
						buf = nil
					}
				}
			}
		}
		if len(buf) > 0 {
			send(buf)
		}
	default:
		panic("multistep: unknown step 1 generator")
	}
	close(candCh)
	wg.Wait()
	close(resCh)
	<-done

	if err := ctx.Err(); err != nil {
		return st, err
	}

	// Deterministic merge: every counter is a sum and the fetch sets are
	// unions, so the totals do not depend on how candidates were spread
	// over the workers.
	unionR := make(map[int32]struct{})
	unionS := make(map[int32]struct{})
	for w := range workers {
		ws := &workers[w]
		st.FilterHits += ws.hits
		st.FilterFalseHits += ws.falseHits
		st.ExactTested += ws.exactTested
		st.ExactHits += ws.exactHits
		st.Ops.Add(ws.ops)
		for id := range ws.fetchedR {
			unionR[id] = struct{}{}
		}
		for id := range ws.fetchedS {
			unionS[id] = struct{}{}
		}
	}
	st.ObjectFetches = int64(len(unionR) + len(unionS))
	st.PageAccessesR = axR.Misses() - missesR
	st.PageAccessesS = axS.Misses() - missesS
	st.ResultPairs = resultPairs
	return st, nil
}
