package multistep

import (
	"runtime"
	"sync"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/exact"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/ops"
	"spatialjoin/internal/rstar"
	"spatialjoin/internal/storage"
	"spatialjoin/internal/trstar"
	"spatialjoin/internal/zorder"
)

// StreamOptions tunes the streaming join pipeline of JoinStream.
// The zero value selects the defaults of DefaultStreamOptions.
type StreamOptions struct {
	// Workers sets both the step 1 traversal fan-out and the size of the
	// step 2+3 worker pool; ≤ 0 selects GOMAXPROCS.
	Workers int
	// Batch is the number of candidate pairs per pipeline batch (default
	// 256). Larger batches amortize channel traffic; smaller batches
	// lower latency and peak memory.
	Batch int
	// Queue is the bounded depth of the candidate and result channels,
	// in batches (default 4×Workers). Together with Batch it caps the
	// in-flight memory at O((Queue+2·Workers)·Batch) candidate pairs —
	// the pipeline never materializes the full candidate set.
	Queue int
	// AccessR and AccessS, when non-nil, are the per-query page-access
	// contexts the step 1 traversal is accounted on (typically
	// Relation.NewSession of each side). With both set, the join never
	// touches the shared tree buffers, so any number of joins and
	// queries may run concurrently on the same relations, each with
	// isolated Stats. When nil, the corresponding shared tree buffer is
	// used (its counters reset first) — the sequential single-query mode
	// with the paper's accounting.
	AccessR, AccessS storage.Accessor
}

// DefaultStreamOptions returns the resolved default pipeline shape:
// GOMAXPROCS workers, 256-pair batches, a 4×Workers batch queue.
func DefaultStreamOptions() StreamOptions {
	return StreamOptions{}.withDefaults()
}

func (o StreamOptions) withDefaults() StreamOptions {
	if o.Workers <= 0 {
		o.Workers = runtime.GOMAXPROCS(0)
	}
	if o.Batch <= 0 {
		o.Batch = 256
	}
	if o.Queue <= 0 {
		o.Queue = 4 * o.Workers
	}
	return o
}

// streamCand is one candidate pair in flight between step 1 and step 2.
type streamCand struct{ a, b int32 }

// streamWorker accumulates one worker's share of the steps 2+3 statistics;
// the shares are merged deterministically after the pipeline drains.
type streamWorker struct {
	hits, falseHits    int64
	exactTested        int64
	exactHits          int64
	ops                ops.Counters
	fetchedR, fetchedS map[int32]struct{}
}

// JoinStream runs the multi-step spatial join as a streaming, fully
// parallel pipeline and calls emit for every response pair:
//
//	step 1  — the candidate generator runs as the producer; with the
//	          R*-tree generator the synchronized traversal itself is
//	          partitioned at the subtree level over Workers goroutines
//	          (rstar.JoinParallel).
//	steps 2+3 — candidate batches flow through a bounded channel into a
//	          pool of Workers that classify each pair with the geometric
//	          filter (once) and decide the survivors on exact geometry.
//
// emit is called from a single collector goroutine, one pair at a time,
// in no particular order; a nil emit discards the pairs and returns only
// statistics. Memory stays bounded by the channel depths regardless of
// the candidate-set size, so relation size is not capped by the candidate
// count as it is when the pairs are collected first.
//
// The response set and every statistic equal Join's exactly: the per-task
// and per-worker counters are pure sums and set unions, so the merge is
// independent of scheduling, and the step 1 page traces are replayed in
// sequential traversal order (see rstar.JoinParallel). Both relations
// must have been built with the same Config.
//
// Without explicit access contexts (opts.AccessR/AccessS nil) the page
// accounting runs on the shared tree buffers, so JoinStream must not run
// concurrently with another query on the same relations; with per-query
// sessions in both fields the join is fully concurrent-safe.
func JoinStream(r, s *Relation, cfg Config, opts StreamOptions, emit func(Pair)) Stats {
	opts = opts.withDefaults()
	var st Stats

	axR, axS := opts.AccessR, opts.AccessS
	if axR == nil {
		r.Tree.Buffer().ResetCounters()
		axR = r.Tree.Buffer()
	}
	if axS == nil {
		s.Tree.Buffer().ResetCounters()
		axS = s.Tree.Buffer()
	}
	missesR, missesS := axR.Misses(), axS.Misses()

	candCh := make(chan []streamCand, opts.Queue)
	resCh := make(chan []Pair, opts.Queue)

	// Steps 2+3: the worker pool.
	workers := make([]streamWorker, opts.Workers)
	var wg sync.WaitGroup
	for w := range workers {
		wg.Add(1)
		go func(ws *streamWorker) {
			defer wg.Done()
			ws.fetchedR = make(map[int32]struct{})
			ws.fetchedS = make(map[int32]struct{})
			for batch := range candCh {
				var out []Pair
				for _, c := range batch {
					oa, ob := r.Objects[c.a], s.Objects[c.b]
					// Step 2: geometric filter, evaluated exactly once
					// per candidate.
					if cfg.UseFilter {
						switch cfg.Filter.Classify(oa.Approx, ob.Approx) {
						case approx.Hit:
							ws.hits++
							out = append(out, Pair{A: c.a, B: c.b})
							continue
						case approx.FalseHit:
							ws.falseHits++
							continue
						}
					}
					// Step 3: exact geometry processor.
					ws.exactTested++
					ws.fetchedR[c.a] = struct{}{}
					ws.fetchedS[c.b] = struct{}{}
					var hit bool
					switch cfg.Engine {
					case EngineQuadratic:
						hit = exact.QuadraticIntersects(oa.Prepared(), ob.Prepared(), &ws.ops)
					case EnginePlaneSweep:
						hit = exact.PlaneSweepIntersects(oa.Prepared(), ob.Prepared(), cfg.PlaneSweepRestrict, &ws.ops)
					case EngineTRStar:
						hit = trstar.Intersects(oa.Tree(cfg.TRCapacity), ob.Tree(cfg.TRCapacity), &ws.ops)
					default:
						panic("multistep: unknown engine")
					}
					if hit {
						ws.exactHits++
						out = append(out, Pair{A: c.a, B: c.b})
					}
				}
				if len(out) > 0 {
					resCh <- out
				}
			}
		}(&workers[w])
	}

	// The collector serializes emission of the response set.
	var resultPairs int64
	done := make(chan struct{})
	go func() {
		defer close(done)
		for batch := range resCh {
			resultPairs += int64(len(batch))
			if emit != nil {
				for _, p := range batch {
					emit(p)
				}
			}
		}
	}()

	// Step 1: the candidate producer, on the calling goroutine.
	switch cfg.Step1 {
	case Step1RStar:
		// Per-traversal-worker batch buffers: rstar.JoinParallel serializes
		// calls with the same worker index, so no locks are needed.
		batches := make([][]streamCand, opts.Workers)
		st.MBRJoin = rstar.JoinParallelAccess(r.Tree, s.Tree, axR, axS, opts.Workers, func(w int, a, b rstar.Item) {
			buf := append(batches[w], streamCand{a.ID, b.ID})
			if len(buf) >= opts.Batch {
				candCh <- buf
				buf = nil
			}
			batches[w] = buf
		})
		for _, buf := range batches {
			if len(buf) > 0 {
				candCh <- buf
			}
		}
		st.CandidatePairs = st.MBRJoin.Pairs
	case Step1ZOrder:
		// Space-filling-curve sort-merge: the Z covers yield a candidate
		// superset; the MBR test removes the quantization false positives
		// before the geometric filter sees the pair.
		mbrsR := make([]geom.Rect, len(r.Objects))
		space := geom.EmptyRect()
		for i, o := range r.Objects {
			mbrsR[i] = o.Approx.MBR
			space = space.Union(mbrsR[i])
		}
		mbrsS := make([]geom.Rect, len(s.Objects))
		for i, o := range s.Objects {
			mbrsS[i] = o.Approx.MBR
			space = space.Union(mbrsS[i])
		}
		zcfg := zorder.DefaultCoverConfig()
		zcfg.DataSpace = space // both relations must be fully covered
		var buf []streamCand
		zorder.Join(mbrsR, mbrsS, zcfg, func(i, j int) {
			st.ZOrderCandidates++
			if mbrsR[i].Intersects(mbrsS[j]) {
				st.CandidatePairs++
				buf = append(buf, streamCand{int32(i), int32(j)})
				if len(buf) >= opts.Batch {
					candCh <- buf
					buf = nil
				}
			}
		})
		if len(buf) > 0 {
			candCh <- buf
		}
	case Step1NestedLoops:
		var buf []streamCand
		for _, oa := range r.Objects {
			for _, ob := range s.Objects {
				if oa.Approx.MBR.Intersects(ob.Approx.MBR) {
					st.CandidatePairs++
					buf = append(buf, streamCand{oa.ID, ob.ID})
					if len(buf) >= opts.Batch {
						candCh <- buf
						buf = nil
					}
				}
			}
		}
		if len(buf) > 0 {
			candCh <- buf
		}
	default:
		panic("multistep: unknown step 1 generator")
	}
	close(candCh)
	wg.Wait()
	close(resCh)
	<-done

	// Deterministic merge: every counter is a sum and the fetch sets are
	// unions, so the totals do not depend on how candidates were spread
	// over the workers.
	unionR := make(map[int32]struct{})
	unionS := make(map[int32]struct{})
	for w := range workers {
		ws := &workers[w]
		st.FilterHits += ws.hits
		st.FilterFalseHits += ws.falseHits
		st.ExactTested += ws.exactTested
		st.ExactHits += ws.exactHits
		st.Ops.Add(ws.ops)
		for id := range ws.fetchedR {
			unionR[id] = struct{}{}
		}
		for id := range ws.fetchedS {
			unionS[id] = struct{}{}
		}
	}
	st.ObjectFetches = int64(len(unionR) + len(unionS))
	st.PageAccessesR = axR.Misses() - missesR
	st.PageAccessesS = axS.Misses() - missesS
	st.ResultPairs = resultPairs
	return st
}
