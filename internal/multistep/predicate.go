package multistep

import (
	"fmt"
	"strings"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/exact"
	"spatialjoin/internal/ops"
	"spatialjoin/internal/trstar"
)

// Predicate is the spatial relationship a Join or Query evaluates. The
// paper's architecture is predicate-generic — section 2.2: "for other
// predicates ... a similar approach can be used" — and Predicate is that
// genericity made explicit: each predicate specializes all three steps of
// the processor.
//
//	            step 1 (MBR key)       step 2 (filter)          step 3 (exact)
//	Intersects  MBR ∩ MBR              Classify                 engine intersection test
//	Contains    MBR ⊇ MBR pretest      ClassifyContains         exact inclusion test
//	Within(ε)   ε-expanded MBR ∩       ClassifyWithin (dist     engine distance test
//	                                   bounds on approx.)       (dist ≤ ε)
//
// The within-distance join needs no new index: the same R*-trees serve
// it, because the ε-expanded rectangle predicate is evaluated by the same
// synchronized traversal with ε slack folded into the sweep bounds.
// Construct predicates with Intersects, Contains or WithinDistance; the
// zero value is Intersects.
type Predicate struct {
	kind predKind
	eps  float64
}

type predKind int

const (
	predIntersects predKind = iota
	predContains
	predWithin
)

// Intersects is the paper's primary predicate: the regions share at least
// one point. It is the default of Join and Query.
func Intersects() Predicate { return Predicate{kind: predIntersects} }

// Contains is the inclusion predicate: the region of the left (R-side)
// object contains the region of the right (S-side) object.
func Contains() Predicate { return Predicate{kind: predContains} }

// WithinDistance is the ε-join predicate of classical spatial query
// processing (the buffer/distance join): the regions lie within Euclidean
// distance eps of each other. WithinDistance(0) is equivalent to
// Intersects. A negative eps is rejected when the query runs.
func WithinDistance(eps float64) Predicate {
	return Predicate{kind: predWithin, eps: eps}
}

// Epsilon returns the distance bound of a WithinDistance predicate and 0
// for every other predicate.
func (p Predicate) Epsilon() float64 { return p.eps }

// String returns a parseable name: "intersects", "contains" or
// "within(ε)".
func (p Predicate) String() string {
	switch p.kind {
	case predContains:
		return "contains"
	case predWithin:
		return fmt.Sprintf("within(%g)", p.eps)
	default:
		return "intersects"
	}
}

// ParsePredicate parses a predicate name as used by cmd/spatialjoin and
// the serving layer: "intersects", "contains", or "within" (also
// "within-distance", "distance", "epsilon") with the distance bound
// supplied separately. eps is ignored for the other predicates.
func ParsePredicate(name string, eps float64) (Predicate, error) {
	switch strings.ToLower(name) {
	case "", "intersects", "intersect":
		return Intersects(), nil
	case "contains", "inclusion":
		return Contains(), nil
	case "within", "within-distance", "distance", "epsilon":
		if eps < 0 {
			return Predicate{}, fmt.Errorf("multistep: negative distance bound %g", eps)
		}
		return WithinDistance(eps), nil
	}
	return Predicate{}, fmt.Errorf("multistep: unknown predicate %q", name)
}

// validate rejects predicates a join cannot evaluate.
func (p Predicate) validate() error {
	if p.kind == predWithin && p.eps < 0 {
		return fmt.Errorf("multistep: negative distance bound %g", p.eps)
	}
	return nil
}

// step1Eps returns the ε slack of the step 1 rectangle predicate: two
// MBRs are a candidate pair when their per-axis gap is at most this.
func (p Predicate) step1Eps() float64 {
	if p.kind == predWithin {
		return p.eps
	}
	return 0
}

// pretest is the step 1 candidate refinement applied after the rectangle
// predicate: inclusion joins keep only pairs whose MBRs nest (containment
// of the regions implies containment of the MBRs); the other predicates
// keep every pair.
func (p Predicate) pretest(a, b *Object) bool {
	if p.kind == predContains {
		return a.Approx.MBR.Contains(b.Approx.MBR)
	}
	return true
}

// classify runs the predicate-specific step 2 geometric filter.
func (p Predicate) classify(f approx.FilterConfig, a, b *Object) approx.Class {
	switch p.kind {
	case predContains:
		return f.ClassifyContains(a.Approx, b.Approx)
	case predWithin:
		return f.ClassifyWithin(a.Approx, b.Approx, p.eps)
	default:
		return f.Classify(a.Approx, b.Approx)
	}
}

// exactDecide runs the predicate-specific step 3 exact geometry test
// under the configured engine.
func (p Predicate) exactDecide(cfg Config, a, b *Object, c *ops.Counters) bool {
	switch p.kind {
	case predContains:
		// The inclusion test is a single algorithm (section 2.2 names no
		// engine variants for it); it runs on the prepared representation
		// regardless of the configured intersection engine.
		return exact.ContainsPolygon(a.Prepared(), b.Prepared(), c)
	case predWithin:
		switch cfg.Engine {
		case EngineQuadratic:
			return exact.WithinDistance(a.Prepared(), b.Prepared(), p.eps, false, c)
		case EnginePlaneSweep:
			// The sweep's contribution to the intersection test is the
			// search-space restriction of section 4.1; its ε-analogue
			// restricts the edge sets to the ε-neighbourhood of the other
			// object's MBR.
			return exact.WithinDistance(a.Prepared(), b.Prepared(), p.eps, true, c)
		case EngineTRStar:
			return trstar.WithinDistance(a.Tree(cfg.TRCapacity), b.Tree(cfg.TRCapacity), p.eps, c)
		default:
			panic("multistep: unknown engine")
		}
	default:
		switch cfg.Engine {
		case EngineQuadratic:
			return exact.QuadraticIntersects(a.Prepared(), b.Prepared(), c)
		case EnginePlaneSweep:
			return exact.PlaneSweepIntersects(a.Prepared(), b.Prepared(), cfg.PlaneSweepRestrict, c)
		case EngineTRStar:
			return trstar.Intersects(a.Tree(cfg.TRCapacity), b.Tree(cfg.TRCapacity), c)
		default:
			panic("multistep: unknown engine")
		}
	}
}
