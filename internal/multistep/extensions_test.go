package multistep

import (
	"math/rand"
	"testing"

	"spatialjoin/internal/data"
	"spatialjoin/internal/geom"
)

func TestStep1AlternativesAgree(t *testing.T) {
	rp, sp := smallSeries(t)
	want := NestedLoopsJoin(rp, sp)
	for _, step1 := range []Step1{Step1RStar, Step1ZOrder, Step1NestedLoops} {
		cfg := DefaultConfig()
		cfg.Step1 = step1
		r := NewRelation("R", rp, cfg)
		s := NewRelation("S", sp, cfg)
		got, st := testJoin(t, r, s, cfg)
		assertSameResponse(t, step1.String(), got, want)
		if step1 == Step1ZOrder {
			if st.ZOrderCandidates < st.CandidatePairs {
				t.Errorf("Z-order raw candidates %d below MBR candidates %d",
					st.ZOrderCandidates, st.CandidatePairs)
			}
		}
	}
}

func TestStep1CandidateCountsIdentical(t *testing.T) {
	// All three generators must agree on the candidate set size: the
	// MBR-intersecting pairs.
	rp, sp := smallSeries(t)
	counts := map[Step1]int64{}
	for _, step1 := range []Step1{Step1RStar, Step1ZOrder, Step1NestedLoops} {
		cfg := DefaultConfig()
		cfg.Step1 = step1
		r := NewRelation("R", rp, cfg)
		s := NewRelation("S", sp, cfg)
		_, st := testJoin(t, r, s, cfg)
		counts[step1] = st.CandidatePairs
	}
	if counts[Step1RStar] != counts[Step1NestedLoops] || counts[Step1RStar] != counts[Step1ZOrder] {
		t.Fatalf("candidate counts differ: %v", counts)
	}
}

func TestJoinParallelMatchesSequential(t *testing.T) {
	rp, sp := smallSeries(t)
	for _, engine := range []Engine{EnginePlaneSweep, EngineTRStar} {
		cfg := DefaultConfig()
		cfg.Engine = engine
		r := NewRelation("R", rp, cfg)
		s := NewRelation("S", sp, cfg)
		want, wantSt := testJoin(t, r, s, cfg)
		for _, workers := range []int{1, 2, 7, 0} {
			got, st := testJoinWorkers(t, r, s, cfg, workers)
			assertSameResponse(t, engine.String(), got, want)
			if st.CandidatePairs != wantSt.CandidatePairs ||
				st.FilterHits != wantSt.FilterHits ||
				st.FilterFalseHits != wantSt.FilterFalseHits ||
				st.ExactTested != wantSt.ExactTested {
				t.Errorf("engine %v workers %d: stats diverge: %+v vs %+v",
					engine, workers, st, wantSt)
			}
		}
	}
}

func TestWindowQueryMatchesBruteForce(t *testing.T) {
	rng := rand.New(rand.NewSource(521))
	polys := data.GenerateMap(data.MapConfig{Cells: 150, TargetVerts: 56, HoleFraction: 0.15, Seed: 523})
	cfg := DefaultConfig()
	rel := NewRelation("R", polys, cfg)
	decided := int64(0)
	for trial := 0; trial < 120; trial++ {
		cx, cy := rng.Float64(), rng.Float64()
		ext := 0.005 + rng.Float64()*0.12
		w := geom.Rect{MinX: cx, MinY: cy, MaxX: cx + ext, MaxY: cy + ext}
		got, st := testWindow(t, rel, w, cfg)
		gotSet := map[int32]bool{}
		for _, id := range got {
			gotSet[id] = true
		}
		for i, p := range polys {
			want := polygonIntersectsRect(p, w)
			if gotSet[int32(i)] != want {
				t.Fatalf("trial %d: object %d: window query %v, truth %v (window %v)",
					trial, i, gotSet[int32(i)], want, w)
			}
		}
		decided += st.FilterHits + st.FilterFalseHits
	}
	if decided == 0 {
		t.Error("window filter never decided anything")
	}
}

// polygonIntersectsRect is the brute-force window ground truth.
func polygonIntersectsRect(p *geom.Polygon, w geom.Rect) bool {
	c := w.Corners()
	rect := geom.NewPolygon(c[:])
	return p.Intersects(rect)
}

func TestPointQuery(t *testing.T) {
	polys := data.GenerateMap(data.MapConfig{Cells: 100, TargetVerts: 40, Seed: 541})
	cfg := DefaultConfig()
	rel := NewRelation("R", polys, cfg)
	rng := rand.New(rand.NewSource(547))
	for trial := 0; trial < 150; trial++ {
		pt := geom.Point{X: rng.Float64(), Y: rng.Float64()}
		got, _ := testPoint(t, rel, pt, cfg)
		want := 0
		for _, p := range polys {
			if p.Bounds().ContainsPoint(pt) && p.ContainsPoint(pt) {
				want++
			}
		}
		if len(got) != want {
			t.Fatalf("trial %d: point query found %d, truth %d", trial, len(got), want)
		}
	}
}
