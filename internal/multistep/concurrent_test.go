package multistep

import (
	"path/filepath"
	"reflect"
	"sync"
	"testing"

	"spatialjoin/internal/data"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/ops"
	"spatialjoin/internal/rstar"
	"spatialjoin/internal/storage"
)

// The workload of the pre-refactor golden statistics: identical to
// smallSeries, frozen here because the goldens below were captured on it.
func goldenSeries() ([]*geom.Polygon, []*geom.Polygon) {
	r := data.GenerateMap(data.MapConfig{Cells: 80, TargetVerts: 48, HoleFraction: 0.1, Seed: 211})
	s := data.StrategyA(r, 0.45)
	return r, s
}

// TestSequentialStatsMatchPreRefactorGoldens pins the shared-context
// (sequential) accounting to the exact Stats the pre-refactor code
// produced: the values below were captured by running Join, WindowQuery
// and PointQuery on commit 96aa1d9 (before the access-context refactor)
// on this exact workload. Any drift in candidate generation, filtering,
// exact-step work, or buffer hit/miss accounting fails here.
func TestSequentialStatsMatchPreRefactorGoldens(t *testing.T) {
	rp, sp := goldenSeries()

	wantByEngine := map[Engine]Stats{
		EngineQuadratic: {
			CandidatePairs: 507,
			MBRJoin:        rstar.JoinStats{Pairs: 507, RectTests: 1787, LeafTests: 1772},
			FilterHits:     122, FilterFalseHits: 102,
			ExactTested: 283, ExactHits: 227, ObjectFetches: 158,
			Ops:         ops.Counters{EdgeIntersection: 685147},
			ResultPairs: 349,
		},
		EnginePlaneSweep: {
			CandidatePairs: 507,
			MBRJoin:        rstar.JoinStats{Pairs: 507, RectTests: 1787, LeafTests: 1772},
			FilterHits:     122, FilterFalseHits: 102,
			ExactTested: 283, ExactHits: 227, ObjectFetches: 158,
			Ops:         ops.Counters{EdgeIntersection: 2643, Position: 10799, EdgeRect: 40017},
			ResultPairs: 349,
		},
		EngineTRStar: {
			CandidatePairs: 507,
			MBRJoin:        rstar.JoinStats{Pairs: 507, RectTests: 1787, LeafTests: 1772},
			FilterHits:     122, FilterFalseHits: 102,
			ExactTested: 283, ExactHits: 227, ObjectFetches: 158,
			Ops:         ops.Counters{RectIntersection: 7296, TrapIntersection: 312},
			ResultPairs: 349,
		},
	}
	for engine, want := range wantByEngine {
		cfg := DefaultConfig()
		cfg.Engine = engine
		r := NewRelation("R", rp, cfg)
		s := NewRelation("S", sp, cfg)
		_, st := testJoin(t, r, s, cfg)
		if !reflect.DeepEqual(st, want) {
			t.Errorf("%v: stats drifted from the pre-refactor goldens:\n got %+v\nwant %+v", engine, st, want)
		}
	}

	// A one-frame buffer exercises the replacement path: the page-access
	// counts and the raw buffer counters are pinned too.
	cfg := DefaultConfig()
	cfg.BufferBytes = 4096
	r := NewRelation("R", rp, cfg)
	s := NewRelation("S", sp, cfg)
	_, st := testJoin(t, r, s, cfg)
	if st.PageAccessesR != 6 || st.PageAccessesS != 9 {
		t.Errorf("small-buffer page accesses R/S = %d/%d, pre-refactor golden 6/9",
			st.PageAccessesR, st.PageAccessesS)
	}
	if h, m := r.Tree.Buffer().Hits(), r.Tree.Buffer().Misses(); h != 4 || m != 6 {
		t.Errorf("R buffer hits/misses = %d/%d, golden 4/6", h, m)
	}
	if h, m := s.Tree.Buffer().Hits(), s.Tree.Buffer().Misses(); h != 1 || m != 9 {
		t.Errorf("S buffer hits/misses = %d/%d, golden 1/9", h, m)
	}

	w := geom.Rect{MinX: 0.2, MinY: 0.2, MaxX: 0.45, MaxY: 0.4}
	ids, wst := testWindow(t, r, w, cfg)
	wantW := WindowStats{Candidates: 11, FilterHits: 6, FilterFalseHits: 1, ExactTested: 4, ResultObjects: 10, PageAccesses: 3}
	if len(ids) != 10 || wst != wantW {
		t.Errorf("window query drifted: %d ids, %+v (golden 10 ids, %+v)", len(ids), wst, wantW)
	}
	pids, pst := testPoint(t, r, geom.Point{X: 0.31, Y: 0.47}, cfg)
	wantP := WindowStats{Candidates: 2, FilterHits: 1, FilterFalseHits: 1, ExactTested: 0, ResultObjects: 1, PageAccesses: 2}
	if len(pids) != 1 || pids[0] != 47 || pst != wantP {
		t.Errorf("point query drifted: ids %v, %+v (golden [47], %+v)", pids, pst, wantP)
	}
}

// TestSessionStatsMatchSharedMode proves that a per-query session
// reports exactly the statistics the shared sequential path reports from
// the same starting buffer state — for joins across all three exact
// engines and for window queries.
func TestSessionStatsMatchSharedMode(t *testing.T) {
	rp, sp := goldenSeries()
	for _, engine := range []Engine{EngineQuadratic, EnginePlaneSweep, EngineTRStar} {
		cfg := DefaultConfig()
		cfg.Engine = engine
		cfg.BufferBytes = 8192 // 2 frames: make the accounting non-trivial
		r := NewRelation("R", rp, cfg)
		s := NewRelation("S", sp, cfg)

		// One shared join fixes the buffer state at X.
		sharedPairs, _ := testJoin(t, r, s, cfg)

		// A session join from state X...
		var sessPairs []Pair
		sessSt := testJoinStream(t, r, s, cfg, StreamOptions{
			Workers: 2, AccessR: r.NewSession(), AccessS: s.NewSession(),
		}, func(p Pair) { sessPairs = append(sessPairs, p) })

		// ...must equal a shared join from state X (sessions left the
		// shared buffers untouched, so this second shared run also
		// starts from X).
		wantPairs, wantSt := testJoin(t, r, s, cfg)
		if !reflect.DeepEqual(sessSt, wantSt) {
			t.Errorf("%v: session stats differ from shared mode:\n got %+v\nwant %+v", engine, sessSt, wantSt)
		}
		sortPairs(sessPairs)
		assertSameResponse(t, engine.String()+" session join", sessPairs, wantPairs)
		_ = sharedPairs

		// Window queries: session vs shared from the same state.
		w := geom.Rect{MinX: 0.1, MinY: 0.3, MaxX: 0.6, MaxY: 0.55}
		sessIDs, sessW := testWindowAccess(t, r, r.NewSession(), w, cfg)
		wantIDs, wantW := testWindow(t, r, w, cfg)
		if !reflect.DeepEqual(sessIDs, wantIDs) || sessW != wantW {
			t.Errorf("%v: session window query differs: %v %+v vs %v %+v",
				engine, sessIDs, sessW, wantIDs, wantW)
		}
	}
}

// queryMix runs one goroutine's worth of mixed queries against shared
// relations, each query on a fresh session, and compares every result
// and statistic against the precomputed baselines.
type queryBaselines struct {
	window     geom.Rect
	windowIDs  []int32
	windowSt   WindowStats
	point      geom.Point
	pointIDs   []int32
	pointSt    WindowStats
	nearest    []Neighbor
	joinSt     Stats
	joinPairs  []Pair
	containsSt Stats
	containsP  []Pair
}

func computeBaselines(t *testing.T, r, s *Relation, cfg Config) *queryBaselines {
	b := &queryBaselines{
		window: geom.Rect{MinX: 0.15, MinY: 0.2, MaxX: 0.5, MaxY: 0.45},
		point:  geom.Point{X: 0.31, Y: 0.47},
	}
	b.windowIDs, b.windowSt = testWindowAccess(t, r, r.NewSession(), b.window, cfg)
	b.pointIDs, b.pointSt = testPointAccess(t, r, r.NewSession(), b.point, cfg)
	b.nearest = testNearestAccess(t, r, r.NewSession(), b.point, 5)
	b.joinSt = testJoinStream(t, r, s, cfg, StreamOptions{
		Workers: 2, AccessR: r.NewSession(), AccessS: s.NewSession(),
	}, func(p Pair) { b.joinPairs = append(b.joinPairs, p) })
	sortPairs(b.joinPairs)
	b.containsP, b.containsSt = testJoinContainsAccess(t, r, s, r.NewSession(), s.NewSession(), cfg)
	return b
}

func runQueryMix(t *testing.T, g int, r, s *Relation, cfg Config, b *queryBaselines) {
	for round := 0; round < 3; round++ {
		switch (g + round) % 5 {
		case 0:
			ids, st := testWindowAccess(t, r, r.NewSession(), b.window, cfg)
			if !reflect.DeepEqual(ids, b.windowIDs) || st != b.windowSt {
				t.Errorf("goroutine %d: concurrent window query diverged from baseline", g)
			}
		case 1:
			ids, st := testPointAccess(t, r, r.NewSession(), b.point, cfg)
			if !reflect.DeepEqual(ids, b.pointIDs) || st != b.pointSt {
				t.Errorf("goroutine %d: concurrent point query diverged from baseline", g)
			}
		case 2:
			nn := testNearestAccess(t, r, r.NewSession(), b.point, 5)
			if !reflect.DeepEqual(nn, b.nearest) {
				t.Errorf("goroutine %d: concurrent nearest query diverged from baseline", g)
			}
		case 3:
			var pairs []Pair
			st := testJoinStream(t, r, s, cfg, StreamOptions{
				Workers: 2, AccessR: r.NewSession(), AccessS: s.NewSession(),
			}, func(p Pair) { pairs = append(pairs, p) })
			sortPairs(pairs)
			if !reflect.DeepEqual(st, b.joinSt) {
				t.Errorf("goroutine %d: concurrent join stats diverged:\n got %+v\nwant %+v", g, st, b.joinSt)
			}
			if !reflect.DeepEqual(pairs, b.joinPairs) {
				t.Errorf("goroutine %d: concurrent join response set diverged", g)
			}
		case 4:
			pairs, st := testJoinContainsAccess(t, r, s, r.NewSession(), s.NewSession(), cfg)
			if !reflect.DeepEqual(st, b.containsSt) || !reflect.DeepEqual(pairs, b.containsP) {
				t.Errorf("goroutine %d: concurrent inclusion join diverged from baseline", g)
			}
		}
	}
}

// TestConcurrentQueriesInMemory issues mixed queries from many
// goroutines against one shared pair of BufferManager-backed relations.
// Run under -race this is the acceptance test for the per-query access
// contexts: every query must report exactly its solo-run results and
// statistics, and the lazily built exact representations must be safe to
// build concurrently.
func TestConcurrentQueriesInMemory(t *testing.T) {
	rp, sp := goldenSeries()
	cfg := DefaultConfig()
	cfg.BufferBytes = 8192
	r := NewRelation("R", rp, cfg)
	s := NewRelation("S", sp, cfg)
	b := computeBaselines(t, r, s, cfg)

	// Fresh relations so the concurrent goroutines also race on the lazy
	// Prepared/TR*-tree builds, not just on the page accounting.
	r = NewRelation("R", rp, cfg)
	s = NewRelation("S", sp, cfg)

	const goroutines = 10
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			runQueryMix(t, g, r, s, cfg, b)
		}(g)
	}
	wg.Wait()
}

// TestConcurrentQueriesFileStore is the disk-backed counterpart: the
// R*-trees run on storage.FileStore page stores, so concurrent sessions
// exercise the locked frame cache and the single-flight disk reads.
func TestConcurrentQueriesFileStore(t *testing.T) {
	rp, sp := goldenSeries()
	cfg := DefaultConfig()
	cfg.BufferBytes = 8192

	dir := t.TempDir()
	newFS := func(name string) *storage.FileStore {
		fs, err := storage.CreateFileStore(filepath.Join(dir, name), cfg.PageSize, cfg.BufferBytes/cfg.PageSize, cfg.BufferPolicy)
		if err != nil {
			t.Fatal(err)
		}
		return fs
	}
	fsR, fsS := newFS("r.sjps"), newFS("s.sjps")
	defer fsR.Close()
	defer fsS.Close()
	r := NewRelationWithStore("R", rp, cfg, fsR)
	s := NewRelationWithStore("S", sp, cfg, fsS)
	b := computeBaselines(t, r, s, cfg)

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			runQueryMix(t, g, r, s, cfg, b)
		}(g)
	}
	wg.Wait()
	if err := fsR.Err(); err != nil {
		t.Errorf("R store: %v", err)
	}
	if err := fsS.Err(); err != nil {
		t.Errorf("S store: %v", err)
	}
}

// TestConcurrentQueriesOnReopenedRelation is the serving scenario: a
// relation persisted with SaveRelationFile, reopened once with
// OpenRelationFile, then queried by many goroutines concurrently.
func TestConcurrentQueriesOnReopenedRelation(t *testing.T) {
	rp, sp := goldenSeries()
	cfg := DefaultConfig()
	cfg.BufferBytes = 8192
	dir := t.TempDir()
	pathR, pathS := filepath.Join(dir, "r.store"), filepath.Join(dir, "s.store")
	if err := SaveRelationFile(pathR, NewRelation("R", rp, cfg), cfg); err != nil {
		t.Fatal(err)
	}
	if err := SaveRelationFile(pathS, NewRelation("S", sp, cfg), cfg); err != nil {
		t.Fatal(err)
	}
	r, err := OpenRelationFile(pathR, cfg)
	if err != nil {
		t.Fatal(err)
	}
	s, err := OpenRelationFile(pathS, cfg)
	if err != nil {
		t.Fatal(err)
	}
	b := computeBaselines(t, r, s, cfg)

	const goroutines = 8
	var wg sync.WaitGroup
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			runQueryMix(t, g, r, s, cfg, b)
		}(g)
	}
	wg.Wait()
}

// TestObjectLazyBuildsConcurrent races many goroutines on one Object's
// lazy representations: all callers must observe one canonical tree per
// capacity and one canonical prepared polygon.
func TestObjectLazyBuildsConcurrent(t *testing.T) {
	rp, _ := goldenSeries()
	o := &Object{ID: 0, Poly: rp[0]}
	const goroutines = 16
	var wg sync.WaitGroup
	trees := make([]interface{}, goroutines)
	preps := make([]interface{}, goroutines)
	for g := 0; g < goroutines; g++ {
		wg.Add(1)
		go func(g int) {
			defer wg.Done()
			trees[g] = o.Tree(3)
			preps[g] = o.Prepared()
		}(g)
	}
	wg.Wait()
	for g := 1; g < goroutines; g++ {
		if trees[g] != trees[0] {
			t.Fatal("concurrent same-capacity Tree() calls returned different instances")
		}
		if preps[g] != preps[0] {
			t.Fatal("concurrent Prepared() calls returned different instances")
		}
	}
}
