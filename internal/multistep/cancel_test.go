package multistep

import (
	"context"
	"errors"
	"runtime"
	"sync/atomic"
	"testing"
	"time"

	"spatialjoin/internal/data"
	"spatialjoin/internal/geom"
)

// cancelSeries is a workload whose join takes long enough (hundreds of
// milliseconds even on one CPU) that a mid-join cancellation is
// observable.
func cancelSeries(t testing.TB) (*Relation, *Relation, Config) {
	t.Helper()
	rp := data.GenerateMap(data.MapConfig{Cells: 700, TargetVerts: 56, HoleFraction: 0.1, Seed: 601})
	sp := data.StrategyA(rp, 0.45)
	cfg := DefaultConfig()
	cfg.UseFilter = false // every candidate reaches the exact step: maximal work
	cfg.Engine = EngineQuadratic
	return NewRelation("R", rp, cfg), NewRelation("S", sp, cfg), cfg
}

// TestJoinCancellationStopsEarly is the cancellation acceptance test: a
// cancelled context must surface context.Canceled, stop the pipeline
// well before the full join completes (observed wall-clock), and leak no
// goroutines (checked under -race by the leak guard below).
func TestJoinCancellationStopsEarly(t *testing.T) {
	r, s, _ := cancelSeries(t)

	// Full join wall time as the yardstick.
	start := time.Now()
	_, full, err := Join(context.Background(), r, s, WithBufferless())
	if err != nil {
		t.Fatal(err)
	}
	fullWall := time.Since(start)
	if full.ResultPairs == 0 {
		t.Fatal("workload joins to nothing; test is vacuous")
	}

	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	var emitted atomic.Int64
	go func() {
		// Cancel as soon as the pipeline demonstrably started working.
		for {
			if emitted.Load() > 0 {
				cancel()
				return
			}
			time.Sleep(time.Millisecond)
		}
	}()
	start = time.Now()
	_, _, err = Join(ctx, r, s, WithStream(func(Pair) { emitted.Add(1) }))
	cancelledWall := time.Since(start)
	cancel()
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("cancelled join returned %v, want context.Canceled", err)
	}

	// The cancelled run must not have done the full work. The bound is
	// deliberately loose (half the full wall) to stay robust on loaded
	// CI hosts; in practice the stop is near-immediate.
	if fullWall > 200*time.Millisecond && cancelledWall > fullWall/2 {
		t.Errorf("cancelled join took %v of a %v full join — cancellation did not stop work early",
			cancelledWall, fullWall)
	}

	waitForGoroutines(t, before)
}

// TestJoinCancelledBeforeStart returns immediately with the context
// error and leaks nothing.
func TestJoinCancelledBeforeStart(t *testing.T) {
	r, s, _ := cancelSeries(t)
	before := runtime.NumGoroutine()
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	_, _, err := Join(ctx, r, s)
	if !errors.Is(err, context.Canceled) {
		t.Fatalf("pre-cancelled join returned %v, want context.Canceled", err)
	}
	waitForGoroutines(t, before)
}

// TestQueryCancellation covers the single-relation entry point: a
// cancelled context surfaces the error.
func TestQueryCancellation(t *testing.T) {
	r, _, _ := cancelSeries(t)
	ctx, cancel := context.WithCancel(context.Background())
	cancel()
	if _, err := Query(ctx, r, ForNearest(geom.Point{X: 0.5, Y: 0.5}, 3)); !errors.Is(err, context.Canceled) {
		t.Errorf("cancelled nearest query returned %v", err)
	}
}

// waitForGoroutines polls until the goroutine count returns to (at most)
// the baseline, failing after a generous deadline — the no-leak check of
// the cancellation acceptance criteria.
func waitForGoroutines(t *testing.T, baseline int) {
	t.Helper()
	deadline := time.Now().Add(5 * time.Second)
	for {
		runtime.Gosched()
		if runtime.NumGoroutine() <= baseline {
			return
		}
		if time.Now().After(deadline) {
			t.Fatalf("goroutines leaked after cancellation: %d, baseline %d",
				runtime.NumGoroutine(), baseline)
		}
		time.Sleep(5 * time.Millisecond)
	}
}
