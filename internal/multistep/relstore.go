package multistep

import (
	"encoding/binary"
	"errors"
	"fmt"
	"hash/fnv"
	"io"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/codec"
	"spatialjoin/internal/data"
	"spatialjoin/internal/plan"
	"spatialjoin/internal/rstar"
	"spatialjoin/internal/storage"
	"spatialjoin/internal/trstar"
)

// A relation store is the versioned on-disk form of a fully preprocessed
// Relation: the polygons, every computed approximation, the R*-tree in
// its page-granular node layout, the tree's buffer state, and (under the
// TR*-tree engine) each object's serialized TR*-tree. The expensive
// preprocessing — approximations, trapezoid decomposition, tree builds —
// runs once at save time; OpenRelation restores a relation that joins
// with the identical response set and identical statistics (including
// the buffer hit/miss counts) as the relation it was saved from.
//
// The header carries a fingerprint of every configuration field that
// shapes the preprocessed artifacts; opening a store under a different
// configuration fails with ErrConfigMismatch instead of silently
// producing off-paper metrics. See DESIGN.md, "On-disk formats".
//
// Layout (little endian):
//
//	magic       uint32  'SJRL'
//	version     uint16  1
//	fingerprint uint64  FNV-1a of the canonical config string
//	name        uint16 length + bytes
//	objectCount uint32
//	tree        uint64 length + rstar page-granular tree
//	buffer      uint32 frame count, int32 hand index,
//	            then per frame: int32 page, uint8 referenced
//	hasTRTrees  uint8
//	objects ×objectCount:
//	  polygon   data.AppendPolygon layout
//	  approx    approx.Set layout
//	  tr-tree   uint32 length + trstar.MarshalBinary (if hasTRTrees)
//	stats       uint32 length + plan.AppendStats layout (version ≥ 2)
//
// Version 2 appended the planner-statistics trailer; version 1 stores
// (no trailer) still open, with the statistics recomputed from the
// decoded objects.
const (
	relstoreMagic   = 0x534A524C // "SJRL"
	relstoreVersion = 2

	// fingerprintVersion seeds ConfigFingerprint. It is deliberately
	// decoupled from relstoreVersion: the fingerprint identifies the
	// *configuration* a relation was preprocessed under, not the codec
	// revision, and fingerprints are persisted in every existing store
	// and shard manifest. Bump it only when the meaning of a hashed
	// configuration field changes.
	fingerprintVersion = 1
)

var (
	// ErrBadRelationStore reports a malformed relation store.
	ErrBadRelationStore = errors.New("multistep: corrupt relation store")
	// ErrConfigMismatch reports a relation store built under a different
	// configuration than it is being opened with.
	ErrConfigMismatch = errors.New("multistep: relation store built under a different configuration")
)

// ConfigFingerprint hashes the configuration fields that shape a
// preprocessed relation: the filter approximations, the exact engine and
// its TR*-tree capacity, the page geometry, the buffer size and policy,
// and the MEC precision. Join-time-only fields (Step1, the worker
// options, PlaneSweepRestrict) are excluded — the same store serves any
// of them.
func ConfigFingerprint(cfg Config) uint64 {
	h := fnv.New64a()
	fmt.Fprintf(h, "v%d|filter=%t|cons=%d|prog=%d|fa=%t|nocons=%t|noprog=%t|engine=%d|trcap=%d|page=%d|buffer=%d|policy=%d|mec=%g",
		fingerprintVersion, cfg.UseFilter,
		cfg.Filter.Conservative, cfg.Filter.Progressive, cfg.Filter.UseFalseArea,
		cfg.Filter.NoConservative, cfg.Filter.NoProgressive,
		cfg.Engine, cfg.TRCapacity, cfg.PageSize, cfg.BufferBytes,
		cfg.BufferPolicy, cfg.MECPrecision)
	return h.Sum64()
}

// SaveRelation writes rel as a relation store built under cfg. Under the
// TR*-tree engine every object's TR*-tree is built (if it was not
// already) and persisted, completing the preprocessing the paper's
// section 4.2 stores on secondary storage.
func SaveRelation(w io.Writer, rel *Relation, cfg Config) error {
	blob, err := appendRelation(nil, rel, cfg)
	if err != nil {
		return err
	}
	_, err = w.Write(blob)
	return err
}

func appendRelation(buf []byte, rel *Relation, cfg Config) ([]byte, error) {
	if len(rel.Name) > 1<<16-1 {
		return nil, fmt.Errorf("multistep: relation name of %d bytes exceeds the format", len(rel.Name))
	}
	buf = binary.LittleEndian.AppendUint32(buf, relstoreMagic)
	buf = binary.LittleEndian.AppendUint16(buf, relstoreVersion)
	buf = binary.LittleEndian.AppendUint64(buf, ConfigFingerprint(cfg))
	buf = binary.LittleEndian.AppendUint16(buf, uint16(len(rel.Name)))
	buf = append(buf, rel.Name...)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(rel.Objects)))

	tree, err := rel.Tree.MarshalBinary()
	if err != nil {
		return nil, err
	}
	buf = binary.LittleEndian.AppendUint64(buf, uint64(len(tree)))
	buf = append(buf, tree...)

	st := rel.Tree.Buffer().State()
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(st.Frames)))
	buf = binary.LittleEndian.AppendUint32(buf, uint32(int32(st.Hand)))
	for _, f := range st.Frames {
		buf = binary.LittleEndian.AppendUint32(buf, uint32(f.ID))
		ref := byte(0)
		if f.Referenced {
			ref = 1
		}
		buf = append(buf, ref)
	}

	hasTR := cfg.Engine == EngineTRStar
	if hasTR {
		buf = append(buf, 1)
	} else {
		buf = append(buf, 0)
	}
	for _, o := range rel.Objects {
		buf = data.AppendPolygon(buf, o.Poly)
		var err error
		if buf, err = o.Approx.AppendBinary(buf); err != nil {
			return nil, fmt.Errorf("multistep: object %d: %w", o.ID, err)
		}
		if hasTR {
			tr, err := o.Tree(cfg.TRCapacity).MarshalBinary()
			if err != nil {
				return nil, err
			}
			buf = binary.LittleEndian.AppendUint32(buf, uint32(len(tr)))
			buf = append(buf, tr...)
		}
	}

	// Planner-statistics trailer (version 2). A snapshot of the current
	// feedback EWMAs is persisted with the structural statistics, so a
	// reopened relation resumes from its run history.
	pstats := rel.Stats
	if pstats == nil {
		pstats = rel.ComputeStats()
	}
	stats := plan.AppendStats(nil, pstats)
	buf = binary.LittleEndian.AppendUint32(buf, uint32(len(stats)))
	buf = append(buf, stats...)
	return buf, nil
}

// OpenRelation reads a relation store written by SaveRelation under the
// same configuration. The restored relation is ready to join
// immediately: no approximations are recomputed, no trees rebuilt, and
// the R*-tree resumes in the exact page layout and buffer state it was
// saved in, so join results and statistics equal the original's.
func OpenRelation(r io.Reader, cfg Config) (*Relation, error) {
	blob, err := io.ReadAll(r)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRelationStore, err)
	}
	return decodeRelation(blob, cfg)
}

func decodeRelation(blob []byte, cfg Config) (*Relation, error) {
	d := codec.New(blob, fmt.Errorf("%w: truncated", ErrBadRelationStore))
	if d.U32() != relstoreMagic {
		return nil, fmt.Errorf("%w: bad magic", ErrBadRelationStore)
	}
	version := d.U16()
	if d.Err() == nil && (version < 1 || version > relstoreVersion) {
		return nil, fmt.Errorf("%w: unsupported version %d", ErrBadRelationStore, version)
	}
	if fp := d.U64(); d.Err() == nil && fp != ConfigFingerprint(cfg) {
		return nil, fmt.Errorf("%w: fingerprint %#x, this configuration is %#x",
			ErrConfigMismatch, fp, ConfigFingerprint(cfg))
	}
	name := string(d.Bytes(int(d.U16())))
	count := int(d.U32())

	treeLen := d.U64()
	if d.Err() == nil && treeLen > uint64(d.Remaining()) {
		return nil, fmt.Errorf("%w: tree of %d bytes exceeds the remaining data", ErrBadRelationStore, treeLen)
	}
	treeBytes := d.Bytes(int(treeLen))
	if d.Err() != nil {
		return nil, d.Err()
	}
	tree, err := rstar.UnmarshalTree(treeBytes, rstar.Config{
		PageSize:       cfg.PageSize,
		LeafEntryBytes: EntryBytes(cfg),
		BufferBytes:    cfg.BufferBytes,
		BufferPolicy:   cfg.BufferPolicy,
	})
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRelationStore, err)
	}

	frames64 := uint64(d.U32())
	hand := int(int32(d.U32()))
	// Compare in uint64: frames*5 would overflow 32-bit ints.
	if d.Err() == nil && uint64(d.Remaining()) < frames64*5 {
		return nil, fmt.Errorf("%w: buffer state of %d frames exceeds the remaining data", ErrBadRelationStore, frames64)
	}
	frames := int(frames64)
	bufState := storage.BufferState{Hand: hand}
	for i := 0; i < frames && d.Err() == nil; i++ {
		id := storage.PageID(int32(d.U32()))
		ref := d.U8()
		bufState.Frames = append(bufState.Frames, storage.FrameState{ID: id, Referenced: ref == 1})
	}
	if d.Err() == nil && (hand < -1 || hand >= frames) {
		return nil, fmt.Errorf("%w: clock hand %d outside %d frames", ErrBadRelationStore, hand, frames)
	}

	trTag := d.U8()
	if d.Err() == nil && trTag > 1 {
		return nil, fmt.Errorf("%w: bad TR*-tree tag %d", ErrBadRelationStore, trTag)
	}
	hasTR := trTag == 1
	if d.Err() == nil && hasTR != (cfg.Engine == EngineTRStar) {
		return nil, fmt.Errorf("%w: TR*-tree presence contradicts the engine", ErrBadRelationStore)
	}
	rel := &Relation{Name: name, Tree: tree, Cfg: cfg}
	for i := 0; i < count && d.Err() == nil; i++ {
		poly, n, err := data.DecodePolygon(d.Rest())
		if err != nil {
			return nil, fmt.Errorf("%w: object %d: %v", ErrBadRelationStore, i, err)
		}
		d.Skip(n)
		set, n, err := approx.DecodeSet(d.Rest())
		if err != nil {
			return nil, fmt.Errorf("%w: object %d: %v", ErrBadRelationStore, i, err)
		}
		d.Skip(n)
		o := &Object{ID: int32(i), Poly: poly, Approx: set}
		if hasTR {
			trLen := int(d.U32())
			if d.Err() == nil && d.Remaining() < trLen {
				return nil, fmt.Errorf("%w: object %d: TR*-tree of %d bytes exceeds the remaining data", ErrBadRelationStore, i, trLen)
			}
			trBytes := d.Bytes(trLen)
			if d.Err() != nil {
				break
			}
			tr, err := trstar.UnmarshalBinary(trBytes)
			if err != nil {
				return nil, fmt.Errorf("%w: object %d: %v", ErrBadRelationStore, i, err)
			}
			if tr.Capacity() != cfg.TRCapacity {
				return nil, fmt.Errorf("%w: object %d: TR*-tree capacity %d, configuration uses %d",
					ErrBadRelationStore, i, tr.Capacity(), cfg.TRCapacity)
			}
			o.tree.Store(tr)
		}
		rel.Objects = append(rel.Objects, o)
	}
	if d.Err() != nil {
		return nil, d.Err()
	}
	if version >= 2 {
		statsLen := int(d.U32())
		if d.Err() == nil && d.Remaining() < statsLen {
			return nil, fmt.Errorf("%w: stats trailer of %d bytes exceeds the remaining data", ErrBadRelationStore, statsLen)
		}
		statsBytes := d.Bytes(statsLen)
		if d.Err() != nil {
			return nil, d.Err()
		}
		st, err := plan.DecodeStats(statsBytes)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRelationStore, err)
		}
		if st.Objects != int64(count) {
			return nil, fmt.Errorf("%w: stats describe %d objects, store holds %d", ErrBadRelationStore, st.Objects, count)
		}
		rel.Stats = st
	}
	if d.Remaining() != 0 {
		return nil, fmt.Errorf("%w: %d trailing bytes", ErrBadRelationStore, d.Remaining())
	}
	if rel.Stats == nil {
		// Pre-statistics store: derive what save time would have written.
		rel.Stats = rel.ComputeStats()
	}

	// The tree items must index the object table: same cardinality, IDs
	// in range, every entry rectangle equal to its object's MBR.
	if tree.Size() != count {
		return nil, fmt.Errorf("%w: tree holds %d items for %d objects", ErrBadRelationStore, tree.Size(), count)
	}
	var itemErr error
	tree.Items(func(it rstar.Item) {
		if itemErr != nil {
			return
		}
		if it.ID < 0 || int(it.ID) >= count {
			itemErr = fmt.Errorf("%w: tree item ID %d outside %d objects", ErrBadRelationStore, it.ID, count)
			return
		}
		if it.Rect != rel.Objects[it.ID].Approx.MBR {
			itemErr = fmt.Errorf("%w: tree rectangle of object %d differs from its MBR", ErrBadRelationStore, it.ID)
		}
	})
	if itemErr != nil {
		return nil, itemErr
	}
	tree.Buffer().Restore(bufState)
	return rel, nil
}

// SaveRelationFile writes rel as a relation store laid out on a
// storage.FileStore: page 0 starts with the store length, and the blob
// spans consecutive cfg.PageSize-sized page slots.
func SaveRelationFile(path string, rel *Relation, cfg Config) error {
	blob, err := appendRelation(make([]byte, 8), rel, cfg)
	if err != nil {
		return err
	}
	binary.LittleEndian.PutUint64(blob, uint64(len(blob)-8))
	fs, err := storage.CreateFileStore(path, cfg.PageSize, 1, storage.LRU)
	if err != nil {
		return err
	}
	for off := 0; off < len(blob); off += cfg.PageSize {
		end := off + cfg.PageSize
		if end > len(blob) {
			end = len(blob)
		}
		if _, err := fs.AppendPage(blob[off:end]); err != nil {
			fs.Close()
			return err
		}
	}
	return fs.Close()
}

// OpenRelationFile opens a relation store written by SaveRelationFile,
// reading it page by page through a buffered storage.FileStore — the
// disk-backed counterpart of OpenRelation.
func OpenRelationFile(path string, cfg Config) (*Relation, error) {
	fs, err := storage.OpenFileStore(path, 1, storage.LRU)
	if err != nil {
		return nil, err
	}
	defer fs.Close()
	if fs.SlotBytes() != cfg.PageSize {
		return nil, fmt.Errorf("%w: %d-byte pages, this configuration uses %d", ErrConfigMismatch, fs.SlotBytes(), cfg.PageSize)
	}
	first, err := fs.ReadPage(0)
	if err != nil {
		return nil, fmt.Errorf("%w: %v", ErrBadRelationStore, err)
	}
	if len(first) < 8 {
		return nil, fmt.Errorf("%w: truncated length prefix", ErrBadRelationStore)
	}
	blobLen := binary.LittleEndian.Uint64(first)
	if blobLen > uint64(fs.Pages())*uint64(fs.SlotBytes()) {
		return nil, fmt.Errorf("%w: store length %d exceeds %d pages", ErrBadRelationStore, blobLen, fs.Pages())
	}
	blob := make([]byte, 0, blobLen)
	blob = append(blob, first[8:]...)
	for page := storage.PageID(1); uint64(len(blob)) < blobLen; page++ {
		p, err := fs.ReadPage(page)
		if err != nil {
			return nil, fmt.Errorf("%w: %v", ErrBadRelationStore, err)
		}
		blob = append(blob, p...)
	}
	return decodeRelation(blob[:blobLen], cfg)
}
