package multistep

import (
	"spatialjoin/internal/geom"
)

// The inclusion join runs through the unified Join entry point with the
// Contains predicate (see predicate.go): step 1 restricts the MBR-join to
// nested MBRs (containment of regions implies containment of the MBRs),
// step 2 classifies with the inclusion filter on approximations
// (approx.FilterConfig.ClassifyContains), and step 3 decides the
// survivors with the exact inclusion test.

// NestedLoopsContains is the brute-force inclusion join used to validate
// the Contains predicate.
func NestedLoopsContains(r, s []*geom.Polygon) []Pair {
	var out []Pair
	for i, a := range r {
		for j, b := range s {
			if a.ContainsPolygon(b) {
				out = append(out, Pair{A: int32(i), B: int32(j)})
			}
		}
	}
	return out
}
