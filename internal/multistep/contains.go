package multistep

import (
	"spatialjoin/internal/approx"
	"spatialjoin/internal/exact"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/rstar"
	"spatialjoin/internal/storage"
)

// JoinContains runs the multi-step inclusion join "a ∈ r contains b ∈ s"
// (section 2.2: "for other predicates, e.g. inclusion, a similar approach
// can be used"). The three steps mirror the intersection join:
//
//	step 1 — the R*-tree MBR-join restricted to pairs with
//	         MBR(a) ⊇ MBR(b) (containment of regions implies containment
//	         of the MBRs);
//	step 2 — the inclusion filter on approximations
//	         (approx.FilterConfig.ClassifyContains);
//	step 3 — the exact inclusion predicate with operation counting.
//
// Both relations must have been built with the same Config.
//
// JoinContains accounts on the shared tree buffers (reset first) — the
// sequential single-query mode; JoinContainsAccess is the
// concurrent-query variant.
func JoinContains(r, s *Relation, cfg Config) ([]Pair, Stats) {
	r.Tree.Buffer().ResetCounters()
	s.Tree.Buffer().ResetCounters()
	return JoinContainsAccess(r, s, r.Tree.Buffer(), s.Tree.Buffer(), cfg)
}

// JoinContainsAccess is JoinContains with each tree's page visits routed
// through an explicit access context. With per-query sessions
// (Relation.NewSession on both sides) inclusion joins may run
// concurrently with any other queries on the same relations.
func JoinContainsAccess(r, s *Relation, axR, axS storage.Accessor, cfg Config) ([]Pair, Stats) {
	var st Stats
	var out []Pair

	missesR, missesS := axR.Misses(), axS.Misses()
	fetchedR := make(map[int32]struct{})
	fetchedS := make(map[int32]struct{})
	st.MBRJoin = rstar.JoinAccess(r.Tree, s.Tree, axR, axS, func(a, b rstar.Item) {
		oa := r.Objects[a.ID]
		ob := s.Objects[b.ID]
		// Step 1 pretest: containment of the regions implies containment
		// of the MBRs; intersecting-but-not-containing pairs are not
		// inclusion candidates.
		if !oa.Approx.MBR.Contains(ob.Approx.MBR) {
			return
		}
		st.CandidatePairs++

		if cfg.UseFilter {
			switch cfg.Filter.ClassifyContains(oa.Approx, ob.Approx) {
			case approx.Hit:
				st.FilterHits++
				out = append(out, Pair{A: oa.ID, B: ob.ID})
				return
			case approx.FalseHit:
				st.FilterFalseHits++
				return
			}
		}

		st.ExactTested++
		// Object fetches are tracked in join-local sets (not on the shared
		// objects), so a panic mid-join leaves no dirty state and
		// concurrent joins on the same relations do not race.
		if _, ok := fetchedR[oa.ID]; !ok {
			fetchedR[oa.ID] = struct{}{}
			st.ObjectFetches++
		}
		if _, ok := fetchedS[ob.ID]; !ok {
			fetchedS[ob.ID] = struct{}{}
			st.ObjectFetches++
		}
		if exact.ContainsPolygon(oa.Prepared(), ob.Prepared(), &st.Ops) {
			st.ExactHits++
			out = append(out, Pair{A: oa.ID, B: ob.ID})
		}
	})

	st.PageAccessesR = axR.Misses() - missesR
	st.PageAccessesS = axS.Misses() - missesS
	st.ResultPairs = int64(len(out))
	return out, st
}

// NestedLoopsContains is the brute-force inclusion join used to validate
// JoinContains.
func NestedLoopsContains(r, s []*geom.Polygon) []Pair {
	var out []Pair
	for i, a := range r {
		for j, b := range s {
			if a.ContainsPolygon(b) {
				out = append(out, Pair{A: int32(i), B: int32(j)})
			}
		}
	}
	return out
}
