package multistep

import (
	"testing"
)

// clearBuffers puts both relations' page buffers into the same (cold)
// state, so that the page-access statistics of consecutive joins are
// comparable byte for byte.
func clearBuffers(r, s *Relation) {
	r.Tree.Buffer().Clear()
	s.Tree.Buffer().Clear()
}

// TestJoinStreamEquivalence is the streaming pipeline's correctness
// theorem: for every exact engine, every step 1 generator and every
// worker count, JoinStream (and the JoinParallel wrapper) produce exactly
// Join's response set and exactly Join's statistics — candidate counts,
// filter decisions, exact tests, object fetches, operation counters and
// page accesses alike.
func TestJoinStreamEquivalence(t *testing.T) {
	rp, sp := smallSeries(t)
	for _, step1 := range []Step1{Step1RStar, Step1ZOrder, Step1NestedLoops} {
		for _, engine := range []Engine{EngineQuadratic, EnginePlaneSweep, EngineTRStar} {
			cfg := DefaultConfig()
			cfg.Step1 = step1
			cfg.Engine = engine
			r := NewRelation("R", rp, cfg)
			s := NewRelation("S", sp, cfg)
			name := step1.String() + "/" + engine.String()

			clearBuffers(r, s)
			want, wantSt := testJoin(t, r, s, cfg)
			if len(want) == 0 {
				t.Fatalf("%s: join produced nothing; test is vacuous", name)
			}

			for _, workers := range []int{1, 2, 4, 0} {
				clearBuffers(r, s)
				var got []Pair
				st := testJoinStream(t, r, s, cfg, StreamOptions{Workers: workers},
					func(p Pair) { got = append(got, p) })
				assertSameResponse(t, name, got, want)
				if st != wantSt {
					t.Errorf("%s workers=%d: stats diverge:\n got %+v\nwant %+v",
						name, workers, st, wantSt)
				}
			}

			if step1 == Step1RStar {
				clearBuffers(r, s)
				got, st := testJoinWorkers(t, r, s, cfg, 4)
				assertSameResponse(t, name+"/JoinParallel", got, want)
				if st != wantSt {
					t.Errorf("%s: JoinParallel stats diverge:\n got %+v\nwant %+v",
						name, st, wantSt)
				}
			}
		}
	}
}

// TestJoinStreamBackpressure runs the pipeline with the smallest possible
// batches and queue so every channel operation and flush path is
// exercised under back-pressure.
func TestJoinStreamBackpressure(t *testing.T) {
	rp, sp := smallSeries(t)
	cfg := DefaultConfig()
	r := NewRelation("R", rp, cfg)
	s := NewRelation("S", sp, cfg)

	clearBuffers(r, s)
	want, wantSt := testJoin(t, r, s, cfg)

	clearBuffers(r, s)
	var got []Pair
	st := testJoinStream(t, r, s, cfg, StreamOptions{Workers: 3, Batch: 1, Queue: 1},
		func(p Pair) { got = append(got, p) })
	assertSameResponse(t, "batch=1", got, want)
	if st != wantSt {
		t.Errorf("batch=1: stats diverge:\n got %+v\nwant %+v", st, wantSt)
	}
}

// TestJoinStreamNilEmit checks that a nil emit still drives the full
// pipeline and reports complete statistics.
func TestJoinStreamNilEmit(t *testing.T) {
	rp, sp := smallSeries(t)
	cfg := DefaultConfig()
	r := NewRelation("R", rp, cfg)
	s := NewRelation("S", sp, cfg)

	clearBuffers(r, s)
	want, wantSt := testJoin(t, r, s, cfg)

	clearBuffers(r, s)
	st := testJoinStream(t, r, s, cfg, StreamOptions{}, nil)
	if st != wantSt {
		t.Errorf("nil emit: stats diverge:\n got %+v\nwant %+v", st, wantSt)
	}
	if st.ResultPairs != int64(len(want)) {
		t.Errorf("nil emit: ResultPairs = %d, want %d", st.ResultPairs, len(want))
	}
}

// TestJoinStreamRepeatable runs the same streaming join twice from the
// same buffer state and demands identical statistics — the deterministic
// merge must hide the scheduling.
func TestJoinStreamRepeatable(t *testing.T) {
	rp, sp := smallSeries(t)
	cfg := DefaultConfig()
	r := NewRelation("R", rp, cfg)
	s := NewRelation("S", sp, cfg)

	clearBuffers(r, s)
	first := testJoinStream(t, r, s, cfg, StreamOptions{Workers: 4}, nil)
	clearBuffers(r, s)
	second := testJoinStream(t, r, s, cfg, StreamOptions{Workers: 4}, nil)
	if first != second {
		t.Errorf("streaming join not repeatable:\n first %+v\nsecond %+v", first, second)
	}
}

// TestDefaultStreamOptions pins the documented defaults.
func TestDefaultStreamOptions(t *testing.T) {
	o := DefaultStreamOptions()
	if o.Workers <= 0 || o.Batch != 256 || o.Queue != 4*o.Workers {
		t.Errorf("unexpected defaults: %+v", o)
	}
}
