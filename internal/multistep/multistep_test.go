package multistep

import (
	"context"
	"sort"
	"testing"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/data"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/storage"
)

// The helpers below run the pre-redesign entry points through the
// unified API — each body is one row of the README migration table, so
// every test exercising them doubles as an equivalence proof of the
// redesign against the pre-redesign behaviour (goldens included).

// testJoin is the old sequential Join(r, s, cfg).
func testJoin(t testing.TB, r, s *Relation, cfg Config) ([]Pair, Stats) {
	t.Helper()
	pairs, st, err := Join(context.Background(), r, s, WithConfig(cfg), WithWorkers(1))
	if err != nil {
		t.Fatal(err)
	}
	return pairs, st
}

// testJoinWorkers is the old JoinParallel(r, s, cfg, workers).
func testJoinWorkers(t testing.TB, r, s *Relation, cfg Config, workers int) ([]Pair, Stats) {
	t.Helper()
	cfg.Step1 = Step1RStar
	pairs, st, err := Join(context.Background(), r, s, WithConfig(cfg), WithWorkers(workers))
	if err != nil {
		t.Fatal(err)
	}
	return pairs, st
}

// testJoinStream is the old JoinStream(r, s, cfg, opts, emit).
func testJoinStream(t testing.TB, r, s *Relation, cfg Config, opts StreamOptions, emit func(Pair)) Stats {
	t.Helper()
	o := []Option{
		WithConfig(cfg), WithWorkers(opts.Workers), WithBatch(opts.Batch),
		WithQueue(opts.Queue), WithSessions(opts.AccessR, opts.AccessS),
	}
	if emit != nil {
		o = append(o, WithStream(emit))
	} else {
		o = append(o, WithBufferless())
	}
	_, st, err := Join(context.Background(), r, s, o...)
	if err != nil {
		t.Fatal(err)
	}
	return st
}

// testJoinContains is the old JoinContains(r, s, cfg);
// testJoinContainsAccess its *Access twin.
func testJoinContains(t testing.TB, r, s *Relation, cfg Config) ([]Pair, Stats) {
	t.Helper()
	pairs, st, err := Join(context.Background(), r, s,
		WithConfig(cfg), WithPredicate(Contains()))
	if err != nil {
		t.Fatal(err)
	}
	return pairs, st
}

func testJoinContainsAccess(t testing.TB, r, s *Relation, axR, axS storage.Accessor, cfg Config) ([]Pair, Stats) {
	t.Helper()
	pairs, st, err := Join(context.Background(), r, s,
		WithConfig(cfg), WithPredicate(Contains()), WithSessions(axR, axS))
	if err != nil {
		t.Fatal(err)
	}
	return pairs, st
}

// testWindow is the old WindowQuery(rel, w, cfg); testWindowAccess,
// testPoint, testPointAccess and testNearestAccess follow the same
// pattern for the remaining pre-redesign names.
func testWindow(t testing.TB, rel *Relation, w geom.Rect, cfg Config) ([]int32, WindowStats) {
	t.Helper()
	res, err := Query(context.Background(), rel, ForWindow(w), WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return res.IDs, res.Stats
}

func testWindowAccess(t testing.TB, rel *Relation, ax storage.Accessor, w geom.Rect, cfg Config) ([]int32, WindowStats) {
	t.Helper()
	res, err := Query(context.Background(), rel, ForWindow(w), WithConfig(cfg), WithSession(ax))
	if err != nil {
		t.Fatal(err)
	}
	return res.IDs, res.Stats
}

func testPoint(t testing.TB, rel *Relation, p geom.Point, cfg Config) ([]int32, WindowStats) {
	t.Helper()
	res, err := Query(context.Background(), rel, ForPoint(p), WithConfig(cfg))
	if err != nil {
		t.Fatal(err)
	}
	return res.IDs, res.Stats
}

func testPointAccess(t testing.TB, rel *Relation, ax storage.Accessor, p geom.Point, cfg Config) ([]int32, WindowStats) {
	t.Helper()
	res, err := Query(context.Background(), rel, ForPoint(p), WithConfig(cfg), WithSession(ax))
	if err != nil {
		t.Fatal(err)
	}
	return res.IDs, res.Stats
}

func testNearestAccess(t testing.TB, rel *Relation, ax storage.Accessor, p geom.Point, k int) []Neighbor {
	t.Helper()
	res, err := Query(context.Background(), rel, ForNearest(p, k), WithSession(ax))
	if err != nil {
		t.Fatal(err)
	}
	return res.Neighbors
}

// smallSeries builds a reduced test series so the full pipeline can be
// cross-validated against nested loops quickly.
func smallSeries(t *testing.T) ([]*geom.Polygon, []*geom.Polygon) {
	t.Helper()
	r := data.GenerateMap(data.MapConfig{Cells: 80, TargetVerts: 48, HoleFraction: 0.1, Seed: 211})
	s := data.StrategyA(r, 0.45)
	return r, s
}

func sortPairs(ps []Pair) {
	sort.Slice(ps, func(i, j int) bool {
		if ps[i].A != ps[j].A {
			return ps[i].A < ps[j].A
		}
		return ps[i].B < ps[j].B
	})
}

func assertSameResponse(t *testing.T, name string, got, want []Pair) {
	t.Helper()
	sortPairs(got)
	sortPairs(want)
	if len(got) != len(want) {
		t.Fatalf("%s: %d pairs, want %d", name, len(got), len(want))
	}
	for i := range got {
		if got[i] != want[i] {
			t.Fatalf("%s: pair %d = %v, want %v", name, i, got[i], want[i])
		}
	}
}

// TestJoinMatchesNestedLoopsAllEngines is the repository's central
// correctness theorem: every configuration of the multi-step processor
// computes exactly the brute-force response set.
func TestJoinMatchesNestedLoopsAllEngines(t *testing.T) {
	rp, sp := smallSeries(t)
	want := NestedLoopsJoin(rp, sp)
	if len(want) == 0 {
		t.Fatal("workload has no intersecting pairs; test is vacuous")
	}

	for _, engine := range []Engine{EngineQuadratic, EnginePlaneSweep, EngineTRStar} {
		for _, useFilter := range []bool{false, true} {
			cfg := DefaultConfig()
			cfg.Engine = engine
			cfg.UseFilter = useFilter
			r := NewRelation("R", rp, cfg)
			s := NewRelation("S", sp, cfg)
			got, st := testJoin(t, r, s, cfg)
			name := engine.String()
			if useFilter {
				name += "+filter"
			}
			assertSameResponse(t, name, got, want)
			if st.ResultPairs != int64(len(want)) {
				t.Errorf("%s: ResultPairs = %d, want %d", name, st.ResultPairs, len(want))
			}
			if st.CandidatePairs < int64(len(want)) {
				t.Errorf("%s: candidate set smaller than the response set", name)
			}
			if useFilter {
				if st.FilterHits == 0 || st.FilterFalseHits == 0 {
					t.Errorf("%s: filter identified nothing (hits %d, false hits %d)",
						name, st.FilterHits, st.FilterFalseHits)
				}
				if st.ExactTested >= st.CandidatePairs {
					t.Errorf("%s: filter did not reduce exact tests", name)
				}
			} else if st.ExactTested != st.CandidatePairs {
				t.Errorf("%s: without filter every candidate must reach step 3", name)
			}
		}
	}
}

func TestJoinWithFalseAreaTest(t *testing.T) {
	rp, sp := smallSeries(t)
	want := NestedLoopsJoin(rp, sp)
	cfg := DefaultConfig()
	cfg.Filter.UseFalseArea = true
	r := NewRelation("R", rp, cfg)
	s := NewRelation("S", sp, cfg)
	got, _ := testJoin(t, r, s, cfg)
	assertSameResponse(t, "false-area", got, want)
}

func TestJoinStrategyB(t *testing.T) {
	rel := data.GenerateMap(data.MapConfig{Cells: 60, TargetVerts: 40, Seed: 223})
	rp := data.StrategyB(rel, 5)
	sp := data.StrategyB(rel, 6)
	want := NestedLoopsJoin(rp, sp)
	cfg := DefaultConfig()
	r := NewRelation("R", rp, cfg)
	s := NewRelation("S", sp, cfg)
	got, _ := testJoin(t, r, s, cfg)
	assertSameResponse(t, "strategy B", got, want)
}

func TestFilterReducesExactWork(t *testing.T) {
	rp, sp := smallSeries(t)
	base := DefaultConfig()
	base.UseFilter = false
	withFilter := DefaultConfig()

	r0 := NewRelation("R", rp, base)
	s0 := NewRelation("S", sp, base)
	_, st0 := testJoin(t, r0, s0, base)

	r1 := NewRelation("R", rp, withFilter)
	s1 := NewRelation("S", sp, withFilter)
	_, st1 := testJoin(t, r1, s1, withFilter)

	if st1.ExactTested >= st0.ExactTested {
		t.Errorf("filter must reduce exact tests: %d vs %d", st1.ExactTested, st0.ExactTested)
	}
	if st1.Identified() < 0.2 {
		t.Errorf("filter identified only %.0f%% of candidates; expected a Figure 12-like share",
			100*st1.Identified())
	}
}

func TestEntryBytes(t *testing.T) {
	cfg := DefaultConfig() // 5-C (40) + MER (16) + MBR (16) + info (32)
	if got := EntryBytes(cfg); got != 104 {
		t.Errorf("EntryBytes = %d, want 104", got)
	}
	cfg.UseFilter = false
	if got := EntryBytes(cfg); got != 48 {
		t.Errorf("EntryBytes without filter = %d, want 48", got)
	}
	cfg = DefaultConfig()
	cfg.Filter.Conservative = approx.RMBR
	if got := EntryBytes(cfg); got != 84 {
		t.Errorf("EntryBytes with RMBR = %d, want 84", got)
	}
}

func TestLargerEntriesCostPages(t *testing.T) {
	// Figure 11's "loss": storing approximations lowers page capacity and
	// raises MBR-join page accesses.
	rp, sp := smallSeries(t)
	plain := DefaultConfig()
	plain.UseFilter = false
	filt := DefaultConfig()

	r0 := NewRelation("R", rp, plain)
	s0 := NewRelation("S", sp, plain)
	_, st0 := testJoin(t, r0, s0, plain)
	r1 := NewRelation("R", rp, filt)
	s1 := NewRelation("S", sp, filt)
	_, st1 := testJoin(t, r1, s1, filt)

	if r1.Tree.Pages() <= r0.Tree.Pages() {
		t.Errorf("larger entries must allocate more pages: %d vs %d", r1.Tree.Pages(), r0.Tree.Pages())
	}
	// Page accesses may or may not grow (buffering), but the trees must
	// deliver identical candidate sets.
	if st0.CandidatePairs != st1.CandidatePairs {
		t.Errorf("candidate sets differ: %d vs %d", st0.CandidatePairs, st1.CandidatePairs)
	}
}

func TestStatsIdentified(t *testing.T) {
	st := Stats{CandidatePairs: 100, FilterHits: 23, FilterFalseHits: 23}
	if got := st.Identified(); got != 0.46 {
		t.Errorf("Identified = %v, want 0.46", got)
	}
	if (Stats{}).Identified() != 0 {
		t.Error("empty stats must identify 0")
	}
}

func TestObjectLazyRepresentations(t *testing.T) {
	p := geom.NewPolygon([]geom.Point{{X: 0, Y: 0}, {X: 1, Y: 0}, {X: 1, Y: 1}, {X: 0, Y: 1}})
	o := &Object{ID: 1, Poly: p, Approx: approx.Compute(p, approx.Options{})}
	pp := o.Prepared()
	if pp == nil || o.Prepared() != pp {
		t.Error("Prepared must build once and cache")
	}
	tr := o.Tree(3)
	if tr == nil || o.Tree(3) != tr {
		t.Error("Tree must build once and cache per capacity")
	}
	if o.Tree(4) == tr {
		t.Error("different capacity must rebuild the tree")
	}
}

func TestEngineString(t *testing.T) {
	if EngineQuadratic.String() != "quadratic" ||
		EnginePlaneSweep.String() != "plane-sweep" ||
		EngineTRStar.String() != "TR*-tree" {
		t.Error("engine names wrong")
	}
}
