// Package multistep implements the paper's primary contribution: the
// three-step spatial join processor of Figure 1.
//
//	Step 1 — MBR-join: an R*-tree synchronized traversal [BKS 93a]
//	         delivers candidate pairs whose MBRs intersect.
//	Step 2 — geometric filter: conservative approximations prove false
//	         hits, progressive approximations (and optionally the
//	         false-area test) prove hits, without touching exact geometry.
//	Step 3 — exact geometry processor: the remaining candidates are
//	         decided on the exact representation (quadratic, plane sweep,
//	         or TR*-tree over decomposed objects).
//
// Candidate pairs stream through the steps without materializing an
// intermediate candidate set (section 2.4). The pipeline is
// predicate-generic — section 2.2's "for other predicates ... a similar
// approach can be used" — and the public surface reflects that: one
// context-aware, option-driven entry point per query shape,
//
//	Join(ctx, r, s, opts...)   // intersection, inclusion, ε-distance joins
//	Query(ctx, r, opts...)     // window, point, ε-range, nearest queries
//
// with the Predicate (Intersects, Contains, WithinDistance) specializing
// all three steps and functional options covering workers, streaming,
// per-query access contexts and limits (see api.go and predicate.go).
// The streaming core spreads the traversal and the filter/exact steps
// over a worker pool — the CPU parallelism the paper defers to future
// work in section 6 — while producing exactly the sequential response
// set and statistics.
package multistep

import (
	"fmt"
	"strings"
	"sync/atomic"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/exact"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/ops"
	"spatialjoin/internal/plan"
	"spatialjoin/internal/rstar"
	"spatialjoin/internal/storage"
	"spatialjoin/internal/trstar"
)

// Engine selects the exact geometry algorithm of step 3.
type Engine int

// The three exact engines of section 4.
const (
	EngineQuadratic Engine = iota
	EnginePlaneSweep
	EngineTRStar
)

// String returns the paper's name for the engine.
func (e Engine) String() string {
	switch e {
	case EngineQuadratic:
		return "quadratic"
	case EnginePlaneSweep:
		return "plane-sweep"
	case EngineTRStar:
		return "TR*-tree"
	default:
		return fmt.Sprintf("Engine(%d)", int(e))
	}
}

// ParseEngine parses an engine name: "trstar" (also "tr*", "tr"),
// "planesweep" ("sweep") or "quadratic" ("naive").
func ParseEngine(s string) (Engine, error) {
	switch strings.ToLower(s) {
	case "trstar", "tr*", "tr":
		return EngineTRStar, nil
	case "planesweep", "sweep":
		return EnginePlaneSweep, nil
	case "quadratic", "naive":
		return EngineQuadratic, nil
	}
	return 0, fmt.Errorf("multistep: unknown engine %q", s)
}

// Step1 selects the candidate generator of step 1. The paper recommends
// the R*-tree join of [BKS 93a] and names space-filling-curve sort-merge
// [Ore 86, Fal 88, Jag 90b] as the alternative; nested loops is the
// section 2.3 baseline.
type Step1 int

// Step 1 candidate generators.
const (
	Step1RStar Step1 = iota
	Step1ZOrder
	Step1NestedLoops
)

// String returns a human-readable generator name.
func (s Step1) String() string {
	switch s {
	case Step1RStar:
		return "R*-tree join"
	case Step1ZOrder:
		return "Z-order sort-merge"
	case Step1NestedLoops:
		return "nested loops"
	default:
		return fmt.Sprintf("Step1(%d)", int(s))
	}
}

// Config assembles a join processor variant. The zero value is not valid;
// use DefaultConfig (the paper's final recommendation, "version 3" of
// Figure 18) and modify from there.
type Config struct {
	// Step1 selects the candidate generator (default: the R*-tree join).
	Step1 Step1
	// UseFilter enables step 2. Without it every candidate pair goes to
	// the exact processor ("version 1" of Figure 18).
	UseFilter bool
	// Filter selects the approximations of step 2.
	Filter approx.FilterConfig
	// Engine selects the step 3 algorithm.
	Engine Engine
	// PlaneSweepRestrict applies the search-space restriction of
	// section 4.1 (on by default in the paper's numbers).
	PlaneSweepRestrict bool
	// TRCapacity is the TR*-tree node capacity (Figure 17: 3 is best).
	TRCapacity int
	// PageSize and BufferBytes configure the R*-trees of step 1.
	PageSize    int
	BufferBytes int
	// BufferPolicy selects the R*-tree buffer replacement policy
	// (default LRU, the paper's choice).
	BufferPolicy storage.Policy
	// MECPrecision tunes the maximum-enclosed-circle computation.
	MECPrecision float64
}

// DefaultConfig returns the paper's recommended configuration: 5-corner +
// MER filtering and the TR*-tree exact engine with M = 3, on 4 KB pages
// with a 128 KB buffer.
func DefaultConfig() Config {
	return Config{
		UseFilter:          true,
		Filter:             approx.RecommendedFilter(),
		Engine:             EngineTRStar,
		PlaneSweepRestrict: true,
		TRCapacity:         trstar.DefaultCapacity,
		PageSize:           4096,
		BufferBytes:        128 << 10,
	}
}

// Object is one spatial object with its precomputed approximations and
// lazily built exact-geometry representations. The lazy builders are safe
// for concurrent use, so the streaming pipeline's workers can share
// objects without coordination; the builds are deterministic, so a
// duplicated concurrent build yields an equivalent representation.
type Object struct {
	ID     int32
	Poly   *geom.Polygon
	Approx *approx.Set

	prepared atomic.Pointer[exact.PreparedPolygon] // built on first exact test
	tree     atomic.Pointer[trstar.Tree]           // built on first TR*-tree test
}

// Prepared returns the plane-sweep/quadratic representation, building it
// on first use (the paper's per-object preprocessing).
func (o *Object) Prepared() *exact.PreparedPolygon {
	if p := o.prepared.Load(); p != nil {
		return p
	}
	p := exact.Prepare(o.Poly)
	if !o.prepared.CompareAndSwap(nil, p) {
		return o.prepared.Load()
	}
	return p
}

// Tree returns the TR*-tree representation, building it on first use.
// Like Prepared it is safe for concurrent use: the common case — many
// queries racing to build the tree at the same capacity — publishes one
// canonical tree via compare-and-swap, so every caller observes the same
// instance. Only a capacity change (a different Config against the same
// objects, which no query workload does mid-flight) rebuilds and
// replaces the cached tree.
func (o *Object) Tree(capacity int) *trstar.Tree {
	if t := o.tree.Load(); t != nil && t.Capacity() == capacity {
		return t
	}
	t := trstar.NewFromPolygon(o.Poly, capacity)
	if o.tree.CompareAndSwap(nil, t) {
		return t
	}
	// Lost the build race: adopt the winner if it has the right
	// capacity, else replace the stale-capacity tree (last writer wins;
	// both replacements are valid trees for their capacity).
	if cur := o.tree.Load(); cur != nil && cur.Capacity() == capacity {
		return cur
	}
	o.tree.Store(t)
	return t
}

// Relation is a set of objects indexed by an R*-tree on their MBRs. The
// R*-tree entry size reflects the approximations stored with each entry
// (section 3.4, approach 2), so enabling the filter costs index capacity —
// the loss/gain trade-off of Figure 11.
//
// A built (or reopened) Relation is immutable and serves any number of
// concurrent queries, provided each query carries its own page-access
// context: create one with NewSession and pass it via the WithSessions
// (joins) or WithSession (queries) option. Without sessions, Join and
// Query account on the shared tree buffer — the paper's sequential
// mode, one query at a time.
type Relation struct {
	Name    string
	Objects []*Object
	Tree    *rstar.Tree
	// Cfg is the configuration the relation was preprocessed under —
	// which approximations were computed, the tree layout, the exact
	// engine. The unified Join/Query entry points default to it, so a
	// relation carries everything a query needs.
	Cfg Config
	// Stats are the planner statistics of the relation: computed at
	// build time, persisted in the relation store, recomputed on open
	// for stores that predate them. The embedded feedback EWMAs are the
	// only mutable part of a Relation and are safe for concurrent use;
	// everything the golden equivalence suites pin is independent of
	// them (the planner only runs under WithPlan). Nil on relations
	// assembled by hand — the planner then falls back to static
	// defaults.
	Stats *plan.Stats
}

// ComputeStats (re)derives the planner statistics from the object table.
// NewRelation calls it; it is exported for coordinators that assemble
// relations through other paths.
func (r *Relation) ComputeStats() *plan.Stats {
	return plan.ComputeStats(len(r.Objects),
		func(i int) geom.Rect { return r.Objects[i].Approx.MBR },
		func(i int) int { return r.Objects[i].Poly.NumVertices() })
}

// NewSession returns a per-query page-access context for the relation's
// R*-tree: a private replacement simulation seeded from the shared
// buffer's current snapshot, with isolated hit/miss counters. Sessions
// make the relation safe for N concurrent queries, each reporting
// exactly the statistics a sequential query from the same starting
// buffer state would.
func (r *Relation) NewSession() *storage.Session { return r.Tree.NewSession() }

// EntryBytes returns the modelled R*-tree data-entry size for a filter
// configuration (section 5: MBR 16 B + info 32 B + approximations).
func EntryBytes(cfg Config) int {
	if !cfg.UseFilter {
		return approx.ApproxByteSize()
	}
	var extras []approx.Kind
	if !cfg.Filter.NoConservative {
		extras = append(extras, cfg.Filter.Conservative)
	}
	if !cfg.Filter.NoProgressive {
		extras = append(extras, cfg.Filter.Progressive)
	}
	return approx.ApproxByteSize(extras...)
}

// NewRelation preprocesses a relation: approximations for every object
// (only those the configuration needs) and the R*-tree over the MBRs.
func NewRelation(name string, polys []*geom.Polygon, cfg Config) *Relation {
	return NewRelationWithStore(name, polys, cfg, nil)
}

// NewRelationWithStore is NewRelation with an explicit page store
// plugged into the R*-tree — pass a storage.FileStore to back the page
// accounting with real (concurrency-safe, single-flight) disk reads. A
// nil store selects the counting buffer the configuration describes.
func NewRelationWithStore(name string, polys []*geom.Polygon, cfg Config, store storage.PageStore) *Relation {
	rel := &Relation{Name: name, Cfg: cfg}
	var opt approx.Options
	if cfg.UseFilter {
		opt = cfg.Filter.Kinds()
	}
	opt.MECPrecision = cfg.MECPrecision
	tree := rstar.New(rstar.Config{
		PageSize:       cfg.PageSize,
		LeafEntryBytes: EntryBytes(cfg),
		BufferBytes:    cfg.BufferBytes,
		BufferPolicy:   cfg.BufferPolicy,
		Store:          store,
	})
	for i, p := range polys {
		o := &Object{ID: int32(i), Poly: p, Approx: approx.Compute(p, opt)}
		rel.Objects = append(rel.Objects, o)
		tree.Insert(rstar.Item{Rect: o.Approx.MBR, ID: o.ID})
	}
	rel.Tree = tree
	rel.Stats = rel.ComputeStats()
	return rel
}

// Pair is one element of the response set.
type Pair struct {
	A, B int32 // object IDs in the two relations
}

// Stats reports the work of one multi-step join, step by step.
type Stats struct {
	// Step 1.
	CandidatePairs   int64           // pairs of intersecting MBRs
	MBRJoin          rstar.JoinStats // traversal work (R*-tree generator)
	ZOrderCandidates int64           // raw Z-order candidates before the MBR check
	PageAccessesR    int64           // buffer misses of relation R's tree
	PageAccessesS    int64           // buffer misses of relation S's tree

	// Step 2.
	FilterHits      int64 // pairs proven hits by approximations
	FilterFalseHits int64 // pairs proven false hits by approximations

	// Step 3.
	ExactTested   int64 // pairs decided on exact geometry
	ExactHits     int64
	ObjectFetches int64 // distinct objects whose exact geometry was loaded
	Ops           ops.Counters

	// Result.
	ResultPairs int64
}

// Identified returns the fraction of candidate pairs the geometric filter
// decided — the Figure 12 measure.
func (s Stats) Identified() float64 {
	if s.CandidatePairs == 0 {
		return 0
	}
	return float64(s.FilterHits+s.FilterFalseHits) / float64(s.CandidatePairs)
}

// NestedLoopsJoin is the section 2.3 baseline: the full Cartesian product
// decided on exact geometry with the quadratic test. It exists to validate
// the multi-step processor and to quantify its speedup.
func NestedLoopsJoin(r, s []*geom.Polygon) []Pair {
	var out []Pair
	for i, a := range r {
		for j, b := range s {
			if a.Intersects(b) {
				out = append(out, Pair{A: int32(i), B: int32(j)})
			}
		}
	}
	return out
}
