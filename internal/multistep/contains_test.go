package multistep

import (
	"math"
	"math/rand"
	"testing"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/exact"
	"spatialjoin/internal/geom"
	"spatialjoin/internal/ops"
)

func sqr(cx, cy, half float64) []geom.Point {
	return []geom.Point{
		{X: cx - half, Y: cy - half}, {X: cx + half, Y: cy - half},
		{X: cx + half, Y: cy + half}, {X: cx - half, Y: cy + half},
	}
}

func star(rng *rand.Rand, cx, cy, radius float64, n int) *geom.Polygon {
	pts := make([]geom.Point, n)
	for i := 0; i < n; i++ {
		ang := 2 * math.Pi * float64(i) / float64(n)
		r := radius * (0.4 + 0.6*rng.Float64())
		pts[i] = geom.Point{X: cx + r*math.Cos(ang), Y: cy + r*math.Sin(ang)}
	}
	return geom.NewPolygon(pts)
}

func TestContainsPolygonBasics(t *testing.T) {
	outer := geom.NewPolygon(sqr(0, 0, 2))
	inner := geom.NewPolygon(sqr(0, 0, 1))
	off := geom.NewPolygon(sqr(3, 0, 1))
	overlap := geom.NewPolygon(sqr(1.5, 0, 1))
	if !outer.ContainsPolygon(inner) {
		t.Error("outer must contain inner")
	}
	if inner.ContainsPolygon(outer) {
		t.Error("inner must not contain outer")
	}
	if outer.ContainsPolygon(off) || outer.ContainsPolygon(overlap) {
		t.Error("disjoint/overlapping must not be contained")
	}
	if !outer.ContainsPolygon(outer) {
		t.Error("a polygon contains itself (closed semantics)")
	}
	// A hole carves out containment.
	annulus := geom.NewPolygon(sqr(0, 0, 3), sqr(0, 0, 2))
	if annulus.ContainsPolygon(inner) {
		t.Error("region inside the hole is not contained")
	}
	small := geom.NewPolygon(sqr(0, 2.5, 0.3))
	if !annulus.ContainsPolygon(small) {
		t.Error("polygon inside the ring band must be contained")
	}
	// A polygon covering the hole entirely is not contained.
	cover := geom.NewPolygon(sqr(0, 0, 2.5))
	if annulus.ContainsPolygon(cover) {
		t.Error("polygon covering the hole must not be contained")
	}
}

func TestExactContainsMatchesGeom(t *testing.T) {
	rng := rand.New(rand.NewSource(311))
	for trial := 0; trial < 800; trial++ {
		a := star(rng, 0, 0, 1, 5+rng.Intn(15))
		var b *geom.Polygon
		if trial%2 == 0 {
			// Likely-contained: a small polygon near the center.
			b = star(rng, rng.Float64()*0.4-0.2, rng.Float64()*0.4-0.2, 0.05+0.3*rng.Float64(), 4+rng.Intn(10))
		} else {
			b = star(rng, rng.Float64()*2-1, rng.Float64()*2-1, 0.2+rng.Float64(), 4+rng.Intn(10))
		}
		want := a.ContainsPolygon(b)
		var c ops.Counters
		got := exact.ContainsPolygon(exact.Prepare(a), exact.Prepare(b), &c)
		if got != want {
			t.Fatalf("trial %d: exact.ContainsPolygon=%v, geom=%v", trial, got, want)
		}
	}
}

func TestContainsApproxSoundness(t *testing.T) {
	rng := rand.New(rand.NewSource(313))
	decided := 0
	for trial := 0; trial < 400; trial++ {
		a := star(rng, 0, 0, 1, 8+rng.Intn(12))
		b := star(rng, rng.Float64()*0.8-0.4, rng.Float64()*0.8-0.4, 0.05+0.5*rng.Float64(), 6+rng.Intn(10))
		sa := approx.Compute(a, approx.AllOptions())
		sb := approx.Compute(b, approx.AllOptions())
		truth := a.ContainsPolygon(b)
		for _, ck := range []approx.Kind{approx.C5, approx.C4, approx.CH, approx.RMBR, approx.MBR, approx.MBC} {
			// False-hit direction: prog(b) ⊄ cons(a) ⇒ not contained.
			for _, pk := range []approx.Kind{approx.MER, approx.MEC} {
				if approx.ContainsApprox(ck, sa, pk, sb) == approx.No {
					decided++
					if truth && !sb.MERA.IsEmpty() {
						// Only sound when the containee shape exists.
						t.Fatalf("UNSOUND: %v(a) does not contain %v(b) but a ⊇ b (trial %d)", ck, pk, trial)
					}
				}
			}
		}
		// Hit direction: cons(b) ⊆ prog(a) ⇒ contained.
		for _, pk := range []approx.Kind{approx.MER, approx.MEC} {
			for _, ck := range []approx.Kind{approx.C5, approx.CH, approx.MBC, approx.MBE, approx.MBR} {
				if approx.ContainsApprox(pk, sa, ck, sb) == approx.Yes {
					decided++
					if !truth {
						t.Fatalf("UNSOUND: %v(b) ⊆ %v(a) but a does not contain b (trial %d)", ck, pk, trial)
					}
				}
			}
		}
	}
	if decided == 0 {
		t.Fatal("containment filter never decided anything")
	}
}

func TestJoinContainsMatchesNestedLoops(t *testing.T) {
	rng := rand.New(rand.NewSource(317))
	// Relation r: larger regions; relation s: small parcels, many inside.
	var rPolys, sPolys []*geom.Polygon
	for i := 0; i < 40; i++ {
		rPolys = append(rPolys, star(rng, rng.Float64()*4, rng.Float64()*4, 0.7+0.5*rng.Float64(), 8+rng.Intn(16)))
	}
	for i := 0; i < 120; i++ {
		sPolys = append(sPolys, star(rng, rng.Float64()*4, rng.Float64()*4, 0.05+0.25*rng.Float64(), 4+rng.Intn(10)))
	}
	want := NestedLoopsContains(rPolys, sPolys)
	if len(want) == 0 {
		t.Fatal("workload has no containments; test is vacuous")
	}
	for _, useFilter := range []bool{false, true} {
		cfg := DefaultConfig()
		cfg.UseFilter = useFilter
		r := NewRelation("R", rPolys, cfg)
		s := NewRelation("S", sPolys, cfg)
		got, st := testJoinContains(t, r, s, cfg)
		assertSameResponse(t, "contains", got, want)
		if useFilter && st.FilterHits+st.FilterFalseHits == 0 {
			t.Error("inclusion filter identified nothing")
		}
		if st.CandidatePairs < int64(len(want)) {
			t.Error("candidate set smaller than the response set")
		}
	}
}

func TestJoinContainsSelf(t *testing.T) {
	rng := rand.New(rand.NewSource(331))
	var polys []*geom.Polygon
	for i := 0; i < 30; i++ {
		polys = append(polys, star(rng, rng.Float64()*3, rng.Float64()*3, 0.4, 6+rng.Intn(8)))
	}
	cfg := DefaultConfig()
	r := NewRelation("R", polys, cfg)
	s := NewRelation("S", polys, cfg)
	got, _ := testJoinContains(t, r, s, cfg)
	// Every polygon contains itself; the self pairs must all be present.
	self := map[int32]bool{}
	for _, p := range got {
		if p.A == p.B {
			self[p.A] = true
		}
	}
	if len(self) != len(polys) {
		t.Errorf("self-containment pairs: %d of %d", len(self), len(polys))
	}
}
