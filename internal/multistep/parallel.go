package multistep

import (
	"runtime"
	"sort"
	"sync"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/exact"
	"spatialjoin/internal/rstar"
	"spatialjoin/internal/trstar"
)

// JoinParallel runs the multi-step join with the filter and exact steps
// parallelized over a worker pool — the CPU parallelism the paper lists as
// future work in section 6. Step 1 stays sequential (it is I/O-model
// bound); the collected candidate pairs are partitioned over workers, and
// the per-worker statistics and result lists are merged deterministically,
// so the response set equals Join's exactly.
//
// Step 1 always uses the R*-tree generator regardless of cfg.Step1.
// workers ≤ 0 selects GOMAXPROCS.
func JoinParallel(r, s *Relation, cfg Config, workers int) ([]Pair, Stats) {
	if workers <= 0 {
		workers = runtime.GOMAXPROCS(0)
	}
	var st Stats

	r.Tree.Buffer().ResetCounters()
	s.Tree.Buffer().ResetCounters()

	// Step 1 (sequential): collect the candidate pairs.
	type cand struct{ a, b int32 }
	var cands []cand
	st.MBRJoin = rstar.Join(r.Tree, s.Tree, func(a, b rstar.Item) {
		cands = append(cands, cand{a.ID, b.ID})
	})
	st.CandidatePairs = int64(len(cands))
	st.PageAccessesR = r.Tree.Buffer().Misses()
	st.PageAccessesS = s.Tree.Buffer().Misses()

	// Pre-build the exact representations of every object that can reach
	// step 3, in parallel; afterwards the pair workers only read objects.
	needR := map[int32]bool{}
	needS := map[int32]bool{}
	for _, c := range cands {
		if cfg.UseFilter &&
			cfg.Filter.Classify(r.Objects[c.a].Approx, s.Objects[c.b].Approx) != approx.Candidate {
			continue
		}
		needR[c.a] = true
		needS[c.b] = true
	}
	var buildList []*Object
	for id := range needR {
		buildList = append(buildList, r.Objects[id])
	}
	for id := range needS {
		buildList = append(buildList, s.Objects[id])
	}
	var wgPrep sync.WaitGroup
	jobs := make(chan *Object, len(buildList))
	for _, o := range buildList {
		jobs <- o
	}
	close(jobs)
	for w := 0; w < workers; w++ {
		wgPrep.Add(1)
		go func() {
			defer wgPrep.Done()
			for o := range jobs {
				switch cfg.Engine {
				case EngineTRStar:
					o.Tree(cfg.TRCapacity)
				default:
					o.Prepared()
				}
			}
		}()
	}
	wgPrep.Wait()

	// Steps 2 + 3 in parallel over contiguous chunks.
	type workerOut struct {
		pairs                 []Pair
		hits, falseHits       int64
		exactTested, exactHit int64
		ops                   Stats
	}
	outs := make([]workerOut, workers)
	var wg sync.WaitGroup
	chunk := (len(cands) + workers - 1) / workers
	for w := 0; w < workers; w++ {
		lo := w * chunk
		hi := lo + chunk
		if hi > len(cands) {
			hi = len(cands)
		}
		if lo >= hi {
			continue
		}
		wg.Add(1)
		go func(w, lo, hi int) {
			defer wg.Done()
			o := &outs[w]
			for _, c := range cands[lo:hi] {
				oa := r.Objects[c.a]
				ob := s.Objects[c.b]
				if cfg.UseFilter {
					switch cfg.Filter.Classify(oa.Approx, ob.Approx) {
					case approx.Hit:
						o.hits++
						o.pairs = append(o.pairs, Pair{A: c.a, B: c.b})
						continue
					case approx.FalseHit:
						o.falseHits++
						continue
					}
				}
				o.exactTested++
				var hit bool
				switch cfg.Engine {
				case EngineQuadratic:
					hit = exact.QuadraticIntersects(oa.prepared, ob.prepared, &o.ops.Ops)
				case EnginePlaneSweep:
					hit = exact.PlaneSweepIntersects(oa.prepared, ob.prepared, cfg.PlaneSweepRestrict, &o.ops.Ops)
				case EngineTRStar:
					hit = trstar.Intersects(oa.tree, ob.tree, &o.ops.Ops)
				}
				if hit {
					o.exactHit++
					o.pairs = append(o.pairs, Pair{A: c.a, B: c.b})
				}
			}
		}(w, lo, hi)
	}
	wg.Wait()

	var out []Pair
	fetched := map[int32]bool{}
	fetchedS := map[int32]bool{}
	for w := range outs {
		o := &outs[w]
		out = append(out, o.pairs...)
		st.FilterHits += o.hits
		st.FilterFalseHits += o.falseHits
		st.ExactTested += o.exactTested
		st.ExactHits += o.exactHit
		st.Ops.Add(o.ops.Ops)
	}
	// Object fetches: distinct objects across all exact-tested pairs.
	for _, c := range cands {
		oa := r.Objects[c.a]
		ob := s.Objects[c.b]
		if cfg.UseFilter && cfg.Filter.Classify(oa.Approx, ob.Approx) != approx.Candidate {
			continue
		}
		if !fetched[c.a] {
			fetched[c.a] = true
			st.ObjectFetches++
		}
		if !fetchedS[c.b] {
			fetchedS[c.b] = true
			st.ObjectFetches++
		}
	}
	sort.Slice(out, func(i, j int) bool {
		if out[i].A != out[j].A {
			return out[i].A < out[j].A
		}
		return out[i].B < out[j].B
	})
	st.ResultPairs = int64(len(out))
	return out, st
}
