package multistep

// JoinParallel runs the multi-step join spread over a worker pool — the
// CPU parallelism the paper lists as future work in section 6. It is a
// thin collect-and-sort wrapper around the streaming core: JoinStream
// partitions the step 1 traversal at the subtree level and pushes the
// candidate pairs through bounded channels into workers that classify
// each pair with the geometric filter exactly once and decide the
// survivors on exact geometry. The response set (sorted by (A, B)) and
// the statistics equal Join's exactly.
//
// Step 1 always uses the R*-tree generator regardless of cfg.Step1.
// workers ≤ 0 selects GOMAXPROCS.
func JoinParallel(r, s *Relation, cfg Config, workers int) ([]Pair, Stats) {
	cfg.Step1 = Step1RStar
	return collectStream(r, s, cfg, StreamOptions{Workers: workers})
}
