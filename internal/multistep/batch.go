package multistep

import (
	"context"
	"errors"
	"fmt"
	"sync"
	"time"

	"spatialjoin/internal/approx"
	"spatialjoin/internal/bitset"
	"spatialjoin/internal/ctxpoll"
	"spatialjoin/internal/ops"
	"spatialjoin/internal/resilience"
	"spatialjoin/internal/resilience/fault"
	"spatialjoin/internal/rstar"
	"spatialjoin/internal/storage"
)

// This file is the shared-work entry point of the multi-query execution
// layer: N join requests over the same relation pair execute as ONE
// synchronized R*-tree traversal that evaluates every request's
// candidate pretest per rectangle-test survivor, then demultiplexes the
// per-request filter/exact classification through the worker pool.
//
// The equivalence bar (and why it holds): each request's pairs and
// candidate-level Stats must match its solo run exactly.
//
//   - Step 1: all requests in a batch share one step-1 ε, so the
//     synchronized traversal — rectangle tests, node schedule, page
//     trace — is identical to each request's solo traversal. The
//     traversal statistics and page accesses are worker-count
//     independent by construction (see joinStream), so every request
//     reports the solo MBRJoin and PageAccesses values.
//   - Candidates: the per-request pretest (MBR nesting for inclusion
//     joins) is applied per request to each survivor, producing exactly
//     the solo candidate set and count for each request.
//   - Steps 2+3: each candidate carries a bitmask of the requests it
//     belongs to; workers classify it once per member request under
//     that request's configuration and predicate, accumulating
//     per-request per-worker counters that merge into scheduling-
//     independent totals exactly as the solo pipeline's do.
//
// Requests whose step-1 ε differs cannot share a traversal and are
// rejected; the caller (internal/mqe's batching window keyed by
// relation pair + ε) never groups them.

// MaxBatchItems is the hard cap on requests per batched traversal: one
// bit per request in the candidate mask. Coordinators (internal/shard's
// batched scatter-gather) chunk larger groups into successive batches.
const MaxBatchItems = 64

// Batch-path errors.
var (
	// ErrBatchMismatch reports requests that cannot share one traversal:
	// different step-1 ε, or a step-1 generator other than the
	// synchronized R*-tree traversal.
	ErrBatchMismatch = errors.New("multistep: batched joins must share the R*-tree step-1 traversal and its ε")
	// ErrBatchTooLarge reports more than MaxBatchItems requests.
	ErrBatchTooLarge = fmt.Errorf("multistep: batched join exceeds %d requests", MaxBatchItems)
	// ErrBatchStream reports a WithStream request in a batch; batched
	// execution always collects.
	ErrBatchStream = errors.New("multistep: WithStream is not supported in a batched join")
)

// BatchResult is one request's outcome from JoinBatch: exactly what the
// corresponding solo Join would have returned.
type BatchResult struct {
	Pairs []Pair
	Stats Stats
}

// batchJoin is the resolved execution state of one request in a batch.
type batchJoin struct {
	o       queryOptions
	cfg     Config
	pl      Plan
	collect bool
}

// JoinBatch runs up to MaxBatchItems join requests over the relation
// pair (r, s) as one synchronized traversal and returns each request's
// solo-exact result, in request order. Page visits are accounted on the
// shared accessors axR and axS (nil selects the shared tree buffers,
// counters reset first, as in Join): because the traversal trace is
// deterministic and replayed once, every request observes exactly the
// page accesses of a solo run on the same accessor snapshot. Per-item
// WithSessions options are overridden by axR/axS.
//
// All requests must resolve to the R*-tree step-1 generator and agree
// on the step-1 ε (the predicate's traversal expansion); WithStream is
// not supported. WithPlan, WithExplain, WithConfig, WithWorkers,
// WithLimit and WithBufferless keep their solo semantics per request —
// the shared pipeline runs with the largest requested worker count,
// which is invisible in the statistics. Explain wall time is the
// batch's, since the work is genuinely shared.
func JoinBatch(ctx context.Context, r, s *Relation, axR, axS storage.Accessor, items [][]Option) ([]BatchResult, error) {
	if ctx == nil {
		ctx = context.Background()
	}
	if len(items) == 0 {
		return nil, nil
	}
	if len(items) > MaxBatchItems {
		return nil, ErrBatchTooLarge
	}

	js := make([]batchJoin, len(items))
	for i, opts := range items {
		o := resolve(opts)
		if err := o.pred.validate(); err != nil {
			return nil, err
		}
		if o.emit != nil {
			return nil, ErrBatchStream
		}
		cfg, err := joinConfig(r, s, &o)
		if err != nil {
			return nil, err
		}
		var pl Plan
		switch {
		case o.planned:
			cfg, o.workers, pl = planJoin(r, s, cfg, &o)
		case o.explain != nil:
			pl = echoPlan(cfg, &o)
		}
		if cfg.Step1 != Step1RStar {
			return nil, ErrBatchMismatch
		}
		if i > 0 && o.pred.step1Eps() != js[0].o.pred.step1Eps() {
			return nil, ErrBatchMismatch
		}
		js[i] = batchJoin{o: o, cfg: cfg, pl: pl, collect: !o.bufferless}
	}

	var started time.Time
	for i := range js {
		if js[i].o.explain != nil {
			started = time.Now()
			break
		}
	}

	results, err := joinStreamBatch(ctx, r, s, js, axR, axS)
	elapsed := time.Since(started)
	for i := range js {
		it := &js[i]
		if err == nil {
			observeJoin(r, s, it.cfg, it.o.pred, it.pl, results[i].Stats)
		}
		if it.o.explain != nil {
			// On error there are no per-item results; the explain records
			// the plan with zero actuals, marked not executed.
			var st Stats
			if err == nil {
				st = results[i].Stats
			}
			fillExplain(it.o.explain, it.pl, st, elapsed, err == nil)
		}
	}
	if err != nil {
		return nil, err
	}
	for i := range js {
		it := &js[i]
		if it.collect {
			sortResponse(results[i].Pairs)
			if it.o.limit >= 0 && len(results[i].Pairs) > it.o.limit {
				results[i].Pairs = results[i].Pairs[:it.o.limit]
			}
		}
	}
	return results, nil
}

// batchCand is one rectangle-test survivor with the set of requests it
// is a candidate for, as a bitmask over the batch items.
type batchCand struct {
	a, b int32
	mask uint64
}

// batchPair is one decided response pair tagged with its request.
type batchPair struct {
	item int32
	p    Pair
}

// batchWorkerItem accumulates one worker's share of one request's
// steps 2+3 statistics — the batched counterpart of streamWorker.
type batchWorkerItem struct {
	hits, falseHits    int64
	exactTested        int64
	exactHits          int64
	ops                ops.Counters
	fetchedR, fetchedS *bitset.Set
}

// joinStreamBatch is the batched counterpart of joinStream: one
// traversal, a mask per candidate, per-(worker, request) statistics
// merged per request exactly like the solo pipeline's per-worker merge.
func joinStreamBatch(ctx context.Context, r, s *Relation, js []batchJoin, axR, axS storage.Accessor) ([]BatchResult, error) {
	// Shared pipeline shape: the largest requested worker count (each
	// request's stats are worker-count independent), default batch size
	// and queue depth.
	shape := js[0].o
	for i := range js {
		d := js[i].o.withDefaults()
		if d.workers > shape.workers {
			shape.workers = d.workers
		}
	}
	shape.batch, shape.queue = 0, 0
	shape = shape.withDefaults()

	if axR == nil {
		r.Tree.Buffer().ResetCounters()
		axR = r.Tree.Buffer()
	}
	if axS == nil {
		s.Tree.Buffer().ResetCounters()
		axS = s.Tree.Buffer()
	}
	missesR, missesS := axR.Misses(), axS.Misses()

	// A worker panic or fired injection cancels the whole batched
	// traversal with its cause; every request in the batch fails
	// together (joins fail closed).
	ctx, fail := context.WithCancelCause(ctx)
	defer fail(nil)

	stop, release := ctxpoll.Stop(ctx)
	defer release()
	stopCh := ctx.Done()

	candCh := make(chan []batchCand, shape.queue)
	resCh := make(chan []batchPair, shape.queue)

	send := func(buf []batchCand) {
		select {
		case candCh <- buf:
		case <-stopCh:
		}
	}

	// Steps 2+3: the worker pool, one counter block per (worker, item).
	nItems := len(js)
	workerStates := make([][]batchWorkerItem, shape.workers)
	var wg sync.WaitGroup
	for w := 0; w < shape.workers; w++ {
		wg.Add(1)
		go func(states *[]batchWorkerItem) {
			defer wg.Done()
			defer func() {
				if rec := recover(); rec != nil {
					fail(resilience.Recovered("exact", rec))
				}
			}()
			ws := make([]batchWorkerItem, nItems)
			for i := range ws {
				ws[i].fetchedR = bitset.New(len(r.Objects))
				ws[i].fetchedS = bitset.New(len(s.Objects))
			}
			*states = ws
			for batch := range candCh {
				out := make([]batchPair, 0, len(batch))
				for _, c := range batch {
					if stop != nil && stop() {
						break
					}
					oa, ob := r.Objects[c.a], s.Objects[c.b]
					for i := 0; i < nItems; i++ {
						if c.mask&(1<<uint(i)) == 0 {
							continue
						}
						it := &js[i]
						wi := &ws[i]
						// Step 2: this request's geometric filter, once
						// per (candidate, request).
						if it.cfg.UseFilter {
							switch it.o.pred.classify(it.cfg.Filter, oa, ob) {
							case approx.Hit:
								wi.hits++
								out = append(out, batchPair{int32(i), Pair{A: c.a, B: c.b}})
								continue
							case approx.FalseHit:
								wi.falseHits++
								continue
							}
						}
						// Step 3: this request's exact geometry test.
						wi.exactTested++
						wi.fetchedR.Set(int(c.a))
						wi.fetchedS.Set(int(c.b))
						if ferr := fault.Check("exact"); ferr != nil {
							fail(ferr)
							return
						}
						if it.o.pred.exactDecide(it.cfg, oa, ob, &wi.ops) {
							wi.exactHits++
							out = append(out, batchPair{int32(i), Pair{A: c.a, B: c.b}})
						}
					}
				}
				if len(out) > 0 {
					select {
					case resCh <- out:
					case <-stopCh:
					}
				}
			}
		}(&workerStates[w])
	}

	// The collector demultiplexes decided pairs per request.
	results := make([]BatchResult, nItems)
	done := make(chan struct{})
	go func() {
		defer close(done)
		for batch := range resCh {
			for _, bp := range batch {
				results[bp.item].Stats.ResultPairs++
				if js[bp.item].collect {
					results[bp.item].Pairs = append(results[bp.item].Pairs, bp.p)
				}
			}
		}
	}()

	// Step 1: one synchronized traversal at the shared ε; per survivor,
	// the mask of requests whose pretest admits it. Candidate counting
	// stays producer-side per traversal worker, as in the solo pipeline.
	eps := js[0].o.pred.step1Eps()
	batches := make([][]batchCand, shape.workers)
	cands := make([][]int64, shape.workers)
	for w := range cands {
		cands[w] = make([]int64, nItems)
	}
	mbrSt := rstar.JoinParallelAccess(ctx, r.Tree, s.Tree, axR, axS, eps, shape.workers, func(w int, a, b rstar.Item) {
		oa, ob := r.Objects[a.ID], s.Objects[b.ID]
		var mask uint64
		for i := 0; i < nItems; i++ {
			if js[i].o.pred.pretest(oa, ob) {
				mask |= 1 << uint(i)
				cands[w][i]++
			}
		}
		if mask == 0 {
			return
		}
		batches[w] = append(batches[w], batchCand{a.ID, b.ID, mask})
		if len(batches[w]) >= shape.batch {
			send(batches[w])
			batches[w] = nil
		}
	})
	for _, b := range batches {
		if len(b) > 0 {
			send(b)
		}
	}
	close(candCh)
	wg.Wait()
	close(resCh)
	<-done

	if ctx.Err() != nil {
		// Cause surfaces an internal failure (worker panic, fired
		// injection); for the caller's own cancellation it reproduces
		// ctx.Err().
		return nil, context.Cause(ctx)
	}

	// Per-request deterministic merge: sums and bitset unions over the
	// worker shares, identical in shape to the solo pipeline's.
	pagesR, pagesS := axR.Misses()-missesR, axS.Misses()-missesS
	for i := range js {
		st := &results[i].Stats
		st.MBRJoin = mbrSt
		for w := range cands {
			st.CandidatePairs += cands[w][i]
		}
		unionR := bitset.New(len(r.Objects))
		unionS := bitset.New(len(s.Objects))
		for w := range workerStates {
			wi := &workerStates[w][i]
			st.FilterHits += wi.hits
			st.FilterFalseHits += wi.falseHits
			st.ExactTested += wi.exactTested
			st.ExactHits += wi.exactHits
			st.Ops.Add(wi.ops)
			unionR.Or(wi.fetchedR)
			unionS.Or(wi.fetchedS)
		}
		st.ObjectFetches = int64(unionR.Count() + unionS.Count())
		st.PageAccessesR = pagesR
		st.PageAccessesS = pagesS
	}
	return results, nil
}
